// Command fase runs the FASE methodology against a simulated computer
// system and reports the activity-modulated carriers it finds.
//
// Usage:
//
//	fase [-system NAME] [-pair X/Y] [-f1 Hz] [-f2 Hz] [-fres Hz]
//	     [-falt Hz] [-fdelta Hz] [-seed N] [-classify] [-environment=true]
//	     [-adaptive -budget N [-recon-fres Hz]]
//	     [-metrics-out FILE] [-trace-out FILE] [-manifest-out FILE]
//	     [-pprof ADDR]
//
// Examples:
//
//	fase -system i7-desktop -pair LDM/LDL1 -f1 100e3 -f2 4e6
//	fase -system turion-laptop -classify
//	fase -adaptive -budget 120 -manifest-out run.json
//	fase -manifest-out run.json -trace-out trace.json -pprof localhost:6060
//	fase -events-out events.jsonl -runs-dir runs/
//	fase -validate-manifest run.json
//	fase -validate-events events.jsonl
//	fase runs -dir runs/
//	fase diff -dir runs/ @1 @0
//	fase serve -addr 127.0.0.1:8631 -runs-dir runs/
//	fase -verify -verify-baseline VERIFY_baseline.json
//	fase -verify -verify-scenarios 10 -verify-out report.json -verify-roc-csv roc.csv
//	fase -verify -verify-budget -verify-out report.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"fase/internal/activity"
	"fase/internal/core"
	"fase/internal/machine"
	"fase/internal/obs"
	"fase/internal/runstore"
)

func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "runs":
			return runRuns(os.Args[2:])
		case "diff":
			return runDiff(os.Args[2:])
		case "serve":
			return runServe(os.Args[2:])
		}
	}
	sysName := flag.String("system", "i7-desktop", "system model to measure (see -list)")
	list := flag.Bool("list", false, "list available system models and exit")
	pair := flag.String("pair", "LDM/LDL1", "X/Y activity pair for the alternation micro-benchmark")
	f1 := flag.Float64("f1", 100e3, "scan start frequency, Hz")
	f2 := flag.Float64("f2", 4e6, "scan stop frequency, Hz")
	fres := flag.Float64("fres", 50, "resolution bandwidth, Hz")
	falt := flag.Float64("falt", 43.3e3, "first alternation frequency, Hz")
	fdelta := flag.Float64("fdelta", 0.5e3, "alternation frequency step, Hz")
	seed := flag.Int64("seed", 1, "random seed")
	env := flag.Bool("environment", true, "include the metropolitan RF environment")
	noReuse := flag.Bool("no-reuse", false, "disable the cross-sweep static render cache (bit-identical results, slower)")
	noSegment := flag.Bool("no-segment", false, "disable run-length segmentation in load-following renderers (bit-identical results, slower)")
	adaptive := flag.Bool("adaptive", false, "use the budgeted coarse-to-fine scan planner (requires -budget)")
	budget := flag.Int("budget", 0, "capture budget for -adaptive (total analyzer captures the scan may spend)")
	reconFres := flag.Float64("recon-fres", 0, "recon-pass resolution bandwidth for -adaptive, Hz (0 = 8×fres)")
	classify := flag.Bool("classify", false, "also run the on-chip pair (LDL2/LDL1) and classify carriers")
	metricsOut := flag.String("metrics-out", "", "write a JSON snapshot of process metrics to FILE on exit")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON of campaign stages to FILE (load in chrome://tracing or Perfetto)")
	manifestOut := flag.String("manifest-out", "", "write the primary campaign's run manifest (JSON) to FILE")
	pprofAddr := flag.String("pprof", "", "serve live pprof + /metrics + /progress + /events on ADDR (e.g. localhost:6060) while running")
	eventsOut := flag.String("events-out", "", "write the campaign's event journal (JSONL) to FILE")
	runsDir := flag.String("runs-dir", "", "archive the run manifest into the run-history store at DIR")
	linger := flag.Duration("linger", 0, "keep the -pprof debug server up for DURATION after the scan finishes")
	validateManifest := flag.String("validate-manifest", "", "validate a run-manifest FILE against the schema and exit")
	validateEvents := flag.String("validate-events", "", "validate an event-journal FILE against the schema and exit")
	verifyMode := flag.Bool("verify", false, "run the ground-truth accuracy harness instead of a scan")
	vf := verifyFlags{
		scenarios:   flag.Int("verify-scenarios", 0, "accuracy corpus size (0 = default 60)"),
		seed:        flag.Int64("verify-seed", 0, "accuracy corpus seed (0 = default 1)"),
		faults:      flag.Bool("verify-faults", true, "also run the fault-injected corpus pass"),
		budget:      flag.Bool("verify-budget", false, "also run the adaptive recall-vs-budget pass"),
		out:         flag.String("verify-out", "", "write the accuracy report (JSON) to FILE"),
		rocCSV:      flag.String("verify-roc-csv", "", "write the full ROC sweep (CSV) to FILE"),
		baseline:    flag.String("verify-baseline", "", "gate the run against a committed baseline FILE (exit 1 on regression)"),
		baselineOut: flag.String("verify-baseline-out", "", "write this run's metrics as a new baseline FILE"),
	}
	flag.Parse()
	vf.manifestOut = manifestOut

	if *verifyMode {
		return runVerify(vf)
	}
	if *validateManifest != "" {
		if err := obs.ValidateManifestFile(*validateManifest); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("%s: valid %s\n", *validateManifest, obs.ManifestSchema)
		return 0
	}
	if *validateEvents != "" {
		if err := obs.ValidateJournalFile(*validateEvents); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("%s: valid %s\n", *validateEvents, obs.JournalSchema)
		return 0
	}
	if *list {
		names := make([]string, 0)
		for n := range machine.Registry() {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			sys, _ := machine.Lookup(n)
			fmt.Printf("%-15s %s (%d emitters)\n", n, sys.Name, len(sys.Emitters))
		}
		return 0
	}
	sys, err := machine.Lookup(*sysName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	x, y, err := activity.ParsePair(*pair)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	runner := &core.Runner{Scene: sys.Scene(*seed, *env)}
	// The primary campaign carries the observability run; the optional
	// classification pass shares the tracer lanes but not the manifest.
	instrumented := *manifestOut != "" || *traceOut != "" ||
		*eventsOut != "" || *runsDir != "" || *pprofAddr != ""
	if instrumented {
		runner.Obs = obs.NewRun()
		if *traceOut != "" {
			runner.Obs.Tracer = obs.NewTracer()
		}
		if *eventsOut != "" || *pprofAddr != "" {
			runner.Obs.Journal = obs.NewJournal()
		}
	}
	if *pprofAddr != "" {
		ds, err := obs.Serve(*pprofAddr, obs.Default, runner.Obs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer ds.Close()
		fmt.Printf("pprof: http://%s/debug/pprof/  metrics: http://%s/metrics  progress: http://%s/progress  events: http://%s/events\n",
			ds.Addr, ds.Addr, ds.Addr, ds.Addr)
	}
	campaign := core.Campaign{
		F1: *f1, F2: *f2, Fres: *fres,
		FAlt1: *falt, FDelta: *fdelta,
		X: x, Y: y, Seed: *seed,
		NoReuse:   *noReuse,
		NoSegment: *noSegment,
	}
	if *adaptive || *budget != 0 {
		campaign.Budget = *budget
		campaign.Adaptive = &core.AdaptivePlan{ReconFres: *reconFres}
	}
	fmt.Printf("FASE scan of %s, %v/%v, %.3g–%.3g MHz at %.0f Hz RBW\n",
		sys.Name, x, y, *f1/1e6, *f2/1e6, *fres)
	if campaign.Adaptive != nil {
		fmt.Printf("adaptive plan: budget %d captures\n", campaign.Budget)
	}
	start := time.Now()
	res, err := runner.RunE(campaign)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	printResult(res)

	if *classify {
		campaign2 := campaign
		campaign2.X, campaign2.Y = activity.LDL2, activity.LDL1
		fmt.Printf("\nClassification pass (%v/%v):\n", campaign2.X, campaign2.Y)
		// The manifest is finalized for the primary campaign; detach it so
		// the classification pass doesn't mix its timings in.
		classifier := &core.Runner{Scene: runner.Scene}
		res2, err := classifier.RunE(campaign2)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		printResult(res2)
		fmt.Println("\nCarrier classification:")
		for _, cc := range core.Classify(res, res2, 1e3) {
			fmt.Printf("  %10.2f kHz  %-16s (pairs: %s)\n",
				cc.Freq/1e3, cc.Class, strings.Join(cc.Pairs, ", "))
		}
	}
	fmt.Printf("\nelapsed %.2fs wall; simulated analyzer time %.2fs\n",
		time.Since(start).Seconds(), res.SimulatedSeconds)

	ok := true
	if *manifestOut != "" {
		if m := runner.Obs.Manifest(); m != nil {
			if err := m.WriteFile(*manifestOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				ok = false
			}
		}
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, runner.Obs.Tracer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			ok = false
		}
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			ok = false
		}
	}
	if *eventsOut != "" {
		if err := runner.Obs.Journal.WriteJSONLFile(*eventsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			ok = false
		}
	}
	if *runsDir != "" {
		if err := archiveRun(*runsDir, runner.Obs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			ok = false
		}
	}
	if *linger > 0 && *pprofAddr != "" {
		fmt.Printf("lingering %s for debug-server clients...\n", *linger)
		time.Sleep(*linger)
	}
	if !ok {
		return 1
	}
	return 0
}

// archiveRun stores the finished run's manifest in the history store.
func archiveRun(dir string, run *obs.Run) error {
	m := run.Manifest()
	if m == nil {
		return fmt.Errorf("runstore: no manifest to archive (campaign did not finish)")
	}
	store, err := runstore.Open(dir)
	if err != nil {
		return err
	}
	e, err := store.Add(m)
	if err != nil {
		return err
	}
	fmt.Printf("archived run %s -> %s\n", e.ID, e.Path)
	return nil
}

// runRuns implements `fase runs -dir DIR`: list the archived runs,
// newest first.
func runRuns(args []string) int {
	fs := flag.NewFlagSet("fase runs", flag.ExitOnError)
	dir := fs.String("dir", "runs", "run-history store directory")
	_ = fs.Parse(args)
	store, err := runstore.Open(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	entries, err := store.List()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(entries) == 0 {
		fmt.Printf("no archived runs in %s\n", *dir)
		return 0
	}
	fmt.Printf("%-4s %-14s %-20s %s\n", "ref", "id", "created", "path")
	for i, e := range entries {
		fmt.Printf("@%-3d %-14s %-20s %s\n", i, e.ID,
			time.Unix(e.CreatedUnix, 0).UTC().Format("2006-01-02T15:04:05Z"), e.Path)
	}
	return 0
}

// runDiff implements `fase diff -dir DIR A B`: resolve two run
// references (file path, @N, or id prefix) and print their delta.
func runDiff(args []string) int {
	fs := flag.NewFlagSet("fase diff", flag.ExitOnError)
	dir := fs.String("dir", "runs", "run-history store directory")
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: fase diff [-dir DIR] <runA> <runB>")
		return 2
	}
	store, err := runstore.Open(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	a, aID, err := store.Resolve(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	b, bID, err := store.Resolve(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := runstore.Compare(a, b, aID, bID).WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printResult(res *core.Result) {
	if len(res.Detections) == 0 {
		fmt.Println("  no activity-modulated carriers detected")
		return
	}
	fmt.Printf("  %-12s %-12s %-10s %-10s %s\n", "carrier kHz", "score", "mag dBm", "depth dB", "harmonics")
	for _, d := range res.Detections {
		fmt.Printf("  %-12.2f %-12.1f %-10.1f %-10.1f %v\n",
			d.Freq/1e3, d.Score, d.MagnitudeDBm, d.DepthDB, d.Harmonics)
	}
	fmt.Println("  harmonic sets:")
	for _, set := range core.GroupHarmonics(res.Detections, 0.004) {
		fmt.Printf("    fundamental %10.2f kHz, %d member(s), orders %v\n",
			set.Fundamental/1e3, len(set.Members), set.Orders)
	}
}
