// Command fase runs the FASE methodology against a simulated computer
// system and reports the activity-modulated carriers it finds.
//
// Usage:
//
//	fase [-system NAME] [-pair X/Y] [-f1 Hz] [-f2 Hz] [-fres Hz]
//	     [-falt Hz] [-fdelta Hz] [-seed N] [-classify] [-environment=true]
//
// Examples:
//
//	fase -system i7-desktop -pair LDM/LDL1 -f1 100e3 -f2 4e6
//	fase -system turion-laptop -classify
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"fase/internal/activity"
	"fase/internal/core"
	"fase/internal/machine"
)

func main() {
	sysName := flag.String("system", "i7-desktop", "system model to measure (see -list)")
	list := flag.Bool("list", false, "list available system models and exit")
	pair := flag.String("pair", "LDM/LDL1", "X/Y activity pair for the alternation micro-benchmark")
	f1 := flag.Float64("f1", 100e3, "scan start frequency, Hz")
	f2 := flag.Float64("f2", 4e6, "scan stop frequency, Hz")
	fres := flag.Float64("fres", 50, "resolution bandwidth, Hz")
	falt := flag.Float64("falt", 43.3e3, "first alternation frequency, Hz")
	fdelta := flag.Float64("fdelta", 0.5e3, "alternation frequency step, Hz")
	seed := flag.Int64("seed", 1, "random seed")
	env := flag.Bool("environment", true, "include the metropolitan RF environment")
	classify := flag.Bool("classify", false, "also run the on-chip pair (LDL2/LDL1) and classify carriers")
	flag.Parse()

	if *list {
		names := make([]string, 0)
		for n := range machine.Registry() {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			sys, _ := machine.Lookup(n)
			fmt.Printf("%-15s %s (%d emitters)\n", n, sys.Name, len(sys.Emitters))
		}
		return
	}
	sys, err := machine.Lookup(*sysName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	x, y, err := activity.ParsePair(*pair)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	runner := &core.Runner{Scene: sys.Scene(*seed, *env)}
	campaign := core.Campaign{
		F1: *f1, F2: *f2, Fres: *fres,
		FAlt1: *falt, FDelta: *fdelta,
		X: x, Y: y, Seed: *seed,
	}
	fmt.Printf("FASE scan of %s, %v/%v, %.3g–%.3g MHz at %.0f Hz RBW\n",
		sys.Name, x, y, *f1/1e6, *f2/1e6, *fres)
	res := runner.Run(campaign)
	printResult(res)

	if *classify {
		campaign2 := campaign
		campaign2.X, campaign2.Y = activity.LDL2, activity.LDL1
		fmt.Printf("\nClassification pass (%v/%v):\n", campaign2.X, campaign2.Y)
		res2 := runner.Run(campaign2)
		printResult(res2)
		fmt.Println("\nCarrier classification:")
		for _, cc := range core.Classify(res, res2, 1e3) {
			fmt.Printf("  %10.2f kHz  %-16s (pairs: %s)\n",
				cc.Freq/1e3, cc.Class, strings.Join(cc.Pairs, ", "))
		}
	}
}

func printResult(res *core.Result) {
	if len(res.Detections) == 0 {
		fmt.Println("  no activity-modulated carriers detected")
		return
	}
	fmt.Printf("  %-12s %-12s %-10s %-10s %s\n", "carrier kHz", "score", "mag dBm", "depth dB", "harmonics")
	for _, d := range res.Detections {
		fmt.Printf("  %-12.2f %-12.1f %-10.1f %-10.1f %v\n",
			d.Freq/1e3, d.Score, d.MagnitudeDBm, d.DepthDB, d.Harmonics)
	}
	fmt.Println("  harmonic sets:")
	for _, set := range core.GroupHarmonics(res.Detections, 0.004) {
		fmt.Printf("    fundamental %10.2f kHz, %d member(s), orders %v\n",
			set.Fundamental/1e3, len(set.Members), set.Orders)
	}
}
