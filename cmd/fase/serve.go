package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"fase/internal/service"
)

// runServe implements `fase serve`: a long-running campaign server on
// ADDR. Scans are submitted as JSON over HTTP, queued under per-tenant
// quotas, sharded across the worker fleet, and archived into the
// run-history store — bit-identical to running the same (config, seed)
// through the CLI directly. SIGINT/SIGTERM shuts down gracefully:
// admission stops, queued jobs cancel, running jobs discard partial
// work, and the fleet drains.
func runServe(args []string) int {
	fs := flag.NewFlagSet("fase serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8631", "listen address")
	workers := fs.Int("workers", 0, "shard-rendering worker fleet size (0 = GOMAXPROCS)")
	maxActive := fs.Int("active", 0, "max concurrently executing jobs (0 = default 2)")
	queueCap := fs.Int("queue", 0, "queued-job capacity before 429 (0 = default 64)")
	tenantQuota := fs.Int("tenant-quota", 0, "per-tenant queued+running job quota (0 = default 8, negative = unlimited)")
	runsDir := fs.String("runs-dir", "runs", "run-history store directory for archived results")
	maxCaptures := fs.Int64("max-captures", 0, "per-job capture admission limit (0 = default 4096)")
	_ = fs.Parse(args)

	s, err := service.New(service.Config{
		Workers: *workers, MaxActive: *maxActive,
		QueueCapacity: *queueCap, TenantQuota: *tenantQuota,
		StoreDir: *runsDir, MaxCapturesPerJob: *maxCaptures,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	bound, err := s.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("serve: listening on http://%s\n", bound)
	fmt.Printf("serve: POST http://%s/v1/scans to submit; GET /v1/stats for queue state\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("serve: shutting down")
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	st := s.Stats()
	fmt.Printf("serve: done — %d submitted, %d completed, %d cached, %d cancelled, %d failed\n",
		st.Submitted, st.Completed, st.Cached, st.Cancelled, st.Failed)
	return 0
}
