package main

import (
	"fmt"
	"os"

	"fase/internal/obs"
	"fase/internal/report"
	"fase/internal/verify"
)

// verifyFlags holds the -verify mode's knobs (see registerVerifyFlags).
type verifyFlags struct {
	scenarios   *int
	seed        *int64
	faults      *bool
	budget      *bool
	out         *string
	rocCSV      *string
	baseline    *string
	baselineOut *string
	manifestOut *string
}

// runVerify executes the ground-truth accuracy harness: a randomized
// machine corpus scanned by the unchanged campaign pipeline, scored
// against each scene's planted carriers, optionally gated against a
// committed baseline. Exit status 1 means the gate failed or an output
// could not be written.
func runVerify(vf verifyFlags) int {
	cfg := verify.Config{
		Scenarios: *vf.scenarios,
		Seed:      *vf.seed,
		Budget:    *vf.budget,
	}
	if *vf.faults {
		cfg.Faults = verify.DefaultFaultPlan()
	}
	if *vf.manifestOut != "" {
		cfg.Obs = obs.NewRun()
	}
	fmt.Printf("accuracy harness: %d scenarios, seed %d, faults=%v, budget=%v\n",
		cfg.Scenarios, cfg.Seed, cfg.Faults != nil, cfg.Budget)

	rep, err := verify.Evaluate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, t := range verify.Tables(rep) {
		fmt.Println(report.FormatTable(t))
	}

	ok := true
	if *vf.out != "" {
		if err := rep.WriteFile(*vf.out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			ok = false
		}
	}
	if *vf.rocCSV != "" {
		if err := writeROCCSV(*vf.rocCSV, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			ok = false
		}
	}
	if *vf.manifestOut != "" {
		if m := cfg.Obs.Manifest(); m != nil {
			if err := m.WriteFile(*vf.manifestOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				ok = false
			}
		}
	}
	if *vf.baselineOut != "" {
		if err := verify.BaselineOf(rep).WriteFile(*vf.baselineOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			ok = false
		}
		fmt.Printf("baseline written to %s\n", *vf.baselineOut)
	}
	if *vf.baseline != "" {
		base, err := verify.ReadBaseline(*vf.baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := verify.Check(rep, base); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("accuracy gate passed against %s\n", *vf.baseline)
	}
	if !ok {
		return 1
	}
	return 0
}

func writeROCCSV(path string, rep *verify.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := verify.WriteROCCSV(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
