// Command emspec renders a simulated system's EM spectrum over a band and
// writes it as CSV (frequency, dBm) — the raw-material view behind the
// paper's figures.
//
// Usage:
//
//	emspec [-system NAME] [-f1 Hz] [-f2 Hz] [-fres Hz] [-pair X/Y]
//	       [-falt Hz] [-nearfield] [-o FILE]
//
// With -pair, the X/Y alternation micro-benchmark runs during the
// measurement; without it the machine idles.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"fase/internal/activity"
	"fase/internal/dsp/spectral"
	"fase/internal/machine"
	"fase/internal/microbench"
	"fase/internal/specan"
)

func main() {
	sysName := flag.String("system", "i7-desktop", "system model")
	f1 := flag.Float64("f1", 100e3, "start frequency, Hz")
	f2 := flag.Float64("f2", 4e6, "stop frequency, Hz")
	fres := flag.Float64("fres", 50, "resolution bandwidth, Hz")
	pair := flag.String("pair", "", "optional X/Y alternation pair, e.g. LDM/LDL1")
	falt := flag.Float64("falt", 43.3e3, "alternation frequency when -pair is set, Hz")
	seed := flag.Int64("seed", 1, "random seed")
	env := flag.Bool("environment", true, "include the metropolitan RF environment")
	near := flag.Bool("nearfield", false, "use the near-field localization probe (+30 dB on system emitters)")
	outPath := flag.String("o", "", "output CSV path (default stdout)")
	flag.Parse()

	sys, err := machine.Lookup(*sysName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	an := specan.New(specan.Config{Fres: *fres})
	req := specan.Request{
		Scene: sys.Scene(*seed, *env),
		F1:    *f1, F2: *f2, Seed: *seed,
		NearField: *near, NearFieldGainDB: 30,
	}
	if *pair != "" {
		x, y, err := activity.ParsePair(*pair)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		req.Activity = microbench.Generate(microbench.Config{
			X: x, Y: y, FAlt: *falt,
			Jitter: microbench.DefaultJitter(), Seed: *seed,
		}, an.TotalDuration(*f1, *f2)+0.05)
	}
	s := an.Sweep(req)

	var w *bufio.Writer
	if *outPath == "" {
		w = bufio.NewWriterSize(os.Stdout, 1<<16)
	} else {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriterSize(f, 1<<16)
	}
	defer w.Flush()
	if err := writeCSV(w, s); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// writeCSV streams the spectrum as freq_hz,dbm rows. The byte format is
// pinned by the golden-file test (testdata/*.csv): downstream tooling
// diffs recorded scans, so refactors must keep the output bit-identical.
// strconv.AppendFloat produces the same bytes fmt's %.1f/%.2f would (fmt
// formats floats through it) without the interface boxing and verb
// parsing, which matters at ~100k rows per scan.
func writeCSV(w io.Writer, s *spectral.Spectrum) error {
	if _, err := fmt.Fprintln(w, "freq_hz,dbm"); err != nil {
		return err
	}
	buf := make([]byte, 0, 64)
	for i := 0; i < s.Bins(); i++ {
		buf = strconv.AppendFloat(buf[:0], s.Freq(i), 'f', 1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, s.DBm(i), 'f', 2, 64)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
