package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"fase/internal/machine"
	"fase/internal/specan"
)

// TestScanCSVGolden pins the recorded scan of every registry system to a
// committed golden CSV — until now the five scans were only byte-identical
// across refactors by convention. The goldens cover the whole chain the
// CLI exercises: scene construction, the planned sweep, amplitude
// calibration, and writeCSV's exact float formatting.
//
// The pinned bytes depend on the floating-point contract of the render
// path (the equivalence suites guarantee planned/unplanned and parallel
// renders are bit-identical, and Go's math library is reproducible across
// platforms for these operations). A deliberate physics or calibration
// change regenerates them with:
//
//	UPDATE_GOLDEN=1 go test ./cmd/emspec
func TestScanCSVGolden(t *testing.T) {
	names := make([]string, 0, 5)
	for name := range machine.Registry() {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) != 5 {
		t.Fatalf("registry has %d systems, want 5: %v", len(names), names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			sys, err := machine.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			// The regulator band at a coarse RBW keeps each golden small
			// (600 rows) while still crossing segment and calibration
			// logic; seed 1 and the full environment match the CLI
			// defaults.
			an := specan.New(specan.Config{Fres: 500})
			s := an.Sweep(specan.Request{
				Scene: sys.Scene(1, true),
				F1:    250e3, F2: 550e3, Seed: 1,
			})
			var buf bytes.Buffer
			if err := writeCSV(&buf, s); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", name+".csv")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				got := buf.Bytes()
				line, col := diffPos(got, want)
				t.Fatalf("scan CSV differs from %s at line %d, byte %d (got %d bytes, want %d); regenerate deliberately with UPDATE_GOLDEN=1",
					golden, line, col, len(got), len(want))
			}
		})
	}
}

// diffPos locates the first differing byte as a 1-based line and offset,
// so a golden mismatch reports where the scan diverged instead of dumping
// 600 rows.
func diffPos(got, want []byte) (line, off int) {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	i := 0
	for i < n && got[i] == want[i] {
		i++
	}
	return bytes.Count(got[:i], []byte{'\n'}) + 1, i
}
