// Command experiments regenerates the paper's figures and tables from the
// simulator and prints each experiment's data summary, tables, and notes.
//
// Usage:
//
//	experiments [-seed N] [-csv DIR] [-md FILE] [id ...]
//
// With no ids, every registered experiment runs in paper order. With
// -csv, each experiment's series are written as CSV files into DIR. With
// -md, a markdown report (the EXPERIMENTS.md body) is written to FILE.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fase/internal/experiments"
	"fase/internal/report"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed (campaigns are deterministic per seed)")
	csvDir := flag.String("csv", "", "directory to write per-experiment series CSVs")
	mdFile := flag.String("md", "", "file to write a markdown report to")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	var md strings.Builder
	for _, id := range ids {
		start := time.Now()
		out, err := experiments.Run(id, experiments.Config{Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		fmt.Print(report.Summarize(out))
		for _, t := range out.Tables {
			fmt.Println(report.FormatTable(t))
		}
		fmt.Printf("  (%s)\n\n", elapsed)
		if *csvDir != "" && len(out.Series) > 0 {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, out.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := report.WriteCSV(f, out.Series); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("  wrote %s\n", path)
		}
		if *mdFile != "" {
			fmt.Fprintf(&md, "## %s — %s\n\n", out.ID, out.Title)
			for _, t := range out.Tables {
				fmt.Fprintf(&md, "**%s**\n\n%s\n", t.Title, report.FormatMarkdownTable(t))
			}
			for _, s := range out.Series {
				x, y := s.Peak()
				fmt.Fprintf(&md, "- series `%s`: %d points, peak %.6g at %.6g\n", s.Name, len(s.X), y, x)
			}
			for _, n := range out.Notes {
				fmt.Fprintf(&md, "- %s\n", n)
			}
			fmt.Fprintf(&md, "\n")
		}
	}
	if *mdFile != "" {
		if err := os.WriteFile(*mdFile, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *mdFile)
	}
}
