// Benchmarks regenerating every figure and table of the paper.
//
// Each benchmark runs the corresponding experiment from
// internal/experiments and prints the reproduced rows/series (first
// iteration only), so
//
//	go test -bench=. -benchmem
//
// both times the full reproduction and emits the paper-vs-measured data.
// See EXPERIMENTS.md for the recorded results.
package fase_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"

	"fase"
	"fase/internal/dsp/spectral"
	"fase/internal/dsp/window"
	"fase/internal/emsim"
	"fase/internal/experiments"
	"fase/internal/report"
	"fase/internal/specan"
)

var printOnce sync.Map

// runExperiment executes one registered experiment per iteration and
// prints its summary the first time.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(id, experiments.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			fmt.Println()
			fmt.Print(report.Summarize(out))
			for _, t := range out.Tables {
				fmt.Print(report.FormatTable(t))
			}
		}
	}
}

// Conceptual spectra (Figures 1-5) and the micro-benchmark (Figure 6).
func BenchmarkFig01_SineCarrierSineAM(b *testing.B)      { runExperiment(b, "fig01") }
func BenchmarkFig02_SineCarrierActivityAM(b *testing.B)  { runExperiment(b, "fig02") }
func BenchmarkFig03_NoisyCarrierSineAM(b *testing.B)     { runExperiment(b, "fig03") }
func BenchmarkFig04_NoisyCarrierActivityAM(b *testing.B) { runExperiment(b, "fig04") }
func BenchmarkFig05_RealisticSpectrum(b *testing.B)      { runExperiment(b, "fig05") }
func BenchmarkFig06_Microbenchmark(b *testing.B)         { runExperiment(b, "fig06") }

// Side-band details and the heuristic (Figures 7-9).
func BenchmarkFig07_RefreshSidebandDetail(b *testing.B) { runExperiment(b, "fig07") }
func BenchmarkFig08_HarmonicMap(b *testing.B)           { runExperiment(b, "fig08") }
func BenchmarkFig09_HeuristicOutput(b *testing.B)       { runExperiment(b, "fig09") }

// Campaign parameters (Figure 10) and the headline campaigns (11-13).
func BenchmarkFig10_CampaignTable(b *testing.B)    { runExperiment(b, "fig10") }
func BenchmarkFig11_I7MemoryCampaign(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkFig12_CoreRegDetail(b *testing.B)    { runExperiment(b, "fig12") }
func BenchmarkFig13_I7OnChipCampaign(b *testing.B) { runExperiment(b, "fig13") }

// Spread-spectrum DRAM clock (Figures 14-16).
func BenchmarkFig14_SSCClockActivity(b *testing.B) { runExperiment(b, "fig14") }
func BenchmarkFig15_SSCClockSidebands(b *testing.B) {
	runExperiment(b, "fig15")
}
func BenchmarkFig16_SSCClockDetection(b *testing.B) { runExperiment(b, "fig16") }

// The AMD Turion laptop (Figure 17) and the §4 source-analysis claims.
func BenchmarkFig17_TurionCampaign(b *testing.B)       { runExperiment(b, "fig17") }
func BenchmarkRefreshInverseActivity(b *testing.B)     { runExperiment(b, "refresh-inverse") }
func BenchmarkFMRegulatorRejection(b *testing.B)       { runExperiment(b, "fm-rejection") }
func BenchmarkNearFieldRefreshGCD(b *testing.B)        { runExperiment(b, "nearfield-gcd") }
func BenchmarkValidationAllSystems(b *testing.B)       { runExperiment(b, "validation") }
func BenchmarkBaselineComparison(b *testing.B)         { runExperiment(b, "baseline-comparison") }
func BenchmarkAblationNumAlternations(b *testing.B)    { runExperiment(b, "ablation-nalts") }
func BenchmarkAblationCombinationRule(b *testing.B)    { runExperiment(b, "ablation-combine") }
func BenchmarkAblationHarmonicRedundancy(b *testing.B) { runExperiment(b, "ablation-harmonics") }
func BenchmarkAblationFDelta(b *testing.B)             { runExperiment(b, "ablation-fdelta") }
func BenchmarkAblationAverages(b *testing.B)           { runExperiment(b, "ablation-averages") }

// Extensions: the attack the carriers enable, the paper's proposed
// mitigation, and the §4.4 FM-FASE future-work detector.
func BenchmarkAttackLeakage(b *testing.B)     { runExperiment(b, "attack-leakage") }
func BenchmarkMitigationRefresh(b *testing.B) { runExperiment(b, "mitigation-refresh") }
func BenchmarkFMFase(b *testing.B)            { runExperiment(b, "fm-fase") }
func BenchmarkFIVRBandwidth(b *testing.B)     { runExperiment(b, "fivr-bandwidth") }
func BenchmarkPairRobustness(b *testing.B)    { runExperiment(b, "pair-robustness") }
func BenchmarkCarrierTracking(b *testing.B)   { runExperiment(b, "carrier-tracking") }
func BenchmarkCampaign2Sweep(b *testing.B)    { runExperiment(b, "campaign2-sweep") }

// benchScene builds the i7 desktop scene the pipeline benchmarks share.
func benchScene(b *testing.B) *emsim.Scene {
	b.Helper()
	sys, err := fase.LookupSystem("i7-desktop")
	if err != nil {
		b.Fatal(err)
	}
	return sys.Scene(1, true)
}

// BenchmarkSceneRender times one capture render — the inner loop of every
// sweep (4096 samples, the narrowband campaign's segment size).
func BenchmarkSceneRender(b *testing.B) {
	scene := benchScene(b)
	const n = 4096
	dst := make([]complex128, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scene.RenderInto(dst, emsim.Capture{
			Band: emsim.Band{Center: 400e3, SampleRate: 409600},
			N:    n, Seed: int64(i),
		})
	}
}

// BenchmarkPeriodogram times the window+FFT+calibrate stage on one
// capture.
func BenchmarkPeriodogram(b *testing.B) {
	scene := benchScene(b)
	const n = 4096
	buf := make([]complex128, n)
	scene.RenderInto(buf, emsim.Capture{
		Band: emsim.Band{Center: 400e3, SampleRate: 409600}, N: n, Seed: 7,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spectral.Periodogram(buf, 409600, 400e3, window.BlackmanHarris)
	}
}

// BenchmarkSweep times one full analyzer sweep over the regulator band.
func BenchmarkSweep(b *testing.B) {
	scene := benchScene(b)
	an := specan.New(specan.Config{Fres: 100})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := an.Sweep(specan.Request{Scene: scene, F1: 250e3, F2: 550e3, Seed: int64(i)})
		if sp.Bins() == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkWideSweep times the 0.1–4 MHz CLI scan (cmd/emspec defaults):
// one analyzer sweep at 50 Hz resolution over the full first-campaign
// band — the workload the render planner targets.
func BenchmarkWideSweep(b *testing.B) {
	scene := benchScene(b)
	an := specan.New(specan.Config{Fres: 50})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := an.Sweep(specan.Request{Scene: scene, F1: 100e3, F2: 4e6, Seed: int64(i)})
		if sp.Bins() == 0 {
			b.Fatal("empty sweep")
		}
	}
	b.StopTimer()
	writeBenchJSON(b, "BenchmarkWideSweep", b.Elapsed().Nanoseconds()/int64(b.N))
}

// writeBenchJSON records the wide-sweep result for the Makefile's
// bench-regress gate, which compares a fresh run against the committed
// BENCH_sweep.json. FASE_BENCH_OUT redirects the output (the gate writes
// its fresh run to a temporary path); unset, the committed baseline is
// refreshed in place. Only reached under -bench, so plain `go test` never
// writes.
func writeBenchJSON(b *testing.B, name string, nsPerOp int64) {
	path := os.Getenv("FASE_BENCH_OUT")
	if path == "" {
		path = "BENCH_sweep.json"
	}
	out, err := json.MarshalIndent(struct {
		Benchmark  string `json:"benchmark"`
		Iterations int    `json:"iterations"`
		NsPerOp    int64  `json:"ns_per_op"`
	}{name, b.N, nsPerOp}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCampaignNarrowband times the core FASE pipeline (5 sweeps +
// scoring + detection) on a regulator-band campaign — the unit of work an
// operator iterates on. It records BENCH_campaign.json for the Makefile's
// campaign regression gate, including the per-stage wall split from one
// instrumented run taken outside the timed region.
func BenchmarkCampaignNarrowband(b *testing.B) {
	sys, err := fase.LookupSystem("i7-desktop")
	if err != nil {
		b.Fatal(err)
	}
	runner := fase.NewRunner(sys.Scene(1, true))
	campaign := fase.Campaign{
		F1: 250e3, F2: 550e3, Fres: 100,
		FAlt1: 43.3e3, FDelta: 1e3,
		X: fase.LDM, Y: fase.LDL1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := campaign
		c.Seed = int64(i)
		res := runner.Run(c)
		if len(res.Detections) == 0 {
			b.Fatal("no detections")
		}
	}
	b.StopTimer()
	nsPerOp := b.Elapsed().Nanoseconds() / int64(b.N)
	// One instrumented run, outside the timed loop, attributes the time to
	// pipeline stages; the split rides along in the baseline file.
	obsRunner := fase.NewRunner(sys.Scene(1, true))
	obsRunner.Obs = fase.NewObsRun()
	if _, err := obsRunner.RunE(campaign); err != nil {
		b.Fatal(err)
	}
	writeCampaignBenchJSON(b, nsPerOp, obsRunner.Obs.Manifest())
}

// BenchmarkCampaignAdaptive times the budgeted coarse-to-fine planner on
// the full regulator band (200–900 kHz, the accuracy corpus geometry),
// with the transform cap pinned (MaxFFT 2048 splits the band into five
// segments a window re-sweep can actually avoid) and the budget at 30%
// of the exhaustive capture cost. It records BENCH_adaptive.json —
// ns/op plus the captures the planner spent vs the exhaustive price —
// for the Makefile's adaptive regression gate.
func BenchmarkCampaignAdaptive(b *testing.B) {
	sys, err := fase.LookupSystem("i7-desktop")
	if err != nil {
		b.Fatal(err)
	}
	runner := fase.NewRunner(sys.Scene(1, true))
	campaign := fase.Campaign{
		F1: 200e3, F2: 900e3, Fres: 100,
		FAlt1: 43.3e3, FDelta: 1e3,
		X: fase.LDM, Y: fase.LDL1,
		MaxFFT: 2048,
	}
	// Price the exhaustive campaign once (outside the timed loop) so the
	// budget is a fraction of it, not a magic number.
	exhaustive, err := runner.RunE(campaign)
	if err != nil {
		b.Fatal(err)
	}
	campaign.Budget = int(exhaustive.Captures * 30 / 100)
	campaign.Adaptive = &fase.AdaptivePlan{}
	var capturesUsed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := campaign
		c.Seed = int64(i)
		res, err := runner.RunE(c)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Detections) == 0 {
			b.Fatal("no detections")
		}
		capturesUsed = res.Captures
	}
	b.StopTimer()
	writeAdaptiveBenchJSON(b, b.Elapsed().Nanoseconds()/int64(b.N), capturesUsed, exhaustive.Captures)
}

// writeAdaptiveBenchJSON records the adaptive benchmark for the Makefile's
// bench-regress gate. As with the other BENCH_* writers,
// FASE_BENCH_ADAPTIVE_OUT redirects the fresh run to a temporary path;
// unset, the committed BENCH_adaptive.json baseline is refreshed in place.
func writeAdaptiveBenchJSON(b *testing.B, nsPerOp, capturesUsed, exhaustiveCaptures int64) {
	path := os.Getenv("FASE_BENCH_ADAPTIVE_OUT")
	if path == "" {
		path = "BENCH_adaptive.json"
	}
	out, err := json.MarshalIndent(struct {
		Benchmark          string `json:"benchmark"`
		Iterations         int    `json:"iterations"`
		NsPerOp            int64  `json:"ns_per_op"`
		CapturesUsed       int64  `json:"captures_used"`
		ExhaustiveCaptures int64  `json:"exhaustive_captures"`
	}{"BenchmarkCampaignAdaptive", b.N, nsPerOp, capturesUsed, exhaustiveCaptures}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// writeCampaignBenchJSON records the campaign benchmark result plus its
// stage split for the bench-regress campaign gate. As with FASE_BENCH_OUT,
// FASE_BENCH_CAMPAIGN_OUT redirects the fresh run to a temporary path;
// unset, the committed BENCH_campaign.json baseline is refreshed in place.
func writeCampaignBenchJSON(b *testing.B, nsPerOp int64, m *fase.RunManifest) {
	path := os.Getenv("FASE_BENCH_CAMPAIGN_OUT")
	if path == "" {
		path = "BENCH_campaign.json"
	}
	type stage struct {
		Name        string  `json:"name"`
		WallSeconds float64 `json:"wall_seconds"`
	}
	rec := struct {
		Benchmark  string  `json:"benchmark"`
		Iterations int     `json:"iterations"`
		NsPerOp    int64   `json:"ns_per_op"`
		Stages     []stage `json:"stages"`
	}{Benchmark: "BenchmarkCampaignNarrowband", Iterations: b.N, NsPerOp: nsPerOp}
	for _, st := range m.Stages {
		rec.Stages = append(rec.Stages, stage{Name: st.Name, WallSeconds: st.WallSeconds})
	}
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
