// Kernel microbenchmarks: single-emitter render times for the three
// dynamic kernels the campaign spends its cycles in (switching regulator,
// memory refresh, spread-spectrum clock), each idle and under load.
//
// Each parent benchmark records its sub-benchmark results into
// BENCH_kernels.json for the Makefile's bench-regress gate (see
// writeKernelBenchJSON). The idle case renders against the constant idle
// trace — one run for the segmented paths — while the loaded case renders
// against a generated alternation micro-benchmark trace, which forces the
// run-length machinery to walk thousands of load change-points.
package fase_test

import (
	"encoding/json"
	"os"
	"sync"
	"testing"

	"fase"
	"fase/internal/emsim"
	"fase/internal/microbench"
)

// kernelBenchCapture is the campaign narrowband segment shape: 4096
// samples at 409.6 kHz (100 Hz resolution), a 10 ms window.
const (
	kernelBenchN  = 4096
	kernelBenchFs = 409600.0
)

// kernelBenchTrace generates the alternation load trace the loaded
// sub-benchmarks share — LDM/LDL1 at 43.3 kHz, the campaign's first
// alternation frequency, so a 10 ms window sees ~433 alternation periods.
func kernelBenchTrace(b *testing.B) *fase.Trace {
	b.Helper()
	return microbench.Generate(microbench.Config{
		X: fase.LDM, Y: fase.LDL1,
		FAlt:   43.3e3,
		Jitter: microbench.DefaultJitter(),
		Seed:   1,
	}, 0.1)
}

// benchRenderComponent times a single component's render, idle and
// loaded, and reports both into the kernels baseline under the given key
// prefix.
func benchRenderComponent(b *testing.B, key string, c emsim.Component, center float64) {
	scene := &emsim.Scene{}
	scene.Add(c)
	trace := kernelBenchTrace(b)
	results := map[string]int64{}
	for _, loaded := range []bool{false, true} {
		name, activity := "idle", (*fase.Trace)(nil)
		if loaded {
			name, activity = "loaded", trace
		}
		b.Run(name, func(b *testing.B) {
			dst := make([]complex128, kernelBenchN)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scene.RenderInto(dst, emsim.Capture{
					Band:     emsim.Band{Center: center, SampleRate: kernelBenchFs},
					N:        kernelBenchN,
					Seed:     int64(i),
					Activity: activity,
				})
			}
			b.StopTimer()
			results[key+"_"+name+"_ns_per_op"] = b.Elapsed().Nanoseconds() / int64(b.N)
		})
	}
	writeKernelBenchJSON(b, results)
}

// BenchmarkRenderRegulator times the i7 core supply regulator (332.5 kHz,
// the campaign's strongest detection) over the regulator band.
func BenchmarkRenderRegulator(b *testing.B) {
	sys, err := fase.LookupSystem("i7-desktop")
	if err != nil {
		b.Fatal(err)
	}
	benchRenderComponent(b, "render_regulator", sys.CoreRegulator, 400e3)
}

// BenchmarkRenderRefresh times the DDR3 refresh impulse train — ~5120
// pulses per 10 ms window across 4 ranks.
func BenchmarkRenderRefresh(b *testing.B) {
	sys, err := fase.LookupSystem("i7-desktop")
	if err != nil {
		b.Fatal(err)
	}
	benchRenderComponent(b, "render_refresh", sys.Refresh, 400e3)
}

// BenchmarkRenderSSC times the spread-spectrum DDR3 clock in its own
// band (333 MHz, 1 MHz spread).
func BenchmarkRenderSSC(b *testing.B) {
	sys, err := fase.LookupSystem("i7-desktop")
	if err != nil {
		b.Fatal(err)
	}
	benchRenderComponent(b, "render_ssc", sys.DRAMClock, 333e6)
}

var kernelBenchMu sync.Mutex

// writeKernelBenchJSON merges the given results into the kernels baseline
// file — a flat one-key-per-line JSON object so the Makefile gate can
// extract values with sed. Merging (read, update, rewrite) lets the three
// parent benchmarks contribute to one file regardless of -bench filters.
// FASE_BENCH_KERNELS_OUT redirects the output (the bench-regress gate
// points it at a temporary path); unset, the committed BENCH_kernels.json
// is refreshed in place. Only reached under -bench.
func writeKernelBenchJSON(b *testing.B, results map[string]int64) {
	b.Helper()
	kernelBenchMu.Lock()
	defer kernelBenchMu.Unlock()
	path := os.Getenv("FASE_BENCH_KERNELS_OUT")
	if path == "" {
		path = "BENCH_kernels.json"
	}
	merged := map[string]int64{}
	if prev, err := os.ReadFile(path); err == nil && len(prev) > 0 {
		if err := json.Unmarshal(prev, &merged); err != nil {
			b.Fatalf("corrupt kernels baseline %s: %v", path, err)
		}
	}
	for k, v := range results {
		merged[k] = v
	}
	out, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
