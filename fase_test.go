package fase_test

import (
	"math"
	"sort"
	"testing"

	"fase"
)

func TestSystemRegistry(t *testing.T) {
	names := fase.SystemNames()
	sort.Strings(names)
	want := []string{"fivr-desktop", "i3-laptop", "i7-desktop", "p3m-laptop", "turion-laptop"}
	if len(names) != len(want) {
		t.Fatalf("systems: %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("system %d = %q, want %q", i, names[i], want[i])
		}
	}
	if _, err := fase.LookupSystem("i7-desktop"); err != nil {
		t.Error(err)
	}
	if _, err := fase.LookupSystem("bogus"); err == nil {
		t.Error("LookupSystem should reject unknown names")
	}
}

// TestEndToEndMemoryCampaign is the library's headline integration test:
// the public API finds exactly the memory-side carriers on the i7, with
// the AM environment present, and nothing else.
func TestEndToEndMemoryCampaign(t *testing.T) {
	sys, err := fase.LookupSystem("i7-desktop")
	if err != nil {
		t.Fatal(err)
	}
	runner := fase.NewRunner(sys.Scene(1, true))
	res := runner.Run(fase.Campaign{
		F1: 250e3, F2: 550e3, Fres: 100,
		FAlt1: 43.3e3, FDelta: 1e3,
		X: fase.LDM, Y: fase.LDL1, Seed: 77,
	})
	want := []float64{315e3, 475e3, 512e3}
	if len(res.Detections) != len(want) {
		t.Fatalf("detections: %+v", res.Detections)
	}
	for i, f := range want {
		if math.Abs(res.Detections[i].Freq-f) > 500 {
			t.Errorf("detection %d at %.1f kHz, want %.1f", i, res.Detections[i].Freq/1e3, f/1e3)
		}
	}
	// The core regulator (332.5 kHz) must not appear under LDM/LDL1.
	for _, d := range res.Detections {
		if math.Abs(d.Freq-332.5e3) < 2e3 {
			t.Error("core regulator falsely reported")
		}
	}
}

func TestEndToEndClassification(t *testing.T) {
	sys, err := fase.LookupSystem("i7-desktop")
	if err != nil {
		t.Fatal(err)
	}
	runner := fase.NewRunner(sys.Scene(2, false))
	base := fase.Campaign{
		F1: 280e3, F2: 540e3, Fres: 100,
		FAlt1: 43.3e3, FDelta: 1e3, Seed: 5,
	}
	mem := base
	mem.X, mem.Y = fase.LDM, fase.LDL1
	memRes := runner.Run(mem)
	chip := base
	chip.X, chip.Y = fase.LDL2, fase.LDL1
	chipRes := runner.Run(chip)
	classes := map[float64]fase.ModulationClass{}
	for _, cc := range fase.Classify(memRes, chipRes, 0) {
		classes[math.Round(cc.Freq/1e3)] = cc.Class
	}
	if classes[315] != fase.MemoryRelated {
		t.Errorf("315 kHz class %v", classes[315])
	}
	if classes[333] != fase.OnChipRelated && classes[332] != fase.OnChipRelated {
		t.Errorf("core regulator class missing: %v", classes)
	}
}

func TestGroupHarmonicsFacade(t *testing.T) {
	dets := []fase.Detection{{Freq: 100e3}, {Freq: 200e3}, {Freq: 300e3}}
	sets := fase.GroupHarmonics(dets, 0)
	if len(sets) != 1 || math.Abs(sets[0].Fundamental-100e3) > 100 {
		t.Errorf("sets: %+v", sets)
	}
}

func TestPaperCampaignsFacade(t *testing.T) {
	cs := fase.PaperCampaigns(fase.LDM, fase.LDL1)
	if len(cs) != 3 || cs[0].Fres != 50 {
		t.Errorf("paper campaigns wrong: %+v", cs)
	}
}

func TestCaptureAndDemod(t *testing.T) {
	sys, err := fase.LookupSystem("i7-desktop")
	if err != nil {
		t.Fatal(err)
	}
	scene := sys.Scene(3, false)
	clk := sys.DRAMClock
	fs := 8e6
	x := fase.CaptureBaseband(scene, clk.F0-0.5e6, fs, 1<<15, fase.ConstantActivity(fase.LDM), 4)
	if len(x) != 1<<15 {
		t.Fatalf("capture length %d", len(x))
	}
	// The SSC sweep must be visible to the FM meter: a ±500 kHz sine
	// sweep has ~354 kHz RMS deviation (peak-to-peak is noise-fragile).
	st := fase.MeasureFM(x, fs, 32)
	if st.DeviationHz < 200e3 || st.DeviationHz > 600e3 {
		t.Errorf("SSC RMS deviation %.0f kHz, want ~354 kHz", st.DeviationHz/1e3)
	}
	// And to the spectrogram tracker.
	sg := fase.STFT(x, fs, clk.F0-0.5e6, 2048, 1024)
	track := sg.PeakTrack()
	lo, hi := track[0], track[0]
	for _, f := range track {
		lo = math.Min(lo, f)
		hi = math.Max(hi, f)
	}
	if lo < clk.F0-clk.SpreadHz-100e3 || hi > clk.F0+100e3 {
		t.Errorf("tracked sweep [%.3f, %.3f] MHz outside configured spread", lo/1e6, hi/1e6)
	}
	if hi-lo < 0.5e6 {
		t.Errorf("tracker saw only %.0f kHz of the 1 MHz sweep", (hi-lo)/1e3)
	}
	// AM envelope demodulation runs and returns magnitudes.
	env := fase.EnvelopeAM(x)
	for _, v := range env[:10] {
		if v < 0 {
			t.Fatal("negative envelope")
		}
	}
}

func TestLeakageFacade(t *testing.T) {
	sys, err := fase.LookupSystem("i7-desktop")
	if err != nil {
		t.Fatal(err)
	}
	scene := sys.Scene(4, false)
	bits := []byte{1, 0, 0, 1, 1, 0, 1, 0, 1, 1, 0, 0, 1, 0, 1, 1,
		0, 1, 0, 0, 1, 1, 0, 1, 0, 1, 1, 0, 0, 1, 0, 1}
	rx := &fase.Receiver{Carrier: sys.MemRegulator.FSw, Bandwidth: 15e3}
	lk := fase.QuantifyLeakage(rx, scene, bits, fase.LDM, fase.LDL1, 250e-6, 5)
	if lk.BER > 0.05 {
		t.Errorf("facade attack BER %.3f", lk.BER)
	}
	// The low-level pieces compose the same way.
	tr := fase.SecretTrace(bits, fase.LDM, fase.LDL1, 250e-6)
	env := rx.Recover(scene, float64(len(bits))*250e-6, tr, 5)
	got := fase.RecoverBits(env, rx.SampleRate(), len(bits), 250e-6)
	if ber := fase.BitErrorRate(got, bits); ber > 0.05 {
		t.Errorf("manual chain BER %.3f", ber)
	}
}

func TestFMFaseFacade(t *testing.T) {
	sys, err := fase.LookupSystem("turion-laptop")
	if err != nil {
		t.Fatal(err)
	}
	runner := fase.NewRunner(sys.Scene(5, false))
	dets := runner.RunFM(fase.FMCampaign{
		F1: 0.3e6, F2: 0.5e6, FAlt1: 400, FDelta: 60,
		X: fase.LDL2, Y: fase.LDL1, Seed: 6,
	})
	if len(dets) == 0 {
		t.Error("FM-FASE facade found nothing")
	}
}

func TestAlternationTrace(t *testing.T) {
	tr := fase.Alternation(fase.LDM, fase.LDL1, 10e3, 0.01, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Segments) < 150 {
		t.Errorf("segments: %d", len(tr.Segments))
	}
}
