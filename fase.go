// Package fase reproduces FASE — Finding Amplitude-modulated Side-channel
// Emanations (Callan, Zajić, Prvulović; ISCA 2015) — as a library.
//
// FASE finds the EM carrier signals of a computer system that are
// amplitude-modulated by specific program activity. It runs a
// micro-benchmark that alternates two activities (say, LLC-missing loads
// and L1 hits) at a controlled frequency f_alt, records the spectrum at
// five slightly different f_alt values, and scores every frequency by
// whether side-bands *move with* f_alt — the unique fingerprint of
// activity modulation that radio stations, unmodulated clocks, and noise
// cannot fake.
//
// Because the original work is gated on lab hardware (a loop antenna, a
// spectrum analyzer, and four real machines), this package pairs the
// unchanged FASE algorithm with a physics-based emanation simulator:
// switching voltage regulators (duty-cycle AM), DRAM refresh combs
// (activity-disrupted timing), spread-spectrum clocks, a metropolitan AM
// broadcast environment, and noise. See DESIGN.md for the substitution
// map and EXPERIMENTS.md for the per-figure reproduction record.
//
// Quick start:
//
//	sys, _ := fase.LookupSystem("i7-desktop")
//	runner := fase.NewRunner(sys.Scene(1, true))
//	res := runner.Run(fase.Campaign{
//	        F1: 100e3, F2: 4e6, Fres: 50,
//	        FAlt1: 43.3e3, FDelta: 500,
//	        X: fase.LDM, Y: fase.LDL1,
//	})
//	for _, d := range res.Detections {
//	        fmt.Printf("%.1f kHz (score %.0f)\n", d.Freq/1e3, d.Score)
//	}
package fase

import (
	"fase/internal/activity"
	"fase/internal/attack"
	"fase/internal/core"
	"fase/internal/dsp/demod"
	"fase/internal/dsp/spectral"
	"fase/internal/dsp/window"
	"fase/internal/emsim"
	"fase/internal/machine"
	"fase/internal/microbench"
	"fase/internal/obs"
	"fase/internal/specan"
)

// Activity kinds for the X/Y alternation micro-benchmark (§2.2, Fig. 6).
const (
	// Idle is the quiescent system.
	Idle = activity.Idle
	// LDM is a load missing the LLC (main-memory access).
	LDM = activity.LDM
	// STM is a store producing write-back traffic to main memory.
	STM = activity.STM
	// LDL1 is an L1-hit load.
	LDL1 = activity.LDL1
	// LDL2 is an L2-hit load.
	LDL2 = activity.LDL2
	// ADD, SUB, MUL, DIV are dependent integer ALU activities.
	ADD = activity.ADD
	SUB = activity.SUB
	MUL = activity.MUL
	DIV = activity.DIV
)

// Kind identifies a micro-benchmark activity.
type Kind = activity.Kind

// Load is an activity's demand on the system's power domains.
type Load = activity.Load

// Trace is a time-varying activity envelope.
type Trace = activity.Trace

// Campaign configures a FASE measurement campaign (Figure 10 row).
type Campaign = core.Campaign

// AdaptivePlan tunes the budgeted coarse-to-fine scan planner; set it
// (with Campaign.Budget) to replace the exhaustive raster. The zero
// value resolves every knob to its documented default.
type AdaptivePlan = core.AdaptivePlan

// Detection is one activity-modulated carrier FASE found.
type Detection = core.Detection

// Result is a completed campaign with measurements, heuristic score
// traces, and detections.
type Result = core.Result

// Runner executes campaigns against a scene.
type Runner = core.Runner

// MinScoreZero is the Campaign.MinScore sentinel requesting a literal 0
// detection threshold (a zero MinScore means "use the default").
const MinScoreZero = core.MinScoreZero

// ObsRun collects one campaign's observability — stage timings, planner
// and cache statistics, detection provenance — into a run manifest.
// Attach one to Runner.Obs before RunE; read the result with Manifest().
type ObsRun = obs.Run

// Tracer records campaign → sweep → capture spans and writes them as
// Chrome trace_event JSON (set it on an ObsRun).
type Tracer = obs.Tracer

// RunManifest is the per-run record an instrumented campaign produces.
type RunManifest = obs.Manifest

// NewObsRun starts an observability run (clock + metrics snapshot).
func NewObsRun() *ObsRun { return obs.NewRun() }

// NewTracer creates a span tracer whose epoch is now.
func NewTracer() *Tracer { return obs.NewTracer() }

// HarmonicSet groups detections at multiples of a common fundamental.
type HarmonicSet = core.HarmonicSet

// ClassifiedCarrier is a detection annotated with the system aspect that
// modulates it (memory-related vs on-chip, §2.2).
type ClassifiedCarrier = core.ClassifiedCarrier

// ModulationClass is the cross-activity classification verdict.
type ModulationClass = core.ModulationClass

// Modulation classes.
const (
	MemoryRelated = core.MemoryRelated
	OnChipRelated = core.OnChipRelated
	BothRelated   = core.BothRelated
)

// System is a modeled computer (emitters plus role handles).
type System = machine.System

// Scene is a measurement setup: system emitters plus RF environment.
type Scene = emsim.Scene

// Spectrum is a measured power spectrum (linear mW bins; DBm helpers).
type Spectrum = spectral.Spectrum

// Analyzer is the swept spectrum analyzer.
type Analyzer = specan.Analyzer

// AnalyzerConfig tunes the analyzer (RBW, averaging, window).
type AnalyzerConfig = specan.Config

// SweepRequest is one spectrum measurement request.
type SweepRequest = specan.Request

// Spectrogram is a time-frequency map whose PeakTrack method follows a
// swept carrier (§4.3 carrier tracking, §4.4 FM confirmation).
type Spectrogram = demod.Spectrogram

// FMStats summarizes an instantaneous-frequency trace.
type FMStats = demod.FMStats

// SystemNames lists the built-in system models.
func SystemNames() []string {
	reg := machine.Registry()
	out := make([]string, 0, len(reg))
	for name := range reg {
		out = append(out, name)
	}
	return out
}

// LookupSystem returns a built-in system model by name
// ("i7-desktop", "i3-laptop", "turion-laptop", "p3m-laptop").
func LookupSystem(name string) (*System, error) { return machine.Lookup(name) }

// NewRunner creates a campaign runner for a scene.
func NewRunner(scene *Scene) *Runner { return &Runner{Scene: scene} }

// NewAnalyzer creates a spectrum analyzer.
func NewAnalyzer(cfg AnalyzerConfig) *Analyzer { return specan.New(cfg) }

// PaperCampaigns returns the paper's three measurement campaigns
// (Figure 10) for an activity pair.
func PaperCampaigns(x, y Kind) []Campaign { return core.PaperCampaigns(x, y) }

// GroupHarmonics clusters detections into harmonic sets (§4). tol is the
// relative frequency tolerance; 0 selects the default (0.004).
func GroupHarmonics(dets []Detection, tol float64) []HarmonicSet {
	return core.GroupHarmonics(dets, tol)
}

// Classify cross-references a memory-alternation campaign and an on-chip
// alternation campaign to attribute each carrier (§2.2). tolHz 0 selects
// the default (1 kHz).
func Classify(memory, onchip *Result, tolHz float64) []ClassifiedCarrier {
	return core.Classify(memory, onchip, tolHz)
}

// Alternation generates the Figure 6 X/Y alternation activity trace at
// fAlt for the given duration, with the default contention-jitter model.
func Alternation(x, y Kind, fAlt, duration float64, seed int64) *Trace {
	return microbench.Generate(microbench.Config{
		X: x, Y: y, FAlt: fAlt,
		Jitter: microbench.DefaultJitter(), Seed: seed,
	}, duration)
}

// ConstantActivity returns a trace running one activity continuously
// (the LDM/LDM and LDL1/LDL1 controls of Figures 7, 12 and 14).
func ConstantActivity(k Kind) *Trace { return microbench.Constant(k) }

// STFT computes a spectrogram of a complex-baseband capture — the tool
// the paper uses to confirm frequency modulation (§4.4) and to track
// spread-spectrum carriers (§4.3).
func STFT(x []complex128, fs, fc float64, frameLen, hop int) *Spectrogram {
	return demod.STFT(x, fs, fc, frameLen, hop, window.Hann)
}

// MeasureFM computes FM statistics of a complex-baseband capture.
func MeasureFM(x []complex128, fs float64, smooth int) FMStats {
	return demod.MeasureFM(x, fs, smooth)
}

// EnvelopeAM demodulates the AM envelope of a complex-baseband capture
// centered on a carrier — what an attacker does with a FASE-found carrier.
func EnvelopeAM(x []complex128) []float64 { return demod.EnvelopeComplex(x) }

// CaptureBaseband renders n complex-baseband samples of the scene's
// emanations in the band center ± fs/2 while the given activity runs —
// the raw antenna feed used for demodulation and carrier tracking.
func CaptureBaseband(scene *Scene, center, fs float64, n int, act *Trace, seed int64) []complex128 {
	return scene.Render(emsim.Capture{
		Band:     emsim.Band{Center: center, SampleRate: fs},
		N:        n,
		Activity: act,
		Seed:     seed,
	})
}

// FMCampaign configures the §4.4 extension: a FASE-like search for
// carriers whose *frequency* is modulated by activity (constant-on-time
// regulators), which AM-FASE correctly does not report. Run with
// Runner.RunFM.
type FMCampaign = core.FMCampaign

// FMDetection is a frequency-modulated carrier found by Runner.RunFM.
type FMDetection = core.FMDetection

// Receiver is the attacker's demodulation chain for a FASE-found carrier
// (tune, band-limit, AM-demodulate) — see package internal/attack.
type Receiver = attack.Receiver

// Leakage quantifies the information a carrier leaks about activity.
type Leakage = attack.Leakage

// SecretTrace encodes a bit string as victim activity (1 → x, 0 → y),
// each bit lasting tBit seconds.
func SecretTrace(bits []byte, x, y Kind, tBit float64) *Trace {
	return attack.SecretTrace(bits, x, y, tBit)
}

// RecoverBits decodes a demodulated envelope back into bits.
func RecoverBits(env []float64, fs float64, nBits int, tBit float64) []byte {
	return attack.RecoverBits(env, fs, nBits, tBit)
}

// BitErrorRate compares recovered bits to the truth (polarity-agnostic).
func BitErrorRate(got, want []byte) float64 { return attack.BitErrorRate(got, want) }

// QuantifyLeakage measures a carrier's leakage for a secret bit pattern:
// bit error rate, class-separation SNR, and implied channel capacity.
func QuantifyLeakage(r *Receiver, scene *Scene, bits []byte, x, y Kind, tBit float64, seed int64) Leakage {
	return attack.Quantify(r, scene, bits, x, y, tBit, seed)
}
