package report_test

import (
	"math"
	"strings"
	"testing"

	"fase/internal/obs"
	"fase/internal/report"
)

// FuzzManifestTables renders manifests built from arbitrary numbers —
// NaN/Inf timings, negative frequencies and counts, empty and oversized
// harmonic lists — through every manifest table and the text formatter.
// The contract: rendering never panics and always produces the four
// tables, whatever garbage an on-disk manifest holds (ManifestTables is
// fed from user-supplied -manifest-out JSON, which json.Unmarshal happily
// fills with any float and any sign).
func FuzzManifestTables(f *testing.F) {
	nan, inf := math.NaN(), math.Inf(1)
	f.Add(1.5, 1.2, 0.8, 315e3, 120.0, 5, int64(200))
	f.Add(nan, nan, nan, nan, nan, 0, int64(0))
	f.Add(0.0, inf, -inf, -440e3, -1.0, -7, int64(-3)) // negative frequency, harmonic, counts
	f.Add(-1.0, 0.0, 0.0, inf, 1e308, 99, int64(1<<62))
	f.Fuzz(func(t *testing.T, wall, stageWall, hitRate, freq, score float64, harmonic int, captures int64) {
		m := &obs.Manifest{
			Schema:           "fase-run-manifest/1",
			TotalWallSeconds: wall,
			TotalCPUSeconds:  wall / 2,
			Captures:         captures,
			Stages: []obs.StageTiming{
				{Name: "sweeps", WallSeconds: stageWall, CPUSeconds: stageWall},
				{Name: "", WallSeconds: -stageWall},
			},
			Caches: map[string]obs.CacheStats{
				"fft_plan": {Hits: captures, Misses: -1, HitRate: hitRate},
				"":         {HitRate: nan},
			},
			Planner: obs.PlannerStats{
				PlansBuilt: captures, CacheMisses: -captures,
				Segments: []obs.SegmentPlan{{CenterHz: freq}},
			},
			Detections: []obs.DetectionRecord{
				{
					FreqHz: freq, Score: score, BestHarmonic: harmonic,
					Harmonics:    []int{harmonic, -harmonic},
					MagnitudeDBm: score, DepthDB: -score,
					SubScores: []obs.HarmonicScore{
						{Harmonic: harmonic, Score: score, Elevated: harmonic},
					},
				},
				{}, // all-zero record
			},
		}
		tables := report.ManifestTables(m)
		if len(tables) != 4 {
			t.Fatalf("%d tables, want 4", len(tables))
		}
		for _, tb := range tables {
			out := report.FormatTable(tb)
			if !strings.Contains(out, tb.Title) {
				t.Fatalf("formatted table lost its title %q:\n%s", tb.Title, out)
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Header) {
					t.Fatalf("table %q row width %d, header width %d", tb.Title, len(row), len(tb.Header))
				}
			}
		}
	})
}
