// Package report holds the output containers experiments produce — data
// series (figure reproductions) and tables — plus text/CSV renderers used
// by the benchmark harness and the experiments command.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Series is one curve of a reproduced figure.
type Series struct {
	Name string
	// X is typically frequency (Hz), Y typically dBm or a score.
	X, Y []float64
}

// Peak returns the (x, y) of the series' maximum; (0, -inf-ish) if empty.
func (s Series) Peak() (float64, float64) {
	if len(s.Y) == 0 {
		return 0, -1e300
	}
	bi := 0
	for i, v := range s.Y {
		if v > s.Y[bi] {
			bi = i
		}
	}
	return s.X[bi], s.Y[bi]
}

// Table is a reproduced table (or detection list).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Output is everything one experiment produces.
type Output struct {
	ID     string // e.g. "fig11"
	Title  string // what the paper shows
	Series []Series
	Tables []Table
	// Notes record paper-vs-measured observations for EXPERIMENTS.md.
	Notes []string
}

// FormatTable renders a table as aligned text.
func FormatTable(t Table) string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// FormatMarkdownTable renders a table as GitHub-flavored markdown.
func FormatMarkdownTable(t Table) string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// WriteCSV writes series as long-format CSV (series,x,y).
func WriteCSV(w io.Writer, series []Series) error {
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return err
	}
	for _, s := range series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Summarize renders a short, stable description of an output for
// benchmark logs: series peaks and table row counts.
func Summarize(o *Output) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s\n", o.ID, o.Title)
	for _, s := range o.Series {
		x, y := s.Peak()
		fmt.Fprintf(&b, "  series %-28s %5d pts, peak %.6g at %.6g\n", s.Name, len(s.X), y, x)
	}
	for _, t := range o.Tables {
		fmt.Fprintf(&b, "  table  %-28s %d rows\n", t.Title, len(t.Rows))
	}
	for _, n := range o.Notes {
		fmt.Fprintf(&b, "  note   %s\n", n)
	}
	return b.String()
}
