package report

import (
	"fmt"
	"sort"
	"strings"

	"fase/internal/obs"
)

// ManifestTables renders a run manifest as report tables — the human-
// readable view of the JSON a campaign writes with -manifest-out: where
// the time went, what the planner and caches did, and the provenance
// behind every detection.
func ManifestTables(m *obs.Manifest) []Table {
	if m == nil {
		return nil
	}
	tables := []Table{
		manifestStageTable(m),
		manifestCacheTable(m),
		manifestPlannerTable(m),
	}
	if len(m.Histograms) > 0 {
		tables = append(tables, manifestHistogramTable(m))
	}
	if m.Adaptive != nil {
		tables = append(tables, manifestAdaptiveTable(m))
	}
	return append(tables, manifestDetectionTable(m))
}

// manifestHistogramTable renders the per-histogram latency quantiles the
// manifest carries (estimated from bucket counts by linear interpolation).
func manifestHistogramTable(m *obs.Manifest) Table {
	t := Table{
		Title:  "Latency histograms",
		Header: []string{"histogram", "count", "sum s", "p50 s", "p90 s", "p99 s"},
	}
	names := make([]string, 0, len(m.Histograms))
	for name := range m.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := m.Histograms[name]
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", h.Count),
			fmt.Sprintf("%.4f", h.Sum),
			fmt.Sprintf("%.6f", h.P50),
			fmt.Sprintf("%.6f", h.P90),
			fmt.Sprintf("%.6f", h.P99),
		})
	}
	return t
}

// manifestAdaptiveTable summarizes the adaptive planner's budget spend
// and per-window outcomes; emitted only for adaptive campaigns.
func manifestAdaptiveTable(m *obs.Manifest) Table {
	a := m.Adaptive
	t := Table{
		Title: fmt.Sprintf("Adaptive plan (budget %d, used %d of exhaustive %d; recon %d + refine %d @ recon RBW %.0f Hz, %d candidates)",
			a.Budget, a.CapturesUsed, a.ExhaustiveCaptures,
			a.ReconCaptures, a.RefineCaptures, a.ReconFresHz, a.Candidates),
		Header: []string{"window kHz", "priority", "outcome", "captures", "probe score", "detections"},
	}
	for _, w := range a.Windows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f–%.2f", w.F1Hz/1e3, w.F2Hz/1e3),
			fmt.Sprintf("%.1f", w.Priority),
			w.Outcome,
			fmt.Sprintf("%d", w.Captures),
			fmt.Sprintf("%.2f", w.ProbeScore),
			fmt.Sprintf("%d", w.Detections),
		})
	}
	return t
}

func manifestStageTable(m *obs.Manifest) Table {
	t := Table{
		Title:  "Stage timings",
		Header: []string{"stage", "wall s", "cpu s", "share %"},
	}
	for _, st := range m.Stages {
		share := 0.0
		if m.TotalWallSeconds > 0 {
			share = 100 * st.WallSeconds / m.TotalWallSeconds
		}
		t.Rows = append(t.Rows, []string{
			st.Name,
			fmt.Sprintf("%.4f", st.WallSeconds),
			fmt.Sprintf("%.4f", st.CPUSeconds),
			fmt.Sprintf("%.1f", share),
		})
	}
	t.Rows = append(t.Rows, []string{
		"total",
		fmt.Sprintf("%.4f", m.TotalWallSeconds),
		fmt.Sprintf("%.4f", m.TotalCPUSeconds),
		"100.0",
	})
	return t
}

func manifestCacheTable(m *obs.Manifest) Table {
	t := Table{
		Title:  "Cache hit rates",
		Header: []string{"cache", "hits", "misses", "hit rate"},
	}
	names := make([]string, 0, len(m.Caches))
	for name := range m.Caches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := m.Caches[name]
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", c.Hits),
			fmt.Sprintf("%d", c.Misses),
			fmt.Sprintf("%.3f", c.HitRate),
		})
	}
	return t
}

func manifestPlannerTable(m *obs.Manifest) Table {
	p := m.Planner
	return Table{
		Title:  "Render planner",
		Header: []string{"plans", "plan hits", "plan misses", "active", "skipped", "render skips", "segments"},
		Rows: [][]string{{
			fmt.Sprintf("%d", p.PlansBuilt),
			fmt.Sprintf("%d", p.CacheHits),
			fmt.Sprintf("%d", p.CacheMisses),
			fmt.Sprintf("%d", p.ComponentsActive),
			fmt.Sprintf("%d", p.ComponentsSkipped),
			fmt.Sprintf("%d", p.RenderSkips),
			fmt.Sprintf("%d", len(p.Segments)),
		}},
	}
}

func manifestDetectionTable(m *obs.Manifest) Table {
	t := Table{
		Title:  "Detections",
		Header: []string{"freq kHz", "score", "best h", "harmonics", "mag dBm", "depth dB", "sub-scores"},
	}
	for _, d := range m.Detections {
		subs := make([]string, 0, len(d.SubScores))
		for _, s := range d.SubScores {
			subs = append(subs, fmt.Sprintf("%+d:%.1f/%d", s.Harmonic, s.Score, s.Elevated))
		}
		harm := make([]string, 0, len(d.Harmonics))
		for _, h := range d.Harmonics {
			harm = append(harm, fmt.Sprintf("%+d", h))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", d.FreqHz/1e3),
			fmt.Sprintf("%.1f", d.Score),
			fmt.Sprintf("%+d", d.BestHarmonic),
			strings.Join(harm, ","),
			fmt.Sprintf("%.1f", d.MagnitudeDBm),
			fmt.Sprintf("%.1f", d.DepthDB),
			strings.Join(subs, " "),
		})
	}
	return t
}
