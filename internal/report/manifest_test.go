package report

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fase/internal/activity"
	"fase/internal/core"
	"fase/internal/machine"
	"fase/internal/obs"
)

// fixedManifest is a fully deterministic manifest for the golden test.
func fixedManifest() *obs.Manifest {
	return &obs.Manifest{
		Schema:      obs.ManifestSchema,
		CreatedUnix: 1700000000,
		Config:      map[string]any{"f1_hz": 250000.0},
		Build:       obs.BuildInfo{Version: "test", GoVersion: "go1.24.0", OS: "linux", Arch: "amd64"},
		Events:      &obs.EventStats{Emitted: 42},
		Histograms: map[string]obs.HistogramSnapshot{
			"fase_specan_render_seconds": {
				Count: 20, Sum: 0.035,
				Bounds: []float64{1e-3, 2e-3, 4e-3},
				Counts: []int64{10, 8, 2, 0},
				P50:    1e-3, P90: 2.5e-3, P99: 3.85e-3,
			},
		},
		Stages: []obs.StageTiming{
			{Name: "sweeps", WallSeconds: 0.0400, CPUSeconds: 0.1200},
			{Name: "smooth", WallSeconds: 0.0010, CPUSeconds: 0.0010},
			{Name: "score", WallSeconds: 0.0020, CPUSeconds: 0.0020},
			{Name: "detect", WallSeconds: 0.0030, CPUSeconds: 0.0030},
		},
		TotalWallSeconds:         0.0500,
		TotalCPUSeconds:          0.1300,
		SimulatedAnalyzerSeconds: 0.1,
		Captures:                 20,
		RenderSeconds:            0.035,
		FFTSeconds:               0.002,
		Planner: obs.PlannerStats{
			PlansBuilt: 1, CacheHits: 19, CacheMisses: 1,
			ComponentsActive: 9, ComponentsSkipped: 20, RenderSkips: 400,
			Segments: []obs.SegmentPlan{{CenterHz: 400e3, SampleRate: 409600, Samples: 2048, Active: 9, Skipped: 20}},
		},
		Caches: map[string]obs.CacheStats{
			"fft_plan":        {Hits: 19, Misses: 1, HitRate: 0.95},
			"window":          {Hits: 19, Misses: 1, HitRate: 0.95},
			"bufpool_complex": {Hits: 38, Misses: 2, HitRate: 0.95},
			"bufpool_float":   {Hits: 20, Misses: 5, HitRate: 0.8},
			"specan_plan":     {Hits: 19, Misses: 1, HitRate: 0.95},
		},
		Adaptive: &obs.AdaptiveStats{
			Budget: 12, CapturesUsed: 10, ExhaustiveCaptures: 40,
			ReconCaptures: 4, RefineCaptures: 6,
			ReconFresHz: 1600, Candidates: 3,
			Windows: []obs.AdaptiveWindow{
				{F1Hz: 264e3, F2Hz: 365e3, Priority: 9.8, Outcome: obs.WindowRefined, Captures: 6, ProbeScore: 5.1, Detections: 1},
				{F1Hz: 430e3, F2Hz: 520e3, Priority: 2.3, Outcome: obs.WindowAbandoned, Captures: 2, ProbeScore: 0.9},
				{F1Hz: 600e3, F2Hz: 700e3, Priority: 2.0, Outcome: obs.WindowSkipped},
			},
		},
		Detections: []obs.DetectionRecord{{
			FreqHz: 314.8e3, Score: 6371423, BestHarmonic: 1, Harmonics: []int{1, -1},
			MagnitudeDBm: -103.6, DepthDB: -21.2,
			SubScores: []obs.HarmonicScore{
				{Harmonic: 1, Score: 6371423, Elevated: 5},
				{Harmonic: -1, Score: 123456.7, Elevated: 5},
			},
		}},
	}
}

// TestManifestTablesGolden locks the rendered manifest report against
// testdata/manifest_tables.golden. Regenerate with UPDATE_GOLDEN=1.
func TestManifestTablesGolden(t *testing.T) {
	var b strings.Builder
	for _, tbl := range ManifestTables(fixedManifest()) {
		b.WriteString(FormatTable(tbl))
		b.WriteByte('\n')
	}
	got := b.String()
	golden := filepath.Join("testdata", "manifest_tables.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("rendered tables differ from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestManifestTablesNil(t *testing.T) {
	if ManifestTables(nil) != nil {
		t.Error("nil manifest should render no tables")
	}
}

// TestManifestRoundTrip runs a real (tiny) campaign under an obs.Run,
// writes its manifest to disk, reads it back, and checks that the
// round-tripped manifest validates and renders identical tables.
func TestManifestRoundTrip(t *testing.T) {
	sys, err := machine.Lookup("i7-desktop")
	if err != nil {
		t.Fatal(err)
	}
	runner := &core.Runner{Scene: sys.Scene(21, false), Obs: obs.NewRun()}
	_, err = runner.RunE(core.Campaign{
		F1: 0.25e6, F2: 0.55e6, Fres: 200,
		FAlt1: 43.3e3, FDelta: 1e3,
		X: activity.LDM, Y: activity.LDL1, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := runner.Obs.Manifest()
	if m == nil {
		t.Fatal("instrumented campaign produced no manifest")
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateManifestFile(path); err != nil {
		t.Fatalf("written manifest fails validation: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	got := ManifestTables(back)
	want := ManifestTables(m)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tables differ after round trip:\ngot  %+v\nwant %+v", got, want)
	}
	if len(got) != 5 {
		t.Fatalf("expected 5 tables (histograms included), got %d", len(got))
	}
}

// TestManifestRoundTripAdaptive is the adaptive-campaign variant: the
// manifest gains the adaptive-plan table and still round-trips cleanly.
func TestManifestRoundTripAdaptive(t *testing.T) {
	sys, err := machine.Lookup("i7-desktop")
	if err != nil {
		t.Fatal(err)
	}
	runner := &core.Runner{Scene: sys.Scene(21, false), Obs: obs.NewRun()}
	_, err = runner.RunE(core.Campaign{
		F1: 0.25e6, F2: 0.55e6, Fres: 200,
		FAlt1: 43.3e3, FDelta: 1e3,
		X: activity.LDM, Y: activity.LDL1, Seed: 21,
		MaxFFT: 2048, Budget: 30, Adaptive: &core.AdaptivePlan{},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := runner.Obs.Manifest()
	if m == nil {
		t.Fatal("instrumented campaign produced no manifest")
	}
	if m.Adaptive == nil {
		t.Fatal("adaptive campaign produced no adaptive stats")
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateManifestFile(path); err != nil {
		t.Fatalf("written manifest fails validation: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	got := ManifestTables(back)
	want := ManifestTables(m)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tables differ after round trip:\ngot  %+v\nwant %+v", got, want)
	}
	if len(got) != 6 {
		t.Fatalf("expected 6 tables (histograms and adaptive plan included), got %d", len(got))
	}
}
