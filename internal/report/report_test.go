package report

import (
	"strings"
	"testing"
)

func TestSeriesPeak(t *testing.T) {
	s := Series{Name: "x", X: []float64{1, 2, 3}, Y: []float64{-5, 7, 0}}
	x, y := s.Peak()
	if x != 2 || y != 7 {
		t.Errorf("peak = (%g, %g)", x, y)
	}
	if _, y := (Series{}).Peak(); y > -1e200 {
		t.Error("empty series should have very low peak")
	}
}

func TestFormatTable(t *testing.T) {
	tbl := Table{
		Title:  "demo",
		Header: []string{"name", "value"},
		Rows:   [][]string{{"alpha", "1"}, {"beta-long", "22"}},
	}
	got := FormatTable(tbl)
	if !strings.Contains(got, "demo") || !strings.Contains(got, "beta-long") {
		t.Errorf("table output missing content:\n%s", got)
	}
	// Title, header, separator, two rows.
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 5 {
		t.Errorf("table lines = %d:\n%s", len(lines), got)
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header line wrong: %q", lines[1])
	}
}

func TestFormatMarkdownTable(t *testing.T) {
	tbl := Table{Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	got := FormatMarkdownTable(tbl)
	want := "| a | b |\n|---|---|\n| 1 | 2 |\n"
	if got != want {
		t.Errorf("markdown table:\n%q\nwant\n%q", got, want)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []Series{
		{Name: "s1", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Name: "s2", X: []float64{3}, Y: []float64{30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "series,x,y\ns1,1,10\ns1,2,20\ns2,3,30\n"
	if b.String() != want {
		t.Errorf("csv:\n%q\nwant\n%q", b.String(), want)
	}
}

func TestSummarize(t *testing.T) {
	out := &Output{
		ID:     "figX",
		Title:  "demo figure",
		Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{1, 2}}},
		Tables: []Table{{Title: "t", Rows: [][]string{{"r"}}}},
		Notes:  []string{"a note"},
	}
	got := Summarize(out)
	for _, frag := range []string{"[figX]", "demo figure", "series", "1 rows", "a note"} {
		if !strings.Contains(got, frag) {
			t.Errorf("summary missing %q:\n%s", frag, got)
		}
	}
}
