// Package attack demonstrates what FASE's output enables: once a carrier
// modulated by a victim's activity is known, an attacker AM-demodulates
// it and reads the activity from a distance — "the equivalent of power
// side-channel attacks from a distance without the need to place probes
// within the system" (§1, §4.1).
//
// The package implements the receive chain (tune, filter, envelope-
// demodulate, condition), a concrete covert/side-channel bit-recovery
// attack in the style of the paper's RSA-demodulation references
// [28, 31], and leakage quantification (SNR and a capacity estimate) as
// called for by the paper's mitigation-evaluation use case (§6).
package attack

import (
	"fmt"
	"math"

	"fase/internal/activity"
	"fase/internal/dsp/demod"
	"fase/internal/dsp/filter"
	"fase/internal/dsp/spectral"
	"fase/internal/emsim"
)

// Receiver demodulates one carrier of a scene.
type Receiver struct {
	// Carrier is the carrier frequency to tune to (from FASE).
	Carrier float64
	// Bandwidth is the demodulation bandwidth around the carrier; it
	// must cover the modulation side-bands of interest (≥ 2× the highest
	// activity frequency to recover). Zero means 100 kHz.
	Bandwidth float64
	// NearField selects the localization probe front-end.
	NearField       bool
	NearFieldGainDB float64
}

func (r *Receiver) bandwidth() float64 {
	if r.Bandwidth == 0 {
		return 100e3
	}
	return r.Bandwidth
}

// SampleRate returns the capture rate the receiver uses (2.56× the
// demodulation bandwidth, the classic analyzer oversample factor).
func (r *Receiver) SampleRate() float64 { return 2.56 * r.bandwidth() }

// Recover captures duration seconds of the scene while the given
// activity runs, band-limits around the carrier, and returns the
// AM-demodulated, mean-removed envelope at SampleRate().
func (r *Receiver) Recover(scene *emsim.Scene, duration float64, act *activity.Trace, seed int64) []float64 {
	if duration <= 0 {
		panic(fmt.Sprintf("attack: duration %g must be positive", duration))
	}
	fs := r.SampleRate()
	n := int(math.Ceil(duration * fs))
	x := scene.Render(emsim.Capture{
		Band:            emsim.Band{Center: r.Carrier, SampleRate: fs},
		N:               n,
		Activity:        act,
		Seed:            seed,
		NearField:       r.NearField,
		NearFieldGainDB: r.NearFieldGainDB,
	})
	// Band-limit to the demodulation bandwidth: the capture spans
	// 2.56×BW, so the FIR cutoff is BW/2 normalized by fs.
	h := filter.LowpassFIR(r.bandwidth()/2/fs, 63)
	x = filter.ConvolveComplex(x, h)
	env := demod.EnvelopeComplex(x)
	// Remove the carrier's DC so only the modulation remains.
	var mean float64
	for _, v := range env {
		mean += v
	}
	mean /= float64(len(env))
	for i := range env {
		env[i] -= mean
	}
	return env
}

// SecretTrace encodes a bit string as victim activity: each bit lasts
// tBit seconds; a 1 runs activity x, a 0 runs activity y. This is the
// square-and-multiply-style secret-dependent pattern of the paper's
// demodulation-attack references.
func SecretTrace(bits []byte, x, y activity.Kind, tBit float64) *activity.Trace {
	if tBit <= 0 {
		panic(fmt.Sprintf("attack: tBit %g must be positive", tBit))
	}
	tr := &activity.Trace{}
	lx, ly := activity.LoadOf(x), activity.LoadOf(y)
	for i, b := range bits {
		l := ly
		if b != 0 {
			l = lx
		}
		tr.Segments = append(tr.Segments, activity.Segment{Start: float64(i) * tBit, Load: l})
	}
	return tr
}

// RecoverBits slices the demodulated envelope into nBits windows of tBit
// seconds and thresholds each window's mean with a two-means clustering —
// the decision stays correct when the secret's ones and zeros are
// unbalanced (a median would not) and degrades gracefully when the
// clusters overlap (a largest-gap rule would not).
func RecoverBits(env []float64, fs float64, nBits int, tBit float64) []byte {
	if nBits <= 0 {
		panic(fmt.Sprintf("attack: nBits %d must be positive", nBits))
	}
	means := make([]float64, nBits)
	per := tBit * fs
	for i := 0; i < nBits; i++ {
		lo := int(float64(i) * per)
		hi := int(float64(i+1) * per)
		if hi > len(env) {
			hi = len(env)
		}
		// Skip the settling guard band at each window edge.
		guard := (hi - lo) / 8
		var sum float64
		var cnt int
		for k := lo + guard; k < hi-guard; k++ {
			sum += env[k]
			cnt++
		}
		if cnt > 0 {
			means[i] = sum / float64(cnt)
		}
	}
	thr := twoMeansThreshold(means)
	out := make([]byte, nBits)
	for i, m := range means {
		if m > thr {
			out[i] = 1
		}
	}
	return out
}

// twoMeansThreshold runs Lloyd's algorithm with k = 2 on scalar values
// and returns the midpoint between the converged cluster means.
func twoMeansThreshold(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	lo, hi := x[0], x[0]
	for _, v := range x {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	thr := (lo + hi) / 2
	for iter := 0; iter < 64; iter++ {
		var m0, m1 float64
		var n0, n1 int
		for _, v := range x {
			if v > thr {
				m1 += v
				n1++
			} else {
				m0 += v
				n0++
			}
		}
		if n0 == 0 || n1 == 0 {
			return thr
		}
		next := (m0/float64(n0) + m1/float64(n1)) / 2
		if math.Abs(next-thr) < 1e-15*(math.Abs(thr)+1e-30) {
			return next
		}
		thr = next
	}
	return thr
}

// BitErrorRate compares recovered bits against the truth. Because the
// demodulated polarity depends on the emitter (the refresh comb weakens
// with activity while regulators strengthen), the better of the direct
// and inverted readings is reported.
func BitErrorRate(got, want []byte) float64 {
	if len(got) != len(want) {
		panic(fmt.Sprintf("attack: bit count mismatch %d vs %d", len(got), len(want)))
	}
	if len(got) == 0 {
		return 0
	}
	errs, inv := 0, 0
	for i := range got {
		g := got[i] != 0
		w := want[i] != 0
		if g != w {
			errs++
		} else {
			inv++
		}
	}
	ber := float64(errs) / float64(len(got))
	berInv := float64(inv) / float64(len(got))
	return math.Min(ber, berInv)
}

// Leakage quantifies how much activity information a carrier leaks.
type Leakage struct {
	// SNRdB is the separation of the envelope's two activity classes:
	// (μ1-μ0)² / pooled variance, in dB.
	SNRdB float64
	// BitsPerSymbol is the binary-channel capacity implied by the
	// observed bit error rate.
	BitsPerSymbol float64
	// BER is the observed bit error rate.
	BER float64
}

// Quantify measures the leakage of a carrier for a given bit pattern:
// it runs SecretTrace through the receiver, recovers bits, and computes
// class-separation SNR and the implied capacity.
func Quantify(r *Receiver, scene *emsim.Scene, bits []byte, x, y activity.Kind, tBit float64, seed int64) Leakage {
	tr := SecretTrace(bits, x, y, tBit)
	dur := float64(len(bits)) * tBit
	env := r.Recover(scene, dur, tr, seed)
	got := RecoverBits(env, r.SampleRate(), len(bits), tBit)
	ber := BitErrorRate(got, bits)

	// Class-separation SNR from the per-window means.
	fs := r.SampleRate()
	per := tBit * fs
	var m0, m1 float64
	var n0, n1 int
	means := make([]float64, len(bits))
	for i := range bits {
		lo, hi := int(float64(i)*per), int(float64(i+1)*per)
		if hi > len(env) {
			hi = len(env)
		}
		guard := (hi - lo) / 8
		var sum float64
		var cnt int
		for k := lo + guard; k < hi-guard; k++ {
			sum += env[k]
			cnt++
		}
		if cnt > 0 {
			means[i] = sum / float64(cnt)
		}
		if bits[i] != 0 {
			m1 += means[i]
			n1++
		} else {
			m0 += means[i]
			n0++
		}
	}
	var snr float64
	if n0 > 0 && n1 > 0 {
		m0 /= float64(n0)
		m1 /= float64(n1)
		var v float64
		for i := range bits {
			mu := m0
			if bits[i] != 0 {
				mu = m1
			}
			v += (means[i] - mu) * (means[i] - mu)
		}
		v /= float64(len(bits))
		if v > 0 {
			snr = (m1 - m0) * (m1 - m0) / v
		}
	}
	return Leakage{
		SNRdB:         10 * math.Log10(math.Max(snr, 1e-12)),
		BitsPerSymbol: 1 - binaryEntropy(ber),
		BER:           ber,
	}
}

// binaryEntropy is H(p) in bits.
func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// Goertzel evaluates the power of a single frequency in a real sequence
// sampled at fs — the attacker's cheap tone detector. It delegates to the
// calibrated implementation in the spectral package.
func Goertzel(x []float64, fs, f float64) float64 {
	return spectral.Goertzel(x, fs, f)
}
