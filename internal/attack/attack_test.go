package attack

import (
	"math"
	"math/rand"
	"testing"

	"fase/internal/activity"
	"fase/internal/machine"
)

func randomBits(r *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		if r.Intn(2) == 1 {
			out[i] = 1
		}
	}
	return out
}

func TestSecretTrace(t *testing.T) {
	tr := SecretTrace([]byte{1, 0, 1}, activity.LDM, activity.LDL1, 1e-3)
	if len(tr.Segments) != 3 {
		t.Fatalf("segments: %d", len(tr.Segments))
	}
	if tr.At(0.0005).DRAM != activity.LoadOf(activity.LDM).DRAM {
		t.Error("bit 1 should run X activity")
	}
	if tr.At(0.0015).DRAM != activity.LoadOf(activity.LDL1).DRAM {
		t.Error("bit 0 should run Y activity")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBitRecoveryThroughRegulator(t *testing.T) {
	// The headline attack: read a secret bit pattern through the DIMM
	// regulator carrier FASE found, at 4 kbit/s, across the room.
	sys := machine.IntelCoreI7Desktop()
	scene := sys.Scene(1, true)
	r := rand.New(rand.NewSource(42))
	bits := randomBits(r, 128)
	rx := &Receiver{Carrier: sys.MemRegulator.FSw, Bandwidth: 15e3}
	lk := Quantify(rx, scene, bits, activity.LDM, activity.LDL1, 250e-6, 7)
	if lk.BER > 0.01 {
		t.Errorf("BER %.3f through the regulator carrier, want ~0", lk.BER)
	}
	if lk.SNRdB < 10 {
		t.Errorf("class-separation SNR %.1f dB, want > 10", lk.SNRdB)
	}
	if lk.BitsPerSymbol < 0.9 {
		t.Errorf("capacity %.2f bits/symbol, want ~1", lk.BitsPerSymbol)
	}
}

func TestNoLeakThroughUnmodulatedClock(t *testing.T) {
	// Tuning to an unmodulated carrier recovers nothing: BER ~0.5 and
	// near-zero capacity. (The UART clock at 1.8432 MHz.)
	sys := machine.IntelCoreI7Desktop()
	scene := sys.Scene(1, true)
	r := rand.New(rand.NewSource(43))
	bits := randomBits(r, 128)
	rx := &Receiver{Carrier: 1.8432e6, Bandwidth: 15e3}
	lk := Quantify(rx, scene, bits, activity.LDM, activity.LDL1, 250e-6, 8)
	if lk.BER < 0.25 {
		t.Errorf("BER %.3f through an unmodulated clock, want ~0.5", lk.BER)
	}
	if lk.BitsPerSymbol > 0.2 {
		t.Errorf("capacity %.2f bits/symbol through an unmodulated clock", lk.BitsPerSymbol)
	}
}

func TestDomainSelectivityOfCarriers(t *testing.T) {
	// Core-load secrets do not leak through the DIMM regulator (equal
	// DRAM load in both halves), but do through the core regulator.
	sys := machine.IntelCoreI7Desktop()
	scene := sys.Scene(1, false)
	r := rand.New(rand.NewSource(44))
	bits := randomBits(r, 96)
	memRx := &Receiver{Carrier: sys.MemRegulator.FSw, Bandwidth: 15e3}
	coreRx := &Receiver{Carrier: sys.CoreRegulator.FSw, Bandwidth: 15e3}
	lkMem := Quantify(memRx, scene, bits, activity.LDL2, activity.LDL1, 250e-6, 9)
	lkCore := Quantify(coreRx, scene, bits, activity.LDL2, activity.LDL1, 250e-6, 9)
	if lkCore.BER > 0.02 {
		t.Errorf("core regulator BER %.3f for core-load secrets", lkCore.BER)
	}
	if lkMem.BER < 0.2 {
		t.Errorf("memory regulator BER %.3f for core-load secrets, want ~0.5", lkMem.BER)
	}
}

func TestBitErrorRate(t *testing.T) {
	if BitErrorRate([]byte{1, 0, 1, 0}, []byte{1, 0, 1, 0}) != 0 {
		t.Error("identical bits should have BER 0")
	}
	// Fully inverted also reads as 0 (polarity-agnostic).
	if BitErrorRate([]byte{0, 1, 0, 1}, []byte{1, 0, 1, 0}) != 0 {
		t.Error("inverted bits should have BER 0")
	}
	if got := BitErrorRate([]byte{1, 1, 0, 0}, []byte{1, 0, 1, 0}); got != 0.5 {
		t.Errorf("half-wrong bits BER %g", got)
	}
	mustPanic(t, func() { BitErrorRate([]byte{1}, []byte{1, 0}) })
}

func TestGoertzelMatchesTone(t *testing.T) {
	fs := 100e3
	f := 1250.0
	n := 8000 // integer number of cycles
	x := make([]float64, n)
	for i := range x {
		x[i] = 2 * math.Cos(2*math.Pi*f*float64(i)/fs)
	}
	// Amplitude-calibrated: a real tone of amplitude A reads A² (power of
	// the analytic pair at the bin).
	p := Goertzel(x, fs, f)
	if math.Abs(p-4) > 0.05 {
		t.Errorf("Goertzel power %g, want 4", p)
	}
	if off := Goertzel(x, fs, 3*f); off > 0.01 {
		t.Errorf("off-frequency leakage %g", off)
	}
	if Goertzel(nil, fs, f) != 0 {
		t.Error("empty input should read 0")
	}
}

func TestBinaryEntropy(t *testing.T) {
	if binaryEntropy(0) != 0 || binaryEntropy(1) != 0 {
		t.Error("degenerate entropy should be 0")
	}
	if math.Abs(binaryEntropy(0.5)-1) > 1e-12 {
		t.Error("H(0.5) should be 1 bit")
	}
}

func TestReceiverPanics(t *testing.T) {
	sys := machine.IntelCoreI7Desktop()
	scene := sys.Scene(1, false)
	rx := &Receiver{Carrier: 315e3}
	mustPanic(t, func() { rx.Recover(scene, 0, nil, 1) })
	mustPanic(t, func() { SecretTrace([]byte{1}, activity.LDM, activity.LDL1, 0) })
	mustPanic(t, func() { RecoverBits(nil, 1e6, 0, 1e-3) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
