package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the binary that produced a run: module version (or
// VCS revision for non-released builds), Go toolchain, and target
// platform. It is embedded in every manifest (Manifest.Build) and exposed
// as the fase_build_info gauge, so archived runs and scraped metrics both
// name their producer.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
}

// CurrentBuildInfo reads the process's build metadata. Version falls back
// to the VCS revision (truncated) and then "devel" when the binary was
// not built from a released module version.
func CurrentBuildInfo() BuildInfo {
	b := BuildInfo{
		Version:   "devel",
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		b.Version = v
		return b
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && len(s.Value) >= 12 {
			b.Version = s.Value[:12]
			return b
		}
	}
	return b
}

// RegisterBuildInfo publishes the fase_build_info gauge (value 1, build
// metadata as labels encoded in the metric name) on reg — the standard
// "info metric" pattern, so a Prometheus scrape identifies the binary.
func RegisterBuildInfo(reg *Registry, b BuildInfo) {
	name := fmt.Sprintf(`%s{version=%q,go=%q,os=%q,arch=%q}`,
		MetricBuildInfo, b.Version, b.GoVersion, b.OS, b.Arch)
	reg.Gauge(name).Set(1)
}

func init() {
	RegisterBuildInfo(Default, CurrentBuildInfo())
}
