//go:build !unix

package obs

// processCPUSeconds has no portable implementation off unix; stage CPU
// timings read as zero there.
func processCPUSeconds() float64 { return 0 }
