package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records spans — named, timed intervals with explicit
// parent/child links — and writes them as Chrome trace_event JSON
// (chrome://tracing, Perfetto, or speedscope all load it).
//
// Spans live on lanes (rendered as Chrome "threads"): sequential child
// stages share their parent's lane, while concurrent work forks onto its
// own lane so overlapping spans never collide visually. Lanes are pooled
// and reused, so a campaign's trace has roughly Parallelism lanes, not
// one per capture.
//
// A nil *Tracer is a valid no-op: Begin returns the zero Span, whose
// methods all do nothing, so call sites need no guards.
type Tracer struct {
	start  time.Time
	nextID atomic.Int64

	mu        sync.Mutex
	events    []SpanEvent
	freeLanes []int64
	nextLane  int64
}

// SpanEvent is one completed span.
type SpanEvent struct {
	Name   string
	ID     int64
	Parent int64 // 0 = root
	Lane   int64
	Start  time.Duration // offset from the tracer's epoch
	Dur    time.Duration
}

// NewTracer returns a tracer whose epoch is now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// Span is one in-flight interval. The zero Span is a no-op; spans are
// values, so disabled tracing allocates nothing. The start time is kept
// as an offset from the tracer's epoch rather than a time.Time: that
// holds Span at 64 bytes, small enough that structs embedding one (e.g.
// specan.Request) stay under the compiler's 128-byte limit for by-value
// closure capture — past it, every parallel sweep would heap-allocate
// its request even with tracing off.
type Span struct {
	tr     *Tracer
	name   string
	start  time.Duration // offset from the tracer's epoch
	lane   int64
	id     int64
	parent int64
	owns   bool // this span acquired its lane and releases it on End
}

// Active reports whether the span records anything.
func (s Span) Active() bool { return s.tr != nil }

// Begin opens a root span on its own lane.
func (t *Tracer) Begin(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, start: time.Since(t.start), lane: t.acquireLane(),
		id: t.nextID.Add(1), owns: true}
}

// Child opens a sub-span on the same lane — for stages that run
// sequentially within the parent.
func (s Span) Child(name string) Span {
	if s.tr == nil {
		return Span{}
	}
	return Span{tr: s.tr, name: name, start: time.Since(s.tr.start), lane: s.lane,
		id: s.tr.nextID.Add(1), parent: s.id}
}

// Fork opens a sub-span on a fresh lane — for work that runs
// concurrently with its siblings (sweeps, captures).
func (s Span) Fork(name string) Span {
	if s.tr == nil {
		return Span{}
	}
	return Span{tr: s.tr, name: name, start: time.Since(s.tr.start), lane: s.tr.acquireLane(),
		id: s.tr.nextID.Add(1), parent: s.id, owns: true}
}

// Mark records an already-measured child interval on the span's lane,
// for call sites that timed a region themselves.
func (s Span) Mark(name string, start time.Time, d time.Duration) {
	if s.tr == nil {
		return
	}
	s.tr.record(SpanEvent{Name: name, ID: s.tr.nextID.Add(1), Parent: s.id,
		Lane: s.lane, Start: start.Sub(s.tr.start), Dur: d})
}

// End records the span and releases its lane if it owned one. Ending the
// zero Span does nothing.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	s.tr.record(SpanEvent{Name: s.name, ID: s.id, Parent: s.parent, Lane: s.lane,
		Start: s.start, Dur: time.Since(s.tr.start) - s.start})
	if s.owns {
		s.tr.releaseLane(s.lane)
	}
}

func (t *Tracer) acquireLane() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.freeLanes); n > 0 {
		l := t.freeLanes[n-1]
		t.freeLanes = t.freeLanes[:n-1]
		return l
	}
	t.nextLane++
	return t.nextLane - 1
}

func (t *Tracer) releaseLane(l int64) {
	t.mu.Lock()
	t.freeLanes = append(t.freeLanes, l)
	t.mu.Unlock()
}

func (t *Tracer) record(e SpanEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanEvent, len(t.events))
	copy(out, t.events)
	return out
}

// chromeEvent is one trace_event entry ("X" = complete event; ts and dur
// are microseconds).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace_event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the recorded spans in Chrome's trace_event
// JSON format. Span identity and parentage ride in args ("id",
// "parent"), which trace viewers ignore but tests assert on.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, e := range t.Events() {
		ce := chromeEvent{
			Name: e.Name, Cat: "fase", Ph: "X",
			Ts:  float64(e.Start.Nanoseconds()) / 1e3,
			Dur: float64(e.Dur.Nanoseconds()) / 1e3,
			Pid: 1, Tid: e.Lane,
			Args: map[string]any{"id": e.ID, "parent": e.Parent},
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
