package obs

import (
	"math"
	"sync/atomic"
	"time"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// progress is the Run's live position, written with atomics from the
// campaign coordinator and the analyzer's capture workers and read by
// the debug server's /progress endpoint. All fields are best-effort
// telemetry: they never feed results and cost one atomic op per update.
type progress struct {
	stage          atomic.Value // string: current stage name
	capturesTotal  atomic.Int64 // planned captures (exhaustive) or budget cap (adaptive)
	sweepsTotal    atomic.Int64
	sweepsDone     atomic.Int64
	simTotal       atomic.Uint64 // float64 bits: planned simulated seconds
	simDone        atomic.Uint64 // float64 bits: simulated seconds rendered so far
	budgetReserved atomic.Int64
	budgetCap      atomic.Int64
	done           atomic.Bool
}

// ProgressInfo is the JSON snapshot served at /progress: where the scan
// is (stage, sweeps), what it has spent (captures used vs. reserved vs.
// the budget cap), how far along it is, and how fast simulated analyzer
// time is being produced per wall second — the rate that yields the ETA.
type ProgressInfo struct {
	Stage            string  `json:"stage"`
	Done             bool    `json:"done"`
	ElapsedSeconds   float64 `json:"elapsed_seconds"`
	CapturesUsed     int64   `json:"captures_used"`
	CapturesReserved int64   `json:"captures_reserved,omitempty"`
	CapturesTotal    int64   `json:"captures_total,omitempty"`
	BudgetCap        int64   `json:"budget_cap,omitempty"`
	SweepsDone       int64   `json:"sweeps_done"`
	SweepsTotal      int64   `json:"sweeps_total,omitempty"`
	SimulatedSeconds float64 `json:"simulated_seconds"`
	SimulatedTotal   float64 `json:"simulated_total,omitempty"`
	PercentComplete  float64 `json:"percent_complete"`
	SimRatePerSecond float64 `json:"sim_rate_per_second"`
	ETASeconds       float64 `json:"eta_seconds,omitempty"`
	EventsEmitted    int64   `json:"events_emitted,omitempty"`
	EventsDropped    int64   `json:"events_dropped,omitempty"`
}

// SetStage records the currently running stage name for /progress.
func (r *Run) SetStage(name string) {
	if r == nil {
		return
	}
	r.progress.stage.Store(name)
}

// SetTotals declares the run's planned scope: total captures (the budget
// cap in adaptive mode), number of sweeps, and total simulated analyzer
// seconds the plan would produce. Zero values mean "unknown".
func (r *Run) SetTotals(captures, sweeps int64, simSeconds float64) {
	if r == nil {
		return
	}
	r.progress.capturesTotal.Store(captures)
	r.progress.sweepsTotal.Store(sweeps)
	r.progress.simTotal.Store(floatBits(simSeconds))
}

// SetBudget records the adaptive planner's budget cap.
func (r *Run) SetBudget(cap int64) {
	if r == nil {
		return
	}
	r.progress.budgetCap.Store(cap)
}

// SetBudgetReserved records the meter's current reservation level.
func (r *Run) SetBudgetReserved(reserved int64) {
	if r == nil {
		return
	}
	r.progress.budgetReserved.Store(reserved)
}

// AddSweepDone counts one completed sweep.
func (r *Run) AddSweepDone() {
	if r == nil {
		return
	}
	r.progress.sweepsDone.Add(1)
}

// AddSimSeconds accumulates simulated analyzer time as captures render.
// CAS loop, same shape as FloatAdder (kept inline to stay on the
// progress struct's atomics).
func (r *Run) AddSimSeconds(s float64) {
	if r == nil {
		return
	}
	for {
		old := r.progress.simDone.Load()
		nw := floatBits(floatFromBits(old) + s)
		if r.progress.simDone.CompareAndSwap(old, nw) {
			return
		}
	}
}

// SetDone marks the run finished for /progress (Finish calls it).
func (r *Run) SetDone() {
	if r == nil {
		return
	}
	r.progress.done.Store(true)
}

// Progress snapshots the run's live position. Percent complete prefers
// capture counts (exact units of work) and falls back to simulated time;
// the ETA extrapolates the remaining simulated seconds at the observed
// simulated-seconds-per-wall-second rate.
func (r *Run) Progress() ProgressInfo {
	if r == nil {
		return ProgressInfo{}
	}
	p := &r.progress
	info := ProgressInfo{
		Done:             p.done.Load(),
		ElapsedSeconds:   time.Since(r.start).Seconds(),
		CapturesUsed:     r.Captures.Value(),
		CapturesReserved: p.budgetReserved.Load(),
		CapturesTotal:    p.capturesTotal.Load(),
		BudgetCap:        p.budgetCap.Load(),
		SweepsDone:       p.sweepsDone.Load(),
		SweepsTotal:      p.sweepsTotal.Load(),
		SimulatedSeconds: floatFromBits(p.simDone.Load()),
		SimulatedTotal:   floatFromBits(p.simTotal.Load()),
	}
	if s, ok := p.stage.Load().(string); ok {
		info.Stage = s
	}
	switch {
	case info.Done:
		info.PercentComplete = 100
	case info.CapturesTotal > 0:
		info.PercentComplete = 100 * float64(info.CapturesUsed) / float64(info.CapturesTotal)
	case info.SimulatedTotal > 0:
		info.PercentComplete = 100 * info.SimulatedSeconds / info.SimulatedTotal
	}
	if info.PercentComplete > 100 {
		info.PercentComplete = 100
	}
	if info.ElapsedSeconds > 0 {
		info.SimRatePerSecond = info.SimulatedSeconds / info.ElapsedSeconds
	}
	if !info.Done && info.SimRatePerSecond > 0 && info.SimulatedTotal > info.SimulatedSeconds {
		info.ETASeconds = (info.SimulatedTotal - info.SimulatedSeconds) / info.SimRatePerSecond
	}
	if j := r.Journal; j != nil {
		info.EventsEmitted, info.EventsDropped = j.Stats()
	}
	return info
}
