package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer serves live diagnostics for a running campaign:
// net/http/pprof under /debug/pprof/ and the registry's expvar-style
// snapshot at /metrics.
type DebugServer struct {
	// Addr is the address actually listened on (useful with ":0").
	Addr string
	srv  *http.Server
	lis  net.Listener
}

// Serve starts a debug server on addr in a background goroutine. The
// registry's snapshot is served at /metrics; pprof's profiles (heap,
// goroutine, CPU profile, execution trace, …) under /debug/pprof/.
func Serve(addr string, reg *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	ds := &DebugServer{
		Addr: lis.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		lis:  lis,
	}
	go func() { _ = ds.srv.Serve(lis) }()
	return ds, nil
}

// Close stops the server.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
