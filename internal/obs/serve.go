package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// DebugServer serves live diagnostics for a running campaign:
// net/http/pprof under /debug/pprof/, the registry's snapshot at
// /metrics (JSON by default, Prometheus text with ?format=prom), the
// run's live position at /progress, and the event journal as a
// server-sent-event stream at /events.
type DebugServer struct {
	// Addr is the address actually listened on (useful with ":0").
	Addr string
	srv  *http.Server
	lis  net.Listener

	// done closes when the server shuts down, unblocking SSE handlers so
	// Shutdown can drain them.
	done      chan struct{}
	closeOnce sync.Once
}

// Serve starts a debug server on addr in a background goroutine. run may
// be nil (the /progress and /events endpoints then report 404); when it
// carries a Journal, /events streams it live.
func Serve(addr string, reg *Registry, run *Run) (*DebugServer, error) {
	ds := &DebugServer{done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var err error
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			err = reg.WriteProm(w)
		} else {
			w.Header().Set("Content-Type", "application/json")
			err = reg.WriteJSON(w)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		if run == nil {
			http.Error(w, "no instrumented run", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(run.Progress())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		var j *Journal
		if run != nil {
			j = run.Journal
		}
		if j == nil {
			http.Error(w, "no event journal", http.StatusNotFound)
			return
		}
		ServeSSE(w, r, j, ds.done)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	ds.Addr = lis.Addr().String()
	ds.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ds.lis = lis
	go func() { _ = ds.srv.Serve(lis) }()
	return ds, nil
}

// ServeSSE streams the journal to one subscriber: the backlog first, then
// live events, as `id: <seq>` + `data: <event JSON>` frames. Returns when
// the client disconnects, the journal closes, or done closes (pass nil
// for no external shutdown signal). DebugServer serves its /events
// endpoint through this; the campaign service (internal/service) reuses
// it for per-job event streams.
func ServeSSE(w http.ResponseWriter, r *http.Request, j *Journal, done <-chan struct{}) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	sub, backlog := j.Subscribe(256)
	defer j.Unsubscribe(sub)

	write := func(e Event) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", e.Seq, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, e := range backlog {
		if !write(e) {
			return
		}
	}
	for {
		select {
		case e, ok := <-sub.C:
			if !ok {
				return
			}
			if !write(e) {
				return
			}
		case <-r.Context().Done():
			return
		case <-done:
			return
		}
	}
}

// Close shuts the server down gracefully: it stops accepting new
// connections, signals streaming handlers to finish, and waits up to 5
// seconds for in-flight requests to drain before forcing connections
// closed. Safe to call more than once and on a nil server.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err = s.srv.Shutdown(ctx)
		if err != nil {
			err = s.srv.Close()
		}
	})
	return err
}
