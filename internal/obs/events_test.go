package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestJournalNilSafety(t *testing.T) {
	var j *Journal
	if tr := j.Track(3); tr != nil {
		t.Error("nil journal must hand out nil tracks")
	}
	var tr *JournalTrack
	tr.Emit(Event{Kind: EventDetection}) // must not panic
	if sub, backlog := j.Subscribe(16); sub != nil || backlog != nil {
		t.Error("nil journal must not subscribe")
	}
	j.Unsubscribe(nil)
	j.Close()
	if e, d := j.Stats(); e != 0 || d != 0 {
		t.Error("nil journal stats must be zero")
	}
	if j.CanonicalEvents() != nil {
		t.Error("nil journal must have no canonical events")
	}
	run := &Run{} // a run without a journal threads nil tracks
	run.Track(0).Emit(Event{Kind: EventDetection})
}

func TestJournalTrackIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative track id must panic")
		}
	}()
	NewJournal().Track(-1)
}

func TestJournalCanonicalOrdering(t *testing.T) {
	j := NewJournal()
	t0, t1, t2 := j.Track(0), j.Track(1), j.Track(2)
	// Interleave emissions across tracks; canonical order must come out
	// sorted by (track, tseq) regardless.
	t1.Emit(Event{Kind: EventSweepPlan, FAltHz: 43e3})
	t0.Emit(Event{Kind: EventCampaignStart, Name: "exhaustive"})
	t2.Emit(Event{Kind: EventSweepPlan, FAltHz: 44e3})
	t1.Emit(Event{Kind: EventSweepStart, Total: 4})
	t0.Emit(Event{Kind: EventCampaignEnd})
	evs := j.CanonicalEvents()
	if len(evs) != 5 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, e := range evs {
		if e.Seq != int64(i) {
			t.Errorf("event %d has canonical seq %d", i, e.Seq)
		}
	}
	wantTracks := []int64{0, 0, 1, 1, 2}
	wantTSeqs := []int64{0, 1, 0, 1, 0}
	for i := range evs {
		if evs[i].Track != wantTracks[i] || evs[i].TSeq != wantTSeqs[i] {
			t.Errorf("event %d: track %d tseq %d, want %d/%d",
				i, evs[i].Track, evs[i].TSeq, wantTracks[i], wantTSeqs[i])
		}
	}
	if j.Track(1) != t1 {
		t.Error("Track must return the shared per-id handle")
	}
}

func TestEmitClampsNonFinite(t *testing.T) {
	j := NewJournal()
	inf := math.Inf(1)
	j.Track(0).Emit(Event{Kind: EventCampaignStart, Name: "exhaustive"})
	j.Track(0).Emit(Event{
		Kind: EventDetection, FreqHz: math.NaN(), Score: inf,
		Priority: -inf, F1Hz: inf, F2Hz: -inf, FAltHz: math.NaN(), WallSeconds: inf,
	})
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatalf("journal with non-finite floats not writable: %v", err)
	}
	e := j.CanonicalEvents()[1]
	if e.FreqHz != 0 || e.F1Hz != 0 || e.F2Hz != 0 || e.FAltHz != 0 || e.WallSeconds != 0 {
		t.Errorf("frequencies/timing not clamped to zero: %+v", e)
	}
	if e.Score != math.MaxFloat64 || e.Priority != -math.MaxFloat64 {
		t.Errorf("score/priority not clamped to ±MaxFloat64: %+v", e)
	}
}

func TestJournalWriteValidateRoundTrip(t *testing.T) {
	j := NewJournal()
	ct := j.Track(0)
	ct.Emit(Event{Kind: EventCampaignStart, Name: "adaptive", Total: 30})
	ct.Emit(Event{Kind: EventBudgetReserve, Captures: 4, Outcome: ReserveGranted, Reserved: 4, Cap: 30})
	ct.Emit(Event{Kind: EventWindowProbe, F1Hz: 1e5, F2Hz: 2e5, Score: 9.5})
	ct.Emit(Event{Kind: EventWindowOutcome, F1Hz: 1e5, F2Hz: 2e5, Outcome: WindowRefined, Captures: 4})
	st := j.Track(1)
	st.Emit(Event{Kind: EventSweepStart, Total: 4})
	st.Emit(Event{Kind: EventSweepProgress, Captures: 2, Total: 4})
	st.Emit(Event{Kind: EventSweepEnd, Captures: 4, Total: 4})
	ct.Emit(Event{Kind: EventCampaignEnd, Captures: 4})

	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateJournal(buf.Bytes()); err != nil {
		t.Fatalf("written journal fails validation: %v", err)
	}
	if !strings.HasPrefix(buf.String(), `{"schema":"fase-events/1","events":8}`) {
		t.Errorf("journal header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

func TestValidateJournalRejects(t *testing.T) {
	valid := func() []string {
		j := NewJournal()
		j.Track(0).Emit(Event{Kind: EventCampaignStart, Name: "exhaustive"})
		j.Track(1).Emit(Event{Kind: EventSweepEnd, Captures: 2, Total: 4})
		j.Track(0).Emit(Event{Kind: EventCampaignEnd, Captures: 4})
		var buf bytes.Buffer
		if err := j.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	}
	cases := []struct {
		name   string
		mutate func(lines []string) []string
	}{
		{"empty journal", func([]string) []string { return nil }},
		{"bad header", func(l []string) []string { l[0] = "not json"; return l }},
		{"wrong schema", func(l []string) []string {
			l[0] = `{"schema":"fase-events/9","events":3}`
			return l
		}},
		{"header count mismatch", func(l []string) []string { return l[:len(l)-1] }},
		{"header only", func(l []string) []string {
			return []string{`{"schema":"fase-events/1","events":0}`}
		}},
		{"non-canonical seq", func(l []string) []string {
			l[1], l[2] = l[2], l[1]
			return l
		}},
		{"unknown kind", func(l []string) []string {
			l[1] = strings.Replace(l[1], "campaign_start", "campaign_explode", 1)
			return l
		}},
		{"live-only kind", func(l []string) []string {
			l[1] = strings.Replace(l[1], "campaign_start", "events_dropped", 1)
			return l
		}},
		{"no campaign start", func(l []string) []string {
			l[1] = strings.Replace(l[1], "campaign_start", "campaign_end", 1)
			return l
		}},
		// Canonical line order: header, campaign_start, campaign_end
		// (track 0), then sweep_end (track 1).
		{"negative captures", func(l []string) []string {
			l[2] = strings.Replace(l[2], `"captures":4`, `"captures":-4`, 1)
			return l
		}},
		{"captures over total", func(l []string) []string {
			l[3] = strings.Replace(l[3], `"captures":2`, `"captures":9`, 1)
			return l
		}},
	}
	for _, tc := range cases {
		data := []byte(strings.Join(tc.mutate(valid()), "\n"))
		if err := ValidateJournal(data); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
	if err := ValidateJournal([]byte(strings.Join(valid(), "\n"))); err != nil {
		t.Fatalf("unmutated journal invalid: %v", err)
	}
}

func TestJournalSubscribeBacklogAndLive(t *testing.T) {
	j := NewJournal()
	ct := j.Track(0)
	ct.Emit(Event{Kind: EventCampaignStart})
	ct.Emit(Event{Kind: EventStageStart, Name: "sweeps"})
	sub, backlog := j.Subscribe(16)
	if len(backlog) != 2 {
		t.Fatalf("backlog has %d events, want 2", len(backlog))
	}
	ct.Emit(Event{Kind: EventStageEnd, Name: "sweeps"})
	if e := <-sub.C; e.Kind != EventStageEnd {
		t.Errorf("live event kind %q", e.Kind)
	}
	j.Unsubscribe(sub)
	if _, ok := <-sub.C; ok {
		t.Error("unsubscribed channel must be closed")
	}
	j.Unsubscribe(sub) // double-unsubscribe must not panic

	// Subscribing to a closed journal yields the backlog and a closed
	// channel, never a hang.
	j.Close()
	sub2, backlog2 := j.Subscribe(16)
	if len(backlog2) != 3 {
		t.Errorf("post-close backlog has %d events, want 3", len(backlog2))
	}
	if _, ok := <-sub2.C; ok {
		t.Error("post-close subscriber channel must be closed")
	}
}

func TestJournalDropPolicy(t *testing.T) {
	j := NewJournal()
	ct := j.Track(0)
	sub, _ := j.Subscribe(8) // minimum capacity
	// Fill the channel (8 slots), then overflow it; the surplus must be
	// dropped without blocking the emitter.
	for i := 0; i < 20; i++ {
		ct.Emit(Event{Kind: EventSweepProgress, Captures: int64(i + 1), Total: 20})
	}
	if _, dropped := j.Stats(); dropped == 0 {
		t.Fatal("overflowing a slow subscriber must count drops")
	}
	// Drain the buffered 8; after draining, the next emission must deliver
	// the synthetic drop notice before the event itself.
	for i := 0; i < 8; i++ {
		<-sub.C
	}
	ct.Emit(Event{Kind: EventSweepEnd, Captures: 20, Total: 20})
	notice := <-sub.C
	if notice.Kind != EventEventsDropped || notice.Track != -1 || notice.Dropped <= 0 {
		t.Fatalf("expected drop notice, got %+v", notice)
	}
	if e := <-sub.C; e.Kind != EventSweepEnd {
		t.Fatalf("expected the live event after the notice, got %+v", e)
	}
	j.Unsubscribe(sub)
	// The archived journal never contains the synthetic notice.
	for _, e := range j.CanonicalEvents() {
		if e.Kind == EventEventsDropped {
			t.Fatal("drop notice leaked into the archived journal")
		}
	}
}

// TestJournalConcurrentEmitHammer exercises concurrent emission, SSE
// fan-out, and subscriber churn under -race (the `make equivalence` and
// full-test runs both build it with the race detector in CI).
func TestJournalConcurrentEmitHammer(t *testing.T) {
	const (
		tracks   = 8
		perTrack = 200
		churners = 4
	)
	j := NewJournal()
	var wg sync.WaitGroup
	for tr := 0; tr < tracks; tr++ {
		wg.Add(1)
		go func(tr int) {
			defer wg.Done()
			h := j.Track(int64(tr))
			for i := 0; i < perTrack; i++ {
				h.Emit(Event{Kind: EventSweepProgress, Captures: int64(i + 1), Total: perTrack})
			}
		}(tr)
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sub, backlog := j.Subscribe(16)
				// Drain a few then walk away — exercises both delivery and
				// the drop path.
				for k := 0; k < len(backlog)%7; k++ {
					select {
					case <-sub.C:
					default:
					}
				}
				j.Unsubscribe(sub)
			}
		}()
	}
	wg.Wait()
	emitted, _ := j.Stats()
	if emitted != tracks*perTrack {
		t.Fatalf("emitted %d events, want %d", emitted, tracks*perTrack)
	}
	evs := j.CanonicalEvents()
	for i := 1; i < len(evs); i++ {
		a, b := evs[i-1], evs[i]
		if b.Track < a.Track || (b.Track == a.Track && b.TSeq != a.TSeq+1) {
			t.Fatalf("canonical order broken at %d: %+v then %+v", i, a, b)
		}
	}
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestJournalStatsInManifest(t *testing.T) {
	run := NewRun()
	run.Journal = NewJournal()
	run.Stage("sweeps")()
	run.Captures.Inc()
	m := run.Finish("cfg", 0, nil)
	if m.Events == nil || m.Events.Emitted != 2 {
		t.Fatalf("manifest events block: %+v (want the two stage events)", m.Events)
	}
}

func BenchmarkJournalEmit(b *testing.B) {
	j := NewJournal()
	tr := j.Track(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: EventSweepProgress, Captures: int64(i), Total: int64(b.N)})
	}
}

func ExampleJournal() {
	j := NewJournal()
	j.Track(0).Emit(Event{Kind: EventCampaignStart, Name: "exhaustive"})
	j.Track(0).Emit(Event{Kind: EventCampaignEnd, Captures: 8})
	evs := j.CanonicalEvents()
	fmt.Println(len(evs), evs[0].Kind, evs[1].Kind)
	// Output: 2 campaign_start campaign_end
}
