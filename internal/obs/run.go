package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Run collects one campaign's observability: stage wall/CPU timings,
// per-segment planner decisions, capture counts and render/FFT time from
// the analyzer's workers, and (optionally) a Tracer. Finish folds it all,
// plus the Default registry's deltas, into a Manifest.
//
// All methods are nil-safe no-ops on a nil *Run, so instrumented code
// threads a *Run unconditionally and pays only a nil check when
// observability is off.
//
// Cache and planner statistics come from process-wide counters, so they
// are only attributable to this run when no other campaign runs
// concurrently in the process (true for the CLI; tests that assert on
// them run their campaigns alone).
type Run struct {
	// Tracer, when non-nil, records spans alongside the timings.
	Tracer *Tracer
	// Journal, when non-nil, receives the run's structured event stream
	// (see events.go): Stage emits stage_start/stage_end on track 0, and
	// the campaign/planner/analyzer emit their own events through tracks
	// obtained from Track.
	Journal *Journal

	// Captures counts analyzer captures rendered under this run.
	Captures Counter
	// RenderSeconds and FFTSeconds accumulate the two halves of each
	// capture: scene rendering vs window+FFT+calibration.
	RenderSeconds FloatAdder
	FFTSeconds    FloatAdder
	// PlanCacheHits/Misses count the analyzer's per-segment render-plan
	// cache behaviour for this run.
	PlanCacheHits   Counter
	PlanCacheMisses Counter
	// StaticCacheHits/Misses count the analyzer's static-layer cache
	// behaviour for this run (see specan.Config.ReuseStatic): hits are
	// captures whose activity-independent layer was replayed rather than
	// re-rendered.
	StaticCacheHits   Counter
	StaticCacheMisses Counter

	start     time.Time
	startCPU  float64
	startSnap Snapshot

	progress progress

	mu         sync.Mutex
	stages     []StageTiming
	segments   []SegmentPlan
	components map[string]*componentStat
	manifest   *Manifest
}

// Track returns the journal track with the given id, or nil (whose Emit
// is a no-op) when the run or its journal is nil. Track 0 is the
// campaign coordinator; sweeps use 1 + their ladder index.
func (r *Run) Track(id int64) *JournalTrack {
	if r == nil || r.Journal == nil {
		return nil
	}
	return r.Journal.Track(id)
}

// componentStat accumulates one component's render attribution (guarded
// by Run.mu; the sweep workers call AddComponentRender concurrently).
type componentStat struct {
	renders int64
	replays int64
	wall    float64
}

// renderComponentSeconds is the process-wide distribution of component
// render times; instrumented runs feed it alongside their own table.
var renderComponentSeconds = Default.Histogram(MetricRenderComponentSeconds,
	ExpBuckets(1e-6, 4, 12))

// NewRun starts a run clock and snapshots the Default registry so Finish
// can attribute metric deltas to this run.
func NewRun() *Run {
	return &Run{start: time.Now(), startCPU: processCPUSeconds(), startSnap: Default.Snapshot()}
}

var nopStageEnd = func() {}

// Stage starts timing a named pipeline stage and returns the function
// that ends it. Stages are expected to be sequential at the campaign
// level, so their wall times sum to ≈ the run's total and their CPU
// times are read as process-CPU deltas.
func (r *Run) Stage(name string) func() {
	if r == nil {
		return nopStageEnd
	}
	r.SetStage(name)
	r.Track(0).Emit(Event{Kind: EventStageStart, Name: name})
	t0, c0 := time.Now(), processCPUSeconds()
	return func() {
		st := StageTiming{Name: name, WallSeconds: time.Since(t0).Seconds(),
			CPUSeconds: processCPUSeconds() - c0}
		r.mu.Lock()
		r.stages = append(r.stages, st)
		r.mu.Unlock()
		r.Track(0).Emit(Event{Kind: EventStageEnd, Name: name, WallSeconds: st.WallSeconds})
	}
}

// RecordPlan records one segment's render-plan decision: how many scene
// components stayed active vs were culled for the segment's band.
func (r *Run) RecordPlan(centerHz, sampleRate float64, samples, active, skipped int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.segments = append(r.segments, SegmentPlan{CenterHz: centerHz, SampleRate: sampleRate,
		Samples: samples, Active: active, Skipped: skipped})
	r.mu.Unlock()
}

// AddComponentRender attributes one live component render to the run: the
// wall time feeds both the fase_render_component_seconds histogram and the
// manifest's per-component table. Callers gate on a non-nil run before
// timing, so uninstrumented rendering pays only the nil check.
func (r *Run) AddComponentRender(name string, seconds float64) {
	if r == nil {
		return
	}
	renderComponentSeconds.Observe(seconds)
	r.mu.Lock()
	cs := r.component(name)
	cs.renders++
	cs.wall += seconds
	r.mu.Unlock()
}

// AddComponentReplay attributes one static-cache replay to the component —
// a render the cache saved, counted so the table shows both what was paid
// and what was avoided.
func (r *Run) AddComponentReplay(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.component(name).replays++
	r.mu.Unlock()
}

// component returns name's accumulator; callers hold r.mu.
func (r *Run) component(name string) *componentStat {
	cs, ok := r.components[name]
	if !ok {
		if r.components == nil {
			r.components = make(map[string]*componentStat)
		}
		cs = &componentStat{}
		r.components[name] = cs
	}
	return cs
}

// Stages returns a copy of the stage timings recorded so far.
func (r *Run) Stages() []StageTiming {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]StageTiming, len(r.stages))
	copy(out, r.stages)
	return out
}

// Finish assembles the run's manifest: resolved config (any
// JSON-marshalable value), the simulated spectrum-analyzer observation
// time, and the detection provenance records. The first call wins;
// subsequent calls return the existing manifest unchanged.
func (r *Run) Finish(config any, simulatedSeconds float64, detections []DetectionRecord) *Manifest {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.manifest != nil {
		return r.manifest
	}
	delta := Default.Snapshot().Sub(r.startSnap)
	m := &Manifest{
		Schema:                   ManifestSchema,
		CreatedUnix:              time.Now().Unix(),
		Config:                   config,
		Stages:                   append([]StageTiming(nil), r.stages...),
		TotalWallSeconds:         time.Since(r.start).Seconds(),
		TotalCPUSeconds:          processCPUSeconds() - r.startCPU,
		SimulatedAnalyzerSeconds: simulatedSeconds,
		Captures:                 r.Captures.Value(),
		RenderSeconds:            r.RenderSeconds.Value(),
		FFTSeconds:               r.FFTSeconds.Value(),
		Planner: PlannerStats{
			PlansBuilt:             delta.Counters[MetricPlansBuilt],
			CacheHits:              r.PlanCacheHits.Value(),
			CacheMisses:            r.PlanCacheMisses.Value(),
			ComponentsActive:       delta.Counters[MetricPlanComponentsActive],
			ComponentsSkipped:      delta.Counters[MetricPlanComponentsSkip],
			RenderSkips:            delta.Counters[MetricRenderComponentSkips],
			StaticCacheHits:        r.StaticCacheHits.Value(),
			StaticCacheMisses:      r.StaticCacheMisses.Value(),
			StaticComponentsCached: delta.Counters[MetricStaticComponents],
			StaticReplays:          delta.Counters[MetricStaticReplays],
			Segments:               append([]SegmentPlan(nil), r.segments...),
		},
		Caches: map[string]CacheStats{
			"fft_plan":        cacheStats(delta, MetricFFTPlanHits, MetricFFTPlanMisses),
			"rfft_plan":       cacheStats(delta, MetricRFFTPlanHits, MetricRFFTPlanMisses),
			"window":          cacheStats(delta, MetricWindowHits, MetricWindowMisses),
			"bufpool_complex": cacheStats(delta, MetricBufpoolComplexHits, MetricBufpoolComplexMisses),
			"bufpool_float":   cacheStats(delta, MetricBufpoolFloatHits, MetricBufpoolFloatMisses),
			"specan_plan":     cacheStats(delta, MetricSpecanPlanHits, MetricSpecanPlanMisses),
			"render_static":   cacheStats(delta, MetricStaticCacheHits, MetricStaticCacheMisses),
		},
		Detections: sanitizeDetections(detections),
		Build:      CurrentBuildInfo(),
	}
	if r.Journal != nil {
		emitted, dropped := r.Journal.Stats()
		m.Events = &EventStats{Emitted: emitted, Dropped: dropped}
	}
	for name, h := range delta.Histograms {
		if h.Count <= 0 {
			continue
		}
		if m.Histograms == nil {
			m.Histograms = make(map[string]HistogramSnapshot)
		}
		m.Histograms[name] = h
	}
	if len(r.components) > 0 {
		comps := make([]ComponentRenderStats, 0, len(r.components))
		for name, cs := range r.components {
			comps = append(comps, ComponentRenderStats{
				Name: name, Renders: cs.renders, Replays: cs.replays, WallSeconds: cs.wall})
		}
		sort.Slice(comps, func(i, j int) bool {
			if comps[i].WallSeconds != comps[j].WallSeconds {
				return comps[i].WallSeconds > comps[j].WallSeconds
			}
			return comps[i].Name < comps[j].Name
		})
		m.RenderComponents = comps
	}
	r.manifest = m
	r.progress.done.Store(true)
	return m
}

// Manifest returns the manifest built by Finish, or nil before Finish
// (or on a nil run).
func (r *Run) Manifest() *Manifest {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.manifest
}

func cacheStats(delta Snapshot, hitKey, missKey string) CacheStats {
	s := CacheStats{Hits: delta.Counters[hitKey], Misses: delta.Counters[missKey]}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}

// sanitizeDetections clamps non-finite floats (e.g. the -Inf depth of a
// detection with no measurable side-band) to JSON-representable values.
func sanitizeDetections(in []DetectionRecord) []DetectionRecord {
	out := make([]DetectionRecord, len(in))
	for i, d := range in {
		d.FreqHz = finiteOr(d.FreqHz, 0)
		d.Score = finiteOr(d.Score, math.MaxFloat64)
		d.MagnitudeDBm = finiteOr(d.MagnitudeDBm, -999)
		d.DepthDB = finiteOr(d.DepthDB, -999)
		subs := make([]HarmonicScore, len(d.SubScores))
		for j, s := range d.SubScores {
			s.Score = finiteOr(s.Score, math.MaxFloat64)
			subs[j] = s
		}
		d.SubScores = subs
		out[i] = d
	}
	return out
}

func finiteOr(v, repl float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		if math.IsInf(v, -1) && repl > 0 {
			return -repl
		}
		return repl
	}
	return v
}
