package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"time"
)

// JournalSchema identifies the event-journal layout (the first JSONL line
// of every archived journal); bump it when the event shape changes
// incompatibly.
const JournalSchema = "fase-events/1"

// Event kinds, in rough lifecycle order. Every event the pipeline emits
// uses one of these; ValidateJournal rejects unknown kinds.
const (
	// EventCampaignStart opens a run: Name is the planner mode
	// ("exhaustive" or "adaptive"), F1Hz/F2Hz the scanned band, Total the
	// planned capture count (the budget cap for adaptive runs).
	EventCampaignStart = "campaign_start"
	// EventCampaignEnd closes a run: Captures spent, Detections reported.
	EventCampaignEnd = "campaign_end"
	// EventStageStart/EventStageEnd bracket one sequential pipeline stage
	// (Name); the end event carries the stage's WallSeconds.
	EventStageStart = "stage_start"
	EventStageEnd   = "stage_end"
	// EventSweepPlan announces one ladder sweep before it starts: FAltHz
	// is the alternation frequency, F1Hz/F2Hz the swept band.
	EventSweepPlan = "sweep_plan"
	// EventSweepStart/Progress/End trace one sweep's capture work: Total
	// is the sweep's capture count, Captures the deterministic progress
	// position (reduce-order, not render-completion order).
	EventSweepStart    = "sweep_start"
	EventSweepProgress = "sweep_progress"
	EventSweepEnd      = "sweep_end"
	// EventBudgetReserve records one specan.Meter reservation attempt:
	// Captures requested, Outcome "granted" or "denied", Reserved/Cap the
	// meter state after the attempt.
	EventBudgetReserve = "budget_reserve"
	// EventWindowProbe records an adaptive window's probe result (Score)
	// before the scheduler decides its fate; EventWindowOutcome records
	// that fate (Outcome is one of the Window* manifest constants).
	EventWindowProbe   = "window_probe"
	EventWindowOutcome = "window_outcome"
	// EventDetection reports one merged carrier (FreqHz, Score, best
	// Harmonic); EventDetectionHarmonic reports each harmonic's sub-score
	// and elevated count at that carrier.
	EventDetection         = "detection"
	EventDetectionHarmonic = "detection_harmonic"
	// EventEventsDropped is synthesized per SSE subscriber when the
	// slow-subscriber drop policy discarded Dropped events since the last
	// delivery. It exists only in live streams, never in the archived
	// journal, and carries Track -1.
	EventEventsDropped = "events_dropped"
)

// Budget-reservation outcomes (Event.Outcome on EventBudgetReserve).
const (
	ReserveGranted = "granted"
	ReserveDenied  = "denied"
)

// Event is one typed journal entry. Payload fields are a union across
// kinds — unset fields are omitted from the JSON — and every field except
// T and WallSeconds is deterministic for a bit-identical run, which is
// what makes archived journals byte-comparable (see WriteJSONL).
type Event struct {
	// Seq is the event's position in the canonical journal: assigned by
	// WriteJSONL after the deterministic (Track, TSeq) sort. In live SSE
	// streams it reflects arrival order instead, which may interleave
	// tracks differently from run to run.
	Seq int64 `json:"seq"`
	// Track and TSeq are the deterministic ordering key. Track 0 is the
	// campaign coordinator (lifecycle, stages, budget, windows,
	// detections); track 1+i belongs to ladder index i's sweeps. Within a
	// track, emission is sequential, so TSeq is reproducible even though
	// tracks run concurrently.
	Track int64 `json:"track"`
	TSeq  int64 `json:"tseq"`
	// T is wall-clock seconds since the journal was created — with
	// WallSeconds, the only nondeterministic fields; equivalence checks
	// zero both before comparing.
	T    float64 `json:"t"`
	Kind string  `json:"kind"`

	Name        string  `json:"name,omitempty"`
	F1Hz        float64 `json:"f1_hz,omitempty"`
	F2Hz        float64 `json:"f2_hz,omitempty"`
	FAltHz      float64 `json:"falt_hz,omitempty"`
	FreqHz      float64 `json:"freq_hz,omitempty"`
	Harmonic    int     `json:"harmonic,omitempty"`
	Score       float64 `json:"score,omitempty"`
	Priority    float64 `json:"priority,omitempty"`
	Elevated    int     `json:"elevated,omitempty"`
	Captures    int64   `json:"captures,omitempty"`
	Total       int64   `json:"total,omitempty"`
	Reserved    int64   `json:"reserved,omitempty"`
	Cap         int64   `json:"cap,omitempty"`
	Outcome     string  `json:"outcome,omitempty"`
	Detections  int     `json:"detections,omitempty"`
	Dropped     int64   `json:"dropped,omitempty"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`
}

// Process-wide journal counters (all journals share them).
var (
	journalEmittedTotal = Default.Counter(MetricEventsEmitted)
	journalDroppedTotal = Default.Counter(MetricEventsDropped)
)

// Journal is one run's structured event log plus its live fan-out. Emits
// go through per-track handles (Track) so ordering stays deterministic;
// subscribers (Subscribe) receive the live tail over bounded channels
// with a drop-don't-block policy. All methods are safe for concurrent use
// and nil-safe, so instrumented code threads a *Journal unconditionally.
type Journal struct {
	mu      sync.Mutex
	epoch   time.Time
	events  []Event
	tracks  map[int64]*JournalTrack
	subs    map[*Subscriber]struct{}
	dropped int64
	closed  bool
}

// NewJournal returns an empty journal with its epoch set to now.
func NewJournal() *Journal {
	return &Journal{
		epoch:  time.Now(),
		tracks: make(map[int64]*JournalTrack),
		subs:   make(map[*Subscriber]struct{}),
	}
}

// JournalTrack is a deterministic emission handle: all events emitted
// through the same track id form one sequential (TSeq-ordered) stream,
// shared by every Track(id) call. A nil track's Emit is a no-op, so hot
// paths thread tracks unconditionally and pay only a nil check when the
// journal is off.
type JournalTrack struct {
	j    *Journal
	id   int64
	next int64 // next TSeq; guarded by j.mu
}

// Track returns the shared handle for track id, creating it on first use.
// A nil journal returns a nil (no-op) track. Negative ids are reserved
// for synthetic events and panic.
func (j *Journal) Track(id int64) *JournalTrack {
	if j == nil {
		return nil
	}
	if id < 0 {
		panic(fmt.Sprintf("obs: journal track id must be non-negative, got %d", id))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	t, ok := j.tracks[id]
	if !ok {
		t = &JournalTrack{j: j, id: id}
		j.tracks[id] = t
	}
	return t
}

// Emit appends one event: the track and track-sequence fields are filled
// in, the timestamp stamped, and the event fanned out to live
// subscribers. Emitting through a nil track does nothing.
func (t *JournalTrack) Emit(e Event) {
	if t == nil {
		return
	}
	j := t.j
	journalEmittedTotal.Inc()
	// Clamp non-finite payload floats exactly like the manifest's
	// detection sanitizer: Inf/NaN would fail json.Marshal in WriteJSONL
	// and the SSE fan-out.
	e.F1Hz = finiteOr(e.F1Hz, 0)
	e.F2Hz = finiteOr(e.F2Hz, 0)
	e.FAltHz = finiteOr(e.FAltHz, 0)
	e.FreqHz = finiteOr(e.FreqHz, 0)
	e.Score = finiteOr(e.Score, math.MaxFloat64)
	e.Priority = finiteOr(e.Priority, math.MaxFloat64)
	e.WallSeconds = finiteOr(e.WallSeconds, 0)
	j.mu.Lock()
	e.Track = t.id
	e.TSeq = t.next
	t.next++
	e.T = time.Since(j.epoch).Seconds()
	e.Seq = int64(len(j.events))
	j.events = append(j.events, e)
	for s := range j.subs {
		j.deliver(s, e)
	}
	j.mu.Unlock()
}

// Subscriber is one live tail of the journal. Read events from C; the
// channel is closed on Unsubscribe or Journal.Close.
type Subscriber struct {
	// C delivers live events in arrival order. Bounded: when the reader
	// falls behind, events are dropped (never blocking the emitters) and
	// a synthetic EventEventsDropped is delivered once there is room.
	C chan Event
	// dropped is the pending drop count since the last delivery; guarded
	// by the journal mutex.
	dropped int64
}

// Subscribe registers a live subscriber with the given channel capacity
// (minimum 8) and returns it together with a snapshot of every event
// emitted so far — the backlog and the live stream never overlap or gap.
// A nil journal returns a nil subscriber and no backlog.
func (j *Journal) Subscribe(buf int) (*Subscriber, []Event) {
	if j == nil {
		return nil, nil
	}
	if buf < 8 {
		buf = 8
	}
	s := &Subscriber{C: make(chan Event, buf)}
	j.mu.Lock()
	defer j.mu.Unlock()
	backlog := append([]Event(nil), j.events...)
	if j.closed {
		close(s.C)
		return s, backlog
	}
	j.subs[s] = struct{}{}
	return s, backlog
}

// Unsubscribe removes a subscriber and closes its channel. Safe to call
// twice and on nil values.
func (j *Journal) Unsubscribe(s *Subscriber) {
	if j == nil || s == nil {
		return
	}
	j.mu.Lock()
	if _, ok := j.subs[s]; ok {
		delete(j.subs, s)
		close(s.C)
	}
	j.mu.Unlock()
}

// Close detaches and closes every live subscriber. The journal itself
// stays readable (and emittable) — Close only ends the live streams, e.g.
// when the debug server shuts down.
func (j *Journal) Close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.closed = true
	for s := range j.subs {
		delete(j.subs, s)
		close(s.C)
	}
	j.mu.Unlock()
}

// deliver implements the slow-subscriber drop policy: an event is
// delivered only if the subscriber's channel has room (plus room for the
// pending drop notice, if any); otherwise it is counted as dropped and
// the emitter moves on. Callers hold j.mu.
func (j *Journal) deliver(s *Subscriber, e Event) {
	need := 1
	if s.dropped > 0 {
		need = 2 // drop notice + event
	}
	if cap(s.C)-len(s.C) < need {
		s.dropped++
		j.dropped++
		journalDroppedTotal.Inc()
		return
	}
	if s.dropped > 0 {
		s.C <- Event{Kind: EventEventsDropped, Track: -1, T: e.T, Dropped: s.dropped}
		s.dropped = 0
	}
	s.C <- e
}

// Stats returns how many events were emitted and how many SSE deliveries
// the drop policy discarded (summed over all subscribers).
func (j *Journal) Stats() (emitted, dropped int64) {
	if j == nil {
		return 0, 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return int64(len(j.events)), j.dropped
}

// CanonicalEvents returns a copy of the journal sorted by (Track, TSeq)
// with Seq rewritten to the canonical position. This ordering is a pure
// function of the run's deterministic event content — two bit-identical
// runs produce identical canonical journals regardless of parallelism or
// caching, up to the wall-clock T/WallSeconds fields.
func (j *Journal) CanonicalEvents() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	evs := append([]Event(nil), j.events...)
	j.mu.Unlock()
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].Track != evs[b].Track {
			return evs[a].Track < evs[b].Track
		}
		return evs[a].TSeq < evs[b].TSeq
	})
	for i := range evs {
		evs[i].Seq = int64(i)
	}
	return evs
}

// journalHeader is the first line of an archived journal.
type journalHeader struct {
	Schema string `json:"schema"`
	Events int    `json:"events"`
}

// WriteJSONL writes the canonical journal: a schema header line followed
// by one JSON object per event in (Track, TSeq) order.
func (j *Journal) WriteJSONL(w io.Writer) error {
	events := j.CanonicalEvents()
	bw := bufio.NewWriter(w)
	head, err := json.Marshal(journalHeader{Schema: JournalSchema, Events: len(events)})
	if err != nil {
		return fmt.Errorf("obs: marshal journal header: %w", err)
	}
	bw.Write(head)
	bw.WriteByte('\n')
	for i := range events {
		line, err := json.Marshal(&events[i])
		if err != nil {
			return fmt.Errorf("obs: marshal event %d: %w", i, err)
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteJSONLFile writes the canonical journal to path.
func (j *Journal) WriteJSONLFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := j.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// knownEventKinds is the archived-journal kind set (EventEventsDropped is
// live-stream-only and deliberately absent).
var knownEventKinds = map[string]bool{
	EventCampaignStart: true, EventCampaignEnd: true,
	EventStageStart: true, EventStageEnd: true,
	EventSweepPlan: true, EventSweepStart: true,
	EventSweepProgress: true, EventSweepEnd: true,
	EventBudgetReserve: true,
	EventWindowProbe:   true, EventWindowOutcome: true,
	EventDetection: true, EventDetectionHarmonic: true,
}

// ValidateJournal checks a serialized journal against the schema: header
// first, canonical contiguous Seq, per-track contiguous TSeq, known
// kinds, non-negative counters, and well-formed outcome enums. It returns
// the first violation found.
func ValidateJournal(data []byte) error {
	lines := splitLines(data)
	if len(lines) == 0 {
		return fmt.Errorf("obs: empty journal")
	}
	var head journalHeader
	if err := json.Unmarshal(lines[0], &head); err != nil {
		return fmt.Errorf("obs: parse journal header: %w", err)
	}
	if head.Schema != JournalSchema {
		return fmt.Errorf("obs: journal schema %q, want %q", head.Schema, JournalSchema)
	}
	events := lines[1:]
	if head.Events != len(events) {
		return fmt.Errorf("obs: journal header says %d events, found %d", head.Events, len(events))
	}
	if len(events) == 0 {
		return fmt.Errorf("obs: journal has no events")
	}
	nextTSeq := map[int64]int64{}
	sawStart := false
	for i, line := range events {
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return fmt.Errorf("obs: parse event %d: %w", i, err)
		}
		if e.Seq != int64(i) {
			return fmt.Errorf("obs: event %d has seq %d — journal is not canonical", i, e.Seq)
		}
		if e.Track < 0 {
			return fmt.Errorf("obs: event %d has negative track %d", i, e.Track)
		}
		if e.TSeq != nextTSeq[e.Track] {
			return fmt.Errorf("obs: event %d has tseq %d on track %d, want %d",
				i, e.TSeq, e.Track, nextTSeq[e.Track])
		}
		nextTSeq[e.Track]++
		if !knownEventKinds[e.Kind] {
			return fmt.Errorf("obs: event %d has unknown kind %q", i, e.Kind)
		}
		if e.T < 0 || e.WallSeconds < 0 {
			return fmt.Errorf("obs: event %d (%s) has negative timing", i, e.Kind)
		}
		if e.Captures < 0 || e.Total < 0 || e.Reserved < 0 || e.Cap < 0 ||
			e.Detections < 0 || e.Dropped < 0 || e.Elevated < 0 {
			return fmt.Errorf("obs: event %d (%s) has negative counts", i, e.Kind)
		}
		switch e.Kind {
		case EventCampaignStart:
			sawStart = true
		case EventBudgetReserve:
			if e.Outcome != ReserveGranted && e.Outcome != ReserveDenied {
				return fmt.Errorf("obs: event %d has budget outcome %q", i, e.Outcome)
			}
			if e.Reserved > e.Cap {
				return fmt.Errorf("obs: event %d reserves %d over cap %d", i, e.Reserved, e.Cap)
			}
		case EventWindowOutcome:
			switch e.Outcome {
			case WindowRefined, WindowAbandoned, WindowPartial, WindowSkipped:
			default:
				return fmt.Errorf("obs: event %d has window outcome %q", i, e.Outcome)
			}
		case EventSweepProgress, EventSweepEnd:
			if e.Captures > e.Total {
				return fmt.Errorf("obs: event %d reports %d of %d captures", i, e.Captures, e.Total)
			}
		}
	}
	if !sawStart {
		return fmt.Errorf("obs: journal has no %s event", EventCampaignStart)
	}
	return nil
}

// ValidateJournalFile reads and validates a journal file.
func ValidateJournalFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return ValidateJournal(data)
}

// splitLines splits on '\n', dropping empty lines (e.g. the trailing
// newline).
func splitLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i := 0; i <= len(data); i++ {
		if i == len(data) || data[i] == '\n' {
			if i > start {
				out = append(out, data[start:i])
			}
			start = i + 1
		}
	}
	return out
}
