//go:build unix

package obs

import "syscall"

// processCPUSeconds returns the process's cumulative user+system CPU
// time, for the manifest's per-stage CPU attribution.
func processCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Utime.Sec) + float64(ru.Utime.Usec)/1e6 +
		float64(ru.Stime.Sec) + float64(ru.Stime.Usec)/1e6
}
