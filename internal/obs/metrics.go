// Package obs is the zero-dependency observability layer of the FASE
// pipeline: a process-wide metrics registry (counters, gauges,
// fixed-bucket histograms — all atomic), span-based stage tracing that
// emits Chrome trace_event JSON, per-run manifests recording where a
// campaign's time went and why each detection fired, and a debug HTTP
// server exposing net/http/pprof plus a metrics snapshot.
//
// Everything is stdlib-only and safe under the rendering worker pools.
// Every hook is a nil-safe no-op: a nil *Run, nil *Tracer, or zero Span
// does nothing and allocates nothing, so the instrumented hot path stays
// allocation-free and bit-identical when observability is off (enforced
// by the planner equivalence tests, which run with it on).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Canonical metric names instrumented across the pipeline. The packages
// that own each site register these against Default at init, and
// Run.Finish reads their deltas into the manifest's cache and planner
// statistics. See DESIGN.md "Observability" for the full catalogue.
const (
	MetricFFTPlanHits          = "fase_fft_plan_cache_hits_total"
	MetricFFTPlanMisses        = "fase_fft_plan_cache_misses_total"
	MetricRFFTPlanHits         = "fase_rfft_plan_cache_hits_total"
	MetricRFFTPlanMisses       = "fase_rfft_plan_cache_misses_total"
	MetricWindowHits           = "fase_window_cache_hits_total"
	MetricWindowMisses         = "fase_window_cache_misses_total"
	MetricBufpoolComplexHits   = "fase_bufpool_complex_hits_total"
	MetricBufpoolComplexMisses = "fase_bufpool_complex_misses_total"
	MetricBufpoolFloatHits     = "fase_bufpool_float_hits_total"
	MetricBufpoolFloatMisses   = "fase_bufpool_float_misses_total"
	MetricPlansBuilt           = "fase_emsim_plans_built_total"
	MetricPlanComponentsActive = "fase_emsim_plan_components_active_total"
	MetricPlanComponentsSkip   = "fase_emsim_plan_components_skipped_total"
	MetricRenderCaptures       = "fase_emsim_captures_rendered_total"
	MetricRenderComponentSkips = "fase_emsim_render_component_skips_total"
	MetricFaultedCaptures      = "fase_emsim_faulted_captures_total"
	MetricSweeps               = "fase_specan_sweeps_total"
	MetricSpecanCaptures       = "fase_specan_captures_total"
	MetricSpecanPlanHits       = "fase_specan_plan_cache_hits_total"
	MetricSpecanPlanMisses     = "fase_specan_plan_cache_misses_total"
	MetricStaticCacheHits      = "fase_render_static_cache_hits_total"
	MetricStaticCacheMisses    = "fase_render_static_cache_misses_total"
	MetricStaticComponents     = "fase_render_static_components_cached_total"
	MetricStaticReplays        = "fase_render_static_component_replays_total"
	MetricCampaigns            = "fase_core_campaigns_total"
	MetricDetections           = "fase_core_detections_total"
	// Adaptive-planner counters: campaigns run in adaptive mode, and the
	// fate of each refinement window the planner scheduled (fully
	// refined, abandoned after its probe, or skipped for lack of budget).
	MetricAdaptiveCampaigns        = "fase_core_adaptive_campaigns_total"
	MetricAdaptiveWindowsRefined   = "fase_core_adaptive_windows_refined_total"
	MetricAdaptiveWindowsAbandoned = "fase_core_adaptive_windows_abandoned_total"
	MetricAdaptiveWindowsSkipped   = "fase_core_adaptive_windows_skipped_total"
	MetricRenderSeconds            = "fase_specan_render_seconds"
	MetricFFTSeconds               = "fase_specan_fft_seconds"
	// MetricRenderComponentSeconds is the histogram of single-component
	// live-render wall times, observed by instrumented captures (see
	// Run.AddComponentRender) — the distribution behind the manifest's
	// per-component table.
	MetricRenderComponentSeconds = "fase_render_component_seconds"
	// Event-journal counters: events emitted across all journals, and SSE
	// deliveries the slow-subscriber drop policy discarded.
	MetricEventsEmitted = "fase_obs_events_emitted_total"
	MetricEventsDropped = "fase_obs_events_dropped_total"
	// MetricBuildInfo is the build-identity info gauge (value 1, build
	// metadata as labels — see RegisterBuildInfo).
	MetricBuildInfo = "fase_build_info"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are nil-safe no-ops.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64. The zero value is ready to
// use; all methods are nil-safe no-ops.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// FloatAdder accumulates float64 values atomically (CAS loop), for
// summing durations from concurrent workers without a lock.
type FloatAdder struct{ bits atomic.Uint64 }

// Add accumulates v.
func (f *FloatAdder) Add(v float64) {
	if f == nil {
		return
	}
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the accumulated sum.
func (f *FloatAdder) Value() float64 {
	if f == nil {
		return 0
	}
	return math.Float64frombits(f.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// values v <= Bounds[i]; one overflow bucket catches the rest. Observe is
// atomic and allocation-free, so histograms are safe in the render hot
// path.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    FloatAdder
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram. P50/P90/P99
// are derived latency-quantile estimates (see Quantile) so /metrics and
// manifest tables show quantiles without re-deriving them from buckets.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// within the bucket holding the target rank, the standard fixed-bucket
// estimator: the first bucket interpolates from 0, and ranks landing in
// the overflow bucket clamp to the last bound (the histogram records no
// upper edge there). Returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			return lo + (hi-lo)*(target-cum)/float64(c)
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}

// computeQuantiles fills the derived quantile fields from the buckets.
func (s *HistogramSnapshot) computeQuantiles() {
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Bounds: h.bounds, Counts: make([]int64, len(h.counts)), Sum: h.sum.Value()}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.computeQuantiles()
	return s
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and multiplying by factor — the shape duration histograms use.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: invalid bucket spec start=%g factor=%g n=%d", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry is a named collection of metrics. Lookups take a mutex (they
// happen at package init or setup time); the returned metrics are then
// lock-free. The zero registry is not usable — use NewRegistry or the
// process-wide Default.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Default is the process-wide registry every instrumented package
// registers against.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns nil (whose methods are no-ops).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls keep the original bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry's metrics, the
// expvar-style view served at /metrics and embedded in manifests.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current values. A nil registry yields a
// zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Sub returns the delta s - prev: counters and histogram counts/sums
// subtract, gauges keep their end value. Used to attribute process-wide
// metric movement to one run.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     s.Gauges,
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, h := range s.Histograms {
		p, ok := prev.Histograms[name]
		if !ok || len(p.Counts) != len(h.Counts) {
			out.Histograms[name] = h
			continue
		}
		d := HistogramSnapshot{Bounds: h.Bounds, Counts: make([]int64, len(h.Counts)), Sum: h.Sum - p.Sum}
		for i := range h.Counts {
			d.Counts[i] = h.Counts[i] - p.Counts[i]
			d.Count += d.Counts[i]
		}
		d.computeQuantiles()
		out.Histograms[name] = d
	}
	return out
}

// WriteJSON writes the registry's snapshot as indented JSON (keys
// sorted, so output is stable).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// promSplitLabels splits a registry name that encodes labels — the
// info-metric convention used by RegisterBuildInfo — into its base name
// and the full series name. Plain names return themselves twice.
func promSplitLabels(name string) (base, series string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name
	}
	return name, name
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm writes the registry's snapshot in the Prometheus text
// exposition format (version 0.0.4): one sorted series per counter and
// gauge, and histograms expanded into cumulative _bucket{le="..."}
// series plus _sum and _count. Served at /metrics?format=prom.
func (r *Registry) WriteProm(w io.Writer) error {
	s := r.Snapshot()
	var b []byte

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, series := promSplitLabels(name)
		b = append(b, "# TYPE "...)
		b = append(b, base...)
		b = append(b, " counter\n"...)
		b = append(b, series...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, s.Counters[name], 10)
		b = append(b, '\n')
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, series := promSplitLabels(name)
		b = append(b, "# TYPE "...)
		b = append(b, base...)
		b = append(b, " gauge\n"...)
		b = append(b, series...)
		b = append(b, ' ')
		b = append(b, promFloat(s.Gauges[name])...)
		b = append(b, '\n')
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		b = append(b, "# TYPE "...)
		b = append(b, name...)
		b = append(b, " histogram\n"...)
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			b = append(b, name...)
			b = append(b, `_bucket{le="`...)
			b = append(b, promFloat(bound)...)
			b = append(b, `"} `...)
			b = strconv.AppendInt(b, cum, 10)
			b = append(b, '\n')
		}
		b = append(b, name...)
		b = append(b, `_bucket{le="+Inf"} `...)
		b = strconv.AppendInt(b, h.Count, 10)
		b = append(b, '\n')
		b = append(b, name...)
		b = append(b, "_sum "...)
		b = append(b, promFloat(h.Sum)...)
		b = append(b, '\n')
		b = append(b, name...)
		b = append(b, "_count "...)
		b = strconv.AppendInt(b, h.Count, 10)
		b = append(b, '\n')
	}

	_, err := w.Write(b)
	return err
}
