package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var f *FloatAdder
	f.Add(1.5)
	if f.Value() != 0 {
		t.Error("nil adder has a value")
	}
	var h *Histogram
	h.Observe(1)
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Error("nil registry returned non-nil metrics")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestNilRunAndTracerAreNoOps(t *testing.T) {
	var run *Run
	run.Stage("x")()
	run.RecordPlan(1, 2, 3, 4, 5)
	if run.Stages() != nil || run.Manifest() != nil || run.Finish(nil, 0, nil) != nil {
		t.Error("nil run returned data")
	}
	var tr *Tracer
	sp := tr.Begin("root")
	if sp.Active() {
		t.Error("nil tracer produced an active span")
	}
	sp.Child("c").End()
	sp.Fork("f").End()
	sp.Mark("m", time.Now(), time.Second)
	sp.End()
	if tr.Events() != nil {
		t.Error("nil tracer recorded events")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	s := h.snapshot()
	// v <= bound goes in that bucket: {0.5, 1}, {5}, {50}, overflow {500, 5000}.
	want := []int64{2, 1, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 6 {
		t.Errorf("count %d, want 6", s.Count)
	}
	if s.Sum != 0.5+1+5+50+500+5000 {
		t.Errorf("sum %g", s.Sum)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-5, 4, 3)
	want := []float64{1e-5, 4e-5, 16e-5}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 2, 3) },
		func() { ExpBuckets(1, 1, 3) },
		func() { ExpBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid bucket spec did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestRegistrySnapshotSub(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 10})
	c.Add(3)
	g.Set(1.5)
	h.Observe(0.5)
	before := r.Snapshot()
	c.Add(4)
	g.Set(2.5)
	h.Observe(20)
	delta := r.Snapshot().Sub(before)
	if delta.Counters["c"] != 4 {
		t.Errorf("counter delta %d, want 4", delta.Counters["c"])
	}
	if delta.Gauges["g"] != 2.5 {
		t.Errorf("gauge in delta keeps end value: %g", delta.Gauges["g"])
	}
	hd := delta.Histograms["h"]
	if hd.Count != 1 || hd.Counts[2] != 1 || hd.Sum != 20 {
		t.Errorf("histogram delta %+v", hd)
	}
	// Same-name lookups return the same metric.
	if r.Counter("c") != c || r.Gauge("g") != g || r.Histogram("h", nil) != h {
		t.Error("registry lookup is not idempotent")
	}
}

func TestRegistryWriteJSONStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Add(1)
	r.Counter("a").Add(2)
	var b1, b2 bytes.Buffer
	if err := r.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("WriteJSON output unstable")
	}
	var s Snapshot
	if err := json.Unmarshal(b1.Bytes(), &s); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	if s.Counters["a"] != 2 || s.Counters["z"] != 1 {
		t.Errorf("snapshot round trip: %+v", s)
	}
}

// TestConcurrentExactTotals hammers the registry's metrics and a run's
// per-capture accumulators from Parallelism-many goroutines and asserts
// exact totals — the invariant the worker pools rely on (run under -race
// by make race).
func TestConcurrentExactTotals(t *testing.T) {
	const perG = 2000
	workers := runtime.GOMAXPROCS(0) * 2
	r := NewRegistry()
	c := r.Counter("hammer")
	g := r.Gauge("level")
	h := r.Histogram("lat", ExpBuckets(1, 2, 8))
	run := NewRun()
	run.Tracer = NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			root := run.Tracer.Begin(fmt.Sprintf("worker-%d", w))
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Set(float64(w))
				h.Observe(float64(i % 300))
				run.Captures.Inc()
				run.RenderSeconds.Add(0.001)
			}
			run.RecordPlan(float64(w), 1e6, 1024, 3, 2)
			root.End()
		}(w)
	}
	wg.Wait()
	total := int64(workers * perG)
	if got := c.Value(); got != total {
		t.Errorf("counter %d, want %d", got, total)
	}
	if got := h.snapshot().Count; got != total {
		t.Errorf("histogram count %d, want %d", got, total)
	}
	if got := run.Captures.Value(); got != total {
		t.Errorf("run captures %d, want %d", got, total)
	}
	want := 0.001 * float64(total)
	if got := run.RenderSeconds.Value(); got < want*(1-1e-9) || got > want*(1+1e-9) {
		t.Errorf("render seconds %g, want %g", got, want)
	}
	if got := len(run.Tracer.Events()); got != workers {
		t.Errorf("%d trace events, want %d", got, workers)
	}
}

// TestChromeTraceStructure asserts the trace output is structurally valid
// trace_event JSON: complete events with non-negative timings, lanes as
// tids, and parent links resolving to recorded span ids.
func TestChromeTraceStructure(t *testing.T) {
	tr := NewTracer()
	root := tr.Begin("campaign")
	stage := root.Child("sweeps")
	fork := stage.Fork("sweep")
	fork.Mark("render", time.Now(), time.Millisecond)
	fork.End()
	stage.End()
	root.End()

	if root.Active() != true {
		t.Error("live span should be active")
	}
	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 4 {
		t.Fatalf("%d events, want 4", len(out.TraceEvents))
	}
	ids := map[float64]string{}
	for _, e := range out.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %q has ph %q, want X", e.Name, e.Ph)
		}
		if e.Ts < 0 || e.Dur < 0 {
			t.Errorf("event %q has negative timing ts=%g dur=%g", e.Name, e.Ts, e.Dur)
		}
		if e.Cat != "fase" {
			t.Errorf("event %q has cat %q", e.Name, e.Cat)
		}
		id, ok := e.Args["id"].(float64)
		if !ok || id <= 0 {
			t.Fatalf("event %q has no id: %+v", e.Name, e.Args)
		}
		ids[id] = e.Name
	}
	byName := map[string]map[string]any{}
	for _, e := range out.TraceEvents {
		byName[e.Name] = e.Args
	}
	// campaign is a root; sweeps is its child; sweep forks from sweeps;
	// render marks inside sweep.
	if p := byName["campaign"]["parent"].(float64); p != 0 {
		t.Errorf("campaign parent %g, want 0", p)
	}
	for child, parent := range map[string]string{
		"sweeps": "campaign", "sweep": "sweeps", "render": "sweep",
	} {
		pid := byName[child]["parent"].(float64)
		if ids[pid] != parent {
			t.Errorf("%s's parent id %g resolves to %q, want %q", child, pid, ids[pid], parent)
		}
	}
}

// TestTracerLanePooling checks sequential root spans reuse lanes, so a
// long campaign's trace keeps a bounded lane (thread) count.
func TestTracerLanePooling(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 10; i++ {
		s := tr.Begin("s")
		s.End()
	}
	lanes := map[int64]bool{}
	for _, e := range tr.Events() {
		lanes[e.Lane] = true
	}
	if len(lanes) != 1 {
		t.Errorf("sequential spans used %d lanes, want 1", len(lanes))
	}
}

func TestRunStagesAndManifest(t *testing.T) {
	run := NewRun()
	end := run.Stage("sweeps")
	time.Sleep(2 * time.Millisecond)
	end()
	run.Stage("detect")()
	run.Captures.Add(8)
	run.RecordPlan(400e3, 409600, 2048, 9, 20)
	m := run.Finish(map[string]any{"fres_hz": 100.0}, 1.5, []DetectionRecord{{
		FreqHz: 315e3, Score: 100, BestHarmonic: 1,
		SubScores: []HarmonicScore{{Harmonic: 1, Score: 100, Elevated: 5}},
	}})
	if m == nil || run.Manifest() != m {
		t.Fatal("Finish did not produce the run's manifest")
	}
	if m2 := run.Finish(nil, 0, nil); m2 != m {
		t.Error("second Finish must return the first manifest")
	}
	if len(m.Stages) != 2 || m.Stages[0].Name != "sweeps" || m.Stages[0].WallSeconds <= 0 {
		t.Errorf("stages: %+v", m.Stages)
	}
	if m.SimulatedAnalyzerSeconds != 1.5 || m.Captures != 8 {
		t.Errorf("manifest totals: %+v", m)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateManifest(data); err != nil {
		t.Errorf("finished manifest fails validation: %v", err)
	}
}

func TestRunComponentRenderStats(t *testing.T) {
	run := NewRun()
	end := run.Stage("sweeps")
	// Let the stage dominate the run's wall time so validation's stage-sum
	// check has a meaningful denominator.
	time.Sleep(5 * time.Millisecond)
	end()
	run.Captures.Inc()
	run.AddComponentRender("reg A", 0.002)
	run.AddComponentRender("reg A", 0.003)
	run.AddComponentRender("crystal", 0.001)
	run.AddComponentReplay("crystal")
	run.AddComponentReplay("crystal")
	m := run.Finish("cfg", 0, nil)
	if len(m.RenderComponents) != 2 {
		t.Fatalf("render components: %+v", m.RenderComponents)
	}
	// Sorted by wall time, heaviest first.
	if m.RenderComponents[0].Name != "reg A" || m.RenderComponents[0].Renders != 2 {
		t.Errorf("heaviest component: %+v", m.RenderComponents[0])
	}
	if m.RenderComponents[0].WallSeconds < 0.005-1e-12 {
		t.Errorf("wall not accumulated: %+v", m.RenderComponents[0])
	}
	if c := m.RenderComponents[1]; c.Name != "crystal" || c.Renders != 1 || c.Replays != 2 {
		t.Errorf("replay attribution: %+v", c)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateManifest(data); err != nil {
		t.Errorf("manifest with component stats fails validation: %v", err)
	}
}

func TestFinishSanitizesNonFinite(t *testing.T) {
	run := NewRun()
	run.Stage("s")()
	run.Captures.Inc()
	inf := func() float64 { var z float64; return -1 / z }()
	m := run.Finish("cfg", 0, []DetectionRecord{{
		FreqHz: 1e3, Score: 10, BestHarmonic: -1, DepthDB: inf, MagnitudeDBm: inf,
		SubScores: []HarmonicScore{{Harmonic: -1, Score: -inf, Elevated: 1}},
	}})
	if _, err := json.Marshal(m); err != nil {
		t.Fatalf("manifest with sanitized floats still unmarshalable: %v", err)
	}
	if m.Detections[0].DepthDB != -999 || m.Detections[0].MagnitudeDBm != -999 {
		t.Errorf("-Inf not clamped: %+v", m.Detections[0])
	}
}

// validHistogramSnapshot is a consistent histogram record the validator
// must accept; the reject cases each break one invariant.
func validHistogramSnapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: 4, Sum: 5.5,
		Bounds: []float64{1, 2, 4},
		Counts: []int64{1, 2, 1, 0},
		P50:    1.5, P90: 3.2, P99: 3.92,
	}
}

// validAdaptiveStats is a consistent adaptive-planner record the
// validator must accept; the reject cases each break one invariant.
func validAdaptiveStats() *AdaptiveStats {
	return &AdaptiveStats{
		Budget: 30, CapturesUsed: 19, ExhaustiveCaptures: 100,
		ReconCaptures: 4, RefineCaptures: 15,
		ReconFresHz: 800, Candidates: 3,
		Windows: []AdaptiveWindow{
			{F1Hz: 264e3, F2Hz: 365e3, Priority: 291.1, Outcome: WindowRefined, Captures: 5, ProbeScore: 893.7, Detections: 1},
			{F1Hz: 600e3, F2Hz: 700e3, Priority: 2.0, Outcome: WindowSkipped},
		},
	}
}

func TestValidateManifestRejects(t *testing.T) {
	base := func() *Manifest {
		run := NewRun()
		end := run.Stage("sweeps")
		// Let the stage dominate the run's wall time so the 10% stage-sum
		// check has a meaningful denominator.
		time.Sleep(5 * time.Millisecond)
		end()
		run.Captures.Inc()
		return run.Finish("cfg", 0, nil)
	}
	cases := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"wrong schema", func(m *Manifest) { m.Schema = "bogus/9" }},
		{"no created", func(m *Manifest) { m.CreatedUnix = 0 }},
		{"no config", func(m *Manifest) { m.Config = nil }},
		{"no stages", func(m *Manifest) { m.Stages = nil }},
		{"negative stage", func(m *Manifest) { m.Stages[0].WallSeconds = -1 }},
		{"stage sum off", func(m *Manifest) { m.TotalWallSeconds = m.TotalWallSeconds*10 + 1 }},
		{"no captures", func(m *Manifest) { m.Captures = 0 }},
		{"missing cache", func(m *Manifest) { delete(m.Caches, "window") }},
		{"bad hit rate", func(m *Manifest) { m.Caches["window"] = CacheStats{HitRate: 2} }},
		{"negative planner", func(m *Manifest) { m.Planner.PlansBuilt = -1 }},
		{"detection without provenance", func(m *Manifest) {
			m.Detections = []DetectionRecord{{FreqHz: 1, BestHarmonic: 1}}
		}},
		{"detection without harmonic", func(m *Manifest) {
			m.Detections = []DetectionRecord{{FreqHz: 1, SubScores: []HarmonicScore{{Harmonic: 1}}}}
		}},
		{"unnamed render component", func(m *Manifest) {
			m.RenderComponents = []ComponentRenderStats{{Renders: 1, WallSeconds: 0.1}}
		}},
		{"negative render component", func(m *Manifest) {
			m.RenderComponents = []ComponentRenderStats{{Name: "reg", Renders: -1}}
		}},
		{"adaptive zero budget", func(m *Manifest) {
			m.Adaptive = validAdaptiveStats()
			m.Adaptive.Budget = 0
		}},
		{"adaptive overspent", func(m *Manifest) {
			m.Adaptive = validAdaptiveStats()
			m.Adaptive.CapturesUsed = m.Adaptive.Budget + 1
		}},
		{"adaptive split mismatch", func(m *Manifest) {
			m.Adaptive = validAdaptiveStats()
			m.Adaptive.ReconCaptures++
		}},
		{"adaptive zero exhaustive", func(m *Manifest) {
			m.Adaptive = validAdaptiveStats()
			m.Adaptive.ExhaustiveCaptures = 0
		}},
		{"adaptive bad recon fres", func(m *Manifest) {
			m.Adaptive = validAdaptiveStats()
			m.Adaptive.ReconFresHz = 0
		}},
		{"adaptive unknown outcome", func(m *Manifest) {
			m.Adaptive = validAdaptiveStats()
			m.Adaptive.Windows[0].Outcome = "hesitated"
		}},
		{"adaptive empty window", func(m *Manifest) {
			m.Adaptive = validAdaptiveStats()
			m.Adaptive.Windows[0].F2Hz = m.Adaptive.Windows[0].F1Hz
		}},
		{"adaptive skipped but charged", func(m *Manifest) {
			m.Adaptive = validAdaptiveStats()
			m.Adaptive.Windows[1].Captures = 3
		}},
		{"empty build version", func(m *Manifest) { m.Build.Version = "" }},
		{"empty build go version", func(m *Manifest) { m.Build.GoVersion = "" }},
		{"empty build os", func(m *Manifest) { m.Build.OS = "" }},
		{"empty build arch", func(m *Manifest) { m.Build.Arch = "" }},
		{"events zero emitted", func(m *Manifest) { m.Events = &EventStats{} }},
		{"events negative dropped", func(m *Manifest) {
			m.Events = &EventStats{Emitted: 5, Dropped: -1}
		}},
		{"histogram counts/bounds mismatch", func(m *Manifest) {
			h := validHistogramSnapshot()
			h.Counts = h.Counts[:len(h.Counts)-1]
			m.Histograms = map[string]HistogramSnapshot{"h": h}
		}},
		{"histogram negative bucket", func(m *Manifest) {
			h := validHistogramSnapshot()
			h.Counts[0] = -1
			m.Histograms = map[string]HistogramSnapshot{"h": h}
		}},
		{"histogram count/bucket mismatch", func(m *Manifest) {
			h := validHistogramSnapshot()
			h.Count++
			m.Histograms = map[string]HistogramSnapshot{"h": h}
		}},
		{"histogram quantiles not monotone", func(m *Manifest) {
			h := validHistogramSnapshot()
			h.P90 = h.P50 / 2
			m.Histograms = map[string]HistogramSnapshot{"h": h}
		}},
	}
	for _, tc := range cases {
		m := base()
		tc.mutate(m)
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := ValidateManifest(data); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
	// The unmutated base must validate.
	data, _ := json.Marshal(base())
	if err := ValidateManifest(data); err != nil {
		t.Fatalf("base manifest invalid: %v", err)
	}
	// ... as must the base carrying a well-formed adaptive block.
	withAdaptive := base()
	withAdaptive.Adaptive = validAdaptiveStats()
	data, _ = json.Marshal(withAdaptive)
	if err := ValidateManifest(data); err != nil {
		t.Fatalf("manifest with adaptive stats invalid: %v", err)
	}
	// ... and one carrying event stats and histogram quantiles.
	withObs := base()
	withObs.Events = &EventStats{Emitted: 17, Dropped: 2}
	withObs.Histograms = map[string]HistogramSnapshot{"h": validHistogramSnapshot()}
	data, _ = json.Marshal(withObs)
	if err := ValidateManifest(data); err != nil {
		t.Fatalf("manifest with events and histograms invalid: %v", err)
	}
	if err := ValidateManifest([]byte("{")); err == nil {
		t.Error("malformed JSON validated")
	}
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fase_test_total").Add(7)
	ds, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + ds.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "fase_test_total") {
		t.Errorf("/metrics missing counter: %s", body)
	}
	if body := get("/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("/healthz: %q", body)
	}
	if body := get("/debug/pprof/goroutine?debug=1"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/goroutine not served")
	}
	if (*DebugServer)(nil).Close() != nil {
		t.Error("nil server Close must be a no-op")
	}
}

func TestProcessCPUSeconds(t *testing.T) {
	c0 := processCPUSeconds()
	if c0 < 0 {
		t.Fatalf("negative CPU time %g", c0)
	}
	// Burn a little CPU; the reading must not decrease.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i % 7)
	}
	_ = x
	if c1 := processCPUSeconds(); c1 < c0 {
		t.Errorf("CPU time went backwards: %g -> %g", c0, c1)
	}
}
