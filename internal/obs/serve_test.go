package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestDebugServerShutdownDrainsSSE is the goroutine-leak regression test
// for DebugServer.Close: with an SSE client parked on /events, Close must
// unblock the streaming handler and return promptly instead of leaking
// the handler goroutine (or hanging in Shutdown forever).
func TestDebugServerShutdownDrainsSSE(t *testing.T) {
	run := NewRun()
	run.Journal = NewJournal()
	run.Track(0).Emit(Event{Kind: EventCampaignStart, Name: "exhaustive"})
	ds, err := Serve("127.0.0.1:0", NewRegistry(), run)
	if err != nil {
		t.Fatal(err)
	}
	// Use a dedicated transport so the goroutine accounting below sees
	// only this test's client connections, not a shared keepalive pool.
	tr := &http.Transport{}
	client := &http.Client{Transport: tr}
	before := runtime.NumGoroutine()

	resp, err := client.Get("http://" + ds.Addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	// Read the backlog frame so the handler is provably inside its
	// streaming loop before we shut down.
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "id: ") {
		t.Fatalf("SSE first line %q, err %v", line, err)
	}

	done := make(chan error, 1)
	go func() { done <- ds.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return with an SSE client attached")
	}
	if err := ds.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	resp.Body.Close()
	tr.CloseIdleConnections()

	// The SSE handler, server accept loop, and this test's client
	// goroutines must all wind down.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked after Close: %d > %d\n%s",
			n, before, buf[:runtime.Stack(buf, true)])
	}
}

func TestServeSSEStreamsBacklogAndLive(t *testing.T) {
	run := NewRun()
	run.Journal = NewJournal()
	ct := run.Track(0)
	ct.Emit(Event{Kind: EventCampaignStart, Name: "exhaustive"})
	ds, err := Serve("127.0.0.1:0", NewRegistry(), run)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, err := http.Get("http://" + ds.Addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	readFrame := func() Event {
		t.Helper()
		var data string
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				t.Fatalf("read SSE frame: %v", err)
			}
			line = strings.TrimRight(line, "\n")
			if strings.HasPrefix(line, "data: ") {
				data = strings.TrimPrefix(line, "data: ")
			}
			if line == "" && data != "" {
				var e Event
				if err := json.Unmarshal([]byte(data), &e); err != nil {
					t.Fatalf("frame %q: %v", data, err)
				}
				return e
			}
		}
	}
	if e := readFrame(); e.Kind != EventCampaignStart {
		t.Fatalf("backlog frame kind %q", e.Kind)
	}
	ct.Emit(Event{Kind: EventCampaignEnd, Captures: 8})
	if e := readFrame(); e.Kind != EventCampaignEnd || e.Captures != 8 {
		t.Fatalf("live frame %+v", e)
	}
}

func TestProgressEndpoint(t *testing.T) {
	run := NewRun()
	run.Journal = NewJournal()
	run.SetStage("sweeps")
	run.SetTotals(100, 4, 10)
	run.Captures.Add(25)
	run.AddSimSeconds(2.5)
	run.AddSweepDone()
	ds, err := Serve("127.0.0.1:0", NewRegistry(), run)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, err := http.Get("http://" + ds.Addr + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p ProgressInfo
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Stage != "sweeps" || p.CapturesUsed != 25 || p.CapturesTotal != 100 {
		t.Errorf("progress %+v", p)
	}
	if p.PercentComplete != 25 {
		t.Errorf("percent %.1f, want 25", p.PercentComplete)
	}
	if p.SweepsDone != 1 || p.SweepsTotal != 4 {
		t.Errorf("sweeps %d/%d", p.SweepsDone, p.SweepsTotal)
	}
}

func TestProgressAndEventsWithoutRun(t *testing.T) {
	ds, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	for _, path := range []string{"/progress", "/events"} {
		resp, err := http.Get("http://" + ds.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without a run: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestPromExpositionGolden locks the Prometheus text rendering against
// testdata/metrics.prom.golden. Regenerate with UPDATE_GOLDEN=1.
func TestPromExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fase_core_campaigns_total").Add(2)
	reg.Counter("fase_obs_events_emitted_total").Add(57)
	reg.Gauge("fase_adaptive_budget_cap").Set(120)
	reg.Gauge(`fase_build_info{version="test",go="go1.24.0",os="linux",arch="amd64"}`).Set(1)
	h := reg.Histogram("fase_specan_render_seconds", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.003, 0.05, 0.5} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	golden := filepath.Join("testdata", "metrics.prom.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("prometheus exposition differs from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestMetricsPromEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fase_test_total").Add(7)
	ds, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, err := http.Get("http://" + ds.Addr + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type %q", ct)
	}
	body := new(strings.Builder)
	if _, err := bufio.NewReader(resp.Body).WriteTo(body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.String(), "# TYPE fase_test_total counter") ||
		!strings.Contains(body.String(), "fase_test_total 7") {
		t.Errorf("prom exposition:\n%s", body)
	}
}
