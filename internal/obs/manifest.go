package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// ManifestSchema identifies the manifest layout; bump it when the JSON
// shape changes incompatibly.
const ManifestSchema = "fase-run-manifest/1"

// Manifest is the per-run record a campaign writes: what was asked for
// (resolved config), where the time went (stages, render vs FFT), what
// the planner and caches did, and the full provenance behind every
// detection. See DESIGN.md "Observability" for the schema description.
type Manifest struct {
	Schema      string `json:"schema"`
	CreatedUnix int64  `json:"created_unix"`
	// Config is the fully resolved campaign configuration (defaults
	// applied), as the instrumented package recorded it.
	Config any           `json:"config"`
	Stages []StageTiming `json:"stages"`
	// TotalWallSeconds spans Run creation to Finish; the stage walls are
	// sequential sub-intervals, so they sum to ≈ this.
	TotalWallSeconds float64 `json:"total_wall_seconds"`
	TotalCPUSeconds  float64 `json:"total_cpu_seconds"`
	// SimulatedAnalyzerSeconds is the observation time the modeled
	// spectrum analyzer would have spent (Analyzer.TotalDuration summed
	// over the campaign's sweeps) — the paper's "scan time".
	SimulatedAnalyzerSeconds float64 `json:"simulated_analyzer_seconds"`
	// Captures, RenderSeconds, FFTSeconds break down the measurement
	// work: capture count and the render vs window+FFT+calibrate split.
	Captures      int64                 `json:"captures"`
	RenderSeconds float64               `json:"render_seconds"`
	FFTSeconds    float64               `json:"fft_seconds"`
	Planner       PlannerStats          `json:"planner"`
	Caches        map[string]CacheStats `json:"caches"`
	// RenderComponents attributes live render wall time (and static-cache
	// replays) to individual scene components, sorted by wall time
	// descending. Present only on runs whose captures were instrumented
	// (see Run.AddComponentRender); older manifests omit it.
	RenderComponents []ComponentRenderStats `json:"render_components,omitempty"`
	Detections       []DetectionRecord      `json:"detections"`
	// Accuracy is present only on accuracy-harness runs (internal/verify):
	// the corpus-wide ground-truth scoring, so a manifest archive carries
	// detection quality alongside cost.
	Accuracy *AccuracyStats `json:"accuracy,omitempty"`
	// Adaptive is present only on adaptive-planner campaigns: the
	// measurement budget, how it was spent across recon and refinement,
	// and the planner's per-window decisions — the provenance behind
	// "why was this band (not) re-swept".
	Adaptive *AdaptiveStats `json:"adaptive,omitempty"`
	// Build identifies the binary that produced the run (module version
	// or VCS revision, Go toolchain, target platform). Older manifests
	// omit it.
	Build BuildInfo `json:"build,omitempty"`
	// Events is present on runs that carried an event journal: how many
	// events the run emitted and how many live-subscriber deliveries the
	// drop policy discarded (the journal itself is lossless).
	Events *EventStats `json:"events,omitempty"`
	// Histograms are the run-attributed metric distributions (registry
	// deltas with at least one observation), with derived p50/p90/p99.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// EventStats summarizes a run's event journal in the manifest.
type EventStats struct {
	Emitted int64 `json:"emitted"`
	// Dropped counts live-stream deliveries discarded by the
	// slow-subscriber policy; the archived journal is unaffected.
	Dropped int64 `json:"dropped"`
}

// Adaptive-window outcomes as recorded in AdaptiveWindow.Outcome.
const (
	// WindowRefined: the window passed its probe and was fully re-swept.
	WindowRefined = "refined"
	// WindowAbandoned: the probe score collapsed below the abandonment
	// threshold; the window cost only its probe captures.
	WindowAbandoned = "abandoned"
	// WindowPartial: the probe passed but the remaining measurements no
	// longer fit the budget; probe spectra exist but support no gated
	// detection.
	WindowPartial = "partial"
	// WindowSkipped: not even the probe fit the remaining budget.
	WindowSkipped = "skipped"
)

// AdaptiveStats is the adaptive campaign planner's decision record.
type AdaptiveStats struct {
	// Budget is the campaign's hard capture budget; CapturesUsed is what
	// the planner actually spent (recon + refinement), never above it.
	Budget       int64 `json:"budget"`
	CapturesUsed int64 `json:"captures_used"`
	// ExhaustiveCaptures prices the equivalent exhaustive campaign on the
	// same analyzer geometry, for the savings ratio.
	ExhaustiveCaptures int64 `json:"exhaustive_captures"`
	ReconCaptures      int64 `json:"recon_captures"`
	RefineCaptures     int64 `json:"refine_captures"`
	// ReconFresHz is the reconnaissance resolution bandwidth; Candidates
	// counts the recon peaks that seeded refinement windows.
	ReconFresHz float64 `json:"recon_fres_hz"`
	Candidates  int     `json:"candidates"`
	// Windows are the planner's per-window decisions in processing order
	// (priority-descending).
	Windows []AdaptiveWindow `json:"windows"`
}

// AdaptiveWindow is one refinement window's fate.
type AdaptiveWindow struct {
	F1Hz     float64 `json:"f1_hz"`
	F2Hz     float64 `json:"f2_hz"`
	Priority float64 `json:"priority"`
	Outcome  string  `json:"outcome"`
	// Captures is what the window actually cost (probe + completion).
	Captures int64 `json:"captures"`
	// ProbeScore is the two-measurement probe's peak score (0 when the
	// window was skipped before probing).
	ProbeScore float64 `json:"probe_score"`
	// Detections counts gated detections credited to this window.
	Detections int `json:"detections"`
}

// AccuracyStats is the accuracy harness's aggregate scoring as recorded
// in the run manifest.
type AccuracyStats struct {
	Scenarios int             `json:"scenarios"`
	NoFault   AccuracyCorpus  `json:"no_fault"`
	Faulted   *AccuracyCorpus `json:"faulted,omitempty"`
}

// AccuracyCorpus is one corpus pass's confusion counts and rates.
type AccuracyCorpus struct {
	TruePositives  int     `json:"true_positives"`
	FalsePositives int     `json:"false_positives"`
	FalseNegatives int     `json:"false_negatives"`
	Precision      float64 `json:"precision"`
	Recall         float64 `json:"recall"`
	F1             float64 `json:"f1"`
	// MeanAbsFreqErrHz is the mean |f_detected − f_truth| over matches.
	MeanAbsFreqErrHz float64 `json:"mean_abs_freq_err_hz"`
}

// StageTiming is one sequential pipeline stage's cost.
type StageTiming struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	CPUSeconds  float64 `json:"cpu_seconds"`
}

// SegmentPlan records one segment's render-plan decision.
type SegmentPlan struct {
	CenterHz   float64 `json:"center_hz"`
	SampleRate float64 `json:"sample_rate"`
	Samples    int     `json:"samples"`
	Active     int     `json:"active"`
	Skipped    int     `json:"skipped"`
}

// PlannerStats aggregates the render planner's work during the run.
type PlannerStats struct {
	PlansBuilt int64 `json:"plans_built"`
	// CacheHits/CacheMisses are the analyzer's plan-cache behaviour.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// ComponentsActive/Skipped count component decisions at plan time.
	ComponentsActive  int64 `json:"components_active"`
	ComponentsSkipped int64 `json:"components_skipped"`
	// RenderSkips counts components not rendered across all captures —
	// the planner's actual savings.
	RenderSkips int64 `json:"render_component_skips"`
	// StaticCacheHits/Misses are the analyzer's static-layer cache
	// behaviour (captures whose activity-independent layer was replayed
	// from cache vs built); StaticComponentsCached and StaticReplays count
	// the layer's contents and the component renders it saved.
	StaticCacheHits        int64         `json:"static_cache_hits"`
	StaticCacheMisses      int64         `json:"static_cache_misses"`
	StaticComponentsCached int64         `json:"static_components_cached"`
	StaticReplays          int64         `json:"static_component_replays"`
	Segments               []SegmentPlan `json:"segments"`
}

// ComponentRenderStats is one scene component's render attribution: how
// many times it was rendered live (and the wall time those renders cost)
// vs replayed from the static cache.
type ComponentRenderStats struct {
	Name        string  `json:"name"`
	Renders     int64   `json:"renders"`
	Replays     int64   `json:"replays"`
	WallSeconds float64 `json:"wall_seconds"`
}

// CacheStats is one cache's hit/miss record during the run.
type CacheStats struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// DetectionRecord is the provenance of one reported carrier: the
// detection itself plus every harmonic's sub-score and elevated count at
// the detection bin, so "why did this fire" needs no re-run.
type DetectionRecord struct {
	FreqHz       float64         `json:"freq_hz"`
	Score        float64         `json:"score"`
	BestHarmonic int             `json:"best_harmonic"`
	Harmonics    []int           `json:"harmonics"`
	MagnitudeDBm float64         `json:"magnitude_dbm"`
	DepthDB      float64         `json:"depth_db"`
	SubScores    []HarmonicScore `json:"sub_scores"`
}

// HarmonicScore is one harmonic's evidence at a detection.
type HarmonicScore struct {
	Harmonic int     `json:"harmonic"`
	Score    float64 `json:"score"`
	Elevated int     `json:"elevated"`
}

// WriteFile writes the manifest as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadManifest parses a manifest from JSON without validating it; use
// ValidateManifest for schema checks.
func ReadManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: parse manifest: %w", err)
	}
	return &m, nil
}

// ValidateManifest checks a serialized manifest against the schema:
// required fields present and well-typed, timings non-negative, stage
// walls summing to within 10% of the total wall time (they are
// sequential sub-intervals of it), and every detection carrying
// sub-score provenance. It returns the first violation found.
func ValidateManifest(data []byte) error {
	m, err := ReadManifest(data)
	if err != nil {
		return err
	}
	if m.Schema != ManifestSchema {
		return fmt.Errorf("obs: manifest schema %q, want %q", m.Schema, ManifestSchema)
	}
	if m.CreatedUnix <= 0 {
		return fmt.Errorf("obs: manifest missing created_unix")
	}
	if m.Config == nil {
		return fmt.Errorf("obs: manifest missing config")
	}
	if len(m.Stages) == 0 {
		return fmt.Errorf("obs: manifest has no stages")
	}
	var stageSum float64
	for _, st := range m.Stages {
		if st.Name == "" {
			return fmt.Errorf("obs: manifest stage with empty name")
		}
		if st.WallSeconds < 0 || st.CPUSeconds < 0 {
			return fmt.Errorf("obs: stage %q has negative timing", st.Name)
		}
		stageSum += st.WallSeconds
	}
	if m.TotalWallSeconds <= 0 {
		return fmt.Errorf("obs: total_wall_seconds %g must be positive", m.TotalWallSeconds)
	}
	if math.Abs(stageSum-m.TotalWallSeconds) > 0.1*m.TotalWallSeconds {
		return fmt.Errorf("obs: stage walls sum to %.4fs, more than 10%% off total %.4fs",
			stageSum, m.TotalWallSeconds)
	}
	if m.Captures <= 0 {
		return fmt.Errorf("obs: manifest records no captures")
	}
	if m.RenderSeconds < 0 || m.FFTSeconds < 0 {
		return fmt.Errorf("obs: negative render/fft seconds")
	}
	p := m.Planner
	for name, v := range map[string]int64{
		"plans_built": p.PlansBuilt, "cache_hits": p.CacheHits, "cache_misses": p.CacheMisses,
		"components_active": p.ComponentsActive, "components_skipped": p.ComponentsSkipped,
		"render_component_skips": p.RenderSkips,
	} {
		if v < 0 {
			return fmt.Errorf("obs: planner.%s is negative", name)
		}
	}
	for _, seg := range p.Segments {
		if seg.Samples <= 0 || seg.SampleRate <= 0 || seg.Active < 0 || seg.Skipped < 0 {
			return fmt.Errorf("obs: malformed planner segment %+v", seg)
		}
	}
	if m.Caches == nil {
		return fmt.Errorf("obs: manifest missing caches")
	}
	for _, name := range []string{"fft_plan", "rfft_plan", "window", "bufpool_complex", "bufpool_float", "specan_plan", "render_static"} {
		c, ok := m.Caches[name]
		if !ok {
			return fmt.Errorf("obs: manifest missing cache %q", name)
		}
		if c.Hits < 0 || c.Misses < 0 || c.HitRate < 0 || c.HitRate > 1 {
			return fmt.Errorf("obs: cache %q has malformed stats %+v", name, c)
		}
	}
	for _, c := range m.RenderComponents {
		if c.Name == "" {
			return fmt.Errorf("obs: render component with empty name")
		}
		if c.Renders < 0 || c.Replays < 0 || c.WallSeconds < 0 {
			return fmt.Errorf("obs: render component %q has negative stats %+v", c.Name, c)
		}
	}
	if a := m.Accuracy; a != nil {
		if a.Scenarios <= 0 {
			return fmt.Errorf("obs: accuracy stats with %d scenarios", a.Scenarios)
		}
		if err := validateAccuracyCorpus("no_fault", a.NoFault); err != nil {
			return err
		}
		if a.Faulted != nil {
			if err := validateAccuracyCorpus("faulted", *a.Faulted); err != nil {
				return err
			}
		}
	}
	if a := m.Adaptive; a != nil {
		if a.Budget <= 0 {
			return fmt.Errorf("obs: adaptive stats with budget %d", a.Budget)
		}
		if a.CapturesUsed < 0 || a.CapturesUsed > a.Budget {
			return fmt.Errorf("obs: adaptive captures_used %d outside budget %d", a.CapturesUsed, a.Budget)
		}
		if a.ReconCaptures < 0 || a.RefineCaptures < 0 ||
			a.ReconCaptures+a.RefineCaptures != a.CapturesUsed {
			return fmt.Errorf("obs: adaptive recon %d + refine %d captures do not sum to used %d",
				a.ReconCaptures, a.RefineCaptures, a.CapturesUsed)
		}
		if a.ExhaustiveCaptures <= 0 {
			return fmt.Errorf("obs: adaptive exhaustive_captures %d must be positive", a.ExhaustiveCaptures)
		}
		if a.ReconFresHz <= 0 || math.IsNaN(a.ReconFresHz) || math.IsInf(a.ReconFresHz, 0) {
			return fmt.Errorf("obs: adaptive recon_fres_hz %g is malformed", a.ReconFresHz)
		}
		if a.Candidates < 0 {
			return fmt.Errorf("obs: adaptive candidates %d is negative", a.Candidates)
		}
		for i, w := range a.Windows {
			if w.F2Hz <= w.F1Hz {
				return fmt.Errorf("obs: adaptive window %d has empty range [%g, %g]", i, w.F1Hz, w.F2Hz)
			}
			switch w.Outcome {
			case WindowRefined, WindowAbandoned, WindowPartial, WindowSkipped:
			default:
				return fmt.Errorf("obs: adaptive window %d has unknown outcome %q", i, w.Outcome)
			}
			if w.Captures < 0 || w.Detections < 0 {
				return fmt.Errorf("obs: adaptive window %d has negative stats %+v", i, w)
			}
			if w.Outcome == WindowSkipped && w.Captures != 0 {
				return fmt.Errorf("obs: adaptive window %d skipped but charged %d captures", i, w.Captures)
			}
		}
	}
	for _, field := range [][2]string{
		{"version", m.Build.Version}, {"go_version", m.Build.GoVersion},
		{"os", m.Build.OS}, {"arch", m.Build.Arch},
	} {
		if field[1] == "" {
			return fmt.Errorf("obs: manifest build.%s is empty", field[0])
		}
	}
	if e := m.Events; e != nil {
		if e.Emitted <= 0 {
			return fmt.Errorf("obs: events block present but emitted is %d", e.Emitted)
		}
		if e.Dropped < 0 {
			return fmt.Errorf("obs: events.dropped %d is negative", e.Dropped)
		}
	}
	for name, h := range m.Histograms {
		if len(h.Counts) != len(h.Bounds)+1 {
			return fmt.Errorf("obs: histogram %q has %d counts for %d bounds",
				name, len(h.Counts), len(h.Bounds))
		}
		var sum int64
		for _, c := range h.Counts {
			if c < 0 {
				return fmt.Errorf("obs: histogram %q has a negative bucket count", name)
			}
			sum += c
		}
		if sum != h.Count || h.Count <= 0 {
			return fmt.Errorf("obs: histogram %q count %d does not match buckets (sum %d, must be positive)",
				name, h.Count, sum)
		}
		if math.IsNaN(h.Sum) || math.IsInf(h.Sum, 0) {
			return fmt.Errorf("obs: histogram %q has non-finite sum", name)
		}
		if h.P50 < 0 || h.P90 < h.P50 || h.P99 < h.P90 {
			return fmt.Errorf("obs: histogram %q quantiles not monotone (p50=%g p90=%g p99=%g)",
				name, h.P50, h.P90, h.P99)
		}
	}
	for i, d := range m.Detections {
		if d.FreqHz < 0 {
			return fmt.Errorf("obs: detection %d has negative frequency", i)
		}
		if d.BestHarmonic == 0 {
			return fmt.Errorf("obs: detection %d missing best_harmonic", i)
		}
		if len(d.SubScores) == 0 {
			return fmt.Errorf("obs: detection %d has no sub-score provenance", i)
		}
		for _, s := range d.SubScores {
			if s.Harmonic == 0 || s.Elevated < 0 {
				return fmt.Errorf("obs: detection %d has malformed sub-score %+v", i, s)
			}
		}
	}
	return nil
}

func validateAccuracyCorpus(name string, c AccuracyCorpus) error {
	if c.TruePositives < 0 || c.FalsePositives < 0 || c.FalseNegatives < 0 {
		return fmt.Errorf("obs: accuracy.%s has negative confusion counts %+v", name, c)
	}
	for field, v := range map[string]float64{
		"precision": c.Precision, "recall": c.Recall, "f1": c.F1,
	} {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("obs: accuracy.%s.%s %g outside [0, 1]", name, field, v)
		}
	}
	if math.IsNaN(c.MeanAbsFreqErrHz) || math.IsInf(c.MeanAbsFreqErrHz, 0) || c.MeanAbsFreqErrHz < 0 {
		return fmt.Errorf("obs: accuracy.%s.mean_abs_freq_err_hz %g is malformed", name, c.MeanAbsFreqErrHz)
	}
	return nil
}

// ValidateManifestFile reads and validates a manifest file.
func ValidateManifestFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return ValidateManifest(data)
}
