package specan

import (
	"fmt"
	"sync/atomic"
)

// Meter is a hard measurement budget, accounted in captures. An adaptive
// campaign planner reserves a sweep's capture cost before asking the
// analyzer to render it (all-or-nothing, so a sweep never starts that
// cannot finish inside the budget), and every rendered capture is charged
// as it happens. The invariant — enforced by construction and checked by
// the planner fuzz tests — is
//
//	Used() ≤ Reserved() ≤ Cap()
//
// at every moment: reservations only succeed while they fit under the
// cap, and the analyzer only renders inside a successful reservation.
//
// All methods are safe for concurrent use and nil-safe: a nil meter is an
// unlimited budget (Reserve always succeeds, nothing is recorded), so the
// exhaustive sweep path threads no meter and pays only a nil check.
type Meter struct {
	cap      int64
	reserved atomic.Int64
	rendered atomic.Int64
	// OnReserve, when non-nil, observes every Reserve outcome (requested
	// captures, granted or refused). The planner's reservations are
	// sequential, so the hook sees a deterministic call sequence; it may
	// read the meter's accessors but must not call Reserve. Set it before
	// the meter is shared.
	OnReserve func(n int64, granted bool)
}

// NewMeter creates a meter with the given capture capacity. It panics on
// a non-positive capacity — a zero budget is a configuration error the
// campaign validator reports long before a meter exists.
func NewMeter(capacity int64) *Meter {
	if capacity <= 0 {
		panic(fmt.Sprintf("specan: meter capacity must be positive, got %d", capacity))
	}
	return &Meter{cap: capacity}
}

// Cap returns the meter's capacity (0 for a nil meter).
func (m *Meter) Cap() int64 {
	if m == nil {
		return 0
	}
	return m.cap
}

// Reserve claims n captures from the remaining budget. The claim is
// all-or-nothing: either the full n fits under the cap and is reserved,
// or nothing is taken and Reserve reports false. A nil meter always
// grants; n = 0 is granted without effect and negative n is refused.
func (m *Meter) Reserve(n int64) bool {
	if m == nil || n <= 0 {
		return m == nil || n == 0
	}
	granted := m.reserve(n)
	if m.OnReserve != nil {
		m.OnReserve(n, granted)
	}
	return granted
}

func (m *Meter) reserve(n int64) bool {
	for {
		cur := m.reserved.Load()
		if cur+n > m.cap {
			return false
		}
		if m.reserved.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// Reserved returns the captures claimed so far.
func (m *Meter) Reserved() int64 {
	if m == nil {
		return 0
	}
	return m.reserved.Load()
}

// Remaining returns the unclaimed budget (0 for a nil meter — callers
// that want "unlimited" should check for nil, as the planner does).
func (m *Meter) Remaining() int64 {
	if m == nil {
		return 0
	}
	return m.cap - m.reserved.Load()
}

// Used returns the captures actually rendered against the meter.
func (m *Meter) Used() int64 {
	if m == nil {
		return 0
	}
	return m.rendered.Load()
}

// record charges one rendered capture. The analyzer calls it from
// renderCapture when a meter is configured; it never blocks — admission
// control happened at Reserve time.
func (m *Meter) record() {
	if m == nil {
		return
	}
	m.rendered.Add(1)
}

// SweepCaptures returns how many captures a sweep over [f1, f2] costs on
// this analyzer: segments × averages. Planners use it to price a sweep
// before reserving the amount on a Meter.
func (a *Analyzer) SweepCaptures(f1, f2 float64) int64 {
	p := a.planSweep(f1, f2)
	return int64(p.segs * a.cfg.Averages)
}
