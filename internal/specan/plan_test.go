package specan

import (
	"math"
	"runtime"
	"testing"

	"fase/internal/activity"
	"fase/internal/dsp/spectral"
	"fase/internal/dsp/window"
	"fase/internal/emsim"
	"fase/internal/machine"
	"fase/internal/microbench"
	"fase/internal/obs"
)

// TestSweepEquivalencePlannedUnplanned is the end-to-end counterpart of
// the machine-level render equivalence test: one Request swept with and
// without render planning, serial and parallel, must produce the same
// spectrum bit for bit.
func TestSweepEquivalencePlannedUnplanned(t *testing.T) {
	sys, err := machine.Lookup("i7-desktop")
	if err != nil {
		t.Fatal(err)
	}
	req := func(scene *emsim.Scene) Request {
		return Request{
			Scene: scene, F1: 250e3, F2: 750e3, Seed: 17,
			Activity: microbench.Generate(microbench.Config{
				X: activity.LDM, Y: activity.LDL1, FAlt: 43.3e3,
				Jitter: microbench.DefaultJitter(), Seed: 17,
			}, 1.0),
		}
	}
	var ref *spectral.Spectrum
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"planned serial", Config{Fres: 100, MaxFFT: 1 << 14, Parallelism: 1}},
		{"unplanned serial", Config{Fres: 100, MaxFFT: 1 << 14, Parallelism: 1, NoPlan: true}},
		{"planned parallel", Config{Fres: 100, MaxFFT: 1 << 14, Parallelism: runtime.GOMAXPROCS(0)}},
		{"unplanned parallel", Config{Fres: 100, MaxFFT: 1 << 14, Parallelism: runtime.GOMAXPROCS(0), NoPlan: true}},
		// Observability on must not change a single bit: timings and spans
		// observe the pipeline, never steer it.
		{"instrumented serial", Config{Fres: 100, MaxFFT: 1 << 14, Parallelism: 1, Obs: tracedRun()}},
		{"instrumented parallel", Config{Fres: 100, MaxFFT: 1 << 14, Parallelism: runtime.GOMAXPROCS(0), Obs: tracedRun()}},
		{"instrumented unplanned", Config{Fres: 100, MaxFFT: 1 << 14, Parallelism: runtime.GOMAXPROCS(0), NoPlan: true, Obs: tracedRun()}},
	} {
		scene := sys.Scene(17, true)
		s := New(tc.cfg).Sweep(req(scene))
		if ref == nil {
			ref = s
			continue
		}
		if s.F0 != ref.F0 || s.Fres != ref.Fres || s.Bins() != ref.Bins() {
			t.Fatalf("%s: geometry %g/%g/%d, want %g/%g/%d",
				tc.name, s.F0, s.Fres, s.Bins(), ref.F0, ref.Fres, ref.Bins())
		}
		for i := range s.PmW {
			if math.Float64bits(s.PmW[i]) != math.Float64bits(ref.PmW[i]) {
				t.Fatalf("%s: bin %d (%.1f Hz) = %x, reference %x",
					tc.name, i, s.Freq(i), math.Float64bits(s.PmW[i]),
					math.Float64bits(ref.PmW[i]))
			}
		}
	}
}

// tracedRun builds an obs.Run with a tracer attached, the fully
// instrumented configuration the equivalence cases exercise.
func tracedRun() *obs.Run {
	run := obs.NewRun()
	run.Tracer = obs.NewTracer()
	return run
}

// TestSweepPlanCacheReuse checks the analyzer caches plans per segment:
// a second sweep of the same scene and geometry reuses the cached entries
// rather than recomputing (observable as identical plan pointers).
func TestSweepPlanCacheReuse(t *testing.T) {
	scene := &emsim.Scene{}
	scene.Add(&tone{freq: 0.5e6, dbm: -80}, &emsim.Background{FloorDBmPerHz: -172})
	an := New(Config{Fres: 200, MaxFFT: 4096, Parallelism: 1})
	an.Sweep(Request{Scene: scene, F1: 0.2e6, F2: 0.8e6, Seed: 1})
	var first []*emsim.RenderPlan
	an.plans.Range(func(_, v any) bool {
		first = append(first, v.(*emsim.RenderPlan))
		return true
	})
	if len(first) == 0 {
		t.Fatal("sweep left no cached plans")
	}
	an.Sweep(Request{Scene: scene, F1: 0.2e6, F2: 0.8e6, Seed: 2})
	count := 0
	an.plans.Range(func(_, v any) bool {
		count++
		return true
	})
	if count != len(first) {
		t.Errorf("second sweep grew the plan cache to %d entries (was %d)", count, len(first))
	}
}

// TestConfigWindowDefault pins the Window zero-value semantics: the zero
// value means "analyzer default" (Blackman-Harris), while every concrete
// window — including Rectangular — is honored as-is.
func TestConfigWindowDefault(t *testing.T) {
	if got := (Config{Fres: 100}).withDefaults().Window; got != window.BlackmanHarris {
		t.Errorf("zero-value Window resolves to %v, want BlackmanHarris", got)
	}
	for _, w := range []window.Type{window.Rectangular, window.Hann, window.BlackmanHarris} {
		if got := (Config{Fres: 100, Window: w}).withDefaults().Window; got != w {
			t.Errorf("Window %v not preserved: got %v", w, got)
		}
	}
}

// TestSweepRectangularWindowSelectable is the regression test for the
// zero-value trap this sentinel fixes: asking for a rectangular window
// must actually change the spectrum (before window.Default existed,
// Rectangular WAS the zero value and silently became Blackman-Harris).
func TestSweepRectangularWindowSelectable(t *testing.T) {
	scene := &emsim.Scene{}
	// A tone off the bin grid: leakage differs sharply between windows.
	scene.Add(&tone{freq: 0.51237e6, dbm: -70})
	run := func(w window.Type) *spectral.Spectrum {
		an := New(Config{Fres: 100, MaxFFT: 4096, Parallelism: 1, Window: w})
		return an.Sweep(Request{Scene: scene, F1: 0.45e6, F2: 0.6e6, Seed: 5})
	}
	def := run(window.Default)
	rect := run(window.Rectangular)
	same := true
	for i := range def.PmW {
		if math.Float64bits(def.PmW[i]) != math.Float64bits(rect.PmW[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("rectangular window produced the default window's spectrum")
	}
}
