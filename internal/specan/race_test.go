//go:build race

package specan

// raceEnabled lets tests whose assertions are meaningless under the race
// detector (allocation pins: race instrumentation allocates) skip
// themselves.
const raceEnabled = true
