//go:build !race

package specan

// See race_test.go.
const raceEnabled = false
