package specan

import (
	"sync"
	"testing"

	"fase/internal/emsim"
)

func TestMeterNilIsUnlimited(t *testing.T) {
	var m *Meter
	if !m.Reserve(1 << 40) {
		t.Error("nil meter refused a reservation")
	}
	if !m.Reserve(-5) {
		t.Error("nil meter refused a negative reservation")
	}
	m.record() // must not panic
	if m.Cap() != 0 || m.Reserved() != 0 || m.Remaining() != 0 || m.Used() != 0 {
		t.Error("nil meter accounting must read zero")
	}
}

func TestMeterReserveAllOrNothing(t *testing.T) {
	m := NewMeter(10)
	if !m.Reserve(0) {
		t.Error("zero reservation refused")
	}
	if m.Reserve(-1) {
		t.Error("negative reservation granted")
	}
	if !m.Reserve(7) {
		t.Error("7 of 10 refused")
	}
	if m.Reserve(4) {
		t.Error("4 more granted with only 3 remaining")
	}
	if m.Reserved() != 7 || m.Remaining() != 3 {
		t.Errorf("failed reservation changed accounting: reserved %d remaining %d", m.Reserved(), m.Remaining())
	}
	if !m.Reserve(3) {
		t.Error("exact remaining refused")
	}
	if m.Reserve(1) {
		t.Error("reservation granted over cap")
	}
}

func TestMeterUsedWithinReserved(t *testing.T) {
	m := NewMeter(5)
	m.Reserve(4)
	for i := 0; i < 4; i++ {
		m.record()
	}
	if m.Used() != 4 || m.Reserved() != 4 || m.Cap() != 5 {
		t.Errorf("accounting: used %d reserved %d cap %d", m.Used(), m.Reserved(), m.Cap())
	}
	if !(m.Used() <= m.Reserved() && m.Reserved() <= m.Cap()) {
		t.Error("meter invariant Used ≤ Reserved ≤ Cap violated")
	}
}

func TestMeterConcurrentReserveNeverOvercommits(t *testing.T) {
	const cap, workers, per = 1000, 16, 250
	m := NewMeter(cap)
	var wg sync.WaitGroup
	var granted int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < per; i++ {
				if m.Reserve(1) {
					local++
				}
			}
			mu.Lock()
			granted += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if granted != cap {
		t.Errorf("granted %d of %d one-capture reservations under contention", granted, cap)
	}
	if m.Reserved() != cap || m.Remaining() != 0 {
		t.Errorf("final accounting: reserved %d remaining %d", m.Reserved(), m.Remaining())
	}
}

func TestNewMeterPanicsOnNonPositiveCapacity(t *testing.T) {
	for _, capacity := range []int64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMeter(%d) did not panic", capacity)
				}
			}()
			NewMeter(capacity)
		}()
	}
}

// TestSweepMeterCharges runs a real sweep against a meter and checks the
// analyzer charges exactly the priced capture count.
func TestSweepMeterCharges(t *testing.T) {
	scene := &emsim.Scene{}
	scene.Add(&tone{freq: 400e3, dbm: -80})
	m := NewMeter(1 << 20)
	an := New(Config{Fres: 400, Averages: 2, MaxFFT: 2048, Meter: m})
	cost := an.SweepCaptures(250e3, 550e3)
	if cost < 2 {
		t.Fatalf("expected a multi-capture sweep, priced %d", cost)
	}
	if !m.Reserve(cost) {
		t.Fatal("reservation refused")
	}
	sp := an.Sweep(Request{Scene: scene, F1: 250e3, F2: 550e3, Seed: 3})
	if sp.Bins() == 0 {
		t.Fatal("empty sweep")
	}
	if m.Used() != cost {
		t.Errorf("sweep rendered %d captures, priced %d", m.Used(), cost)
	}
}
