package specan

import (
	"math"
	"math/cmplx"
	"sync"
	"testing"

	"fase/internal/dsp/spectral"
	"fase/internal/emsim"
)

// tone is a fixed test emitter.
type tone struct {
	freq float64
	dbm  float64
}

func (c *tone) Name() string { return "tone" }
func (c *tone) Render(dst []complex128, ctx *emsim.Context) {
	if !ctx.Band.Contains(c.freq) {
		return
	}
	a := math.Sqrt(spectral.MwFromDBm(c.dbm))
	dt := ctx.Dt()
	for i := range dst {
		t := ctx.Start + float64(i)*dt
		dst[i] += complex(a, 0) * cmplx.Exp(complex(0, 2*math.Pi*(c.freq-ctx.Band.Center)*t))
	}
}

func TestSweepFindsToneAtCalibratedPower(t *testing.T) {
	scene := &emsim.Scene{}
	scene.Add(&tone{freq: 1.2345e6, dbm: -70})
	an := New(Config{Fres: 100})
	s := an.Sweep(Request{Scene: scene, F1: 1e6, F2: 1.5e6, Seed: 1})
	if s.F0 != 1e6 || math.Abs(s.FEnd()-1.5e6) > 1 {
		t.Fatalf("sweep range [%g, %g]", s.F0, s.FEnd())
	}
	if s.Fres != 100 {
		t.Fatalf("fres %g", s.Fres)
	}
	i, p := s.MaxBin()
	if math.Abs(s.Freq(i)-1.2345e6) > 100 {
		t.Errorf("peak at %g, want 1.2345 MHz", s.Freq(i))
	}
	if math.Abs(spectral.DBmFromMw(p)-(-70)) > 0.5 {
		t.Errorf("peak power %.2f dBm, want -70", spectral.DBmFromMw(p))
	}
}

func TestSweepMultiSegmentStitching(t *testing.T) {
	// A sweep wide enough to need several segments must still find tones
	// in each segment at calibrated power, with no seams.
	scene := &emsim.Scene{}
	freqs := []float64{0.3e6, 1.1e6, 2.7e6, 3.9e6}
	for _, f := range freqs {
		scene.Add(&tone{freq: f, dbm: -75})
	}
	an := New(Config{Fres: 200, MaxFFT: 4096})
	s := an.Sweep(Request{Scene: scene, F1: 0.1e6, F2: 4e6, Seed: 2})
	wantBins := int(math.Round((4e6 - 0.1e6) / 200))
	if s.Bins() != wantBins {
		t.Fatalf("bins = %d, want %d", s.Bins(), wantBins)
	}
	for _, f := range freqs {
		i := s.MaxIn(f-500, f+500)
		got := spectral.DBmFromMw(s.PmW[i])
		if math.Abs(got-(-75)) > 0.7 {
			t.Errorf("tone at %.2g MHz reads %.2f dBm, want -75", f/1e6, got)
		}
	}
}

func TestSweepGridAlignment(t *testing.T) {
	scene := &emsim.Scene{}
	scene.Add(&tone{freq: 1e6, dbm: -80})
	an := New(Config{Fres: 50, MaxFFT: 1 << 14})
	s := an.Sweep(Request{Scene: scene, F1: 0.9e6, F2: 1.2e6, Seed: 3})
	// Every bin must land on the f1 + k·fres grid.
	if r := math.Mod(s.F0-0.9e6, 50); math.Abs(r) > 1e-6 && math.Abs(r-50) > 1e-6 {
		t.Errorf("grid misaligned: F0 = %v", s.F0)
	}
}

func TestTotalDuration(t *testing.T) {
	an := New(Config{Fres: 100, MaxFFT: 4096, Averages: 4})
	// One trace takes 1/fres = 10 ms.
	if d := an.CaptureDuration(); d != 0.01 {
		t.Errorf("capture duration %g", d)
	}
	tot := an.TotalDuration(0, 1e6)
	// 10000 bins, 3072 usable per segment -> 4 segments × 4 avgs × 10 ms.
	if math.Abs(tot-0.16) > 1e-9 {
		t.Errorf("total duration %g, want 0.16", tot)
	}
}

func TestNearFieldPassesThrough(t *testing.T) {
	// Near-field flag must reach the components (verified via a probe
	// component that records it).
	probe := &recorder{}
	scene := &emsim.Scene{}
	scene.Add(probe)
	// Parallelism 1: the probe component records unsynchronized.
	an := New(Config{Fres: 1000, MaxFFT: 1024, Parallelism: 1})
	an.Sweep(Request{Scene: scene, F1: 0, F2: 100e3, NearField: true, NearFieldGainDB: 25})
	if !probe.sawNearField || probe.gain != 25 {
		t.Errorf("near-field context not propagated: %+v", probe)
	}
}

type recorder struct {
	sawNearField bool
	gain         float64
}

func (r *recorder) Name() string { return "recorder" }
func (r *recorder) Render(dst []complex128, ctx *emsim.Context) {
	r.sawNearField = ctx.NearField
	r.gain = ctx.NearFieldGainDB
}

func TestSweepParallelBitIdentical(t *testing.T) {
	// The worker pool must not change the output at all: a parallel sweep
	// and a Parallelism-1 sweep of the same request are compared bit for
	// bit. The scene includes noise so per-capture seeding is exercised.
	scene := &emsim.Scene{}
	scene.Add(&tone{freq: 0.7e6, dbm: -75})
	scene.Add(&emsim.Background{FloorDBmPerHz: -172})
	sweep := func(par int) *spectral.Spectrum {
		an := New(Config{Fres: 200, MaxFFT: 4096, Parallelism: par})
		return an.Sweep(Request{Scene: scene, F1: 0.1e6, F2: 2e6, Seed: 77})
	}
	seq := sweep(1)
	for _, par := range []int{2, 4, 8} {
		got := sweep(par)
		if got.F0 != seq.F0 || got.Fres != seq.Fres || got.Bins() != seq.Bins() {
			t.Fatalf("parallelism %d: geometry %g/%g/%d, want %g/%g/%d",
				par, got.F0, got.Fres, got.Bins(), seq.F0, seq.Fres, seq.Bins())
		}
		for i := range got.PmW {
			if math.Float64bits(got.PmW[i]) != math.Float64bits(seq.PmW[i]) {
				t.Fatalf("parallelism %d: bin %d = %x, want %x",
					par, i, math.Float64bits(got.PmW[i]), math.Float64bits(seq.PmW[i]))
			}
		}
	}
}

func TestSweepConcurrentOnSharedAnalyzer(t *testing.T) {
	// Several goroutines sweeping through ONE analyzer (the campaign
	// runner's shape) must each get the same spectrum a lone sweep gets.
	scene := &emsim.Scene{}
	scene.Add(&tone{freq: 0.4e6, dbm: -70})
	scene.Add(&emsim.Background{FloorDBmPerHz: -172})
	req := func(seed int64) Request {
		return Request{Scene: scene, F1: 0.2e6, F2: 0.8e6, Seed: seed}
	}
	ref := New(Config{Fres: 500, MaxFFT: 2048, Parallelism: 1})
	want := make([]*spectral.Spectrum, 4)
	for i := range want {
		want[i] = ref.Sweep(req(int64(100 + i)))
	}
	an := New(Config{Fres: 500, MaxFFT: 2048, Parallelism: 3})
	got := make([]*spectral.Spectrum, len(want))
	var wg sync.WaitGroup
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = an.Sweep(req(int64(100 + i)))
		}(i)
	}
	wg.Wait()
	for i := range got {
		for k := range got[i].PmW {
			if math.Float64bits(got[i].PmW[k]) != math.Float64bits(want[i].PmW[k]) {
				t.Fatalf("sweep %d bin %d differs from sequential reference", i, k)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	mustPanic(t, func() { New(Config{Fres: 0}) })
	mustPanic(t, func() { New(Config{Fres: -5}) })
	an := New(Config{Fres: 100})
	mustPanic(t, func() { an.Sweep(Request{Scene: nil, F1: 0, F2: 1e6}) })
	mustPanic(t, func() { an.Sweep(Request{Scene: &emsim.Scene{}, F1: 1e6, F2: 1e6}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
