package specan

import (
	"math"
	"testing"

	"fase/internal/activity"
	"fase/internal/dsp/spectral"
	"fase/internal/emsim"
	"fase/internal/machine"
	"fase/internal/microbench"
)

// TestSweepEquivalenceCachedStatic extends the equivalence suite to the
// static render cache: a sweep that replays cached activity-independent
// layers must match the uncached, unplanned sweep bit for bit — with a
// cold cache (build + replay in one sweep), a warm cache (second sweep of
// the same request on the same analyzer), serial and parallel, and with a
// fault plan mangling the capture chain after the render. The counter
// checks keep the test honest: the cold sweep must actually build cache
// entries and the warm sweep must serve every capture from them, so a
// regression that quietly disables caching fails here instead of becoming
// a silent perf loss.
func TestSweepEquivalenceCachedStatic(t *testing.T) {
	sys, err := machine.Lookup("i7-desktop")
	if err != nil {
		t.Fatal(err)
	}
	req := func(scene *emsim.Scene) Request {
		return Request{
			Scene: scene, F1: 250e3, F2: 750e3, Seed: 17,
			Activity: microbench.Generate(microbench.Config{
				X: activity.LDM, Y: activity.LDL1, FAlt: 43.3e3,
				Jitter: microbench.DefaultJitter(), Seed: 17,
			}, 1.0),
		}
	}
	faults := &emsim.FaultPlan{
		Seed: 99, DropProb: 0.2, TruncProb: 0.2,
		ExtraNoiseDBmPerHz: -165, BurstProb: 0.3,
	}
	// One reference per fault setting, rendered the dumbest way available:
	// no plan, no cache, serial.
	refFor := func(fp *emsim.FaultPlan) *spectral.Spectrum {
		cfg := Config{Fres: 100, MaxFFT: 1 << 14, Parallelism: 1, NoPlan: true, Faults: fp}
		return New(cfg).Sweep(req(sys.Scene(17, true)))
	}
	refs := map[bool]*spectral.Spectrum{false: refFor(nil), true: refFor(faults)}

	for _, tc := range []struct {
		name    string
		par     int
		noPlan  bool
		faulted bool
	}{
		{"planned serial", 1, false, false},
		{"planned parallel", 4, false, false},
		{"unplanned serial", 1, true, false},
		{"faulted serial", 1, false, true},
		{"faulted parallel", 4, false, true},
	} {
		var fp *emsim.FaultPlan
		if tc.faulted {
			fp = faults
		}
		an := New(Config{
			Fres: 100, MaxFFT: 1 << 14, Parallelism: tc.par,
			NoPlan: tc.noPlan, ReuseStatic: true, Faults: fp,
		})
		r := req(sys.Scene(17, true))
		ref := refs[tc.faulted]

		h0, m0 := staticHitsTotal.Value(), staticMissesTotal.Value()
		cold := an.Sweep(r)
		h1, m1 := staticHitsTotal.Value(), staticMissesTotal.Value()
		warm := an.Sweep(r)
		h2, m2 := staticHitsTotal.Value(), staticMissesTotal.Value()

		// Every capture keys its own entry (distinct seed/start), so the
		// cold sweep is all misses and the warm repeat all hits.
		if m1 == m0 {
			t.Fatalf("%s: cold sweep built no static cache entries — test is vacuous", tc.name)
		}
		if h2 == h1 {
			t.Fatalf("%s: warm sweep hit no static cache entries", tc.name)
		}
		if m2 != m1 {
			t.Errorf("%s: warm sweep rebuilt %d static entries, want 0", tc.name, m2-m1)
		}
		_ = h0

		compareSpectraBits(t, tc.name+" cold", cold, ref)
		compareSpectraBits(t, tc.name+" warm", warm, ref)
	}
}

func compareSpectraBits(t *testing.T, name string, s, ref *spectral.Spectrum) {
	t.Helper()
	if s.F0 != ref.F0 || s.Fres != ref.Fres || s.Bins() != ref.Bins() {
		t.Fatalf("%s: geometry %g/%g/%d, want %g/%g/%d",
			name, s.F0, s.Fres, s.Bins(), ref.F0, ref.Fres, ref.Bins())
	}
	for i := range s.PmW {
		if math.Float64bits(s.PmW[i]) != math.Float64bits(ref.PmW[i]) {
			t.Fatalf("%s: bin %d (%.1f Hz) = %x, reference %x",
				name, i, s.Freq(i), math.Float64bits(s.PmW[i]),
				math.Float64bits(ref.PmW[i]))
		}
	}
}
