package specan

import (
	"testing"

	"fase/internal/machine"
)

// TestSweepSteadyStateAllocs pins the per-sweep allocation count of the
// serial capture path. After warm-up the big scratch (FFT buffers, bin
// arrays) comes from pools and the plan cache is hot; what remains is the
// result assembly (specs/parts slices, trace averager, stitched spectrum,
// ~30 allocations) plus a handful of small per-render objects some
// emitters still rebuild per capture. The refresh renderer's per-rank
// weights and per-pulse position/area arrays come from a pool, so a
// refresh-bearing scene (asserted below) adds nothing per capture.
// Pinning the total turns "the sweep got chattier with the allocator" —
// e.g. a pooled buffer quietly replaced by make, one extra object per
// capture — into a test failure instead of a silent perf regression.
func TestSweepSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the pin only holds on plain builds")
	}
	sys, err := machine.Lookup("i7-desktop")
	if err != nil {
		t.Fatal(err)
	}
	// The pin must cover the pooled refresh scratch: if the scene model
	// ever drops its refresh emitter the measurement silently stops
	// exercising that path, so assert it is present.
	if sys.Refresh == nil {
		t.Fatal("i7-desktop scene no longer bears a refresh emitter; pick a refresh-bearing scene for the alloc pin")
	}
	// MaxFFT 4096 forces 4 segments over the 1.2 MHz span (12000 bins at
	// 3072 usable per segment), i.e. 16 captures per sweep; Parallelism 1
	// keeps the measurement on the serial path AllocsPerRun can count
	// deterministically (goroutine stacks are not allocation-stable).
	an := New(Config{Fres: 100, MaxFFT: 4096, Parallelism: 1})
	req := Request{Scene: sys.Scene(1, true), F1: 100e3, F2: 1.3e6, Seed: 1}
	for i := 0; i < 2; i++ { // warm pools and plan cache
		req.Seed++
		an.Sweep(req)
	}
	allocs := testing.AllocsPerRun(5, func() {
		req.Seed++
		if sp := an.Sweep(req); sp.Bins() == 0 {
			t.Fatal("empty sweep")
		}
	})
	// Measured 2026-08: 83 allocs/sweep (down from 148 before the refresh
	// renderer's weights/pulse arrays were pooled). The bound leaves ~10%
	// headroom for toolchain drift — less than the +16 a single extra
	// allocation per capture would add.
	t.Logf("measured %.0f allocs/sweep", allocs)
	const maxAllocs = 92
	if allocs > maxAllocs {
		t.Errorf("steady-state sweep made %.0f allocations, want <= %d", allocs, maxAllocs)
	}
}

// TestSweepReuseStaticSteadyStateAllocs pins the same bound with the
// static render cache enabled and warm: serving a capture's static layer
// from the cache must add zero per-sweep allocations. The lookup path is
// a struct-keyed map read under an RWMutex (no boxing, no insertion) and
// replay writes into the already-pooled capture buffer, so a warm sweep
// stays within the base pin — if caching starts allocating (say the key
// gains a pointer that escapes, or replay grows a scratch slice), this
// fails alongside the perf regression it would cause.
func TestSweepReuseStaticSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the pin only holds on plain builds")
	}
	sys, err := machine.Lookup("i7-desktop")
	if err != nil {
		t.Fatal(err)
	}
	an := New(Config{Fres: 100, MaxFFT: 4096, Parallelism: 1, ReuseStatic: true})
	// Unlike the base test the seed is fixed: the cache keys on capture
	// identity, and the steady state being pinned is "every capture
	// replayed from a warm entry".
	req := Request{Scene: sys.Scene(1, true), F1: 100e3, F2: 1.3e6, Seed: 1}
	for i := 0; i < 2; i++ { // warm pools, plan cache, and static cache
		an.Sweep(req)
	}
	misses := staticMissesTotal.Value()
	allocs := testing.AllocsPerRun(5, func() {
		if sp := an.Sweep(req); sp.Bins() == 0 {
			t.Fatal("empty sweep")
		}
	})
	if staticMissesTotal.Value() != misses {
		t.Fatal("steady-state sweeps rebuilt static entries; the measurement is not warm")
	}
	// Measured 2026-08: 25 allocs/sweep — conditionally static layers
	// replay from the warm cache, so most per-render scratch never runs.
	t.Logf("measured %.0f allocs/sweep", allocs)
	const maxAllocs = 32
	if allocs > maxAllocs {
		t.Errorf("warm cached sweep made %.0f allocations, want <= %d", allocs, maxAllocs)
	}
}
