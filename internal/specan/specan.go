// Package specan models the measurement instrument of the paper's setup —
// the Agilent MXA spectrum analyzer behind the loop antenna.
//
// A sweep over [f1, f2] is performed in band segments: each segment is a
// complex-baseband capture rendered by the scene, windowed, transformed,
// amplitude-calibrated (see package spectral) and trace-averaged; segments
// are stitched into one spectrum whose bins land exactly on the global
// f1 + k·fres grid.
package specan

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"fase/internal/activity"
	"fase/internal/dsp/bufpool"
	"fase/internal/dsp/fft"
	"fase/internal/dsp/spectral"
	"fase/internal/dsp/window"
	"fase/internal/emsim"
	"fase/internal/obs"
)

// Process-wide analyzer counters; per-run attribution goes through
// Config.Obs. The two histograms receive samples only while a run is
// attached, so the uninstrumented hot path never reads the clock.
var (
	sweepsTotal       = obs.Default.Counter(obs.MetricSweeps)
	capturesTotal     = obs.Default.Counter(obs.MetricSpecanCaptures)
	planHitsTotal     = obs.Default.Counter(obs.MetricSpecanPlanHits)
	planMissesTotal   = obs.Default.Counter(obs.MetricSpecanPlanMisses)
	staticHitsTotal   = obs.Default.Counter(obs.MetricStaticCacheHits)
	staticMissesTotal = obs.Default.Counter(obs.MetricStaticCacheMisses)
	renderSeconds     = obs.Default.Histogram(obs.MetricRenderSeconds, obs.ExpBuckets(1e-5, 4, 12))
	fftSeconds        = obs.Default.Histogram(obs.MetricFFTSeconds, obs.ExpBuckets(1e-5, 4, 12))
)

// Config tunes the analyzer.
type Config struct {
	// Fres is the resolution bandwidth (bin spacing), Hz.
	Fres float64
	// Averages is the number of traces averaged per segment (the paper
	// averages 4 captures, §3). Zero means 4.
	Averages int
	// Window selects the FFT window. The zero value (window.Default)
	// selects Blackman-Harris, whose -92 dB side lobes keep strong AM
	// stations from burying the µW-level system signals; every concrete
	// window — including window.Rectangular — is honored as given.
	Window window.Type
	// MaxFFT caps the per-segment transform size (power of two). Zero
	// means 1<<17.
	MaxFFT int
	// UsableFrac is the fraction of each segment's bandwidth kept after
	// discarding band edges. Zero means 0.75.
	UsableFrac float64
	// Parallelism bounds how many captures the analyzer renders and
	// transforms concurrently, across all Sweep calls sharing this
	// analyzer. Zero (or negative) means runtime.GOMAXPROCS(0). The
	// result is bit-identical for every setting: captures are seeded by
	// their sweep position and reduced in a fixed order, so parallelism
	// changes only wall-clock time, never output.
	Parallelism int
	// NoPlan disables per-segment render planning (see emsim.RenderPlan):
	// every capture then walks every scene component with no precomputed
	// state. Planned and unplanned rendering are bit-identical by design —
	// this is a debugging escape hatch for isolating the planner, not a
	// result-changing switch.
	NoPlan bool
	// ReuseStatic enables the campaign-scoped static render cache: the
	// activity-independent layer of each capture identity (segment band,
	// length, seed, start time, probe placement — see emsim.StaticSet) is
	// built once and replayed by every sweep on this analyzer that renders
	// the same identity. Profitable exactly when sweeps share Seed and
	// differ only in activity, as a campaign's alternation sweeps do.
	// Replay is bit-identical to live rendering at any Parallelism; the
	// default (off) is the escape hatch, mirrored by core.Campaign.NoReuse.
	ReuseStatic bool
	// NoSegment disables run-length segmentation in load-following
	// renderers: captures then walk the activity trace sample by sample
	// (see emsim.Context.NoSegment). Segmented and per-sample rendering
	// are bit-identical by contract — this is a debugging escape hatch,
	// mirrored by core.Campaign.NoSegment.
	NoSegment bool
	// Faults, when non-nil, deterministically degrades every rendered
	// capture before its FFT (see emsim.FaultPlan): dropped/truncated
	// traces, ADC clipping, burst interferers, added noise. Nil — the
	// default — leaves the capture path untouched and allocation-free; the
	// accuracy harness (internal/verify) uses this to stress the unchanged
	// FASE algorithm.
	Faults *emsim.FaultPlan
	// Meter, when non-nil, charges every rendered capture against a hard
	// measurement budget (see Meter). The analyzer only accounts — it
	// never refuses a sweep; admission control is the planner's job via
	// Meter.Reserve before each Sweep call. Nil (the default) keeps the
	// capture path meter-free.
	Meter *Meter
	// Statics, when non-nil (and ReuseStatic is set), is the static-layer
	// cache this analyzer shares with others. A campaign service that
	// renders a campaign's ladder sweeps on separate single-threaded
	// analyzers — one per shard worker — hands all of them one cache, so
	// cross-sweep static reuse works exactly as it does on a single shared
	// analyzer. Nil gives the analyzer a private cache. Sharing is only
	// meaningful between analyzers with identical geometry configuration
	// (Fres, Averages, MaxFFT, UsableFrac, Window); cache keys carry the
	// full capture identity, so mismatched sharing is wasteful, never
	// incorrect.
	Statics *StaticCache
	// Obs, when non-nil, attaches run-level observability: per-capture
	// render/FFT timing, plan-cache statistics, and — when Obs.Tracer is
	// set — sweep/capture spans. A nil Obs (the default) keeps the hot
	// path allocation-free, and instrumentation never changes rendered
	// output (enforced by the equivalence tests).
	Obs *obs.Run
}

func (c Config) withDefaults() Config {
	if c.Averages == 0 {
		c.Averages = 4
	}
	if c.Window == window.Default {
		c.Window = window.BlackmanHarris
	}
	if c.MaxFFT == 0 {
		c.MaxFFT = 1 << 17
	}
	if c.UsableFrac == 0 {
		c.UsableFrac = 0.75
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Fres <= 0 {
		panic(fmt.Sprintf("specan: resolution bandwidth must be positive, got %g", c.Fres))
	}
	return c
}

// Analyzer performs swept spectrum measurements of a scene. One analyzer
// may serve concurrent Sweep calls; its Parallelism budget is shared
// between them, so e.g. the five f_alt sweeps of a FASE measurement never
// oversubscribe the machine.
type Analyzer struct {
	cfg Config
	// sem is the capture-level concurrency budget shared by all sweeps on
	// this analyzer.
	sem chan struct{}
	// plans caches render plans per segment geometry (planKey). Segment
	// geometry is identical across a sweep's averages and across the
	// NumAlts sweeps of a campaign sharing this analyzer, so each segment's
	// component culling and per-component preparation happens once, not
	// once per capture.
	plans sync.Map
	// statics caches built static layers per capture identity (staticKey)
	// when Config.ReuseStatic is set — either this analyzer's private
	// cache or one shared through Config.Statics.
	statics *StaticCache
	// arena retains capture and bin buffers for the analyzer's lifetime:
	// the process-wide bufpool can lose its contents to a garbage
	// collection between sweeps, but a campaign's analyzer re-renders the
	// same geometry for every alternation sweep, so pinning the buffers
	// here keeps repeated sweeps allocation-free end to end.
	arena bufpool.Arena
}

// staticKey is the full capture identity a cached static layer is valid
// for — unlike planKey it includes seed, start time, and probe placement,
// because the static layer bakes in the components' PRNG streams.
type staticKey struct {
	scene      *emsim.Scene
	center, fs float64
	n          int
	seed       int64
	start      float64
	nearField  bool
	nearGainDB float64
}

// StaticCache is a static-layer render cache, normally private to one
// analyzer (see Config.ReuseStatic) but shareable between several via
// Config.Statics. A plain struct-keyed map behind an RWMutex rather than
// a sync.Map: warm lookups then neither box the key nor allocate, keeping
// the steady-state sweep allocation-free. Each identity holds a bucket
// keyed by the capture's conditional-static key (empty for sets with no
// conditional layer), so sweeps under different window-constant loads
// cache distinct sets side by side.
type StaticCache struct {
	mu sync.RWMutex
	m  map[staticKey]*staticBucket
}

// NewStaticCache returns an empty cache for Config.Statics.
func NewStaticCache() *StaticCache {
	return &StaticCache{m: make(map[staticKey]*staticBucket)}
}

// staticEntry is one cache slot. The sync.Once serializes the build so
// concurrent first renders of an identity (Parallelism > 1, or sibling
// shard analyzers sharing the cache) share one BuildStaticSet instead of
// racing duplicate work.
type staticEntry struct {
	once sync.Once
	set  *emsim.StaticSet
}

// staticBucket holds one capture identity's cached sets, keyed by
// conditional-static key. Lookups index the map with string(b) on a
// pooled byte slice, which Go compiles without materializing a string, so
// warm hits stay allocation-free.
type staticBucket struct {
	mu     sync.RWMutex
	byCond map[string]*staticEntry
}

// condKeyBuf is the pooled scratch for computing a capture's
// conditional-static key (see emsim.Scene.AppendCondStaticKey).
type condKeyBuf struct{ b []byte }

var condKeyPool = sync.Pool{New: func() any { return &condKeyBuf{b: make([]byte, 0, 64)} }}

// planKey identifies a segment's render geometry. Near-field settings are
// deliberately absent: plans hold only geometry (active subsets, harmonic
// lists, rotation phasors, noise densities), none of which depends on the
// probe model.
type planKey struct {
	scene      *emsim.Scene
	center, fs float64
	n          int
}

// planFor returns the cached render plan for a segment, computing it on
// first use. Concurrent first uses may both compute the plan; plans are
// deterministic, so either result is valid and LoadOrStore keeps one.
func (a *Analyzer) planFor(scene *emsim.Scene, band emsim.Band, n int) *emsim.RenderPlan {
	if a.cfg.NoPlan {
		return nil
	}
	key := planKey{scene: scene, center: band.Center, fs: band.SampleRate, n: n}
	if v, ok := a.plans.Load(key); ok {
		planHitsTotal.Inc()
		if run := a.cfg.Obs; run != nil {
			run.PlanCacheHits.Inc()
		}
		return v.(*emsim.RenderPlan)
	}
	planMissesTotal.Inc()
	p := scene.Plan(band, n)
	if run := a.cfg.Obs; run != nil {
		run.PlanCacheMisses.Inc()
		run.RecordPlan(band.Center, band.SampleRate, n,
			p.ActiveCount(), len(scene.Components)-p.ActiveCount())
	}
	v, _ := a.plans.LoadOrStore(key, p)
	return v.(*emsim.RenderPlan)
}

// staticFor returns the cached static layer for a capture identity,
// building it on first use (nil when the scene has nothing cacheable for
// the geometry — the entry still caches that answer).
func (a *Analyzer) staticFor(req Request, band emsim.Band, n int, seed int64, start float64, plan *emsim.RenderPlan) *emsim.StaticSet {
	if plan != nil && plan.StaticCount() == 0 && plan.CondStaticCount() == 0 {
		return nil
	}
	key := staticKey{
		scene: req.Scene, center: band.Center, fs: band.SampleRate, n: n,
		seed: seed, start: start,
		nearField: req.NearField, nearGainDB: req.NearFieldGainDB,
	}
	// The conditional-static key distinguishes sets within one identity:
	// the same (band, seed, start) capture under different window-constant
	// loads caches different regulator layers. Skipped when the plan rules
	// out conditional components for this geometry.
	var kb *condKeyBuf
	cond := []byte(nil)
	if plan == nil || plan.CondStaticCount() > 0 {
		kb = condKeyPool.Get().(*condKeyBuf)
		kb.b = req.Scene.AppendCondStaticKey(kb.b[:0], emsim.Capture{
			Band: band, Start: start, N: n, Activity: req.Activity, Plan: plan,
		})
		cond = kb.b
	}
	sc := a.statics
	sc.mu.RLock()
	bk := sc.m[key]
	sc.mu.RUnlock()
	if bk == nil {
		sc.mu.Lock()
		if bk = sc.m[key]; bk == nil {
			bk = &staticBucket{byCond: make(map[string]*staticEntry)}
			sc.m[key] = bk
		}
		sc.mu.Unlock()
	}
	bk.mu.RLock()
	e := bk.byCond[string(cond)]
	bk.mu.RUnlock()
	if e == nil {
		bk.mu.Lock()
		if e = bk.byCond[string(cond)]; e == nil {
			e = &staticEntry{}
			bk.byCond[string(cond)] = e
		}
		bk.mu.Unlock()
	}
	hit := true
	e.once.Do(func() {
		hit = false
		staticMissesTotal.Inc()
		if run := a.cfg.Obs; run != nil {
			run.StaticCacheMisses.Inc()
		}
		e.set = req.Scene.BuildStaticSet(emsim.Capture{
			Band: band, Start: start, N: n, Seed: seed,
			Activity:  req.Activity,
			NearField: req.NearField, NearFieldGainDB: req.NearFieldGainDB,
			Plan: plan,
		})
	})
	if kb != nil {
		condKeyPool.Put(kb)
	}
	if hit {
		staticHitsTotal.Inc()
		if run := a.cfg.Obs; run != nil {
			run.StaticCacheHits.Inc()
		}
	}
	return e.set
}

// New creates an analyzer. See Config for defaults.
func New(cfg Config) *Analyzer {
	cfg = cfg.withDefaults()
	a := &Analyzer{cfg: cfg, sem: make(chan struct{}, cfg.Parallelism)}
	if cfg.ReuseStatic {
		if cfg.Statics != nil {
			a.statics = cfg.Statics
		} else {
			a.statics = NewStaticCache()
		}
	}
	return a
}

// Fres returns the configured resolution bandwidth.
func (a *Analyzer) Fres() float64 { return a.cfg.Fres }

// plan describes the segmentation of a sweep.
type plan struct {
	nfft     int
	fs       float64
	needBins int
	perSeg   int
	segs     int
}

func (a *Analyzer) planSweep(f1, f2 float64) plan {
	if f2 <= f1 {
		panic(fmt.Sprintf("specan: empty sweep [%g, %g]", f1, f2))
	}
	needBins := int(math.Round((f2 - f1) / a.cfg.Fres))
	if needBins < 1 {
		needBins = 1
	}
	nfft := fft.NextPow2(int(math.Ceil(float64(needBins) / a.cfg.UsableFrac)))
	if nfft > a.cfg.MaxFFT {
		nfft = a.cfg.MaxFFT
	}
	if nfft < 64 {
		nfft = 64
	}
	perSeg := int(float64(nfft) * a.cfg.UsableFrac)
	segs := (needBins + perSeg - 1) / perSeg
	return plan{nfft: nfft, fs: float64(nfft) * a.cfg.Fres, needBins: needBins, perSeg: perSeg, segs: segs}
}

// CaptureDuration returns the observation time of a single trace of a
// sweep over [f1, f2] (1/fres).
func (a *Analyzer) CaptureDuration() float64 { return 1 / a.cfg.Fres }

// TotalDuration returns how much activity-trace time a sweep consumes:
// segments × averages × capture duration.
func (a *Analyzer) TotalDuration(f1, f2 float64) float64 {
	p := a.planSweep(f1, f2)
	return float64(p.segs*a.cfg.Averages) * a.CaptureDuration()
}

// Request is one sweep specification.
type Request struct {
	Scene  *emsim.Scene
	F1, F2 float64
	// Ctx, when non-nil, lets a caller abandon the sweep mid-flight: once
	// the context is cancelled, remaining captures are skipped (not
	// rendered, not charged to any Meter, not counted) and the sweep
	// returns promptly. The returned spectrum is then partial garbage and
	// MUST be discarded — cancellation is for callers (a campaign service
	// killing a job) that throw the whole result away. A nil or
	// never-cancelled context leaves the sweep byte-identical to one
	// without a context.
	Ctx context.Context
	// Span, when active, is the trace span the sweep nests under (e.g.
	// a campaign span). The zero value is fine: with Config.Obs tracing
	// enabled the sweep then opens a root span of its own.
	Span obs.Span
	// Activity is the program-activity envelope during the sweep (nil =
	// idle machine).
	Activity *activity.Trace
	// Seed controls the measurement noise; sweeps with different seeds
	// are independent observations.
	Seed int64
	// NearField enables the localization probe model.
	NearField bool
	// NearFieldGainDB is the probe gain (e.g. 30 dB); only meaningful
	// with NearField.
	NearFieldGainDB float64
	// Events, when non-nil, receives the sweep's journal events
	// (sweep_start, strided sweep_progress, sweep_end) on the caller's
	// track. They are emitted from the sweep's coordinating goroutine —
	// progress follows the deterministic reduce order, not render
	// completion — so per-track event order is reproducible at any
	// Parallelism. Nil (the default) keeps the sweep journal-free.
	Events *obs.JournalTrack
}

// segGeom returns the bin range and center frequency of segment s.
func (a *Analyzer) segGeom(p plan, f1 float64, s int) (fStart, center float64, bins int) {
	binStart := s * p.perSeg
	bins = p.perSeg
	if binStart+bins > p.needBins {
		bins = p.needBins - binStart
	}
	fStart = f1 + float64(binStart)*a.cfg.Fres
	center = fStart + float64(bins)/2*a.cfg.Fres
	return fStart, center, bins
}

// renderCapture renders capture capIdx of the sweep and writes its
// periodogram into out (whose PmW the caller supplies). All scratch comes
// from pools, so steady state allocates nothing. With Config.Obs attached
// the two halves — scene render and window+FFT+calibrate — are timed
// separately (and traced under parent when a tracer is set); timing never
// touches the sample math, so output is identical either way.
func (a *Analyzer) renderCapture(req Request, p plan, capIdx int, out *spectral.Spectrum, parent obs.Span) {
	// Cancelled sweeps stop paying for captures immediately: the spectrum
	// slot stays zeroed, nothing is charged to the meter or the capture
	// counters, and the (garbage) sweep result is discarded by the caller.
	if req.Ctx != nil && req.Ctx.Err() != nil {
		// Keep the slot's geometry valid so the discarded sweep can still
		// reduce without tripping the Averager; the power stays zero.
		_, center, _ := a.segGeom(p, req.F1, capIdx/a.cfg.Averages)
		fres := p.fs / float64(p.nfft)
		out.F0 = center - fres*float64(p.nfft/2)
		out.Fres = fres
		return
	}
	run := a.cfg.Obs
	_, center, _ := a.segGeom(p, req.F1, capIdx/a.cfg.Averages)
	band := emsim.Band{Center: center, SampleRate: p.fs}
	buf := a.arena.Complex(p.nfft)
	var t0, t1, t2 time.Time
	var cs obs.Span
	if run != nil {
		if parent.Active() {
			cs = parent.Fork("capture")
		}
		t0 = time.Now()
	}
	capSeed := req.Seed + int64(capIdx)*7919
	start := float64(capIdx) * a.CaptureDuration()
	rp := a.planFor(req.Scene, band, p.nfft)
	var static *emsim.StaticSet
	if a.cfg.ReuseStatic {
		static = a.staticFor(req, band, p.nfft, capSeed, start, rp)
	}
	req.Scene.RenderInto(buf, emsim.Capture{
		Band:            band,
		Start:           start,
		N:               p.nfft,
		Activity:        req.Activity,
		Seed:            capSeed,
		NearField:       req.NearField,
		NearFieldGainDB: req.NearFieldGainDB,
		Plan:            rp,
		Static:          static,
		NoSegment:       a.cfg.NoSegment,
		Obs:             run,
	})
	if run != nil {
		t1 = time.Now()
	}
	if fp := a.cfg.Faults; fp != nil {
		// Fault seed = capture seed: the degradation is pinned to the
		// capture's position in the sweep, so results are independent of
		// parallelism exactly like the render itself.
		fp.Apply(buf, band, capSeed)
	}
	spectral.PeriodogramInPlace(out, buf, p.fs, center, a.cfg.Window)
	a.arena.PutComplex(buf)
	capturesTotal.Inc()
	a.cfg.Meter.record()
	if run != nil {
		t2 = time.Now()
		run.Captures.Inc()
		run.AddSimSeconds(a.CaptureDuration())
		run.RenderSeconds.Add(t1.Sub(t0).Seconds())
		run.FFTSeconds.Add(t2.Sub(t1).Seconds())
		renderSeconds.Observe(t1.Sub(t0).Seconds())
		fftSeconds.Observe(t2.Sub(t1).Seconds())
		cs.Mark("render", t0, t1.Sub(t0))
		cs.Mark("fft", t1, t2.Sub(t1))
		cs.End()
	}
}

// Sweep measures the spectrum of the scene over [F1, F2].
//
// The segs × averages captures are independent — each is seeded by its
// position in the sweep — so they render concurrently on up to
// Config.Parallelism goroutines. The periodograms are then reduced into
// per-segment trace averages in the same (segment, trace) order the serial
// loop used, keeping the result bit-identical to Parallelism: 1.
func (a *Analyzer) Sweep(req Request) *spectral.Spectrum {
	if req.Scene == nil {
		panic("specan: sweep without a scene")
	}
	sweepsTotal.Inc()
	// The span setup stays out of sweep so that, uninstrumented, req and
	// the zero Span are captured by the worker closures by value: a defer
	// or reassignment in the closure-owning frame would force both to the
	// heap and cost two allocations per sweep even with tracing off.
	if run := a.cfg.Obs; run != nil {
		var sw obs.Span
		if req.Span.Active() {
			sw = req.Span.Fork("sweep")
		} else {
			sw = run.Tracer.Begin("sweep")
		}
		sp := a.sweep(req, sw)
		sw.End()
		return sp
	}
	return a.sweep(req, obs.Span{})
}

// sweep is the body of Sweep; sw is the already-open sweep span (zero
// when tracing is off) and is ended by the caller.
func (a *Analyzer) sweep(req Request, sw obs.Span) *spectral.Spectrum {
	p := a.planSweep(req.F1, req.F2)
	nCaps := p.segs * a.cfg.Averages
	req.Events.Emit(obs.Event{Kind: obs.EventSweepStart,
		F1Hz: req.F1, F2Hz: req.F2, Total: int64(nCaps)})
	specs := make([]spectral.Spectrum, nCaps)
	for i := range specs {
		specs[i].PmW = a.arena.Float(p.nfft)
	}
	if a.cfg.Parallelism == 1 {
		for i := 0; i < nCaps; i++ {
			a.sem <- struct{}{}
			a.renderCapture(req, p, i, &specs[i], sw)
			<-a.sem
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(nCaps)
		for i := 0; i < nCaps; i++ {
			go func(i int) {
				defer wg.Done()
				a.sem <- struct{}{}
				defer func() { <-a.sem }()
				a.renderCapture(req, p, i, &specs[i], sw)
			}(i)
		}
		wg.Wait()
	}
	// Deterministic reduction: segment by segment, traces in capture
	// order, exactly as the serial sweep accumulated them. Progress
	// events stride this loop (not render completion), so the journal
	// sees the same positions at any Parallelism.
	stride := p.segs / 8
	if stride < 1 {
		stride = 1
	}
	parts := make([]*spectral.Spectrum, 0, p.segs)
	for s := 0; s < p.segs; s++ {
		fStart, _, bins := a.segGeom(p, req.F1, s)
		var avg spectral.Averager
		for t := 0; t < a.cfg.Averages; t++ {
			sp := &specs[s*a.cfg.Averages+t]
			avg.Add(sp)
			a.arena.PutFloat(sp.PmW)
			sp.PmW = nil
		}
		parts = append(parts, avg.Mean().Slice(fStart, fStart+float64(bins)*a.cfg.Fres))
		if req.Events != nil && (s+1)%stride == 0 && s+1 < p.segs {
			req.Events.Emit(obs.Event{Kind: obs.EventSweepProgress,
				Captures: int64((s + 1) * a.cfg.Averages), Total: int64(nCaps)})
		}
	}
	req.Events.Emit(obs.Event{Kind: obs.EventSweepEnd,
		Captures: int64(nCaps), Total: int64(nCaps)})
	a.cfg.Obs.AddSweepDone()
	return spectral.Stitch(parts)
}
