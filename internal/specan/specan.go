// Package specan models the measurement instrument of the paper's setup —
// the Agilent MXA spectrum analyzer behind the loop antenna.
//
// A sweep over [f1, f2] is performed in band segments: each segment is a
// complex-baseband capture rendered by the scene, windowed, transformed,
// amplitude-calibrated (see package spectral) and trace-averaged; segments
// are stitched into one spectrum whose bins land exactly on the global
// f1 + k·fres grid.
package specan

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"fase/internal/activity"
	"fase/internal/dsp/bufpool"
	"fase/internal/dsp/fft"
	"fase/internal/dsp/spectral"
	"fase/internal/dsp/window"
	"fase/internal/emsim"
)

// Config tunes the analyzer.
type Config struct {
	// Fres is the resolution bandwidth (bin spacing), Hz.
	Fres float64
	// Averages is the number of traces averaged per segment (the paper
	// averages 4 captures, §3). Zero means 4.
	Averages int
	// Window selects the FFT window. The zero value (window.Default)
	// selects Blackman-Harris, whose -92 dB side lobes keep strong AM
	// stations from burying the µW-level system signals; every concrete
	// window — including window.Rectangular — is honored as given.
	Window window.Type
	// MaxFFT caps the per-segment transform size (power of two). Zero
	// means 1<<17.
	MaxFFT int
	// UsableFrac is the fraction of each segment's bandwidth kept after
	// discarding band edges. Zero means 0.75.
	UsableFrac float64
	// Parallelism bounds how many captures the analyzer renders and
	// transforms concurrently, across all Sweep calls sharing this
	// analyzer. Zero (or negative) means runtime.GOMAXPROCS(0). The
	// result is bit-identical for every setting: captures are seeded by
	// their sweep position and reduced in a fixed order, so parallelism
	// changes only wall-clock time, never output.
	Parallelism int
	// NoPlan disables per-segment render planning (see emsim.RenderPlan):
	// every capture then walks every scene component with no precomputed
	// state. Planned and unplanned rendering are bit-identical by design —
	// this is a debugging escape hatch for isolating the planner, not a
	// result-changing switch.
	NoPlan bool
}

func (c Config) withDefaults() Config {
	if c.Averages == 0 {
		c.Averages = 4
	}
	if c.Window == window.Default {
		c.Window = window.BlackmanHarris
	}
	if c.MaxFFT == 0 {
		c.MaxFFT = 1 << 17
	}
	if c.UsableFrac == 0 {
		c.UsableFrac = 0.75
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Fres <= 0 {
		panic(fmt.Sprintf("specan: resolution bandwidth must be positive, got %g", c.Fres))
	}
	return c
}

// Analyzer performs swept spectrum measurements of a scene. One analyzer
// may serve concurrent Sweep calls; its Parallelism budget is shared
// between them, so e.g. the five f_alt sweeps of a FASE measurement never
// oversubscribe the machine.
type Analyzer struct {
	cfg Config
	// sem is the capture-level concurrency budget shared by all sweeps on
	// this analyzer.
	sem chan struct{}
	// plans caches render plans per segment geometry (planKey). Segment
	// geometry is identical across a sweep's averages and across the
	// NumAlts sweeps of a campaign sharing this analyzer, so each segment's
	// component culling and per-component preparation happens once, not
	// once per capture.
	plans sync.Map
}

// planKey identifies a segment's render geometry. Near-field settings are
// deliberately absent: plans hold only geometry (active subsets, harmonic
// lists, rotation phasors, noise densities), none of which depends on the
// probe model.
type planKey struct {
	scene      *emsim.Scene
	center, fs float64
	n          int
}

// planFor returns the cached render plan for a segment, computing it on
// first use. Concurrent first uses may both compute the plan; plans are
// deterministic, so either result is valid and LoadOrStore keeps one.
func (a *Analyzer) planFor(scene *emsim.Scene, band emsim.Band, n int) *emsim.RenderPlan {
	if a.cfg.NoPlan {
		return nil
	}
	key := planKey{scene: scene, center: band.Center, fs: band.SampleRate, n: n}
	if v, ok := a.plans.Load(key); ok {
		return v.(*emsim.RenderPlan)
	}
	v, _ := a.plans.LoadOrStore(key, scene.Plan(band, n))
	return v.(*emsim.RenderPlan)
}

// New creates an analyzer. See Config for defaults.
func New(cfg Config) *Analyzer {
	cfg = cfg.withDefaults()
	return &Analyzer{cfg: cfg, sem: make(chan struct{}, cfg.Parallelism)}
}

// Fres returns the configured resolution bandwidth.
func (a *Analyzer) Fres() float64 { return a.cfg.Fres }

// plan describes the segmentation of a sweep.
type plan struct {
	nfft     int
	fs       float64
	needBins int
	perSeg   int
	segs     int
}

func (a *Analyzer) planSweep(f1, f2 float64) plan {
	if f2 <= f1 {
		panic(fmt.Sprintf("specan: empty sweep [%g, %g]", f1, f2))
	}
	needBins := int(math.Round((f2 - f1) / a.cfg.Fres))
	if needBins < 1 {
		needBins = 1
	}
	nfft := fft.NextPow2(int(math.Ceil(float64(needBins) / a.cfg.UsableFrac)))
	if nfft > a.cfg.MaxFFT {
		nfft = a.cfg.MaxFFT
	}
	if nfft < 64 {
		nfft = 64
	}
	perSeg := int(float64(nfft) * a.cfg.UsableFrac)
	segs := (needBins + perSeg - 1) / perSeg
	return plan{nfft: nfft, fs: float64(nfft) * a.cfg.Fres, needBins: needBins, perSeg: perSeg, segs: segs}
}

// CaptureDuration returns the observation time of a single trace of a
// sweep over [f1, f2] (1/fres).
func (a *Analyzer) CaptureDuration() float64 { return 1 / a.cfg.Fres }

// TotalDuration returns how much activity-trace time a sweep consumes:
// segments × averages × capture duration.
func (a *Analyzer) TotalDuration(f1, f2 float64) float64 {
	p := a.planSweep(f1, f2)
	return float64(p.segs*a.cfg.Averages) * a.CaptureDuration()
}

// Request is one sweep specification.
type Request struct {
	Scene  *emsim.Scene
	F1, F2 float64
	// Activity is the program-activity envelope during the sweep (nil =
	// idle machine).
	Activity *activity.Trace
	// Seed controls the measurement noise; sweeps with different seeds
	// are independent observations.
	Seed int64
	// NearField enables the localization probe model.
	NearField bool
	// NearFieldGainDB is the probe gain (e.g. 30 dB); only meaningful
	// with NearField.
	NearFieldGainDB float64
}

// segGeom returns the bin range and center frequency of segment s.
func (a *Analyzer) segGeom(p plan, f1 float64, s int) (fStart, center float64, bins int) {
	binStart := s * p.perSeg
	bins = p.perSeg
	if binStart+bins > p.needBins {
		bins = p.needBins - binStart
	}
	fStart = f1 + float64(binStart)*a.cfg.Fres
	center = fStart + float64(bins)/2*a.cfg.Fres
	return fStart, center, bins
}

// renderCapture renders capture capIdx of the sweep and writes its
// periodogram into out (whose PmW the caller supplies). All scratch comes
// from pools, so steady state allocates nothing.
func (a *Analyzer) renderCapture(req Request, p plan, capIdx int, out *spectral.Spectrum) {
	_, center, _ := a.segGeom(p, req.F1, capIdx/a.cfg.Averages)
	band := emsim.Band{Center: center, SampleRate: p.fs}
	buf := bufpool.Complex(p.nfft)
	req.Scene.RenderInto(buf, emsim.Capture{
		Band:            band,
		Start:           float64(capIdx) * a.CaptureDuration(),
		N:               p.nfft,
		Activity:        req.Activity,
		Seed:            req.Seed + int64(capIdx)*7919,
		NearField:       req.NearField,
		NearFieldGainDB: req.NearFieldGainDB,
		Plan:            a.planFor(req.Scene, band, p.nfft),
	})
	spectral.PeriodogramInPlace(out, buf, p.fs, center, a.cfg.Window)
	bufpool.PutComplex(buf)
}

// Sweep measures the spectrum of the scene over [F1, F2].
//
// The segs × averages captures are independent — each is seeded by its
// position in the sweep — so they render concurrently on up to
// Config.Parallelism goroutines. The periodograms are then reduced into
// per-segment trace averages in the same (segment, trace) order the serial
// loop used, keeping the result bit-identical to Parallelism: 1.
func (a *Analyzer) Sweep(req Request) *spectral.Spectrum {
	if req.Scene == nil {
		panic("specan: sweep without a scene")
	}
	p := a.planSweep(req.F1, req.F2)
	nCaps := p.segs * a.cfg.Averages
	specs := make([]spectral.Spectrum, nCaps)
	for i := range specs {
		specs[i].PmW = bufpool.Float(p.nfft)
	}
	if a.cfg.Parallelism == 1 {
		for i := 0; i < nCaps; i++ {
			a.sem <- struct{}{}
			a.renderCapture(req, p, i, &specs[i])
			<-a.sem
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(nCaps)
		for i := 0; i < nCaps; i++ {
			go func(i int) {
				defer wg.Done()
				a.sem <- struct{}{}
				defer func() { <-a.sem }()
				a.renderCapture(req, p, i, &specs[i])
			}(i)
		}
		wg.Wait()
	}
	// Deterministic reduction: segment by segment, traces in capture
	// order, exactly as the serial sweep accumulated them.
	parts := make([]*spectral.Spectrum, 0, p.segs)
	for s := 0; s < p.segs; s++ {
		fStart, _, bins := a.segGeom(p, req.F1, s)
		var avg spectral.Averager
		for t := 0; t < a.cfg.Averages; t++ {
			sp := &specs[s*a.cfg.Averages+t]
			avg.Add(sp)
			bufpool.PutFloat(sp.PmW)
			sp.PmW = nil
		}
		parts = append(parts, avg.Mean().Slice(fStart, fStart+float64(bins)*a.cfg.Fres))
	}
	return spectral.Stitch(parts)
}
