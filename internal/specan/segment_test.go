package specan

import (
	"testing"

	"fase/internal/activity"
	"fase/internal/dsp/spectral"
	"fase/internal/emsim"
	"fase/internal/machine"
	"fase/internal/microbench"
)

// TestSweepEquivalenceSegmented holds the segmented render kernels to the
// sweep-level contract: a sweep through the default path (run-length
// segmented regulators/clocks, blocked refresh, conditional static
// splits) must match the per-sample NoSegment escape hatch bit for bit —
// planned and unplanned, serial and parallel, with and without the static
// cache, and with a fault plan mangling the capture chain. Runs under the
// race detector via `make equivalence` (the parallel cases exercise the
// shared cond-key scratch pool and two-level cache).
func TestSweepEquivalenceSegmented(t *testing.T) {
	sys, err := machine.Lookup("i7-desktop")
	if err != nil {
		t.Fatal(err)
	}
	reqFor := func(scene *emsim.Scene, act *activity.Trace) Request {
		return Request{Scene: scene, F1: 250e3, F2: 750e3, Seed: 23, Activity: act}
	}
	alt := microbench.Generate(microbench.Config{
		X: activity.LDM, Y: activity.LDL1, FAlt: 43.3e3,
		Jitter: microbench.DefaultJitter(), Seed: 23,
	}, 1.0)
	faults := &emsim.FaultPlan{
		Seed: 7, DropProb: 0.2, TruncProb: 0.2,
		ExtraNoiseDBmPerHz: -165, BurstProb: 0.3,
	}
	// One reference per (trace, fault) combination, rendered the dumbest
	// way available: per-sample, no plan, no cache, serial.
	refFor := func(act *activity.Trace, fp *emsim.FaultPlan) *spectral.Spectrum {
		cfg := Config{Fres: 100, MaxFFT: 1 << 14, Parallelism: 1,
			NoPlan: true, NoSegment: true, Faults: fp}
		return New(cfg).Sweep(reqFor(sys.Scene(23, true), act))
	}
	refs := map[*activity.Trace]map[bool]*spectral.Spectrum{
		nil: {false: refFor(nil, nil)},
		alt: {false: refFor(alt, nil), true: refFor(alt, faults)},
	}

	for _, tc := range []struct {
		name    string
		act     *activity.Trace
		par     int
		noPlan  bool
		reuse   bool
		faulted bool
	}{
		{"idle planned serial", nil, 1, false, false, false},
		{"planned serial", alt, 1, false, false, false},
		{"planned parallel", alt, 4, false, false, false},
		{"unplanned serial", alt, 1, true, false, false},
		{"cached serial", alt, 1, false, true, false},
		{"cached parallel", alt, 4, false, true, false},
		{"faulted serial", alt, 1, false, false, true},
		{"faulted parallel", alt, 4, false, false, true},
	} {
		var fp *emsim.FaultPlan
		if tc.faulted {
			fp = faults
		}
		an := New(Config{
			Fres: 100, MaxFFT: 1 << 14, Parallelism: tc.par,
			NoPlan: tc.noPlan, ReuseStatic: tc.reuse, Faults: fp,
		})
		got := an.Sweep(reqFor(sys.Scene(23, true), tc.act))
		compareSpectraBits(t, tc.name, got, refs[tc.act][tc.faulted])
	}
}

// TestSweepCondStaticKeying pins the two-level static cache's keying: two
// requests that share every outer key (same band plan, seeds, geometry)
// but whose window-constant loads differ must build separate conditional
// entries — and each must replay bit-identically against its own
// uncached reference. A constant activity trace makes every
// load-following emitter window-constant, so the conditional layer, not
// the unconditional one, carries the difference.
func TestSweepCondStaticKeying(t *testing.T) {
	sys, err := machine.Lookup("i7-desktop")
	if err != nil {
		t.Fatal(err)
	}
	ldm := microbench.Constant(activity.LDM)
	ldl1 := microbench.Constant(activity.LDL1)
	// One scene per trace, shared between the analyzer's sweeps: the outer
	// cache key includes the scene identity, so the cross-sweep behaviour
	// under test only shows on repeated sweeps of the same scene.
	scene := sys.Scene(31, true)
	reqA := Request{Scene: scene, F1: 250e3, F2: 750e3, Seed: 31, Activity: ldm}
	reqB := reqA
	reqB.Activity = ldl1
	refFor := func(req Request) *spectral.Spectrum {
		req.Scene = sys.Scene(31, true)
		return New(Config{Fres: 100, MaxFFT: 1 << 14, Parallelism: 1, NoPlan: true}).Sweep(req)
	}
	refA, refB := refFor(reqA), refFor(reqB)

	an := New(Config{Fres: 100, MaxFFT: 1 << 14, Parallelism: 1, ReuseStatic: true})
	m0 := staticMissesTotal.Value()
	coldA := an.Sweep(reqA)
	m1 := staticMissesTotal.Value()
	warmA := an.Sweep(reqA)
	m2 := staticMissesTotal.Value()
	coldB := an.Sweep(reqB)
	m3 := staticMissesTotal.Value()
	warmB := an.Sweep(reqB)
	m4 := staticMissesTotal.Value()

	if m1 == m0 {
		t.Fatal("first LDM sweep built no static entries — test is vacuous")
	}
	if m2 != m1 {
		t.Errorf("repeat LDM sweep rebuilt %d entries, want 0", m2-m1)
	}
	if m3 == m2 {
		t.Error("first LDL1 sweep reused LDM's entries — conditional loads were not keyed")
	}
	if m4 != m3 {
		t.Errorf("repeat LDL1 sweep rebuilt %d entries, want 0", m4-m3)
	}

	compareSpectraBits(t, "LDM cold", coldA, refA)
	compareSpectraBits(t, "LDM warm", warmA, refA)
	compareSpectraBits(t, "LDL1 cold", coldB, refB)
	compareSpectraBits(t, "LDL1 warm", warmB, refB)
}
