package baseline

import (
	"math"
	"math/rand"
	"testing"

	"fase/internal/dsp/spectral"
)

// makeSpectrum builds a synthetic spectrum with a noise floor and lines.
func makeSpectrum(bins int, fres float64, lines map[int]float64, seed int64) *spectral.Spectrum {
	r := rand.New(rand.NewSource(seed))
	s := spectral.New(0, fres, bins)
	floor := spectral.MwFromDBm(-150)
	for k := range s.PmW {
		s.PmW[k] = floor * (0.5 + r.Float64())
	}
	for k, dbm := range lines {
		s.PmW[k] = spectral.MwFromDBm(dbm)
	}
	return s
}

func TestSymmetricSidebandFindsTriplet(t *testing.T) {
	fres := 100.0
	falt := 40e3 // 400 bins
	lines := map[int]float64{
		3000: -110, // carrier
		2600: -130, // left side-band
		3400: -131, // right side-band
	}
	s := makeSpectrum(8000, fres, lines, 1)
	got := SymmetricSideband(s, SymmetricConfig{FAlt: falt})
	if len(got) != 1 {
		t.Fatalf("candidates: %+v", got)
	}
	if math.Abs(got[0].Freq-300e3) > fres {
		t.Errorf("carrier at %g", got[0].Freq)
	}
	if math.Abs(got[0].SidebandDB-(-20)) > 2 {
		t.Errorf("side-band level %g, want ~-20", got[0].SidebandDB)
	}
}

func TestSymmetricSidebandFalsePositiveOnCoincidence(t *testing.T) {
	// Three unrelated periodic signals that happen to be falt apart — the
	// §2.3 failure mode FASE fixes. The baseline is fooled.
	fres := 100.0
	falt := 40e3
	lines := map[int]float64{2600: -115, 3000: -112, 3400: -118}
	s := makeSpectrum(8000, fres, lines, 2)
	got := SymmetricSideband(s, SymmetricConfig{FAlt: falt})
	if len(got) == 0 {
		t.Error("baseline should be fooled by coincidental spacing (this is its documented failure mode)")
	}
}

func TestSymmetricSidebandFalseNegativeWhenBuried(t *testing.T) {
	// One side-band buried under noise: the triplet detector misses the
	// carrier even though it is genuinely modulated.
	fres := 100.0
	falt := 40e3
	lines := map[int]float64{
		3000: -110,
		3400: -131, // right side-band present
		// left side-band absent (buried)
	}
	s := makeSpectrum(8000, fres, lines, 3)
	got := SymmetricSideband(s, SymmetricConfig{FAlt: falt})
	if len(got) != 0 {
		t.Errorf("baseline should miss a carrier with one buried side-band: %+v", got)
	}
}

func TestAMClassifierFlagsStation(t *testing.T) {
	fres := 100.0
	lines := map[int]float64{4000: -90}
	// Audio side-bands ±1-3 kHz.
	for _, off := range []int{10, 20, 30} {
		lines[4000-off] = -115
		lines[4000+off] = -115
	}
	s := makeSpectrum(8000, fres, lines, 4)
	got := AMClassifier(s, AMCConfig{})
	if len(got) != 1 {
		t.Fatalf("candidates: %+v", got)
	}
	if math.Abs(got[0].Freq-400e3) > fres {
		t.Errorf("station at %g", got[0].Freq)
	}
}

func TestAMClassifierIgnoresBareCarrier(t *testing.T) {
	s := makeSpectrum(8000, 100, map[int]float64{4000: -90}, 5)
	if got := AMClassifier(s, AMCConfig{}); len(got) != 0 {
		t.Errorf("bare carrier flagged: %+v", got)
	}
}

func TestAMClassifierRequiresSymmetry(t *testing.T) {
	// Side-band energy on one side only (e.g. an adjacent unrelated
	// signal) must not be classified as AM.
	lines := map[int]float64{4000: -90}
	for _, off := range []int{10, 20, 30} {
		lines[4000+off] = -112
	}
	s := makeSpectrum(8000, 100, lines, 6)
	got := AMClassifier(s, AMCConfig{})
	// One-sided energy integrates above the floor on both sides only via
	// noise; the floor-subtracted low side should be ~0 and the carrier
	// rejected.
	if len(got) != 0 {
		t.Errorf("one-sided energy flagged as AM: %+v", got)
	}
}

func TestPanics(t *testing.T) {
	s := makeSpectrum(100, 100, nil, 7)
	mustPanic(t, func() { SymmetricSideband(s, SymmetricConfig{FAlt: 0}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
