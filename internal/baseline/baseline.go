// Package baseline implements the comparison detectors the paper argues
// against, to quantify FASE's advantage:
//
//   - SymmetricSideband is the "simplistic approach" of §2.3: scan a
//     *single* spectrum for peak triplets (f−falt, f, f+falt). The paper
//     predicts three failure modes: alternation harmonics 2·falt apart
//     masquerading as carriers, side-bands buried by unrelated signals
//     (false negatives), and unrelated peaks that happen to be ~2·falt
//     apart (false positives).
//
//   - AMClassifier is a generic automatic-modulation-classification
//     detector (§5, Dobre et al.): it flags every carrier that carries AM
//     side-band energy, regardless of cause — so it reports broadcast
//     stations and other communication signals that are irrelevant to the
//     system activity of interest.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"fase/internal/dsp/peaks"
	"fase/internal/dsp/spectral"
)

// Candidate is a carrier frequency reported by a baseline detector.
type Candidate struct {
	Freq     float64
	PowerDBm float64
	// SidebandDB is the detected side-band level relative to the carrier.
	SidebandDB float64
}

// SymmetricConfig tunes SymmetricSideband.
type SymmetricConfig struct {
	// FAlt is the alternation frequency whose side-bands are sought.
	FAlt float64
	// MinSNRdB is how far above the local noise floor a peak must rise.
	// Zero means 8 dB.
	MinSNRdB float64
	// TolBins is the allowed mismatch when matching side-peaks. Zero
	// means 4.
	TolBins int
}

// SymmetricSideband scans one spectrum for carrier-like peaks flanked by
// side-peaks at ±FAlt, the single-measurement heuristic FASE improves on.
func SymmetricSideband(s *spectral.Spectrum, cfg SymmetricConfig) []Candidate {
	if cfg.FAlt <= 0 {
		panic(fmt.Sprintf("baseline: FAlt must be positive, got %g", cfg.FAlt))
	}
	if cfg.MinSNRdB == 0 {
		cfg.MinSNRdB = 8
	}
	if cfg.TolBins == 0 {
		cfg.TolBins = 4
	}
	floor := s.MedianPower()
	minPeak := floor * math.Pow(10, cfg.MinSNRdB/10)
	shift := int(math.Round(cfg.FAlt / s.Fres))
	ps := peaks.Find(s.PmW, peaks.Options{MinValue: minPeak, MinDistance: cfg.TolBins + 1})
	// Index peaks for side-peak lookup.
	peakAt := make(map[int]float64, len(ps))
	for _, p := range ps {
		peakAt[p.Index] = p.Value
	}
	hasPeakNear := func(i int) bool {
		for k := i - cfg.TolBins; k <= i+cfg.TolBins; k++ {
			if _, ok := peakAt[k]; ok {
				return true
			}
		}
		return false
	}
	var out []Candidate
	for _, p := range ps {
		if hasPeakNear(p.Index-shift) && hasPeakNear(p.Index+shift) {
			side := math.Max(maxNear(s, p.Index-shift, cfg.TolBins), maxNear(s, p.Index+shift, cfg.TolBins))
			out = append(out, Candidate{
				Freq:       s.Freq(p.Index),
				PowerDBm:   spectral.DBmFromMw(p.Value),
				SidebandDB: spectral.DBmFromMw(side) - spectral.DBmFromMw(p.Value),
			})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Freq < out[b].Freq })
	return out
}

func maxNear(s *spectral.Spectrum, i, tol int) float64 {
	var best float64
	for k := i - tol; k <= i+tol; k++ {
		if k >= 0 && k < s.Bins() && s.PmW[k] > best {
			best = s.PmW[k]
		}
	}
	return best
}

// AMCConfig tunes AMClassifier.
type AMCConfig struct {
	// MinCarrierSNRdB is the carrier prominence over the floor required
	// to consider a peak. Zero means 15 dB.
	MinCarrierSNRdB float64
	// AudioLow/AudioHigh bound the modulation side-band band to
	// integrate, Hz from the carrier. Zeros mean 200 Hz and 10 kHz.
	AudioLow, AudioHigh float64
	// MinSidebandDB is the total side-band power relative to the carrier
	// needed to call the carrier modulated. Zero means -35 dB.
	MinSidebandDB float64
}

// AMClassifier flags every carrier in the spectrum that shows symmetric
// modulation side-band energy — the communications-intelligence approach
// that cannot distinguish activity-modulated emanations from broadcast
// stations.
func AMClassifier(s *spectral.Spectrum, cfg AMCConfig) []Candidate {
	if cfg.MinCarrierSNRdB == 0 {
		cfg.MinCarrierSNRdB = 15
	}
	if cfg.AudioLow == 0 {
		cfg.AudioLow = 200
	}
	if cfg.AudioHigh == 0 {
		cfg.AudioHigh = 10e3
	}
	if cfg.MinSidebandDB == 0 {
		cfg.MinSidebandDB = -35
	}
	floor := s.MedianPower()
	minPeak := floor * math.Pow(10, cfg.MinCarrierSNRdB/10)
	minDist := int(math.Round(cfg.AudioHigh / s.Fres))
	ps := peaks.Find(s.PmW, peaks.Options{MinValue: minPeak, MinDistance: minDist})
	var out []Candidate
	for _, p := range ps {
		f := s.Freq(p.Index)
		lo := bandPower(s, f-cfg.AudioHigh, f-cfg.AudioLow, floor)
		hi := bandPower(s, f+cfg.AudioLow, f+cfg.AudioHigh, floor)
		// Require clear energy on both sides (AM side-bands are
		// symmetric): each side must exceed the floor-noise residual by a
		// margin, and the two sides must be within 10 dB of each other.
		sideBins := (cfg.AudioHigh - cfg.AudioLow) / s.Fres
		minSide := 0.2 * floor * sideBins
		if lo < minSide || hi < minSide || lo > 10*hi || hi > 10*lo {
			continue
		}
		sideDB := spectral.DBmFromMw(lo+hi) - spectral.DBmFromMw(p.Value)
		if sideDB >= cfg.MinSidebandDB {
			out = append(out, Candidate{
				Freq:       f,
				PowerDBm:   spectral.DBmFromMw(p.Value),
				SidebandDB: sideDB,
			})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Freq < out[b].Freq })
	return out
}

// bandPower integrates power above the floor in [f1, f2]; the floor
// contribution is subtracted so quiet bands report ~0.
func bandPower(s *spectral.Spectrum, f1, f2, floor float64) float64 {
	sub := s.Slice(f1, f2)
	var tot float64
	for _, p := range sub.PmW {
		tot += p
	}
	tot -= floor * float64(sub.Bins())
	if tot < 0 {
		return 0
	}
	return tot
}
