// Package microbench simulates the paper's Figure 6 micro-benchmark: a
// loop that alternates between activity X and activity Y so that the
// system's activity level changes as a square wave at a controlled
// alternation frequency f_alt.
//
// Real executions of the loop do not produce a perfect square wave: each
// half-period's duration varies because of contention and
// microarchitectural timing variation, with "several commonly-occurring
// execution times among the repetitions" (§2.1, Fig. 2). The Jitter model
// reproduces that structure with a discrete mixture of duration
// multipliers plus small Gaussian noise, renormalized so the average
// alternation frequency stays calibrated — the software analogue of tuning
// inst_x_count/inst_y_count.
package microbench

import (
	"fmt"
	"math/rand"

	"fase/internal/activity"
)

// Jitter describes per-half-period timing variation.
type Jitter struct {
	// Multipliers and Probs form a discrete distribution of relative
	// duration multipliers (the "commonly-occurring execution times").
	// Empty means always 1.0.
	Multipliers []float64
	Probs       []float64
	// Sigma is additional relative Gaussian jitter per half-period.
	Sigma float64
}

// DefaultJitter is a realistic contention model: most repetitions take
// the nominal time, some take ~1% longer (occasional shared-resource
// stalls), a few ~2.5% longer (interference from other threads). The
// modes are small enough that the side-band peaks stay distinguishable at
// the paper's f_Δ = 0.5 kHz steps (Fig. 7) while still producing the
// multi-modal "bumps" of Fig. 2.
func DefaultJitter() Jitter {
	return Jitter{
		Multipliers: []float64{1.0, 1.01, 1.025},
		Probs:       []float64{0.85, 0.11, 0.04},
		Sigma:       0.002,
	}
}

// NoJitter produces a mathematically perfect square wave, useful for the
// idealized spectra of Figures 1 and 3.
func NoJitter() Jitter { return Jitter{} }

// mean returns the expected multiplier.
func (j Jitter) mean() float64 {
	if len(j.Multipliers) == 0 {
		return 1
	}
	if len(j.Multipliers) != len(j.Probs) {
		panic(fmt.Sprintf("microbench: %d multipliers but %d probs", len(j.Multipliers), len(j.Probs)))
	}
	var m, psum float64
	for i, p := range j.Probs {
		if p < 0 {
			panic("microbench: negative probability")
		}
		m += j.Multipliers[i] * p
		psum += p
	}
	if psum <= 0 {
		panic("microbench: probabilities sum to zero")
	}
	return m / psum
}

// draw samples one multiplier.
func (j Jitter) draw(r *rand.Rand) float64 {
	m := 1.0
	if len(j.Multipliers) > 0 {
		var psum float64
		for _, p := range j.Probs {
			psum += p
		}
		u := r.Float64() * psum
		for i, p := range j.Probs {
			if u < p {
				m = j.Multipliers[i]
				break
			}
			u -= p
		}
	}
	if j.Sigma > 0 {
		m *= 1 + j.Sigma*r.NormFloat64()
	}
	return m
}

// Config describes one alternation run of the Figure 6 loop.
type Config struct {
	X, Y activity.Kind
	// FAlt is the target alternation frequency in Hz (one full X+Y cycle
	// per 1/FAlt seconds).
	FAlt float64
	// Duty is the fraction of each period spent in X. Zero means 0.5,
	// matching the paper ("activity X and activity Y are each done for
	// half of the alternation period").
	Duty float64
	// Jitter models per-half-period timing variation.
	Jitter Jitter
	// Seed makes the run reproducible.
	Seed int64
}

// Generate simulates the alternation loop for the given duration and
// returns the resulting activity trace. The trace always begins at t=0
// with activity X.
func Generate(cfg Config, duration float64) *activity.Trace {
	if cfg.FAlt <= 0 {
		panic(fmt.Sprintf("microbench: alternation frequency must be positive, got %g", cfg.FAlt))
	}
	if duration <= 0 {
		panic(fmt.Sprintf("microbench: duration must be positive, got %g", duration))
	}
	duty := cfg.Duty
	if duty == 0 {
		duty = 0.5
	}
	if duty <= 0 || duty >= 1 {
		panic(fmt.Sprintf("microbench: duty %g out of (0, 1)", duty))
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	// Calibration: divide nominal durations by the jitter's mean so the
	// *average* alternation frequency equals FAlt.
	meanMult := cfg.Jitter.mean()
	period := 1 / cfg.FAlt / meanMult
	xLoad := activity.LoadOf(cfg.X)
	yLoad := activity.LoadOf(cfg.Y)

	tr := &activity.Trace{}
	// The mean real-time period is period·meanMult = 1/FAlt, so the
	// expected segment count is 2·duration·FAlt; a little headroom keeps
	// the append loop from ever regrowing (and re-copying) the slice.
	tr.Segments = make([]activity.Segment, 0, 2*int(duration*cfg.FAlt+16)*9/8)
	t := 0.0
	for t < duration {
		dx := period * duty * cfg.Jitter.draw(r)
		dy := period * (1 - duty) * cfg.Jitter.draw(r)
		tr.Segments = append(tr.Segments, activity.Segment{Start: t, Load: xLoad})
		t += dx
		tr.Segments = append(tr.Segments, activity.Segment{Start: t, Load: yLoad})
		t += dy
	}
	return tr
}

// Constant returns a trace that runs one activity continuously — the
// "LDM/LDM" and "LDL1/LDL1" controls of Figures 7, 12 and 14.
func Constant(k activity.Kind) *activity.Trace {
	return activity.NewConstant(activity.LoadOf(k))
}
