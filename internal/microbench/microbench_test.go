package microbench

import (
	"math"
	"testing"

	"fase/internal/activity"
)

func TestGenerateAlternates(t *testing.T) {
	cfg := Config{X: activity.LDM, Y: activity.LDL1, FAlt: 1000, Jitter: NoJitter(), Seed: 1}
	tr := Generate(cfg, 0.01)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// 10 ms at 1 kHz -> 10 periods -> 20 segments.
	if len(tr.Segments) != 20 {
		t.Fatalf("segments = %d, want 20", len(tr.Segments))
	}
	ldm, ldl1 := activity.LoadOf(activity.LDM), activity.LoadOf(activity.LDL1)
	for i, s := range tr.Segments {
		want := ldm
		if i%2 == 1 {
			want = ldl1
		}
		if s.Load != want {
			t.Fatalf("segment %d load %+v", i, s.Load)
		}
	}
	// Perfect square wave: starts at multiples of 0.5 ms.
	for i, s := range tr.Segments {
		if math.Abs(s.Start-float64(i)*0.0005) > 1e-12 {
			t.Fatalf("segment %d starts at %g", i, s.Start)
		}
	}
}

func TestGenerateCalibratedMeanPeriod(t *testing.T) {
	// With jitter, the *average* alternation frequency must stay at FAlt.
	cfg := Config{X: activity.LDM, Y: activity.LDL1, FAlt: 43300, Jitter: DefaultJitter(), Seed: 7}
	dur := 2.0
	tr := Generate(cfg, dur)
	periods := float64(len(tr.Segments)) / 2
	gotFAlt := periods / tr.End() // approximately; End is start of last segment
	if math.Abs(gotFAlt-43300)/43300 > 0.01 {
		t.Errorf("mean alternation frequency %g, want ~43300", gotFAlt)
	}
}

func TestGenerateJitterVariesDurations(t *testing.T) {
	cfg := Config{X: activity.LDM, Y: activity.LDL1, FAlt: 1000, Jitter: DefaultJitter(), Seed: 3}
	tr := Generate(cfg, 1.0)
	durs := map[float64]bool{}
	for i := 1; i < len(tr.Segments); i++ {
		d := math.Round((tr.Segments[i].Start-tr.Segments[i-1].Start)*1e7) / 1e7
		durs[d] = true
	}
	if len(durs) < 3 {
		t.Errorf("jitter should produce varied durations, got %d distinct", len(durs))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{X: activity.LDL2, Y: activity.LDL1, FAlt: 500, Jitter: DefaultJitter(), Seed: 42}
	a := Generate(cfg, 0.1)
	b := Generate(cfg, 0.1)
	if len(a.Segments) != len(b.Segments) {
		t.Fatal("non-deterministic segment count")
	}
	for i := range a.Segments {
		if a.Segments[i] != b.Segments[i] {
			t.Fatal("non-deterministic trace")
		}
	}
}

func TestGenerateDuty(t *testing.T) {
	cfg := Config{X: activity.LDM, Y: activity.LDL1, FAlt: 1000, Duty: 0.25, Jitter: NoJitter(), Seed: 1}
	tr := Generate(cfg, 0.01)
	// X half lasts 0.25 ms, Y half 0.75 ms.
	dx := tr.Segments[1].Start - tr.Segments[0].Start
	dy := tr.Segments[2].Start - tr.Segments[1].Start
	if math.Abs(dx-0.00025) > 1e-12 || math.Abs(dy-0.00075) > 1e-12 {
		t.Errorf("duty 0.25: dx=%g dy=%g", dx, dy)
	}
}

func TestConstant(t *testing.T) {
	tr := Constant(activity.LDM)
	if tr.At(0) != activity.LoadOf(activity.LDM) || tr.At(5) != activity.LoadOf(activity.LDM) {
		t.Error("Constant trace wrong")
	}
}

func TestJitterMean(t *testing.T) {
	j := Jitter{Multipliers: []float64{1, 2}, Probs: []float64{1, 1}}
	if m := j.mean(); math.Abs(m-1.5) > 1e-12 {
		t.Errorf("mean %g, want 1.5", m)
	}
	if NoJitter().mean() != 1 {
		t.Error("NoJitter mean should be 1")
	}
}

func TestPanics(t *testing.T) {
	mustPanic(t, func() { Generate(Config{FAlt: 0}, 1) })
	mustPanic(t, func() { Generate(Config{FAlt: 100}, 0) })
	mustPanic(t, func() { Generate(Config{FAlt: 100, Duty: 1.5}, 1) })
	mustPanic(t, func() {
		j := Jitter{Multipliers: []float64{1}, Probs: []float64{1, 2}}
		Generate(Config{FAlt: 100, Jitter: j}, 1)
	})
	mustPanic(t, func() {
		j := Jitter{Multipliers: []float64{1}, Probs: []float64{0}}
		Generate(Config{FAlt: 100, Jitter: j}, 1)
	})
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
