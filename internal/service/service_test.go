package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"fase/internal/emsim"
	"fase/internal/obs"
)

// tinyRequest is the shared fast campaign for service tests: a 60 kHz
// band at 500 Hz RBW — one 256-point segment, 4 averages × 5 sweeps =
// 20 captures per job, milliseconds of work.
func tinyRequest(tenant string, seed int64) *ScanRequest {
	return &ScanRequest{
		Tenant: tenant,
		System: "i7-desktop",
		Scan: ScanSpec{
			F1: 300e3, F2: 360e3, Fres: 500,
			FAlt1: 43.3e3, FDelta: 500,
			Seed: seed,
		},
	}
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func listen(t *testing.T, s *Server) string {
	t.Helper()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return "http://" + addr
}

// httpSubmit POSTs a submission and decodes the response.
func httpSubmit(t *testing.T, base string, req *ScanRequest) (ScanStatus, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/scans", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ScanStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return st, resp.StatusCode
}

func httpStatus(t *testing.T, base, id string) ScanStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/scans/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status %s: %d", id, resp.StatusCode)
	}
	var st ScanStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func httpCancel(t *testing.T, base, id string) ScanStatus {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/scans/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE %s: %d", id, resp.StatusCode)
	}
	var st ScanStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal polls a job's status until it reaches a terminal state.
func waitTerminal(t *testing.T, base, id string) ScanStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := httpStatus(t, base, id)
		if terminal(st.State) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("scan %s did not reach a terminal state", id)
	return ScanStatus{}
}

// fetchSSE reads the full /events stream of a finished job (backlog
// replay then EOF, since the journal closes at the terminal transition).
func fetchSSE(t *testing.T, url string) []obs.Event {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	var out []obs.Event
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			break // EOF once the backlog drains
		}
		line = strings.TrimRight(line, "\n")
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var e obs.Event
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				t.Fatalf("SSE frame %q: %v", data, err)
			}
			out = append(out, e)
		}
	}
	return out
}

// gate is a scene component whose renders block until released — the
// deterministic way to hold a job in the running state. It contributes
// nothing to the spectrum.
type gate struct {
	ch      chan struct{}
	started chan struct{}
	once    sync.Once
}

func newGate() *gate {
	return &gate{ch: make(chan struct{}), started: make(chan struct{})}
}

func (g *gate) Name() string { return "testgate" }

func (g *gate) Render(dst []complex128, ctx *emsim.Context) {
	g.once.Do(func() { close(g.started) })
	<-g.ch
}

func (g *gate) release() { close(g.ch) }

// gatedSceneFor wraps the default scene resolver, adding the gate to
// every scene it returns.
func gatedSceneFor(g *gate) func(string, int64, bool) (*emsim.Scene, error) {
	return func(system string, seed int64, environment bool) (*emsim.Scene, error) {
		sc, err := defaultSceneFor(system, seed, environment)
		if err != nil {
			return nil, err
		}
		sc.Add(g)
		return sc, nil
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newServer(t, Config{Workers: 1})
	base := listen(t, s)
	cases := []struct {
		name string
		body string
	}{
		{"empty", ``},
		{"not json", `{{{`},
		{"unknown field", `{"tenant":"a","system":"i7-desktop","scan":{"f1_hz":1,"bogus":2}}`},
		{"no tenant", `{"system":"i7-desktop","scan":{"f1_hz":300e3,"f2_hz":360e3,"fres_hz":500,"falt1_hz":43300,"fdelta_hz":500}}`},
		{"bad system", `{"tenant":"a","system":"nope","scan":{"f1_hz":300e3,"f2_hz":360e3,"fres_hz":500,"falt1_hz":43300,"fdelta_hz":500}}`},
		{"bad priority", `{"tenant":"a","priority":11,"system":"i7-desktop","scan":{"f1_hz":300e3,"f2_hz":360e3,"fres_hz":500,"falt1_hz":43300,"fdelta_hz":500}}`},
		{"inverted band", `{"tenant":"a","system":"i7-desktop","scan":{"f1_hz":2,"f2_hz":1,"fres_hz":500,"falt1_hz":43300,"fdelta_hz":500}}`},
		{"nan fres", `{"tenant":"a","system":"i7-desktop","scan":{"f1_hz":1,"f2_hz":2,"fres_hz":null,"falt1_hz":43300,"fdelta_hz":500}}`},
		{"over capture budget", `{"tenant":"a","system":"i7-desktop","scan":{"f1_hz":0,"f2_hz":4.0e9,"fres_hz":1,"falt1_hz":43300,"fdelta_hz":500,"max_fft":64}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(base+"/v1/scans", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var e map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
				t.Fatalf("error body missing: %v %v", e, err)
			}
		})
	}
}

func TestListFiltersByTenant(t *testing.T) {
	s := newServer(t, Config{Workers: 2, MaxActive: 2})
	base := listen(t, s)
	ids := map[string]string{}
	for i, tenant := range []string{"alpha", "beta", "alpha"} {
		st, code := httpSubmit(t, base, tinyRequest(tenant, int64(100+i)))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		ids[st.ID] = tenant
	}
	resp, err := http.Get(base + "/v1/scans?tenant=alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Scans []ScanStatus `json:"scans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Scans) != 2 {
		t.Fatalf("tenant filter returned %d scans, want 2", len(body.Scans))
	}
	for _, st := range body.Scans {
		if st.Tenant != "alpha" {
			t.Errorf("scan %s has tenant %q", st.ID, st.Tenant)
		}
	}
	for id := range ids {
		waitTerminal(t, base, id)
	}
}

func TestStatsAndHealth(t *testing.T) {
	s := newServer(t, Config{Workers: 1})
	base := listen(t, s)
	st, code := httpSubmit(t, base, tinyRequest("acme", 3))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitTerminal(t, base, st.ID)
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Submitted != 1 || stats.Completed != 1 {
		t.Errorf("stats %+v, want 1 submitted and completed", stats)
	}
	if stats.Shards != int64(5) {
		t.Errorf("shards %d, want 5 (one per ladder sweep)", stats.Shards)
	}
	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("healthz %d", hr.StatusCode)
	}
}

func TestResubmitIdenticalServedFromCache(t *testing.T) {
	s := newServer(t, Config{Workers: 2})
	base := listen(t, s)
	first, code := httpSubmit(t, base, tinyRequest("acme", 9))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	fin := waitTerminal(t, base, first.ID)
	if fin.State != StateDone {
		t.Fatalf("first run state %s (%s)", fin.State, fin.Error)
	}
	again, code := httpSubmit(t, base, tinyRequest("other-tenant", 9))
	if code != http.StatusOK {
		t.Fatalf("cached resubmit status %d, want 200", code)
	}
	if !again.Cached || again.State != StateDone {
		t.Fatalf("resubmit %+v, want cached done", again)
	}
	if again.ResultID != fin.ResultID {
		t.Fatalf("result ids differ: %s vs %s", again.ResultID, fin.ResultID)
	}
	if again.Detections != fin.Detections {
		t.Fatalf("cached detections %d, want %d", again.Detections, fin.Detections)
	}
	// A different seed is different work: a fresh job, not a cache hit.
	fresh, code := httpSubmit(t, base, tinyRequest("acme", 10))
	if code != http.StatusAccepted || fresh.Cached {
		t.Fatalf("different seed: status %d cached %v", code, fresh.Cached)
	}
	waitTerminal(t, base, fresh.ID)
	if fresh.ResultID == fin.ResultID {
		t.Fatal("different seeds share a result id")
	}
}

func TestServeShutsDownPromptlyWithSSEClient(t *testing.T) {
	g := newGate()
	s := newServer(t, Config{Workers: 2, MaxActive: 1, SceneFor: gatedSceneFor(g)})
	base := listen(t, s)
	st, code := httpSubmit(t, base, tinyRequest("acme", 21))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	<-g.started
	// Park an SSE client on the running job's live stream.
	resp, err := http.Get(base + "/v1/scans/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if line, err := br.ReadString('\n'); err != nil || !strings.HasPrefix(line, "id: ") {
		t.Fatalf("SSE first line %q, err %v", line, err)
	}
	g.release()
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Close did not return with an SSE client attached")
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	// Admission after shutdown answers 503 at the API level (the
	// listener may already be closed, so a transport error is fine too).
	if _, code := trySubmit(http.DefaultClient, base, tinyRequest("late", 99)); code != 0 &&
		code != http.StatusServiceUnavailable {
		t.Errorf("post-Close submit status %d, want 503 or refused connection", code)
	}
}

// trySubmit is httpSubmit without the test fatals: returns code 0 on
// transport errors.
func trySubmit(client *http.Client, base string, req *ScanRequest) (ScanStatus, int) {
	body, err := json.Marshal(req)
	if err != nil {
		return ScanStatus{}, 0
	}
	resp, err := client.Post(base+"/v1/scans", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return ScanStatus{}, 0
	}
	defer resp.Body.Close()
	var st ScanStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		_ = json.NewDecoder(resp.Body).Decode(&st)
	}
	return st, resp.StatusCode
}
