package service

import (
	"encoding/json"
	"fmt"
	"net/http"

	"fase/internal/obs"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/scans               submit a scan (202; 200 when served from cache)
//	GET    /v1/scans[?tenant=T]    list jobs in submission order
//	GET    /v1/scans/{id}          job status (live progress while running)
//	DELETE /v1/scans/{id}          cancel a queued or running job
//	GET    /v1/scans/{id}/result   archived run manifest (404 until done)
//	GET    /v1/scans/{id}/events   live event journal as SSE
//	GET    /v1/scans/{id}/progress live progress JSON
//	GET    /v1/stats               queue/worker/job counters
//	GET    /metrics                process metrics (JSON; ?format=prom)
//	GET    /healthz                liveness
//
// Admission failures answer 429 with a Retry-After header; malformed
// submissions answer 400. Every error body is {"error": "..."}.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scans", s.handleSubmit)
	mux.HandleFunc("GET /v1/scans", s.handleList)
	mux.HandleFunc("GET /v1/scans/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/scans/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/scans/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/scans/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/scans/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		var err error
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			err = obs.Default.WriteProm(w)
		} else {
			w.Header().Set("Content-Type", "application/json")
			err = obs.Default.WriteJSON(w)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusTooManyRequests {
		// Fair admission: tell rejected clients when to retry instead of
		// letting them busy-loop.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, c, err := parseScanRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	j, herr := s.Submit(req, c)
	if herr != nil {
		writeError(w, herr.status, herr.msg)
		return
	}
	status := http.StatusAccepted
	if j.stateNow() == StateDone {
		status = http.StatusOK // served from the run store
	}
	writeJSON(w, status, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs(r.URL.Query().Get("tenant"))
	out := make([]ScanStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	writeJSON(w, http.StatusOK, map[string]any{"scans": out})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("service: no scan %q", r.PathValue("id")))
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("service: no scan %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	m := j.result()
	if m == nil {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("service: scan %s is %s, no result", j.ID, j.stateNow()))
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	jr := j.journal()
	if jr == nil {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("service: scan %s has not started", j.ID))
		return
	}
	obs.ServeSSE(w, r, jr, s.done)
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	run := j.runNow()
	if run == nil {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("service: scan %s has not started", j.ID))
		return
	}
	writeJSON(w, http.StatusOK, run.Progress())
}
