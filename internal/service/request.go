// Package service is the FASE campaign server: a long-running HTTP
// service that accepts scan submissions, queues them under per-tenant
// quotas, shards each campaign's ladder sweeps across a bounded worker
// fleet, and archives results through the content-addressed run store.
//
// The sharded execution path is bit-identical to a serial
// core.Campaign.Run of the same (config, seed): both paths execute
// through core.ShardPlan — each shard derives its child seed from the
// campaign seed and its ladder index alone, renders on whichever worker
// picks it up, and the shards reduce in fixed ladder order. The
// integration tests verify the identity against runstore content hashes.
package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"fase/internal/activity"
	"fase/internal/core"
)

// DefaultActivity is the alternation pair used when a submission omits
// one — the paper's off-chip memory-vs-cache pair.
const DefaultActivity = "LDM/LDL1"

// maxRequestBytes bounds a submission body; anything larger is rejected
// before parsing.
const maxRequestBytes = 1 << 20

// ScanSpec is the campaign portion of a submission. Field names mirror
// the run manifest's resolved-config record, so a submission, the
// archived result's config block, and the CLI flags all speak the same
// vocabulary. Zero-valued optional fields take the campaign defaults
// (core.Campaign.withDefaults).
type ScanSpec struct {
	F1     float64 `json:"f1_hz"`
	F2     float64 `json:"f2_hz"`
	Fres   float64 `json:"fres_hz"`
	FAlt1  float64 `json:"falt1_hz"`
	FDelta float64 `json:"fdelta_hz"`

	NumAlts     int     `json:"num_alts,omitempty"`
	Averages    int     `json:"averages,omitempty"`
	MinScore    float64 `json:"min_score,omitempty"`
	SmoothBins  int     `json:"smooth_bins,omitempty"`
	MergeBins   int     `json:"merge_bins,omitempty"`
	MinElevated int     `json:"min_elevated,omitempty"`
	Seed        int64   `json:"seed"`
	MaxFFT      int     `json:"max_fft,omitempty"`

	// Adaptive/Budget/ReconFres select the budgeted coarse-to-fine
	// planner; adaptive jobs run unsharded (their capture schedule is
	// decided at run time) as a single worker task.
	Adaptive    bool    `json:"adaptive,omitempty"`
	Budget      int     `json:"budget,omitempty"`
	ReconFresHz float64 `json:"recon_fres_hz,omitempty"`
}

// ScanRequest is the POST /v1/scans submission body.
type ScanRequest struct {
	// Tenant namespaces quota accounting and listing. Required.
	Tenant string `json:"tenant"`
	// Priority orders the queue: 1 (lowest) to 9 (highest), 0 means 5.
	// Higher-priority jobs dispatch first; within a priority the queue
	// is FIFO.
	Priority int `json:"priority,omitempty"`
	// System names the machine model to scan (machine.Registry).
	System string `json:"system"`
	// Environment adds the metropolitan RF environment to the scene
	// (seeded by the scan seed, exactly like the CLI's -environment).
	Environment bool `json:"environment,omitempty"`
	// Activity is the X/Y alternation pair, e.g. "LDM/LDL1" (the
	// default).
	Activity string `json:"activity,omitempty"`
	// Scan is the campaign itself.
	Scan ScanSpec `json:"scan"`
}

// Campaign converts the request into a validated core.Campaign.
func (r *ScanRequest) Campaign() (core.Campaign, error) {
	pair := r.Activity
	if pair == "" {
		pair = DefaultActivity
	}
	x, y, err := activity.ParsePair(pair)
	if err != nil {
		return core.Campaign{}, err
	}
	sp := r.Scan
	c := core.Campaign{
		F1: sp.F1, F2: sp.F2, Fres: sp.Fres,
		FAlt1: sp.FAlt1, FDelta: sp.FDelta,
		NumAlts: sp.NumAlts, Averages: sp.Averages,
		MinScore: sp.MinScore, SmoothBins: sp.SmoothBins,
		MergeBins: sp.MergeBins, MinElevated: sp.MinElevated,
		X: x, Y: y,
		Seed:   sp.Seed,
		MaxFFT: sp.MaxFFT,
		// Shard rendering is single-threaded per shard: the worker
		// fleet, not the analyzer, is the service's concurrency bound.
		Parallelism: 1,
	}
	if sp.Adaptive || sp.Budget != 0 {
		c.Budget = sp.Budget
		c.Adaptive = &core.AdaptivePlan{ReconFres: sp.ReconFresHz}
	}
	if err := c.Validate(); err != nil {
		return core.Campaign{}, err
	}
	return c, nil
}

// validate checks the service-level fields (the campaign itself is
// checked by Campaign).
func (r *ScanRequest) validate() error {
	if r.Tenant == "" {
		return fmt.Errorf("service: submission needs a tenant")
	}
	if len(r.Tenant) > 64 {
		return fmt.Errorf("service: tenant name longer than 64 bytes")
	}
	if r.Priority < 0 || r.Priority > 9 {
		return fmt.Errorf("service: priority %d out of range (1–9, 0 = default)", r.Priority)
	}
	if r.System == "" {
		return fmt.Errorf("service: submission needs a system model")
	}
	return nil
}

// priority resolves the effective queue priority.
func (r *ScanRequest) priority() int {
	if r.Priority == 0 {
		return 5
	}
	return r.Priority
}

// parseScanRequest decodes and validates a submission body. Unknown
// fields are rejected so typos fail loudly instead of silently taking
// defaults.
func parseScanRequest(body io.Reader) (*ScanRequest, core.Campaign, error) {
	dec := json.NewDecoder(io.LimitReader(body, maxRequestBytes))
	dec.DisallowUnknownFields()
	var req ScanRequest
	if err := dec.Decode(&req); err != nil {
		return nil, core.Campaign{}, fmt.Errorf("service: parse submission: %w", err)
	}
	if err := req.validate(); err != nil {
		return nil, core.Campaign{}, err
	}
	c, err := req.Campaign()
	if err != nil {
		return nil, core.Campaign{}, err
	}
	return &req, c, nil
}

// resultConfig is the content-addressed identity of a service result:
// the scene parameters plus the defaults-resolved campaign config (the
// same record a direct core run stores in its manifest). runstore hashes
// its canonical JSON, so a submission's result id can be computed before
// running it, and resubmitting an identical (config, seed) resolves to
// the same archive entry.
type resultConfig struct {
	System      string `json:"system"`
	Environment bool   `json:"environment"`
	Scan        any    `json:"scan"`
}

// httpError is an admission failure with its HTTP status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errBadRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}
