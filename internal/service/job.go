package service

import (
	"context"
	"sync"
	"time"

	"fase/internal/core"
	"fase/internal/emsim"
	"fase/internal/obs"
)

// Job states, in lifecycle order. queued → running → one of the three
// terminal states; cancel-while-queued goes straight to cancelled.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// Job is one submitted scan. Identity is two-level: ID names this
// submission (unique per submit), ResultID is the content address of its
// result — the runstore hash of (system, environment, resolved campaign
// config) — shared by every submission of the same work.
type Job struct {
	ID       string
	ResultID string
	Tenant   string
	Priority int

	seq       int64 // admission order, the FIFO key within a priority
	heapIndex int   // slot in the queue heap; -1 once popped/removed

	campaign core.Campaign
	scene    *emsim.Scene
	system   string
	envOn    bool

	// ctx cancels the job; shards and the coordinator observe it.
	ctx    context.Context
	cancel context.CancelFunc

	submitted time.Time

	mu         sync.Mutex
	state      string
	errMsg     string
	cached     bool
	run        *obs.Run
	manifest   *obs.Manifest
	detections int
	captures   int64
	started    time.Time
	finished   time.Time
}

// setRunning transitions queued → running and installs the job's
// observability run. Returns false if the job was already cancelled.
func (j *Job) setRunning(run *obs.Run) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.run = run
	j.started = time.Now()
	return true
}

// finish moves the job to a terminal state (first transition wins) and
// returns whether this call performed it.
func (j *Job) finish(state, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminal(j.state) {
		return false
	}
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	if j.run != nil {
		j.captures = j.run.Captures.Value()
	}
	return true
}

// setResult records a completed job's archived manifest.
func (j *Job) setResult(m *obs.Manifest) {
	j.mu.Lock()
	j.manifest = m
	j.detections = len(m.Detections)
	j.mu.Unlock()
}

// journal returns the job's live journal, or nil before it starts.
func (j *Job) journal() *obs.Journal {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.run == nil {
		return nil
	}
	return j.run.Journal
}

// ScanStatus is the status JSON for one job.
type ScanStatus struct {
	ID       string `json:"id"`
	ResultID string `json:"result_id"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	System   string `json:"system"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	// Cached marks jobs served from the run store without rendering: an
	// identical (config, seed) had already completed.
	Cached        bool  `json:"cached,omitempty"`
	Detections    int   `json:"detections,omitempty"`
	Captures      int64 `json:"captures,omitempty"`
	SubmittedUnix int64 `json:"submitted_unix"`
	StartedUnix   int64 `json:"started_unix,omitempty"`
	FinishedUnix  int64 `json:"finished_unix,omitempty"`
	// Progress is the live run position while the job executes.
	Progress *obs.ProgressInfo `json:"progress,omitempty"`
}

// status snapshots the job.
func (j *Job) status() ScanStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := ScanStatus{
		ID: j.ID, ResultID: j.ResultID, Tenant: j.Tenant,
		Priority: j.Priority, System: j.system,
		State: j.state, Error: j.errMsg, Cached: j.cached,
		Detections:    j.detections,
		Captures:      j.captures,
		SubmittedUnix: j.submitted.Unix(),
	}
	if !j.started.IsZero() {
		st.StartedUnix = j.started.Unix()
	}
	if !j.finished.IsZero() {
		st.FinishedUnix = j.finished.Unix()
	}
	if j.state == StateRunning && j.run != nil {
		p := j.run.Progress()
		st.Progress = &p
		st.Captures = p.CapturesUsed
	}
	return st
}

// result returns the archived manifest, nil until the job is done.
func (j *Job) result() *obs.Manifest {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil
	}
	return j.manifest
}

// runNow returns the job's observability run, nil before it starts.
func (j *Job) runNow() *obs.Run {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.run
}

// stateNow returns the job's current state.
func (j *Job) stateNow() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}
