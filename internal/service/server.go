package service

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fase/internal/core"
	"fase/internal/emsim"
	"fase/internal/machine"
	"fase/internal/obs"
	"fase/internal/runstore"
	"fase/internal/specan"
)

// Process-wide service counters, exposed at /metrics alongside the rest
// of the fase_* catalogue. Per-server numbers live in Server.Stats.
var (
	svcSubmittedTotal = obs.Default.Counter("fase_service_submitted_total")
	svcRejectedTotal  = obs.Default.Counter("fase_service_rejected_total")
	svcCompletedTotal = obs.Default.Counter("fase_service_completed_total")
	svcFailedTotal    = obs.Default.Counter("fase_service_failed_total")
	svcCancelledTotal = obs.Default.Counter("fase_service_cancelled_total")
	svcCachedTotal    = obs.Default.Counter("fase_service_cached_total")
	svcShardsTotal    = obs.Default.Counter("fase_service_shards_total")
)

// Config parameterizes a campaign server. The zero value of every field
// takes a sensible default (see New).
type Config struct {
	// Workers is the shard-rendering fleet size — the service's true
	// concurrency bound, since every shard renders single-threaded.
	// Default: GOMAXPROCS.
	Workers int
	// MaxActive bounds how many jobs execute (hold coordinators) at
	// once; queued jobs beyond it wait. Default: 2.
	MaxActive int
	// QueueCapacity bounds queued (not yet running) jobs; admission
	// beyond it answers 429. Default: 64.
	QueueCapacity int
	// TenantQuota bounds one tenant's queued+running jobs; negative
	// disables the quota. Default: 8.
	TenantQuota int
	// StoreDir is the content-addressed run archive. Default: "runs".
	StoreDir string
	// SceneFor resolves a submission's scene. The default looks the
	// system up in machine.Registry and seeds the optional RF
	// environment with the scan seed, exactly like the CLI.
	SceneFor func(system string, seed int64, environment bool) (*emsim.Scene, error)
	// MaxCapturesPerJob and MaxSimSeconds are admission guards: a
	// submission whose exhaustive plan prices above either — or an
	// adaptive budget above the capture limit — is rejected with 400
	// before any rendering. They keep one tenant's giant scan from
	// wedging the fleet. Defaults: 4096 captures, 600 simulated
	// seconds.
	MaxCapturesPerJob int64
	MaxSimSeconds     float64
}

func defaultSceneFor(system string, seed int64, environment bool) (*emsim.Scene, error) {
	sys, err := machine.Lookup(system)
	if err != nil {
		return nil, err
	}
	return sys.Scene(seed, environment), nil
}

// Server is a running campaign service: an admission queue, a dispatcher
// feeding a bounded worker fleet, a job registry, and the run store.
// Create with New, expose with Handler or Listen, stop with Close.
type Server struct {
	cfg   Config
	store *runstore.Store

	base       context.Context
	cancelBase context.CancelFunc

	q      *queue
	tasks  chan func()
	active chan struct{} // MaxActive semaphore

	seq atomic.Int64

	mu    sync.Mutex
	jobs  map[string]*Job
	order []*Job // submission order, for listing

	running    atomic.Int64
	submitted  atomic.Int64
	rejected   atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
	cancelled  atomic.Int64
	cachedHits atomic.Int64
	shardsRun  atomic.Int64

	dispatchWG sync.WaitGroup
	workerWG   sync.WaitGroup
	jobWG      sync.WaitGroup

	// done closes at shutdown, unblocking SSE streams (obs.ServeSSE).
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error

	httpSrv *http.Server
	lis     net.Listener
	// Addr is the bound listen address after Listen (useful with ":0").
	Addr string
}

// New starts a campaign server: the worker fleet and dispatcher run
// immediately; no listener is opened until Listen (Handler serves
// in-process).
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 2
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 64
	}
	if cfg.TenantQuota == 0 {
		cfg.TenantQuota = 8
	}
	if cfg.TenantQuota < 0 {
		cfg.TenantQuota = 0 // unlimited
	}
	if cfg.StoreDir == "" {
		cfg.StoreDir = "runs"
	}
	if cfg.SceneFor == nil {
		cfg.SceneFor = defaultSceneFor
	}
	if cfg.MaxCapturesPerJob <= 0 {
		cfg.MaxCapturesPerJob = 4096
	}
	if cfg.MaxSimSeconds <= 0 {
		cfg.MaxSimSeconds = 600
	}
	store, err := runstore.Open(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		store:  store,
		q:      newQueue(cfg.QueueCapacity, cfg.TenantQuota),
		tasks:  make(chan func()),
		active: make(chan struct{}, cfg.MaxActive),
		jobs:   make(map[string]*Job),
		done:   make(chan struct{}),
	}
	s.base, s.cancelBase = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for task := range s.tasks {
				task()
			}
		}()
	}
	s.dispatchWG.Add(1)
	go s.dispatch()
	return s, nil
}

// dispatch moves jobs from the queue to coordinators: it waits for an
// active slot first and pops second, so the priority decision is made as
// late as possible — a high-priority job admitted while all slots were
// busy still jumps every waiting lower-priority job.
func (s *Server) dispatch() {
	defer s.dispatchWG.Done()
	for {
		select {
		case s.active <- struct{}{}:
		case <-s.base.Done():
			return
		}
		for {
			j := s.q.pop()
			if j != nil {
				s.jobWG.Add(1)
				go s.runJob(j)
				break
			}
			select {
			case <-s.q.signal:
			case <-s.base.Done():
				<-s.active
				return
			}
		}
	}
}

// Submit admits one scan: validated, priced, content-addressed, then
// queued (or served straight from the run store when an identical
// (config, seed) already completed). Returns the job, or an *httpError
// with the HTTP status a handler should answer.
func (s *Server) Submit(req *ScanRequest, c core.Campaign) (*Job, *httpError) {
	if s.base.Err() != nil {
		return nil, &httpError{status: http.StatusServiceUnavailable, msg: "service: shutting down"}
	}
	scene, err := s.cfg.SceneFor(req.System, c.Seed, req.Environment)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	if herr := s.price(c); herr != nil {
		return nil, herr
	}
	rc, err := c.ResolvedConfig()
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	resultID, err := runstore.ConfigID(resultConfig{
		System: req.System, Environment: req.Environment, Scan: rc})
	if err != nil {
		return nil, &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	seq := s.seq.Add(1)
	j := &Job{
		ID: fmt.Sprintf("j%06d", seq), ResultID: resultID,
		Tenant: req.Tenant, Priority: req.priority(), seq: seq, heapIndex: -1,
		campaign: c, scene: scene, system: req.System, envOn: req.Environment,
		submitted: time.Now(), state: StateQueued,
	}
	j.ctx, j.cancel = context.WithCancel(s.base)
	// Content-addressed result reuse: resolve the archive entry directly
	// by path (O(1), no store listing). A hit means this exact work —
	// same system, environment, resolved config, seed — already ran;
	// the job completes immediately without queueing, rendering, or
	// charging the tenant's quota.
	if m, _, rerr := s.store.Resolve(filepath.Join(s.store.Dir, resultID+".json")); rerr == nil {
		j.state = StateDone
		j.cached = true
		j.manifest = m
		j.detections = len(m.Detections)
		j.captures = m.Captures
		j.finished = time.Now()
		s.addJob(j)
		s.submitted.Add(1)
		s.cachedHits.Add(1)
		svcSubmittedTotal.Inc()
		svcCachedTotal.Inc()
		return j, nil
	}
	if aerr := s.q.admit(j); aerr != nil {
		s.rejected.Add(1)
		svcRejectedTotal.Inc()
		return nil, aerr.(*httpError)
	}
	s.addJob(j)
	s.submitted.Add(1)
	svcSubmittedTotal.Inc()
	return j, nil
}

// price rejects submissions whose measurement cost exceeds the per-job
// admission guards, using the same O(1) sweep pricing the adaptive
// planner budgets with — no rendering happens.
func (s *Server) price(c core.Campaign) *httpError {
	if c.Adaptive != nil {
		if int64(c.Budget) > s.cfg.MaxCapturesPerJob {
			return errBadRequest("service: budget %d exceeds the per-job capture limit %d",
				c.Budget, s.cfg.MaxCapturesPerJob)
		}
		return nil
	}
	plan, err := core.PlanShards(c)
	if err != nil {
		return errBadRequest("%v", err)
	}
	an := specan.New(plan.AnalyzerConfig(nil))
	caps := int64(len(plan.FAlts)) * an.SweepCaptures(c.F1, c.F2)
	sim := float64(len(plan.FAlts)) * an.TotalDuration(c.F1, c.F2)
	if caps <= 0 {
		return errBadRequest("service: campaign renders no captures")
	}
	if caps > s.cfg.MaxCapturesPerJob {
		return errBadRequest("service: campaign costs %d captures, above the per-job limit %d",
			caps, s.cfg.MaxCapturesPerJob)
	}
	if math.IsNaN(sim) || sim > s.cfg.MaxSimSeconds {
		return errBadRequest("service: campaign simulates %.3g s of analyzer time, above the per-job limit %g s",
			sim, s.cfg.MaxSimSeconds)
	}
	return nil
}

func (s *Server) addJob(j *Job) {
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	s.mu.Unlock()
}

// Job returns a submitted job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists jobs in submission order, optionally filtered by tenant.
func (s *Server) Jobs(tenant string) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, j := range s.order {
		if tenant == "" || j.Tenant == tenant {
			out = append(out, j)
		}
	}
	return out
}

// Cancel cancels a job. Queued jobs never start (their quota slot frees
// immediately); running jobs observe context cancellation mid-shard and
// discard partial work. Cancelling a terminal job is a no-op. Returns
// false if the id is unknown.
func (s *Server) Cancel(id string) (*Job, bool) {
	j, ok := s.Job(id)
	if !ok {
		return nil, false
	}
	j.cancel()
	if s.q.remove(j) {
		// Still queued: this call owns the terminal transition.
		s.terminate(j, StateCancelled, "cancelled while queued")
	}
	// Otherwise the dispatcher owns the job; its coordinator observes
	// the cancelled context and terminates it.
	return j, true
}

// terminate performs a job's terminal transition exactly once: state,
// journal close (ending SSE streams), quota release, counters.
func (s *Server) terminate(j *Job, state, errMsg string) {
	if !j.finish(state, errMsg) {
		return
	}
	if jr := j.journal(); jr != nil {
		jr.Close()
	}
	s.q.release(j.Tenant)
	switch state {
	case StateDone:
		s.completed.Add(1)
		svcCompletedTotal.Inc()
	case StateFailed:
		s.failed.Add(1)
		svcFailedTotal.Inc()
	case StateCancelled:
		s.cancelled.Add(1)
		svcCancelledTotal.Inc()
	}
}

// runJob is one job's coordinator: it drives the shard fan-out (or the
// unsharded adaptive run), reduces, archives, and terminates the job.
func (s *Server) runJob(j *Job) {
	defer s.jobWG.Done()
	defer func() { <-s.active }()
	if j.ctx.Err() != nil {
		s.terminate(j, StateCancelled, "cancelled before start")
		return
	}
	run := obs.NewRun()
	run.Journal = obs.NewJournal()
	if !j.setRunning(run) {
		s.terminate(j, StateCancelled, "cancelled before start")
		return
	}
	s.running.Add(1)
	defer s.running.Add(-1)
	var res *core.Result
	var err error
	if j.campaign.Adaptive != nil {
		res, err = s.runAdaptiveJob(j, run)
	} else {
		res, err = s.runShardedJob(j, run)
	}
	switch {
	case j.ctx.Err() != nil:
		// Partial work — shards, spectra, any manifest — is discarded
		// wholesale; nothing reaches the run store.
		s.terminate(j, StateCancelled, "cancelled while running")
	case err != nil:
		s.terminate(j, StateFailed, err.Error())
	default:
		m := run.Manifest()
		if m == nil || res == nil {
			s.terminate(j, StateFailed, "service: run produced no manifest")
			return
		}
		// Rewrap the manifest config with the scene parameters so the
		// archive entry lands at the job's content address (ResultID).
		m.Config = resultConfig{System: j.system, Environment: j.envOn, Scan: m.Config}
		if _, aerr := s.store.Add(m); aerr != nil {
			s.terminate(j, StateFailed, aerr.Error())
			return
		}
		j.setResult(m)
		s.terminate(j, StateDone, "")
	}
}

// runShardedJob fans an exhaustive campaign's ladder sweeps out to the
// worker fleet as independent shard tasks and reduces them in fixed
// ladder order. Each shard gets its own single-threaded analyzer — the
// fleet is the concurrency bound — while one shared StaticCache keeps
// the cross-sweep static-layer reuse the serial path enjoys. Bit-
// identity with the serial path holds because both execute the same
// core.ShardPlan methods with the same seeds.
func (s *Server) runShardedJob(j *Job, run *obs.Run) (*core.Result, error) {
	plan, err := core.PlanShards(j.campaign)
	if err != nil {
		return nil, err
	}
	runner := &core.Runner{Scene: j.scene, Obs: run}
	var camp obs.Span
	if run != nil {
		camp = run.Tracer.Begin("campaign")
	}
	acfg := plan.AnalyzerConfig(run)
	acfg.Parallelism = 1
	acfg.Statics = specan.NewStaticCache()
	plan.Begin(specan.New(acfg), run)
	ms := make([]core.Measurement, len(plan.FAlts))
	endSweeps := run.Stage("sweeps")
	sweepsSpan := camp.Child("sweeps")
	var wg sync.WaitGroup
	for i := range plan.FAlts {
		i := i
		wg.Add(1)
		task := func() {
			defer wg.Done()
			if j.ctx.Err() != nil {
				return
			}
			s.shardsRun.Add(1)
			svcShardsTotal.Inc()
			ms[i] = runner.RenderShard(j.ctx, specan.New(acfg), plan, i, run, sweepsSpan)
		}
		select {
		case s.tasks <- task:
		case <-j.ctx.Done():
			wg.Done() // task never enqueued
		}
	}
	wg.Wait()
	sweepsSpan.End()
	endSweeps()
	if j.ctx.Err() != nil {
		camp.End()
		return nil, nil
	}
	return runner.ReduceShards(plan, ms, run, camp)
}

// runAdaptiveJob runs an adaptive campaign as a single unsharded task on
// the fleet: its capture schedule is decided at run time by the budget
// planner, so there is no static shard decomposition to distribute.
func (s *Server) runAdaptiveJob(j *Job, run *obs.Run) (*core.Result, error) {
	runner := &core.Runner{Scene: j.scene, Obs: run}
	var res *core.Result
	var err error
	var wg sync.WaitGroup
	wg.Add(1)
	task := func() {
		defer wg.Done()
		res, err = runner.RunE(j.campaign)
	}
	select {
	case s.tasks <- task:
	case <-j.ctx.Done():
		wg.Done()
		return nil, nil
	}
	wg.Wait()
	if j.ctx.Err() != nil {
		return nil, nil
	}
	return res, err
}

// Stats is the /v1/stats snapshot.
type Stats struct {
	Workers       int   `json:"workers"`
	MaxActive     int   `json:"max_active"`
	QueueCapacity int   `json:"queue_capacity"`
	TenantQuota   int   `json:"tenant_quota"`
	QueueDepth    int   `json:"queue_depth"`
	MaxQueueDepth int   `json:"max_queue_depth"`
	Running       int64 `json:"running"`
	Submitted     int64 `json:"submitted_total"`
	Rejected      int64 `json:"rejected_total"`
	Completed     int64 `json:"completed_total"`
	Failed        int64 `json:"failed_total"`
	Cancelled     int64 `json:"cancelled_total"`
	Cached        int64 `json:"cached_total"`
	Shards        int64 `json:"shards_total"`
}

// Stats snapshots the server.
func (s *Server) Stats() Stats {
	depth, maxDepth := s.q.depth()
	return Stats{
		Workers: s.cfg.Workers, MaxActive: s.cfg.MaxActive,
		QueueCapacity: s.cfg.QueueCapacity, TenantQuota: s.cfg.TenantQuota,
		QueueDepth: depth, MaxQueueDepth: maxDepth,
		Running:   s.running.Load(),
		Submitted: s.submitted.Load(), Rejected: s.rejected.Load(),
		Completed: s.completed.Load(), Failed: s.failed.Load(),
		Cancelled: s.cancelled.Load(), Cached: s.cachedHits.Load(),
		Shards: s.shardsRun.Load(),
	}
}

// Listen opens addr and serves Handler on it in a background goroutine,
// returning the bound address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("service: listen %s: %w", addr, err)
	}
	s.lis = lis
	s.Addr = lis.Addr().String()
	s.httpSrv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.httpSrv.Serve(lis) }()
	return s.Addr, nil
}

// Close shuts the service down: admission stops (503), queued jobs are
// cancelled without starting, running jobs observe context cancellation
// and discard partial work, the worker fleet drains, SSE streams end,
// and the HTTP listener (if any) shuts down gracefully. Safe to call
// more than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.cancelBase()
		for _, j := range s.q.close() {
			j.cancel()
			s.terminate(j, StateCancelled, "service shutting down")
		}
		s.dispatchWG.Wait()
		s.jobWG.Wait()
		close(s.tasks)
		s.workerWG.Wait()
		close(s.done)
		if s.httpSrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := s.httpSrv.Shutdown(ctx); err != nil {
				s.closeErr = s.httpSrv.Close()
			}
		}
	})
	return s.closeErr
}
