package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

func mkJob(tenant string, priority int, seq int64) *Job {
	return &Job{ID: tenant, Tenant: tenant, Priority: priority, seq: seq, heapIndex: -1}
}

func TestQueuePriorityThenFIFO(t *testing.T) {
	q := newQueue(16, 0)
	// Admission order deliberately scrambles priorities; pop order must
	// be priority-descending, FIFO within equal priority.
	jobs := []*Job{
		mkJob("a", 5, 1), mkJob("b", 9, 2), mkJob("c", 5, 3),
		mkJob("d", 1, 4), mkJob("e", 9, 5), mkJob("f", 5, 6),
	}
	for _, j := range jobs {
		if err := q.admit(j); err != nil {
			t.Fatalf("admit %s: %v", j.ID, err)
		}
	}
	want := []string{"b", "e", "a", "c", "f", "d"}
	for i, id := range want {
		j := q.pop()
		if j == nil || j.ID != id {
			t.Fatalf("pop %d: got %v, want %s", i, j, id)
		}
		if j.heapIndex != -1 {
			t.Fatalf("popped job %s keeps heap index %d", j.ID, j.heapIndex)
		}
	}
	if q.pop() != nil {
		t.Fatal("pop on empty queue returned a job")
	}
}

func TestQueueCapacityRejects(t *testing.T) {
	q := newQueue(2, 0)
	if err := q.admit(mkJob("a", 5, 1)); err != nil {
		t.Fatal(err)
	}
	if err := q.admit(mkJob("b", 5, 2)); err != nil {
		t.Fatal(err)
	}
	err := q.admit(mkJob("c", 5, 3))
	herr, ok := err.(*httpError)
	if !ok || herr.status != http.StatusTooManyRequests {
		t.Fatalf("admit over capacity: %v, want 429", err)
	}
	// Draining one admits again.
	q.pop()
	if err := q.admit(mkJob("c", 5, 4)); err != nil {
		t.Fatalf("admit after drain: %v", err)
	}
}

func TestQueueTenantQuota(t *testing.T) {
	q := newQueue(16, 2)
	if err := q.admit(mkJob("acme", 5, 1)); err != nil {
		t.Fatal(err)
	}
	if err := q.admit(mkJob("acme", 5, 2)); err != nil {
		t.Fatal(err)
	}
	err := q.admit(mkJob("acme", 9, 3))
	herr, ok := err.(*httpError)
	if !ok || herr.status != http.StatusTooManyRequests {
		t.Fatalf("admit over quota: %v, want 429", err)
	}
	// Other tenants are unaffected — the quota is what keeps one tenant
	// from starving the rest.
	if err := q.admit(mkJob("other", 1, 4)); err != nil {
		t.Fatalf("other tenant blocked by acme's quota: %v", err)
	}
	// Quota counts queued+running: popping does not free the slot...
	q.pop()
	if err := q.admit(mkJob("acme", 5, 5)); err == nil {
		t.Fatal("popped (running) job stopped counting against quota")
	}
	// ...release does.
	q.release("acme")
	if err := q.admit(mkJob("acme", 5, 6)); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	if got := q.tenantLoad("acme"); got != 2 {
		t.Fatalf("tenant load %d, want 2", got)
	}
}

func TestQueueRemoveOwnership(t *testing.T) {
	q := newQueue(16, 0)
	a, b := mkJob("a", 5, 1), mkJob("b", 5, 2)
	if err := q.admit(a); err != nil {
		t.Fatal(err)
	}
	if err := q.admit(b); err != nil {
		t.Fatal(err)
	}
	if !q.remove(a) {
		t.Fatal("remove of queued job returned false")
	}
	if q.remove(a) {
		t.Fatal("second remove of same job returned true")
	}
	if j := q.pop(); j == nil || j.ID != "b" {
		t.Fatalf("pop after remove: %v, want b", j)
	}
	if q.remove(b) {
		t.Fatal("remove of popped job returned true — dispatcher owns it")
	}
}

func TestQueueReleaseNegativePanics(t *testing.T) {
	q := newQueue(16, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	q.release("ghost")
}

func TestQueueCloseDrainsAndRefuses(t *testing.T) {
	q := newQueue(16, 0)
	for i := int64(1); i <= 3; i++ {
		if err := q.admit(mkJob("t", 5, i)); err != nil {
			t.Fatal(err)
		}
	}
	drained := q.close()
	if len(drained) != 3 {
		t.Fatalf("close drained %d jobs, want 3", len(drained))
	}
	err := q.admit(mkJob("t", 5, 9))
	herr, ok := err.(*httpError)
	if !ok || herr.status != http.StatusServiceUnavailable {
		t.Fatalf("admit after close: %v, want 503", err)
	}
	if cur, _ := q.depth(); cur != 0 {
		t.Fatalf("depth after close %d, want 0", cur)
	}
}

func TestQueueMaxDepthHighWater(t *testing.T) {
	q := newQueue(16, 0)
	for i := int64(1); i <= 5; i++ {
		if err := q.admit(mkJob("t", 5, i)); err != nil {
			t.Fatal(err)
		}
	}
	q.pop()
	q.pop()
	cur, max := q.depth()
	if cur != 3 || max != 5 {
		t.Fatalf("depth (%d, %d), want (3, 5)", cur, max)
	}
}

// FuzzSubmitScan throws arbitrary request bodies at the submit
// endpoint: malformed input must answer 400 and nothing may panic. The
// server is real — valid submissions render — but sized so fuzz
// iterations stay cheap and over-budget scans bounce at admission.
func FuzzSubmitScan(f *testing.F) {
	s, err := New(Config{
		Workers: 2, MaxActive: 1, QueueCapacity: 4, TenantQuota: 2,
		StoreDir: f.TempDir(), MaxCapturesPerJob: 64, MaxSimSeconds: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	h := s.Handler()
	f.Add([]byte(`{"tenant":"a","system":"i7-desktop","scan":{"f1_hz":300e3,"f2_hz":360e3,"fres_hz":500,"falt1_hz":43300,"fdelta_hz":500,"seed":1}}`))
	f.Add([]byte(`{"tenant":"a","priority":9,"system":"i7-desktop","environment":true,"scan":{"f1_hz":1,"f2_hz":2}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{{{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"tenant":"a","system":"i7-desktop","scan":{"f1_hz":-1e308,"f2_hz":1e308,"fres_hz":1e-300,"falt1_hz":1,"fdelta_hz":1}}`))
	f.Add([]byte(`{"tenant":"a","system":"i7-desktop","scan":{"adaptive":true,"budget":-5}}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/scans", bytes.NewReader(body))
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusAccepted, http.StatusBadRequest,
			http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Fatalf("submit answered %d for body %q", rec.Code, body)
		}
	})
}
