package service

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestCancelQueuedNeverStarts covers cancel before dispatch: the job
// must never render, its meter and counters must stay untouched, and
// its tenant's quota slot must free immediately.
func TestCancelQueuedNeverStarts(t *testing.T) {
	g := newGate()
	s := newServer(t, Config{Workers: 2, MaxActive: 1, SceneFor: gatedSceneFor(g)})
	base := listen(t, s)

	// First job occupies the only active slot, blocked mid-render.
	first, code := httpSubmit(t, base, tinyRequest("alpha", 31))
	if code != http.StatusAccepted {
		t.Fatalf("submit first: %d", code)
	}
	<-g.started

	// Second job is stuck behind it in the queue. Use an adaptive spec so
	// "meter untouched" is observable: a budget meter only exists once an
	// adaptive run starts.
	req := tinyRequest("alpha", 32)
	req.Scan.Adaptive = true
	req.Scan.Budget = 40
	req.Scan.ReconFresHz = 2000
	second, code := httpSubmit(t, base, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit second: %d", code)
	}
	if load := s.q.tenantLoad("alpha"); load != 2 {
		t.Fatalf("tenant load %d, want 2", load)
	}

	st := httpCancel(t, base, second.ID)
	if st.State != StateCancelled {
		t.Fatalf("cancelled queued job state %s", st.State)
	}
	if st.StartedUnix != 0 {
		t.Fatal("cancelled queued job reports a start time")
	}
	if st.Captures != 0 {
		t.Fatalf("cancelled queued job charged %d captures", st.Captures)
	}
	j, ok := s.Job(second.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if j.runNow() != nil {
		t.Fatal("cancelled queued job has an observability run — it started")
	}
	// Quota slot freed immediately — only the running job holds one.
	if load := s.q.tenantLoad("alpha"); load != 1 {
		t.Fatalf("tenant load after queued cancel %d, want 1", load)
	}

	g.release()
	fin := waitTerminal(t, base, first.ID)
	if fin.State != StateDone {
		t.Fatalf("first job finished %s: %s", fin.State, fin.Error)
	}
	if load := s.q.tenantLoad("alpha"); load != 0 {
		t.Fatalf("tenant load after completion %d, want 0", load)
	}
	if got := s.Stats(); got.Cancelled != 1 || got.Completed != 1 {
		t.Fatalf("stats %+v, want 1 cancelled and 1 completed", got)
	}
}

// TestCancelRunningDiscardsPartialWork covers cancel mid-shard: the
// running job observes context cancellation, partial shard output is
// discarded, and nothing reaches the run store — a resubmission of the
// identical (config, seed) renders from scratch.
func TestCancelRunningDiscardsPartialWork(t *testing.T) {
	g := newGate()
	dir := t.TempDir()
	s := newServer(t, Config{Workers: 2, MaxActive: 1, StoreDir: dir,
		SceneFor: gatedSceneFor(g)})
	base := listen(t, s)

	st, code := httpSubmit(t, base, tinyRequest("beta", 41))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	<-g.started // at least one shard is mid-render

	httpCancel(t, base, st.ID)
	g.release() // unblock renders; remaining captures observe the context
	fin := waitTerminal(t, base, st.ID)
	if fin.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", fin.State)
	}
	// Discard contract: no archive entry at the job's content address.
	if _, err := os.Stat(filepath.Join(dir, st.ResultID+".json")); !os.IsNotExist(err) {
		t.Fatalf("cancelled job reached the run store: %v", err)
	}
	if load := s.q.tenantLoad("beta"); load != 0 {
		t.Fatalf("tenant load after running cancel %d, want 0", load)
	}
	// The result endpoint has nothing to serve.
	resp, err := http.Get(base + "/v1/scans/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("result of cancelled job: %d, want 404", resp.StatusCode)
	}

	// Resubmitting the identical (config, seed) is a fresh render, not a
	// cache hit — partial work must not poison the store.
	again, code := httpSubmit(t, base, tinyRequest("beta", 41))
	if code != http.StatusAccepted || again.Cached {
		t.Fatalf("resubmit after cancel: status %d cached %v, want fresh 202", code, again.Cached)
	}
	if again.ResultID != st.ResultID {
		t.Fatalf("resubmit result id %s, want %s", again.ResultID, st.ResultID)
	}
	fin2 := waitTerminal(t, base, again.ID)
	if fin2.State != StateDone {
		t.Fatalf("resubmit finished %s: %s", fin2.State, fin2.Error)
	}
	if _, err := os.Stat(filepath.Join(dir, st.ResultID+".json")); err != nil {
		t.Fatalf("completed resubmit missing from store: %v", err)
	}

	// Third submission of the same work now rides the store: cached,
	// instant, same result id, and the store still holds exactly one
	// entry for it.
	third, code := httpSubmit(t, base, tinyRequest("gamma", 41))
	if code != http.StatusOK || !third.Cached || third.State != StateDone {
		t.Fatalf("third submit: status %d %+v, want cached done", code, third)
	}
	if third.ResultID != st.ResultID {
		t.Fatalf("cached result id %s, want %s", third.ResultID, st.ResultID)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("store holds %d manifests, want exactly 1", n)
	}
}

// TestCancelTerminalIsNoOp: cancelling a finished job changes nothing.
func TestCancelTerminalIsNoOp(t *testing.T) {
	s := newServer(t, Config{Workers: 2})
	base := listen(t, s)
	st, code := httpSubmit(t, base, tinyRequest("acme", 51))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	fin := waitTerminal(t, base, st.ID)
	if fin.State != StateDone {
		t.Fatalf("finished %s", fin.State)
	}
	got := httpCancel(t, base, st.ID)
	if got.State != StateDone || got.Detections != fin.Detections {
		t.Fatalf("cancel of done job mutated it: %+v", got)
	}
	if s.Stats().Cancelled != 0 {
		t.Fatal("cancel of done job bumped the cancelled counter")
	}
	// Give counters a beat and confirm completion stayed at 1.
	time.Sleep(10 * time.Millisecond)
	if got := s.Stats(); got.Completed != 1 {
		t.Fatalf("completed %d, want 1", got.Completed)
	}
}
