// Package loadtest is the campaign service's in-process load-test
// harness: it drives a running server over real HTTP with N concurrent
// tenants submitting seeded campaigns, records submit-to-complete
// latency percentiles and saturation throughput, and reports the
// deterministic job accounting (jobs, shards, detections) that the
// Makefile's service-load gate compares exactly against the committed
// BENCH_service.json baseline.
package loadtest

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fase/internal/service"
)

// Options configures one load run against a service at BaseURL.
type Options struct {
	BaseURL string
	// Tenants × JobsPerTenant concurrent clients each submit one job
	// (retrying on 429 until admitted) and poll it to completion.
	Tenants       int
	JobsPerTenant int
	// System and Spec template every submission; each job's seed is
	// BaseSeed + tenant*1000 + job, so the seed set — and with it the
	// run's total detections — is a pure function of the options.
	System   string
	Spec     service.ScanSpec
	BaseSeed int64
	// RetryDelay paces 429 retries (default 10ms); JobTimeout bounds one
	// job's submit-to-complete wait (default 120s).
	RetryDelay time.Duration
	JobTimeout time.Duration
}

// Report is one load run's outcome. Every field is an integer so the
// flat JSON baseline can be compared with shell arithmetic; the
// jobs/shards/detections fields are deterministic for a given Options
// and fresh store, the latency and throughput fields are the measured
// performance.
type Report struct {
	Tenants       int64 `json:"service_tenants"`
	JobsPerTenant int64 `json:"service_jobs_per_tenant"`
	JobsTotal     int64 `json:"service_jobs_total"`
	JobsCompleted int64 `json:"service_jobs_completed"`
	JobsCached    int64 `json:"service_jobs_cached"`
	Retries429    int64 `json:"service_retries_429"`
	ShardsTotal   int64 `json:"service_shards_total"`
	Detections    int64 `json:"service_detections_total"`
	MaxQueueDepth int64 `json:"service_max_queue_depth"`

	P50Micros  int64 `json:"service_p50_us"`
	P95Micros  int64 `json:"service_p95_us"`
	P99Micros  int64 `json:"service_p99_us"`
	ElapsedMS  int64 `json:"service_elapsed_ms"`
	Throughput int64 `json:"service_throughput_millijobs_per_sec"`
}

// Run executes the load test and aggregates the report. It fails on the
// first unexpected HTTP status or a job that does not complete — the
// harness asserts full completion, so the deterministic counters are
// meaningful.
func Run(opts Options) (*Report, error) {
	if opts.RetryDelay <= 0 {
		opts.RetryDelay = 10 * time.Millisecond
	}
	if opts.JobTimeout <= 0 {
		opts.JobTimeout = 120 * time.Second
	}
	n := opts.Tenants * opts.JobsPerTenant
	if n <= 0 {
		return nil, fmt.Errorf("loadtest: no jobs to run")
	}
	client := &http.Client{Timeout: 10 * time.Second}
	latencies := make([]time.Duration, n)
	var detections, cached, retries atomic.Int64
	errs := make(chan error, n)
	start := time.Now()
	var wg sync.WaitGroup
	for tn := 0; tn < opts.Tenants; tn++ {
		for i := 0; i < opts.JobsPerTenant; i++ {
			wg.Add(1)
			go func(tn, i int) {
				defer wg.Done()
				req := &service.ScanRequest{
					Tenant: fmt.Sprintf("load-%d", tn),
					System: opts.System,
					Scan:   opts.Spec,
				}
				req.Scan.Seed = opts.BaseSeed + int64(tn)*1000 + int64(i)
				t0 := time.Now()
				st, err := submit(client, opts, req, &retries)
				if err != nil {
					errs <- fmt.Errorf("tenant %d job %d: %w", tn, i, err)
					return
				}
				fin, err := awaitDone(client, opts, st)
				if err != nil {
					errs <- fmt.Errorf("tenant %d job %d: %w", tn, i, err)
					return
				}
				latencies[tn*opts.JobsPerTenant+i] = time.Since(t0)
				detections.Add(int64(fin.Detections))
				if fin.Cached {
					cached.Add(1)
				}
			}(tn, i)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}

	var stats service.Stats
	if err := getJSON(client, opts.BaseURL+"/v1/stats", &stats); err != nil {
		return nil, fmt.Errorf("loadtest: stats: %w", err)
	}
	sorted := make([]time.Duration, n)
	copy(sorted, latencies)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	return &Report{
		Tenants:       int64(opts.Tenants),
		JobsPerTenant: int64(opts.JobsPerTenant),
		JobsTotal:     int64(n),
		JobsCompleted: stats.Completed,
		JobsCached:    cached.Load(),
		Retries429:    retries.Load(),
		ShardsTotal:   stats.Shards,
		Detections:    detections.Load(),
		MaxQueueDepth: int64(stats.MaxQueueDepth),
		P50Micros:     percentile(sorted, 50).Microseconds(),
		P95Micros:     percentile(sorted, 95).Microseconds(),
		P99Micros:     percentile(sorted, 99).Microseconds(),
		ElapsedMS:     elapsed.Milliseconds(),
		Throughput:    int64(float64(n) / elapsed.Seconds() * 1000),
	}, nil
}

// submit POSTs one job, retrying fair-admission rejections (429) until
// the queue or the tenant's quota frees a slot.
func submit(client *http.Client, opts Options, req *service.ScanRequest, retries *atomic.Int64) (service.ScanStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return service.ScanStatus{}, err
	}
	deadline := time.Now().Add(opts.JobTimeout)
	for {
		resp, err := client.Post(opts.BaseURL+"/v1/scans", "application/json",
			strings.NewReader(string(body)))
		if err != nil {
			return service.ScanStatus{}, err
		}
		switch resp.StatusCode {
		case http.StatusOK, http.StatusAccepted:
			var st service.ScanStatus
			err := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			return st, err
		case http.StatusTooManyRequests:
			resp.Body.Close()
			retries.Add(1)
			if time.Now().After(deadline) {
				return service.ScanStatus{}, fmt.Errorf("still rejected at deadline")
			}
			time.Sleep(opts.RetryDelay)
		default:
			resp.Body.Close()
			return service.ScanStatus{}, fmt.Errorf("submit status %d", resp.StatusCode)
		}
	}
}

// awaitDone polls a job until it completes (any other terminal state is
// a harness failure).
func awaitDone(client *http.Client, opts Options, st service.ScanStatus) (service.ScanStatus, error) {
	deadline := time.Now().Add(opts.JobTimeout)
	for {
		if st.State == service.StateDone {
			return st, nil
		}
		if st.State == service.StateFailed || st.State == service.StateCancelled {
			return st, fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s still %s at deadline", st.ID, st.State)
		}
		time.Sleep(2 * time.Millisecond)
		if err := getJSON(client, opts.BaseURL+"/v1/scans/"+st.ID, &st); err != nil {
			return st, err
		}
	}
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// percentile returns the p-th percentile of sorted latencies
// (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}
