package loadtest

import (
	"encoding/json"
	"os"
	"testing"

	"fase/internal/service"
)

// tinySpec is the shared fast campaign: one 256-point segment per sweep,
// 4 averages × 5 ladder sweeps = 20 captures per job.
func tinySpec() service.ScanSpec {
	return service.ScanSpec{
		F1: 300e3, F2: 360e3, Fres: 500,
		FAlt1: 43.3e3, FDelta: 500,
	}
}

// TestServiceLoad is the load-test harness entry point. A plain `go
// test` runs a reduced smoke load (8 jobs) and writes nothing. With
// FASE_BENCH_SERVICE_OUT set — as `make service-load` and a deliberate
// baseline refresh do — it runs the full load (10 tenants × 6 jobs,
// 60 concurrent campaigns against a deliberately saturated queue) and
// writes the report to that path for the regression gate.
func TestServiceLoad(t *testing.T) {
	out := os.Getenv("FASE_BENCH_SERVICE_OUT")
	opts := Options{
		Tenants: 4, JobsPerTenant: 2,
		System: "i7-desktop", Spec: tinySpec(), BaseSeed: 100,
	}
	if out != "" {
		opts.Tenants, opts.JobsPerTenant = 10, 6
	}

	// A deliberately small server: the 60-client full load saturates the
	// queue and the per-tenant quotas, so the report measures fair
	// admission under pressure, not an idle fast path.
	s, err := service.New(service.Config{
		Workers: 4, MaxActive: 3, QueueCapacity: 16, TenantQuota: 4,
		StoreDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	opts.BaseURL = "http://" + addr

	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("load: %d jobs, p50 %dus p95 %dus p99 %dus, %d millijobs/s, %d retries, max depth %d, %d detections",
		rep.JobsTotal, rep.P50Micros, rep.P95Micros, rep.P99Micros,
		rep.Throughput, rep.Retries429, rep.MaxQueueDepth, rep.Detections)

	// Invariants that hold at any load size: full completion, one shard
	// task per ladder sweep, a fresh store (no cache hits with unique
	// seeds), and sane latency ordering.
	if rep.JobsCompleted != rep.JobsTotal {
		t.Fatalf("completed %d of %d jobs", rep.JobsCompleted, rep.JobsTotal)
	}
	if want := rep.JobsTotal * 5; rep.ShardsTotal != want {
		t.Fatalf("shards %d, want %d (5 per job)", rep.ShardsTotal, want)
	}
	if rep.JobsCached != 0 {
		t.Fatalf("%d cache hits with unique seeds", rep.JobsCached)
	}
	if rep.P50Micros > rep.P95Micros || rep.P95Micros > rep.P99Micros {
		t.Fatalf("latency percentiles out of order: %d/%d/%d",
			rep.P50Micros, rep.P95Micros, rep.P99Micros)
	}
	if rep.Throughput <= 0 {
		t.Fatal("throughput is zero")
	}

	if out == "" {
		return
	}
	writeReport(t, out, rep)
}

// writeReport merges the report into the flat one-key-per-line JSON
// baseline format the Makefile gate reads with sed (the same read-merge
// pattern as BENCH_kernels.json).
func writeReport(t *testing.T, path string, rep *Report) {
	t.Helper()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	fields := map[string]int64{}
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	merged := map[string]int64{}
	if prev, err := os.ReadFile(path); err == nil && len(prev) > 0 {
		if err := json.Unmarshal(prev, &merged); err != nil {
			t.Fatalf("corrupt service baseline %s: %v", path, err)
		}
	}
	for k, v := range fields {
		merged[k] = v
	}
	out, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
