package service

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"fase/internal/core"
	"fase/internal/machine"
	"fase/internal/obs"
	"fase/internal/runstore"
)

// canonicalize puts a journal into comparable form: deterministic
// (track, tseq) order with the wall-clock and arrival-order fields
// zeroed. Mirrors what obs.WriteJSONL does for archived journals.
func canonicalize(events []obs.Event) []obs.Event {
	out := make([]obs.Event, len(events))
	copy(out, events)
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Track != out[b].Track {
			return out[a].Track < out[b].Track
		}
		return out[a].TSeq < out[b].TSeq
	})
	for i := range out {
		out[i].Seq = 0
		out[i].T = 0
		out[i].WallSeconds = 0
	}
	return out
}

// TestServiceEndToEndBitIdentical is the service's ground-truth check:
// a campaign submitted over real HTTP and executed as sharded tasks on
// the worker fleet must produce byte-identical results to the same
// (config, seed) run directly through core.Campaign — same runstore
// content hash, same detections, same capture count, and an equivalent
// canonical event journal.
func TestServiceEndToEndBitIdentical(t *testing.T) {
	dir := t.TempDir()
	s := newServer(t, Config{Workers: 4, MaxActive: 2, StoreDir: dir})
	base := listen(t, s)

	req := tinyRequest("acme", 7)
	st, code := httpSubmit(t, base, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	fin := waitTerminal(t, base, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job finished %s: %s", fin.State, fin.Error)
	}

	// Direct serial run of the exact same (config, seed).
	c, err := req.Campaign()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := machine.Lookup(req.System)
	if err != nil {
		t.Fatal(err)
	}
	run := obs.NewRun()
	run.Journal = obs.NewJournal()
	runner := &core.Runner{Scene: sys.Scene(c.Seed, req.Environment), Obs: run}
	res, err := runner.RunE(c)
	if err != nil {
		t.Fatal(err)
	}
	m := run.Manifest()
	if m == nil {
		t.Fatal("direct run produced no manifest")
	}

	// Identity: the service's result id must equal the content hash of
	// the direct run's resolved config under the same (system,
	// environment) wrapper.
	wantID, err := runstore.ConfigID(resultConfig{
		System: req.System, Environment: req.Environment, Scan: m.Config})
	if err != nil {
		t.Fatal(err)
	}
	if fin.ResultID != wantID {
		t.Fatalf("service result id %s, direct config hash %s", fin.ResultID, wantID)
	}
	if _, err := os.Stat(filepath.Join(dir, wantID+".json")); err != nil {
		t.Fatalf("archived manifest missing at content address: %v", err)
	}

	// Payload: the archived manifest must carry the identical
	// deterministic measurement.
	resp, err := http.Get(base + "/v1/scans/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got := decodeManifest(t, resp)
	if got.Captures != m.Captures {
		t.Errorf("captures: service %d, direct %d", got.Captures, m.Captures)
	}
	if got.SimulatedAnalyzerSeconds != m.SimulatedAnalyzerSeconds {
		t.Errorf("simulated seconds: service %v, direct %v",
			got.SimulatedAnalyzerSeconds, m.SimulatedAnalyzerSeconds)
	}
	if !reflect.DeepEqual(got.Detections, m.Detections) {
		t.Errorf("detections differ:\nservice %+v\ndirect  %+v", got.Detections, m.Detections)
	}
	if fin.Detections != len(res.Detections) {
		t.Errorf("status detections %d, direct %d", fin.Detections, len(res.Detections))
	}

	// Journal equivalence: the sharded run's event stream, fetched over
	// SSE, must canonicalize to the serial run's journal.
	gotEvents := canonicalize(fetchSSE(t, base+"/v1/scans/"+st.ID+"/events"))
	wantEvents := canonicalize(run.Journal.CanonicalEvents())
	if len(gotEvents) != len(wantEvents) {
		t.Fatalf("journal length: service %d events, direct %d", len(gotEvents), len(wantEvents))
	}
	for i := range gotEvents {
		if !reflect.DeepEqual(gotEvents[i], wantEvents[i]) {
			t.Fatalf("journal event %d differs:\nservice %+v\ndirect  %+v",
				i, gotEvents[i], wantEvents[i])
		}
	}
}

func decodeManifest(t *testing.T, resp *http.Response) *obs.Manifest {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: %d", resp.StatusCode)
	}
	var m obs.Manifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return &m
}
