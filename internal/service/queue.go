package service

import (
	"container/heap"
	"fmt"
	"net/http"
	"sync"
)

// queue is the bounded priority admission queue. Ordering is
// (priority desc, submission sequence asc): higher priorities dispatch
// first and ties are FIFO, so equal-priority tenants drain in arrival
// order. Admission is bounded twice — a global capacity on queued jobs
// and a per-tenant quota on queued+running jobs. The quota is what makes
// the queue starvation-free across tenants: no tenant can occupy more
// than its quota of the service at once, so a flood from one tenant
// bounces with 429 instead of burying everyone else's submissions.
//
// Quota accounting has single ownership: admit increments a tenant's
// count, and exactly one release — at the job's terminal transition —
// decrements it, whichever path (completion, failure, cancel-while-
// queued, cancel-while-running, shutdown drain) got the job there.
type queue struct {
	mu       sync.Mutex
	capacity int
	quota    int // 0 = unlimited
	items    jobHeap
	tenants  map[string]int
	maxDepth int
	closed   bool

	// signal wakes the dispatcher after an admit; capacity 1 so admits
	// never block on a busy dispatcher.
	signal chan struct{}
}

func newQueue(capacity, quota int) *queue {
	return &queue{
		capacity: capacity,
		quota:    quota,
		tenants:  make(map[string]int),
		signal:   make(chan struct{}, 1),
	}
}

// admit enqueues the job or rejects it with an *httpError carrying 429.
// The tenant's quota slot is taken on success and held until release.
func (q *queue) admit(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return &httpError{status: http.StatusServiceUnavailable, msg: "service: shutting down"}
	}
	if len(q.items) >= q.capacity {
		return &httpError{status: http.StatusTooManyRequests,
			msg: fmt.Sprintf("service: queue full (%d jobs)", q.capacity)}
	}
	if q.quota > 0 && q.tenants[j.Tenant] >= q.quota {
		return &httpError{status: http.StatusTooManyRequests,
			msg: fmt.Sprintf("service: tenant %q at quota (%d queued or running jobs)", j.Tenant, q.quota)}
	}
	q.tenants[j.Tenant]++
	heap.Push(&q.items, j)
	if len(q.items) > q.maxDepth {
		q.maxDepth = len(q.items)
	}
	select {
	case q.signal <- struct{}{}:
	default:
	}
	return nil
}

// pop removes and returns the highest-priority job, or nil when the
// queue is empty. The popped job's tenant slot stays held (it is about
// to run).
func (q *queue) pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return nil
	}
	return heap.Pop(&q.items).(*Job)
}

// remove takes a still-queued job out of the queue, returning false if
// the job was already popped (the dispatcher owns it then). Callers that
// get true own the job's terminal transition.
func (q *queue) remove(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j.heapIndex < 0 {
		return false
	}
	heap.Remove(&q.items, j.heapIndex)
	return true
}

// release returns a tenant's quota slot at a job's terminal transition.
// Going negative means a double release — a bookkeeping bug worth
// crashing loudly over (the race hammer runs under -race with this as
// its tripwire).
func (q *queue) release(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.tenants[tenant] - 1
	switch {
	case n < 0:
		panic("service: tenant quota went negative for " + tenant)
	case n == 0:
		delete(q.tenants, tenant)
	default:
		q.tenants[tenant] = n
	}
}

// close refuses all further admission and returns the jobs that were
// still queued (removed from the heap) so shutdown can cancel them.
func (q *queue) close() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	out := make([]*Job, 0, len(q.items))
	for len(q.items) > 0 {
		out = append(out, heap.Pop(&q.items).(*Job))
	}
	return out
}

// depth returns the current and high-water queue depths.
func (q *queue) depth() (cur, max int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items), q.maxDepth
}

// tenantLoad returns a tenant's queued+running job count.
func (q *queue) tenantLoad(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.tenants[tenant]
}

// jobHeap orders jobs by (priority desc, seq asc); heapIndex tracks each
// job's slot so cancellation can remove from the middle.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }

func (h jobHeap) Less(a, b int) bool {
	if h[a].Priority != h[b].Priority {
		return h[a].Priority > h[b].Priority
	}
	return h[a].seq < h[b].seq
}

func (h jobHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].heapIndex = a
	h[b].heapIndex = b
}

func (h *jobHeap) Push(x any) {
	j := x.(*Job)
	j.heapIndex = len(*h)
	*h = append(*h, j)
}

func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIndex = -1
	*h = old[:n-1]
	return j
}
