package service

import (
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestServiceHammer drives the server from many concurrent tenants with
// a mix of submissions, cancellations, listings, and status polls, then
// closes it and asserts three invariants: every job reached a terminal
// state, every tenant's quota slot was returned (the release tripwire
// panics on a double free), and no goroutines leaked past Close. Runs
// under -race in make ci.
func TestServiceHammer(t *testing.T) {
	// Goroutine baseline with a dedicated transport, same pattern as the
	// obs DebugServer leak test: count before, close idle connections
	// after, poll until the count returns.
	tr := &http.Transport{}
	client := &http.Client{Transport: tr}
	before := runtime.NumGoroutine()

	s, err := New(Config{
		Workers: 4, MaxActive: 3, QueueCapacity: 16, TenantQuota: 4,
		StoreDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	const tenants = 8
	const jobsPerTenant = 6
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", tn)
			for i := 0; i < jobsPerTenant; i++ {
				req := tinyRequest(tenant, int64(tn*1000+i))
				req.Priority = 1 + (tn+i)%9
				st, code := clientSubmit(t, client, base, req)
				switch code {
				case http.StatusAccepted, http.StatusOK:
				case http.StatusTooManyRequests:
					continue // fair rejection under load is expected
				default:
					t.Errorf("submit: unexpected status %d", code)
					continue
				}
				// Cancel roughly half the admitted jobs, at unpredictable
				// points in their lifecycle.
				if (tn+i)%2 == 0 {
					dreq, _ := http.NewRequest(http.MethodDelete, base+"/v1/scans/"+st.ID, nil)
					if resp, err := client.Do(dreq); err == nil {
						resp.Body.Close()
					}
				}
				if resp, err := client.Get(base + "/v1/scans?tenant=" + tenant); err == nil {
					resp.Body.Close()
				}
				if resp, err := client.Get(base + "/v1/scans/" + st.ID); err == nil {
					resp.Body.Close()
				}
			}
		}(tn)
	}
	wg.Wait()

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Every submitted job is terminal after Close — nothing stuck queued
	// or running.
	for _, j := range s.Jobs("") {
		if st := j.stateNow(); !terminal(st) {
			t.Errorf("job %s still %s after Close", j.ID, st)
		}
	}
	// Quota conservation: every slot returned. (A double release would
	// have panicked already; a leak shows up as residual load.)
	for tn := 0; tn < tenants; tn++ {
		tenant := fmt.Sprintf("tenant-%d", tn)
		if load := s.q.tenantLoad(tenant); load != 0 {
			t.Errorf("tenant %s holds %d quota slots after Close", tenant, load)
		}
	}
	stats := s.Stats()
	if got := stats.Completed + stats.Failed + stats.Cancelled + stats.Cached; got != stats.Submitted {
		t.Errorf("job accounting: %d terminal + cached vs %d submitted", got, stats.Submitted)
	}
	if stats.Failed != 0 {
		t.Errorf("%d jobs failed under the hammer", stats.Failed)
	}
	if stats.QueueDepth != 0 {
		t.Errorf("queue depth %d after Close", stats.QueueDepth)
	}

	// Leak check: all server and connection goroutines gone.
	tr.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Fatalf("goroutine leak after Close: %d before, %d after\n%s", before, n, buf)
	}
}

// clientSubmit is httpSubmit on a specific client, tolerating rejection
// statuses without failing the test.
func clientSubmit(t *testing.T, client *http.Client, base string, req *ScanRequest) (ScanStatus, int) {
	t.Helper()
	st, code := trySubmit(client, base, req)
	if code == 0 {
		t.Error("submit transport error")
	}
	return st, code
}
