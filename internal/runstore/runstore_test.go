package runstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fase/internal/obs"
)

// storeManifest is a minimal but valid manifest for store tests; config
// and created time vary per run.
func storeManifest(created int64, config map[string]any) *obs.Manifest {
	return &obs.Manifest{
		Schema:           obs.ManifestSchema,
		CreatedUnix:      created,
		Config:           config,
		Build:            obs.BuildInfo{Version: "test", GoVersion: "go1.24.0", OS: "linux", Arch: "amd64"},
		Stages:           []obs.StageTiming{{Name: "sweeps", WallSeconds: 0.5, CPUSeconds: 0.5}},
		TotalWallSeconds: 0.5, TotalCPUSeconds: 0.5,
		Captures: 10,
		Caches: map[string]obs.CacheStats{
			"fft_plan": {Hits: 9, Misses: 1, HitRate: 0.9}, "rfft_plan": {},
			"window": {}, "bufpool_complex": {}, "bufpool_float": {},
			"specan_plan": {}, "render_static": {},
		},
		Detections: []obs.DetectionRecord{{
			FreqHz: 315e3, Score: 100, BestHarmonic: 1,
			SubScores: []obs.HarmonicScore{{Harmonic: 1, Score: 100, Elevated: 5}},
		}},
	}
}

func TestConfigIDCanonicalization(t *testing.T) {
	// A struct-typed config and its file-round-tripped map form must hash
	// identically — that is what makes archive ids stable across processes.
	type cfg struct {
		F1   float64 `json:"f1_hz"`
		Seed int64   `json:"seed"`
	}
	a, err := ConfigID(cfg{F1: 250e3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ConfigID(map[string]any{"seed": 21.0, "f1_hz": 250000.0})
	if err != nil {
		t.Fatal(err)
	}
	if a != b || len(a) != IDLen {
		t.Fatalf("ids differ: %q vs %q", a, b)
	}
	c, err := ConfigID(cfg{F1: 250e3, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different seeds must produce different ids")
	}
}

func TestStoreAddListResolve(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "runs")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1 := storeManifest(100, map[string]any{"seed": 1.0})
	m2 := storeManifest(200, map[string]any{"seed": 2.0})
	e1, err := s.Add(m1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.Add(m2)
	if err != nil {
		t.Fatal(err)
	}
	if e1.ID == e2.ID {
		t.Fatal("distinct configs collided")
	}

	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].ID != e2.ID || entries[1].ID != e1.ID {
		t.Fatalf("list not newest-first: %+v", entries)
	}

	// @N references.
	if _, id, err := s.Resolve("@0"); err != nil || id != e2.ID {
		t.Errorf("@0 -> %q, %v; want %q", id, err, e2.ID)
	}
	if _, id, err := s.Resolve("@1"); err != nil || id != e1.ID {
		t.Errorf("@1 -> %q, %v; want %q", id, err, e1.ID)
	}
	if _, _, err := s.Resolve("@2"); err == nil {
		t.Error("@2 must fail on a two-run store")
	}
	if _, _, err := s.Resolve("@-1"); err == nil {
		t.Error("@-1 must be rejected")
	}

	// Unique id prefix; full id; missing; ambiguous is hard to force with
	// random hashes, so cover the miss path instead.
	if _, id, err := s.Resolve(e1.ID[:6]); err != nil || id != e1.ID {
		t.Errorf("prefix -> %q, %v", id, err)
	}
	if _, id, err := s.Resolve(e2.ID); err != nil || id != e2.ID {
		t.Errorf("full id -> %q, %v", id, err)
	}
	if _, _, err := s.Resolve("zzzzzz"); err == nil {
		t.Error("unknown reference must fail")
	}

	// File-path references bypass the store.
	if _, label, err := s.Resolve(e1.Path); err != nil || label != e1.Path {
		t.Errorf("path -> %q, %v", label, err)
	}

	// Re-adding the same config overwrites in place.
	again, err := s.Add(storeManifest(300, map[string]any{"seed": 1.0}))
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != e1.ID {
		t.Fatalf("re-add changed id: %q vs %q", again.ID, e1.ID)
	}
	entries, _ = s.List()
	if len(entries) != 2 {
		t.Fatalf("overwrite grew the store to %d entries", len(entries))
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir must be rejected")
	}
}

func TestCompareAndWriteText(t *testing.T) {
	a := storeManifest(100, map[string]any{"fres_hz": 200.0, "merge_bins": 5.0})
	a.Stages = append(a.Stages, obs.StageTiming{Name: "detect", WallSeconds: 0.1, CPUSeconds: 0.1})
	a.Caches = map[string]obs.CacheStats{"fft_plan": {Hits: 9, Misses: 1, HitRate: 0.9}}
	a.Planner.StaticReplays = 40
	a.Adaptive = &obs.AdaptiveStats{
		Budget: 30, CapturesUsed: 20, ExhaustiveCaptures: 100,
		ReconCaptures: 5, RefineCaptures: 15, ReconFresHz: 1600, Candidates: 2,
	}

	b := storeManifest(200, map[string]any{"fres_hz": 200.0, "merge_bins": 5.0})
	b.Stages = []obs.StageTiming{
		{Name: "sweeps", WallSeconds: 0.4, CPUSeconds: 0.4},
		{Name: "score", WallSeconds: 0.05, CPUSeconds: 0.05},
	}
	b.Caches = map[string]obs.CacheStats{"window": {Hits: 5, Misses: 5, HitRate: 0.5}}
	// One detection within tolerance of A's (matched), one far away
	// (only-B); A keeps none unmatched.
	b.Detections = []obs.DetectionRecord{
		{FreqHz: 315.4e3, Score: 120, BestHarmonic: 1,
			SubScores: []obs.HarmonicScore{{Harmonic: 1, Score: 120, Elevated: 5}}},
		{FreqHz: 900e3, Score: 50, BestHarmonic: -1,
			SubScores: []obs.HarmonicScore{{Harmonic: -1, Score: 50, Elevated: 4}}},
	}

	d := Compare(a, b, "runA", "runB")
	if d.Detections.ToleranceHz != 1000 {
		t.Errorf("tolerance %.0f, want 1000 (200 Hz × 5 bins)", d.Detections.ToleranceHz)
	}
	if len(d.Detections.Matched) != 1 || len(d.Detections.OnlyA) != 0 || len(d.Detections.OnlyB) != 1 {
		t.Fatalf("detection diff: %+v", d.Detections)
	}
	if d.Detections.Matched[0].ScoreB != 120 {
		t.Errorf("matched pair: %+v", d.Detections.Matched[0])
	}
	// Stage union: A's order first (sweeps, detect), then B-only (score).
	names := make([]string, len(d.Stages))
	for i, st := range d.Stages {
		names[i] = st.Name
	}
	if strings.Join(names, ",") != "sweeps,detect,score" {
		t.Errorf("stage union order: %v", names)
	}
	if !d.Stages[0].InA || !d.Stages[0].InB || d.Stages[1].InB || d.Stages[2].InA {
		t.Errorf("stage membership flags: %+v", d.Stages)
	}
	if len(d.Caches) != 2 {
		t.Errorf("cache union: %+v", d.Caches)
	}
	if d.Adaptive == nil || d.Adaptive.BudgetA != 30 || d.Adaptive.BudgetB != 0 {
		t.Errorf("adaptive delta: %+v", d.Adaptive)
	}

	var sb strings.Builder
	if err := d.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"run diff: A=runA  B=runB",
		"sweeps", "detect", "score", "total",
		"static replays: A=40  B=0",
		"fft_plan", "window",
		"adaptive spend",
		"1 matched, 0 only in A, 1 only in B",
		"(only in B)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestCompareNoAdaptive(t *testing.T) {
	a := storeManifest(1, map[string]any{"x": 1.0})
	b := storeManifest(2, map[string]any{"x": 2.0})
	d := Compare(a, b, "a", "b")
	if d.Adaptive != nil {
		t.Error("no adaptive stats on either side must yield no adaptive delta")
	}
	// Default tolerance applies when the config carries no fres/merge.
	if d.Detections.ToleranceHz != 1e3 {
		t.Errorf("fallback tolerance %.0f", d.Detections.ToleranceHz)
	}
	if len(d.Detections.Matched) != 1 {
		t.Errorf("identical detections must match: %+v", d.Detections)
	}
}

func TestArchivedManifestsValidate(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.Add(storeManifest(10, map[string]any{"seed": 7.0}))
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateManifestFile(e.Path); err != nil {
		t.Fatalf("archived manifest fails validation: %v", err)
	}
	// A store directory with a corrupt file must fail List loudly.
	if err := os.WriteFile(filepath.Join(dir, "deadbeef0000.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.List(); err == nil {
		t.Error("corrupt archived manifest must fail List")
	}
}
