package runstore

import (
	"fmt"
	"io"
	"math"
	"sort"

	"fase/internal/obs"
)

// Diff is the comparison of two archived runs (A → B): per-stage
// wall/CPU deltas, cache hit- and replay-rate movement, adaptive capture
// spend, and the detection-set difference.
type Diff struct {
	AID, BID string
	// Stages holds one row per stage name present in either run, in A's
	// stage order with B-only stages appended.
	Stages []StageDelta
	// Total compares the whole-run wall/CPU timings.
	Total StageDelta
	// CapturesA/B are the runs' rendered capture counts.
	CapturesA, CapturesB int64
	// Caches holds one row per cache name present in either run, sorted.
	Caches []CacheDelta
	// ReplaysA/B are the static-cache component replays (renders saved).
	ReplaysA, ReplaysB int64
	// Adaptive is present when at least one run carried adaptive stats.
	Adaptive *AdaptiveDelta
	// Detections is the detection-set comparison.
	Detections DetectionDiff
}

// StageDelta compares one stage's cost across the two runs.
type StageDelta struct {
	Name         string
	WallA, WallB float64
	CPUA, CPUB   float64
	InA, InB     bool
}

// CacheDelta compares one cache's behaviour across the two runs.
type CacheDelta struct {
	Name      string
	HitRateA  float64
	HitRateB  float64
	AccessesA int64
	AccessesB int64
}

// AdaptiveDelta compares the planners' budget spend.
type AdaptiveDelta struct {
	BudgetA, BudgetB   int64
	UsedA, UsedB       int64
	ReconA, ReconB     int64
	RefineA, RefineB   int64
	WindowsA, WindowsB int
}

// DetectionDiff is the detection-set comparison: detections are matched
// by frequency within the runs' merge tolerance.
type DetectionDiff struct {
	// ToleranceHz is the matching radius (merge_bins × fres_hz from the
	// config, 1 kHz when the config doesn't carry them).
	ToleranceHz float64
	// Matched pairs detections present in both runs.
	Matched []MatchedDetection
	// OnlyA/OnlyB list detections present in one run only.
	OnlyA, OnlyB []obs.DetectionRecord
}

// MatchedDetection is one carrier found by both runs.
type MatchedDetection struct {
	FreqA, FreqB   float64
	ScoreA, ScoreB float64
}

// Compare diffs two manifests. aID/bID label the runs in the report
// (store ids or file paths).
func Compare(a, b *obs.Manifest, aID, bID string) *Diff {
	d := &Diff{
		AID: aID, BID: bID,
		Total: StageDelta{Name: "total",
			WallA: a.TotalWallSeconds, WallB: b.TotalWallSeconds,
			CPUA: a.TotalCPUSeconds, CPUB: b.TotalCPUSeconds,
			InA: true, InB: true},
		CapturesA: a.Captures, CapturesB: b.Captures,
		ReplaysA: a.Planner.StaticReplays, ReplaysB: b.Planner.StaticReplays,
	}
	bStages := make(map[string]obs.StageTiming, len(b.Stages))
	for _, st := range b.Stages {
		bStages[st.Name] = st
	}
	seen := make(map[string]bool, len(a.Stages))
	for _, st := range a.Stages {
		if seen[st.Name] {
			continue
		}
		seen[st.Name] = true
		row := StageDelta{Name: st.Name, WallA: st.WallSeconds, CPUA: st.CPUSeconds, InA: true}
		if bs, ok := bStages[st.Name]; ok {
			row.WallB, row.CPUB, row.InB = bs.WallSeconds, bs.CPUSeconds, true
		}
		d.Stages = append(d.Stages, row)
	}
	for _, st := range b.Stages {
		if !seen[st.Name] {
			seen[st.Name] = true
			d.Stages = append(d.Stages, StageDelta{Name: st.Name,
				WallB: st.WallSeconds, CPUB: st.CPUSeconds, InB: true})
		}
	}

	cacheNames := map[string]bool{}
	for name := range a.Caches {
		cacheNames[name] = true
	}
	for name := range b.Caches {
		cacheNames[name] = true
	}
	names := make([]string, 0, len(cacheNames))
	for name := range cacheNames {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ca, cb := a.Caches[name], b.Caches[name]
		d.Caches = append(d.Caches, CacheDelta{Name: name,
			HitRateA: ca.HitRate, HitRateB: cb.HitRate,
			AccessesA: ca.Hits + ca.Misses, AccessesB: cb.Hits + cb.Misses})
	}

	if a.Adaptive != nil || b.Adaptive != nil {
		ad := &AdaptiveDelta{}
		if s := a.Adaptive; s != nil {
			ad.BudgetA, ad.UsedA, ad.ReconA, ad.RefineA, ad.WindowsA =
				s.Budget, s.CapturesUsed, s.ReconCaptures, s.RefineCaptures, len(s.Windows)
		}
		if s := b.Adaptive; s != nil {
			ad.BudgetB, ad.UsedB, ad.ReconB, ad.RefineB, ad.WindowsB =
				s.Budget, s.CapturesUsed, s.ReconCaptures, s.RefineCaptures, len(s.Windows)
		}
		d.Adaptive = ad
	}

	d.Detections = diffDetections(a, b)
	return d
}

// configTolerance derives the detection-matching radius from a manifest's
// resolved config (merge_bins × fres_hz), falling back to 1 kHz.
func configTolerance(m *obs.Manifest) float64 {
	cfg, ok := m.Config.(map[string]any)
	if !ok {
		return 1e3
	}
	fres, okF := cfg["fres_hz"].(float64)
	merge, okM := cfg["merge_bins"].(float64)
	if !okF || !okM || fres <= 0 || merge <= 0 {
		return 1e3
	}
	return fres * merge
}

func diffDetections(a, b *obs.Manifest) DetectionDiff {
	tol := math.Max(configTolerance(a), configTolerance(b))
	dd := DetectionDiff{ToleranceHz: tol}
	usedB := make([]bool, len(b.Detections))
	for _, da := range a.Detections {
		best, bestDist := -1, math.Inf(1)
		for j, db := range b.Detections {
			if usedB[j] {
				continue
			}
			if dist := math.Abs(da.FreqHz - db.FreqHz); dist <= tol && dist < bestDist {
				best, bestDist = j, dist
			}
		}
		if best < 0 {
			dd.OnlyA = append(dd.OnlyA, da)
			continue
		}
		usedB[best] = true
		dd.Matched = append(dd.Matched, MatchedDetection{
			FreqA: da.FreqHz, FreqB: b.Detections[best].FreqHz,
			ScoreA: da.Score, ScoreB: b.Detections[best].Score,
		})
	}
	for j, db := range b.Detections {
		if !usedB[j] {
			dd.OnlyB = append(dd.OnlyB, db)
		}
	}
	return dd
}

// WriteText renders the diff as an aligned plain-text report.
func (d *Diff) WriteText(w io.Writer) error {
	p := func(format string, args ...any) {
		fmt.Fprintf(w, format, args...)
	}
	p("run diff: A=%s  B=%s\n\n", d.AID, d.BID)
	p("stages (wall s / cpu s):\n")
	p("  %-10s %12s %12s %12s   %12s %12s %12s\n",
		"stage", "wall A", "wall B", "Δwall", "cpu A", "cpu B", "Δcpu")
	rows := append([]StageDelta{}, d.Stages...)
	rows = append(rows, d.Total)
	for _, st := range rows {
		p("  %-10s %12.4f %12.4f %+12.4f   %12.4f %12.4f %+12.4f\n",
			st.Name, st.WallA, st.WallB, st.WallB-st.WallA,
			st.CPUA, st.CPUB, st.CPUB-st.CPUA)
	}
	p("\ncaptures: A=%d  B=%d  Δ=%+d\n", d.CapturesA, d.CapturesB, d.CapturesB-d.CapturesA)
	p("static replays: A=%d  B=%d  Δ=%+d\n", d.ReplaysA, d.ReplaysB, d.ReplaysB-d.ReplaysA)
	p("\ncaches (hit rate):\n")
	p("  %-16s %10s %10s %10s %12s %12s\n", "cache", "A", "B", "Δ", "accesses A", "accesses B")
	for _, c := range d.Caches {
		p("  %-16s %10.3f %10.3f %+10.3f %12d %12d\n",
			c.Name, c.HitRateA, c.HitRateB, c.HitRateB-c.HitRateA, c.AccessesA, c.AccessesB)
	}
	if ad := d.Adaptive; ad != nil {
		p("\nadaptive spend (captures):\n")
		p("  %-10s %10s %10s %10s\n", "", "A", "B", "Δ")
		for _, row := range [][3]int64{
			{ad.BudgetA, ad.BudgetB, 0}, {ad.UsedA, ad.UsedB, 1},
			{ad.ReconA, ad.ReconB, 2}, {ad.RefineA, ad.RefineB, 3},
		} {
			name := [...]string{"budget", "used", "recon", "refine"}[row[2]]
			p("  %-10s %10d %10d %+10d\n", name, row[0], row[1], row[1]-row[0])
		}
		p("  %-10s %10d %10d %+10d\n", "windows",
			ad.WindowsA, ad.WindowsB, ad.WindowsB-ad.WindowsA)
	}
	dd := d.Detections
	p("\ndetections (matched within %.0f Hz): %d matched, %d only in A, %d only in B\n",
		dd.ToleranceHz, len(dd.Matched), len(dd.OnlyA), len(dd.OnlyB))
	for _, m := range dd.Matched {
		p("  = %12.1f Hz  score A %10.1f  B %10.1f  Δ %+10.1f\n",
			m.FreqA, m.ScoreA, m.ScoreB, m.ScoreB-m.ScoreA)
	}
	for _, da := range dd.OnlyA {
		p("  - %12.1f Hz  score %10.1f  (only in A)\n", da.FreqHz, da.Score)
	}
	for _, db := range dd.OnlyB {
		p("  + %12.1f Hz  score %10.1f  (only in B)\n", db.FreqHz, db.Score)
	}
	return nil
}
