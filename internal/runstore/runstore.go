// Package runstore archives run manifests under a content-addressed
// directory and diffs archived runs, so bench and accuracy regressions
// are diagnosable from artifacts instead of reruns.
//
// A run's identity is the SHA-256 of its canonicalized resolved config
// (JSON with sorted keys — the seed is part of the config, so the key is
// (config, seed) by construction), truncated to 12 hex digits. Archiving
// the same configuration twice overwrites in place: bit-identical
// configs name bit-identical runs.
package runstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"fase/internal/obs"
)

// IDLen is the truncated hex length of a run id.
const IDLen = 12

// Store is a directory of archived run manifests, one <id>.json each.
type Store struct{ Dir string }

// Open returns a store rooted at dir, creating the directory on first
// use.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: create %s: %w", dir, err)
	}
	return &Store{Dir: dir}, nil
}

// ConfigID computes the content address of a resolved config: the
// SHA-256 of its canonical JSON (marshal → unmarshal into interface{} →
// marshal again, so struct-produced and file-round-tripped configs — whose
// Go types differ — hash identically; encoding/json sorts map keys).
func ConfigID(config any) (string, error) {
	raw, err := json.Marshal(config)
	if err != nil {
		return "", fmt.Errorf("runstore: marshal config: %w", err)
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return "", fmt.Errorf("runstore: canonicalize config: %w", err)
	}
	canon, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("runstore: canonicalize config: %w", err)
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:])[:IDLen], nil
}

// Entry is one archived run.
type Entry struct {
	ID          string
	Path        string
	CreatedUnix int64
}

// Add archives a manifest, returning its entry. Same config → same id →
// overwrite in place.
func (s *Store) Add(m *obs.Manifest) (Entry, error) {
	id, err := ConfigID(m.Config)
	if err != nil {
		return Entry{}, err
	}
	path := filepath.Join(s.Dir, id+".json")
	if err := m.WriteFile(path); err != nil {
		return Entry{}, err
	}
	return Entry{ID: id, Path: path, CreatedUnix: m.CreatedUnix}, nil
}

// List returns the archived runs, most recently created first (ties
// break on id so the order is total).
func (s *Store) List() ([]Entry, error) {
	glob, err := filepath.Glob(filepath.Join(s.Dir, "*.json"))
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, path := range glob {
		id := strings.TrimSuffix(filepath.Base(path), ".json")
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		m, err := obs.ReadManifest(data)
		if err != nil {
			return nil, fmt.Errorf("runstore: %s: %w", path, err)
		}
		out = append(out, Entry{ID: id, Path: path, CreatedUnix: m.CreatedUnix})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].CreatedUnix != out[b].CreatedUnix {
			return out[a].CreatedUnix > out[b].CreatedUnix
		}
		return out[a].ID < out[b].ID
	})
	return out, nil
}

// Resolve turns a run reference into a manifest. Three forms are
// accepted: a file path to a manifest (used as-is), "@N" (the Nth most
// recent archived run — @0 is the newest), and an id or unique id
// prefix.
func (s *Store) Resolve(ref string) (*obs.Manifest, string, error) {
	if st, err := os.Stat(ref); err == nil && !st.IsDir() {
		m, err := readManifestFile(ref)
		return m, ref, err
	}
	if n, ok := strings.CutPrefix(ref, "@"); ok {
		idx, err := strconv.Atoi(n)
		if err != nil || idx < 0 {
			return nil, "", fmt.Errorf("runstore: bad run reference %q (want @N, N ≥ 0)", ref)
		}
		entries, err := s.List()
		if err != nil {
			return nil, "", err
		}
		if idx >= len(entries) {
			return nil, "", fmt.Errorf("runstore: reference %s but the store holds only %d run(s)", ref, len(entries))
		}
		m, err := readManifestFile(entries[idx].Path)
		return m, entries[idx].ID, err
	}
	entries, err := s.List()
	if err != nil {
		return nil, "", err
	}
	var hits []Entry
	for _, e := range entries {
		if strings.HasPrefix(e.ID, ref) {
			hits = append(hits, e)
		}
	}
	switch len(hits) {
	case 0:
		return nil, "", fmt.Errorf("runstore: no archived run matches %q", ref)
	case 1:
		m, err := readManifestFile(hits[0].Path)
		return m, hits[0].ID, err
	default:
		ids := make([]string, len(hits))
		for i, e := range hits {
			ids[i] = e.ID
		}
		return nil, "", fmt.Errorf("runstore: reference %q is ambiguous: %s", ref, strings.Join(ids, ", "))
	}
}

func readManifestFile(path string) (*obs.Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return obs.ReadManifest(data)
}
