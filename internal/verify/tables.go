package verify

import (
	"fmt"
	"io"

	"fase/internal/report"
)

// Tables renders the report for terminal consumption via
// report.FormatTable: a corpus summary, per-pass accuracy, and the ROC
// sweep.
func Tables(r *Report) []report.Table {
	tables := []report.Table{summaryTable(r), corpusTable("Clean corpus", r.NoFault)}
	if r.Faulted != nil {
		tables = append(tables, corpusTable("Fault-injected corpus", r.Faulted))
	}
	tables = append(tables, rocTable(r))
	if r.Budget != nil {
		tables = append(tables, budgetTable(r.Budget))
	}
	return tables
}

// budgetTable renders the adaptive planner's recall-vs-budget sweep.
func budgetTable(b *BudgetReport) report.Table {
	t := report.Table{
		Title: fmt.Sprintf("Adaptive recall vs budget (exhaustive: %d captures, recall %.4f, MaxFFT %d)",
			b.ExhaustiveCaptures, b.ExhaustiveRecall, b.MaxFFT),
		Header: []string{"budget", "captures", "capture frac", "found", "FP", "recall", "ratio", "windows r/a/s"},
	}
	for _, p := range b.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d (%.0f%%)", p.Budget, 100*p.BudgetFrac),
			fmt.Sprintf("%d", p.CapturesUsed),
			fmt.Sprintf("%.3f", p.CaptureFrac),
			fmt.Sprintf("%d / %d", p.CarriersFound, b.CarriersTotal),
			fmt.Sprintf("%d", p.FP),
			fmt.Sprintf("%.4f", p.Recall),
			fmt.Sprintf("%.4f", p.RecallRatio),
			fmt.Sprintf("%d/%d/%d", p.Refined, p.Abandoned, p.Skipped),
		})
	}
	return t
}

func summaryTable(r *Report) report.Table {
	rows := [][]string{
		{"scenarios", fmt.Sprintf("%d", r.Scenarios)},
		{"seed", fmt.Sprintf("%d", r.Seed)},
		{"band", fmt.Sprintf("%.0f–%.0f kHz @ %.0f Hz", r.Config.F1/1e3, r.Config.F2/1e3, r.Config.Fres)},
		{"alternation", fmt.Sprintf("%s/%s, f_alt %.1f kHz", r.Config.X, r.Config.Y, r.Config.FAlt1/1e3)},
		{"planted carriers", fmt.Sprintf("%d", r.CarriersTotal)},
		{"decoy carriers", fmt.Sprintf("%d", r.DecoysTotal)},
		{"gate threshold", fmt.Sprintf("%.0f", r.Config.MinScore)},
		{"match tolerance", fmt.Sprintf("%.1f kHz", r.Config.MatchToleranceHz/1e3)},
		{"simulated scan time", fmt.Sprintf("%.0f s", r.SimulatedSeconds)},
	}
	if r.Config.FaultPlan != nil {
		rows = append(rows, []string{"fault plan", fmt.Sprintf("drop %.0f%% trunc %.0f%% burst %.0f%% clip %.0f dBm noise %.0f dBm/Hz drift %.0f ppm",
			100*r.Config.FaultPlan.DropProb, 100*r.Config.FaultPlan.TruncProb,
			100*r.Config.FaultPlan.BurstProb, r.Config.FaultPlan.ClipDBm,
			r.Config.FaultPlan.ExtraNoiseDBmPerHz, r.Config.FaultPlan.FAltDriftPPM)})
	}
	return report.Table{
		Title:  "Ground-truth accuracy corpus",
		Header: []string{"parameter", "value"},
		Rows:   rows,
	}
}

func corpusTable(title string, c *Corpus) report.Table {
	return report.Table{
		Title:  title,
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"detections", fmt.Sprintf("%d", c.Detections)},
			{"true positives", fmt.Sprintf("%d", c.TP)},
			{"false positives", fmt.Sprintf("%d (%d on decoys)", c.FP, c.DecoyHits)},
			{"carriers found", fmt.Sprintf("%d / %d", c.CarriersFound, c.CarriersTotal)},
			{"precision", fmt.Sprintf("%.4f", c.Precision)},
			{"recall", fmt.Sprintf("%.4f", c.Recall)},
			{"F1", fmt.Sprintf("%.4f", c.F1)},
			{"freq err mean", fmt.Sprintf("%.1f Hz", c.FreqErr.MeanAbsHz)},
			{"freq err median", fmt.Sprintf("%.1f Hz", c.FreqErr.MedianAbsHz)},
			{"freq err p95", fmt.Sprintf("%.1f Hz", c.FreqErr.P95AbsHz)},
			{"freq err max", fmt.Sprintf("%.1f Hz", c.FreqErr.MaxAbsHz)},
		},
	}
}

// rocTable shows at most a dozen points of the sweep; the CSV holds all.
func rocTable(r *Report) report.Table {
	t := report.Table{
		Title:  "ROC over MinScore (clean corpus, post-hoc threshold)",
		Header: []string{"threshold", "TP", "FP", "recall", "precision", "F1"},
	}
	pts := r.ROC
	stride := 1
	if len(pts) > 12 {
		stride = (len(pts) + 11) / 12
	}
	for i := 0; i < len(pts); i += stride {
		p := pts[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", p.Threshold),
			fmt.Sprintf("%d", p.TP), fmt.Sprintf("%d", p.FP),
			fmt.Sprintf("%.4f", p.Recall), fmt.Sprintf("%.4f", p.Precision),
			fmt.Sprintf("%.4f", p.F1),
		})
	}
	if stride > 1 && (len(pts)-1)%stride != 0 {
		p := pts[len(pts)-1]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", p.Threshold),
			fmt.Sprintf("%d", p.TP), fmt.Sprintf("%d", p.FP),
			fmt.Sprintf("%.4f", p.Recall), fmt.Sprintf("%.4f", p.Precision),
			fmt.Sprintf("%.4f", p.F1),
		})
	}
	return t
}

// WriteROCCSV writes the full ROC sweep, one operating point per row.
func WriteROCCSV(w io.Writer, r *Report) error {
	if _, err := fmt.Fprintln(w, "threshold,tp,fp,carriers_found,precision,recall,f1"); err != nil {
		return err
	}
	for _, p := range r.ROC {
		if _, err := fmt.Fprintf(w, "%g,%d,%d,%d,%g,%g,%g\n",
			p.Threshold, p.TP, p.FP, p.CarriersFound, p.Precision, p.Recall, p.F1); err != nil {
			return err
		}
	}
	return nil
}
