package verify

import (
	"fmt"

	"fase/internal/core"
	"fase/internal/obs"
)

// The recall-vs-budget pass pins the analyzer's transform cap so capture
// counts are a meaningful budget currency: at the default MaxFFT the
// whole corpus band fits one FFT segment and an exhaustive campaign
// costs only NumAlts × Averages captures, leaving an adaptive planner
// nothing to save. At 2048 the band splits into segments a window-sized
// re-sweep genuinely avoids.
const budgetMaxFFT = 2048

// budgetFracs are the evaluated budget points, as fractions of the
// exhaustive campaign's capture cost at budgetMaxFFT.
var budgetFracs = []float64{0.15, 0.20, 0.25, 0.30}

// Budget gates: some evaluated point at ≤ MaxBudgetCaptureFrac of the
// exhaustive captures must reach ≥ MinBudgetRecallRatio of the
// exhaustive recall — the adaptive planner's reason to exist, enforced
// by `make accuracy` like the accuracy floors.
const (
	MinBudgetRecallRatio = 0.95
	MaxBudgetCaptureFrac = 0.30
)

// BudgetPoint is one operating point of the recall-vs-budget curve: the
// whole corpus re-run adaptively at one capture budget.
type BudgetPoint struct {
	// Budget is the per-scenario capture cap handed to the planner.
	Budget int `json:"budget"`
	// BudgetFrac is Budget over the exhaustive per-scenario cost.
	BudgetFrac float64 `json:"budget_frac"`
	// CapturesUsed is what the planner actually spent, summed over the
	// corpus; CaptureFrac normalizes by the exhaustive corpus total.
	CapturesUsed  int64   `json:"captures_used"`
	CaptureFrac   float64 `json:"capture_frac"`
	CarriersFound int     `json:"carriers_found"`
	FP            int     `json:"fp"`
	Recall        float64 `json:"recall"`
	// RecallRatio is Recall over the exhaustive reference recall at the
	// same transform cap.
	RecallRatio float64 `json:"recall_ratio"`
	// Refined/Abandoned/Skipped total the planner's window outcomes
	// (partial counts as skipped) across the corpus.
	Refined   int `json:"refined"`
	Abandoned int `json:"abandoned"`
	Skipped   int `json:"skipped"`
}

// BudgetReport is the recall-vs-budget sweep: an exhaustive reference
// pass at the pinned transform cap, then the corpus re-run with the
// adaptive planner at each budget fraction.
type BudgetReport struct {
	MaxFFT int `json:"max_fft"`
	// ExhaustiveCaptures / ExhaustiveRecall are the reference pass's
	// corpus-total capture cost and recall.
	ExhaustiveCaptures int64         `json:"exhaustive_captures"`
	ExhaustiveFound    int           `json:"exhaustive_found"`
	CarriersTotal      int           `json:"carriers_total"`
	ExhaustiveRecall   float64       `json:"exhaustive_recall"`
	Points             []BudgetPoint `json:"points"`
}

// budgetCampaign is the per-scenario campaign of the budget pass.
func (c Config) budgetCampaign(seed int64, budget int) core.Campaign {
	camp := c.campaign(seed, nil, false)
	camp.MaxFFT = budgetMaxFFT
	if budget > 0 {
		camp.Budget = budget
		camp.Adaptive = &core.AdaptivePlan{}
	}
	return camp
}

// runBudget executes the recall-vs-budget sweep over the corpus.
func runBudget(cfg Config, scens []*scenario, simSeconds *float64) (*BudgetReport, error) {
	rep := &BudgetReport{MaxFFT: budgetMaxFFT}

	// Exhaustive reference at the pinned transform cap. Its per-scenario
	// cost is identical across scenarios (same band geometry), so the
	// budgets derive from the first scenario's price.
	var perScenario int64
	for _, sc := range scens {
		runner := &core.Runner{Scene: sc.scene}
		res, err := runner.RunE(cfg.budgetCampaign(sc.seed^0x5CA1AB1E, 0))
		if err != nil {
			return nil, fmt.Errorf("verify: budget reference scenario %d: %w", sc.index, err)
		}
		m := matchDetections(sc.truth, res.Detections, cfg.MatchToleranceHz)
		rep.ExhaustiveFound += len(m.found)
		rep.CarriersTotal += sc.planted
		rep.ExhaustiveCaptures += res.Captures
		perScenario = res.Captures
		if simSeconds != nil {
			*simSeconds += res.SimulatedSeconds
		}
	}
	rep.ExhaustiveRecall = recall(rep.ExhaustiveFound, rep.CarriersTotal)

	for _, frac := range budgetFracs {
		p := BudgetPoint{
			Budget:     int(frac * float64(perScenario)),
			BudgetFrac: frac,
		}
		for _, sc := range scens {
			runner := &core.Runner{Scene: sc.scene}
			res, err := runner.RunE(cfg.budgetCampaign(sc.seed^0x5CA1AB1E, p.Budget))
			if err != nil {
				return nil, fmt.Errorf("verify: budget %d scenario %d: %w", p.Budget, sc.index, err)
			}
			m := matchDetections(sc.truth, res.Detections, cfg.MatchToleranceHz)
			p.CarriersFound += len(m.found)
			p.FP += m.fp
			p.CapturesUsed += res.Captures
			for _, w := range res.Adaptive.Windows {
				switch w.Outcome {
				case obs.WindowRefined:
					p.Refined++
				case obs.WindowAbandoned:
					p.Abandoned++
				default:
					p.Skipped++
				}
			}
			if simSeconds != nil {
				*simSeconds += res.SimulatedSeconds
			}
		}
		p.CaptureFrac = float64(p.CapturesUsed) / float64(rep.ExhaustiveCaptures)
		p.Recall = recall(p.CarriersFound, rep.CarriersTotal)
		if rep.ExhaustiveRecall > 0 {
			p.RecallRatio = p.Recall / rep.ExhaustiveRecall
		}
		rep.Points = append(rep.Points, p)
	}
	return rep, nil
}

// budgetGate returns the best point satisfying the budget gates, or an
// error when none does.
func budgetGate(b *BudgetReport) (BudgetPoint, error) {
	best := BudgetPoint{RecallRatio: -1}
	for _, p := range b.Points {
		if p.CaptureFrac <= MaxBudgetCaptureFrac && p.RecallRatio > best.RecallRatio {
			best = p
		}
	}
	if best.RecallRatio < MinBudgetRecallRatio {
		return best, fmt.Errorf("verify: no budget point reaches %.0f%% of exhaustive recall within %.0f%% of captures (best: ratio %.4f at %.1f%% captures)",
			100*MinBudgetRecallRatio, 100*MaxBudgetCaptureFrac, best.RecallRatio, 100*best.CaptureFrac)
	}
	return best, nil
}
