package verify

import (
	"math"
	"sort"

	"fase/internal/core"
	"fase/internal/emsim"
)

// matchResult is one campaign's detections scored against one scenario's
// ground truth.
type matchResult struct {
	tp        int // detections matching a modulated ground-truth carrier
	fp        int // detections matching nothing modulated
	decoyHits int // the subset of fp sitting on an unmodulated carrier

	// found maps modulated-truth index → best matched detection score;
	// freqErr holds the corresponding |f_detected − f_truth|.
	found   map[int]float64
	freqErr map[int]float64

	tpScores []float64 // per matched detection
	fpScores []float64 // per false-positive detection
}

// matchDetections pairs detections with ground truth. A detection is a
// true positive when any *modulated* ground-truth carrier lies within tol
// of it (the closest one is charged with the match); otherwise it is a
// false positive — "decoy hit" when an unmodulated carrier is within tol,
// plain noise/artifact otherwise. Matching prefers modulated carriers so
// a detection between a planted carrier and a nearby decoy is credited,
// not penalized; the corpus generator's MinSepHz keeps that case rare.
func matchDetections(truth []emsim.GroundTruthCarrier, dets []core.Detection, tol float64) matchResult {
	m := matchResult{found: map[int]float64{}, freqErr: map[int]float64{}}
	for _, d := range dets {
		bestMod, bestModErr := -1, math.Inf(1)
		decoy := false
		for i, t := range truth {
			err := math.Abs(d.Freq - t.Freq)
			if err > tol {
				continue
			}
			if t.Modulated {
				if err < bestModErr {
					bestMod, bestModErr = i, err
				}
			} else {
				decoy = true
			}
		}
		if bestMod < 0 {
			m.fp++
			if decoy {
				m.decoyHits++
			}
			m.fpScores = append(m.fpScores, d.Score)
			continue
		}
		m.tp++
		m.tpScores = append(m.tpScores, d.Score)
		if s, ok := m.found[bestMod]; !ok || d.Score > s {
			m.found[bestMod] = d.Score
		}
		if e, ok := m.freqErr[bestMod]; !ok || bestModErr < e {
			m.freqErr[bestMod] = bestModErr
		}
	}
	return m
}

// ScenarioOutcome is the per-scenario row of a corpus pass.
type ScenarioOutcome struct {
	Index   int   `json:"index"`
	Seed    int64 `json:"seed"`
	Planted int   `json:"planted"`
	Decoys  int   `json:"decoys"`
	TP      int   `json:"tp"`
	FP      int   `json:"fp"`
	Missed  int   `json:"missed"`
}

// FreqErrStats summarizes |f_detected − f_truth| over every matched
// carrier in a corpus pass.
type FreqErrStats struct {
	Count       int     `json:"count"`
	MeanAbsHz   float64 `json:"mean_abs_hz"`
	MedianAbsHz float64 `json:"median_abs_hz"`
	P95AbsHz    float64 `json:"p95_abs_hz"`
	MaxAbsHz    float64 `json:"max_abs_hz"`
}

// Corpus aggregates one pass (clean or faulted) over every scenario.
//
// Precision is detection-level: of everything reported, how much sat on a
// planted carrier. Recall is carrier-level: of every planted carrier, how
// many were found at all — multiple detections of one carrier (harmonics
// that failed to merge) don't inflate it. F1 is their harmonic mean.
type Corpus struct {
	Detections    int     `json:"detections"`
	TP            int     `json:"tp"`
	FP            int     `json:"fp"`
	DecoyHits     int     `json:"decoy_hits"`
	CarriersFound int     `json:"carriers_found"`
	CarriersTotal int     `json:"carriers_total"`
	Precision     float64 `json:"precision"`
	Recall        float64 `json:"recall"`
	F1            float64 `json:"f1"`

	FreqErr FreqErrStats `json:"freq_err"`

	Scenarios []ScenarioOutcome `json:"scenarios"`

	freqErrs []float64
}

func (c *Corpus) add(sc *scenario, m matchResult) {
	c.Detections += m.tp + m.fp
	c.TP += m.tp
	c.FP += m.fp
	c.DecoyHits += m.decoyHits
	c.CarriersFound += len(m.found)
	c.CarriersTotal += sc.planted
	for _, e := range m.freqErr {
		c.freqErrs = append(c.freqErrs, e)
	}
	c.Scenarios = append(c.Scenarios, ScenarioOutcome{
		Index: sc.index, Seed: sc.seed,
		Planted: sc.planted, Decoys: sc.decoys,
		TP: m.tp, FP: m.fp, Missed: sc.planted - len(m.found),
	})
}

func (c *Corpus) finalize() {
	c.Precision = precision(c.TP, c.FP)
	c.Recall = recall(c.CarriersFound, c.CarriersTotal)
	c.F1 = f1(c.Precision, c.Recall)
	c.FreqErr = freqErrStats(c.freqErrs)
	c.freqErrs = nil
}

// precision follows the vacuous-truth convention: no detections at all is
// a clean (if useless) report, not an imprecise one. Recall catches the
// uselessness.
func precision(tp, fp int) float64 {
	if tp+fp == 0 {
		return 1
	}
	return float64(tp) / float64(tp+fp)
}

func recall(found, total int) float64 {
	if total == 0 {
		return 1
	}
	return float64(found) / float64(total)
}

func f1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func freqErrStats(errs []float64) FreqErrStats {
	s := FreqErrStats{Count: len(errs)}
	if len(errs) == 0 {
		return s
	}
	sorted := append([]float64(nil), errs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, e := range sorted {
		sum += e
	}
	s.MeanAbsHz = sum / float64(len(sorted))
	s.MedianAbsHz = quantile(sorted, 0.5)
	s.P95AbsHz = quantile(sorted, 0.95)
	s.MaxAbsHz = sorted[len(sorted)-1]
	return s
}

// quantile reads the q-th quantile off an ascending-sorted slice
// (nearest-rank, matching the obs histogram convention).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// ROCPoint is one operating point of the threshold sweep: the corpus
// re-scored as if Campaign.MinScore had been Threshold.
type ROCPoint struct {
	Threshold     float64 `json:"threshold"`
	TP            int     `json:"tp"`
	FP            int     `json:"fp"`
	CarriersFound int     `json:"carriers_found"`
	Precision     float64 `json:"precision"`
	Recall        float64 `json:"recall"`
	F1            float64 `json:"f1"`
}

// rocAccum collects scored candidates from the unthresholded corpus pass.
// Post-hoc thresholding of that pass is a slightly optimistic stand-in
// for re-running each threshold (the pipeline's corroboration gate scales
// with MinScore), so the gated metrics — not the ROC — feed the baseline;
// the curve ranks thresholds against each other.
type rocAccum struct {
	tpScores    []float64
	fpScores    []float64
	carrierBest []float64 // best score per found modulated carrier
	carriers    int       // total modulated carriers in corpus
}

func (a *rocAccum) add(sc *scenario, m matchResult) {
	a.tpScores = append(a.tpScores, m.tpScores...)
	a.fpScores = append(a.fpScores, m.fpScores...)
	for _, s := range m.found {
		a.carrierBest = append(a.carrierBest, s)
	}
	a.carriers += sc.planted
}

// points sweeps the threshold over the observed score range and emits up
// to cfg.ROCPoints operating points (descending threshold: the curve
// walks from conservative to permissive). The resolved gate threshold is
// always included so the curve shows the shipped operating point.
func (a *rocAccum) points(cfg Config) []ROCPoint {
	sort.Float64s(a.tpScores)
	sort.Float64s(a.fpScores)
	sort.Float64s(a.carrierBest)

	// Candidate thresholds: every distinct observed score, plus the gate.
	seen := map[float64]bool{cfg.resolvedMinScore(): true, 0: true}
	for _, s := range a.tpScores {
		seen[s] = true
	}
	for _, s := range a.fpScores {
		seen[s] = true
	}
	cands := make([]float64, 0, len(seen))
	for t := range seen {
		cands = append(cands, t)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(cands)))
	if len(cands) > cfg.ROCPoints {
		// Subsample evenly, keeping both ends and the gate threshold.
		kept := make([]float64, 0, cfg.ROCPoints+1)
		for i := 0; i < cfg.ROCPoints; i++ {
			kept = append(kept, cands[i*(len(cands)-1)/(cfg.ROCPoints-1)])
		}
		gate := cfg.resolvedMinScore()
		hasGate := false
		for _, t := range kept {
			if t == gate {
				hasGate = true
				break
			}
		}
		if !hasGate {
			kept = append(kept, gate)
			sort.Sort(sort.Reverse(sort.Float64Slice(kept)))
		}
		cands = kept
	}

	pts := make([]ROCPoint, 0, len(cands))
	for _, t := range cands {
		tp := countAtOrAbove(a.tpScores, t)
		fp := countAtOrAbove(a.fpScores, t)
		found := countAtOrAbove(a.carrierBest, t)
		p := ROCPoint{
			Threshold: t, TP: tp, FP: fp, CarriersFound: found,
			Precision: precision(tp, fp),
			Recall:    recall(found, a.carriers),
		}
		p.F1 = f1(p.Precision, p.Recall)
		pts = append(pts, p)
	}
	return pts
}

// countAtOrAbove counts elements ≥ t in an ascending-sorted slice.
func countAtOrAbove(sorted []float64, t float64) int {
	return len(sorted) - sort.SearchFloat64s(sorted, t)
}
