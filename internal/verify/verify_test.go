package verify

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"testing"

	"fase/internal/core"
	"fase/internal/emsim"
	"fase/internal/obs"
)

// tinyConfig keeps harness tests fast: three scenarios on the default
// band, coarse ROC.
func tinyConfig() Config {
	return Config{Scenarios: 3, ROCPoints: 8}
}

// TestEvaluateDeterministic: the harness is a pure function of its config
// — same seed, same report, regardless of campaign parallelism.
func TestEvaluateDeterministic(t *testing.T) {
	cfgA := tinyConfig()
	cfgA.Faults = DefaultFaultPlan()
	cfgB := cfgA
	cfgB.Parallelism = 1

	repA, err := Evaluate(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := Evaluate(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	// Parallelism is config, not content: it does not appear in the
	// report, so the two marshalings must be byte-identical.
	a, _ := json.Marshal(repA)
	b, _ := json.Marshal(repB)
	if !bytes.Equal(a, b) {
		t.Errorf("report differs across parallelism:\n%s\nvs\n%s", a, b)
	}
	if repA.CarriersTotal == 0 {
		t.Error("corpus generated no planted carriers")
	}
	if repA.NoFault == nil || repA.Faulted == nil {
		t.Fatal("missing corpus pass in report")
	}
	if len(repA.ROC) == 0 {
		t.Error("no ROC points")
	}
}

// TestFaultOffBitIdentical: a zero-value fault plan draws its random slots
// but applies nothing, so campaign results must be bit-identical to a nil
// plan — the acceptance contract that fault support leaves the default
// pipeline untouched.
func TestFaultOffBitIdentical(t *testing.T) {
	cfg, err := tinyConfig().withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	sc := newScenario(cfg, 0)
	campNil := cfg.campaign(sc.seed, nil, false)
	campZero := cfg.campaign(sc.seed, &emsim.FaultPlan{}, false)

	resNil, err := (&core.Runner{Scene: sc.scene}).RunE(campNil)
	if err != nil {
		t.Fatal(err)
	}
	resZero, err := (&core.Runner{Scene: sc.scene}).RunE(campZero)
	if err != nil {
		t.Fatal(err)
	}
	if len(resNil.Detections) != len(resZero.Detections) {
		t.Fatalf("zero-value fault plan changed detection count: %d vs %d",
			len(resNil.Detections), len(resZero.Detections))
	}
	for i := range resNil.Detections {
		dn, dz := resNil.Detections[i], resZero.Detections[i]
		if dn.Freq != dz.Freq || dn.Score != dz.Score {
			t.Errorf("detection %d differs under zero-value plan: %+v vs %+v", i, dn, dz)
		}
	}
	for h, trace := range resNil.Scores {
		for k, v := range trace {
			if resZero.Scores[h][k] != v {
				t.Fatalf("score trace h=%d bin %d differs under zero-value plan", h, k)
			}
		}
	}
}

// TestGroundTruthHasBothClasses: over a few scenarios the generator must
// produce both planted carriers and decoys, or the corpus measures
// nothing.
func TestGroundTruthHasBothClasses(t *testing.T) {
	cfg, err := Config{Scenarios: 8}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	var planted, decoys int
	for i := 0; i < cfg.Scenarios; i++ {
		sc := newScenario(cfg, i)
		if sc.planted == 0 {
			t.Errorf("scenario %d has no planted carrier", i)
		}
		planted += sc.planted
		decoys += sc.decoys
	}
	if decoys == 0 {
		t.Error("corpus has no decoy carriers at all")
	}
	if planted < cfg.Scenarios {
		t.Errorf("only %d planted carriers over %d scenarios", planted, cfg.Scenarios)
	}
}

// TestMatchDetections covers the matching rules: modulated preference,
// decoy attribution, tolerance edges.
func TestMatchDetections(t *testing.T) {
	truth := []emsim.GroundTruthCarrier{
		{Freq: 100e3, Modulated: true},
		{Freq: 104e3, Modulated: false},
		{Freq: 500e3, Modulated: false},
		{Freq: 900e3, Modulated: true},
	}
	dets := []core.Detection{
		{Freq: 101e3, Score: 50},   // between carrier and decoy: credited to the carrier
		{Freq: 500.5e3, Score: 40}, // on the decoy only: FP, decoy hit
		{Freq: 700e3, Score: 35},   // on nothing: plain FP
		{Freq: 899e3, Score: 90},   // second modulated carrier
		{Freq: 901e3, Score: 20},   // same carrier again: still TP, not double-found
	}
	m := matchDetections(truth, dets, 2.5e3)
	if m.tp != 3 || m.fp != 2 || m.decoyHits != 1 {
		t.Errorf("tp=%d fp=%d decoyHits=%d, want 3/2/1", m.tp, m.fp, m.decoyHits)
	}
	if len(m.found) != 2 {
		t.Errorf("found %d carriers, want 2", len(m.found))
	}
	if s := m.found[3]; s != 90 {
		t.Errorf("carrier 3 best score %g, want 90 (the stronger of two matches)", s)
	}
	if e := m.freqErr[3]; e != 1e3 {
		t.Errorf("carrier 3 freq err %g, want 1000 (the closer of two matches)", e)
	}
	// Outside tolerance: nothing matches.
	if m2 := matchDetections(truth, []core.Detection{{Freq: 103e3}}, 500); m2.tp != 0 || m2.fp != 1 {
		t.Errorf("out-of-tolerance detection scored tp=%d fp=%d, want 0/1", m2.tp, m2.fp)
	}
}

// TestCorpusMetrics checks the precision/recall conventions directly.
func TestCorpusMetrics(t *testing.T) {
	if p := precision(0, 0); p != 1 {
		t.Errorf("vacuous precision %g, want 1", p)
	}
	if r := recall(0, 0); r != 1 {
		t.Errorf("vacuous recall %g, want 1", r)
	}
	if f := f1(0, 0); f != 0 {
		t.Errorf("f1(0,0) = %g, want 0", f)
	}
	if f := f1(1, 1); f != 1 {
		t.Errorf("f1(1,1) = %g, want 1", f)
	}
	st := freqErrStats([]float64{100, 200, 300, 400})
	if st.Count != 4 || st.MeanAbsHz != 250 || st.MaxAbsHz != 400 {
		t.Errorf("freq err stats %+v", st)
	}
	if st.MedianAbsHz < 100 || st.MedianAbsHz > 300 {
		t.Errorf("median %g outside sample range", st.MedianAbsHz)
	}
}

// TestROCMonotonic: lowering the threshold can only add detections.
func TestROCMonotonic(t *testing.T) {
	a := rocAccum{
		tpScores:    []float64{5, 40, 300, 2e4, 1e6},
		fpScores:    []float64{2, 35},
		carrierBest: []float64{40, 300, 2e4, 1e6},
		carriers:    5,
	}
	cfg, err := tinyConfig().withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	pts := a.points(cfg)
	if len(pts) == 0 {
		t.Fatal("no ROC points")
	}
	gateSeen := false
	for i, p := range pts {
		if p.Threshold == cfg.resolvedMinScore() {
			gateSeen = true
		}
		if i == 0 {
			continue
		}
		prev := pts[i-1]
		if p.Threshold > prev.Threshold {
			t.Fatalf("ROC thresholds not descending at %d", i)
		}
		if p.TP < prev.TP || p.FP < prev.FP || p.CarriersFound < prev.CarriersFound {
			t.Errorf("ROC counts shrank while threshold fell at %d: %+v -> %+v", i, prev, p)
		}
	}
	if !gateSeen {
		t.Error("gate threshold missing from ROC sweep")
	}
	last := pts[len(pts)-1]
	if last.TP != 5 || last.FP != 2 || last.CarriersFound != 4 {
		t.Errorf("threshold-0 point %+v, want all candidates counted", last)
	}
}

// TestBaselineCheck exercises the gate: floors, regressions, identity.
func TestBaselineCheck(t *testing.T) {
	rep := &Report{
		Schema: ReportSchema, Scenarios: 60, Seed: 1,
		NoFault: &Corpus{Precision: 0.99, Recall: 0.97, F1: 0.98},
		Faulted: &Corpus{Precision: 0.92, Recall: 0.85, F1: 0.884, Detections: 150, FP: 12},
	}
	base := BaselineOf(rep)
	if err := Check(rep, base); err != nil {
		t.Errorf("self-check failed: %v", err)
	}

	worse := *rep
	worse.NoFault = &Corpus{Precision: 0.99, Recall: 0.90, F1: 0.943}
	if err := Check(&worse, base); err == nil {
		t.Error("F1 below floor passed the gate")
	}

	slightly := *rep
	slightly.NoFault = &Corpus{Precision: 0.98, Recall: 0.955, F1: 0.967}
	if err := Check(&slightly, base); err == nil {
		t.Error("F1 regression below baseline passed the gate")
	}

	imprecise := *rep
	imprecise.Faulted = &Corpus{Precision: 0.88, Recall: 0.85, F1: 0.865}
	if err := Check(&imprecise, base); err == nil {
		t.Error("faulted precision below floor passed the gate")
	}

	mismatched := *rep
	mismatched.Seed = 2
	if err := Check(&mismatched, base); err == nil {
		t.Error("corpus identity mismatch passed the gate")
	}

	// A baseline recorded without a fault pass skips the fault regression
	// but the absolute precision floor still applies.
	noFaultBase := base
	noFaultBase.FaultedPrecision, noFaultBase.FaultedRecall = 0, 0
	if err := Check(rep, noFaultBase); err != nil {
		t.Errorf("fault-less baseline rejected a passing run: %v", err)
	}
}

// TestBaselineRoundTrip pins the JSON schema.
func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	b := Baseline{
		Schema: BaselineSchema, Scenarios: 60, Seed: 1,
		NoFaultPrecision: 0.99, NoFaultRecall: 0.97, NoFaultF1: 0.98,
		FaultedPrecision: 0.92, FaultedRecall: 0.85,
	}
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Errorf("round trip changed baseline: %+v vs %+v", got, b)
	}
	bad := b
	bad.Schema = "nope"
	path2 := filepath.Join(dir, "bad.json")
	if err := bad.WriteFile(path2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(path2); err == nil {
		t.Error("wrong schema accepted")
	}
}

// TestEvaluateManifest: an obs-instrumented harness run produces a
// manifest that passes schema validation and carries accuracy stats.
func TestEvaluateManifest(t *testing.T) {
	cfg := tinyConfig()
	cfg.Faults = DefaultFaultPlan()
	cfg.Obs = obs.NewRun()
	rep, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := cfg.Obs.Manifest()
	if m == nil {
		t.Fatal("no manifest from instrumented run")
	}
	if m.Accuracy == nil {
		t.Fatal("manifest missing accuracy stats")
	}
	if m.Accuracy.Faulted == nil {
		t.Error("manifest accuracy missing fault pass")
	}
	if m.Accuracy.NoFault.F1 != rep.NoFault.F1 {
		t.Errorf("manifest F1 %g != report F1 %g", m.Accuracy.NoFault.F1, rep.NoFault.F1)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateManifest(data); err != nil {
		t.Errorf("harness manifest fails validation: %v", err)
	}
	// Corrupt the accuracy block: validation must catch it.
	m.Accuracy.NoFault.Precision = math.NaN()
	data, _ = json.Marshal(m)
	if err := obs.ValidateManifest(data); err == nil {
		t.Error("NaN precision passed manifest validation")
	}
}

// TestConfigValidation: malformed harness configs are rejected up front.
func TestConfigValidation(t *testing.T) {
	if _, err := Evaluate(Config{Scenarios: -1}); err == nil {
		t.Error("negative scenario count accepted")
	}
	if _, err := Evaluate(Config{Scenarios: 1, Faults: &emsim.FaultPlan{DropProb: 1.5}}); err == nil {
		t.Error("malformed fault plan accepted")
	}
	if _, err := Evaluate(Config{Scenarios: 1, F1: 5e5, F2: 4e5}); err == nil {
		t.Error("inverted band accepted")
	}
}

// TestTablesAndCSV smoke-checks the render paths.
func TestTablesAndCSV(t *testing.T) {
	rep := &Report{
		Schema: ReportSchema, Scenarios: 2, Seed: 1,
		Config:  ReportConfig{X: "LDM", Y: "LDL1", MinScore: 30, FaultPlan: DefaultFaultPlan()},
		NoFault: &Corpus{Precision: 1, Recall: 1, F1: 1},
		Faulted: &Corpus{Precision: 0.9, Recall: 0.8, F1: 0.847},
		ROC:     []ROCPoint{{Threshold: 30, TP: 5, Precision: 1, Recall: 0.9, F1: 0.947}},
	}
	tables := Tables(rep)
	if len(tables) != 4 {
		t.Errorf("got %d tables, want 4 (summary, clean, faulted, roc)", len(tables))
	}
	var buf bytes.Buffer
	if err := WriteROCCSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	want := "threshold,tp,fp,carriers_found,precision,recall,f1\n30,5,0,0,1,0.9,0.947\n"
	if buf.String() != want {
		t.Errorf("ROC CSV:\n%q\nwant\n%q", buf.String(), want)
	}
}
