package verify

import (
	"encoding/json"
	"fmt"
	"os"
)

// BaselineSchema identifies the committed accuracy-baseline layout.
const BaselineSchema = "fase-verify-baseline/1"

// Accuracy floors. The clean corpus must essentially always work; the
// fault corpus is allowed to miss carriers (degraded SNR costs recall by
// design) but must not start *inventing* them — precision is the fault
// gate, per the paper's premise that a reported carrier sends a human to
// a profiling bench.
const (
	MinNoFaultF1        = 0.95
	MinFaultedPrecision = 0.9
)

// Baseline is the committed accuracy reference (VERIFY_baseline.json).
// `make accuracy` fails when a fresh run scores below it — or below the
// absolute floors — the same contract BENCH_*.json enforces for speed.
type Baseline struct {
	Schema    string `json:"schema"`
	Scenarios int    `json:"scenarios"`
	Seed      int64  `json:"seed"`

	NoFaultPrecision float64 `json:"no_fault_precision"`
	NoFaultRecall    float64 `json:"no_fault_recall"`
	NoFaultF1        float64 `json:"no_fault_f1"`

	// Faulted* are zero when the baseline was recorded without a fault
	// pass; Check then skips the fault comparison.
	FaultedPrecision float64 `json:"faulted_precision,omitempty"`
	FaultedRecall    float64 `json:"faulted_recall,omitempty"`

	// Budget* pin the adaptive planner's best gated operating point
	// (recall ratio vs exhaustive, and the capture fraction it spent).
	// Zero when the baseline was recorded without a budget pass; Check
	// then skips the budget comparison.
	BudgetRecallRatio float64 `json:"budget_recall_ratio,omitempty"`
	BudgetCaptureFrac float64 `json:"budget_capture_frac,omitempty"`
}

// BaselineOf extracts the gated metrics a report would be pinned at.
func BaselineOf(r *Report) Baseline {
	b := Baseline{
		Schema:           BaselineSchema,
		Scenarios:        r.Scenarios,
		Seed:             r.Seed,
		NoFaultPrecision: r.NoFault.Precision,
		NoFaultRecall:    r.NoFault.Recall,
		NoFaultF1:        r.NoFault.F1,
	}
	if r.Faulted != nil {
		b.FaultedPrecision = r.Faulted.Precision
		b.FaultedRecall = r.Faulted.Recall
	}
	if r.Budget != nil {
		if best, err := budgetGate(r.Budget); err == nil {
			b.BudgetRecallRatio = best.RecallRatio
			b.BudgetCaptureFrac = best.CaptureFrac
		}
	}
	return b
}

// WriteFile writes the baseline as indented JSON.
func (b Baseline) WriteFile(path string) error {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("verify: marshal baseline: %w", err)
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// ReadBaseline loads a committed baseline.
func ReadBaseline(path string) (Baseline, error) {
	var b Baseline
	raw, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return b, fmt.Errorf("verify: parse baseline %s: %w", path, err)
	}
	if b.Schema != BaselineSchema {
		return b, fmt.Errorf("verify: baseline %s has schema %q, want %q", path, b.Schema, BaselineSchema)
	}
	return b, nil
}

// regressTol absorbs floating-point noise in the comparison; corpus
// metrics are ratios of integer counts, so any real regression moves
// them by far more than this.
const regressTol = 1e-9

// Check gates a fresh report against the committed baseline: the corpus
// identity must match (different scenarios/seed means the numbers are
// incomparable), the absolute floors must hold, and no gated metric may
// regress below the committed value.
func Check(r *Report, b Baseline) error {
	if r.Scenarios != b.Scenarios || r.Seed != b.Seed {
		return fmt.Errorf("verify: corpus mismatch: run is %d scenarios seed %d, baseline %d scenarios seed %d (regenerate the baseline)",
			r.Scenarios, r.Seed, b.Scenarios, b.Seed)
	}
	if r.NoFault.F1 < MinNoFaultF1 {
		return fmt.Errorf("verify: clean-corpus F1 %.4f below floor %.2f (precision %.4f, recall %.4f)",
			r.NoFault.F1, MinNoFaultF1, r.NoFault.Precision, r.NoFault.Recall)
	}
	if r.NoFault.F1+regressTol < b.NoFaultF1 {
		return fmt.Errorf("verify: clean-corpus F1 regressed: %.4f < baseline %.4f", r.NoFault.F1, b.NoFaultF1)
	}
	if r.Faulted != nil {
		if r.Faulted.Precision < MinFaultedPrecision {
			return fmt.Errorf("verify: fault-corpus precision %.4f below floor %.2f (%d FP of %d detections)",
				r.Faulted.Precision, MinFaultedPrecision, r.Faulted.FP, r.Faulted.Detections)
		}
		if b.FaultedPrecision > 0 && r.Faulted.Precision+regressTol < b.FaultedPrecision {
			return fmt.Errorf("verify: fault-corpus precision regressed: %.4f < baseline %.4f",
				r.Faulted.Precision, b.FaultedPrecision)
		}
	}
	if r.Budget != nil {
		best, err := budgetGate(r.Budget)
		if err != nil {
			return err
		}
		if b.BudgetRecallRatio > 0 && best.RecallRatio+regressTol < b.BudgetRecallRatio {
			return fmt.Errorf("verify: budget recall ratio regressed: %.4f < baseline %.4f (at %.1f%% captures)",
				best.RecallRatio, b.BudgetRecallRatio, 100*best.CaptureFrac)
		}
	}
	return nil
}
