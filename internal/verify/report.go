package verify

import (
	"encoding/json"
	"fmt"
	"os"

	"fase/internal/emsim"
	"fase/internal/obs"
)

// ReportSchema identifies the accuracy-report JSON layout.
const ReportSchema = "fase-verify-report/1"

// ReportConfig is the resolved harness configuration as recorded in the
// report (and, via obs, in the run manifest): every defaulted field
// filled in, so a report is reproducible from its own header.
type ReportConfig struct {
	F1               float64          `json:"f1_hz"`
	F2               float64          `json:"f2_hz"`
	Fres             float64          `json:"fres_hz"`
	FAlt1            float64          `json:"falt1_hz"`
	FDelta           float64          `json:"fdelta_hz"`
	X                string           `json:"x"`
	Y                string           `json:"y"`
	MinScore         float64          `json:"min_score"`
	MatchToleranceHz float64          `json:"match_tolerance_hz"`
	MinDelta         float64          `json:"min_delta"`
	FaultPlan        *emsim.FaultPlan `json:"fault_plan,omitempty"`
}

func reportConfig(cfg Config) ReportConfig {
	return ReportConfig{
		F1: cfg.F1, F2: cfg.F2, Fres: cfg.Fres,
		FAlt1: cfg.FAlt1, FDelta: cfg.FDelta,
		X: cfg.X.String(), Y: cfg.Y.String(),
		MinScore:         cfg.resolvedMinScore(),
		MatchToleranceHz: cfg.MatchToleranceHz,
		MinDelta:         cfg.MinDelta,
		FaultPlan:        cfg.Faults,
	}
}

// Report is the accuracy harness's full output: corpus-wide ground-truth
// totals, the gated clean-corpus metrics, the ROC sweep, and (when a
// FaultPlan was supplied) the gated fault-corpus metrics.
type Report struct {
	Schema    string       `json:"schema"`
	Scenarios int          `json:"scenarios"`
	Seed      int64        `json:"seed"`
	Config    ReportConfig `json:"config"`

	// CarriersTotal / DecoysTotal count modulated and unmodulated
	// ground-truth carriers across the whole corpus.
	CarriersTotal int `json:"carriers_total"`
	DecoysTotal   int `json:"decoys_total"`

	NoFault *Corpus    `json:"no_fault"`
	Faulted *Corpus    `json:"faulted,omitempty"`
	ROC     []ROCPoint `json:"roc"`
	// Budget is the recall-vs-budget sweep of the adaptive planner; nil
	// unless Config.Budget requested the pass.
	Budget *BudgetReport `json:"budget,omitempty"`

	// SimulatedSeconds is the modeled analyzer observation time summed
	// over every campaign the harness ran (both passes).
	SimulatedSeconds float64 `json:"simulated_analyzer_seconds"`
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("verify: marshal report: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadReport loads a report written by WriteFile.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("verify: parse report %s: %w", path, err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("verify: report %s has schema %q, want %q", path, r.Schema, ReportSchema)
	}
	return &r, nil
}

// accuracyStats folds the corpus metrics into the run-manifest shape.
func (r *Report) accuracyStats() *obs.AccuracyStats {
	s := &obs.AccuracyStats{
		Scenarios: r.Scenarios,
		NoFault:   accuracyCorpus(r.NoFault),
	}
	if r.Faulted != nil {
		c := accuracyCorpus(r.Faulted)
		s.Faulted = &c
	}
	return s
}

func accuracyCorpus(c *Corpus) obs.AccuracyCorpus {
	return obs.AccuracyCorpus{
		TruePositives:    c.TP,
		FalsePositives:   c.FP,
		FalseNegatives:   c.CarriersTotal - c.CarriersFound,
		Precision:        c.Precision,
		Recall:           c.Recall,
		F1:               c.F1,
		MeanAbsFreqErrHz: c.FreqErr.MeanAbsHz,
	}
}
