// Package verify is the ground-truth accuracy harness: it generates a
// seeded-random corpus of machine models with known planted carriers and
// decoys (machine.RandomSystem), runs the *unchanged* core.Campaign over
// each one — optionally through a deterministically degraded measurement
// chain (emsim.FaultPlan) — and scores the detections against the scene's
// ground truth: precision/recall/F1, carrier-frequency error
// distributions, and an ROC sweep over the MinScore threshold.
//
// The committed VERIFY_baseline.json plus the Makefile `accuracy` target
// turn detection accuracy into a regression-tested quantity, the same way
// BENCH_*.json already gates speed: a change that silently stops finding
// planted carriers (or starts reporting decoys) fails CI even though every
// equivalence test still passes.
package verify

import (
	"fmt"
	"math/rand"

	"fase/internal/activity"
	"fase/internal/core"
	"fase/internal/emsim"
	"fase/internal/machine"
	"fase/internal/obs"
)

// Config tunes the accuracy harness. The zero value of every field
// selects the default noted on it, so verify.Evaluate(verify.Config{})
// runs the standard 60-scenario corpus.
type Config struct {
	// Scenarios is the corpus size. Zero means 60.
	Scenarios int
	// Seed drives corpus generation and every campaign. Zero means 1.
	Seed int64
	// F1, F2, Fres, FAlt1, FDelta parameterize the per-scenario campaign.
	// Zero means the regulator-band corpus campaign: 200–900 kHz at
	// 100 Hz RBW, f_alt 43.3 kHz, f_Δ 1 kHz.
	F1, F2, Fres  float64
	FAlt1, FDelta float64
	// X, Y is the alternation pair. Both zero means LDM/LDL1 — a
	// memory-only pair, so core-rail emitters are ground-truth decoys.
	X, Y activity.Kind
	// MinScore is the gated detection threshold (the campaign default 30
	// when zero; core.MinScoreZero for a literal zero).
	MinScore float64
	// MatchToleranceHz is the radius within which a detection matches a
	// ground-truth carrier. Zero means the campaign's merge radius
	// (24 bins · Fres).
	MatchToleranceHz float64
	// MinDelta is the domain-load change below which a carrier does not
	// count as modulated ground truth (see Scene.GroundTruth). Zero
	// means 0.25.
	MinDelta float64
	// Faults is the measurement-chain degradation for the fault pass;
	// nil skips that pass. Use DefaultFaultPlan for the standard suite.
	Faults *emsim.FaultPlan
	// Budget, when true, adds the recall-vs-budget pass: the corpus
	// re-run with the adaptive planner at the standard budget fractions
	// against an exhaustive reference at the pinned budgetMaxFFT (see
	// budget.go), producing Report.Budget and its gates.
	Budget bool
	// Spec bounds the randomized systems; its F1/F2 are filled from the
	// campaign band.
	Spec machine.RandomSpec
	// Parallelism is forwarded to each campaign. Zero means GOMAXPROCS.
	Parallelism int
	// ROCPoints caps the ROC sweep's resolution. Zero means 48.
	ROCPoints int
	// Obs, when non-nil, attaches run-level observability: the harness
	// stages (generate / clean corpus / fault corpus) are timed, capture
	// counts attributed, and the aggregate accuracy statistics folded
	// into the finished run manifest (Manifest.Accuracy).
	Obs *obs.Run
}

func (c Config) withDefaults() (Config, error) {
	if c.Scenarios == 0 {
		c.Scenarios = 60
	}
	if c.Scenarios < 1 {
		return c, fmt.Errorf("verify: need at least one scenario, got %d", c.Scenarios)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.F1 == 0 && c.F2 == 0 {
		c.F1, c.F2 = 200e3, 900e3
	}
	if c.Fres == 0 {
		c.Fres = 100
	}
	if c.FAlt1 == 0 {
		c.FAlt1 = 43.3e3
	}
	if c.FDelta == 0 {
		c.FDelta = 1e3
	}
	if c.X == activity.Idle && c.Y == activity.Idle {
		c.X, c.Y = activity.LDM, activity.LDL1
	}
	if c.MatchToleranceHz == 0 {
		c.MatchToleranceHz = 24 * c.Fres
	}
	if c.MinDelta == 0 {
		c.MinDelta = 0.25
	}
	if c.ROCPoints == 0 {
		c.ROCPoints = 48
	}
	c.Spec.F1, c.Spec.F2 = c.F1, c.F2
	if c.Spec.AvoidSpacings == nil {
		// Keep every pair of generated lines out of the detector's m·f_alt
		// ghost windows (see filterArtifacts): a weak carrier at such a
		// spacing from a much stronger one is correctly attributed to the
		// strong carrier's flanks and would be an unfindable truth. The
		// ladder is the campaign default (5 alternation frequencies); the
		// slack doubles the detector's merge radius for margin.
		const numAlts, maxHarmonic = 5, 5
		faltMin, faltMax := c.FAlt1, c.FAlt1+(numAlts-1)*c.FDelta
		slack := 2 * 24 * c.Fres
		for m := 1; m <= maxHarmonic; m++ {
			c.Spec.AvoidSpacings = append(c.Spec.AvoidSpacings,
				[2]float64{float64(m)*faltMin - slack, float64(m)*faltMax + slack})
		}
	}
	if err := c.Faults.Validate(); err != nil {
		return c, err
	}
	// Validate the rest by building the campaign once up front.
	if err := c.campaign(0, nil, false).Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// resolvedMinScore is the gate threshold after sentinel resolution.
func (c Config) resolvedMinScore() float64 {
	switch c.MinScore {
	case 0:
		return 30
	case core.MinScoreZero:
		return 0
	default:
		return c.MinScore
	}
}

// DefaultFaultPlan is the standard degradation suite the `make accuracy`
// fault corpus runs: a few percent of captures dropped or cut short, a
// mild ADC clip, a hotter noise floor, occasional burst interferers, and
// a 0.2% micro-benchmark clock drift.
func DefaultFaultPlan() *emsim.FaultPlan {
	return &emsim.FaultPlan{
		Seed:               0xFA5E,
		DropProb:           0.04,
		TruncProb:          0.05,
		TruncKeep:          0.4,
		ClipDBm:            -92,
		ExtraNoiseDBmPerHz: -165,
		BurstProb:          0.05,
		BurstDBm:           -95,
		FAltDriftPPM:       2000,
	}
}

// scenario is one corpus entry: a generated scene plus its ground truth.
type scenario struct {
	index   int
	seed    int64
	scene   *emsim.Scene
	truth   []emsim.GroundTruthCarrier
	planted int // modulated ground-truth carriers in band
	decoys  int // unmodulated ground-truth carriers in band
}

// scenarioSeed spreads scenario indices across seed space (6700417 is
// prime, in the same spirit as the campaign's per-sweep seed strides).
func (c Config) scenarioSeed(i int) int64 { return c.Seed + int64(i)*6700417 }

// newScenario generates corpus entry i. Generation retries with a
// perturbed seed until the scene holds at least one planted carrier —
// RandomSystem guarantees one planted *emitter*, and the band margin
// guarantees its fundamental is in band, so in practice the first attempt
// wins; the loop is a safety net against future spec changes.
func newScenario(cfg Config, i int) *scenario {
	seed := cfg.scenarioSeed(i)
	for attempt := 0; ; attempt++ {
		r := rand.New(rand.NewSource(seed + int64(attempt)*104729))
		sys := machine.RandomSystem(r, cfg.Spec)
		scene := sys.Scene(seed, false)
		truth := scene.GroundTruth(cfg.F1, cfg.F2, cfg.X, cfg.Y, cfg.MinDelta)
		sc := &scenario{index: i, seed: seed, scene: scene, truth: truth}
		for _, t := range truth {
			if t.Modulated {
				sc.planted++
			} else {
				sc.decoys++
			}
		}
		if sc.planted > 0 || attempt >= 20 {
			return sc
		}
	}
}

// campaign builds the per-scenario campaign. A nil scenario (cfg
// validation) gets seed 0.
func (c Config) campaign(seed int64, faults *emsim.FaultPlan, rocPass bool) core.Campaign {
	camp := core.Campaign{
		F1: c.F1, F2: c.F2, Fres: c.Fres,
		FAlt1: c.FAlt1, FDelta: c.FDelta,
		X: c.X, Y: c.Y,
		MinScore:    c.MinScore,
		Seed:        seed,
		Parallelism: c.Parallelism,
		Faults:      faults,
	}
	if rocPass {
		camp.MinScore = core.MinScoreZero
	}
	return camp
}

// Evaluate runs the corpus and scores it. See Report for what comes back.
func Evaluate(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	run := cfg.Obs
	capsBefore := obs.Default.Snapshot().Counters[obs.MetricSpecanCaptures]

	endGen := run.Stage("generate")
	scens := make([]*scenario, cfg.Scenarios)
	for i := range scens {
		scens[i] = newScenario(cfg, i)
	}
	endGen()

	rep := &Report{
		Schema:    ReportSchema,
		Scenarios: cfg.Scenarios,
		Seed:      cfg.Seed,
		Config:    reportConfig(cfg),
	}
	for _, sc := range scens {
		rep.CarriersTotal += sc.planted
		rep.DecoysTotal += sc.decoys
	}

	// Clean corpus: the gated pass at the default threshold plus — per
	// scenario, reusing the same seeds so the sweeps are identical — an
	// unthresholded pass whose scored candidates feed the ROC sweep.
	endClean := run.Stage("clean_corpus")
	var roc rocAccum
	rep.NoFault, err = runCorpus(cfg, scens, nil, &roc, &rep.SimulatedSeconds)
	endClean()
	if err != nil {
		return nil, err
	}
	rep.ROC = roc.points(cfg)

	if cfg.Faults != nil {
		endFault := run.Stage("fault_corpus")
		rep.Faulted, err = runCorpus(cfg, scens, cfg.Faults, nil, &rep.SimulatedSeconds)
		endFault()
		if err != nil {
			return nil, err
		}
	}

	if cfg.Budget {
		endBudget := run.Stage("budget_corpus")
		rep.Budget, err = runBudget(cfg, scens, &rep.SimulatedSeconds)
		endBudget()
		if err != nil {
			return nil, err
		}
	}

	if run != nil {
		run.Captures.Add(obs.Default.Snapshot().Counters[obs.MetricSpecanCaptures] - capsBefore)
		if m := run.Finish(rep.Config, rep.SimulatedSeconds, nil); m != nil {
			m.Accuracy = rep.accuracyStats()
		}
	}
	return rep, nil
}

// runCorpus executes one pass over every scenario: the gated campaign
// always; when roc is non-nil, additionally the unthresholded ROC
// campaign. The FASE pipeline itself is untouched — only Campaign.Faults
// and MinScore differ between passes.
func runCorpus(cfg Config, scens []*scenario, faults *emsim.FaultPlan, roc *rocAccum, simSeconds *float64) (*Corpus, error) {
	corpus := &Corpus{}
	for _, sc := range scens {
		runner := &core.Runner{Scene: sc.scene}
		campSeed := sc.seed ^ 0x5CA1AB1E
		res, err := runner.RunE(cfg.campaign(campSeed, faults, false))
		if err != nil {
			return nil, fmt.Errorf("verify: scenario %d: %w", sc.index, err)
		}
		m := matchDetections(sc.truth, res.Detections, cfg.MatchToleranceHz)
		corpus.add(sc, m)
		if simSeconds != nil {
			*simSeconds += res.SimulatedSeconds
		}
		if roc != nil {
			resROC, err := runner.RunE(cfg.campaign(campSeed, faults, true))
			if err != nil {
				return nil, fmt.Errorf("verify: scenario %d (roc): %w", sc.index, err)
			}
			roc.add(sc, matchDetections(sc.truth, resROC.Detections, cfg.MatchToleranceHz))
			if simSeconds != nil {
				*simSeconds += resROC.SimulatedSeconds
			}
		}
	}
	corpus.finalize()
	return corpus, nil
}
