package emsim

import (
	"fmt"

	"fase/internal/obs"
)

// Span is a closed frequency interval [Lo, Hi] in Hz. A spectral line is a
// degenerate span with Lo == Hi.
type Span struct {
	Lo, Hi float64
}

// Extent is the frequency support a component can contribute energy to: a
// union of spans, or everywhere for wideband sources (impulse trains,
// broadband noise). The zero Extent is empty — a component that reports it
// is never rendered.
type Extent struct {
	// All marks a wideband component that contributes to every band.
	All bool
	// Spans is the support when All is false. Spans need not be sorted or
	// disjoint.
	Spans []Span
}

// Everywhere returns the extent of a wideband component.
func Everywhere() Extent { return Extent{All: true} }

// Lines returns an extent of degenerate spans at the given frequencies.
func Lines(freqs ...float64) Extent {
	spans := make([]Span, len(freqs))
	for i, f := range freqs {
		spans[i] = Span{Lo: f, Hi: f}
	}
	return Extent{Spans: spans}
}

// Overlaps reports whether any part of the extent falls inside the band,
// using Band.Overlaps (and therefore the same edge guard the renderers'
// own in-band tests apply).
func (e Extent) Overlaps(b Band) bool {
	if e.All {
		return true
	}
	for _, s := range e.Spans {
		if b.Overlaps(s.Lo, s.Hi) {
			return true
		}
	}
	return false
}

// Extenter is the planning capability: a component that can report its
// frequency support ahead of rendering, so sweeps can skip it for bands it
// cannot touch. Components that do not implement Extenter are treated as
// wideband and never skipped.
//
// The contract is exactness on the empty side: if BandExtent().Overlaps(b)
// is false, Render for a capture with band b must leave dst unchanged.
// (Extents may be conservative supersets of the true support; the
// renderers in this repository report the same lines/spans their Render
// gates on, so plan activity matches the per-call tests bit for bit.)
type Extenter interface {
	Component
	// BandExtent returns the component's frequency support.
	BandExtent() Extent
}

// Prepper is the second planning capability: a component that can
// precompute per-segment state — in-band harmonic lists, base rotator
// phasors, per-bin noise densities — that depends only on the capture
// geometry (band and sample count), not on seed, start time, or activity.
// The prepared value is handed back through Context.Prep on every capture
// rendered under the plan. Prepared values must be read-only during Render
// (one plan serves concurrent captures) and must be computed by the same
// expressions Render would evaluate inline, so planned rendering stays
// bit-identical to unplanned rendering.
type Prepper interface {
	Component
	// Prepare returns the per-segment state for captures of n samples in
	// the given band, or nil if there is nothing useful to precompute.
	Prepare(band Band, n int) any
}

// RenderPlan is the per-segment schedule computed by Scene.Plan: which
// components are active for the segment's band, and each active
// component's prepared state. A plan is immutable after Plan returns and
// is safe to share between concurrent RenderInto calls; sweeps reuse one
// plan across all averages and alternation frequencies of a segment.
type RenderPlan struct {
	band    Band
	n       int
	ncomp   int
	nactive int
	active  []bool
	prep    []any
	// Activity classification (see StaticRenderer): staticTerms[i] is the
	// per-sample addend count of component i when it is active and
	// activity-independent for this geometry, 0 otherwise. BuildStaticSet
	// consumes it so classification runs once per segment, not per capture.
	staticTerms []int
	nstatic     int
	// Conditional classification (see CondStaticRenderer): condTerms[i] is
	// the addend count of component i when it can be cached under a
	// window-constant domain load, 0 otherwise. Disjoint from staticTerms —
	// unconditional classification takes precedence.
	condTerms []int
	ncond     int
}

// Planner counters: how many plans were built and, across all of them,
// how many component/band tests kept vs culled the component. RenderInto
// separately counts the skips actually realized per capture.
var (
	plansBuilt  = obs.Default.Counter(obs.MetricPlansBuilt)
	planActive  = obs.Default.Counter(obs.MetricPlanComponentsActive)
	planSkipped = obs.Default.Counter(obs.MetricPlanComponentsSkip)
)

// Plan computes the render plan for captures of n samples in the given
// band: every component's extent is tested against the band once, and
// active Preppers precompute their per-segment state. Rendering with the
// returned plan is bit-identical to rendering without it — skipped
// components still consume their child-seed draw (see RenderInto), and
// prepared state reproduces exactly what Render would compute inline.
func (s *Scene) Plan(band Band, n int) *RenderPlan {
	p := &RenderPlan{
		band:        band,
		n:           n,
		ncomp:       len(s.Components),
		active:      make([]bool, len(s.Components)),
		prep:        make([]any, len(s.Components)),
		staticTerms: make([]int, len(s.Components)),
		condTerms:   make([]int, len(s.Components)),
	}
	for i, c := range s.Components {
		act := true
		if e, ok := c.(Extenter); ok {
			act = e.BandExtent().Overlaps(band)
		}
		p.active[i] = act
		if !act {
			continue
		}
		p.nactive++
		if pp, ok := c.(Prepper); ok {
			p.prep[i] = pp.Prepare(band, n)
		}
		if terms, ok := classifyStatic(c, band, n); ok {
			p.staticTerms[i] = terms
			p.nstatic++
		} else if terms, ok := classifyCondStatic(c, band, n); ok {
			p.condTerms[i] = terms
			p.ncond++
		}
	}
	plansBuilt.Inc()
	planActive.Add(int64(p.nactive))
	planSkipped.Add(int64(p.ncomp - p.nactive))
	return p
}

// Active reports whether component i is rendered under the plan.
func (p *RenderPlan) Active(i int) bool { return p.active[i] }

// ActiveCount returns how many of the scene's components the plan renders.
func (p *RenderPlan) ActiveCount() int { return p.nactive }

// StaticCount returns how many active components the plan classified as
// activity-independent (cacheable in a StaticSet) for this geometry.
func (p *RenderPlan) StaticCount() int { return p.nstatic }

// CondStaticCount returns how many active components the plan classified
// as conditionally static (cacheable when their window load is constant)
// for this geometry.
func (p *RenderPlan) CondStaticCount() int { return p.ncond }

// check panics if the plan was computed for a different capture geometry
// or component list than the one being rendered.
func (p *RenderPlan) check(cap Capture, ncomp int) {
	if p.band != cap.Band || p.n != cap.N || p.ncomp != ncomp {
		panic(fmt.Sprintf(
			"emsim: plan for band %+v, %d samples, %d components used with band %+v, %d samples, %d components",
			p.band, p.n, p.ncomp, cap.Band, cap.N, ncomp))
	}
}
