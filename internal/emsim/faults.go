package emsim

import (
	"fmt"
	"math"
	"math/rand"

	"fase/internal/obs"
)

// faultedCaptures counts captures that had at least one fault applied.
var faultedCaptures = obs.Default.Counter(obs.MetricFaultedCaptures)

// FaultPlan describes deterministic measurement-chain degradation applied
// to rendered captures before they reach the FFT — the software analogue
// of a flaky antenna cable, an over-driven ADC front end, a noisy LNA, or
// a drifting micro-benchmark clock. A nil plan (the default everywhere)
// injects nothing and leaves the capture path bit-identical to a build
// without fault support; the FASE algorithm itself is never changed, only
// the data it sees.
//
// All faults are deterministic functions of (Seed, capture seed): the same
// plan on the same sweep produces the same degradation regardless of
// parallelism or plan caching, so faulted corpora are exactly repeatable.
// Each per-capture decision draws from a fixed position in the capture's
// fault stream, so enabling one fault never changes another fault's draws.
type FaultPlan struct {
	// Seed decorrelates the fault stream from the scene's noise stream.
	Seed int64

	// DropProb is the probability a capture is dropped entirely: its
	// samples are zeroed, as when a trigger is missed and the averager
	// ingests a dead trace.
	DropProb float64
	// TruncProb is the probability a capture is truncated: only the first
	// TruncKeep fraction of samples survive, the rest are zeroed (a
	// transfer cut short). Widened lines and reduced power follow.
	TruncProb float64
	// TruncKeep is the fraction of samples kept on truncation. Zero means
	// 0.35.
	TruncKeep float64

	// ClipDBm, when non-zero, clamps the instantaneous envelope power at
	// this level (dBm): samples stronger than it keep their phase but lose
	// magnitude, the intermodulation signature of an over-driven ADC.
	// (0 dBm is "off": every modeled signal sits ~90 dB below it anyway.)
	ClipDBm float64

	// ExtraNoiseDBmPerHz, when non-zero, adds white complex Gaussian noise
	// of this density on top of the scene — SNR degradation from a hot
	// front end. Same calibration as Background.FloorDBmPerHz.
	ExtraNoiseDBmPerHz float64

	// BurstProb is the probability a capture carries a burst interferer: a
	// strong tone at a random in-band offset for a random 5–25% of the
	// capture (an ignition burst, a motor switching on).
	BurstProb float64
	// BurstDBm is the burst tone's power. Zero means -90 dBm.
	BurstDBm float64

	// FAltDriftPPM perturbs each sweep's *generated* alternation frequency
	// by a uniform ±ppm drift while the scoring still assumes the nominal
	// f_alt ladder — the micro-benchmark's clock disagreeing with the
	// analyzer's. Applied by core.Runner, not per capture.
	FAltDriftPPM float64
}

// Validate reports the first malformed field: probabilities outside
// [0, 1], non-finite levels, or a TruncKeep outside (0, 1].
func (p *FaultPlan) Validate() error {
	if p == nil {
		return nil
	}
	for name, v := range map[string]float64{
		"DropProb": p.DropProb, "TruncProb": p.TruncProb, "BurstProb": p.BurstProb,
	} {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("emsim: fault plan %s %g outside [0, 1]", name, v)
		}
	}
	for name, v := range map[string]float64{
		"TruncKeep": p.TruncKeep, "ClipDBm": p.ClipDBm,
		"ExtraNoiseDBmPerHz": p.ExtraNoiseDBmPerHz, "BurstDBm": p.BurstDBm,
		"FAltDriftPPM": p.FAltDriftPPM,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("emsim: fault plan %s %g is not finite", name, v)
		}
	}
	if p.TruncKeep < 0 || p.TruncKeep > 1 {
		return fmt.Errorf("emsim: fault plan TruncKeep %g outside [0, 1]", p.TruncKeep)
	}
	return nil
}

// mix derives the capture's fault-stream seed. The odd multiplier
// (splitmix64's golden-ratio constant) spreads consecutive capture seeds
// across the generator's state space.
func (p *FaultPlan) mix(captureSeed int64) int64 {
	return p.Seed ^ (captureSeed * -0x61c8864680b583eb)
}

// DriftFor returns the relative alternation-frequency drift for a sweep
// identified by sweepSeed: uniform in ±FAltDriftPPM·1e-6.
func (p *FaultPlan) DriftFor(sweepSeed int64) float64 {
	if p == nil || p.FAltDriftPPM == 0 {
		return 0
	}
	r := rand.New(rand.NewSource(p.mix(sweepSeed)))
	return p.FAltDriftPPM * 1e-6 * (2*r.Float64() - 1)
}

// Apply degrades one rendered capture in place. dst holds the capture's
// complex-baseband samples for band; captureSeed is the same seed the
// renderer used (position in the sweep), which together with Plan.Seed
// fully determines the degradation.
func (p *FaultPlan) Apply(dst []complex128, band Band, captureSeed int64) {
	if p == nil {
		return
	}
	r := rand.New(rand.NewSource(p.mix(captureSeed)))
	// Fixed draw order: every decision consumes its slot whether or not
	// the fault is enabled, so plans differing in one knob share all other
	// per-capture outcomes.
	uDrop := r.Float64()
	uTrunc := r.Float64()
	uBurst := r.Float64()
	burstFreq := (r.Float64() - 0.5) * 0.8 * band.SampleRate
	burstStart := r.Float64()
	burstLen := r.Float64()
	burstPhase := 2 * math.Pi * r.Float64()

	faulted := false
	if p.DropProb > 0 && uDrop < p.DropProb {
		for i := range dst {
			dst[i] = 0
		}
		faultedCaptures.Inc()
		return // a dead trace carries nothing, not even the other faults
	}
	if p.TruncProb > 0 && uTrunc < p.TruncProb {
		keep := p.TruncKeep
		if keep == 0 {
			keep = 0.35
		}
		for i := int(keep * float64(len(dst))); i < len(dst); i++ {
			dst[i] = 0
		}
		faulted = true
	}
	if p.BurstProb > 0 && uBurst < p.BurstProb {
		level := p.BurstDBm
		if level == 0 {
			level = -90
		}
		amp := math.Sqrt(math.Pow(10, level/10))
		n := len(dst)
		length := n/20 + int(burstLen*0.2*float64(n))
		start := int(burstStart * float64(n-length))
		s := complex(amp*math.Cos(burstPhase), amp*math.Sin(burstPhase))
		step := 2 * math.Pi * burstFreq / band.SampleRate
		rot := complex(math.Cos(step), math.Sin(step))
		for i := start; i < start+length && i < n; i++ {
			dst[i] += s
			s *= rot
		}
		faulted = true
	}
	if p.ExtraNoiseDBmPerHz != 0 {
		// White complex noise of density N0 mW/Hz: per-sample variance
		// N0·fs, split evenly across I and Q (same calibration as
		// Background's frequency-domain synthesis).
		sd := math.Sqrt(math.Pow(10, p.ExtraNoiseDBmPerHz/10) * band.SampleRate / 2)
		for i := range dst {
			dst[i] += complex(sd*r.NormFloat64(), sd*r.NormFloat64())
		}
		faulted = true
	}
	if p.ClipDBm != 0 {
		limit := math.Pow(10, p.ClipDBm/10) // envelope power limit, mW
		for i, s := range dst {
			mag2 := real(s)*real(s) + imag(s)*imag(s)
			if mag2 > limit {
				dst[i] = s * complex(math.Sqrt(limit/mag2), 0)
				faulted = true
			}
		}
	}
	if faulted {
		faultedCaptures.Inc()
	}
}
