package emsim

import (
	"math"
	"math/rand"
	"testing"
)

func TestExtentOverlaps(t *testing.T) {
	b := Band{Center: 1e6, SampleRate: 1e5} // guarded span (951e3, 1049e3)
	cases := []struct {
		name string
		e    Extent
		want bool
	}{
		{"everywhere", Everywhere(), true},
		{"line at center", Lines(1e6), true},
		{"line near edge inside", Lines(1.048e6), true},
		{"line just outside guard", Lines(1.0495e6), false},
		{"line far away", Lines(5e6), false},
		{"empty extent", Extent{}, false},
		{"span straddling band", Extent{Spans: []Span{{Lo: 0.5e6, Hi: 2e6}}}, true},
		{"span below band", Extent{Spans: []Span{{Lo: 0.1e6, Hi: 0.9e6}}}, false},
		{"span above band", Extent{Spans: []Span{{Lo: 1.1e6, Hi: 2e6}}}, false},
		{"one span of several inside", Extent{Spans: []Span{{Lo: 0.1e6, Hi: 0.2e6}, {Lo: 1e6, Hi: 1e6}}}, true},
	}
	for _, c := range cases {
		if got := c.e.Overlaps(b); got != c.want {
			t.Errorf("%s: Overlaps = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestBandOverlapsMatchesContains pins the degenerate-span identity the
// planner's culling correctness rests on: a spectral line is in band
// exactly when Contains says so.
func TestBandOverlapsMatchesContains(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		b := Band{Center: r.Float64() * 10e6, SampleRate: 1e3 + r.Float64()*10e6}
		f := r.Float64() * 12e6
		if b.Overlaps(f, f) != b.Contains(f) {
			t.Fatalf("band %+v: Overlaps(%g,%g)=%v but Contains=%v",
				b, f, f, b.Overlaps(f, f), b.Contains(f))
		}
	}
}

// TestEnvironmentBandExtents covers the extent of every environment
// component type.
func TestEnvironmentBandExtents(t *testing.T) {
	am := &AMStation{Call: "TEST", Freq: 750e3, PowerMw: 1e-9}
	if e := am.BandExtent(); len(e.Spans) != 1 || e.Spans[0] != (Span{Lo: 750e3, Hi: 750e3}) || e.All {
		t.Errorf("AMStation extent = %+v, want single line at 750 kHz", e)
	}
	fm := &FMStation{Call: "TEST", Freq: 98.5e6, PowerMw: 1e-9}
	if e := fm.BandExtent(); len(e.Spans) != 1 || e.Spans[0] != (Span{Lo: 98.5e6, Hi: 98.5e6}) || e.All {
		t.Errorf("FMStation extent = %+v, want single line at 98.5 MHz", e)
	}
	bg := &Background{FloorDBmPerHz: -170}
	if e := bg.BandExtent(); !e.All {
		t.Errorf("Background extent = %+v, want everywhere", e)
	}
}

// TestEnvironmentExtentExactness checks the Extenter contract's empty
// side for the environment sources: a band the extent does not overlap
// gets no energy from Render.
func TestEnvironmentExtentExactness(t *testing.T) {
	comps := []Component{
		&AMStation{Call: "X", Freq: 750e3, PowerMw: 1e-9, AudioSeed: 3},
		&FMStation{Call: "Y", Freq: 98.5e6, PowerMw: 1e-9, AudioSeed: 4},
	}
	band := Band{Center: 5e6, SampleRate: 1e5} // overlaps neither carrier
	for _, c := range comps {
		e := c.(Extenter).BandExtent()
		if e.Overlaps(band) {
			t.Fatalf("%s: extent unexpectedly overlaps %+v", c.Name(), band)
		}
		scene := &Scene{}
		scene.Add(c)
		dst := scene.Render(Capture{Band: band, N: 512, Seed: 11})
		for i, v := range dst {
			if v != 0 {
				t.Fatalf("%s: rendered energy %v at sample %d outside its extent", c.Name(), v, i)
			}
		}
	}
}

// TestPlanEquivalenceEnvironment renders an environment scene with and
// without a plan and requires bit-identical output while the plan culls
// the out-of-band stations.
func TestPlanEquivalenceEnvironment(t *testing.T) {
	scene := &Scene{}
	scene.Add(
		&AMStation{Call: "IN", Freq: 1.0e6, PowerMw: 1e-9, AudioSeed: 21},
		&AMStation{Call: "OUT", Freq: 3.0e6, PowerMw: 1e-9, AudioSeed: 22},
		&FMStation{Call: "FAR", Freq: 98.5e6, PowerMw: 1e-9, AudioSeed: 23},
		&Background{FloorDBmPerHz: -170, Hills: []Hill{{Center: 1.1e6, Width: 200e3, GainDB: 6}}},
		&testTone{freq: 1.02e6, amp: 1e-6}, // non-Extenter: always active
	)
	band := Band{Center: 1.05e6, SampleRate: 409600}
	const n = 4096
	plan := scene.Plan(band, n)
	if got, want := plan.ActiveCount(), 3; got != want {
		t.Fatalf("plan keeps %d components, want %d (in-band station, background, test tone)", got, want)
	}
	for seed := int64(1); seed <= 5; seed++ {
		capt := Capture{Band: band, N: n, Seed: seed, Start: float64(seed) * 0.01}
		planned := make([]complex128, n)
		unplanned := make([]complex128, n)
		capt.Plan = plan
		scene.RenderInto(planned, capt)
		capt.Plan = nil
		scene.RenderInto(unplanned, capt)
		for i := range planned {
			if planned[i] != unplanned[i] {
				t.Fatalf("seed %d: planned[%d]=%v != unplanned[%d]=%v",
					seed, i, planned[i], i, unplanned[i])
			}
		}
	}
}

// TestPlanGeometryCheck ensures a plan cannot silently be used with the
// wrong capture geometry.
func TestPlanGeometryCheck(t *testing.T) {
	scene := &Scene{}
	scene.Add(&Background{FloorDBmPerHz: -170})
	plan := scene.Plan(Band{Center: 1e6, SampleRate: 1e5}, 256)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched plan geometry did not panic")
		}
	}()
	scene.RenderInto(make([]complex128, 512), Capture{
		Band: Band{Center: 1e6, SampleRate: 1e5}, N: 512, Plan: plan,
	})
}

// FuzzExtent fuzzes the Band/extent overlap logic against the identities
// the planner relies on: Overlaps(f, f) == Contains(f), extent overlap
// equals the underlying interval test, containment of an endpoint (or
// straddling the center) implies overlap, and Everywhere overlaps all.
func FuzzExtent(f *testing.F) {
	f.Add(1e6, 1e5, 0.95e6, 1.02e6, 1.0e6)
	f.Add(0.0, 1.0, -0.5, 0.5, 0.0)
	f.Add(2.05e6, 6.5536e6, 32.768e3, 2e6, 98.304e3)
	f.Add(-3e5, 1e4, -3.1e5, -2.9e5, -3e5)
	f.Fuzz(func(t *testing.T, center, fs, lo, hi, x float64) {
		finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
		if !finite(center) || !finite(fs) || !finite(lo) || !finite(hi) || !finite(x) || fs <= 0 {
			t.Skip()
		}
		b := Band{Center: center, SampleRate: fs}
		if lo > hi {
			lo, hi = hi, lo
		}
		if b.Overlaps(x, x) != b.Contains(x) {
			t.Fatalf("band %+v: Overlaps(%g,%g)=%v, Contains=%v",
				b, x, x, b.Overlaps(x, x), b.Contains(x))
		}
		span := Extent{Spans: []Span{{Lo: lo, Hi: hi}}}
		if span.Overlaps(b) != b.Overlaps(lo, hi) {
			t.Fatalf("band %+v: Extent.Overlaps=%v, Band.Overlaps(%g,%g)=%v",
				b, span.Overlaps(b), lo, hi, b.Overlaps(lo, hi))
		}
		// The spread-spectrum renderers' historical in-band gate must
		// agree with Overlaps (this is what lets SSCClock share one test
		// between Render, Prepare, and BandExtent).
		gate := b.Contains(lo) || b.Contains(hi) || (lo < b.Center && hi > b.Center)
		if gate != b.Overlaps(lo, hi) {
			t.Fatalf("band %+v, span [%g, %g]: ssc gate=%v, Overlaps=%v",
				b, lo, hi, gate, b.Overlaps(lo, hi))
		}
		if b.Contains(x) && lo <= x && x <= hi && !b.Overlaps(lo, hi) {
			t.Fatalf("band %+v contains %g in [%g, %g] but Overlaps is false", b, x, lo, hi)
		}
		if !Everywhere().Overlaps(b) {
			t.Fatalf("Everywhere does not overlap %+v", b)
		}
		if (Extent{}).Overlaps(b) {
			t.Fatalf("empty extent overlaps %+v", b)
		}
	})
}
