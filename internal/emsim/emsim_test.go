package emsim

import (
	"math"
	"math/rand"
	"testing"

	"fase/internal/activity"
	"fase/internal/dsp/spectral"
	"fase/internal/dsp/window"
)

func TestBandContains(t *testing.T) {
	b := Band{Center: 1e6, SampleRate: 1e5}
	if !b.Contains(1e6) || !b.Contains(1.04e6) || !b.Contains(0.96e6) {
		t.Error("in-band frequencies rejected")
	}
	if b.Contains(1.05e6) || b.Contains(0.95e6) || b.Contains(2e6) {
		t.Error("out-of-band frequencies accepted (guard band)")
	}
}

// testTone is a minimal component for framework tests.
type testTone struct {
	freq float64
	amp  float64
	dom  activity.Domain
	am   bool
}

func (c *testTone) Name() string { return "test tone" }
func (c *testTone) Render(dst []complex128, ctx *Context) {
	if !ctx.Band.Contains(c.freq) {
		return
	}
	dt := ctx.Dt()
	for i := range dst {
		t := ctx.Start + float64(i)*dt
		ph := 2 * math.Pi * (c.freq - ctx.Band.Center) * t
		s, cs := math.Sincos(ph)
		dst[i] += complex(c.amp*cs, c.amp*s)
	}
}
func (c *testTone) Carriers(f1, f2 float64) []float64 {
	if c.freq >= f1 && c.freq <= f2 {
		return []float64{c.freq}
	}
	return nil
}
func (c *testTone) Domain() activity.Domain { return c.dom }
func (c *testTone) AMModulated() bool       { return c.am }

func TestSceneRenderDeterministic(t *testing.T) {
	s := &Scene{}
	s.Add(&testTone{freq: 1e6, amp: 1}, &Background{FloorDBmPerHz: -170})
	cap := Capture{Band: Band{Center: 1e6, SampleRate: 1e5}, N: 1024, Seed: 9}
	a := s.Render(cap)
	b := s.Render(cap)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must render identical captures")
		}
	}
	cap.Seed = 10
	c := s.Render(cap)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should render different noise")
	}
}

func TestSceneRenderToneVisible(t *testing.T) {
	s := &Scene{}
	s.Add(&testTone{freq: 1.01e6, amp: math.Sqrt(spectral.MwFromDBm(-80))})
	cap := Capture{Band: Band{Center: 1e6, SampleRate: 1e5}, N: 8192, Seed: 1}
	x := s.Render(cap)
	sp := spectral.Periodogram(x, 1e5, 1e6, window.Hann)
	i, p := sp.MaxBin()
	if math.Abs(sp.Freq(i)-1.01e6) > sp.Fres {
		t.Errorf("tone at %g, want 1.01 MHz", sp.Freq(i))
	}
	if math.Abs(spectral.DBmFromMw(p)-(-80)) > 0.5 {
		t.Errorf("tone power %.2f dBm, want -80", spectral.DBmFromMw(p))
	}
}

func TestEmittersAndGroundTruth(t *testing.T) {
	s := &Scene{}
	mod := &testTone{freq: 1e6, amp: 1, dom: activity.DomainDRAM, am: true}
	unmod := &testTone{freq: 2e6, amp: 1, dom: activity.DomainNone, am: false}
	fmOnly := &testTone{freq: 3e6, amp: 1, dom: activity.DomainCore, am: false}
	s.Add(mod, unmod, fmOnly, &Background{FloorDBmPerHz: -170})
	if len(s.Emitters()) != 3 {
		t.Fatalf("emitters = %d, want 3 (background is not an emitter)", len(s.Emitters()))
	}
	gt := s.GroundTruth(0, 10e6, activity.LDM, activity.LDL1, 0.3)
	if len(gt) != 3 {
		t.Fatalf("ground truth entries = %d, want 3", len(gt))
	}
	byFreq := map[float64]GroundTruthCarrier{}
	for _, g := range gt {
		byFreq[g.Freq] = g
	}
	if !byFreq[1e6].Modulated {
		t.Error("DRAM-domain AM emitter must be modulated by LDM/LDL1")
	}
	if byFreq[2e6].Modulated {
		t.Error("DomainNone emitter must not be modulated")
	}
	if byFreq[3e6].Modulated {
		t.Error("FM-only emitter must not count as AM-modulated")
	}
	// LDL2/LDL1 does not change DRAM load: nothing modulated.
	gt2 := s.GroundTruth(0, 10e6, activity.LDL2, activity.LDL1, 0.3)
	for _, g := range gt2 {
		if g.Freq == 1e6 && g.Modulated {
			t.Error("DRAM emitter must not be modulated by LDL2/LDL1")
		}
	}
	// Core-domain emitter with AM would be modulated by LDL2/LDL1.
	coreAM := &testTone{freq: 4e6, amp: 1, dom: activity.DomainCore, am: true}
	s.Add(coreAM)
	gt3 := s.GroundTruth(0, 10e6, activity.LDL2, activity.LDL1, 0.2)
	found := false
	for _, g := range gt3 {
		if g.Freq == 4e6 {
			found = true
			if !g.Modulated {
				t.Error("core AM emitter must be modulated by LDL2/LDL1")
			}
		}
	}
	if !found {
		t.Error("core emitter missing from ground truth")
	}
}

func TestContextLoadsNilActivity(t *testing.T) {
	ctx := &Context{Band: Band{Center: 0, SampleRate: 1e6}, N: 10}
	cur := ctx.Loads()
	if cur.At(0) != activity.LoadOf(activity.Idle) {
		t.Error("nil activity should read as idle")
	}
}

func TestRenderPanics(t *testing.T) {
	s := &Scene{}
	mustPanic(t, func() { s.Render(Capture{Band: Band{SampleRate: 1e6}, N: 0}) })
	mustPanic(t, func() { s.Render(Capture{Band: Band{SampleRate: 0}, N: 10}) })
}

func TestAMStationSidebands(t *testing.T) {
	st := &AMStation{Call: "TEST", Freq: 1e6, PowerMw: spectral.MwFromDBm(-80), Depth: 0.8}
	s := &Scene{}
	s.Add(st)
	fs := 65536.0
	n := 65536
	x := s.Render(Capture{Band: Band{Center: 1e6, SampleRate: fs}, N: n, Seed: 3})
	sp := spectral.Periodogram(x, fs, 1e6, window.BlackmanHarris)
	carrier := sp.PmW[sp.Index(1e6)]
	if math.Abs(spectral.DBmFromMw(carrier)-(-80)) > 1 {
		t.Errorf("carrier %.1f dBm, want -80", spectral.DBmFromMw(carrier))
	}
	// Audio sidebands within ±4 kHz must carry energy well above the
	// (noise-free) far spectrum.
	sideband := 0.0
	for _, p := range sp.Slice(1e6+200, 1e6+4200).PmW {
		sideband += p
	}
	if spectral.DBmFromMw(sideband) < -100 {
		t.Errorf("sidebands too weak: %.1f dBm", spectral.DBmFromMw(sideband))
	}
	if st.Name() == "" {
		t.Error("station must have a name")
	}
}

func TestFMStationSpectrum(t *testing.T) {
	st := &FMStation{Call: "WTEST", Freq: 98.5e6, PowerMw: spectral.MwFromDBm(-85), AudioSeed: 7}
	s := &Scene{}
	s.Add(st)
	fs := 1e6
	n := 1 << 15
	x := s.Render(Capture{Band: Band{Center: 98.5e6, SampleRate: fs}, N: n, Seed: 2})
	sp := spectral.Periodogram(x, fs, 98.5e6, window.BlackmanHarris)
	// FM spreads energy over ~2×(75 kHz + audio): no single bin carries
	// the full -85 dBm, but the ±150 kHz integral does.
	var tot float64
	for _, p := range sp.Slice(98.5e6-150e3, 98.5e6+150e3).PmW {
		tot += p
	}
	got := spectral.DBmFromMw(tot)
	if math.Abs(got-(-85)) > 4 {
		t.Errorf("FM station integrated power %.1f dBm, want ~-85", got)
	}
	if st.Name() == "" {
		t.Error("station must have a name")
	}
	// Out-of-band skip.
	y := s.Render(Capture{Band: Band{Center: 1e6, SampleRate: 1e5}, N: 128, Seed: 3})
	for _, v := range y {
		if v != 0 {
			t.Fatal("out-of-band FM station should contribute nothing")
		}
	}
}

func TestAMStationOutOfBandSkipped(t *testing.T) {
	st := &AMStation{Call: "X", Freq: 10e6, PowerMw: 1}
	s := &Scene{}
	s.Add(st)
	x := s.Render(Capture{Band: Band{Center: 1e6, SampleRate: 1e5}, N: 256, Seed: 1})
	for _, v := range x {
		if v != 0 {
			t.Fatal("out-of-band station should contribute nothing")
		}
	}
}

func TestBackgroundFloorLevel(t *testing.T) {
	bg := &Background{FloorDBmPerHz: -170}
	s := &Scene{}
	s.Add(bg)
	fs := 1e6
	n := 16384
	var avg spectral.Averager
	for i := 0; i < 6; i++ {
		x := s.Render(Capture{Band: Band{Center: 2e6, SampleRate: fs}, N: n, Seed: int64(i)})
		avg.Add(spectral.Periodogram(x, fs, 2e6, window.Hann))
	}
	sp := avg.Mean()
	var mean float64
	for _, p := range sp.PmW {
		mean += p
	}
	mean /= float64(sp.Bins())
	want := spectral.MwFromDBm(-170) * window.NENBW(window.New(window.Hann, n)) * sp.Fres
	ratio := mean / want
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("floor ratio %g (got %.1f dBm/bin, want %.1f)", ratio, spectral.DBmFromMw(mean), spectral.DBmFromMw(want))
	}
}

func TestBackgroundHills(t *testing.T) {
	bg := &Background{
		FloorDBmPerHz: -170,
		Hills:         []Hill{{Center: 2e6, Width: 50e3, GainDB: 20}},
	}
	s := &Scene{}
	s.Add(bg)
	fs := 1e6
	n := 16384
	var avg spectral.Averager
	for i := 0; i < 6; i++ {
		x := s.Render(Capture{Band: Band{Center: 2e6, SampleRate: fs}, N: n, Seed: int64(i)})
		avg.Add(spectral.Periodogram(x, fs, 2e6, window.Hann))
	}
	sp := avg.Mean()
	center := sp.PmW[sp.Index(2e6)]
	edge := sp.PmW[sp.Index(1.6e6)]
	gain := spectral.DBmFromMw(center) - spectral.DBmFromMw(edge)
	if gain < 14 || gain > 26 {
		t.Errorf("hill gain %.1f dB, want ~20", gain)
	}
}

func TestStandardEnvironment(t *testing.T) {
	env := StandardEnvironment(rand.New(rand.NewSource(1)))
	if len(env) < 10 {
		t.Fatalf("environment too sparse: %d components", len(env))
	}
	stations := 0
	backgrounds := 0
	for _, c := range env {
		switch c.(type) {
		case *AMStation:
			stations++
		case *Background:
			backgrounds++
		}
		if _, isEmitter := c.(Emitter); isEmitter {
			t.Errorf("environment component %q must not be a ground-truth emitter", c.Name())
		}
	}
	if stations < 10 || backgrounds != 1 {
		t.Errorf("stations=%d backgrounds=%d", stations, backgrounds)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
