// Package emsim renders the electromagnetic emanations of a simulated
// computer system plus its RF environment as complex-baseband captures —
// the software stand-in for the paper's antenna.
//
// Rendering uses the superheterodyne model: a capture is taken for a Band
// (center frequency + sample rate); each component adds only the spectral
// content that falls within the band, so carriers at hundreds of MHz never
// require GHz-scale sample rates. Amplitudes are RMS envelopes in √mW, so
// a component emitting a tone with envelope magnitude |A| reads
// 10·log10(|A|²) dBm at the antenna (see package spectral).
package emsim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"fase/internal/activity"
	"fase/internal/obs"
)

// Band is the frequency window of one capture.
type Band struct {
	Center     float64 // Hz
	SampleRate float64 // complex samples per second; spans Center ± SampleRate/2
}

// Contains reports whether frequency f falls inside the band, with a small
// guard margin so content right at the edge (where the anti-alias response
// would be rolling off) is excluded.
func (b Band) Contains(f float64) bool {
	const guard = 0.98
	half := b.SampleRate / 2 * guard
	return f > b.Center-half && f < b.Center+half
}

// Overlaps reports whether the closed interval [lo, hi] intersects the
// band, with the same guard margin (and the same strict comparisons) as
// Contains: Overlaps(f, f) == Contains(f) for every f, so extent-based
// culling agrees exactly with the per-line tests renderers apply.
func (b Band) Overlaps(lo, hi float64) bool {
	const guard = 0.98
	half := b.SampleRate / 2 * guard
	return lo < b.Center+half && hi > b.Center-half
}

// Context carries everything a component needs to render one capture.
type Context struct {
	Band  Band
	Start float64 // absolute time of sample 0, seconds
	N     int     // number of samples
	// Rand is the capture's noise source. The scene hands each component
	// its own child generator so components draw independent streams.
	Rand *rand.Rand
	// Activity is the program-activity envelope; nil means idle.
	Activity *activity.Trace
	// NearField enables the short-range probe model used for source
	// localization (§4): system emitters appear stronger and with
	// per-element coupling (e.g. individual DRAM ranks), while
	// environment signals do not.
	NearField bool
	// NearFieldGainDB is the probe gain applied to system emitters when
	// NearField is set.
	NearFieldGainDB float64
	// Prep is the component's prepared per-segment state when the capture
	// was rendered under a RenderPlan (see Prepper), nil otherwise.
	// Renderers must produce bit-identical output with or without it.
	Prep any
	// NoSegment asks load-following renderers to walk the activity trace
	// sample by sample instead of iterating its constant-load runs. Both
	// paths are bit-identical by contract (enforced by the equivalence
	// tests); this is a debugging escape hatch, mirrored by
	// specan.Config.NoSegment.
	NoSegment bool
}

// Dt returns the sample period.
func (c *Context) Dt() float64 { return 1 / c.Band.SampleRate }

// idleTrace is the shared constant-idle envelope used when a capture has
// no activity trace (read-only, so safe to share between captures).
var idleTrace = activity.NewConstant(activity.LoadOf(activity.Idle))

// Loads returns an activity cursor for the capture, treating a nil
// activity trace as idle.
func (c *Context) Loads() *activity.Cursor {
	tr := c.Activity
	if tr == nil {
		tr = idleTrace
	}
	return tr.Cursor()
}

// DomainRuns returns the capture's activity envelope projected onto one
// power domain as constant-load sample runs (see activity.DomainRuns),
// with the same nil-trace-means-idle substitution as Loads. Renderers
// iterating these runs see exactly the per-sample loads a Cursor walk
// would produce, so run-length and per-sample rendering agree bit for bit.
func (c *Context) DomainRuns(d activity.Domain) activity.DomainRuns {
	tr := c.Activity
	if tr == nil {
		tr = idleTrace
	}
	return tr.DomainRuns(d, c.Start, c.Dt(), c.N)
}

// Component is anything that adds signal (or noise) to a capture.
type Component interface {
	// Name identifies the component in reports and ground-truth tables.
	Name() string
	// Render adds the component's complex-baseband contribution to dst,
	// which has ctx.N samples.
	Render(dst []complex128, ctx *Context)
}

// Emitter is a system component with known carriers — the ground truth
// FASE's output is validated against.
type Emitter interface {
	Component
	// Carriers lists the carrier frequencies the component emits within
	// [f1, f2].
	Carriers(f1, f2 float64) []float64
	// Domain is the power domain whose activity modulates the component's
	// amplitude; DomainNone means no program activity modulates it.
	Domain() activity.Domain
	// AMModulated reports whether the component's emissions are
	// amplitude-modulated by activity in its domain. False for emitters
	// that are only frequency-modulated (§4.4's constant-on-time
	// regulator), which FASE must correctly not report.
	AMModulated() bool
}

// Scene is a complete measurement setup: a system's emitters plus the
// surrounding RF environment.
type Scene struct {
	Components []Component
}

// Add appends components to the scene.
func (s *Scene) Add(cs ...Component) { s.Components = append(s.Components, cs...) }

// Emitters returns the scene's components that expose ground truth.
func (s *Scene) Emitters() []Emitter {
	var out []Emitter
	for _, c := range s.Components {
		if e, ok := c.(Emitter); ok {
			out = append(out, e)
		}
	}
	return out
}

// Capture describes one rendering request.
type Capture struct {
	Band            Band
	Start           float64
	N               int
	Activity        *activity.Trace
	Seed            int64
	NearField       bool
	NearFieldGainDB float64
	// Plan, when non-nil, is a render plan computed by Scene.Plan for this
	// capture's Band and N: components the plan marks inactive are skipped
	// (their child-seed draw is still consumed, so output is bit-identical)
	// and active components receive their prepared state via Context.Prep.
	Plan *RenderPlan
	// Static, when non-nil, is the cached activity-independent layer built
	// by Scene.BuildStaticSet for this exact capture identity (band, n,
	// start, seed, probe): components the set covers are replayed from
	// their cached addend streams instead of re-rendered. Replay is
	// bit-identical to live rendering (see StaticRenderer). A set that
	// additionally caches conditionally static components (see
	// CondStaticRenderer) is valid only for captures whose activity trace
	// reproduces the window-constant loads it was built under; RenderInto
	// verifies this against the capture's cond-static key.
	Static *StaticSet
	// NoSegment is forwarded to Context.NoSegment: load-following
	// renderers fall back to per-sample trace walks (bit-identical; a
	// debugging escape hatch).
	NoSegment bool
	// Obs, when non-nil, attributes this capture's live component renders
	// by wall time and count (the per-component table of the run
	// manifest, plus the fase_render_component_seconds histogram).
	// Instrumentation never changes rendered output.
	Obs *obs.Run
}

// renderScratch holds the per-capture PRNG and context state RenderInto
// reuses between captures. Re-seeding a pooled generator produces exactly
// the same stream as constructing a fresh one, so pooling does not change
// rendered output.
type renderScratch struct {
	root, child *rand.Rand
	ctx         Context
	// cond is the capture's conditional-static key scratch (see
	// AppendCondStaticKey), pooled so set verification stays allocation-free.
	cond []byte
}

var scratchPool = sync.Pool{New: func() any {
	return &renderScratch{
		root:  rand.New(rand.NewSource(0)),
		child: rand.New(rand.NewSource(0)),
	}
}}

// Render counters: captures rendered and components the active plan let a
// capture skip — the planner's realized savings, per capture.
var (
	capturesRendered = obs.Default.Counter(obs.MetricRenderCaptures)
	renderSkips      = obs.Default.Counter(obs.MetricRenderComponentSkips)
)

// Render produces the complex-baseband samples for a capture.
func (s *Scene) Render(cap Capture) []complex128 {
	dst := make([]complex128, cap.N)
	s.RenderInto(dst, cap)
	return dst
}

// RenderInto renders a capture into dst, which must have exactly cap.N
// elements; dst is overwritten. It is the allocation-free form of Render
// used by the sweep worker pool: all per-capture bookkeeping comes from a
// pool, so only component-internal state allocates. Concurrent RenderInto
// calls on one Scene are safe as long as every component's Render is
// (all components in this repository are).
func (s *Scene) RenderInto(dst []complex128, cap Capture) {
	if cap.N <= 0 {
		panic(fmt.Sprintf("emsim: capture length %d must be positive", cap.N))
	}
	if cap.Band.SampleRate <= 0 {
		panic(fmt.Sprintf("emsim: sample rate %g must be positive", cap.Band.SampleRate))
	}
	if len(dst) != cap.N {
		panic(fmt.Sprintf("emsim: destination has %d samples for a %d-sample capture", len(dst), cap.N))
	}
	for i := range dst {
		dst[i] = 0
	}
	sc := scratchPool.Get().(*renderScratch)
	sc.root.Seed(cap.Seed)
	sc.ctx = Context{
		Band:            cap.Band,
		Start:           cap.Start,
		N:               cap.N,
		Activity:        cap.Activity,
		NearField:       cap.NearField,
		NearFieldGainDB: cap.NearFieldGainDB,
		NoSegment:       cap.NoSegment,
	}
	plan := cap.Plan
	if plan != nil {
		plan.check(cap, len(s.Components))
		renderSkips.Add(int64(plan.ncomp - plan.nactive))
	}
	static := cap.Static
	if static != nil {
		static.check(cap, len(s.Components))
		if static.cond != "" {
			// The set bakes in conditionally static layers: the capture's
			// activity trace must reproduce the same classification and
			// window-constant loads the set was built under.
			sc.cond = s.AppendCondStaticKey(sc.cond[:0], cap)
			if string(sc.cond) != static.cond {
				panic(fmt.Sprintf(
					"emsim: static set built for cond-static key %x used with a capture keying %x",
					static.cond, sc.cond))
			}
		}
	}
	capturesRendered.Inc()
	run := cap.Obs
	for i, c := range s.Components {
		// Each component draws from its own child stream (same derivation
		// as seeding a fresh generator with root.Int63()). The draw happens
		// even for components the plan skips or the static set replays, so
		// every component's stream — and therefore the rendered output —
		// is independent of both. Actually seeding the child is deferred
		// until a component renders: rand.Seed walks the generator's whole
		// 607-word state, which costs more than replaying a cached layer.
		seed := sc.root.Int63()
		if plan != nil {
			if !plan.active[i] {
				continue
			}
			sc.ctx.Prep = plan.prep[i]
		}
		if static != nil && static.comps[i] != nil {
			static.replay(dst, i)
			staticReplays.Inc()
			if run != nil {
				run.AddComponentReplay(c.Name())
			}
			sc.ctx.Prep = nil
			continue
		}
		sc.child.Seed(seed)
		sc.ctx.Rand = sc.child
		if run != nil {
			t0 := time.Now()
			c.Render(dst, &sc.ctx)
			run.AddComponentRender(c.Name(), time.Since(t0).Seconds())
		} else {
			c.Render(dst, &sc.ctx)
		}
		sc.ctx.Prep = nil
	}
	sc.ctx.Rand = nil
	sc.ctx.Activity = nil
	scratchPool.Put(sc)
}

// GroundTruthCarrier is one expected detection for validation.
type GroundTruthCarrier struct {
	Source    string
	Freq      float64
	Domain    activity.Domain
	Modulated bool // AM-modulated by the given X/Y activity pair
}

// GroundTruth enumerates every emitter carrier in [f1, f2] and whether the
// X/Y activity pair AM-modulates it: the pair must change the emitter's
// domain load by at least minDelta, and the emitter must be AM-capable.
func (s *Scene) GroundTruth(f1, f2 float64, x, y activity.Kind, minDelta float64) []GroundTruthCarrier {
	lx, ly := activity.LoadOf(x), activity.LoadOf(y)
	var out []GroundTruthCarrier
	for _, e := range s.Emitters() {
		d := e.Domain()
		delta := d.Of(lx) - d.Of(ly)
		if delta < 0 {
			delta = -delta
		}
		mod := e.AMModulated() && d != activity.DomainNone && delta >= minDelta
		for _, f := range e.Carriers(f1, f2) {
			out = append(out, GroundTruthCarrier{Source: e.Name(), Freq: f, Domain: d, Modulated: mod})
		}
	}
	return out
}
