package emsim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"fase/internal/dsp/bufpool"
	"fase/internal/dsp/fft"
	"fase/internal/sig"
)

// audioRandPool recycles the seeded generator stations use to derive
// their stationary program-audio spectrum each render; re-seeding a
// pooled generator reproduces exactly the stream a fresh one would give.
var audioRandPool = sync.Pool{New: func() any { return rand.New(rand.NewSource(0)) }}

// AMStation is an AM broadcast transmitter: a strong carrier
// amplitude-modulated by program audio. It is exactly the signal class
// FASE must reject — amplitude-modulated, but not by the micro-benchmark
// (§2.3: "Although AM radio signals are amplitude-modulated and strong,
// FASE correctly identifies that these signals are not caused by our
// modulation activity").
type AMStation struct {
	Call    string  // station identifier for reports
	Freq    float64 // carrier frequency, Hz
	PowerMw float64 // received carrier power, mW
	// Depth is the modulation index (0..1); zero defaults to 0.5.
	Depth float64
	// AudioSeed fixes the station's program-audio spectrum. Real
	// broadcast content is statistically stationary across the minutes a
	// FASE campaign takes, which is what lets FASE reject stations: their
	// side-bands sit at the same frequencies in every measurement. Only
	// phases vary per capture.
	AudioSeed int64
}

// Name implements Component.
func (a *AMStation) Name() string { return fmt.Sprintf("AM station %s @ %.0f kHz", a.Call, a.Freq/1e3) }

// BandExtent implements Extenter: a single line at the carrier — the same
// frequency Render gates on. (The audio side-bands sit within a few kHz of
// the carrier, far inside the width of any capture band that contains it.)
func (a *AMStation) BandExtent() Extent { return Lines(a.Freq) }

// stationTones is a broadcast station's stationary program-audio spectrum:
// tone frequencies and normalized relative amplitudes. Per-capture phases
// are not part of it — they are drawn from the capture's random stream.
type stationTones [3]struct{ f, amp float64 }

// deriveTones computes the station audio table from its seed: three tones
// with frequencies in [300, 300+span] Hz and normalized amplitudes.
func deriveTones(seed int64, span float64) stationTones {
	ar := audioRandPool.Get().(*rand.Rand)
	ar.Seed(seed)
	var tones stationTones
	var ampSum float64
	for i := range tones {
		tones[i].f = 300 + span*ar.Float64()
		tones[i].amp = 0.3 + 0.7*ar.Float64()
		ampSum += tones[i].amp
	}
	audioRandPool.Put(ar)
	for i := range tones {
		tones[i].amp /= ampSum
	}
	return tones
}

// Prepare implements Prepper: the program-audio tone table is fixed per
// station, so one derivation serves every capture of a segment.
func (a *AMStation) Prepare(Band, int) any {
	t := deriveTones(a.AudioSeed^int64(a.Freq), 3700)
	return &t
}

// StaticTerms implements StaticRenderer: broadcast program audio is not
// program activity — the station renders identically for every
// alternation scan, adding one carrier×envelope value per sample.
func (a *AMStation) StaticTerms(band Band, _ int) (int, bool) {
	if !band.Contains(a.Freq) {
		return 0, true
	}
	return 1, true
}

// Render implements Component: carrier × (1 + depth·audio(t)), where the
// audio is a random mixture of low-frequency tones (program content).
// The carrier offset and the audio tones all advance by a fixed phase per
// sample, so the whole station is synthesized with phasor rotations — no
// per-sample trig.
func (a *AMStation) Render(dst []complex128, ctx *Context) {
	if !ctx.Band.Contains(a.Freq) {
		return
	}
	depth := a.Depth
	if depth == 0 {
		depth = 0.5
	}
	// Program audio: three tones between 300 Hz and 4 kHz. Frequencies
	// and relative amplitudes are fixed per station (stationary program
	// spectrum); phases are drawn per capture.
	var tones stationTones
	if pre, ok := ctx.Prep.(*stationTones); ok {
		tones = *pre
	} else {
		tones = deriveTones(a.AudioSeed^int64(a.Freq), 3700)
	}
	var phases [3]float64
	for i := range phases {
		phases[i] = 2 * math.Pi * ctx.Rand.Float64()
	}
	amp := math.Sqrt(a.PowerMw)
	phase0 := 2 * math.Pi * ctx.Rand.Float64()
	dt := ctx.Dt()
	off := 2 * math.Pi * (a.Freq - ctx.Band.Center)
	car := sig.NewRotator(off*ctx.Start+phase0, off*dt)
	// The three audio rotators live in distinct locals rather than an
	// array so their state stays in registers across the sample loop
	// (array indexing forces a memory round trip per call).
	r0 := sig.NewRotator(2*math.Pi*tones[0].f*ctx.Start+phases[0], 2*math.Pi*tones[0].f*dt)
	r1 := sig.NewRotator(2*math.Pi*tones[1].f*ctx.Start+phases[1], 2*math.Pi*tones[1].f*dt)
	r2 := sig.NewRotator(2*math.Pi*tones[2].f*ctx.Start+phases[2], 2*math.Pi*tones[2].f*dt)
	a0, a1, a2 := tones[0].amp, tones[1].amp, tones[2].amp
	// Four samples per iteration via the batched rotator stride: one
	// renormalization check per rotator per four samples, with the phasors
	// held in registers across the unrolled block. Next4 produces bits
	// identical to four Next calls, and the per-sample envelope expression
	// keeps the scalar loop's association, so output is unchanged.
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		t00, t01, t02, t03 := r0.Next4()
		t10, t11, t12, t13 := r1.Next4()
		t20, t21, t22, t23 := r2.Next4()
		c0, c1, c2, c3 := car.Next4()
		env := amp * (1 + depth*(a0*imag(t00)+a1*imag(t10)+a2*imag(t20)))
		dst[i] += complex(env*real(c0), env*imag(c0))
		env = amp * (1 + depth*(a0*imag(t01)+a1*imag(t11)+a2*imag(t21)))
		dst[i+1] += complex(env*real(c1), env*imag(c1))
		env = amp * (1 + depth*(a0*imag(t02)+a1*imag(t12)+a2*imag(t22)))
		dst[i+2] += complex(env*real(c2), env*imag(c2))
		env = amp * (1 + depth*(a0*imag(t03)+a1*imag(t13)+a2*imag(t23)))
		dst[i+3] += complex(env*real(c3), env*imag(c3))
	}
	for ; i < n; i++ {
		audio := a0 * imag(r0.Next())
		audio += a1 * imag(r1.Next())
		audio += a2 * imag(r2.Next())
		env := amp * (1 + depth*audio)
		c := car.Next()
		dst[i] += complex(env*real(c), env*imag(c))
	}
}

// FMStation is a broadcast FM transmitter (88–108 MHz): a carrier
// frequency-modulated by program audio. Relevant to the paper's second
// measurement campaign (4–120 MHz): strong, modulated, and — like the AM
// band — not modulated by the micro-benchmark, so FASE must reject it.
type FMStation struct {
	Call    string
	Freq    float64 // carrier, Hz
	PowerMw float64 // received power, mW
	// DeviationHz is the peak FM deviation; zero means 75 kHz (broadcast).
	DeviationHz float64
	// AudioSeed fixes the station's (stationary) program audio.
	AudioSeed int64
}

// Name implements Component.
func (s *FMStation) Name() string { return fmt.Sprintf("FM station %s @ %.1f MHz", s.Call, s.Freq/1e6) }

// BandExtent implements Extenter: a single line at the carrier, matching
// Render's own gate. (Broadcast FM deviation is ±75 kHz, negligible next
// to the multi-MHz capture bands of the campaign that reaches this band.)
func (s *FMStation) BandExtent() Extent { return Lines(s.Freq) }

// Prepare implements Prepper: the stationary tone table, shared by every
// capture of a segment.
func (s *FMStation) Prepare(Band, int) any {
	t := deriveTones(s.AudioSeed^int64(s.Freq), 7000)
	return &t
}

// StaticTerms implements StaticRenderer: like the AM band, FM program
// audio is independent of the micro-benchmark, and the station adds one
// value per sample.
func (s *FMStation) StaticTerms(band Band, _ int) (int, bool) {
	if !band.Contains(s.Freq) {
		return 0, true
	}
	return 1, true
}

// Render implements Component. The audio tones are synthesized by phasor
// rotation; the carrier keeps a per-sample Sincos because its phase
// increment varies with the audio (frequency modulation).
func (s *FMStation) Render(dst []complex128, ctx *Context) {
	if !ctx.Band.Contains(s.Freq) {
		return
	}
	dev := s.DeviationHz
	if dev == 0 {
		dev = 75e3
	}
	var tones stationTones
	if pre, ok := ctx.Prep.(*stationTones); ok {
		tones = *pre
	} else {
		tones = deriveTones(s.AudioSeed^int64(s.Freq), 7000)
	}
	var phases [3]float64
	for i := range phases {
		phases[i] = 2 * math.Pi * ctx.Rand.Float64()
	}
	amp := math.Sqrt(s.PowerMw)
	dt := ctx.Dt()
	phase := 2 * math.Pi * ctx.Rand.Float64()
	base := 2 * math.Pi * (s.Freq - ctx.Band.Center)
	var audioRot [3]sig.Rotator
	for i, tn := range tones {
		audioRot[i] = sig.NewRotator(2*math.Pi*tn.f*ctx.Start+phases[i], 2*math.Pi*tn.f*dt)
	}
	for i := range dst {
		var audio float64
		for j := range audioRot {
			audio += tones[j].amp * imag(audioRot[j].Next())
		}
		sn, cs := math.Sincos(phase)
		dst[i] += complex(amp*cs, amp*sn)
		phase += (base + 2*math.Pi*dev*audio) * dt
	}
}

// Hill is a broad bump in the broadband noise spectrum — the "gently
// rolling hills and valleys" caused by randomly timed switching activity
// (§2.1).
type Hill struct {
	Center float64 // Hz
	Width  float64 // Gaussian sigma, Hz
	GainDB float64 // height above the floor at the center, dB
}

// Background renders the thermal noise floor plus colored-noise hills. It
// synthesizes the noise in the frequency domain so the per-bin density
// follows the configured shape exactly. Safe for concurrent Render calls:
// plans come from the process-wide fft.PlanFor cache, which is
// concurrency-safe for every transform length.
type Background struct {
	// FloorDBmPerHz is the flat noise density (e.g. -170 for a typical
	// receive chain noise figure over kT = -174 dBm/Hz).
	FloorDBmPerHz float64
	Hills         []Hill
}

// Name implements Component.
func (b *Background) Name() string { return "background noise" }

// BandExtent implements Extenter: broadband noise touches every band.
func (b *Background) BandExtent() Extent { return Everywhere() }

// densityMwPerHz evaluates the noise density at frequency f.
func (b *Background) densityMwPerHz(f float64) float64 {
	gain := 0.0
	for _, h := range b.Hills {
		d := (f - h.Center) / h.Width
		gain += h.GainDB * math.Exp(-d*d/2)
	}
	return math.Pow(10, (b.FloorDBmPerHz+gain)/10)
}

// bgPrep is Background's per-segment state: the per-bin noise standard
// deviation, which depends only on the capture geometry.
type bgPrep struct {
	sd []float64
}

// binSD computes the frequency-domain standard deviation of bin k for an
// n-bin capture starting at f0 — the exact expression Render evaluates.
func (b *Background) binSD(f0, fres, fs float64, n, k int) float64 {
	f := f0 + float64(k)*fres
	// Bin variance n·N0(f)·fs gives time-domain density N0 after the
	// 1/n of the inverse transform.
	return math.Sqrt(float64(n) * b.densityMwPerHz(f) * fs / 2)
}

// Prepare implements Prepper: the per-bin standard deviations — the
// expensive part of the density shaping (a Gaussian per hill plus a
// dB→mW conversion per bin) — are computed once per segment instead of
// once per capture.
func (b *Background) Prepare(band Band, n int) any {
	fs := band.SampleRate
	f0 := band.Center - fs/2
	fres := fs / float64(n)
	sd := make([]float64, n)
	for k := range sd {
		sd[k] = b.binSD(f0, fres, fs, n, k)
	}
	return &bgPrep{sd: sd}
}

// StaticTerms implements StaticRenderer: the noise floor and its hills
// are environmental — activity never shapes them — and the synthesized
// noise is added to dst in a single pass.
func (b *Background) StaticTerms(Band, int) (int, bool) { return 1, true }

// Render implements Component.
func (b *Background) Render(dst []complex128, ctx *Context) {
	n := ctx.N
	plan := fft.PlanFor(n)
	fs := ctx.Band.SampleRate
	f0 := ctx.Band.Center - fs/2
	fres := fs / float64(n)
	r := ctx.Rand
	spec := bufpool.Complex(n)
	// Fill bins directly in post-ifftshift (FFT) order: ascending-frequency
	// bin k lands at (k + n − n/2) mod n, so writing there up front is the
	// exact index permutation fft.InverseShift would apply — same values,
	// same noise-draw order, no rotate pass over the buffer.
	j := n - n/2
	if pre, ok := ctx.Prep.(*bgPrep); ok && len(pre.sd) == n {
		for k := range spec {
			sd := pre.sd[k]
			spec[j] = complex(sd*r.NormFloat64(), sd*r.NormFloat64())
			if j++; j == n {
				j = 0
			}
		}
	} else {
		for k := 0; k < n; k++ {
			sd := b.binSD(f0, fres, fs, n, k)
			spec[j] = complex(sd*r.NormFloat64(), sd*r.NormFloat64())
			if j++; j == n {
				j = 0
			}
		}
	}
	plan.Inverse(spec)
	for i := range dst {
		dst[i] += spec[i]
	}
	bufpool.PutComplex(spec)
}

// StandardEnvironment builds the RF environment of the paper's
// measurements: a metropolitan AM broadcast band ("hundreds of radio
// stations nearby"), plus the receive chain's noise floor with broadband
// hills. All of it is ground-truth *unmodulated by program activity*.
func StandardEnvironment(r *rand.Rand) []Component {
	stations := []struct {
		call string
		freq float64
		dbm  float64
	}{
		{"WABC", 560e3, -97}, {"WCNN", 615e3, -92}, {"WGST", 680e3, -88},
		{"WSB", 750e3, -85}, {"WQXI", 790e3, -95}, {"WGKA", 940e3, -93},
		{"WDUN", 1010e3, -99}, {"WKHX", 1160e3, -101}, {"WIGO", 1340e3, -104},
		{"WNIV", 1400e3, -103}, {"WAOK", 1380e3, -98}, {"WGUN", 1520e3, -106},
	}
	var out []Component
	for _, s := range stations {
		out = append(out, &AMStation{
			Call:      s.call,
			Freq:      s.freq,
			PowerMw:   math.Pow(10, s.dbm/10),
			Depth:     0.3 + 0.5*r.Float64(),
			AudioSeed: r.Int63(),
		})
	}
	// The FM broadcast band (88-108 MHz) for the second campaign's range.
	fms := []struct {
		call string
		freq float64
		dbm  float64
	}{
		{"WABE", 90.1e6, -95}, {"WSB-FM", 98.5e6, -90}, {"WVEE", 103.3e6, -93},
	}
	for _, s := range fms {
		out = append(out, &FMStation{
			Call:      s.call,
			Freq:      s.freq,
			PowerMw:   math.Pow(10, s.dbm/10),
			AudioSeed: r.Int63(),
		})
	}
	out = append(out, &Background{
		FloorDBmPerHz: -172,
		Hills: []Hill{
			{Center: 150e3, Width: 120e3, GainDB: 9},
			{Center: 900e3, Width: 500e3, GainDB: 5},
			{Center: 2.5e6, Width: 1.2e6, GainDB: 3},
		},
	})
	return out
}
