package emsim

import (
	"fmt"

	"fase/internal/obs"
)

// StaticRenderer is the activity-classification capability: a component
// that can report, for a given capture geometry, that its rendered
// contribution does not depend on the program-activity trace. Such a
// component's output is a pure function of (band, n, start, seed, probe),
// so one rendering can be cached and replayed across every alternation
// scan of a campaign — the scans share capture seeds and differ only in
// activity.
//
// The contract is exact, not approximate: replay must reproduce the
// unplanned render bit for bit. Because float addition is not
// associative, the classification must also describe *how* the component
// touches dst — the term count below is the number of += operations the
// component applies to each sample, and replay re-applies the cached
// addend streams in the same order, preserving the accumulation chain
// (((dst+t₀)+t₁)+…) exactly.
type StaticRenderer interface {
	Component
	// StaticTerms returns (terms, true) when the component's contribution
	// to captures of n samples in band is independent of the activity
	// trace, where terms is the number of += operations Render applies to
	// each sample of dst (its in-band line count for comb renderers, 1 for
	// single-carrier and noise sources). (0, true) means the component is
	// activity-independent but contributes nothing in this band. Any
	// activity dependence must return ok == false.
	StaticTerms(band Band, n int) (terms int, ok bool)
}

// StaticTermRenderer must additionally be implemented by StaticRenderers
// that apply more than one += per sample (multi-line comb renderers):
// replaying their summed contribution as a single addition would
// reassociate the accumulation, so the build captures each addend stream
// separately instead.
type StaticTermRenderer interface {
	StaticRenderer
	// RenderStaticTerms writes the component's addend streams: terms[t][i]
	// must be exactly the t-th value Render would have added to sample i
	// (terms has the length StaticTerms reported). It must draw from
	// ctx.Rand precisely as Render does.
	RenderStaticTerms(terms [][]complex128, ctx *Context)
}

// StaticSet is the cached activity-independent layer of one capture: the
// addend streams of every static-classified component, keyed by the full
// capture identity (geometry, start time, seed, probe placement). It is
// immutable after BuildStaticSet returns and safe to share between
// concurrent RenderInto calls.
type StaticSet struct {
	band            Band
	start           float64
	n               int
	seed            int64
	nearField       bool
	nearFieldGainDB float64
	ncomp           int
	// comps[i] holds component i's addend streams; nil means the component
	// is rendered live (dynamic, inactive, or contributing zero terms).
	comps  [][][]complex128
	cached int
}

// Static-layer counters: components captured into static sets and
// component renders replaced by replays. The cache-level hit/miss pair
// lives with the cache owner in package specan.
var (
	staticComponents = obs.Default.Counter(obs.MetricStaticComponents)
	staticReplays    = obs.Default.Counter(obs.MetricStaticReplays)
)

// Components reports how many components the set caches.
func (st *StaticSet) Components() int { return st.cached }

// classifyStatic resolves a component's static classification for one
// geometry: its declared addend count, gated on the replay machinery
// actually being able to reproduce it (multi-addend components must
// implement StaticTermRenderer).
func classifyStatic(c Component, band Band, n int) (int, bool) {
	sr, ok := c.(StaticRenderer)
	if !ok {
		return 0, false
	}
	terms, static := sr.StaticTerms(band, n)
	if !static || terms <= 0 {
		return 0, false
	}
	if terms > 1 {
		if _, ok := c.(StaticTermRenderer); !ok {
			return 0, false
		}
	}
	return terms, true
}

// BuildStaticSet renders the activity-independent layer of the capture:
// every component the capture's plan (or, without a plan, a direct extent
// test) leaves active and that classifies itself static has its addend
// streams rendered standalone, consuming exactly the child-seed draws
// RenderInto would. cap.Activity is ignored — the build renders against a
// nil trace, so a misclassified component diverges from the live render
// immediately rather than matching one scan's activity by accident.
// Returns nil when no component qualifies.
func (s *Scene) BuildStaticSet(cap Capture) *StaticSet {
	if cap.N <= 0 || cap.Band.SampleRate <= 0 {
		panic(fmt.Sprintf("emsim: invalid static-set capture geometry %+v", cap.Band))
	}
	plan := cap.Plan
	if plan != nil {
		plan.check(cap, len(s.Components))
	}
	// First pass, geometry only: classify and size the arena so every
	// addend stream comes out of one allocation. A plan carries the
	// classification precomputed per segment.
	layout := make([]int, len(s.Components))
	total, cached := 0, 0
	for i, c := range s.Components {
		var terms int
		if plan != nil {
			terms = plan.staticTerms[i]
		} else if t, ok := classifyStatic(c, cap.Band, cap.N); ok {
			terms = t
		}
		if terms == 0 {
			continue
		}
		layout[i] = terms
		total += terms
		cached++
	}
	if cached == 0 {
		return nil
	}
	st := &StaticSet{
		band:            cap.Band,
		start:           cap.Start,
		n:               cap.N,
		seed:            cap.Seed,
		nearField:       cap.NearField,
		nearFieldGainDB: cap.NearFieldGainDB,
		ncomp:           len(s.Components),
		comps:           make([][][]complex128, len(s.Components)),
	}
	arena := make([]complex128, total*cap.N)
	// Second pass: the same root-stream walk as RenderInto, rendering the
	// classified components' addend streams.
	sc := scratchPool.Get().(*renderScratch)
	sc.root.Seed(cap.Seed)
	sc.ctx = Context{
		Band:            cap.Band,
		Start:           cap.Start,
		N:               cap.N,
		NearField:       cap.NearField,
		NearFieldGainDB: cap.NearFieldGainDB,
	}
	for i, c := range s.Components {
		seed := sc.root.Int63()
		terms := layout[i]
		if terms == 0 {
			continue
		}
		sc.child.Seed(seed)
		tvs := make([][]complex128, terms)
		for t := range tvs {
			tvs[t], arena = arena[:cap.N:cap.N], arena[cap.N:]
		}
		if plan != nil {
			sc.ctx.Prep = plan.prep[i]
		}
		sc.ctx.Rand = sc.child
		if terms == 1 {
			// Single-addend components render straight into the zeroed
			// stream: 0 + t == t for every addend a renderer produces.
			c.Render(tvs[0], &sc.ctx)
		} else {
			c.(StaticTermRenderer).RenderStaticTerms(tvs, &sc.ctx)
		}
		sc.ctx.Prep = nil
		st.comps[i] = tvs
	}
	sc.ctx.Rand = nil
	scratchPool.Put(sc)
	st.cached = cached
	staticComponents.Add(int64(cached))
	return st
}

// replay adds component i's cached addend streams to dst. Adding the
// streams one after another reproduces the live render's per-sample
// accumulation chain exactly: the t-th pass leaves dst[j] holding
// (((dst₀[j]+t₀[j])+t₁[j])+…+t_t[j]), the same association Render builds
// in its harmonic loop.
// Four streams are folded per pass: each dst[j] still receives its
// additions in ascending term order, so the arithmetic is unchanged —
// blocking only cuts the number of times dst streams through memory.
func (st *StaticSet) replay(dst []complex128, i int) {
	tvs := st.comps[i]
	k := 0
	for ; k+4 <= len(tvs); k += 4 {
		t0, t1, t2, t3 := tvs[k], tvs[k+1], tvs[k+2], tvs[k+3]
		for j := range dst {
			dst[j] = dst[j] + t0[j] + t1[j] + t2[j] + t3[j]
		}
	}
	for ; k < len(tvs); k++ {
		for j, v := range tvs[k] {
			dst[j] += v
		}
	}
}

// check panics if the set was built for a different capture identity than
// the one being rendered — replaying across seeds, start times, or probe
// placements would silently corrupt output, so geometry mismatches are
// programming errors.
func (st *StaticSet) check(cap Capture, ncomp int) {
	if st.band != cap.Band || st.n != cap.N || st.start != cap.Start || st.seed != cap.Seed ||
		st.nearField != cap.NearField || st.nearFieldGainDB != cap.NearFieldGainDB || st.ncomp != ncomp {
		panic(fmt.Sprintf(
			"emsim: static set for band %+v n=%d start=%g seed=%d used with band %+v n=%d start=%g seed=%d",
			st.band, st.n, st.start, st.seed, cap.Band, cap.N, cap.Start, cap.Seed))
	}
}
