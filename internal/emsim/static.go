package emsim

import (
	"fmt"
	"math"

	"fase/internal/obs"
)

// StaticRenderer is the activity-classification capability: a component
// that can report, for a given capture geometry, that its rendered
// contribution does not depend on the program-activity trace. Such a
// component's output is a pure function of (band, n, start, seed, probe),
// so one rendering can be cached and replayed across every alternation
// scan of a campaign — the scans share capture seeds and differ only in
// activity.
//
// The contract is exact, not approximate: replay must reproduce the
// unplanned render bit for bit. Because float addition is not
// associative, the classification must also describe *how* the component
// touches dst — the term count below is the number of += operations the
// component applies to each sample, and replay re-applies the cached
// addend streams in the same order, preserving the accumulation chain
// (((dst+t₀)+t₁)+…) exactly.
type StaticRenderer interface {
	Component
	// StaticTerms returns (terms, true) when the component's contribution
	// to captures of n samples in band is independent of the activity
	// trace, where terms is the number of += operations Render applies to
	// each sample of dst (its in-band line count for comb renderers, 1 for
	// single-carrier and noise sources). (0, true) means the component is
	// activity-independent but contributes nothing in this band. Any
	// activity dependence must return ok == false.
	StaticTerms(band Band, n int) (terms int, ok bool)
}

// StaticTermRenderer must additionally be implemented by StaticRenderers
// that apply more than one += per sample (multi-line comb renderers):
// replaying their summed contribution as a single addition would
// reassociate the accumulation, so the build captures each addend stream
// separately instead.
type StaticTermRenderer interface {
	StaticRenderer
	// RenderStaticTerms writes the component's addend streams: terms[t][i]
	// must be exactly the t-th value Render would have added to sample i
	// (terms has the length StaticTerms reported). It must draw from
	// ctx.Rand precisely as Render does.
	RenderStaticTerms(terms [][]complex128, ctx *Context)
}

// CondStaticRenderer is the conditional-static capability: a component
// whose render depends on the activity trace only through the trace's
// projection onto the component's power domain. When that projection is a
// single constant across the capture window, the contribution is a pure
// function of (capture identity, load) — a regulator under an idle or
// domain-constant workload, a partially-idle comb whose envelope freezes —
// and can be cached and replayed through the same term-major static
// machinery as unconditionally static components, keyed additionally by
// the window-constant load (see Scene.AppendCondStaticKey).
//
// The contract is exact, like StaticRenderer's: for any activity trace
// whose Domain() projection equals load at every sample of the capture,
// RenderCondStaticTerms must write precisely the addend streams Render
// would have applied to dst under that trace, drawing from ctx.Rand
// exactly as Render does. Deliberately a separate interface from
// StaticRenderer: these components are NOT activity-independent, so they
// must not classify through StaticTerms.
type CondStaticRenderer interface {
	Emitter
	// CondStaticTerms returns the number of += operations Render applies
	// per sample in the band (the in-band line count), and whether the
	// component supports conditional-static replay for this geometry.
	CondStaticTerms(band Band, n int) (terms int, ok bool)
	// RenderCondStaticTerms writes the component's addend streams for the
	// window-constant projected load: terms[t][i] must be exactly the t-th
	// value Render would have added to sample i (terms has the length
	// CondStaticTerms reported).
	RenderCondStaticTerms(terms [][]complex128, load float64, ctx *Context)
}

// StaticSet is the cached activity-independent layer of one capture: the
// addend streams of every static-classified component, keyed by the full
// capture identity (geometry, start time, seed, probe placement). It is
// immutable after BuildStaticSet returns and safe to share between
// concurrent RenderInto calls.
type StaticSet struct {
	band            Band
	start           float64
	n               int
	seed            int64
	nearField       bool
	nearFieldGainDB float64
	ncomp           int
	// comps[i] holds component i's addend streams; nil means the component
	// is rendered live (dynamic, inactive, or contributing zero terms).
	comps  [][][]complex128
	cached int
	// cond is the conditional-static key the set was built under (empty
	// when no conditionally static component is cached): the (component
	// index, load bits) pairs of every CondStaticRenderer whose domain
	// projection was window-constant. RenderInto verifies a capture's key
	// against it before replaying.
	cond string
}

// Static-layer counters: components captured into static sets and
// component renders replaced by replays. The cache-level hit/miss pair
// lives with the cache owner in package specan.
var (
	staticComponents = obs.Default.Counter(obs.MetricStaticComponents)
	staticReplays    = obs.Default.Counter(obs.MetricStaticReplays)
)

// Components reports how many components the set caches.
func (st *StaticSet) Components() int { return st.cached }

// classifyStatic resolves a component's static classification for one
// geometry: its declared addend count, gated on the replay machinery
// actually being able to reproduce it (multi-addend components must
// implement StaticTermRenderer).
func classifyStatic(c Component, band Band, n int) (int, bool) {
	sr, ok := c.(StaticRenderer)
	if !ok {
		return 0, false
	}
	terms, static := sr.StaticTerms(band, n)
	if !static || terms <= 0 {
		return 0, false
	}
	if terms > 1 {
		if _, ok := c.(StaticTermRenderer); !ok {
			return 0, false
		}
	}
	return terms, true
}

// classifyCondStatic resolves a component's conditional-static
// classification for one geometry: its declared addend count when the
// component can be replayed under a window-constant domain load.
// Unconditional static classification takes precedence — a component that
// classifies through StaticTerms never classifies here, so the two cached
// layers are disjoint.
func classifyCondStatic(c Component, band Band, n int) (int, bool) {
	if _, ok := classifyStatic(c, band, n); ok {
		return 0, false
	}
	cr, ok := c.(CondStaticRenderer)
	if !ok {
		return 0, false
	}
	terms, cond := cr.CondStaticTerms(band, n)
	if !cond || terms <= 0 {
		return 0, false
	}
	return terms, true
}

// forEachCondStatic walks the components that are conditionally static AND
// whose domain projection of the capture's activity trace is constant
// across the capture window, yielding each one's index, addend count, and
// window-constant load. Both the cache key (AppendCondStaticKey) and the
// set build (BuildStaticSet) go through this walk, so they agree on which
// components a set caches by construction.
func (s *Scene) forEachCondStatic(cap Capture, fn func(i, terms int, load float64)) {
	plan := cap.Plan
	tr := cap.Activity
	if tr == nil {
		tr = idleTrace
	}
	dt := 1 / cap.Band.SampleRate
	t1 := cap.Start + float64(cap.N-1)*dt
	for i, c := range s.Components {
		var terms int
		if plan != nil {
			if !plan.active[i] {
				continue
			}
			terms = plan.condTerms[i]
		} else if t, ok := classifyCondStatic(c, cap.Band, cap.N); ok {
			terms = t
		}
		if terms == 0 {
			continue
		}
		load, constant := tr.DomainConstant(c.(CondStaticRenderer).Domain(), cap.Start, t1)
		if !constant {
			continue
		}
		fn(i, terms, load)
	}
}

// AppendCondStaticKey appends the capture's conditional-static key to dst
// and returns the extended slice: for every conditionally static component
// whose domain load is constant across the capture window, the component
// index (2 bytes big-endian) followed by the load's IEEE-754 bits (8
// bytes). Two captures with equal static identity and equal keys replay
// the same cached layers bit for bit; the empty key means no component
// qualifies under this activity trace. Allocation-free when dst has
// capacity.
func (s *Scene) AppendCondStaticKey(dst []byte, cap Capture) []byte {
	s.forEachCondStatic(cap, func(i, terms int, load float64) {
		b := math.Float64bits(load)
		dst = append(dst,
			byte(i>>8), byte(i),
			byte(b>>56), byte(b>>48), byte(b>>40), byte(b>>32),
			byte(b>>24), byte(b>>16), byte(b>>8), byte(b))
	})
	return dst
}

// BuildStaticSet renders the activity-independent layer of the capture:
// every component the capture's plan (or, without a plan, a direct extent
// test) leaves active and that classifies itself static has its addend
// streams rendered standalone, consuming exactly the child-seed draws
// RenderInto would. cap.Activity never feeds the unconditional renders —
// they run against a nil trace, so a misclassified component diverges from
// the live render immediately rather than matching one scan's activity by
// accident. The trace is consulted only to classify conditionally static
// components (see CondStaticRenderer): those whose domain load is constant
// across the window render their addend streams for that load, and the set
// records the resulting cond-static key. Returns nil when no component
// qualifies.
func (s *Scene) BuildStaticSet(cap Capture) *StaticSet {
	if cap.N <= 0 || cap.Band.SampleRate <= 0 {
		panic(fmt.Sprintf("emsim: invalid static-set capture geometry %+v", cap.Band))
	}
	plan := cap.Plan
	if plan != nil {
		plan.check(cap, len(s.Components))
	}
	// First pass, geometry only: classify and size the arena so every
	// addend stream comes out of one allocation. A plan carries the
	// classification precomputed per segment. Conditional classification
	// additionally consults the activity trace for window constancy; the
	// two layers are disjoint (see classifyCondStatic).
	layout := make([]int, len(s.Components))
	condLayout := make([]int, len(s.Components))
	condLoad := make([]float64, len(s.Components))
	total, cached, condCached := 0, 0, 0
	for i, c := range s.Components {
		var terms int
		if plan != nil {
			terms = plan.staticTerms[i]
		} else if t, ok := classifyStatic(c, cap.Band, cap.N); ok {
			terms = t
		}
		if terms == 0 {
			continue
		}
		layout[i] = terms
		total += terms
		cached++
	}
	s.forEachCondStatic(cap, func(i, terms int, load float64) {
		condLayout[i] = terms
		condLoad[i] = load
		total += terms
		cached++
		condCached++
	})
	if cached == 0 {
		return nil
	}
	st := &StaticSet{
		band:            cap.Band,
		start:           cap.Start,
		n:               cap.N,
		seed:            cap.Seed,
		nearField:       cap.NearField,
		nearFieldGainDB: cap.NearFieldGainDB,
		ncomp:           len(s.Components),
		comps:           make([][][]complex128, len(s.Components)),
	}
	if condCached > 0 {
		st.cond = string(s.AppendCondStaticKey(nil, cap))
	}
	arena := make([]complex128, total*cap.N)
	// Second pass: the same root-stream walk as RenderInto, rendering the
	// classified components' addend streams.
	sc := scratchPool.Get().(*renderScratch)
	sc.root.Seed(cap.Seed)
	sc.ctx = Context{
		Band:            cap.Band,
		Start:           cap.Start,
		N:               cap.N,
		NearField:       cap.NearField,
		NearFieldGainDB: cap.NearFieldGainDB,
	}
	for i, c := range s.Components {
		seed := sc.root.Int63()
		terms, cond := layout[i], condLayout[i]
		if terms == 0 && cond == 0 {
			continue
		}
		sc.child.Seed(seed)
		tvs := make([][]complex128, terms+cond)
		for t := range tvs {
			tvs[t], arena = arena[:cap.N:cap.N], arena[cap.N:]
		}
		if plan != nil {
			sc.ctx.Prep = plan.prep[i]
		}
		sc.ctx.Rand = sc.child
		switch {
		case cond != 0:
			// Conditionally static: render for the window-constant load the
			// capture's trace projects (ctx.Activity stays nil — the load is
			// passed explicitly, so the renderer cannot accidentally depend
			// on trace shape).
			c.(CondStaticRenderer).RenderCondStaticTerms(tvs, condLoad[i], &sc.ctx)
		case terms == 1:
			// Single-addend components render straight into the zeroed
			// stream: 0 + t == t for every addend a renderer produces.
			c.Render(tvs[0], &sc.ctx)
		default:
			c.(StaticTermRenderer).RenderStaticTerms(tvs, &sc.ctx)
		}
		sc.ctx.Prep = nil
		st.comps[i] = tvs
	}
	sc.ctx.Rand = nil
	scratchPool.Put(sc)
	st.cached = cached
	staticComponents.Add(int64(cached))
	return st
}

// replay adds component i's cached addend streams to dst. Adding the
// streams one after another reproduces the live render's per-sample
// accumulation chain exactly: the t-th pass leaves dst[j] holding
// (((dst₀[j]+t₀[j])+t₁[j])+…+t_t[j]), the same association Render builds
// in its harmonic loop.
// Eight (then four) streams are folded per pass: each dst[j] still
// receives its additions in ascending term order, so the arithmetic is
// unchanged — blocking only cuts the number of times dst streams through
// memory.
func (st *StaticSet) replay(dst []complex128, i int) {
	tvs := st.comps[i]
	k := 0
	for ; k+8 <= len(tvs); k += 8 {
		t0, t1, t2, t3 := tvs[k], tvs[k+1], tvs[k+2], tvs[k+3]
		t4, t5, t6, t7 := tvs[k+4], tvs[k+5], tvs[k+6], tvs[k+7]
		for j := range dst {
			dst[j] = dst[j] + t0[j] + t1[j] + t2[j] + t3[j] + t4[j] + t5[j] + t6[j] + t7[j]
		}
	}
	if k+4 <= len(tvs) {
		t0, t1, t2, t3 := tvs[k], tvs[k+1], tvs[k+2], tvs[k+3]
		for j := range dst {
			dst[j] = dst[j] + t0[j] + t1[j] + t2[j] + t3[j]
		}
		k += 4
	}
	for ; k < len(tvs); k++ {
		for j, v := range tvs[k] {
			dst[j] += v
		}
	}
}

// check panics if the set was built for a different capture identity than
// the one being rendered — replaying across seeds, start times, or probe
// placements would silently corrupt output, so geometry mismatches are
// programming errors.
func (st *StaticSet) check(cap Capture, ncomp int) {
	if st.band != cap.Band || st.n != cap.N || st.start != cap.Start || st.seed != cap.Seed ||
		st.nearField != cap.NearField || st.nearFieldGainDB != cap.NearFieldGainDB || st.ncomp != ncomp {
		panic(fmt.Sprintf(
			"emsim: static set for band %+v n=%d start=%g seed=%d used with band %+v n=%d start=%g seed=%d",
			st.band, st.n, st.start, st.seed, cap.Band, cap.N, cap.Start, cap.Seed))
	}
}
