package sig

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOUStationaryStats(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	p := OU{Sigma: 2.5, Tau: 1e-3}
	p.Init(r)
	dt := 1e-5
	n := 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := p.Step(dt, r)
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sum2/float64(n) - mean*mean)
	if math.Abs(mean) > 0.2 {
		t.Errorf("OU mean %g, want ~0", mean)
	}
	if math.Abs(std-2.5) > 0.3 {
		t.Errorf("OU std %g, want ~2.5", std)
	}
}

func TestOUZeroSigmaIsIdeal(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	p := OU{Sigma: 0, Tau: 1}
	for i := 0; i < 10; i++ {
		if p.Step(1e-6, r) != 0 {
			t.Fatal("zero-sigma OU must stay at zero")
		}
	}
}

func TestOUCorrelationTime(t *testing.T) {
	// Successive samples dt << tau apart must be strongly correlated.
	r := rand.New(rand.NewSource(3))
	p := OU{Sigma: 1, Tau: 1e-3}
	p.Init(r)
	prev := p.Step(1e-7, r)
	var diffSum float64
	n := 10000
	for i := 0; i < n; i++ {
		v := p.Step(1e-7, r)
		diffSum += (v - prev) * (v - prev)
		prev = v
	}
	// RMS step for dt = tau/10000 should be about sigma·sqrt(2dt/tau) ≈ 0.014.
	rmsStep := math.Sqrt(diffSum / float64(n))
	if rmsStep > 0.05 {
		t.Errorf("OU steps too large for dt << tau: %g", rmsStep)
	}
}

func TestOscillatorIdealPhaseRamp(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	o := Oscillator{F0: 1e6}
	o.Start(r)
	start := o.Phase()
	dt := 1e-7
	for i := 0; i < 1000; i++ {
		o.Step(dt, 0.9e6, r)
	}
	// Offset frequency 100 kHz for 100 µs -> 2π·10 radians.
	want := start + 2*math.Pi*10
	if math.Abs(o.Phase()-want) > 1e-6 {
		t.Errorf("phase %g, want %g", o.Phase(), want)
	}
}

func TestPulseHarmonicProperties(t *testing.T) {
	// DC coefficient equals duty.
	if got := PulseHarmonic(0.3, 0); got != complex(0.3, 0) {
		t.Errorf("c0 = %v", got)
	}
	// 50% duty: even harmonics vanish, odd follow 1/n.
	for n := 2; n <= 8; n += 2 {
		if m := cmplx.Abs(PulseHarmonic(0.5, n)); m > 1e-12 {
			t.Errorf("even harmonic %d at 50%% duty: %g", n, m)
		}
	}
	c1 := cmplx.Abs(PulseHarmonic(0.5, 1))
	c3 := cmplx.Abs(PulseHarmonic(0.5, 3))
	if math.Abs(c1/c3-3) > 1e-9 {
		t.Errorf("odd harmonic ratio %g, want 3", c1/c3)
	}
	// Small duty: first few harmonics nearly equal (paper: refresh comb).
	c1 = cmplx.Abs(PulseHarmonic(0.026, 1))
	c5 := cmplx.Abs(PulseHarmonic(0.026, 5))
	if c5/c1 < 0.95 {
		t.Errorf("small-duty harmonics should be nearly flat: c5/c1 = %g", c5/c1)
	}
	// Negative harmonic index mirrors positive magnitude.
	if cmplx.Abs(PulseHarmonic(0.2, -3)) != cmplx.Abs(PulseHarmonic(0.2, 3)) {
		t.Error("negative harmonic magnitude mismatch")
	}
}

func TestPulseHarmonicMonotoneInDuty(t *testing.T) {
	// Property: while n·duty < 0.5, |c_n| = sin(πnd)/(πn) increases with
	// duty — the paper's duty-cycle AM mechanism, in the regulators'
	// small-duty regime.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		dMax := 0.45/float64(n) - 0.005
		d := 0.02 + (dMax-0.02)*r.Float64()
		return cmplx.Abs(PulseHarmonic(d+0.005, n)) > cmplx.Abs(PulseHarmonic(d, n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSquareHarmonic(t *testing.T) {
	if SquareHarmonic(0) != 0 || SquareHarmonic(2) != 0 || SquareHarmonic(4) != 0 {
		t.Error("even square harmonics should vanish")
	}
	m1 := cmplx.Abs(SquareHarmonic(1))
	m3 := cmplx.Abs(SquareHarmonic(3))
	if math.Abs(m1-2/math.Pi) > 1e-12 || math.Abs(m1/m3-3) > 1e-9 {
		t.Errorf("square harmonics wrong: %g %g", m1, m3)
	}
	if cmplx.Abs(SquareHarmonic(-3)) != m3 {
		t.Error("negative square harmonic mismatch")
	}
}

func TestSweepProfiles(t *testing.T) {
	tri := TriangleSweep{}
	if tri.Offset(0) != -1 || tri.Offset(0.25) != 0 || tri.Offset(0.5) != 1 || tri.Offset(0.75) != 0 {
		t.Error("triangle profile wrong")
	}
	sin := SineSweep{}
	if sin.Offset(0.25) != 1 || math.Abs(sin.Offset(0.5)) > 1e-12 {
		t.Error("sine profile wrong")
	}
	for _, u := range []float64{0, 0.1, 0.33, 0.9, 1.7, -0.2} {
		if v := tri.Offset(u); v < -1-1e-12 || v > 1+1e-12 {
			t.Errorf("triangle out of range at %g: %g", u, v)
		}
	}
	if tri.String() != "triangle" || sin.String() != "sine" {
		t.Error("profile names wrong")
	}
}

func TestSSCFrequencyBounds(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	s := SSC{F0: 333e6, SpreadHz: 1e6, RateHz: 10e3, Profile: TriangleSweep{}}
	s.Start(r)
	dt := 1e-8
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 100000; i++ {
		f := s.Freq()
		lo = math.Min(lo, f)
		hi = math.Max(hi, f)
		s.Step(dt, 332.5e6)
	}
	if lo < 332e6-1 || hi > 333e6+1 {
		t.Errorf("down-spread SSC out of [332, 333] MHz: [%g, %g]", lo, hi)
	}
	if hi-lo < 0.9e6 {
		t.Errorf("sweep did not cover the spread: %g", hi-lo)
	}
}

func TestSSCWithoutProfileIsFixed(t *testing.T) {
	s := SSC{F0: 100e6}
	if s.Freq() != 100e6 {
		t.Error("profile-less SSC should sit at F0")
	}
}

func TestImpulseKernelAreaAndPosition(t *testing.T) {
	fs := 1e6
	k := NewImpulseKernel(8)
	dst := make([]complex128, 64)
	k.Add(dst, 32.0, complex(2e-6, 0), fs) // area 2 µV·s
	// Sum of samples × dt must equal the area (kernel integrates to 1).
	var sum complex128
	for _, v := range dst {
		sum += v
	}
	got := real(sum) / fs
	if math.Abs(got-2e-6) > 1e-8 {
		t.Errorf("impulse area %g, want 2e-6", got)
	}
	// Peak sample at the impulse position.
	maxI, maxV := 0, 0.0
	for i, v := range dst {
		if cmplx.Abs(v) > maxV {
			maxI, maxV = i, cmplx.Abs(v)
		}
	}
	if maxI != 32 {
		t.Errorf("impulse peak at %d, want 32", maxI)
	}
}

func TestImpulseKernelSubSample(t *testing.T) {
	// An impulse between samples must split energy across neighbours and
	// preserve area.
	fs := 1.0
	k := NewImpulseKernel(8)
	dst := make([]complex128, 64)
	k.Add(dst, 31.5, 1, fs)
	var sum complex128
	for _, v := range dst {
		sum += v
	}
	if math.Abs(real(sum)-1) > 0.01 {
		t.Errorf("sub-sample impulse area %g, want 1", real(sum))
	}
	if cmplx.Abs(dst[31]-dst[32]) > 1e-9 {
		t.Errorf("half-way impulse should be symmetric: %v vs %v", dst[31], dst[32])
	}
}

func TestImpulseKernelEdgeClip(t *testing.T) {
	k := NewImpulseKernel(4)
	dst := make([]complex128, 8)
	// Should not panic at the edges.
	k.Add(dst, -2, 1, 1)
	k.Add(dst, 9.5, 1, 1)
}

func TestPanics(t *testing.T) {
	mustPanic(t, func() { PulseHarmonic(0, 1) })
	mustPanic(t, func() { PulseHarmonic(1, 1) })
	mustPanic(t, func() { NewImpulseKernel(0) })
	r := rand.New(rand.NewSource(6))
	mustPanic(t, func() {
		p := OU{Sigma: 1, Tau: 0}
		p.Step(1e-6, r)
	})
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// TestRotatorAccuracy compares the rotation-recurrence oscillator against
// the direct Sincos form over a long capture: the renormalized recurrence
// must track the closed form to well below simulation noise floors.
func TestRotatorAccuracy(t *testing.T) {
	const n = 1 << 17
	phase0 := 0.7371
	delta := 2 * math.Pi * 0.0137 // an irrational-ish fraction of a cycle
	r := NewRotator(phase0, delta)
	var maxErr float64
	for i := 0; i < n; i++ {
		got := r.Next()
		s, c := math.Sincos(phase0 + float64(i)*delta)
		if e := cmplx.Abs(got - complex(c, s)); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-9 {
		t.Fatalf("rotator drifted %g from the direct form over %d samples", maxErr, n)
	}
	// Magnitude must stay pinned to 1 by the periodic renormalization.
	if m := cmplx.Abs(r.Next()); math.Abs(m-1) > 1e-12 {
		t.Fatalf("rotator magnitude drifted to %g", m)
	}
}

// TestPowChain checks w^n generation for consecutive, sparse, and large
// harmonic numbers against direct exponentiation.
func TestPowChain(t *testing.T) {
	w := cmplx.Exp(complex(0, 0.0313))
	ns := []int{1, 3, 5, 7, 37, 61, 200}
	dst := make([]complex128, len(ns))
	PowChain(dst, ns, w)
	for j, n := range ns {
		want := cmplx.Pow(w, complex(float64(n), 0))
		if e := cmplx.Abs(dst[j] - want); e > 1e-12 {
			t.Errorf("PowChain w^%d off by %g", n, e)
		}
	}
}

// TestImpulseKernelMatchesDirectForm verifies the trig-recurrence tap
// generation against the direct per-tap evaluation it replaced.
func TestImpulseKernelMatchesDirectForm(t *testing.T) {
	k := NewImpulseKernel(8)
	fs := 1e6
	for _, pos := range []float64{40.0, 41.37, 39.5001, 3.2, 60.9} {
		got := make([]complex128, 64)
		k.Add(got, pos, complex(2.5e-9, -1e-9), fs)
		want := make([]complex128, 64)
		amp := complex(2.5e-9, -1e-9) * complex(fs, 0)
		center := int(math.Round(pos))
		for i := center - 8; i <= center+8; i++ {
			if i < 0 || i >= len(want) {
				continue
			}
			x := float64(i) - pos
			w := 0.54 + 0.46*math.Cos(math.Pi*x/9)
			want[i] += amp * complex(sinc(x)*w, 0)
		}
		for i := range got {
			if e := cmplx.Abs(got[i] - want[i]); e > 1e-12*cmplx.Abs(amp) {
				t.Fatalf("pos %g tap %d: got %v want %v", pos, i, got[i], want[i])
			}
		}
	}
}

// TestImpulseKernelAddTrainMatchesAdd pins the fused batch renderer to
// its reference: AddTrain must be bit-identical to computing each pulse's
// downconversion phasor with math.Sincos and depositing it with Add, in
// pulse order — including pulses clipped at the window edges.
func TestImpulseKernelAddTrainMatchesAdd(t *testing.T) {
	k := NewImpulseKernel(8)
	r := rand.New(rand.NewSource(99))
	fs := 1.6384e6
	for trial := 0; trial < 50; trial++ {
		n := 64 + r.Intn(512)
		pulses := 1 + r.Intn(200)
		omega := -2 * math.Pi * (100e3 + 1e6*r.Float64())
		pos := make([]float64, pulses)
		tk := make([]float64, pulses)
		amp := make([]float64, pulses)
		for p := range pos {
			// Spread positions past both edges so the clipped tap path runs.
			pos[p] = -12 + r.Float64()*(float64(n)+24)
			tk[p] = r.Float64() * 1e-2
			amp[p] = r.NormFloat64() * 1e-9
		}
		got := make([]complex128, n)
		k.AddTrain(got, pos, tk, amp, omega, fs)
		want := make([]complex128, n)
		for p := range pos {
			s, c := math.Sincos(omega * tk[p])
			k.Add(want, pos[p], complex(amp[p]*c, amp[p]*s), fs)
		}
		for i := range got {
			if math.Float64bits(real(got[i])) != math.Float64bits(real(want[i])) ||
				math.Float64bits(imag(got[i])) != math.Float64bits(imag(want[i])) {
				t.Fatalf("trial %d sample %d: got %v want %v", trial, i, got[i], want[i])
			}
		}
	}
}
