// Package sig provides the signal-generation primitives the EM emanation
// simulator is built from: phase-noise processes for non-ideal oscillators,
// rectangular pulse-train Fourier coefficients, and spread-spectrum sweep
// profiles.
//
// The paper's §2.1 develops exactly these ingredients: digital clocks are
// pulse trains whose harmonics' amplitudes depend on duty cycle; RC
// oscillators (switching regulators) have Gaussian-looking frequency
// wander; spread-spectrum clocks sweep their frequency periodically.
package sig

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// OU is an Ornstein-Uhlenbeck process, the standard model for oscillator
// frequency wander (jitter/phase noise): mean-reverting with stationary
// standard deviation Sigma and correlation time Tau.
type OU struct {
	Sigma float64 // stationary RMS value
	Tau   float64 // correlation time in seconds
	x     float64
	// Cached discretization coefficients for the last step size. Renderers
	// step with a constant dt (the sample period), so the exp/sqrt of the
	// exact OU discretization is paid once per capture, not once per
	// sample. The cached values are the same expressions Step evaluated
	// inline before, so the process trajectory is unchanged bit for bit.
	cdt, ca, cnoise float64
}

// Init draws the state from the stationary distribution so captures start
// in steady state rather than at zero wander.
func (p *OU) Init(r *rand.Rand) {
	p.x = p.Sigma * r.NormFloat64()
}

// Step advances the process by dt seconds and returns the new value.
func (p *OU) Step(dt float64, r *rand.Rand) float64 {
	if p.Sigma == 0 {
		return 0
	}
	if p.Tau <= 0 {
		panic(fmt.Sprintf("sig: OU tau must be positive, got %g", p.Tau))
	}
	if dt != p.cdt {
		a := math.Exp(-dt / p.Tau)
		p.cdt, p.ca, p.cnoise = dt, a, p.Sigma*math.Sqrt(1-a*a)
	}
	// Exact discretization of the OU SDE.
	p.x = p.ca*p.x + p.cnoise*r.NormFloat64()
	return p.x
}

// Value returns the current state without advancing.
func (p *OU) Value() float64 { return p.x }

// Oscillator is a phase accumulator with optional OU frequency wander.
// It produces the *offset* phase relative to a chosen reference frequency,
// which is how complex-baseband renderers consume it.
type Oscillator struct {
	F0     float64 // nominal frequency, Hz
	Wander OU      // frequency wander about F0 (Sigma = 0 for crystal)
	phase  float64
}

// Start randomizes the initial phase and seeds the wander process. Call
// once per capture.
func (o *Oscillator) Start(r *rand.Rand) {
	o.phase = 2 * math.Pi * r.Float64()
	o.Wander.Init(r)
}

// Step advances the oscillator by dt against the reference frequency fref
// and returns the current offset phase 2π·(F0−fref)·t + ∫wander. The first
// call should be made before using the phase of sample 0? No: Step returns
// the phase *after* advancing; call Phase() for the current value first.
func (o *Oscillator) Step(dt, fref float64, r *rand.Rand) {
	f := o.F0 - fref + o.Wander.Step(dt, r)
	o.phase += 2 * math.Pi * f * dt
}

// Phase returns the current offset phase in radians.
func (o *Oscillator) Phase() float64 { return o.phase }

// RotatorRenorm is the renormalization period of phasor-rotation
// oscillators: after this many one-multiply steps the phasor magnitude is
// reset to 1. Each complex multiply perturbs the magnitude by O(ε) so the
// drift between renormalizations is bounded by ~RotatorRenorm·ε ≈ 6e-14,
// far below simulation noise floors.
const RotatorRenorm = 256

// Rotator synthesizes the complex exponential e^{i(φ0 + k·Δ)} sample by
// sample using the rotation recurrence z ← z·e^{iΔ}: one complex multiply
// per sample instead of a Sincos call, with periodic renormalization to
// bound magnitude drift. It is the workhorse for fixed-frequency carrier
// and audio-tone synthesis in the renderers.
type Rotator struct {
	z, step complex128
	k       int
}

// NewRotator creates a rotator starting at phase phase0 (radians) that
// advances by delta radians per step.
func NewRotator(phase0, delta float64) Rotator {
	s0, c0 := math.Sincos(phase0)
	s1, c1 := math.Sincos(delta)
	return Rotator{z: complex(c0, s0), step: complex(c1, s1)}
}

// Next returns the current phasor and advances one step.
func (r *Rotator) Next() complex128 {
	v := r.z
	r.z *= r.step
	if r.k++; r.k >= RotatorRenorm {
		r.k = 0
		r.z = Renormalize(r.z)
	}
	return v
}

// Next4 returns the current phasor and the next three, advancing four
// steps with a single renormalization check. The four values and the
// post-call rotator state are bit-identical to four consecutive Next
// calls provided the step counter is a multiple of 4 (true for rotators
// advanced only in batches of 4, since RotatorRenorm is too): the renorm
// boundary then always coincides with a batch boundary. Renderers unroll
// their per-sample loops around it to keep the phasor in registers.
func (r *Rotator) Next4() (v0, v1, v2, v3 complex128) {
	v0 = r.z
	v1 = v0 * r.step
	v2 = v1 * r.step
	v3 = v2 * r.step
	r.z = v3 * r.step
	if r.k += 4; r.k >= RotatorRenorm {
		r.k = 0
		r.z = Renormalize(r.z)
	}
	return
}

// Renormalize rescales a unit phasor back to magnitude 1, undoing the
// rounding drift accumulated by repeated rotation multiplies.
func Renormalize(z complex128) complex128 {
	m := math.Sqrt(real(z)*real(z) + imag(z)*imag(z))
	return complex(real(z)/m, imag(z)/m)
}

// PowChain fills dst[j] = w^ns[j] for an ascending list of positive
// harmonic numbers ns. Consecutive harmonics cost one multiply per unit of
// spacing; large gaps (sparse high harmonics) fall back to binary
// exponentiation. Comb renderers call this once per sample with the shared
// per-sample rotation (frequency wander or sweep offset) to advance every
// harmonic's phasor without per-harmonic trig.
func PowChain(dst []complex128, ns []int, w complex128) {
	cur := complex(1, 0)
	m := 0
	for j, n := range ns {
		d := n - m
		if d < 8 {
			for ; d > 0; d-- {
				cur *= w
			}
		} else {
			cur *= Ipow(w, d)
		}
		m = n
		dst[j] = cur
	}
}

// Ipow computes w^e by binary exponentiation. It is the gap fallback of
// PowChain, exported so renderers that fuse the power chain into their
// accumulation loop (avoiding the wpow round trip through memory) produce
// the exact same sequence of multiplies, and therefore the exact same
// bits, as a PowChain pass followed by a separate loop.
func Ipow(w complex128, e int) complex128 {
	r := complex(1, 0)
	for e > 0 {
		if e&1 == 1 {
			r *= w
		}
		w *= w
		e >>= 1
	}
	return r
}

// PulseHarmonic returns the complex Fourier-series coefficient c_n of a
// unit-amplitude rectangular pulse train with the given duty cycle
// (0 < duty < 1), with the pulse starting at t=0:
//
//	c_n = duty · sinc(n·duty) · exp(−iπ·n·duty),  c_0 = duty.
//
// Properties the paper relies on (§2.1): at 50% duty, even harmonics
// vanish; for small duty the first harmonics have nearly equal magnitude;
// every harmonic's magnitude depends on duty, so duty-cycle (pulse-width)
// modulation amplitude-modulates all harmonics at once.
func PulseHarmonic(duty float64, n int) complex128 {
	if duty <= 0 || duty >= 1 {
		panic(fmt.Sprintf("sig: duty %g out of (0, 1)", duty))
	}
	if n < 0 {
		n = -n
	}
	if n == 0 {
		return complex(duty, 0)
	}
	x := float64(n) * duty
	mag := duty * sinc(x)
	return complex(mag, 0) * cmplx.Exp(complex(0, -math.Pi*x))
}

// sinc is the normalized sinc function sin(πx)/(πx).
func sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	return math.Sin(math.Pi*x) / (math.Pi * x)
}

// SquareHarmonic returns the Fourier coefficient of a 50%-duty square wave
// (a clock): odd harmonics only, magnitude 2/(πn) relative to the
// fundamental's π/... — specifically c_n for the unit square wave in
// [-1, 1] is 2/(iπn) for odd n, 0 for even n, 0 for n = 0 (DC removed).
func SquareHarmonic(n int) complex128 {
	if n < 0 {
		n = -n
	}
	if n == 0 || n%2 == 0 {
		return 0
	}
	return complex(0, -2/(math.Pi*float64(n)))
}

// SweepProfile is the instantaneous frequency offset profile of a
// spread-spectrum clock, as a function of phase within the sweep period
// (u in [0, 1)). Implementations return an offset in [-1, 1] that is
// scaled by half the peak-to-peak spread.
type SweepProfile interface {
	Offset(u float64) float64
	String() string
}

// TriangleSweep is the linear up/down sweep commonly used by SSC
// generators ("swept back and forth", §4.3). Uniform dwell density with
// turnaround points at the extremes.
type TriangleSweep struct{}

// Offset maps u ∈ [0,1) to a triangle in [-1, 1].
func (TriangleSweep) Offset(u float64) float64 {
	u = u - math.Floor(u)
	if u < 0.5 {
		return 4*u - 1
	}
	return 3 - 4*u
}

func (TriangleSweep) String() string { return "triangle" }

// SineSweep dwells longest at the extremes, producing the pronounced
// "horns" at the edges of the spread spectrum.
type SineSweep struct{}

// Offset maps u ∈ [0,1) to sin(2πu).
func (SineSweep) Offset(u float64) float64 { return math.Sin(2 * math.Pi * u) }

func (SineSweep) String() string { return "sine" }

// SSC tracks the phase of a spread-spectrum clock: nominal frequency F0,
// peak-to-peak spread SpreadHz applied as a down-spread (the swept
// frequency stays in [F0−SpreadHz, F0]), sweeping at RateHz with the given
// profile.
type SSC struct {
	F0       float64
	SpreadHz float64
	RateHz   float64
	Profile  SweepProfile
	phase    float64 // accumulated offset phase
	u        float64 // position within sweep period
}

// Start randomizes the initial carrier phase and sweep position.
func (s *SSC) Start(r *rand.Rand) {
	s.phase = 2 * math.Pi * r.Float64()
	s.u = r.Float64()
}

// Freq returns the current instantaneous frequency.
func (s *SSC) Freq() float64 {
	if s.Profile == nil || s.SpreadHz == 0 {
		return s.F0
	}
	// Down-spread: center at F0 − Spread/2, swinging ±Spread/2.
	return s.F0 - s.SpreadHz/2 + s.SpreadHz/2*s.Profile.Offset(s.u)
}

// Step advances by dt against reference frequency fref.
func (s *SSC) Step(dt, fref float64) {
	s.phase += 2 * math.Pi * (s.Freq() - fref) * dt
	s.u += s.RateHz * dt
	if s.u >= 1 {
		s.u -= math.Floor(s.u)
	}
}

// Phase returns the accumulated offset phase.
func (s *SSC) Phase() float64 { return s.phase }

// ImpulseKernel is a Hamming-windowed band-limited interpolation kernel
// used to place sub-sample-accurate impulses (e.g. DRAM refresh pulses much
// narrower than a sample period) into a sampled baseband stream.
type ImpulseKernel struct {
	halfTaps int
	dTheta   float64 // window phase step π/(halfTaps+1) between taps
	twoCosD  float64 // 2·cos(dTheta), the Chebyshev recurrence coefficient
}

// NewImpulseKernel creates a kernel with the given half-width in samples
// (total support 2·halfTaps+1). 8 is a good default.
func NewImpulseKernel(halfTaps int) *ImpulseKernel {
	if halfTaps < 1 {
		panic(fmt.Sprintf("sig: impulse kernel half-width must be >= 1, got %d", halfTaps))
	}
	dTheta := math.Pi / float64(halfTaps+1)
	return &ImpulseKernel{halfTaps: halfTaps, dTheta: dTheta, twoCosD: 2 * math.Cos(dTheta)}
}

// Add deposits an impulse of the given complex area (in units of
// value·seconds) at continuous sample position pos into dst, where dst is
// sampled at rate fs. Positions outside dst are clipped sample-by-sample.
//
// The tap values sinc(x)·(0.54 + 0.46·cos(πx/(h+1))) are generated by
// recurrence rather than per-tap trig: sin(π(x+1)) = −sin(πx) makes the
// sinc numerator alternate sign, and the window cosine follows the
// Chebyshev recurrence cos(θ+Δ) = 2cosΔ·cosθ − cos(θ−Δ). Three trig calls
// per impulse replace two per tap.
func (k *ImpulseKernel) Add(dst []complex128, pos float64, area complex128, fs float64) {
	center := int(math.Round(pos))
	// The impulse in sample units has height area·fs distributed over the
	// windowed sinc.
	amp := area * complex(fs, 0)
	h := k.halfTaps
	lo := center - h
	u0 := float64(lo) - pos // distance of the first tap from the impulse
	s := math.Sin(math.Pi * u0)
	theta0 := u0 * k.dTheta
	c := math.Cos(theta0)
	cPrev := math.Cos(theta0 - k.dTheta)
	if lo >= 0 && center+h < len(dst) {
		// Fully interior impulse (the common case): same tap arithmetic
		// as below, minus the per-tap clip test.
		for i := lo; i <= center+h; i++ {
			u := float64(i) - pos
			var snc float64
			if u == 0 {
				snc = 1
			} else {
				snc = s / (math.Pi * u)
			}
			w := 0.54 + 0.46*c
			dst[i] += amp * complex(snc*w, 0)
			s = -s
			c, cPrev = k.twoCosD*c-cPrev, c
		}
		return
	}
	for i := lo; i <= center+h; i++ {
		if i >= 0 && i < len(dst) {
			u := float64(i) - pos
			var snc float64
			if u == 0 {
				snc = 1
			} else {
				snc = s / (math.Pi * u)
			}
			w := 0.54 + 0.46*c
			dst[i] += amp * complex(snc*w, 0)
		}
		s = -s
		c, cPrev = k.twoCosD*c-cPrev, c
	}
}

// AddTrain deposits a batch of downconverted impulses: for each pulse p
// it computes the carrier phasor at the pulse time, area_p =
// amp[p]·e^{i·omega·t[p]}, and deposits it at sample position pos[p] —
// bit-identical to calling math.Sincos(omega·t[p]) and Add for each pulse
// in order, since float addition into dst is applied pulse-major either
// way. The fused form exists for the blocked impulse-train renderers: the
// kernel geometry loads once, the interior fast path runs over a
// bounds-check-free subslice, the per-pulse call overhead disappears, and
// the carrier phasor never round-trips through a scratch array — the tap
// arithmetic itself (recurrence seeds, sinc division, windowing,
// accumulation order) is exactly Add's.
func (k *ImpulseKernel) AddTrain(dst []complex128, pos, t, amp []float64, omega, fs float64) {
	if len(pos) != len(t) || len(pos) != len(amp) {
		panic(fmt.Sprintf("sig: AddTrain with %d positions, %d times, %d amplitudes",
			len(pos), len(t), len(amp)))
	}
	h := k.halfTaps
	dTheta, twoCosD := k.dTheta, k.twoCosD
	cfs := complex(fs, 0)
	for p, ps := range pos {
		center := int(math.Round(ps))
		osn, osc := math.Sincos(omega * t[p])
		a := amp[p]
		pa := complex(a*osc, a*osn) * cfs
		lo := center - h
		u0 := float64(lo) - ps
		s := math.Sin(math.Pi * u0)
		theta0 := u0 * dTheta
		c := math.Cos(theta0)
		cPrev := math.Cos(theta0 - dTheta)
		if lo >= 0 && center+h < len(dst) {
			// Interior impulse: iterate a subslice so the compiler drops the
			// per-tap bounds check; u keeps Add's exact float64(i)-pos form.
			seg := dst[lo : center+h+1]
			for j := range seg {
				u := float64(lo+j) - ps
				var snc float64
				if u == 0 {
					snc = 1
				} else {
					snc = s / (math.Pi * u)
				}
				w := 0.54 + 0.46*c
				seg[j] += pa * complex(snc*w, 0)
				s = -s
				c, cPrev = twoCosD*c-cPrev, c
			}
			continue
		}
		for i := lo; i <= center+h; i++ {
			if i >= 0 && i < len(dst) {
				u := float64(i) - ps
				var snc float64
				if u == 0 {
					snc = 1
				} else {
					snc = s / (math.Pi * u)
				}
				w := 0.54 + 0.46*c
				dst[i] += pa * complex(snc*w, 0)
			}
			s = -s
			c, cPrev = twoCosD*c-cPrev, c
		}
	}
}
