package sig

import (
	"math"
	"testing"
)

// TestRotatorBatchedMatchesScalar drives a batched and a scalar rotator
// through 10^7 steps and requires every produced phasor — and the hidden
// state after each batch — to be bit-identical. This is the contract the
// unrolled render loops rely on: Next4 is not "close to" four Next calls,
// it is the same sequence of multiplies and renormalizations.
func TestRotatorBatchedMatchesScalar(t *testing.T) {
	const steps = 10_000_000
	rb := NewRotator(0.7312, 0.137)
	rs := rb
	for i := 0; i < steps; i += 4 {
		b0, b1, b2, b3 := rb.Next4()
		for j, b := range [4]complex128{b0, b1, b2, b3} {
			s := rs.Next()
			if math.Float64bits(real(b)) != math.Float64bits(real(s)) ||
				math.Float64bits(imag(b)) != math.Float64bits(imag(s)) {
				t.Fatalf("step %d: batched %v != scalar %v", i+j, b, s)
			}
		}
		if rb != rs {
			t.Fatalf("step %d: rotator state diverged: batched %+v scalar %+v", i+3, rb, rs)
		}
	}
}

// TestRotatorBatchedDriftProperty bounds the phase-accuracy drift of the
// batched rotation recurrence over 10^7 steps against a math.Sincos
// reference. The reference angle φ0 + k·Δ is accumulated in compensated
// (hi+lo) arithmetic so the comparison measures the rotator's drift, not
// the reference's. Two error terms accumulate: the rounded step phasor
// Sincos(Δ) carries a fixed ~ε/2 phase quantization that adds coherently
// (~steps·ε/2 ≈ 1e-9 over 10^7 steps — the per-step error is ULP-scale
// and this term is irreducible for any float64 phasor step), and the
// per-multiply rounding adds a random walk ~√steps·ε ≈ 7e-13; periodic
// renormalization holds the magnitude error at ~RotatorRenorm·ε. The
// asserted bound covers the coherent term with modest slack while still
// catching a broken renorm schedule or step immediately.
func TestRotatorBatchedDriftProperty(t *testing.T) {
	const (
		steps = 10_000_000
		bound = 5e-9
	)
	for _, delta := range []float64{0.137, 1.9e-3, 2.399} {
		const phase0 = 1.234
		r := NewRotator(phase0, delta)
		// Compensated accumulation of the reference angle.
		hi, lo := phase0, 0.0
		maxErr := 0.0
		for k := 0; k < steps; k += 4 {
			v0, v1, v2, v3 := r.Next4()
			for j, v := range [4]complex128{v0, v1, v2, v3} {
				if (k+j)%997 == 0 {
					s, c := math.Sincos(hi + lo)
					if e := math.Hypot(real(v)-c, imag(v)-s); e > maxErr {
						maxErr = e
					}
				}
				// Two-sum: (hi, lo) += delta, exactly.
				sum := hi + delta
				err := (hi - (sum - (sum - hi))) + (delta - (sum - hi))
				hi, lo = sum, lo+err
			}
		}
		if maxErr > bound {
			t.Fatalf("delta=%g: max drift %.3g over %d steps exceeds %.3g", delta, maxErr, steps, bound)
		}
		t.Logf("delta=%g: max drift %.3g over %d steps", delta, maxErr, steps)
	}
}
