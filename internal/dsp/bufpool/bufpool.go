// Package bufpool provides size-checked sync.Pool-backed scratch buffers
// for the rendering pipeline's hot path: complex-baseband capture buffers
// and periodogram bin arrays. In steady state (repeated sweeps of the same
// geometry) every Get is served from the pool and the pipeline allocates
// nothing per capture.
//
// Buffers come back dirty: callers must overwrite every element (or zero
// the buffer themselves) before use.
package bufpool

import (
	"sync"

	"fase/internal/obs"
)

var complexPool sync.Pool // *[]complex128
var floatPool sync.Pool   // *[]float64

// Pool hit/miss counters feed the run manifest's cache statistics. A
// "miss" is a Get that had to allocate (empty pool or undersized
// buffer); in steady state every Get is a hit.
var (
	complexHits   = obs.Default.Counter(obs.MetricBufpoolComplexHits)
	complexMisses = obs.Default.Counter(obs.MetricBufpoolComplexMisses)
	floatHits     = obs.Default.Counter(obs.MetricBufpoolFloatHits)
	floatMisses   = obs.Default.Counter(obs.MetricBufpoolFloatMisses)
)

// Complex returns a dirty []complex128 of length n from the pool,
// allocating only when no pooled buffer is large enough.
func Complex(n int) []complex128 {
	if v := complexPool.Get(); v != nil {
		b := *(v.(*[]complex128))
		if cap(b) >= n {
			complexHits.Inc()
			return b[:n]
		}
	}
	complexMisses.Inc()
	return make([]complex128, n)
}

// PutComplex returns a buffer obtained from Complex to the pool. The
// caller must not use b afterwards.
func PutComplex(b []complex128) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	complexPool.Put(&b)
}

// Float returns a dirty []float64 of length n from the pool.
func Float(n int) []float64 {
	if v := floatPool.Get(); v != nil {
		b := *(v.(*[]float64))
		if cap(b) >= n {
			floatHits.Inc()
			return b[:n]
		}
	}
	floatMisses.Inc()
	return make([]float64, n)
}

// PutFloat returns a buffer obtained from Float to the pool. The caller
// must not use b afterwards.
func PutFloat(b []float64) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	floatPool.Put(&b)
}
