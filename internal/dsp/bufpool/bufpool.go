// Package bufpool provides size-checked sync.Pool-backed scratch buffers
// for the rendering pipeline's hot path: complex-baseband capture buffers
// and periodogram bin arrays. In steady state (repeated sweeps of the same
// geometry) every Get is served from the pool and the pipeline allocates
// nothing per capture.
//
// Buffers come back dirty: callers must overwrite every element (or zero
// the buffer themselves) before use.
package bufpool

import "sync"

var complexPool sync.Pool // *[]complex128
var floatPool sync.Pool   // *[]float64

// Complex returns a dirty []complex128 of length n from the pool,
// allocating only when no pooled buffer is large enough.
func Complex(n int) []complex128 {
	if v := complexPool.Get(); v != nil {
		b := *(v.(*[]complex128))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]complex128, n)
}

// PutComplex returns a buffer obtained from Complex to the pool. The
// caller must not use b afterwards.
func PutComplex(b []complex128) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	complexPool.Put(&b)
}

// Float returns a dirty []float64 of length n from the pool.
func Float(n int) []float64 {
	if v := floatPool.Get(); v != nil {
		b := *(v.(*[]float64))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]float64, n)
}

// PutFloat returns a buffer obtained from Float to the pool. The caller
// must not use b afterwards.
func PutFloat(b []float64) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	floatPool.Put(&b)
}
