// Package bufpool provides size-checked sync.Pool-backed scratch buffers
// for the rendering pipeline's hot path: complex-baseband capture buffers
// and periodogram bin arrays. In steady state (repeated sweeps of the same
// geometry) every Get is served from the pool and the pipeline allocates
// nothing per capture.
//
// Buffers come back dirty: callers must overwrite every element (or zero
// the buffer themselves) before use.
package bufpool

import (
	"sync"

	"fase/internal/obs"
)

var complexPool sync.Pool // *[]complex128
var floatPool sync.Pool   // *[]float64

// Pool hit/miss counters feed the run manifest's cache statistics. A
// "miss" is a Get that had to allocate (empty pool or undersized
// buffer); in steady state every Get is a hit.
var (
	complexHits   = obs.Default.Counter(obs.MetricBufpoolComplexHits)
	complexMisses = obs.Default.Counter(obs.MetricBufpoolComplexMisses)
	floatHits     = obs.Default.Counter(obs.MetricBufpoolFloatHits)
	floatMisses   = obs.Default.Counter(obs.MetricBufpoolFloatMisses)
)

// Complex returns a dirty []complex128 of length n from the pool,
// allocating only when no pooled buffer is large enough.
func Complex(n int) []complex128 {
	if v := complexPool.Get(); v != nil {
		b := *(v.(*[]complex128))
		if cap(b) >= n {
			complexHits.Inc()
			return b[:n]
		}
	}
	complexMisses.Inc()
	return make([]complex128, n)
}

// PutComplex returns a buffer obtained from Complex to the pool. The
// caller must not use b afterwards.
func PutComplex(b []complex128) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	complexPool.Put(&b)
}

// Float returns a dirty []float64 of length n from the pool.
func Float(n int) []float64 {
	if v := floatPool.Get(); v != nil {
		b := *(v.(*[]float64))
		if cap(b) >= n {
			floatHits.Inc()
			return b[:n]
		}
	}
	floatMisses.Inc()
	return make([]float64, n)
}

// PutFloat returns a buffer obtained from Float to the pool. The caller
// must not use b afterwards.
func PutFloat(b []float64) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	floatPool.Put(&b)
}

// Arena is an owner-scoped buffer freelist. Unlike the process-wide
// sync.Pools above — whose contents the garbage collector may drop
// between sweeps — buffers returned to an Arena are retained for the
// owner's lifetime, so a long campaign's captures stop allocating after
// the first sweep regardless of GC pressure. The zero value is ready;
// all methods are safe for concurrent use. Buffers come back dirty, same
// as the package-level pools.
type Arena struct {
	mu       sync.Mutex
	complexs [][]complex128
	floats   [][]float64
}

// Complex returns a dirty []complex128 of length n, reusing a retained
// buffer when one is large enough (undersized buffers are discarded — an
// arena serves one capture geometry, so sizes only grow).
func (a *Arena) Complex(n int) []complex128 {
	a.mu.Lock()
	for len(a.complexs) > 0 {
		b := a.complexs[len(a.complexs)-1]
		a.complexs = a.complexs[:len(a.complexs)-1]
		if cap(b) >= n {
			a.mu.Unlock()
			complexHits.Inc()
			return b[:n]
		}
	}
	a.mu.Unlock()
	complexMisses.Inc()
	return make([]complex128, n)
}

// PutComplex retains a buffer for reuse. The caller must not use b
// afterwards.
func (a *Arena) PutComplex(b []complex128) {
	if cap(b) == 0 {
		return
	}
	a.mu.Lock()
	a.complexs = append(a.complexs, b[:cap(b)])
	a.mu.Unlock()
}

// Float returns a dirty []float64 of length n from the arena.
func (a *Arena) Float(n int) []float64 {
	a.mu.Lock()
	for len(a.floats) > 0 {
		b := a.floats[len(a.floats)-1]
		a.floats = a.floats[:len(a.floats)-1]
		if cap(b) >= n {
			a.mu.Unlock()
			floatHits.Inc()
			return b[:n]
		}
	}
	a.mu.Unlock()
	floatMisses.Inc()
	return make([]float64, n)
}

// PutFloat retains a buffer for reuse. The caller must not use b
// afterwards.
func (a *Arena) PutFloat(b []float64) {
	if cap(b) == 0 {
		return
	}
	a.mu.Lock()
	a.floats = append(a.floats, b[:cap(b)])
	a.mu.Unlock()
}
