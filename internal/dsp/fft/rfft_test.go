package fft

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// maxAbs returns the largest magnitude in x, for scaling error tolerances.
func maxAbs(x []complex128) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Hypot(real(v), imag(v)); a > m {
			m = a
		}
	}
	return m
}

// checkRealAgainstComplex compares the RealPlan spectrum of x against the
// complex plan run on a promoted copy, with a tolerance scaled by the
// spectrum magnitude and transform length.
func checkRealAgainstComplex(t *testing.T, x []float64) {
	t.Helper()
	n := len(x)
	ref := make([]complex128, n)
	for i, v := range x {
		ref[i] = complex(v, 0)
	}
	PlanFor(n).Forward(ref)

	got := make([]complex128, n)
	PlanForReal(n).Forward(x, got)

	tol := 1e-13 * float64(n) * (1 + maxAbs(ref))
	for k := range ref {
		if d := math.Hypot(real(got[k])-real(ref[k]), imag(got[k])-imag(ref[k])); d > tol {
			t.Fatalf("n=%d bin %d: real-input FFT %v vs complex %v (|Δ|=%g, tol %g)",
				n, k, got[k], ref[k], d, tol)
		}
	}
}

// TestRealPlanMatchesComplex cross-checks the packed real-input transform
// against the complex plan on random inputs, covering power-of-two sizes
// (pow2 half-plans), even non-pow2 sizes (Bluestein half-plans), odd sizes
// (complex fallback), and the tiny-length edges.
func TestRealPlanMatchesComplex(t *testing.T) {
	r := rand.New(rand.NewSource(0xF5E))
	for _, n := range []int{1, 2, 3, 4, 6, 8, 16, 20, 64, 81, 96, 100, 128, 250, 333, 1024, 1000} {
		for trial := 0; trial < 4; trial++ {
			x := make([]float64, n)
			for i := range x {
				x[i] = r.NormFloat64() * math.Exp(4*r.Float64()-2)
			}
			checkRealAgainstComplex(t, x)
		}
	}
}

// TestRealPlanSpecialInputs checks inputs whose spectra have exact known
// structure: an impulse (flat spectrum) and a constant (DC only).
func TestRealPlanSpecialInputs(t *testing.T) {
	const n = 64
	impulse := make([]float64, n)
	impulse[0] = 1
	out := make([]complex128, n)
	PlanForReal(n).Forward(impulse, out)
	for k, v := range out {
		if math.Abs(real(v)-1) > 1e-12 || math.Abs(imag(v)) > 1e-12 {
			t.Fatalf("impulse bin %d = %v, want 1", k, v)
		}
	}
	dc := make([]float64, n)
	for i := range dc {
		dc[i] = 2.5
	}
	PlanForReal(n).Forward(dc, out)
	if math.Abs(real(out[0])-2.5*n) > 1e-9 {
		t.Fatalf("DC bin = %v, want %g", out[0], 2.5*float64(n))
	}
	for k := 1; k < n; k++ {
		if math.Hypot(real(out[k]), imag(out[k])) > 1e-9 {
			t.Fatalf("constant input: bin %d = %v, want 0", k, out[k])
		}
	}
}

// TestRealPlanHermitianSymmetry verifies the explicitly filled upper half
// exactly mirrors the lower half: X[n−k] must be the bitwise conjugate of
// X[k], because the upper bins are constructed by component negation.
func TestRealPlanHermitianSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{8, 12, 64, 96} {
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		out := make([]complex128, n)
		PlanForReal(n).Forward(x, out)
		for k := 1; k < n/2; k++ {
			want := complex(real(out[k]), -imag(out[k]))
			if out[n-k] != want {
				t.Fatalf("n=%d: bin %d = %v, want exact conj of bin %d = %v", n, n-k, out[n-k], k, out[k])
			}
		}
		if imag(out[0]) != 0 {
			t.Fatalf("n=%d: DC bin has imaginary part %g", n, imag(out[0]))
		}
		if n%2 == 0 && imag(out[n/2]) != 0 {
			t.Fatalf("n=%d: Nyquist bin has imaginary part %g", n, imag(out[n/2]))
		}
	}
}

// TestInversePow2BitIdentical pins the conjugate-twiddle inverse kernel to
// the conjugate → forward → conjugate formulation it replaced: the two
// must agree bit for bit, because Plan.Inverse sits on the golden-pinned
// Background render path.
func TestInversePow2BitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{2, 8, 64, 1024, 4096} {
		p := PlanFor(n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		ref := make([]complex128, n)
		copy(ref, x)
		// Reference: the elided-conjugate formulation.
		conjugate(ref)
		p.forwardPow2(ref)
		conjugate(ref)
		scale(ref, 1/float64(n))

		p.Inverse(x)
		for i := range x {
			if rb, ib := math.Float64bits(real(x[i])), math.Float64bits(imag(x[i])); rb != math.Float64bits(real(ref[i])) || ib != math.Float64bits(imag(ref[i])) {
				t.Fatalf("n=%d sample %d: inversePow2 %v != reference %v", n, i, x[i], ref[i])
			}
		}
	}
}

// TestRealPlanLengthMismatchPanics pins the guard against mismatched
// buffer lengths.
func TestRealPlanLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	PlanForReal(8).Forward(make([]float64, 8), make([]complex128, 4))
}

// FuzzRFFT feeds arbitrary byte strings as real sample streams through
// both the real-input and the promoted-complex transforms and requires
// agreement, covering every length class the corpus reaches (pow2,
// Bluestein-even, odd).
func FuzzRFFT(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(make([]byte, 64*8))
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f, 0x01, 0xfe, 0x55, 0xaa, 0x13})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n == 0 || n > 2048 {
			t.Skip()
		}
		x := make([]float64, n)
		for i := range x {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				v = float64(i%17) - 8
			}
			x[i] = v
		}
		checkRealAgainstComplex(t, x)
	})
}
