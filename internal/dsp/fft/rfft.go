package fft

import (
	"fmt"
	"math"
	"sync"

	"fase/internal/obs"
)

// RealPlan transforms real-valued input of a fixed length. For even n the
// n real samples are packed into an n/2-point complex transform and the
// spectrum recovered with one untangling pass, roughly halving the
// transform cost versus promoting the input to complex; odd lengths fall
// back to the complex plan. The output is the full n-bin complex spectrum
// (the conjugate-symmetric upper half filled in explicitly) so RealPlan
// is a drop-in source for code that consumes Plan.Forward output.
//
// The packed transform reassociates the butterfly arithmetic, so the
// result is numerically equivalent but not bit-identical to running the
// complex plan on a promoted copy — use it where the input is genuinely
// real (demodulated envelopes, power traces), not inside bit-pinned
// complex-baseband paths.
type RealPlan struct {
	n    int
	half *Plan        // n/2-point complex plan (even n)
	full *Plan        // odd-length fallback
	w    []complex128 // untangle twiddles exp(-2πik/n), k = 0..n/4
}

// realPlanCache backs PlanForReal: transform length -> *RealPlan.
var realPlanCache sync.Map

var (
	realPlanHits   = obs.Default.Counter(obs.MetricRFFTPlanHits)
	realPlanMisses = obs.Default.Counter(obs.MetricRFFTPlanMisses)
)

// PlanForReal returns a process-wide shared real-input plan for length n,
// creating and caching it on first use. Plans are immutable after
// construction and safe for concurrent use.
func PlanForReal(n int) *RealPlan {
	if v, ok := realPlanCache.Load(n); ok {
		realPlanHits.Inc()
		return v.(*RealPlan)
	}
	realPlanMisses.Inc()
	v, _ := realPlanCache.LoadOrStore(n, NewRealPlan(n))
	return v.(*RealPlan)
}

// NewRealPlan creates a real-input transform plan for length n.
func NewRealPlan(n int) *RealPlan {
	if n <= 0 {
		panic(fmt.Sprintf("fft: invalid transform length %d", n))
	}
	p := &RealPlan{n: n}
	if n%2 != 0 || n < 4 {
		p.full = NewPlan(n)
		return p
	}
	p.half = NewPlan(n / 2)
	p.w = make([]complex128, n/4+1)
	for k := range p.w {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.w[k] = complex(c, s)
	}
	return p
}

// Len returns the transform length the plan was created for.
func (p *RealPlan) Len() int { return p.n }

// Forward computes the length-n DFT of the real sequence x into out,
// including the conjugate-symmetric upper half. len(x) and len(out) must
// both equal the plan length. x is not modified; out is overwritten.
func (p *RealPlan) Forward(x []float64, out []complex128) {
	if len(x) != p.n || len(out) != p.n {
		panic(fmt.Sprintf("fft: real input length %d / output length %d do not match plan length %d",
			len(x), len(out), p.n))
	}
	if p.full != nil {
		for i, v := range x {
			out[i] = complex(v, 0)
		}
		p.full.Forward(out)
		return
	}
	n, m := p.n, p.n/2
	// Pack adjacent real samples into one complex stream and transform at
	// half length: z[j] = x[2j] + i·x[2j+1]. Reuse the front half of out
	// as the working buffer — the untangling below only reads z[k] and
	// z[m-k] before writing bins k and m-k, and writes to the upper half
	// of out never alias z.
	z := out[:m]
	for j := 0; j < m; j++ {
		z[j] = complex(x[2*j], x[2*j+1])
	}
	p.half.Forward(z)
	// Untangle: with E/O the DFTs of the even/odd subsequences,
	//   E[k] = (Z[k] + conj(Z[m−k]))/2,  O[k] = −i·(Z[k] − conj(Z[m−k]))/2,
	//   X[k] = E[k] + w^k·O[k],          X[k+m] = E[k] − w^k·O[k],
	// and the k and m−k bins are produced pairwise so z can be consumed in
	// place. DC and Nyquist come from Z[0] alone.
	z0 := z[0]
	out[0] = complex(real(z0)+imag(z0), 0)
	out[m] = complex(real(z0)-imag(z0), 0)
	for k := 1; 2*k <= m; k++ {
		zk, zr := z[k], z[m-k]
		e := complex(0.5*(real(zk)+real(zr)), 0.5*(imag(zk)-imag(zr)))
		o := complex(0.5*(imag(zk)+imag(zr)), 0.5*(real(zr)-real(zk)))
		t := p.w[k] * o
		a := e + t // X[k]
		out[k] = a
		out[n-k] = complex(real(a), -imag(a))
		if k != m-k {
			// conj(E[k] − w^k·O[k]) = X[m−k]; at k = m/2 these bins are
			// the k and n−k bins already written above.
			b := complex(real(e)-real(t), imag(t)-imag(e))
			out[m-k] = b
			out[m+k] = complex(real(b), -imag(b))
		}
	}
	// Conjugate symmetry fills the remaining upper-half bins; bins n−k for
	// k in (0, m/2] were written above, and out[m] is real.
}

// ForwardReal is a convenience wrapper that plans (via the process-wide
// cache) and executes a real-input forward transform into a new slice.
func ForwardReal(x []float64) []complex128 {
	out := make([]complex128, len(x))
	PlanForReal(len(x)).Forward(x, out)
	return out
}
