package fft

import (
	"math"
	"math/cmplx"
	"sync"
	"testing"
)

// TestBluesteinPlanConcurrent is the regression test for the documented
// Bluestein concurrency hazard: a shared non-power-of-two plan used from
// many goroutines must produce correct transforms (run under -race to
// catch scratch-buffer sharing).
func TestBluesteinPlanConcurrent(t *testing.T) {
	const n = 100 // not a power of two: exercises the Bluestein path
	plan := PlanFor(n)

	// Reference input and output computed sequentially.
	ref := make([]complex128, n)
	for i := range ref {
		ref[i] = cmplx.Exp(complex(0, 2*math.Pi*3*float64(i)/float64(n))) +
			complex(0.25*float64(i%7), -0.1*float64(i%5))
	}
	want := make([]complex128, n)
	copy(want, ref)
	plan.Forward(want)

	const workers = 8
	const iters = 50
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]complex128, n)
			for it := 0; it < iters; it++ {
				copy(buf, ref)
				plan.Forward(buf)
				for k := range buf {
					if cmplx.Abs(buf[k]-want[k]) > 1e-9 {
						errs <- "forward transform corrupted under concurrency"
						return
					}
				}
				plan.Inverse(buf)
				for k := range buf {
					if cmplx.Abs(buf[k]-ref[k]) > 1e-9 {
						errs <- "inverse round-trip corrupted under concurrency"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestPlanForCachesAndShares checks that PlanFor returns one shared plan
// per length and that concurrent first-use construction is safe.
func TestPlanForCachesAndShares(t *testing.T) {
	const n = 384 // non-power-of-two, distinct from other tests' sizes
	var wg sync.WaitGroup
	plans := make([]*Plan, 16)
	for i := range plans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plans[i] = PlanFor(n)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(plans); i++ {
		if plans[i] != plans[0] {
			t.Fatalf("PlanFor(%d) returned distinct plans", n)
		}
	}
	if plans[0].Len() != n {
		t.Fatalf("cached plan has length %d, want %d", plans[0].Len(), n)
	}
}
