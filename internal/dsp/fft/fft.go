// Package fft provides complex fast Fourier transforms of arbitrary length.
//
// Power-of-two lengths use an iterative in-place radix-2 Cooley-Tukey
// transform; all other lengths fall back to Bluestein's chirp-z algorithm,
// which reduces a length-n DFT to a power-of-two circular convolution.
// Plans cache twiddle factors so repeated transforms of the same length
// allocate nothing in steady state, and every plan is safe for concurrent
// Forward/Inverse calls: the precomputed tables are read-only after
// construction and Bluestein work buffers are drawn from a per-plan pool.
// PlanFor caches plans process-wide, which is what the parallel rendering
// pipeline uses.
//
// The forward transform computes X[k] = sum_n x[n]·exp(-i2πkn/N) with no
// normalization; the inverse divides by N so that Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"

	"fase/internal/obs"
)

// Plan holds precomputed twiddle factors for transforms of a fixed size.
// Plans are safe for concurrent use by multiple goroutines.
type Plan struct {
	n int

	// Radix-2 state (used when n is a power of two).
	twiddle    []complex128 // n/2 forward twiddles
	twiddleInv []complex128 // conjugated twiddles for the inverse kernel
	rev        []int        // bit-reversal permutation

	// Bluestein state (used otherwise).
	m       int          // convolution length (power of two >= 2n-1)
	chirp   []complex128 // exp(-iπk²/n), k = 0..n-1
	bfft    *Plan        // radix-2 plan of length m
	bk      []complex128 // FFT of the chirp filter, length m
	scratch sync.Pool    // *[]complex128 length-m work buffers
}

// planCache backs PlanFor: transform length -> *Plan.
var planCache sync.Map

// Plan-cache hit/miss counters feed the run manifest's cache statistics.
// Concurrent first uses of one length may each count a miss; the cache
// keeps a single plan regardless.
var (
	planHits   = obs.Default.Counter(obs.MetricFFTPlanHits)
	planMisses = obs.Default.Counter(obs.MetricFFTPlanMisses)
)

// PlanFor returns a process-wide shared plan for length n, creating and
// caching it on first use. Because plans are immutable after construction
// (Bluestein scratch is pooled per call), the returned plan is safe for
// concurrent use from any number of goroutines.
func PlanFor(n int) *Plan {
	if v, ok := planCache.Load(n); ok {
		planHits.Inc()
		return v.(*Plan)
	}
	planMisses.Inc()
	v, _ := planCache.LoadOrStore(n, NewPlan(n))
	return v.(*Plan)
}

// NewPlan creates a transform plan for length n. n must be positive.
func NewPlan(n int) *Plan {
	if n <= 0 {
		panic(fmt.Sprintf("fft: invalid transform length %d", n))
	}
	p := &Plan{n: n}
	if isPow2(n) {
		p.initRadix2()
	} else {
		p.initBluestein()
	}
	return p
}

// Len returns the transform length the plan was created for.
func (p *Plan) Len() int { return p.n }

func isPow2(n int) bool { return n&(n-1) == 0 }

func (p *Plan) initRadix2() {
	n := p.n
	p.twiddle = make([]complex128, n/2)
	for k := range p.twiddle {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.twiddle[k] = complex(c, s)
	}
	p.twiddleInv = make([]complex128, n/2)
	for k, w := range p.twiddle {
		p.twiddleInv[k] = complex(real(w), -imag(w))
	}
	p.rev = make([]int, n)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := range p.rev {
		p.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
}

func (p *Plan) initBluestein() {
	n := p.n
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	p.m = m
	p.bfft = NewPlan(m)
	p.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		// Compute k² mod 2n to keep the angle argument small; exp is
		// periodic in 2n because exp(-iπ(k²+2n·j)/n) = exp(-iπk²/n).
		k2 := (int64(k) * int64(k)) % int64(2*n)
		p.chirp[k] = cmplx.Exp(complex(0, -math.Pi*float64(k2)/float64(n)))
	}
	// Filter b[k] = conj(chirp)[|k|] arranged circularly, transformed once.
	b := make([]complex128, m)
	b[0] = cmplx.Conj(p.chirp[0])
	for k := 1; k < n; k++ {
		c := cmplx.Conj(p.chirp[k])
		b[k] = c
		b[m-k] = c
	}
	p.bfft.forwardPow2(b)
	p.bk = b
}

// getScratch rents a length-m work buffer. Buffers are pooled per plan so
// concurrent Bluestein transforms never share scratch state.
func (p *Plan) getScratch() *[]complex128 {
	if v := p.scratch.Get(); v != nil {
		return v.(*[]complex128)
	}
	b := make([]complex128, p.m)
	return &b
}

// Forward transforms x in place. len(x) must equal the plan length.
func (p *Plan) Forward(x []complex128) {
	p.checkLen(x)
	if p.twiddle != nil {
		p.forwardPow2(x)
		return
	}
	p.bluestein(x, false)
}

// Inverse computes the inverse transform of x in place, including the 1/N
// normalization.
func (p *Plan) Inverse(x []complex128) {
	p.checkLen(x)
	if p.twiddle != nil {
		p.inversePow2(x)
		scale(x, 1/float64(p.n))
		return
	}
	p.bluestein(x, true)
}

func (p *Plan) checkLen(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: input length %d does not match plan length %d", len(x), p.n))
	}
}

// forwardPow2 is the iterative radix-2 butterfly kernel.
func (p *Plan) forwardPow2(x []complex128) {
	n := len(x)
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				t := p.twiddle[tw] * x[k+half]
				x[k+half] = x[k] - t
				x[k] = x[k] + t
				tw += step
			}
		}
	}
}

// inversePow2 is the un-normalized inverse butterfly kernel. It is the
// conjugate-twiddle mirror of forwardPow2 and produces bits identical to
// conjugate → forwardPow2 → conjugate: complex multiplication by conj(w)
// and complex addition both commute with conjugation component-exactly
// (the real parts are the same IEEE expressions, the imaginary parts the
// same expressions negated, and negation is exact), so the two conjugate
// passes can be elided without perturbing a single ULP.
func (p *Plan) inversePow2(x []complex128) {
	n := len(x)
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				t := p.twiddleInv[tw] * x[k+half]
				x[k+half] = x[k] - t
				x[k] = x[k] + t
				tw += step
			}
		}
	}
}

func (p *Plan) bluestein(x []complex128, inverse bool) {
	n, m := p.n, p.m
	if inverse {
		conjugate(x)
	}
	ap := p.getScratch()
	defer p.scratch.Put(ap)
	a := *ap
	for k := 0; k < n; k++ {
		a[k] = x[k] * p.chirp[k]
	}
	for k := n; k < m; k++ {
		a[k] = 0
	}
	p.bfft.forwardPow2(a)
	for k := 0; k < m; k++ {
		a[k] *= p.bk[k]
	}
	// Inverse length-m transform via conjugation.
	conjugate(a)
	p.bfft.forwardPow2(a)
	inv := 1 / float64(m)
	for k := 0; k < n; k++ {
		x[k] = cmplx.Conj(a[k]) * p.chirp[k] * complex(inv, 0)
	}
	if inverse {
		conjugate(x)
		scale(x, 1/float64(n))
	}
}

func conjugate(x []complex128) {
	for i, v := range x {
		x[i] = cmplx.Conj(v)
	}
}

func scale(x []complex128, s float64) {
	for i := range x {
		x[i] *= complex(s, 0)
	}
}

// Forward is a convenience wrapper that plans and executes a forward
// transform, returning a new slice.
func Forward(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	PlanFor(len(x)).Forward(out)
	return out
}

// Inverse is a convenience wrapper that plans and executes an inverse
// transform, returning a new slice.
func Inverse(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	PlanFor(len(x)).Inverse(out)
	return out
}

// Shift rotates a spectrum so that the zero-frequency bin is centered,
// i.e. it swaps the two halves of x (fftshift). For odd lengths the
// negative frequencies end up before bin (n-1)/2.
func Shift(x []complex128) {
	n := len(x)
	h := (n + 1) / 2
	rotate(x, h)
}

// InverseShift undoes Shift for any length (ifftshift).
func InverseShift(x []complex128) {
	n := len(x)
	h := n / 2
	rotate(x, h)
}

// rotate left-rotates x by k positions using three reversals.
func rotate(x []complex128, k int) {
	n := len(x)
	if n == 0 {
		return
	}
	k %= n
	if k == 0 {
		return
	}
	reverse(x[:k])
	reverse(x[k:])
	reverse(x)
}

func reverse(x []complex128) {
	for i, j := 0, len(x)-1; i < j; i, j = i+1, j-1 {
		x[i], x[j] = x[j], x[i]
	}
}

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}
