package fft

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for i := 0; i < n; i++ {
			angle := -2 * math.Pi * float64(k) * float64(i) / float64(n)
			sum += x[i] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

func randComplex(r *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestForwardMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 60, 64, 100, 128, 255, 256, 257} {
		x := randComplex(r, n)
		want := naiveDFT(x)
		got := Forward(x)
		if e := maxErr(got, want); e > 1e-8*float64(n) {
			t.Errorf("n=%d: max error %g vs naive DFT", n, e)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 8, 11, 64, 129, 1000, 1024} {
		x := randComplex(r, n)
		orig := make([]complex128, n)
		copy(orig, x)
		p := NewPlan(n)
		p.Forward(x)
		p.Inverse(x)
		if e := maxErr(x, orig); e > 1e-9*float64(n) {
			t.Errorf("n=%d: roundtrip error %g", n, e)
		}
	}
}

func TestParseval(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{16, 50, 128, 777} {
		x := randComplex(r, n)
		var timeEnergy float64
		for _, v := range x {
			timeEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		X := Forward(x)
		var freqEnergy float64
		for _, v := range X {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= float64(n)
		if math.Abs(timeEnergy-freqEnergy) > 1e-8*timeEnergy {
			t.Errorf("n=%d: Parseval violated: time %g freq %g", n, timeEnergy, freqEnergy)
		}
	}
}

func TestImpulseIsFlat(t *testing.T) {
	n := 64
	x := make([]complex128, n)
	x[0] = 1
	X := Forward(x)
	for k, v := range X {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d: impulse transform not flat: %v", k, v)
		}
	}
}

func TestSingleToneBin(t *testing.T) {
	for _, n := range []int{64, 96} {
		k0 := 7
		x := make([]complex128, n)
		for i := range x {
			angle := 2 * math.Pi * float64(k0) * float64(i) / float64(n)
			x[i] = cmplx.Exp(complex(0, angle))
		}
		X := Forward(x)
		for k, v := range X {
			want := complex(0, 0)
			if k == k0 {
				want = complex(float64(n), 0)
			}
			if cmplx.Abs(v-want) > 1e-7*float64(n) {
				t.Errorf("n=%d bin %d: got %v want %v", n, k, v, want)
			}
		}
	}
}

// TestLinearity is a property test: FFT(a·x + b·y) == a·FFT(x) + b·FFT(y).
func TestLinearity(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 3 + rr.Intn(200)
		a := complex(r.NormFloat64(), r.NormFloat64())
		b := complex(r.NormFloat64(), r.NormFloat64())
		x := randComplex(rr, n)
		y := randComplex(rr, n)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a*x[i] + b*y[i]
		}
		Fs := Forward(sum)
		Fx := Forward(x)
		Fy := Forward(y)
		for i := range Fs {
			if cmplx.Abs(Fs[i]-(a*Fx[i]+b*Fy[i])) > 1e-7*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestTimeShiftPhase checks the shift theorem: delaying the input by d
// multiplies bin k by exp(-i2πkd/n).
func TestTimeShiftPhase(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n, d := 128, 13
	x := randComplex(r, n)
	shifted := make([]complex128, n)
	for i := range shifted {
		shifted[i] = x[((i-d)%n+n)%n]
	}
	X := Forward(x)
	S := Forward(shifted)
	for k := range X {
		phase := cmplx.Exp(complex(0, -2*math.Pi*float64(k)*float64(d)/float64(n)))
		if cmplx.Abs(S[k]-X[k]*phase) > 1e-8*float64(n) {
			t.Fatalf("bin %d: shift theorem violated", k)
		}
	}
}

func TestShiftRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 2, 5, 8, 9, 100, 101} {
		x := randComplex(r, n)
		orig := make([]complex128, n)
		copy(orig, x)
		Shift(x)
		InverseShift(x)
		if e := maxErr(x, orig); e != 0 {
			t.Errorf("n=%d: Shift/InverseShift not inverse, err %g", n, e)
		}
	}
}

func TestShiftCentersDC(t *testing.T) {
	for _, n := range []int{8, 9} {
		x := make([]complex128, n)
		x[0] = 1 // DC bin
		Shift(x)
		center := n / 2
		if n%2 == 1 {
			center = n / 2
		}
		if x[center] != 1 {
			t.Errorf("n=%d: DC not centered at %d: %v", n, center, x)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPlanLenAndPanics(t *testing.T) {
	p := NewPlan(16)
	if p.Len() != 16 {
		t.Errorf("Len = %d, want 16", p.Len())
	}
	mustPanic(t, func() { NewPlan(0) })
	mustPanic(t, func() { NewPlan(-3) })
	mustPanic(t, func() { p.Forward(make([]complex128, 8)) })
	mustPanic(t, func() { p.Inverse(make([]complex128, 32)) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// TestPow2PlanConcurrentUse exercises the documented guarantee that
// power-of-two plans may be shared across goroutines (run with -race).
func TestPow2PlanConcurrentUse(t *testing.T) {
	p := NewPlan(1024)
	r := rand.New(rand.NewSource(11))
	ref := randComplex(r, 1024)
	want := Forward(ref)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			x := make([]complex128, len(ref))
			for iter := 0; iter < 20; iter++ {
				copy(x, ref)
				p.Forward(x)
				if e := maxErr(x, want); e > 1e-9 {
					done <- fmt.Errorf("concurrent transform diverged: %g", e)
					return
				}
				p.Inverse(x)
				if e := maxErr(x, ref); e > 1e-9 {
					done <- fmt.Errorf("concurrent roundtrip diverged: %g", e)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

func BenchmarkFFTPow2_131072(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	x := randComplex(r, 131072)
	p := NewPlan(len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkFFTBluestein_100000(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	x := randComplex(r, 100000)
	p := NewPlan(len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}
