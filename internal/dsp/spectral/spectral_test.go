package spectral

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"fase/internal/dsp/window"
)

// tone synthesizes a complex-baseband tone at offset Hz with the given
// power in dBm (envelope magnitude sqrt(mW)).
func tone(n int, fs, offset, dBm float64) []complex128 {
	a := math.Sqrt(MwFromDBm(dBm))
	x := make([]complex128, n)
	for i := range x {
		t := float64(i) / fs
		x[i] = complex(a, 0) * cmplx.Exp(complex(0, 2*math.Pi*offset*t))
	}
	return x
}

func TestToneCalibration(t *testing.T) {
	// A -50 dBm tone must read -50 dBm at its bin for every window whose
	// scalloping loss is negligible when the tone is bin-centered.
	n := 4096
	fs := 1e6
	fres := fs / float64(n)
	offset := 100 * fres // exactly bin-centered
	for _, wt := range []window.Type{window.Rectangular, window.Hann, window.Blackman, window.FlatTop} {
		s := Periodogram(tone(n, fs, offset, -50), fs, 0, wt)
		i := s.Index(offset)
		if got := s.DBm(i); math.Abs(got-(-50)) > 0.01 {
			t.Errorf("%v: tone reads %.3f dBm, want -50", wt, got)
		}
	}
}

func TestToneFrequency(t *testing.T) {
	n := 8192
	fs := 2e6
	fc := 5e6
	offset := 123456.0
	s := Periodogram(tone(n, fs, offset, -30), fs, fc, window.Hann)
	i, _ := s.MaxBin()
	if got := s.Freq(i); math.Abs(got-(fc+offset)) > s.Fres {
		t.Errorf("peak at %g Hz, want %g", got, fc+offset)
	}
}

func TestNegativeOffsetTone(t *testing.T) {
	n := 4096
	fs := 1e6
	s := Periodogram(tone(n, fs, -200e3, -40), fs, 1e6, window.Hann)
	i, _ := s.MaxBin()
	if got := s.Freq(i); math.Abs(got-800e3) > s.Fres {
		t.Errorf("peak at %g Hz, want 800 kHz", got)
	}
}

func TestNoiseFloorCalibration(t *testing.T) {
	// White complex noise with per-sample variance sigma² = N0·fs should
	// read N0·NENBW·fres per bin on average.
	r := rand.New(rand.NewSource(42))
	n := 16384
	fs := 1e6
	n0 := MwFromDBm(-160) // mW/Hz
	sigma := math.Sqrt(n0 * fs)
	var avg Averager
	for trial := 0; trial < 8; trial++ {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64()) * complex(sigma/math.Sqrt2, 0)
		}
		avg.Add(Periodogram(x, fs, 0, window.Hann))
	}
	s := avg.Mean()
	var mean float64
	for _, p := range s.PmW {
		mean += p
	}
	mean /= float64(s.Bins())
	wantP := n0 * window.NENBW(window.New(window.Hann, n)) * s.Fres
	ratio := mean / wantP
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("noise floor ratio %g, want ~1 (got %.1f dBm, want %.1f)", ratio, DBmFromMw(mean), DBmFromMw(wantP))
	}
}

func TestSpectrumGeometry(t *testing.T) {
	s := New(1000, 10, 100)
	if s.Freq(0) != 1000 || s.Freq(99) != 1990 || s.FEnd() != 2000 {
		t.Error("Freq/FEnd wrong")
	}
	if s.Index(1000) != 0 || s.Index(1994) != 99 || s.Index(1996) != 99 {
		t.Error("Index wrong")
	}
	if s.Index(-5000) != 0 || s.Index(1e9) != 99 {
		t.Error("Index clamping wrong")
	}
	if !s.Contains(1500) || s.Contains(2000) || s.Contains(999) {
		t.Error("Contains wrong")
	}
}

func TestSliceAndClone(t *testing.T) {
	s := New(0, 10, 100)
	for i := range s.PmW {
		s.PmW[i] = float64(i)
	}
	sub := s.Slice(250, 500)
	if sub.F0 != 250 || sub.Bins() != 25 {
		t.Fatalf("Slice geometry: F0=%g bins=%d", sub.F0, sub.Bins())
	}
	if sub.PmW[0] != 25 || sub.PmW[24] != 49 {
		t.Error("Slice content wrong")
	}
	sub.PmW[0] = -1
	if s.PmW[25] == -1 {
		t.Error("Slice aliases parent")
	}
	c := s.Clone()
	c.PmW[3] = -7
	if s.PmW[3] == -7 {
		t.Error("Clone aliases parent")
	}
	empty := s.Slice(5000, 6000)
	if empty.Bins() != 0 {
		t.Error("out-of-range slice should be empty")
	}
}

func TestMaxAndMedian(t *testing.T) {
	s := New(0, 1, 5)
	copy(s.PmW, []float64{1, 9, 3, 7, 5})
	i, p := s.MaxBin()
	if i != 1 || p != 9 {
		t.Errorf("MaxBin = (%d, %g)", i, p)
	}
	if got := s.MaxIn(2, 4); got != 3 {
		t.Errorf("MaxIn = %d, want 3", got)
	}
	if m := s.MedianPower(); m != 5 {
		t.Errorf("median %g, want 5", m)
	}
	if tp := s.TotalPower(); tp != 25 {
		t.Errorf("total %g, want 25", tp)
	}
}

func TestMedianProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		s := New(0, 1, n)
		for i := range s.PmW {
			s.PmW[i] = r.Float64()
		}
		m := s.MedianPower()
		// At least half the values are <= m+eps and at least half >= m-eps.
		lo, hi := 0, 0
		for _, v := range s.PmW {
			if v <= m {
				lo++
			}
			if v >= m {
				hi++
			}
		}
		return lo >= (n+1)/2 && hi >= n/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDBmRoundTrip(t *testing.T) {
	for _, d := range []float64{-150, -42.5, 0, 13} {
		if got := DBmFromMw(MwFromDBm(d)); math.Abs(got-d) > 1e-9 {
			t.Errorf("dBm roundtrip %g -> %g", d, got)
		}
	}
	if DBmFromMw(0) != -300 {
		t.Error("zero power should floor at -300 dBm")
	}
}

func TestAverager(t *testing.T) {
	a := &Averager{}
	if a.Mean() != nil {
		t.Error("empty averager should return nil")
	}
	s1 := New(0, 1, 3)
	copy(s1.PmW, []float64{1, 2, 3})
	s2 := New(0, 1, 3)
	copy(s2.PmW, []float64{3, 2, 1})
	a.Add(s1)
	a.Add(s2)
	if a.Count() != 2 {
		t.Error("count wrong")
	}
	m := a.Mean()
	for i, want := range []float64{2, 2, 2} {
		if m.PmW[i] != want {
			t.Errorf("mean[%d] = %g", i, m.PmW[i])
		}
	}
	mustPanic(t, func() { a.Add(New(5, 1, 3)) })
	mustPanic(t, func() { a.Add(New(0, 2, 3)) })
	mustPanic(t, func() { a.Add(New(0, 1, 4)) })
}

func TestStitch(t *testing.T) {
	p1 := New(0, 10, 5)
	p2 := New(50, 10, 5)
	for i := range p1.PmW {
		p1.PmW[i] = float64(i)
		p2.PmW[i] = float64(i + 5)
	}
	s := Stitch([]*Spectrum{p1, p2})
	if s.Bins() != 10 || s.F0 != 0 {
		t.Fatalf("stitch geometry wrong")
	}
	for i := 0; i < 10; i++ {
		if s.PmW[i] != float64(i) {
			t.Errorf("stitched bin %d = %g", i, s.PmW[i])
		}
	}
	mustPanic(t, func() { Stitch(nil) })
	mustPanic(t, func() { Stitch([]*Spectrum{p1, New(60, 10, 5)}) }) // gap
	mustPanic(t, func() { Stitch([]*Spectrum{p1, New(50, 20, 5)}) }) // fres mismatch
}

// TestSliceStitchRoundTrip: cutting a spectrum into contiguous pieces and
// stitching them back reproduces the original exactly.
func TestSliceStitchRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(500)
		s := New(r.Float64()*1e6, 1+r.Float64()*1e3, n)
		for i := range s.PmW {
			s.PmW[i] = r.Float64()
		}
		// Random cut points.
		cuts := []float64{s.F0}
		at := s.F0
		for at < s.FEnd() {
			at += s.Fres * float64(1+r.Intn(n))
			if at > s.FEnd() {
				at = s.FEnd()
			}
			cuts = append(cuts, at)
		}
		var parts []*Spectrum
		for i := 1; i < len(cuts); i++ {
			parts = append(parts, s.Slice(cuts[i-1], cuts[i]))
		}
		back := Stitch(parts)
		if back.Bins() != s.Bins() || back.F0 != s.F0 {
			return false
		}
		for i := range s.PmW {
			if back.PmW[i] != s.PmW[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGoertzelMatchesDFTBin(t *testing.T) {
	// Goertzel at a bin frequency matches the amplitude-calibrated DFT.
	r := rand.New(rand.NewSource(12))
	n := 512
	fs := 1e4
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64() + 3*math.Cos(2*math.Pi*400*float64(i)/fs)
	}
	if p := Goertzel(x, fs, 400); math.Abs(p-9) > 1.5 {
		t.Errorf("Goertzel at tone reads %g, want ~9", p)
	}
}

func TestPeriodogramPanics(t *testing.T) {
	mustPanic(t, func() { Periodogram(nil, 1e6, 0, window.Hann) })
	mustPanic(t, func() { New(0, -1, 10) })
	mustPanic(t, func() { New(0, 1, 10).Slice(100, 50) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
