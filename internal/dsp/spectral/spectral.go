// Package spectral provides the Spectrum container used throughout the
// library, amplitude-calibrated periodograms of complex-baseband captures,
// power averaging, and band stitching.
//
// Calibration convention: signals are complex-baseband RMS envelopes in
// units of √mW, so a steady tone with envelope magnitude |A| carries
// |A|² mW of power and reads 10·log10(|A|²) dBm at its spectral peak.
// Bins store linear power in mW; use DBm helpers for display.
package spectral

import (
	"fmt"
	"math"

	"fase/internal/dsp/bufpool"
	"fase/internal/dsp/fft"
	"fase/internal/dsp/window"
)

// Spectrum is a uniformly sampled power spectrum. Bin i covers frequency
// F0 + i·Fres. Power is linear mW per (amplitude-calibrated) bin.
type Spectrum struct {
	F0   float64   // frequency of bin 0, Hz
	Fres float64   // bin spacing, Hz
	PmW  []float64 // linear power per bin, mW
}

// New allocates a zeroed spectrum with n bins.
func New(f0, fres float64, n int) *Spectrum {
	if fres <= 0 || n < 0 {
		panic(fmt.Sprintf("spectral: invalid spectrum (fres=%g, n=%d)", fres, n))
	}
	return &Spectrum{F0: f0, Fres: fres, PmW: make([]float64, n)}
}

// Bins returns the number of frequency bins.
func (s *Spectrum) Bins() int { return len(s.PmW) }

// Freq returns the frequency of bin i.
func (s *Spectrum) Freq(i int) float64 { return s.F0 + float64(i)*s.Fres }

// FEnd returns the frequency one bin past the last.
func (s *Spectrum) FEnd() float64 { return s.Freq(len(s.PmW)) }

// Index returns the nearest bin index for frequency f, clamped to range.
func (s *Spectrum) Index(f float64) int {
	i := int(math.Round((f - s.F0) / s.Fres))
	if i < 0 {
		return 0
	}
	if i >= len(s.PmW) {
		return len(s.PmW) - 1
	}
	return i
}

// Contains reports whether f falls within the spectrum's frequency span.
func (s *Spectrum) Contains(f float64) bool {
	return f >= s.F0 && f < s.FEnd()
}

// DBm returns bin i's power in dBm, floored at -300 dBm for empty bins.
func (s *Spectrum) DBm(i int) float64 { return DBmFromMw(s.PmW[i]) }

// PowerAt returns linear power at the bin nearest to f.
func (s *Spectrum) PowerAt(f float64) float64 { return s.PmW[s.Index(f)] }

// Clone returns a deep copy.
func (s *Spectrum) Clone() *Spectrum {
	c := &Spectrum{F0: s.F0, Fres: s.Fres, PmW: make([]float64, len(s.PmW))}
	copy(c.PmW, s.PmW)
	return c
}

// Slice returns a copy of the spectrum restricted to [f1, f2).
func (s *Spectrum) Slice(f1, f2 float64) *Spectrum {
	if f2 < f1 {
		panic(fmt.Sprintf("spectral: invalid slice [%g, %g)", f1, f2))
	}
	// The small epsilon keeps grid-aligned boundaries stable against
	// floating-point error (a boundary exactly on a bin stays inclusive).
	i1 := int(math.Ceil((f1-s.F0)/s.Fres - 1e-6))
	i2 := int(math.Ceil((f2-s.F0)/s.Fres - 1e-6))
	if i1 < 0 {
		i1 = 0
	}
	if i1 > len(s.PmW) {
		i1 = len(s.PmW)
	}
	if i2 > len(s.PmW) {
		i2 = len(s.PmW)
	}
	if i2 < i1 {
		i2 = i1
	}
	out := &Spectrum{F0: s.Freq(i1), Fres: s.Fres, PmW: make([]float64, i2-i1)}
	copy(out.PmW, s.PmW[i1:i2])
	return out
}

// MaxBin returns the index and power of the strongest bin; (-1, 0) if empty.
func (s *Spectrum) MaxBin() (int, float64) {
	best, bp := -1, 0.0
	for i, p := range s.PmW {
		if best == -1 || p > bp {
			best, bp = i, p
		}
	}
	return best, bp
}

// MaxIn returns the strongest bin index within [f1, f2]; -1 if the range is
// empty.
func (s *Spectrum) MaxIn(f1, f2 float64) int {
	i1, i2 := s.Index(f1), s.Index(f2)
	best, bp := -1, 0.0
	for i := i1; i <= i2 && i < len(s.PmW); i++ {
		if best == -1 || s.PmW[i] > bp {
			best, bp = i, s.PmW[i]
		}
	}
	return best
}

// TotalPower returns the sum of all bin powers in mW. Because bins are
// amplitude-calibrated this is meaningful for discrete tones, not noise
// densities.
func (s *Spectrum) TotalPower() float64 {
	var t float64
	for _, p := range s.PmW {
		t += p
	}
	return t
}

// MedianPower returns the median bin power, a robust noise-floor estimate.
func (s *Spectrum) MedianPower() float64 {
	if len(s.PmW) == 0 {
		return 0
	}
	tmp := make([]float64, len(s.PmW))
	copy(tmp, s.PmW)
	return quickSelectMedian(tmp)
}

// quickSelectMedian computes the median, reordering tmp.
func quickSelectMedian(a []float64) float64 {
	k := len(a) / 2
	lo, hi := 0, len(a)-1
	for lo < hi {
		p := partition(a, lo, hi)
		switch {
		case p == k:
			return a[k]
		case p < k:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return a[k]
}

func partition(a []float64, lo, hi int) int {
	pivot := a[(lo+hi)/2]
	a[(lo+hi)/2], a[hi] = a[hi], a[(lo+hi)/2]
	i := lo
	for j := lo; j < hi; j++ {
		if a[j] < pivot {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[hi] = a[hi], a[i]
	return i
}

// DBmFromMw converts linear mW to dBm with a -300 dBm floor.
func DBmFromMw(p float64) float64 {
	if p <= 1e-30 {
		return -300
	}
	return 10 * math.Log10(p)
}

// MwFromDBm converts dBm to linear mW.
func MwFromDBm(d float64) float64 { return math.Pow(10, d/10) }

// Periodogram computes an amplitude-calibrated power spectrum of a
// complex-baseband capture x sampled at fs and centered at fc. The result
// has len(x) bins spanning [fc-fs/2, fc+fs/2) in ascending frequency.
// x is not modified. Window tables and FFT plans come from process-wide
// caches, and the transform scratch is pooled, so repeated calls of one
// geometry allocate only the returned Spectrum.
func Periodogram(x []complex128, fs, fc float64, wt window.Type) *Spectrum {
	n := len(x)
	if n == 0 {
		panic("spectral: empty capture")
	}
	buf := bufpool.Complex(n)
	copy(buf, x)
	s := &Spectrum{PmW: make([]float64, n)}
	PeriodogramInPlace(s, buf, fs, fc, wt)
	bufpool.PutComplex(buf)
	return s
}

// PeriodogramInPlace is the allocation-free core of Periodogram: it uses x
// as the transform buffer (destroying its contents) and writes the result
// into out, whose PmW must already have len(x) elements. out's F0 and Fres
// are overwritten. The sweep worker pool pairs this with pooled capture
// and bin buffers to keep the steady-state render path allocation-free.
func PeriodogramInPlace(out *Spectrum, x []complex128, fs, fc float64, wt window.Type) {
	n := len(x)
	if n == 0 {
		panic("spectral: empty capture")
	}
	if len(out.PmW) != n {
		panic(fmt.Sprintf("spectral: output has %d bins for a %d-sample capture", len(out.PmW), n))
	}
	pc := window.For(wt, n)
	window.Apply(x, pc.W)
	fft.PlanFor(n).Forward(x)
	fft.Shift(x)
	norm := 1 / (float64(n) * pc.CoherentGain)
	fres := fs / float64(n)
	out.F0 = fc - fres*float64(n/2)
	out.Fres = fres
	for i, v := range x {
		a := real(v)*real(v) + imag(v)*imag(v)
		out.PmW[i] = a * norm * norm
	}
}

// RealPeriodogram computes an amplitude-calibrated power spectrum of a
// *real* sequence sampled at fs, using the real-input FFT — about half
// the transform cost of promoting to complex and calling Periodogram.
// The result has len(x) bins spanning [fc-fs/2, fc+fs/2) like
// Periodogram's (the upper half mirrors the lower, as it must for real
// input). x is not modified.
func RealPeriodogram(x []float64, fs, fc float64, wt window.Type) *Spectrum {
	n := len(x)
	if n == 0 {
		panic("spectral: empty capture")
	}
	buf := bufpool.Float(n)
	copy(buf, x)
	s := &Spectrum{PmW: make([]float64, n)}
	RealPeriodogramInPlace(s, buf, fs, fc, wt)
	bufpool.PutFloat(buf)
	return s
}

// RealPeriodogramInPlace is the allocation-free core of RealPeriodogram:
// x is windowed in place (destroying its contents) and the result written
// into out, whose PmW must already have len(x) elements. Transform
// scratch comes from the shared pool.
func RealPeriodogramInPlace(out *Spectrum, x []float64, fs, fc float64, wt window.Type) {
	n := len(x)
	if n == 0 {
		panic("spectral: empty capture")
	}
	if len(out.PmW) != n {
		panic(fmt.Sprintf("spectral: output has %d bins for a %d-sample capture", len(out.PmW), n))
	}
	pc := window.For(wt, n)
	for i, w := range pc.W {
		x[i] *= w
	}
	spec := bufpool.Complex(n)
	fft.PlanForReal(n).Forward(x, spec)
	fft.Shift(spec)
	norm := 1 / (float64(n) * pc.CoherentGain)
	fres := fs / float64(n)
	out.F0 = fc - fres*float64(n/2)
	out.Fres = fres
	for i, v := range spec {
		a := real(v)*real(v) + imag(v)*imag(v)
		out.PmW[i] = a * norm * norm
	}
	bufpool.PutComplex(spec)
}

// Averager accumulates power spectra with identical geometry and yields
// their mean, the standard spectrum-analyzer trace-averaging operation.
type Averager struct {
	sum   *Spectrum
	count int
}

// Add accumulates one spectrum. All spectra must share F0, Fres and length.
func (a *Averager) Add(s *Spectrum) {
	if a.sum == nil {
		a.sum = s.Clone()
		a.count = 1
		return
	}
	if s.F0 != a.sum.F0 || s.Fres != a.sum.Fres || len(s.PmW) != len(a.sum.PmW) {
		panic("spectral: Averager geometry mismatch")
	}
	for i, p := range s.PmW {
		a.sum.PmW[i] += p
	}
	a.count++
}

// Count returns the number of accumulated spectra.
func (a *Averager) Count() int { return a.count }

// Mean returns the averaged spectrum; nil if nothing was added.
func (a *Averager) Mean() *Spectrum {
	if a.sum == nil {
		return nil
	}
	out := a.sum.Clone()
	inv := 1 / float64(a.count)
	for i := range out.PmW {
		out.PmW[i] *= inv
	}
	return out
}

// Goertzel evaluates the power of a single frequency in a real sequence
// sampled at fs, amplitude-calibrated so a real tone of amplitude A reads
// A². Cheaper than an FFT when only a handful of frequencies matter.
func Goertzel(x []float64, fs, f float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	w := 2 * math.Pi * f / fs
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	return power / float64(n) / float64(n) * 4
}

// Stitch concatenates spectra covering adjacent, non-overlapping bands into
// one spectrum. Inputs must share Fres, be sorted by F0, and be contiguous
// to within half a bin.
func Stitch(parts []*Spectrum) *Spectrum {
	if len(parts) == 0 {
		panic("spectral: Stitch of nothing")
	}
	fres := parts[0].Fres
	total := 0
	for i, p := range parts {
		if math.Abs(p.Fres-fres) > 1e-9*fres {
			panic("spectral: Stitch Fres mismatch")
		}
		if i > 0 {
			expect := parts[i-1].FEnd()
			if math.Abs(p.F0-expect) > fres/2 {
				panic(fmt.Sprintf("spectral: Stitch gap: part %d starts at %g, expected %g", i, p.F0, expect))
			}
		}
		total += len(p.PmW)
	}
	out := &Spectrum{F0: parts[0].F0, Fres: fres, PmW: make([]float64, 0, total)}
	for _, p := range parts {
		out.PmW = append(out.PmW, p.PmW...)
	}
	return out
}
