package spectral

import (
	"math"
	"math/rand"
	"testing"

	"fase/internal/dsp/window"
)

// TestRealPeriodogramMatchesComplex cross-checks the real-input
// periodogram against the complex path on promoted input: same geometry,
// same bin powers to numerical tolerance, for pow2 and non-pow2 sizes.
func TestRealPeriodogramMatchesComplex(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{8, 64, 100, 250, 256, 1024} {
		x := make([]float64, n)
		xc := make([]complex128, n)
		for i := range x {
			x[i] = r.NormFloat64()
			xc[i] = complex(x[i], 0)
		}
		got := RealPeriodogram(x, 1e4, 5e3, window.Hann)
		want := Periodogram(xc, 1e4, 5e3, window.Hann)
		if got.F0 != want.F0 || got.Fres != want.Fres || got.Bins() != want.Bins() {
			t.Fatalf("n=%d: geometry (%g, %g, %d) != (%g, %g, %d)",
				n, got.F0, got.Fres, got.Bins(), want.F0, want.Fres, want.Bins())
		}
		var peak float64
		for _, p := range want.PmW {
			peak = math.Max(peak, p)
		}
		for k := range got.PmW {
			if d := math.Abs(got.PmW[k] - want.PmW[k]); d > 1e-12*peak {
				t.Errorf("n=%d bin %d: real %g vs complex %g", n, k, got.PmW[k], want.PmW[k])
			}
		}
	}
}

// TestRealPeriodogramTone pins calibration: a real tone of amplitude A
// splits its A² power between the ±f bins, so each reads (A/2)².
func TestRealPeriodogramTone(t *testing.T) {
	const n, fs = 4096, 1e4
	const f, amp = 1250.0, 0.5 // exactly on a bin
	x := make([]float64, n)
	for i := range x {
		x[i] = amp * math.Cos(2*math.Pi*f*float64(i)/fs)
	}
	s := RealPeriodogram(x, fs, 0, window.BlackmanHarris)
	for _, want := range []float64{f, -f} {
		got := s.PmW[s.Index(want)]
		if d := math.Abs(got - amp*amp/4); d > 1e-3*amp*amp/4 {
			t.Errorf("tone at %g Hz reads %g mW, want %g", want, got, amp*amp/4)
		}
	}
}
