package filter

import (
	"math"
	"math/rand"
	"testing"
)

// TestOnePoleSettleIdempotent pins the property the segmented regulator
// render rests on: whenever Step(x) returns a value bitwise equal to the
// smoother's previous output, the update added nothing — the state is at
// a float fixed point for x, and every further Step(x) returns the same
// bits. The renderer detects that condition once per constant-load run
// and skips the remaining Step calls; this test drives random loop
// bandwidths through random piecewise-constant load sequences and checks
// that the skip criterion is exact wherever it fires, including when the
// previous output came from a different load level (the renderer carries
// its settle comparator across run boundaries).
func TestOnePoleSettleIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	fired := 0
	for trial := 0; trial < 100; trial++ {
		fs := 100e3 + r.Float64()*400e3
		p := NewOnePole(1e3+r.Float64()*(fs/2-2e3), fs)
		prev := math.NaN()
		for seg := 0; seg < 20; seg++ {
			x := r.Float64()
			if r.Intn(3) == 0 {
				x = math.Float64frombits(r.Uint64() & 0x3FEFFFFFFFFFFFFF) // denormal-ish corners
			}
			steps := 1 + r.Intn(3000)
			for i := 0; i < steps; i++ {
				y := p.Step(x)
				if y == prev || math.Float64bits(y) == math.Float64bits(prev) {
					// The skip criterion fired: Step(x) must now be
					// idempotent. Probe a copy so the trial continues from
					// unskipped state regardless.
					fired++
					probe := *p
					for k := 0; k < 64; k++ {
						if got := probe.Step(x); math.Float64bits(got) != math.Float64bits(y) {
							t.Fatalf("trial %d seg %d: settled output %x drifted to %x after %d skipped steps",
								trial, seg, math.Float64bits(y), math.Float64bits(got), k+1)
						}
					}
				}
				prev = y
			}
		}
	}
	if fired == 0 {
		t.Fatal("settle criterion never fired; the idempotence property was not exercised")
	}
}
