package filter

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gainAt measures the steady-state amplitude gain of a filter function at
// normalized frequency f (cycles/sample) by driving it with a sine.
func gainAt(step func(float64) float64, f float64) float64 {
	n := 4000
	var maxOut float64
	for i := 0; i < n; i++ {
		y := step(math.Sin(2 * math.Pi * f * float64(i)))
		if i > n/2 && math.Abs(y) > maxOut {
			maxOut = math.Abs(y)
		}
	}
	return maxOut
}

func TestLowpassFIRDCGain(t *testing.T) {
	h := LowpassFIR(0.1, 63)
	var sum float64
	for _, v := range h {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("DC gain %g, want 1", sum)
	}
}

func TestLowpassFIRResponse(t *testing.T) {
	h := LowpassFIR(0.1, 101)
	x := make([]float64, 2000)
	// Passband tone at 0.02, stopband tone at 0.3.
	for i := range x {
		x[i] = math.Sin(2*math.Pi*0.02*float64(i)) + math.Sin(2*math.Pi*0.3*float64(i))
	}
	y := Convolve(x, h)
	// Measure residual stopband energy vs passband energy mid-signal.
	var pass, total float64
	for i := 500; i < 1500; i++ {
		ref := math.Sin(2 * math.Pi * 0.02 * float64(i))
		pass += ref * ref
		d := y[i] - ref
		total += d * d
	}
	if total/pass > 0.01 {
		t.Errorf("stopband leakage ratio %g, want < 0.01", total/pass)
	}
}

func TestLowpassFIRSymmetry(t *testing.T) {
	// Linear phase requires a symmetric impulse response.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		taps := 3 + 2*r.Intn(60)
		cutoff := 0.01 + 0.47*r.Float64()
		h := LowpassFIR(cutoff, taps)
		for i := range h {
			if math.Abs(h[i]-h[len(h)-1-i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConvolveIdentity(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := Convolve(x, []float64{1})
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("identity convolution failed at %d", i)
		}
	}
	xc := []complex128{1i, 2, 3i}
	yc := ConvolveComplex(xc, []float64{1})
	for i := range xc {
		if yc[i] != xc[i] {
			t.Fatalf("complex identity convolution failed at %d", i)
		}
	}
}

func TestConvolveShift(t *testing.T) {
	// Kernel [0,0,1] (center-aligned) delays by one sample.
	x := []float64{1, 2, 3, 4}
	y := Convolve(x, []float64{0, 0, 1})
	want := []float64{0, 1, 2, 3}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("shift convolution: got %v want %v", y, want)
		}
	}
}

func TestOnePoleTracksDC(t *testing.T) {
	p := NewOnePole(1000, 1e6)
	var y float64
	for i := 0; i < 100000; i++ {
		y = p.Step(3.5)
	}
	if math.Abs(y-3.5) > 1e-9 {
		t.Errorf("one-pole DC tracking: %g", y)
	}
}

func TestOnePolePrimesOnFirstSample(t *testing.T) {
	p := NewOnePole(10, 1000)
	if got := p.Step(7); got != 7 {
		t.Errorf("first sample should prime state: %g", got)
	}
	p.Reset()
	if got := p.Step(-2); got != -2 {
		t.Errorf("reset should re-prime: %g", got)
	}
}

func TestOnePoleBandwidth(t *testing.T) {
	// At its -3 dB bandwidth the gain must be close to 1/sqrt(2).
	bw, fs := 0.02, 1.0
	p := NewOnePole(bw, fs)
	g := gainAt(p.Step, bw)
	if math.Abs(g-1/math.Sqrt2) > 0.05 {
		t.Errorf("gain at bandwidth %g, want ~0.707", g)
	}
}

func TestBiquadLowpass(t *testing.T) {
	fs := 48000.0
	b := NewLowpassBiquad(1000, fs)
	gPass := gainAt(b.Step, 100/fs)
	b.Reset()
	gCut := gainAt(b.Step, 1000/fs)
	b.Reset()
	gStop := gainAt(b.Step, 10000/fs)
	if math.Abs(gPass-1) > 0.02 {
		t.Errorf("passband gain %g", gPass)
	}
	if math.Abs(gCut-1/math.Sqrt2) > 0.05 {
		t.Errorf("cutoff gain %g, want ~0.707", gCut)
	}
	if gStop > 0.05 {
		t.Errorf("stopband gain %g", gStop)
	}
}

func TestBiquadFilterResets(t *testing.T) {
	b := NewLowpassBiquad(100, 1000)
	x := []float64{1, 0, 0, 0}
	y1 := b.Filter(x)
	y2 := b.Filter(x)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("Filter is not deterministic after reset")
		}
	}
}

func TestPanics(t *testing.T) {
	mustPanic(t, func() { LowpassFIR(0, 11) })
	mustPanic(t, func() { LowpassFIR(0.5, 11) })
	mustPanic(t, func() { LowpassFIR(0.1, 10) })
	mustPanic(t, func() { LowpassFIR(0.1, 1) })
	mustPanic(t, func() { NewOnePole(0, 100) })
	mustPanic(t, func() { NewOnePole(60, 100) })
	mustPanic(t, func() { NewLowpassBiquad(0, 100) })
	mustPanic(t, func() { NewLowpassBiquad(50, 100) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
