// Package filter provides FIR design, one-pole smoothing, and biquad IIR
// sections used by the regulator control-loop model and the demodulators.
package filter

import (
	"fmt"
	"math"
)

// LowpassFIR designs a windowed-sinc (Hamming) low-pass FIR filter with the
// given normalized cutoff (cutoff = fc/fs, 0 < cutoff < 0.5) and odd length
// taps. The filter has unit DC gain.
func LowpassFIR(cutoff float64, taps int) []float64 {
	if cutoff <= 0 || cutoff >= 0.5 {
		panic(fmt.Sprintf("filter: cutoff %g out of (0, 0.5)", cutoff))
	}
	if taps < 3 || taps%2 == 0 {
		panic(fmt.Sprintf("filter: taps must be odd and >= 3, got %d", taps))
	}
	h := make([]float64, taps)
	mid := taps / 2
	var sum float64
	for i := range h {
		n := float64(i - mid)
		var v float64
		if n == 0 {
			v = 2 * cutoff
		} else {
			v = math.Sin(2*math.Pi*cutoff*n) / (math.Pi * n)
		}
		// Hamming window.
		v *= 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(taps-1))
		h[i] = v
		sum += v
	}
	for i := range h {
		h[i] /= sum
	}
	return h
}

// Convolve returns the "same"-length convolution of x with kernel h,
// aligning the kernel center with each sample (zero padding at the edges).
func Convolve(x, h []float64) []float64 {
	out := make([]float64, len(x))
	mid := len(h) / 2
	for i := range x {
		var acc float64
		for k, hv := range h {
			j := i + mid - k
			if j >= 0 && j < len(x) {
				acc += hv * x[j]
			}
		}
		out[i] = acc
	}
	return out
}

// ConvolveComplex is Convolve for complex signals with a real kernel.
func ConvolveComplex(x []complex128, h []float64) []complex128 {
	out := make([]complex128, len(x))
	mid := len(h) / 2
	for i := range x {
		var acc complex128
		for k, hv := range h {
			j := i + mid - k
			if j >= 0 && j < len(x) {
				acc += complex(hv, 0) * x[j]
			}
		}
		out[i] = acc
	}
	return out
}

// OnePole is a single-pole low-pass smoother y += a·(x−y), the discrete
// equivalent of an RC control loop. The zero value is unusable; use
// NewOnePole.
type OnePole struct {
	a float64
	y float64
	// primed reports whether the state has been seeded by the first
	// sample, avoiding a startup transient from zero.
	primed bool
}

// NewOnePole creates a smoother with the given -3 dB bandwidth (Hz) at
// sample rate fs. bandwidth must be positive and below fs/2.
func NewOnePole(bandwidth, fs float64) *OnePole {
	if bandwidth <= 0 || bandwidth >= fs/2 {
		panic(fmt.Sprintf("filter: one-pole bandwidth %g out of (0, fs/2=%g)", bandwidth, fs/2))
	}
	a := 1 - math.Exp(-2*math.Pi*bandwidth/fs)
	return &OnePole{a: a}
}

// Step advances the smoother by one input sample and returns the output.
func (p *OnePole) Step(x float64) float64 {
	if !p.primed {
		p.y = x
		p.primed = true
		return x
	}
	p.y += p.a * (x - p.y)
	return p.y
}

// Reset clears the smoother state.
func (p *OnePole) Reset() { p.y, p.primed = 0, false }

// Biquad is a direct-form-II-transposed second-order IIR section.
type Biquad struct {
	B0, B1, B2 float64
	A1, A2     float64 // denominator with a0 normalized to 1
	z1, z2     float64
}

// NewLowpassBiquad designs a Butterworth-Q low-pass biquad at fc Hz for
// sample rate fs via the bilinear transform (RBJ cookbook).
func NewLowpassBiquad(fc, fs float64) *Biquad {
	if fc <= 0 || fc >= fs/2 {
		panic(fmt.Sprintf("filter: biquad fc %g out of (0, fs/2=%g)", fc, fs/2))
	}
	const q = math.Sqrt2 / 2
	w0 := 2 * math.Pi * fc / fs
	alpha := math.Sin(w0) / (2 * q)
	cw := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		B0: (1 - cw) / 2 / a0,
		B1: (1 - cw) / a0,
		B2: (1 - cw) / 2 / a0,
		A1: -2 * cw / a0,
		A2: (1 - alpha) / a0,
	}
}

// Step advances the biquad by one sample.
func (b *Biquad) Step(x float64) float64 {
	y := b.B0*x + b.z1
	b.z1 = b.B1*x - b.A1*y + b.z2
	b.z2 = b.B2*x - b.A2*y
	return y
}

// Reset clears the delay line.
func (b *Biquad) Reset() { b.z1, b.z2 = 0, 0 }

// Filter applies the biquad to a whole slice, returning a new slice. The
// internal state is reset first.
func (b *Biquad) Filter(x []float64) []float64 {
	b.Reset()
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = b.Step(v)
	}
	return out
}
