// Package peaks provides peak detection for spectra and score traces.
//
// Two detectors are provided: a prominence-based local-maximum finder used
// on FASE heuristic outputs, and the Palshikar S1 spike score referenced by
// the paper (§3, [29]) for comparison and for locating spectral spikes.
package peaks

import (
	"fmt"
	"math"
	"sort"
)

// Peak describes one detected local maximum.
type Peak struct {
	Index      int     // bin index of the maximum
	Value      float64 // value at the maximum
	Prominence float64 // height above the higher of the two flanking saddles
	LeftBase   int     // index of the left saddle bounding the peak
	RightBase  int     // index of the right saddle bounding the peak
}

// Options tunes Find.
type Options struct {
	// MinValue discards peaks whose value is below this threshold.
	MinValue float64
	// MinProminence discards peaks that do not rise at least this much
	// above their surrounding saddles.
	MinProminence float64
	// MinDistance enforces at least this many bins between reported
	// peaks; when two conflict, the taller wins. Zero disables.
	MinDistance int
	// MaxPeaks caps the number of returned peaks (tallest first) when
	// positive.
	MaxPeaks int
}

// Find locates local maxima in x and returns them sorted by descending
// value. A plateau reports its leftmost sample.
func Find(x []float64, opt Options) []Peak {
	var out []Peak
	n := len(x)
	for i := 1; i < n-1; i++ {
		if x[i] < x[i-1] {
			continue
		}
		// Skip forward over a plateau.
		j := i
		for j < n-1 && x[j+1] == x[i] {
			j++
		}
		if j == n-1 || x[j+1] >= x[i] {
			i = j
			continue
		}
		p := Peak{Index: i, Value: x[i]}
		p.Prominence, p.LeftBase, p.RightBase = prominence(x, i)
		if p.Value >= opt.MinValue && p.Prominence >= opt.MinProminence {
			out = append(out, p)
		}
		i = j
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Value > out[b].Value })
	if opt.MinDistance > 0 {
		out = enforceDistance(out, opt.MinDistance)
	}
	if opt.MaxPeaks > 0 && len(out) > opt.MaxPeaks {
		out = out[:opt.MaxPeaks]
	}
	return out
}

// prominence computes the classical topographic prominence of the peak at
// index i: descend left and right until a sample higher than x[i] is found
// (or the edge); the prominence is x[i] minus the higher of the two minima
// along those walks.
func prominence(x []float64, i int) (prom float64, leftBase, rightBase int) {
	leftMin, leftBase := x[i], i
	for j := i - 1; j >= 0; j-- {
		if x[j] > x[i] {
			break
		}
		if x[j] < leftMin {
			leftMin, leftBase = x[j], j
		}
	}
	rightMin, rightBase := x[i], i
	for j := i + 1; j < len(x); j++ {
		if x[j] > x[i] {
			break
		}
		if x[j] < rightMin {
			rightMin, rightBase = x[j], j
		}
	}
	base := math.Max(leftMin, rightMin)
	return x[i] - base, leftBase, rightBase
}

func enforceDistance(peaks []Peak, minDist int) []Peak {
	kept := peaks[:0]
	for _, p := range peaks {
		ok := true
		for _, q := range kept {
			if abs(p.Index-q.Index) < minDist {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, p)
		}
	}
	return kept
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// S1 computes Palshikar's S1 spike score for every sample: the average of
// the maximum rise over the k left neighbours and the maximum rise over the
// k right neighbours. Large positive values mark spikes.
func S1(x []float64, k int) []float64 {
	if k <= 0 {
		panic(fmt.Sprintf("peaks: S1 window must be positive, got %d", k))
	}
	n := len(x)
	out := make([]float64, n)
	for i := range x {
		left := math.Inf(-1)
		for j := i - k; j < i; j++ {
			if j >= 0 {
				if d := x[i] - x[j]; d > left {
					left = d
				}
			}
		}
		right := math.Inf(-1)
		for j := i + 1; j <= i+k; j++ {
			if j < n {
				if d := x[i] - x[j]; d > right {
					right = d
				}
			}
		}
		switch {
		case math.IsInf(left, -1) && math.IsInf(right, -1):
			out[i] = 0
		case math.IsInf(left, -1):
			out[i] = right
		case math.IsInf(right, -1):
			out[i] = left
		default:
			out[i] = (left + right) / 2
		}
	}
	return out
}

// SpikesS1 returns indices whose S1 score exceeds mean + h·stddev of the
// positive scores, Palshikar's recommended thresholding.
func SpikesS1(x []float64, k int, h float64) []int {
	s := S1(x, k)
	var pos []float64
	for _, v := range s {
		if v > 0 {
			pos = append(pos, v)
		}
	}
	if len(pos) == 0 {
		return nil
	}
	mean, std := meanStd(pos)
	var out []int
	for i, v := range s {
		if v > 0 && v-mean >= h*std {
			out = append(out, i)
		}
	}
	return out
}

func meanStd(x []float64) (mean, std float64) {
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for _, v := range x {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(x)))
	return mean, std
}
