package peaks

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFindSimple(t *testing.T) {
	x := []float64{0, 1, 0, 3, 0, 2, 0}
	got := Find(x, Options{})
	if len(got) != 3 {
		t.Fatalf("found %d peaks, want 3: %+v", len(got), got)
	}
	if got[0].Index != 3 || got[0].Value != 3 {
		t.Errorf("tallest peak wrong: %+v", got[0])
	}
	if got[1].Index != 5 || got[2].Index != 1 {
		t.Errorf("peak order wrong: %+v", got)
	}
}

func TestFindPlateau(t *testing.T) {
	x := []float64{0, 2, 2, 2, 0}
	got := Find(x, Options{})
	if len(got) != 1 || got[0].Index != 1 {
		t.Fatalf("plateau should report leftmost sample: %+v", got)
	}
}

func TestFindEdgesIgnored(t *testing.T) {
	// Monotone data has no interior local maximum.
	x := []float64{5, 4, 3, 2, 1}
	if got := Find(x, Options{}); len(got) != 0 {
		t.Errorf("monotone data should have no peaks: %+v", got)
	}
	if got := Find([]float64{1, 2}, Options{}); len(got) != 0 {
		t.Errorf("too-short data should have no peaks: %+v", got)
	}
}

func TestProminence(t *testing.T) {
	// Small peak (value 2) sitting next to a tall one (value 5): its
	// prominence is limited by the saddle at 1.
	x := []float64{0, 5, 1, 2, 0}
	got := Find(x, Options{})
	var small *Peak
	for i := range got {
		if got[i].Index == 3 {
			small = &got[i]
		}
	}
	if small == nil {
		t.Fatal("small peak not found")
	}
	if math.Abs(small.Prominence-1) > 1e-12 {
		t.Errorf("prominence = %g, want 1", small.Prominence)
	}
	if small.LeftBase != 2 {
		t.Errorf("left base = %d, want 2", small.LeftBase)
	}
}

func TestMinValueAndProminenceFilters(t *testing.T) {
	x := []float64{0, 1, 0.9, 1.05, 0, 10, 0}
	got := Find(x, Options{MinValue: 5})
	if len(got) != 1 || got[0].Index != 5 {
		t.Errorf("MinValue filter failed: %+v", got)
	}
	got = Find(x, Options{MinProminence: 2})
	if len(got) != 1 || got[0].Index != 5 {
		t.Errorf("MinProminence filter failed: %+v", got)
	}
}

func TestMinDistance(t *testing.T) {
	x := []float64{0, 5, 0, 4, 0, 3, 0}
	got := Find(x, Options{MinDistance: 3})
	// Peaks at 1 (5), 3 (4), 5 (3); with min distance 3, keep 1 then 5.
	if len(got) != 2 || got[0].Index != 1 || got[1].Index != 5 {
		t.Errorf("MinDistance filter wrong: %+v", got)
	}
}

func TestMaxPeaks(t *testing.T) {
	x := []float64{0, 1, 0, 2, 0, 3, 0}
	got := Find(x, Options{MaxPeaks: 2})
	if len(got) != 2 || got[0].Value != 3 || got[1].Value != 2 {
		t.Errorf("MaxPeaks wrong: %+v", got)
	}
}

// Property: every reported peak is a strict local maximum w.r.t. its
// immediate non-equal neighbours, and prominence is non-negative and at
// most the peak value minus the global minimum.
func TestFindProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(300)
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Round(r.Float64()*20) / 2 // coarse values force plateaus
		}
		globalMin := x[0]
		for _, v := range x {
			globalMin = math.Min(globalMin, v)
		}
		for _, p := range Find(x, Options{}) {
			if p.Index <= 0 || p.Index >= n-1 {
				return false
			}
			if x[p.Index] < x[p.Index-1] {
				return false
			}
			if p.Prominence < 0 || p.Prominence > p.Value-globalMin+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestS1KnownSpike(t *testing.T) {
	x := make([]float64, 21)
	x[10] = 7
	s := S1(x, 3)
	if s[10] != 7 {
		t.Errorf("S1 at spike = %g, want 7", s[10])
	}
	if s[5] != 0 {
		t.Errorf("S1 on flat = %g, want 0", s[5])
	}
	spikes := SpikesS1(x, 3, 1)
	found := false
	for _, i := range spikes {
		if i == 10 {
			found = true
		}
	}
	if !found {
		t.Errorf("SpikesS1 missed the spike: %v", spikes)
	}
}

func TestS1Edges(t *testing.T) {
	x := []float64{3, 1, 2}
	s := S1(x, 2)
	// Index 0 has no left neighbours: score is right-only max rise = 2.
	if s[0] != 2 {
		t.Errorf("edge S1 = %g, want 2", s[0])
	}
	if SpikesS1([]float64{0, 0, 0}, 1, 1) != nil {
		t.Error("flat signal should have no spikes")
	}
	mustPanic(t, func() { S1(x, 0) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
