package demod

import (
	"math"
	"math/cmplx"
	"testing"

	"fase/internal/dsp/window"
)

func TestEnvelopeAMRecoversModulation(t *testing.T) {
	// Carrier at 0.2 cycles/sample, modulated 1 + 0.5·sin at 0.005.
	n := 4096
	x := make([]float64, n)
	for i := range x {
		m := 1 + 0.5*math.Sin(2*math.Pi*0.005*float64(i))
		x[i] = m * math.Cos(2*math.Pi*0.2*float64(i))
	}
	env := EnvelopeAM(x)
	// Away from edges, the envelope must track 1 + 0.5 sin.
	for i := 200; i < n-200; i++ {
		want := 1 + 0.5*math.Sin(2*math.Pi*0.005*float64(i))
		if math.Abs(env[i]-want) > 0.02 {
			t.Fatalf("envelope at %d: got %g want %g", i, env[i], want)
		}
	}
}

func TestAnalyticSignalOfCosIsExp(t *testing.T) {
	n := 256
	x := make([]float64, n)
	k := 10.0 // integer number of cycles for an exact result
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * k * float64(i) / float64(n))
	}
	a := AnalyticSignal(x)
	for i := range a {
		want := cmplx.Exp(complex(0, 2*math.Pi*k*float64(i)/float64(n)))
		if cmplx.Abs(a[i]-want) > 1e-9 {
			t.Fatalf("analytic signal at %d: got %v want %v", i, a[i], want)
		}
	}
}

func TestEnvelopeComplex(t *testing.T) {
	x := []complex128{3 + 4i, 1, -2i}
	env := EnvelopeComplex(x)
	want := []float64{5, 1, 2}
	for i := range want {
		if math.Abs(env[i]-want[i]) > 1e-12 {
			t.Errorf("envelope[%d] = %g, want %g", i, env[i], want[i])
		}
	}
}

func TestInstFreqConstantTone(t *testing.T) {
	fs := 1e6
	f0 := 12345.0
	n := 1000
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*f0*float64(i)/fs))
	}
	f := InstFreq(x, fs)
	for i, v := range f {
		if math.Abs(v-f0) > 1e-6 {
			t.Fatalf("inst freq at %d: %g, want %g", i, v, f0)
		}
	}
}

func TestInstFreqSweep(t *testing.T) {
	// Linear chirp: instantaneous frequency must ramp.
	fs := 1e6
	n := 10000
	x := make([]complex128, n)
	phase := 0.0
	for i := range x {
		f := 1000 + 50000*float64(i)/float64(n)
		phase += 2 * math.Pi * f / fs
		x[i] = cmplx.Exp(complex(0, phase))
	}
	f := InstFreq(x, fs)
	if math.Abs(f[n/2]-26000) > 300 {
		t.Errorf("midpoint inst freq %g, want ~26 kHz", f[n/2])
	}
	if f[n-1] < f[100] {
		t.Error("chirp frequency should increase")
	}
}

func TestMeasureFM(t *testing.T) {
	// FSK between ±10 kHz: RMS deviation ~10 kHz, peak-to-peak ~20 kHz.
	fs := 1e6
	n := 20000
	x := make([]complex128, n)
	phase := 0.0
	for i := range x {
		f := 10000.0
		if (i/1000)%2 == 1 {
			f = -10000.0
		}
		phase += 2 * math.Pi * f / fs
		x[i] = cmplx.Exp(complex(0, phase))
	}
	st := MeasureFM(x, fs, 8)
	if math.Abs(st.MeanHz) > 500 {
		t.Errorf("mean %g, want ~0", st.MeanHz)
	}
	if math.Abs(st.DeviationHz-10000) > 1000 {
		t.Errorf("deviation %g, want ~10 kHz", st.DeviationHz)
	}
	if st.PeakToPeak < 15000 {
		t.Errorf("peak-to-peak %g, want ~20 kHz", st.PeakToPeak)
	}
	// An unmodulated tone has near-zero deviation.
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*5000*float64(i)/fs))
	}
	st = MeasureFM(x, fs, 1)
	if st.DeviationHz > 1 {
		t.Errorf("unmodulated deviation %g, want ~0", st.DeviationHz)
	}
}

func TestSTFTGeometryAndTone(t *testing.T) {
	fs := 1e5
	fc := 1e6
	offset := 10e3
	n := 4096
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*offset*float64(i)/fs))
	}
	sg := STFT(x, fs, fc, 512, 256, window.Hann)
	wantFrames := (n-512)/256 + 1
	if len(sg.PmW) != wantFrames {
		t.Fatalf("frames = %d, want %d", len(sg.PmW), wantFrames)
	}
	if sg.Bins() != 512 {
		t.Fatalf("bins = %d", sg.Bins())
	}
	track := sg.PeakTrack()
	for i, f := range track {
		if math.Abs(f-(fc+offset)) > fs/512 {
			t.Fatalf("frame %d peak at %g, want %g", i, f, fc+offset)
		}
	}
	if sg.FrameTime[1]-sg.FrameTime[0] != 256/fs {
		t.Error("frame time spacing wrong")
	}
}

func TestSTFTTracksFSK(t *testing.T) {
	// Spectrogram peak tracking must follow a two-tone switch — the
	// paper's §4.4 FM confirmation method.
	fs := 1e6
	n := 1 << 15
	x := make([]complex128, n)
	phase := 0.0
	for i := range x {
		f := 100e3
		if (i/8192)%2 == 1 {
			f = 200e3
		}
		phase += 2 * math.Pi * f / fs
		x[i] = cmplx.Exp(complex(0, phase))
	}
	sg := STFT(x, fs, 0, 1024, 1024, window.Hann)
	track := sg.PeakTrack()
	sawLow, sawHigh := false, false
	for _, f := range track {
		if math.Abs(f-100e3) < 5e3 {
			sawLow = true
		}
		if math.Abs(f-200e3) < 5e3 {
			sawHigh = true
		}
	}
	if !sawLow || !sawHigh {
		t.Errorf("spectrogram failed to see both FSK tones: low=%v high=%v", sawLow, sawHigh)
	}
}

func TestPanics(t *testing.T) {
	mustPanic(t, func() { AnalyticSignal(nil) })
	mustPanic(t, func() { InstFreq([]complex128{1}, 1) })
	mustPanic(t, func() { STFT(make([]complex128, 10), 1, 0, 0, 1, window.Hann) })
	mustPanic(t, func() { STFT(make([]complex128, 10), 1, 0, 16, 1, window.Hann) })
	mustPanic(t, func() { STFT(make([]complex128, 10), 1, 0, 4, 0, window.Hann) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
