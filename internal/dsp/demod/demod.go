// Package demod provides AM and FM demodulation, short-time Fourier
// spectrograms, and a spread-spectrum carrier tracker.
//
// The paper uses demodulation in two places: attackers AM-demodulate the
// carriers FASE finds (§1, §4.1), and the authors confirm the AMD
// constant-on-time regulator is frequency-modulated "with a spectrogram of
// the modulation" (§4.4). Carrier tracking (§4.3) defeats spread-spectrum
// clocking.
package demod

import (
	"fmt"
	"math"
	"math/cmplx"

	"fase/internal/dsp/fft"
	"fase/internal/dsp/window"
)

// AnalyticSignal returns the analytic signal of a real sequence via the
// FFT method: the negative-frequency half of the spectrum is zeroed and
// the positive half doubled. The result's magnitude is the envelope and
// its phase derivative the instantaneous frequency.
func AnalyticSignal(x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		panic("demod: empty input")
	}
	// The forward transform runs on the real input directly (about half
	// the complex transform's work); the inverse is necessarily complex —
	// the analytic signal is not Hermitian.
	buf := make([]complex128, n)
	fft.PlanForReal(n).Forward(x, buf)
	// Keep DC, double positive frequencies, zero negative frequencies.
	// For even n the Nyquist bin (n/2) is kept unscaled.
	half := n / 2
	for k := 1; k < half; k++ {
		buf[k] *= 2
	}
	for k := half + 1; k < n; k++ {
		buf[k] = 0
	}
	if n%2 == 1 && half >= 1 {
		buf[half] *= 2
	}
	fft.PlanFor(n).Inverse(buf)
	return buf
}

// EnvelopeAM demodulates the AM envelope of a real signal: the magnitude
// of its analytic signal.
func EnvelopeAM(x []float64) []float64 {
	a := AnalyticSignal(x)
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// EnvelopeComplex returns the magnitude of a complex-baseband capture —
// AM demodulation when the capture is centered on the carrier.
func EnvelopeComplex(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// InstFreq computes the instantaneous frequency (Hz) of a complex-baseband
// signal sampled at fs via the quadrature discriminator
// f[i] = fs/(2π) · arg(x[i]·conj(x[i-1])). The first element repeats the
// second so the output has the same length as the input.
func InstFreq(x []complex128, fs float64) []float64 {
	if len(x) < 2 {
		panic(fmt.Sprintf("demod: need at least 2 samples, got %d", len(x)))
	}
	out := make([]float64, len(x))
	for i := 1; i < len(x); i++ {
		d := x[i] * cmplx.Conj(x[i-1])
		out[i] = fs / (2 * math.Pi) * cmplx.Phase(d)
	}
	out[0] = out[1]
	return out
}

// Spectrogram is a time-frequency magnitude map.
type Spectrogram struct {
	FrameHop  int         // samples between frames
	FrameLen  int         // samples per frame
	Fs        float64     // sample rate
	Fc        float64     // band center frequency
	PmW       [][]float64 // [frame][bin] linear power, bins ascending in freq
	FrameTime []float64   // start time of each frame in seconds
}

// Bins returns the number of frequency bins per frame.
func (sg *Spectrogram) Bins() int {
	if len(sg.PmW) == 0 {
		return 0
	}
	return len(sg.PmW[0])
}

// Freq returns the frequency of bin k.
func (sg *Spectrogram) Freq(k int) float64 {
	fres := sg.Fs / float64(sg.FrameLen)
	return sg.Fc - fres*float64(sg.FrameLen/2) + float64(k)*fres
}

// PeakTrack returns, per frame, the frequency of the strongest bin — the
// carrier-tracking primitive used against spread-spectrum clocks.
func (sg *Spectrogram) PeakTrack() []float64 {
	out := make([]float64, len(sg.PmW))
	for i, frame := range sg.PmW {
		best, bp := 0, frame[0]
		for k, p := range frame {
			if p > bp {
				best, bp = k, p
			}
		}
		out[i] = sg.Freq(best)
	}
	return out
}

// STFT computes a spectrogram of a complex-baseband capture with the given
// frame length, hop, and window. frameLen must be positive, hop positive,
// and the capture at least one frame long.
func STFT(x []complex128, fs, fc float64, frameLen, hop int, wt window.Type) *Spectrogram {
	if frameLen <= 0 || hop <= 0 {
		panic(fmt.Sprintf("demod: invalid STFT frame %d hop %d", frameLen, hop))
	}
	if len(x) < frameLen {
		panic(fmt.Sprintf("demod: capture of %d samples shorter than frame %d", len(x), frameLen))
	}
	pc := window.For(wt, frameLen)
	w := pc.W
	norm := 1 / (float64(frameLen) * pc.CoherentGain)
	plan := fft.PlanFor(frameLen)
	buf := make([]complex128, frameLen)
	sg := &Spectrogram{FrameHop: hop, FrameLen: frameLen, Fs: fs, Fc: fc}
	for start := 0; start+frameLen <= len(x); start += hop {
		copy(buf, x[start:start+frameLen])
		window.Apply(buf, w)
		plan.Forward(buf)
		fft.Shift(buf)
		frame := make([]float64, frameLen)
		for k, v := range buf {
			a := real(v)*real(v) + imag(v)*imag(v)
			frame[k] = a * norm * norm
		}
		sg.PmW = append(sg.PmW, frame)
		sg.FrameTime = append(sg.FrameTime, float64(start)/fs)
	}
	return sg
}

// FMStats summarizes an instantaneous-frequency trace.
type FMStats struct {
	MeanHz      float64 // average instantaneous frequency offset
	DeviationHz float64 // RMS frequency deviation about the mean
	PeakToPeak  float64 // max - min instantaneous frequency
}

// MeasureFM computes frequency-modulation statistics of a complex-baseband
// capture, smoothing the discriminator output over smooth samples (>= 1) to
// suppress noise before measuring deviation.
func MeasureFM(x []complex128, fs float64, smooth int) FMStats {
	f := InstFreq(x, fs)
	if smooth > 1 {
		f = movingAverage(f, smooth)
	}
	var mean float64
	for _, v := range f {
		mean += v
	}
	mean /= float64(len(f))
	var rms float64
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range f {
		d := v - mean
		rms += d * d
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	rms = math.Sqrt(rms / float64(len(f)))
	return FMStats{MeanHz: mean, DeviationHz: rms, PeakToPeak: hi - lo}
}

func movingAverage(x []float64, k int) []float64 {
	out := make([]float64, len(x))
	var acc float64
	for i, v := range x {
		acc += v
		if i >= k {
			acc -= x[i-k]
			out[i] = acc / float64(k)
		} else {
			out[i] = acc / float64(i+1)
		}
	}
	return out
}
