// Package window provides spectral window functions and their calibration
// constants.
//
// A window trades main-lobe width (frequency resolution) against side-lobe
// level (dynamic range). Spectrum-analyzer-style amplitude measurements
// must divide by the window's coherent gain so a sine tone reads its true
// amplitude at its bin, and noise-density measurements must account for the
// noise-equivalent bandwidth (NENBW).
package window

import (
	"fmt"
	"math"
	"sync"

	"fase/internal/obs"
)

// Type enumerates the supported window functions.
type Type int

const (
	// Default is the zero value and stands for "let the consumer choose":
	// code taking a window.Type treats Default as its documented default
	// (the spectrum analyzer resolves it to BlackmanHarris; New resolves
	// it the same way). Having an explicit sentinel keeps every concrete
	// window — including Rectangular — selectable.
	Default Type = iota
	// Rectangular is the implicit "no window": best noise bandwidth
	// (NENBW = 1 bin), worst side lobes (-13 dB).
	Rectangular
	// Hann is the general-purpose cosine window (-31.5 dB side lobes).
	Hann
	// Hamming minimizes the nearest side lobe (-43 dB).
	Hamming
	// Blackman has -58 dB side lobes at the cost of a wider main lobe.
	Blackman
	// BlackmanHarris is the 4-term minimum side-lobe window (-92 dB).
	BlackmanHarris
	// FlatTop has negligible scalloping loss, used for amplitude-accurate
	// spectrum analyzer measurements.
	FlatTop
)

// String returns the conventional name of the window.
func (t Type) String() string {
	switch t {
	case Default:
		return "default"
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	case BlackmanHarris:
		return "blackman-harris"
	case FlatTop:
		return "flattop"
	default:
		return fmt.Sprintf("window.Type(%d)", int(t))
	}
}

// cosineCoeffs returns the a_k coefficients of the generalized cosine window
// w[n] = sum_k (-1)^k a_k cos(2πkn/(N-1)).
func (t Type) cosineCoeffs() []float64 {
	switch t {
	case Default:
		// Default resolves to the library-wide default window.
		return BlackmanHarris.cosineCoeffs()
	case Rectangular:
		return []float64{1}
	case Hann:
		return []float64{0.5, 0.5}
	case Hamming:
		return []float64{0.54, 0.46}
	case Blackman:
		return []float64{0.42, 0.5, 0.08}
	case BlackmanHarris:
		return []float64{0.35875, 0.48829, 0.14128, 0.01168}
	case FlatTop:
		// ISO 18431-2 flattop (as in SciPy).
		return []float64{0.21557895, 0.41663158, 0.277263158, 0.083578947, 0.006947368}
	default:
		panic(fmt.Sprintf("window: unknown type %d", int(t)))
	}
}

// New returns the n window samples for the given type. n must be positive.
// The symmetric (periodic=false) form is generated with denominator n,
// which is the standard periodic form used for spectral analysis.
func New(t Type, n int) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("window: invalid length %d", n))
	}
	w := make([]float64, n)
	coeffs := t.cosineCoeffs()
	for i := range w {
		x := 2 * math.Pi * float64(i) / float64(n)
		var v float64
		sign := 1.0
		for k, a := range coeffs {
			v += sign * a * math.Cos(float64(k)*x)
			sign = -sign
		}
		w[i] = v
	}
	return w
}

// Precomputed is a cached window table plus its calibration constants,
// shared process-wide. W must be treated as read-only.
type Precomputed struct {
	Type Type
	N    int
	// W holds the n window samples (shared: do not modify).
	W []float64
	// CoherentGain is CoherentGain(W), cached.
	CoherentGain float64
	// NENBW is NENBW(W), cached.
	NENBW float64
}

type tableKey struct {
	t Type
	n int
}

// tableCache backs For: (type, length) -> *Precomputed.
var tableCache sync.Map

// Table-cache hit/miss counters feed the run manifest's cache
// statistics.
var (
	tableHits   = obs.Default.Counter(obs.MetricWindowHits)
	tableMisses = obs.Default.Counter(obs.MetricWindowMisses)
)

// For returns the cached window table for (t, n), computing and caching it
// on first use. The returned table is shared between callers and safe for
// concurrent reads; it must not be modified. Rendering pipelines use this
// instead of New so repeated transforms of one geometry cost no window
// synthesis and no allocation.
func For(t Type, n int) *Precomputed {
	key := tableKey{t: t, n: n}
	if v, ok := tableCache.Load(key); ok {
		tableHits.Inc()
		return v.(*Precomputed)
	}
	tableMisses.Inc()
	w := New(t, n)
	pc := &Precomputed{Type: t, N: n, W: w, CoherentGain: CoherentGain(w), NENBW: NENBW(w)}
	v, _ := tableCache.LoadOrStore(key, pc)
	return v.(*Precomputed)
}

// CoherentGain returns the mean of the window samples. Dividing a windowed
// DFT by n·CoherentGain makes a bin-centered tone read its true amplitude.
func CoherentGain(w []float64) float64 {
	var sum float64
	for _, v := range w {
		sum += v
	}
	return sum / float64(len(w))
}

// NENBW returns the noise-equivalent bandwidth in bins:
// N·sum(w²)/sum(w)². White noise of density N0 produces N0·NENBW·fres
// power per amplitude-calibrated bin.
func NENBW(w []float64) float64 {
	var s1, s2 float64
	for _, v := range w {
		s1 += v
		s2 += v * v
	}
	n := float64(len(w))
	return n * s2 / (s1 * s1)
}

// Apply multiplies x by the window in place. Panics if lengths differ.
func Apply(x []complex128, w []float64) {
	if len(x) != len(w) {
		panic(fmt.Sprintf("window: length mismatch %d vs %d", len(x), len(w)))
	}
	for i := range x {
		x[i] *= complex(w[i], 0)
	}
}

// ApplyReal multiplies a real signal by the window in place.
func ApplyReal(x, w []float64) {
	if len(x) != len(w) {
		panic(fmt.Sprintf("window: length mismatch %d vs %d", len(x), len(w)))
	}
	for i := range x {
		x[i] *= w[i]
	}
}
