package window

import (
	"math"
	"testing"
	"testing/quick"
)

var allTypes = []Type{Rectangular, Hann, Hamming, Blackman, BlackmanHarris, FlatTop}

func TestKnownGains(t *testing.T) {
	// Reference coherent gains for large n (periodic form): the mean of the
	// cosine series is its a0 coefficient.
	want := map[Type]float64{
		Rectangular:    1.0,
		Hann:           0.5,
		Hamming:        0.54,
		Blackman:       0.42,
		BlackmanHarris: 0.35875,
		FlatTop:        0.21557895,
	}
	for typ, cg := range want {
		w := New(typ, 4096)
		if got := CoherentGain(w); math.Abs(got-cg) > 1e-9 {
			t.Errorf("%v: coherent gain %g, want %g", typ, got, cg)
		}
	}
}

func TestKnownNENBW(t *testing.T) {
	// Standard NENBW values (bins) from the window literature.
	want := map[Type]float64{
		Rectangular: 1.0,
		Hann:        1.5,
		Hamming:     1.3628,
		Blackman:    1.7268,
	}
	for typ, nb := range want {
		w := New(typ, 8192)
		if got := NENBW(w); math.Abs(got-nb) > 1e-3 {
			t.Errorf("%v: NENBW %g, want %g", typ, got, nb)
		}
	}
}

func TestWindowRange(t *testing.T) {
	for _, typ := range allTypes {
		w := New(typ, 257)
		for i, v := range w {
			if v > 1.0+1e-9 {
				t.Errorf("%v[%d] = %g > 1", typ, i, v)
			}
			// FlatTop legitimately goes slightly negative.
			if typ != FlatTop && v < -1e-9 {
				t.Errorf("%v[%d] = %g < 0", typ, i, v)
			}
		}
	}
}

func TestPeriodicSymmetry(t *testing.T) {
	// The periodic form satisfies w[i] == w[n-i] for i >= 1.
	for _, typ := range allTypes {
		n := 128
		w := New(typ, n)
		for i := 1; i < n; i++ {
			if math.Abs(w[i]-w[n-i]) > 1e-12 {
				t.Errorf("%v: asymmetry at %d: %g vs %g", typ, i, w[i], w[n-i])
				break
			}
		}
	}
}

func TestHannSumsToConstant(t *testing.T) {
	// Periodic Hann windows at 50%% overlap sum to 1 (COLA property).
	n := 64
	w := New(Hann, n)
	for i := 0; i < n/2; i++ {
		if s := w[i] + w[i+n/2]; math.Abs(s-1) > 1e-12 {
			t.Fatalf("Hann COLA violated at %d: %g", i, s)
		}
	}
}

func TestNENBWAtLeastOne(t *testing.T) {
	// Property: NENBW >= 1 for every window (Cauchy-Schwarz).
	f := func(seed int64) bool {
		n := 8 + int(seed%512+512)%512
		for _, typ := range allTypes {
			if NENBW(New(typ, n)) < 1-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestApply(t *testing.T) {
	x := []complex128{1, 1, 1, 1}
	w := New(Hann, 4)
	Apply(x, w)
	for i := range x {
		if real(x[i]) != w[i] || imag(x[i]) != 0 {
			t.Errorf("Apply mismatch at %d", i)
		}
	}
	xr := []float64{2, 2, 2, 2}
	ApplyReal(xr, w)
	for i := range xr {
		if xr[i] != 2*w[i] {
			t.Errorf("ApplyReal mismatch at %d", i)
		}
	}
}

func TestPanics(t *testing.T) {
	mustPanic(t, func() { New(Hann, 0) })
	mustPanic(t, func() { New(Type(99), 8) })
	mustPanic(t, func() { Apply(make([]complex128, 3), make([]float64, 4)) })
	mustPanic(t, func() { ApplyReal(make([]float64, 5), make([]float64, 4)) })
}

func TestString(t *testing.T) {
	if Hann.String() != "hann" || FlatTop.String() != "flattop" {
		t.Error("String names wrong")
	}
	if Type(42).String() == "" {
		t.Error("unknown type should still stringify")
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestDefaultSentinel(t *testing.T) {
	// The zero value is "analyzer default", not rectangular — keeping a
	// zero-valued Config field from silently selecting a rectangular
	// window while still allowing Rectangular to be chosen explicitly.
	var zero Type
	if zero != Default {
		t.Fatal("zero value of Type must be Default")
	}
	if Default == Rectangular {
		t.Fatal("Default must be distinct from Rectangular")
	}
	if got := Default.String(); got != "default" {
		t.Errorf("Default.String() = %q", got)
	}
	// Default resolves to the Blackman-Harris taper.
	dw, bh := New(Default, 1024), New(BlackmanHarris, 1024)
	for i := range dw {
		if dw[i] != bh[i] {
			t.Fatal("Default window does not match BlackmanHarris")
		}
	}
	rect := New(Rectangular, 1024)
	for i := range rect {
		if rect[i] != 1 {
			t.Fatal("Rectangular window must be all ones")
		}
	}
}
