package core

import (
	"math"
	"testing"

	"fase/internal/activity"
	"fase/internal/machine"
)

func TestFMFaseFindsConstantOnTimeRegulator(t *testing.T) {
	// §4.4 future work: the AMD Turion's FM core regulator, which AM-FASE
	// correctly skips, is found by the FM extension under on-chip
	// alternation.
	sys := machine.AMDTurionX2Laptop2007()
	r := &Runner{Scene: sys.Scene(1, false)}
	dets := r.RunFM(FMCampaign{
		F1: 0.3e6, F2: 0.5e6,
		FAlt1: 400, FDelta: 60,
		X: activity.LDL2, Y: activity.LDL1, Seed: 31,
	})
	found := false
	for _, d := range dets {
		// The idle hump sits near F0 (idle load); accept a generous
		// window: it is smeared by the large oscillator wander.
		if math.Abs(d.Freq-sys.FMCoreRegulator.F0) < 60e3 {
			found = true
			if d.DeviationHz < 2e3 {
				t.Errorf("FM deviation estimate %.0f Hz too small", d.DeviationHz)
			}
		}
	}
	if !found {
		t.Errorf("FM-FASE missed the constant-on-time regulator: %+v", dets)
	}
}

func TestFMFaseIgnoresAMRegulator(t *testing.T) {
	// The i7's AM regulators respond to activity in amplitude, not
	// frequency: FM-FASE must not report them.
	sys := machine.IntelCoreI7Desktop()
	r := &Runner{Scene: sys.Scene(1, false)}
	dets := r.RunFM(FMCampaign{
		F1: 0.28e6, F2: 0.36e6,
		FAlt1: 400, FDelta: 60,
		X: activity.LDM, Y: activity.LDL1, Seed: 32,
	})
	for _, d := range dets {
		if math.Abs(d.Freq-sys.MemRegulator.FSw) < 10e3 {
			t.Errorf("AM regulator reported by FM-FASE: %+v", d)
		}
	}
}

func TestFMFaseControlPair(t *testing.T) {
	// X == Y produces no frequency modulation at f_alt: nothing reported.
	sys := machine.AMDTurionX2Laptop2007()
	r := &Runner{Scene: sys.Scene(1, false)}
	dets := r.RunFM(FMCampaign{
		F1: 0.3e6, F2: 0.5e6,
		FAlt1: 400, FDelta: 60,
		X: activity.LDL1, Y: activity.LDL1, Seed: 33,
	})
	if len(dets) != 0 {
		t.Errorf("control pair should detect nothing: %+v", dets)
	}
}

func TestFMCampaignValidation(t *testing.T) {
	c := FMCampaign{FAlt1: 400, FDelta: 60}.withDefaults()
	if c.NumAlts != 5 || c.Fs != 250e3 || c.CaptureN != 1<<17 || c.FrameLen != 64 || c.MinScore != 30 {
		t.Errorf("defaults wrong: %+v", c)
	}
	fa := c.falts()
	if len(fa) != 5 || fa[4] != 640 {
		t.Errorf("ladder wrong: %v", fa)
	}
	mustPanic(t, func() { FMCampaign{FAlt1: 0, FDelta: 1}.withDefaults() })
	mustPanic(t, func() { FMCampaign{FAlt1: 1, FDelta: 1, NumAlts: 1}.withDefaults() })
	mustPanic(t, func() { (&Runner{}).RunFM(FMCampaign{FAlt1: 400, FDelta: 60, F1: 0, F2: 1e5}) })
}
