package core

import (
	"math"
	"sort"
)

// HarmonicSet is a group of detected carriers at integer multiples of a
// common fundamental — "it is useful to group the identified carriers
// into sets such that all the carriers within a set occur at frequencies
// which appear to be multiples of one another" (§4).
type HarmonicSet struct {
	// Fundamental is the estimated common fundamental frequency.
	Fundamental float64
	// Members are the detections in the set, ascending in frequency.
	Members []Detection
	// Orders[i] is the harmonic order of Members[i] (Freq ≈ Orders[i]·Fundamental).
	Orders []int
}

// GroupHarmonics clusters detections into harmonic sets. tol is the
// relative frequency tolerance for matching a detection to a multiple of
// a candidate fundamental (e.g. 0.004). Detections that match no set are
// returned as singleton sets. Greedy: candidates that explain the most
// detections win first; each detection joins one set.
func GroupHarmonics(dets []Detection, tol float64) []HarmonicSet {
	if tol <= 0 {
		tol = 0.004
	}
	const maxOrder = 16
	remaining := append([]Detection(nil), dets...)
	sort.Slice(remaining, func(a, b int) bool { return remaining[a].Freq < remaining[b].Freq })
	var sets []HarmonicSet
	for len(remaining) > 0 {
		// Candidate fundamentals: each remaining frequency divided by
		// small integers.
		type cd struct {
			fund  float64
			cover []int // indices into remaining
		}
		best := cd{}
		for _, d := range remaining {
			for k := 1; k <= maxOrder; k++ {
				fund := d.Freq / float64(k)
				if fund < remaining[0].Freq/float64(maxOrder)-1 {
					break
				}
				var cover []int
				hasFundamental := false
				for i, o := range remaining {
					ord := math.Round(o.Freq / fund)
					if ord < 1 || ord > maxOrder {
						continue
					}
					if math.Abs(o.Freq-ord*fund) <= tol*o.Freq {
						cover = append(cover, i)
						if ord == 1 {
							hasFundamental = true
						}
					}
				}
				// A set must contain its own fundamental ("multiples of
				// one another"), or degenerate tiny fundamentals would
				// swallow unrelated carriers.
				if !hasFundamental {
					continue
				}
				// Prefer larger covers; among equal covers prefer the
				// larger fundamental (smaller orders — avoids calling a
				// 315 kHz set "multiples of 157.5 kHz").
				if len(cover) > len(best.cover) ||
					(len(cover) == len(best.cover) && fund > best.fund) {
					best = cd{fund: fund, cover: cover}
				}
			}
		}
		if len(best.cover) == 0 {
			// No candidate covered anything. Possible only for degenerate
			// frequencies (zero, negative, NaN) whose order arithmetic never
			// matches — emit the first remaining detection as a singleton so
			// grouping always terminates.
			d := remaining[0]
			sets = append(sets, HarmonicSet{Fundamental: d.Freq, Members: []Detection{d}, Orders: []int{1}})
			remaining = remaining[1:]
			continue
		}
		set := HarmonicSet{Fundamental: best.fund}
		covered := make(map[int]bool, len(best.cover))
		for _, i := range best.cover {
			covered[i] = true
			set.Members = append(set.Members, remaining[i])
			set.Orders = append(set.Orders, int(math.Round(remaining[i].Freq/best.fund)))
		}
		// Refine the fundamental by least squares over members:
		// minimize Σ (f_i - ord_i·fund)² → fund = Σ f_i·ord_i / Σ ord_i².
		var num, den float64
		for i, m := range set.Members {
			num += m.Freq * float64(set.Orders[i])
			den += float64(set.Orders[i] * set.Orders[i])
		}
		if den > 0 {
			set.Fundamental = num / den
		}
		sets = append(sets, set)
		var rest []Detection
		for i, d := range remaining {
			if !covered[i] {
				rest = append(rest, d)
			}
		}
		remaining = rest
	}
	sort.Slice(sets, func(a, b int) bool { return sets[a].Fundamental < sets[b].Fundamental })
	return sets
}
