package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"fase/internal/dsp/bufpool"
	"fase/internal/dsp/peaks"
	"fase/internal/dsp/spectral"
	"fase/internal/microbench"
	"fase/internal/obs"
	"fase/internal/specan"
)

// Adaptive-planner process counters; per-run detail goes into the
// manifest's AdaptiveStats.
var (
	adaptiveCampaignsTotal = obs.Default.Counter(obs.MetricAdaptiveCampaigns)
	adaptiveRefinedTotal   = obs.Default.Counter(obs.MetricAdaptiveWindowsRefined)
	adaptiveAbandonedTotal = obs.Default.Counter(obs.MetricAdaptiveWindowsAbandoned)
	adaptiveSkippedTotal   = obs.Default.Counter(obs.MetricAdaptiveWindowsSkipped)
)

// AdaptivePlan configures the budgeted coarse-to-fine campaign planner.
//
// The exhaustive campaign sweeps the full band NumAlts times at Fres —
// most of that budget is spent proving the absence of carriers in empty
// spectrum. The planner instead spends a small reconnaissance pass at a
// coarse resolution over the whole band, scores it with the same
// ghost-pair heuristic the exhaustive path uses (side-bands that move
// with f_alt), and then re-sweeps only the highest-priority candidate
// windows at full resolution, under a hard capture budget
// (Campaign.Budget, enforced by specan.Meter):
//
//  1. Recon: ReconAlts sweeps of [F1, F2] at ReconFres with
//     ReconAverages. Peaks of the recon heuristic above MinReconScore
//     seed candidate windows, prioritized by score.
//  2. Probe: each window is first re-swept at full Fres for only the
//     recon ladder entries. If the probe score falls below the
//     abandonment threshold (AbandonRatio ×
//     MinScore^(ReconAlts/NumAlts) — the level a genuine carrier on
//     track for MinScore shows after ReconAlts of NumAlts
//     measurements), the window is abandoned having cost only its
//     probe.
//  3. Refine: surviving windows get the remaining NumAlts − ReconAlts
//     sweeps; all NumAlts full-resolution measurements then run the
//     unmodified scoring and detection gates.
//
// Every sweep is priced (specan.Analyzer.SweepCaptures) and reserved on
// the budget before it starts, all-or-nothing, so the planner degrades
// by skipping whole windows — never by producing half-measured spectra.
// Recon and probe reuse the ladder's extreme entries (e.g. indices 0
// and NumAlts−1), whose f_alt spacing stays resolvable at the coarse
// recon bin width.
//
// Adaptive results are judged by the verify corpus' recall-vs-budget
// gates; they are NOT bit-identical to the exhaustive path (different
// segment geometry and measurement set by design).
type AdaptivePlan struct {
	// ReconFres is the reconnaissance resolution bandwidth, Hz. It must
	// be at least the campaign Fres; zero means 8×Fres — coarse enough
	// that the recon sweep costs a few percent of the exhaustive
	// campaign, fine enough that side-bands at the ladder's extreme
	// f_alt spacing still land in distinct bins.
	ReconFres float64
	// ReconAlts is how many ladder entries recon (and each window's
	// probe) measures, spread across the ladder. At least 2 — the
	// heuristic needs a pair to difference — and at most NumAlts. Zero
	// means 2.
	ReconAlts int
	// ReconAverages is the recon sweeps' traces-per-segment average;
	// zero means 2 (half the exhaustive default — recon only ranks).
	ReconAverages int
	// RefineAverages is the refinement sweeps' average count; zero
	// means 1 — cheaper per window than the exhaustive campaign's 4,
	// and enough because refinement only scores candidate windows the
	// recon pass already ranked: the NumAlts-measurement score product
	// and its elevation gates supply the corroboration that trace
	// averaging supplies in a cold full-band sweep.
	RefineAverages int
	// MinReconScore is the recon-peak threshold that seeds a candidate
	// window. Zero derives it from the campaign threshold:
	// 0.5 × MinScore^(ReconAlts/NumAlts), i.e. half the score a
	// carrier on track for MinScore shows after ReconAlts measurements.
	// Use MinScoreZero for a literal 0 (every recon peak becomes a
	// candidate).
	MinReconScore float64
	// AbandonRatio scales the probe abandonment threshold; zero means
	// 0.5 (abandon windows probing below half the on-track score). Use
	// MinScoreZero for a literal 0 — never abandon, spend the budget in
	// priority order.
	AbandonRatio float64
	// MaxWindows caps how many candidate windows enter the refinement
	// queue (highest priority first); zero means unlimited — the budget
	// is then the only limit.
	MaxWindows int
}

// validate reports the first configuration error in the plan. It runs
// before defaults resolve, so zero fields are legal everywhere.
func (p *AdaptivePlan) validate(c Campaign) error {
	for name, v := range map[string]float64{
		"ReconFres": p.ReconFres, "MinReconScore": p.MinReconScore,
		"AbandonRatio": p.AbandonRatio,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: adaptive %s %g is not finite", name, v)
		}
	}
	if p.ReconFres != 0 && p.ReconFres < c.Fres {
		return fmt.Errorf("core: adaptive ReconFres %g Hz is finer than the campaign resolution %g Hz", p.ReconFres, c.Fres)
	}
	n := c.NumAlts
	if n == 0 {
		n = 5
	}
	if p.ReconAlts != 0 && (p.ReconAlts < 2 || p.ReconAlts > n) {
		return fmt.Errorf("core: adaptive ReconAlts must be in [2, NumAlts=%d], got %d", n, p.ReconAlts)
	}
	if p.ReconAverages < 0 || p.RefineAverages < 0 {
		return fmt.Errorf("core: adaptive averages must be non-negative, got recon %d / refine %d", p.ReconAverages, p.RefineAverages)
	}
	if p.MinReconScore < 0 && p.MinReconScore != MinScoreZero {
		return fmt.Errorf("core: adaptive MinReconScore %g is negative (use MinScoreZero for a zero threshold)", p.MinReconScore)
	}
	if p.AbandonRatio < 0 && p.AbandonRatio != MinScoreZero {
		return fmt.Errorf("core: adaptive AbandonRatio %g is negative (use MinScoreZero to disable abandonment)", p.AbandonRatio)
	}
	if p.MaxWindows < 0 {
		return fmt.Errorf("core: adaptive MaxWindows must be non-negative, got %d", p.MaxWindows)
	}
	return nil
}

// withDefaults resolves the plan against a defaults-resolved campaign.
func (p AdaptivePlan) withDefaults(c Campaign) AdaptivePlan {
	if p.ReconFres == 0 {
		p.ReconFres = 8 * c.Fres
	}
	if p.ReconAlts == 0 {
		p.ReconAlts = 2
	}
	if p.ReconAlts > c.NumAlts {
		p.ReconAlts = c.NumAlts
	}
	if p.ReconAverages == 0 {
		p.ReconAverages = 2
	}
	if p.RefineAverages == 0 {
		p.RefineAverages = 1
	}
	switch p.MinReconScore {
	case MinScoreZero:
		p.MinReconScore = 0
	case 0:
		p.MinReconScore = 0.5 * math.Pow(c.MinScore, float64(p.ReconAlts)/float64(c.NumAlts))
	}
	switch p.AbandonRatio {
	case MinScoreZero:
		p.AbandonRatio = 0
	case 0:
		p.AbandonRatio = 0.5
	}
	return p
}

// abandonThreshold is the probe score below which a window is
// abandoned: a carrier on track for MinScore over the full ladder shows
// ≈ MinScore^(ReconAlts/NumAlts) after its ReconAlts probe
// measurements (the product scales per measurement), scaled by
// AbandonRatio for probe noise.
func (p AdaptivePlan) abandonThreshold(c Campaign) float64 {
	return p.AbandonRatio * math.Pow(c.MinScore, float64(p.ReconAlts)/float64(c.NumAlts))
}

// spreadIndices returns k ladder indices spread across [0, n), always
// including both extremes. Recon measures the ladder's extreme entries
// because their f_alt spacing is the widest — the pair most likely to
// stay resolvable at the coarse recon bin width.
func spreadIndices(k, n int) []int {
	idx := make([]int, k)
	if k == 1 {
		return idx
	}
	for j := range idx {
		idx[j] = int(math.Round(float64(j) * float64(n-1) / float64(k-1)))
	}
	return idx
}

// complementIndices returns [0, n) minus idx, ascending.
func complementIndices(idx []int, n int) []int {
	in := make([]bool, n)
	for _, i := range idx {
		in[i] = true
	}
	out := make([]int, 0, n-len(idx))
	for i := 0; i < n; i++ {
		if !in[i] {
			out = append(out, i)
		}
	}
	return out
}

// refineWindow is one candidate band segment queued for refinement.
type refineWindow struct {
	idx      int // identity for callback state, assigned at build time
	f1, f2   float64
	priority float64 // recon heuristic peak score (queue order)
	// probeCost / fullCost price the window's probe sweeps and its
	// remaining completion sweeps, in captures.
	probeCost, fullCost int64
}

// windowOutcome records what the scheduler decided for one window.
type windowOutcome struct {
	window     refineWindow
	outcome    string // obs.WindowRefined / Abandoned / Partial / Skipped
	captures   int64
	probeScore float64
	detections int
}

// scheduleRefinement walks windows in priority order under the budget
// meter. Each window reserves its probe cost before probing
// (all-or-nothing; failure → skipped at zero cost), abandons if the
// probe score falls below threshold, reserves its completion cost
// before refining (failure → partial, costing only the probe), and
// otherwise refines. The probe and refine callbacks do the sweeping and
// scoring; the scheduler itself is pure admission control, which is
// what the planner fuzz harness exercises with fake callbacks. A nil
// meter is an unlimited budget. Outcomes are returned in processing
// (priority-descending) order.
func scheduleRefinement(windows []refineWindow, meter *specan.Meter, threshold float64,
	probe func(refineWindow) float64, refine func(refineWindow, float64) int) []windowOutcome {
	ws := append([]refineWindow(nil), windows...)
	sort.SliceStable(ws, func(a, b int) bool {
		if ws[a].priority != ws[b].priority {
			return ws[a].priority > ws[b].priority
		}
		return ws[a].f1 < ws[b].f1
	})
	out := make([]windowOutcome, 0, len(ws))
	for _, w := range ws {
		o := windowOutcome{window: w}
		if !meter.Reserve(w.probeCost) {
			o.outcome = obs.WindowSkipped
			out = append(out, o)
			continue
		}
		o.captures = w.probeCost
		o.probeScore = probe(w)
		switch {
		case o.probeScore < threshold:
			o.outcome = obs.WindowAbandoned
		case !meter.Reserve(w.fullCost):
			o.outcome = obs.WindowPartial
		default:
			o.captures += w.fullCost
			o.detections = refine(w, o.probeScore)
			o.outcome = obs.WindowRefined
		}
		out = append(out, o)
	}
	return out
}

// sweepBand runs one sweep per ladder index in idx over [f1, f2] on an,
// returning spectra ordered like idx. Trace and fault-drift seeds use
// the global ladder index, so a refinement sweep at falts[i] sees the
// same alternation realization the exhaustive campaign's sweep i would.
func (r *Runner) sweepBand(an *specan.Analyzer, c Campaign, f1, f2 float64, falts []float64, idx []int, span obs.Span) []*spectral.Spectrum {
	out := make([]*spectral.Spectrum, len(idx))
	var wg sync.WaitGroup
	for j, i := range idx {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			fa := falts[i]
			faGen := fa * (1 + c.Faults.DriftFor(c.Seed+int64(i)*104729))
			tr := microbench.Generate(microbench.Config{
				X: c.X, Y: c.Y, FAlt: faGen, Jitter: *c.Jitter,
				Seed: c.Seed + int64(i)*104729,
			}, an.TotalDuration(f1, f2)+0.05)
			// Track 1+i is the global ladder index's event stream; the
			// planner processes windows sequentially, so each track sees its
			// sweeps in a deterministic order even though the sweeps of one
			// band run concurrently.
			jt := r.Obs.Track(1 + int64(i))
			jt.Emit(obs.Event{Kind: obs.EventSweepPlan, FAltHz: fa, F1Hz: f1, F2Hz: f2})
			out[j] = an.Sweep(specan.Request{
				Scene: r.Scene, F1: f1, F2: f2, Activity: tr,
				Seed:      c.Seed,
				NearField: r.NearField, NearFieldGainDB: r.NearFieldGainDB,
				Span:   span,
				Events: jt,
			})
		}(j, i)
	}
	wg.Wait()
	return out
}

// smoothPooled smooths each spectrum into a pool-backed copy; release
// with releaseSmoothed.
func smoothPooled(spectra []*spectral.Spectrum, w int) []*spectral.Spectrum {
	out := make([]*spectral.Spectrum, len(spectra))
	for i, s := range spectra {
		out[i] = &spectral.Spectrum{PmW: bufpool.Float(s.Bins())}
		SmoothSpectrumInto(out[i], s, w)
	}
	return out
}

func releaseSmoothed(sm []*spectral.Spectrum) {
	for _, s := range sm {
		bufpool.PutFloat(s.PmW)
		s.PmW = nil
	}
}

// priorityHarmonics is the low-order subset (|h| ≤ 2) used to rank
// recon peaks: low harmonics carry most side-band power and their probe
// shifts disperse least, so they dominate genuine recon evidence.
func priorityHarmonics(hs []int) []int {
	var lo []int
	for _, h := range hs {
		if abs(h) <= 2 {
			lo = append(lo, h)
		}
	}
	if len(lo) > 0 {
		return lo
	}
	return hs
}

// probeHarmonics is the first-harmonic subset a window probe scores —
// ±1 carries the dominant side-band pair.
func probeHarmonics(hs []int) []int {
	var first []int
	for _, h := range hs {
		if h == 1 || h == -1 {
			first = append(first, h)
		}
	}
	if len(first) > 0 {
		return first
	}
	return hs
}

// reconSmoothBins is the recon-grid analogue of the campaign smoothing
// default: matched to the f_Δ spacing in recon bins, which at coarse
// ReconFres usually degenerates to 1 (no smoothing).
func reconSmoothBins(c Campaign, reconFres float64) int {
	w := int(0.9 * c.FDelta / reconFres)
	if w > 15 {
		w = 15
	}
	if w%2 == 0 {
		w--
	}
	if w < 1 {
		w = 1
	}
	return w
}

// windowPad is the half-width a refinement window extends around its
// candidate carrier: the ladder's largest f_alt (so every first-
// harmonic side-band probe stays in span — out-of-span probes are
// neutral and would starve the MinElevated gate) plus the merge radius
// and the side-band search window in Hz.
func windowPad(c Campaign, falts []float64) float64 {
	faltMax := falts[0]
	for _, f := range falts {
		faltMax = math.Max(faltMax, f)
	}
	return faltMax + float64(c.MergeBins+8)*c.Fres
}

// buildWindows converts recon candidate peaks into a disjoint,
// pad-extended set of refinement windows: one interval per candidate,
// clamped to the campaign band, overlaps merged (priority = max).
func buildWindows(cands []reconCandidate, c Campaign, falts []float64) []refineWindow {
	if len(cands) == 0 {
		return nil
	}
	pad := windowPad(c, falts)
	type iv struct {
		f1, f2, pri float64
	}
	ivs := make([]iv, len(cands))
	for i, cd := range cands {
		ivs[i] = iv{f1: math.Max(c.F1, cd.freq-pad), f2: math.Min(c.F2, cd.freq+pad), pri: cd.score}
	}
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].f1 < ivs[b].f1 })
	merged := []iv{ivs[0]}
	for _, v := range ivs[1:] {
		last := &merged[len(merged)-1]
		if v.f1 <= last.f2 {
			last.f2 = math.Max(last.f2, v.f2)
			last.pri = math.Max(last.pri, v.pri)
			continue
		}
		merged = append(merged, v)
	}
	out := make([]refineWindow, len(merged))
	for i, v := range merged {
		out[i] = refineWindow{idx: i, f1: v.f1, f2: v.f2, priority: v.pri}
	}
	return out
}

// reconCandidate is one recon heuristic peak.
type reconCandidate struct {
	freq  float64
	score float64
}

// reconCandidates extracts candidate carriers from the recon score
// traces: per-bin max over the low-order harmonics, peak-found with the
// merge radius rescaled to recon bins. A bin only counts for a harmonic
// when every recon sub-score is elevated — with only ReconAlts
// measurements, a product can be carried by a single chi-square tail
// event, and requiring full agreement is what makes a recon peak
// ghost-pair evidence rather than noise.
func reconCandidates(scores map[int][]float64, elevated map[int][]int, hs []int, recon *spectral.Spectrum, c Campaign, ap AdaptivePlan) []reconCandidate {
	bins := recon.Bins()
	best := make([]float64, bins)
	for _, h := range priorityHarmonics(hs) {
		elev := elevated[h]
		for k, v := range scores[h] {
			if elev[k] >= ap.ReconAlts && v > best[k] {
				best[k] = v
			}
		}
	}
	mergeRecon := int(float64(c.MergeBins) * c.Fres / ap.ReconFres)
	if mergeRecon < 1 {
		mergeRecon = 1
	}
	var out []reconCandidate
	for _, p := range peaks.Find(best, peaks.Options{
		MinValue:    ap.MinReconScore,
		MinDistance: mergeRecon,
	}) {
		out = append(out, reconCandidate{freq: recon.Freq(p.Index), score: p.Value})
	}
	return out
}

// runAdaptive executes a defaults-resolved adaptive campaign: recon →
// prioritized, budget-gated refinement → global detection merge. See
// AdaptivePlan for the algorithm. The Result mirrors the exhaustive
// shape with the recon pass as its Measurements/Scores (full-band
// context at coarse resolution); detections come from the refined
// full-resolution windows, with bins mapped onto the recon grid.
func (r *Runner) runAdaptive(c Campaign) (*Result, error) {
	ap := *c.Adaptive
	campaignsTotal.Inc()
	adaptiveCampaignsTotal.Inc()
	run := r.Obs
	var camp obs.Span
	if run != nil {
		camp = run.Tracer.Begin("campaign")
	}
	meter := specan.NewMeter(int64(c.Budget))
	falts := c.FAlts()
	run.SetBudget(int64(c.Budget))
	run.SetTotals(int64(c.Budget), 0, 0)
	run.Track(0).Emit(obs.Event{Kind: obs.EventCampaignStart, Name: "adaptive",
		F1Hz: c.F1, F2Hz: c.F2, Total: int64(c.Budget)})
	if run != nil {
		// Reservations happen sequentially on the planner goroutine, so
		// this hook emits a deterministic budget-event sequence on the
		// coordinator track.
		meter.OnReserve = func(n int64, granted bool) {
			outcome := obs.ReserveGranted
			if !granted {
				outcome = obs.ReserveDenied
			}
			run.SetBudgetReserved(meter.Reserved())
			run.Track(0).Emit(obs.Event{Kind: obs.EventBudgetReserve,
				Captures: n, Outcome: outcome,
				Reserved: meter.Reserved(), Cap: meter.Cap()})
		}
	}

	anCfg := func(fres float64, avg int, m *specan.Meter) specan.Config {
		return specan.Config{Fres: fres, Averages: avg, Parallelism: c.Parallelism,
			MaxFFT: c.MaxFFT, NoPlan: c.NoPlan, ReuseStatic: !c.NoReuse,
			NoSegment: c.NoSegment, Faults: c.Faults, Meter: m, Obs: run}
	}
	// Price the equivalent exhaustive campaign (same geometry, no meter)
	// for the manifest's savings ratio.
	exhaustive := int64(len(falts)) * specan.New(anCfg(c.Fres, c.Averages, nil)).SweepCaptures(c.F1, c.F2)
	reconAn := specan.New(anCfg(ap.ReconFres, ap.ReconAverages, meter))
	refineAn := specan.New(anCfg(c.Fres, ap.RefineAverages, meter))

	reconIdx := spreadIndices(ap.ReconAlts, c.NumAlts)
	reconFAlts := make([]float64, len(reconIdx))
	for j, i := range reconIdx {
		reconFAlts[j] = falts[i]
	}
	res := &Result{Campaign: c}

	// Recon: coarse full-band pass, scored like the exhaustive campaign
	// but over the recon ladder subset.
	endRecon := run.Stage("recon")
	reconSpan := camp.Child("recon")
	reconCost := int64(len(reconIdx)) * reconAn.SweepCaptures(c.F1, c.F2)
	if !meter.Reserve(reconCost) {
		reconSpan.End()
		endRecon()
		camp.End()
		return nil, fmt.Errorf("core: adaptive Budget %d cannot fund the %d-capture recon pass", c.Budget, reconCost)
	}
	reconSpectra := r.sweepBand(reconAn, c, c.F1, c.F2, falts, reconIdx, reconSpan)
	res.Measurements = make([]Measurement, len(reconSpectra))
	for j, sp := range reconSpectra {
		res.Measurements[j] = Measurement{FAlt: reconFAlts[j], Spectrum: sp}
	}
	reconSmoothed := smoothPooled(reconSpectra, reconSmoothBins(c, ap.ReconFres))
	// All campaign harmonics are scored on the recon grid — cheap at
	// coarse resolution, and it gives every final detection full
	// per-harmonic provenance on the Result's score maps.
	res.Scores = make(map[int][]float64, len(c.Harmonics))
	res.Elevated = make(map[int][]int, len(c.Harmonics))
	for _, h := range c.Harmonics {
		res.Scores[h], res.Elevated[h] = ScoreDetail(reconSmoothed, reconFAlts, h, 2)
	}
	releaseSmoothed(reconSmoothed)
	cands := reconCandidates(res.Scores, res.Elevated, c.Harmonics, reconSpectra[0], c, ap)
	reconSpan.End()
	endRecon()
	reconUsed := meter.Used()

	// Refine: probe-gated full-resolution re-sweeps of the candidate
	// windows, highest recon priority first, under the budget.
	endRefine := run.Stage("refine")
	refineSpan := camp.Child("refine")
	windows := buildWindows(cands, c, falts)
	if ap.MaxWindows > 0 && len(windows) > ap.MaxWindows {
		sort.SliceStable(windows, func(a, b int) bool { return windows[a].priority > windows[b].priority })
		windows = windows[:ap.MaxWindows]
	}
	compIdx := complementIndices(reconIdx, c.NumAlts)
	for i := range windows {
		perSweep := refineAn.SweepCaptures(windows[i].f1, windows[i].f2)
		windows[i].probeCost = int64(len(reconIdx)) * perSweep
		windows[i].fullCost = int64(len(compIdx)) * perSweep
	}
	probeStash := make([][]*spectral.Spectrum, len(windows))
	windowDets := make([][]Detection, len(windows))
	probe := func(w refineWindow) float64 {
		sp := r.sweepBand(refineAn, c, w.f1, w.f2, falts, reconIdx, refineSpan)
		probeStash[w.idx] = sp
		sm := smoothPooled(sp, c.SmoothBins)
		best := 0.0
		for _, h := range probeHarmonics(c.Harmonics) {
			trace, _ := ScoreDetail(sm, reconFAlts, h, 2)
			for _, v := range trace {
				if v > best {
					best = v
				}
			}
		}
		releaseSmoothed(sm)
		r.Obs.Track(0).Emit(obs.Event{Kind: obs.EventWindowProbe,
			F1Hz: w.f1, F2Hz: w.f2, Priority: w.priority, Score: best})
		return best
	}
	refine := func(w refineWindow, _ float64) int {
		comp := r.sweepBand(refineAn, c, w.f1, w.f2, falts, compIdx, refineSpan)
		spectra := make([]*spectral.Spectrum, c.NumAlts)
		for j, i := range reconIdx {
			spectra[i] = probeStash[w.idx][j]
		}
		for j, i := range compIdx {
			spectra[i] = comp[j]
		}
		probeStash[w.idx] = nil
		wres := &Result{Campaign: c, Measurements: make([]Measurement, len(spectra))}
		for i, sp := range spectra {
			wres.Measurements[i] = Measurement{FAlt: falts[i], Spectrum: sp}
		}
		smoothed := smoothPooled(spectra, c.SmoothBins)
		wres.Scores = make(map[int][]float64, len(c.Harmonics))
		wres.Elevated = make(map[int][]int, len(c.Harmonics))
		for _, h := range c.Harmonics {
			wres.Scores[h], wres.Elevated[h] = ScoreDetail(smoothed, falts, h, 2)
		}
		dets := detect(wres, spectra, smoothed, falts)
		releaseSmoothed(smoothed)
		windowDets[w.idx] = dets
		return len(dets)
	}
	outcomes := scheduleRefinement(windows, meter, ap.abandonThreshold(c), probe, refine)
	refineSpan.End()
	endRefine()
	refineUsed := meter.Used() - reconUsed

	// Detect: merge the windows' detections globally — dedupe across
	// window boundaries, then one artifact-filter pass over the combined
	// set (a ghost's parent carrier may sit in a different window).
	endDetect := run.Stage("detect")
	detectSpan := camp.Child("detect")
	var all []Detection
	for _, dets := range windowDets {
		all = append(all, dets...)
	}
	res.Detections = dedupeDetections(all, c, falts)
	recon0 := reconSpectra[0]
	for i := range res.Detections {
		// Bins on the adaptive Result index the recon grid (its
		// Measurements), preserving Grid/provenance round-trips.
		res.Detections[i].Bin = recon0.Index(res.Detections[i].Freq)
	}
	detectSpan.End()
	endDetect()

	stats := &obs.AdaptiveStats{
		Budget:             int64(c.Budget),
		CapturesUsed:       meter.Used(),
		ExhaustiveCaptures: exhaustive,
		ReconCaptures:      reconUsed,
		RefineCaptures:     refineUsed,
		ReconFresHz:        ap.ReconFres,
		Candidates:         len(cands),
		Windows:            make([]obs.AdaptiveWindow, len(outcomes)),
	}
	for i, o := range outcomes {
		n := 0
		if o.outcome == obs.WindowRefined {
			for _, d := range res.Detections {
				if d.Freq >= o.window.f1 && d.Freq <= o.window.f2 {
					n++
				}
			}
		}
		stats.Windows[i] = obs.AdaptiveWindow{
			F1Hz: o.window.f1, F2Hz: o.window.f2, Priority: o.window.priority,
			Outcome: o.outcome, Captures: o.captures,
			ProbeScore: o.probeScore, Detections: n,
		}
		run.Track(0).Emit(obs.Event{Kind: obs.EventWindowOutcome,
			F1Hz: o.window.f1, F2Hz: o.window.f2, Priority: o.window.priority,
			Outcome: o.outcome, Captures: o.captures,
			Score: o.probeScore, Detections: n})
		switch o.outcome {
		case obs.WindowRefined:
			adaptiveRefinedTotal.Inc()
		case obs.WindowAbandoned:
			adaptiveAbandonedTotal.Inc()
		default:
			adaptiveSkippedTotal.Inc()
		}
	}
	res.Captures = meter.Used()
	res.SimulatedSeconds = float64(reconUsed)*reconAn.CaptureDuration() +
		float64(refineUsed)*refineAn.CaptureDuration()
	res.Adaptive = stats
	detectionsTotal.Add(int64(len(res.Detections)))
	emitDetections(run, res, c)
	run.Track(0).Emit(obs.Event{Kind: obs.EventCampaignEnd,
		Captures: meter.Used(), Detections: len(res.Detections)})
	camp.End()
	if run != nil {
		if m := run.Finish(manifestConfig(c), res.SimulatedSeconds, provenance(res, c)); m != nil {
			m.Adaptive = stats
		}
	}
	return res, nil
}

// dedupeDetections merges detections gathered from separate refinement
// windows: highest score wins within the merge radius (in Hz — bins are
// window-local here), then the combined set takes one global artifact-
// filter pass and sorts by frequency, exactly like the exhaustive
// detect.
func dedupeDetections(all []Detection, c Campaign, falts []float64) []Detection {
	sort.Slice(all, func(a, b int) bool { return all[a].Score > all[b].Score })
	tol := float64(c.MergeBins) * c.Fres
	var merged []Detection
	for _, d := range all {
		dup := -1
		for mi := range merged {
			if math.Abs(d.Freq-merged[mi].Freq) <= tol {
				dup = mi
				break
			}
		}
		if dup >= 0 {
			for _, h := range d.Harmonics {
				if !containsInt(merged[dup].Harmonics, h) {
					merged[dup].Harmonics = append(merged[dup].Harmonics, h)
				}
			}
			continue
		}
		merged = append(merged, d)
	}
	merged = filterArtifacts(merged, c, falts)
	sort.Slice(merged, func(a, b int) bool { return merged[a].Freq < merged[b].Freq })
	return merged
}
