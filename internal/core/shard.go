package core

import (
	"context"
	"fmt"

	"fase/internal/dsp/bufpool"
	"fase/internal/dsp/spectral"
	"fase/internal/microbench"
	"fase/internal/obs"
	"fase/internal/specan"
)

// ShardPlan is an exhaustive campaign decomposed into its natural unit of
// distribution: one shard per ladder sweep. FASE's bit-identical
// seeded-capture design means every shard derives its child seed from the
// campaign seed and its ladder index alone, so shards can render on any
// worker — in any interleaving, on any analyzer — and reducing them in
// fixed ladder order reproduces the single-process result byte for byte.
// Runner.RunE and the campaign service (internal/service) both execute
// through this API, which is what makes the service's sharded path
// bit-identical to the serial one by construction rather than by test.
type ShardPlan struct {
	// Campaign is the defaults-resolved configuration (withDefaults
	// applied); manifestConfig over it matches what RunE would record.
	Campaign Campaign
	// FAlts is the alternation-frequency ladder; shard i renders FAlts[i].
	FAlts []float64
	// Captures and SimulatedSeconds are the campaign totals, filled in by
	// Begin once an analyzer exists to price the sweeps.
	Captures         int64
	SimulatedSeconds float64
}

// PlanShards validates the campaign and decomposes it into ladder-sweep
// shards. Adaptive campaigns are rejected: their capture schedule is
// decided at run time by the budget planner, so they have no static shard
// decomposition (the service runs them as a single unsharded task).
func PlanShards(c Campaign) (*ShardPlan, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.Adaptive != nil {
		return nil, fmt.Errorf("core: adaptive campaigns cannot be sharded (capture schedule is decided at run time)")
	}
	c = c.withDefaults()
	return &ShardPlan{Campaign: c, FAlts: c.FAlts()}, nil
}

// AnalyzerConfig is the specan configuration RunE would build for this
// campaign. Callers running shards on separate analyzers (one per worker)
// should override Parallelism to 1 and share a specan.StaticCache via
// Config.Statics so the fleet, not each analyzer, bounds concurrency
// while cross-sweep static-layer reuse still works.
func (p *ShardPlan) AnalyzerConfig(run *obs.Run) specan.Config {
	c := p.Campaign
	return specan.Config{Fres: c.Fres, Averages: c.Averages, Parallelism: c.Parallelism,
		MaxFFT: c.MaxFFT,
		NoPlan: c.NoPlan, ReuseStatic: !c.NoReuse, NoSegment: c.NoSegment,
		Faults: c.Faults, Obs: run}
}

// Begin prices the campaign against an analyzer (any analyzer built from
// AnalyzerConfig — capture counts depend only on the configuration),
// records the totals on the run, and emits the campaign_start event.
// It also counts the campaign: Begin is called exactly once per
// exhaustive campaign, whichever path executes it.
func (p *ShardPlan) Begin(an *specan.Analyzer, run *obs.Run) {
	c := p.Campaign
	p.Captures = int64(len(p.FAlts)) * an.SweepCaptures(c.F1, c.F2)
	p.SimulatedSeconds = float64(len(p.FAlts)) * an.TotalDuration(c.F1, c.F2)
	campaignsTotal.Inc()
	run.SetTotals(p.Captures, int64(len(p.FAlts)), p.SimulatedSeconds)
	run.Track(0).Emit(obs.Event{Kind: obs.EventCampaignStart, Name: "exhaustive",
		F1Hz: c.F1, F2Hz: c.F2, Total: p.Captures})
}

// RenderShard renders ladder sweep i on the given analyzer and returns
// its measurement. The shard's micro-benchmark seed is derived exactly as
// the serial path derives it — c.Seed + i·104729 — and its journal events
// land on track 1+i, so the canonical journal is identical however shards
// are scheduled. ctx, when non-nil, cooperatively cancels the shard
// mid-render (see specan.Request.Ctx); a cancelled shard's measurement is
// partial garbage and must be discarded, never reduced.
func (r *Runner) RenderShard(ctx context.Context, an *specan.Analyzer, p *ShardPlan, i int, run *obs.Run, parent obs.Span) Measurement {
	c := p.Campaign
	fa := p.FAlts[i]
	// Under fault injection the micro-benchmark's clock may drift: the
	// generated alternation runs at fa·(1+ε) while scoring still probes
	// the nominal ladder.
	faGen := fa * (1 + c.Faults.DriftFor(c.Seed+int64(i)*104729))
	tr := microbench.Generate(microbench.Config{
		X: c.X, Y: c.Y, FAlt: faGen, Jitter: *c.Jitter,
		Seed: c.Seed + int64(i)*104729,
	}, an.TotalDuration(c.F1, c.F2)+0.05)
	// Journal track 1+i belongs to this ladder index: events within it
	// are sequential, so the canonical journal is identical at any
	// parallelism and any shard placement.
	jt := run.Track(1 + int64(i))
	jt.Emit(obs.Event{Kind: obs.EventSweepPlan, FAltHz: fa, F1Hz: c.F1, F2Hz: c.F2})
	sp := an.Sweep(specan.Request{
		Scene: r.Scene, F1: c.F1, F2: c.F2, Activity: tr,
		Seed:      c.Seed,
		NearField: r.NearField, NearFieldGainDB: r.NearFieldGainDB,
		Span:   parent,
		Events: jt,
		Ctx:    ctx,
	})
	return Measurement{FAlt: fa, Spectrum: sp}
}

// ReduceShards merges the campaign's shard measurements — which must be
// ordered by ladder index, ms[i] from RenderShard(i) — through the
// smooth/score/detect stages and finalizes the run manifest. The reduce
// is pure fixed-order computation over the spectra, so where the shards
// rendered is invisible to it.
func (r *Runner) ReduceShards(p *ShardPlan, ms []Measurement, run *obs.Run, camp obs.Span) (*Result, error) {
	c := p.Campaign
	if len(ms) != len(p.FAlts) {
		return nil, fmt.Errorf("core: ReduceShards got %d measurements for %d shards", len(ms), len(p.FAlts))
	}
	res := &Result{Campaign: c, Measurements: ms,
		SimulatedSeconds: p.SimulatedSeconds, Captures: p.Captures}
	falts := p.FAlts
	endSmooth := run.Stage("smooth")
	smoothSpan := camp.Child("smooth")
	spectra := make([]*spectral.Spectrum, len(res.Measurements))
	smoothed := make([]*spectral.Spectrum, len(res.Measurements))
	for i, m := range res.Measurements {
		spectra[i] = m.Spectrum
		// Smoothed spectra are scoring scratch, released after detection;
		// their bin buffers come from the shared pool.
		smoothed[i] = &spectral.Spectrum{PmW: bufpool.Float(m.Spectrum.Bins())}
		SmoothSpectrumInto(smoothed[i], m.Spectrum, c.SmoothBins)
	}
	smoothSpan.End()
	endSmooth()
	endScore := run.Stage("score")
	scoreSpan := camp.Child("score")
	res.Scores = make(map[int][]float64, len(c.Harmonics))
	res.Elevated = make(map[int][]int, len(c.Harmonics))
	for _, h := range c.Harmonics {
		res.Scores[h], res.Elevated[h] = ScoreDetail(smoothed, falts, h, 2)
	}
	scoreSpan.End()
	endScore()
	endDetect := run.Stage("detect")
	detectSpan := camp.Child("detect")
	res.Detections = detect(res, spectra, smoothed, falts)
	detectSpan.End()
	endDetect()
	for _, sp := range smoothed {
		bufpool.PutFloat(sp.PmW)
		sp.PmW = nil
	}
	detectionsTotal.Add(int64(len(res.Detections)))
	emitDetections(run, res, c)
	run.Track(0).Emit(obs.Event{Kind: obs.EventCampaignEnd,
		Captures: res.Captures, Detections: len(res.Detections)})
	camp.End()
	if run != nil {
		run.Finish(manifestConfig(c), res.SimulatedSeconds, provenance(res, c))
	}
	return res, nil
}

// ResolvedConfig validates the campaign and returns its defaults-resolved
// manifest configuration — the same record RunE stores in the run
// manifest and runstore hashes for content addressing. Services use it to
// compute a submission's identity before (and independent of) running it.
func (c Campaign) ResolvedConfig() (any, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return manifestConfig(c.withDefaults()), nil
}
