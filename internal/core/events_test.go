package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"fase/internal/activity"
	"fase/internal/machine"
	"fase/internal/obs"
)

// normalizedJournal renders a journal in canonical order with the two
// nondeterministic wall-clock fields (t, wall_seconds) zeroed, so
// byte-equality means event-content equality.
func normalizedJournal(t *testing.T, j *obs.Journal) []byte {
	t.Helper()
	evs := j.CanonicalEvents()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "{\"schema\":%q,\"events\":%d}\n", obs.JournalSchema, len(evs))
	for i := range evs {
		evs[i].T = 0
		evs[i].WallSeconds = 0
		line, err := json.Marshal(&evs[i])
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestEventJournalEquivalence pins the journal's determinism claim: the
// canonical event stream (timestamps zeroed) must be byte-identical
// across serial vs parallel rendering and cached vs uncached sweeps,
// for both the exhaustive and the adaptive planner. Runs under -race via
// `make equivalence`, which also hammers the concurrent emission paths.
func TestEventJournalEquivalence(t *testing.T) {
	sys := machine.IntelCoreI7Desktop()
	base := Campaign{
		F1: 0.25e6, F2: 0.55e6, Fres: 200,
		FAlt1: 43.3e3, FDelta: 1e3,
		X: activity.LDM, Y: activity.LDL1, Seed: 21,
	}
	adaptive := base
	adaptive.MaxFFT = 2048
	adaptive.Budget = 30
	adaptive.Adaptive = &AdaptivePlan{}

	for _, plan := range []struct {
		name string
		c    Campaign
	}{{"exhaustive", base}, {"adaptive", adaptive}} {
		t.Run(plan.name, func(t *testing.T) {
			variants := []struct {
				name        string
				parallelism int
				noReuse     bool
			}{
				{"serial-cached", 1, false},
				{"serial-uncached", 1, true},
				{"parallel-cached", 0, false},
				{"parallel-uncached", 0, true},
			}
			var want []byte
			var wantName string
			for _, v := range variants {
				c := plan.c
				c.Parallelism = v.parallelism
				c.NoReuse = v.noReuse
				run := obs.NewRun()
				run.Journal = obs.NewJournal()
				if _, err := (&Runner{Scene: sys.Scene(21, true), Obs: run}).RunE(c); err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				got := normalizedJournal(t, run.Journal)
				if err := obs.ValidateJournal(got); err != nil {
					t.Fatalf("%s: journal invalid: %v", v.name, err)
				}
				if want == nil {
					want, wantName = got, v.name
					continue
				}
				if !bytes.Equal(got, want) {
					t.Errorf("journal differs between %s and %s:\n%s",
						wantName, v.name, journalDiff(want, got))
				}
			}
			if len(want) == 0 {
				t.Fatal("no journal produced")
			}
		})
	}
}

// journalDiff reports the first differing line between two journals.
func journalDiff(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
