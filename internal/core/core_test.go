package core

import (
	"encoding/json"
	"math"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"fase/internal/activity"
	"fase/internal/dsp/spectral"
	"fase/internal/emsim"
	"fase/internal/machine"
	"fase/internal/obs"
)

// synthSpectra builds N flat spectra with a static carrier at carrierBin
// and, when modulated, side-bands that move with each measurement's falt.
func synthSpectra(n, bins, carrierBin int, fres float64, falts []float64, modulated bool) []*spectral.Spectrum {
	r := rand.New(rand.NewSource(7))
	out := make([]*spectral.Spectrum, n)
	for i := 0; i < n; i++ {
		s := spectral.New(0, fres, bins)
		for k := range s.PmW {
			s.PmW[k] = 1e-15 * (0.8 + 0.4*r.Float64()) // floor with ripple
		}
		s.PmW[carrierBin] += 1e-11 // static carrier in every measurement
		if modulated {
			shift := int(math.Round(falts[i] / fres))
			for _, sb := range []int{carrierBin + shift, carrierBin - shift} {
				if sb >= 0 && sb < bins {
					s.PmW[sb] += 1e-13 // side-band at ±falt_i
				}
			}
		}
		out[i] = s
	}
	return out
}

var testFalts = []float64{43300, 43800, 44300, 44800, 45300}

func TestScoreSpikesAtModulatedCarrier(t *testing.T) {
	fres := 50.0
	bins := 4000
	carrier := 2000
	sp := synthSpectra(5, bins, carrier, fres, testFalts, true)
	for _, h := range []int{1, -1} {
		sc := Score(sp, testFalts, h)
		// Peak at the carrier bin.
		best, bv := 0, 0.0
		for k, v := range sc {
			if v > bv {
				best, bv = k, v
			}
		}
		if best != carrier {
			t.Errorf("h=%d: peak at bin %d, want %d", h, best, carrier)
		}
		if bv < 1000 {
			t.Errorf("h=%d: peak score %g too small", h, bv)
		}
	}
}

func TestScoreFlatForUnmodulatedCarrier(t *testing.T) {
	fres := 50.0
	sp := synthSpectra(5, 4000, 2000, fres, testFalts, false)
	sc := Score(sp, testFalts, 1)
	for k, v := range sc {
		if v > 20 {
			t.Errorf("unmodulated: score %g at bin %d", v, k)
		}
	}
}

func TestScoreIdenticalSpectraIsUnity(t *testing.T) {
	// Property: if all measurements are identical, every in-range score
	// is exactly 1 (numerator equals the leave-one-out mean).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bins := 200 + r.Intn(200)
		base := spectral.New(0, 100, bins)
		for k := range base.PmW {
			base.PmW[k] = r.Float64() + 0.1
		}
		sp := make([]*spectral.Spectrum, 4)
		falts := make([]float64, 4)
		for i := range sp {
			sp[i] = base.Clone()
			falts[i] = 2000 + 100*float64(i)
		}
		sc := Score(sp, falts, 1)
		for _, v := range sc {
			if math.Abs(v-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestScoreObscuredSidebandsStillDetect(t *testing.T) {
	// §2.3: even with several side-bands buried, remaining sub-scores
	// raise the product well above the flat baseline.
	fres := 50.0
	bins := 4000
	carrier := 2000
	sp := synthSpectra(5, bins, carrier, fres, testFalts, true)
	// Obscure the +falt side-band of measurements 0 and 1 with a strong
	// interferer present in all spectra at those frequencies.
	for _, i := range []int{0, 1} {
		bin := carrier + int(math.Round(testFalts[i]/fres))
		for j := range sp {
			sp[j].PmW[bin] += 1e-10
		}
	}
	sc := Score(sp, testFalts, 1)
	if sc[carrier] < 100 {
		t.Errorf("obscured-side-band score %g, want > 100", sc[carrier])
	}
}

func TestScoreHigherHarmonicSpacing(t *testing.T) {
	// Side-bands at ±2·falt_i are found by h=±2, not h=±1.
	fres := 50.0
	bins := 6000
	carrier := 3000
	r := rand.New(rand.NewSource(9))
	sp := make([]*spectral.Spectrum, 5)
	for i := range sp {
		s := spectral.New(0, fres, bins)
		for k := range s.PmW {
			s.PmW[k] = 1e-15 * (0.8 + 0.4*r.Float64())
		}
		shift := 2 * int(math.Round(testFalts[i]/fres))
		s.PmW[carrier+shift] += 1e-13
		sp[i] = s
	}
	sc2 := Score(sp, testFalts, 2)
	sc1 := Score(sp, testFalts, 1)
	if sc2[carrier] < 1000 {
		t.Errorf("h=2 score %g at carrier, want large", sc2[carrier])
	}
	if sc1[carrier] > sc2[carrier]/100 {
		t.Errorf("h=1 score %g should be far below h=2 %g", sc1[carrier], sc2[carrier])
	}
}

// TestScoreShiftInvariance: translating every measurement's bins by the
// same offset translates the score trace by that offset (away from the
// edges) — the heuristic has no preferred absolute frequency.
func TestScoreShiftInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bins := 3000
		shift := 1 + r.Intn(40)
		falts := []float64{20e3, 21e3, 22e3}
		base := make([]*spectral.Spectrum, 3)
		moved := make([]*spectral.Spectrum, 3)
		for i := range base {
			b := spectral.New(0, 50, bins)
			m := spectral.New(0, 50, bins)
			vals := make([]float64, bins)
			for k := range vals {
				vals[k] = r.Float64() + 0.01
			}
			for k := 0; k < bins; k++ {
				b.PmW[k] = vals[k]
				if k+shift < bins {
					m.PmW[k+shift] = vals[k]
				} else {
					m.PmW[k+shift-bins] = vals[k]
				}
			}
			base[i], moved[i] = b, m
		}
		sb := Score(base, falts, 1)
		sm := Score(moved, falts, 1)
		// Compare interior bins.
		for k := 500; k < bins-500-shift; k++ {
			if math.Abs(sb[k]-sm[k+shift]) > 1e-9*(sb[k]+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestGroupHarmonicsPartition: grouping covers every detection exactly
// once and each member's frequency matches its order × fundamental.
func TestGroupHarmonicsPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var dets []Detection
		n := 1 + r.Intn(12)
		for i := 0; i < n; i++ {
			dets = append(dets, Detection{Freq: 50e3 + r.Float64()*2e6})
		}
		sets := GroupHarmonics(dets, 0.004)
		total := 0
		for _, s := range sets {
			if len(s.Members) != len(s.Orders) {
				return false
			}
			total += len(s.Members)
			for i, m := range s.Members {
				want := float64(s.Orders[i]) * s.Fundamental
				if math.Abs(m.Freq-want) > 0.01*m.Freq {
					return false
				}
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestScorePanics(t *testing.T) {
	sp := synthSpectra(2, 100, 50, 50, testFalts[:2], false)
	mustPanic(t, func() { Score(sp[:1], testFalts[:1], 1) })
	mustPanic(t, func() { Score(sp, testFalts[:3], 1) })
	mustPanic(t, func() { Score(sp, testFalts[:2], 0) })
	bad := []*spectral.Spectrum{sp[0], spectral.New(10, 50, 100)}
	mustPanic(t, func() { Score(bad, testFalts[:2], 1) })
}

func TestSmoothSpectrum(t *testing.T) {
	s := spectral.New(0, 1, 11)
	s.PmW[5] = 11
	sm := SmoothSpectrum(s, 5)
	// Mean preserved away from edges; impulse spread over 5 bins.
	for k := 3; k <= 7; k++ {
		if math.Abs(sm.PmW[k]-11.0/5) > 1e-12 {
			t.Errorf("smoothed bin %d = %g, want 2.2", k, sm.PmW[k])
		}
	}
	if sm.PmW[2] != 0 || sm.PmW[8] != 0 {
		t.Error("smoothing leaked beyond window")
	}
	// Width 1 and below: identity copy.
	id := SmoothSpectrum(s, 1)
	for k := range s.PmW {
		if id.PmW[k] != s.PmW[k] {
			t.Fatal("width-1 smoothing should be identity")
		}
	}
	id.PmW[0] = 99
	if s.PmW[0] == 99 {
		t.Error("SmoothSpectrum must not alias its input")
	}
	// Even width is promoted to odd, constant stays constant.
	c := spectral.New(0, 1, 32)
	for k := range c.PmW {
		c.PmW[k] = 3
	}
	cs := SmoothSpectrum(c, 4)
	for k := 2; k < 30; k++ {
		if math.Abs(cs.PmW[k]-3) > 1e-12 {
			t.Errorf("constant not preserved at %d: %g", k, cs.PmW[k])
		}
	}
}

func TestFAltsLadder(t *testing.T) {
	c := Campaign{FAlt1: 43.3e3, FDelta: 0.5e3}
	got := c.FAlts()
	want := testFalts
	if len(got) != 5 {
		t.Fatalf("ladder size %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("falt[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestPaperCampaigns(t *testing.T) {
	cs := PaperCampaigns(activity.LDM, activity.LDL1)
	if len(cs) != 3 {
		t.Fatalf("want 3 campaigns (Figure 10)")
	}
	// Figure 10 rows.
	if cs[0].Fres != 50 || cs[0].FAlt1 != 43.3e3 || cs[0].FDelta != 0.5e3 {
		t.Error("campaign 1 parameters wrong")
	}
	if cs[1].Fres != 500 || cs[1].FAlt1 != 43.3e3 || cs[1].FDelta != 5e3 {
		t.Error("campaign 2 parameters wrong")
	}
	if cs[2].Fres != 500 || cs[2].FAlt1 != 1.8e6 || cs[2].FDelta != 100e3 {
		t.Error("campaign 3 parameters wrong")
	}
	if cs[2].F2 != 1200e6 {
		t.Error("campaign 3 must reach 1.2 GHz")
	}
}

func TestCampaignDefaultsAndValidation(t *testing.T) {
	c := Campaign{FAlt1: 40e3, FDelta: 1e3, Fres: 100}.withDefaults()
	if c.NumAlts != 5 || c.Averages != 4 || c.MinScore != 30 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if len(c.Harmonics) != 10 {
		t.Errorf("default harmonics: %v", c.Harmonics)
	}
	if c.SmoothBins != 9 {
		t.Errorf("adaptive smooth bins = %d, want 9 for fΔ/fres = 10", c.SmoothBins)
	}
	c2 := Campaign{FAlt1: 40e3, FDelta: 0.5e3, Fres: 100}.withDefaults()
	if c2.SmoothBins != 3 {
		t.Errorf("adaptive smooth bins = %d, want 3 for fΔ/fres = 5", c2.SmoothBins)
	}
	// Misconfiguration is reported by Validate (and RunE), not by panics
	// buried in withDefaults.
	bad := []Campaign{
		{FAlt1: 0, FDelta: 1, Fres: 100, F1: 0, F2: 1e5},            // no alternation frequency
		{FAlt1: 1e3, FDelta: 1e3, NumAlts: 1, Fres: 100, F2: 1e5},   // single measurement
		{FAlt1: 1e3, FDelta: 1e3, Fres: 0, F2: 1e5},                 // no resolution
		{FAlt1: 1e3, FDelta: 1e3, Fres: 100, F1: 1e6, F2: 1e5},      // inverted range
		{FAlt1: 1e3, FDelta: 1e3, Fres: 100, F1: 1e5, F2: 1e5},      // empty range
		{FAlt1: 1e3, FDelta: 1e3, Fres: 100, F2: 1e5, MinScore: -2}, // negative threshold
		{FAlt1: 1e3, FDelta: 1e3, Fres: 100, F2: 1e5, Averages: -1}, // negative averages
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad campaign %d validated: %+v", i, c)
		}
		if _, err := (&Runner{Scene: &emsim.Scene{}}).RunE(c); err == nil {
			t.Errorf("RunE accepted bad campaign %d", i)
		}
	}
	if err := (Campaign{FAlt1: 1e3, FDelta: 1e3, Fres: 100, F2: 1e5, MinScore: MinScoreZero}).Validate(); err != nil {
		t.Errorf("MinScoreZero sentinel rejected: %v", err)
	}
	// The sentinel resolves to a literal zero threshold, while a zero
	// MinScore still means "default".
	if got := (Campaign{MinScore: MinScoreZero}).withDefaults().MinScore; got != 0 {
		t.Errorf("MinScoreZero resolved to %g, want 0", got)
	}
	if got := (Campaign{}).withDefaults().MinScore; got != 30 {
		t.Errorf("zero MinScore resolved to %g, want default 30", got)
	}
	// A Runner without a Scene is an error from RunE and a panic from Run.
	if _, err := (&Runner{}).RunE(Campaign{FAlt1: 1e3, FDelta: 1e3, Fres: 100, F1: 0, F2: 1e5}); err == nil {
		t.Error("RunE accepted a Runner without a Scene")
	}
	mustPanic(t, func() { (&Runner{}).Run(Campaign{FAlt1: 1e3, FDelta: 1e3, Fres: 100, F1: 0, F2: 1e5}) })
}

// regulatorScene builds a small scene with the i7's regulators + refresh.
func regulatorScene() (*machine.System, *emsim.Scene) {
	sys := machine.IntelCoreI7Desktop()
	scene := &emsim.Scene{}
	scene.Add(sys.MemRegulator, sys.MemCtlRegulator, sys.CoreRegulator, sys.Refresh)
	scene.Add(&emsim.Background{FloorDBmPerHz: -172})
	return sys, scene
}

func TestCampaignEndToEndMemoryPair(t *testing.T) {
	_, scene := regulatorScene()
	runner := &Runner{Scene: scene}
	res := runner.Run(Campaign{
		F1: 0.25e6, F2: 0.55e6, Fres: 100,
		FAlt1: 43.3e3, FDelta: 1e3,
		X: activity.LDM, Y: activity.LDL1, Seed: 21,
	})
	wantCarriers := []float64{315e3, 475e3, 512e3}
	if len(res.Detections) != len(wantCarriers) {
		t.Fatalf("detections: %+v", res.Detections)
	}
	for i, want := range wantCarriers {
		d := res.Detections[i]
		if math.Abs(d.Freq-want) > 500 {
			t.Errorf("detection %d at %.1f kHz, want %.1f", i, d.Freq/1e3, want/1e3)
		}
		if d.Score < 30 {
			t.Errorf("detection %d score %g", i, d.Score)
		}
	}
	// The core regulator (332.5 kHz) must NOT be detected: LDM and LDL1
	// load the cores equally.
	for _, d := range res.Detections {
		if math.Abs(d.Freq-332.5e3) < 2e3 {
			t.Error("core regulator falsely detected under LDM/LDL1")
		}
	}
}

// TestCampaignObservabilityEquivalence runs the same campaign bare and
// fully instrumented (run + tracer) and requires bit-identical spectra
// and detections — observability must watch the pipeline, never steer
// it. It then checks the manifest the instrumented run produced: valid
// against the schema, stage walls summing to the total, planner skips
// non-zero for the full i7-desktop scene, and per-detection provenance.
func TestCampaignObservabilityEquivalence(t *testing.T) {
	sys := machine.IntelCoreI7Desktop()
	c := Campaign{
		F1: 0.25e6, F2: 0.55e6, Fres: 200,
		FAlt1: 43.3e3, FDelta: 1e3,
		X: activity.LDM, Y: activity.LDL1, Seed: 21,
	}
	bare, err := (&Runner{Scene: sys.Scene(21, true)}).RunE(c)
	if err != nil {
		t.Fatal(err)
	}
	run := obs.NewRun()
	run.Tracer = obs.NewTracer()
	inst, err := (&Runner{Scene: sys.Scene(21, true), Obs: run}).RunE(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Measurements) != len(bare.Measurements) {
		t.Fatal("measurement count differs under instrumentation")
	}
	for i := range bare.Measurements {
		a, b := bare.Measurements[i].Spectrum, inst.Measurements[i].Spectrum
		for k := range a.PmW {
			if math.Float64bits(a.PmW[k]) != math.Float64bits(b.PmW[k]) {
				t.Fatalf("measurement %d bin %d differs under instrumentation", i, k)
			}
		}
	}
	if len(inst.Detections) != len(bare.Detections) {
		t.Fatalf("detections differ: %d vs %d", len(inst.Detections), len(bare.Detections))
	}
	for i := range bare.Detections {
		if bare.Detections[i].Freq != inst.Detections[i].Freq || bare.Detections[i].Score != inst.Detections[i].Score {
			t.Errorf("detection %d differs under instrumentation", i)
		}
	}
	m := run.Manifest()
	if m == nil {
		t.Fatal("instrumented run produced no manifest")
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateManifest(data); err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	names := make([]string, len(m.Stages))
	for i, st := range m.Stages {
		names[i] = st.Name
	}
	if !slices.Equal(names, []string{"sweeps", "smooth", "score", "detect"}) {
		t.Errorf("stages %v", names)
	}
	if m.Planner.ComponentsSkipped == 0 || m.Planner.RenderSkips == 0 {
		t.Errorf("planner skips must be non-zero for the i7-desktop scene: %+v", m.Planner)
	}
	if m.Captures == 0 || m.RenderSeconds <= 0 {
		t.Errorf("capture accounting empty: captures=%d render=%gs", m.Captures, m.RenderSeconds)
	}
	if m.SimulatedAnalyzerSeconds != inst.SimulatedSeconds || inst.SimulatedSeconds <= 0 {
		t.Errorf("simulated time %g vs result %g", m.SimulatedAnalyzerSeconds, inst.SimulatedSeconds)
	}
	if len(m.Detections) != len(inst.Detections) {
		t.Fatalf("manifest has %d detections, result %d", len(m.Detections), len(inst.Detections))
	}
	for i, d := range m.Detections {
		if len(d.SubScores) != len(inst.Campaign.Harmonics) {
			t.Errorf("detection %d: %d sub-scores, want %d", i, len(d.SubScores), len(inst.Campaign.Harmonics))
		}
		best := d.SubScores[0].Score
		for _, s := range d.SubScores {
			if s.Harmonic == d.BestHarmonic {
				best = s.Score
			}
		}
		if math.Abs(best-d.Score) > 1e-9*math.Abs(d.Score) {
			t.Errorf("detection %d: best-harmonic sub-score %g != score %g", i, best, d.Score)
		}
	}
	// The tracer saw the campaign, its stages, and every sweep/capture.
	kinds := map[string]int{}
	for _, e := range run.Tracer.Events() {
		kinds[e.Name]++
	}
	if kinds["campaign"] != 1 || kinds["sweeps"] != 1 || kinds["sweep"] != inst.Campaign.NumAlts || kinds["capture"] != int(m.Captures) {
		t.Errorf("trace events: %v (captures=%d)", kinds, m.Captures)
	}
}

func TestCampaignEndToEndOnChipPair(t *testing.T) {
	_, scene := regulatorScene()
	runner := &Runner{Scene: scene}
	res := runner.Run(Campaign{
		F1: 0.25e6, F2: 0.55e6, Fres: 100,
		FAlt1: 43.3e3, FDelta: 1e3,
		X: activity.LDL2, Y: activity.LDL1, Seed: 22,
	})
	if len(res.Detections) != 1 {
		t.Fatalf("want exactly the core regulator, got %+v", res.Detections)
	}
	if math.Abs(res.Detections[0].Freq-332.5e3) > 500 {
		t.Errorf("detected %.1f kHz, want 332.5", res.Detections[0].Freq/1e3)
	}
}

func TestCampaignControlPairFindsNothing(t *testing.T) {
	_, scene := regulatorScene()
	runner := &Runner{Scene: scene}
	res := runner.Run(Campaign{
		F1: 0.25e6, F2: 0.55e6, Fres: 100,
		FAlt1: 43.3e3, FDelta: 1e3,
		X: activity.LDL1, Y: activity.LDL1, Seed: 23,
	})
	if len(res.Detections) != 0 {
		t.Errorf("LDL1/LDL1 control should detect nothing, got %+v", res.Detections)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	_, scene := regulatorScene()
	runner := &Runner{Scene: scene}
	c := Campaign{F1: 0.3e6, F2: 0.34e6, Fres: 100,
		FAlt1: 10e3, FDelta: 1e3, X: activity.LDM, Y: activity.LDL1, Seed: 24}
	a := runner.Run(c)
	b := runner.Run(c)
	if len(a.Detections) != len(b.Detections) {
		t.Fatal("non-deterministic detection count")
	}
	for i := range a.Detections {
		if a.Detections[i].Freq != b.Detections[i].Freq || a.Detections[i].Score != b.Detections[i].Score {
			t.Fatal("non-deterministic detections")
		}
	}
}

func TestCampaignParallelismInvariant(t *testing.T) {
	// A campaign's output must not depend on the Parallelism knob: every
	// measurement spectrum and every detection must match a Parallelism-1
	// run bit for bit.
	_, scene := regulatorScene()
	runner := &Runner{Scene: scene}
	run := func(par int) *Result {
		return runner.Run(Campaign{F1: 0.3e6, F2: 0.34e6, Fres: 100,
			FAlt1: 10e3, FDelta: 1e3, X: activity.LDM, Y: activity.LDL1,
			Seed: 24, Parallelism: par})
	}
	seq := run(1)
	par := run(4)
	for i, m := range par.Measurements {
		want := seq.Measurements[i].Spectrum
		if m.Spectrum.Bins() != want.Bins() {
			t.Fatalf("measurement %d: %d bins, want %d", i, m.Spectrum.Bins(), want.Bins())
		}
		for k := range m.Spectrum.PmW {
			if math.Float64bits(m.Spectrum.PmW[k]) != math.Float64bits(want.PmW[k]) {
				t.Fatalf("measurement %d bin %d differs between Parallelism 4 and 1", i, k)
			}
		}
	}
	if len(par.Detections) != len(seq.Detections) {
		t.Fatalf("detections: %d parallel vs %d sequential", len(par.Detections), len(seq.Detections))
	}
	for i := range par.Detections {
		a, b := par.Detections[i], seq.Detections[i]
		if a.Freq != b.Freq || a.Score != b.Score || a.BestHarmonic != b.BestHarmonic ||
			a.MagnitudeDBm != b.MagnitudeDBm || a.DepthDB != b.DepthDB ||
			!slices.Equal(a.Harmonics, b.Harmonics) {
			t.Fatalf("detection %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestGroupHarmonics(t *testing.T) {
	dets := []Detection{
		{Freq: 315.02e3}, {Freq: 630.1e3}, {Freq: 944.9e3},
		{Freq: 512e3}, {Freq: 1024.05e3},
		{Freq: 777e3},
	}
	sets := GroupHarmonics(dets, 0.004)
	if len(sets) != 3 {
		t.Fatalf("sets = %d: %+v", len(sets), sets)
	}
	var reg, refresh, lone *HarmonicSet
	for i := range sets {
		switch len(sets[i].Members) {
		case 3:
			reg = &sets[i]
		case 2:
			refresh = &sets[i]
		case 1:
			lone = &sets[i]
		}
	}
	if reg == nil || refresh == nil || lone == nil {
		t.Fatalf("unexpected set sizes: %+v", sets)
	}
	if math.Abs(reg.Fundamental-315e3) > 500 {
		t.Errorf("regulator fundamental %g", reg.Fundamental)
	}
	if reg.Orders[0] != 1 || reg.Orders[1] != 2 || reg.Orders[2] != 3 {
		t.Errorf("regulator orders %v", reg.Orders)
	}
	if math.Abs(refresh.Fundamental-512e3) > 500 {
		t.Errorf("refresh fundamental %g", refresh.Fundamental)
	}
	if lone.Members[0].Freq != 777e3 {
		t.Errorf("lone member %g", lone.Members[0].Freq)
	}
}

func TestGroupHarmonicsEmpty(t *testing.T) {
	if sets := GroupHarmonics(nil, 0); sets != nil {
		t.Errorf("empty input should give no sets, got %+v", sets)
	}
}

func TestClassify(t *testing.T) {
	mem := &Result{
		Campaign:   Campaign{X: activity.LDM, Y: activity.LDL1},
		Detections: []Detection{{Freq: 315e3, Score: 100}, {Freq: 512e3, Score: 50}},
	}
	chip := &Result{
		Campaign:   Campaign{X: activity.LDL2, Y: activity.LDL1},
		Detections: []Detection{{Freq: 332.5e3, Score: 80}, {Freq: 315.2e3, Score: 60}},
	}
	cc := Classify(mem, chip, 1e3)
	if len(cc) != 3 {
		t.Fatalf("classified = %+v", cc)
	}
	byFreq := map[float64]ClassifiedCarrier{}
	for _, c := range cc {
		byFreq[math.Round(c.Freq/1e3)] = c
	}
	if byFreq[315].Class != BothRelated {
		t.Errorf("315 kHz class %v, want both", byFreq[315].Class)
	}
	if byFreq[512].Class != MemoryRelated {
		t.Errorf("512 kHz class %v", byFreq[512].Class)
	}
	if byFreq[333].Class != OnChipRelated {
		t.Errorf("332.5 kHz class %v", byFreq[333].Class)
	}
	if len(byFreq[315].Pairs) != 2 {
		t.Errorf("315 kHz pairs %v", byFreq[315].Pairs)
	}
	// Class names.
	if MemoryRelated.String() != "memory-related" || OnChipRelated.String() != "on-chip-related" ||
		BothRelated.String() != "memory+on-chip" || ModulationClass(9).String() != "unknown" {
		t.Error("class names wrong")
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
