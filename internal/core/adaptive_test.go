package core

import (
	"math"
	"testing"

	"fase/internal/activity"
	"fase/internal/emsim"
	"fase/internal/machine"
	"fase/internal/obs"
	"fase/internal/specan"
)

// adaptiveCampaign is the regulator-band campaign the adaptive tests
// share: the transform cap pinned so the band splits into segments a
// window re-sweep can avoid, and a budget well under the exhaustive
// capture cost (40 at MaxFFT 2048).
func adaptiveCampaign(budget int) Campaign {
	return Campaign{
		F1: 0.25e6, F2: 0.55e6, Fres: 100,
		FAlt1: 43.3e3, FDelta: 1e3,
		X: activity.LDM, Y: activity.LDL1, Seed: 21,
		MaxFFT: 2048, Budget: budget, Adaptive: &AdaptivePlan{},
	}
}

// TestAdaptiveEndToEnd runs the planner over the regulator scene and
// requires it to reproduce the exhaustive campaign's detections — the
// two memory regulators and the memory-controller regulator, and NOT
// the equally-loaded core regulator — on a fraction of the captures.
func TestAdaptiveEndToEnd(t *testing.T) {
	_, scene := regulatorScene()
	runner := &Runner{Scene: scene}

	exhaustive := adaptiveCampaign(0)
	exhaustive.Budget, exhaustive.Adaptive = 0, nil
	exRes, err := runner.RunE(exhaustive)
	if err != nil {
		t.Fatal(err)
	}

	res, err := runner.RunE(adaptiveCampaign(16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Captures > 16 {
		t.Fatalf("adaptive campaign spent %d captures over its budget of 16", res.Captures)
	}
	if res.Captures >= exRes.Captures {
		t.Fatalf("adaptive spent %d captures, no better than exhaustive %d", res.Captures, exRes.Captures)
	}
	wantCarriers := []float64{315e3, 475e3, 512e3}
	if len(res.Detections) != len(wantCarriers) {
		t.Fatalf("detections: %+v", res.Detections)
	}
	for i, want := range wantCarriers {
		d := res.Detections[i]
		if math.Abs(d.Freq-want) > 500 {
			t.Errorf("detection %d at %.1f kHz, want %.1f", i, d.Freq/1e3, want/1e3)
		}
		if d.Score < 30 {
			t.Errorf("detection %d score %g", i, d.Score)
		}
	}
	for _, d := range res.Detections {
		if math.Abs(d.Freq-332.5e3) < 1e3 {
			t.Errorf("core regulator detected at %.1f kHz despite equal X/Y load", d.Freq/1e3)
		}
	}
	if res.Adaptive == nil {
		t.Fatal("adaptive campaign returned no planner stats")
	}
	if res.Adaptive.CapturesUsed != res.Captures {
		t.Errorf("stats captures %d != result captures %d", res.Adaptive.CapturesUsed, res.Captures)
	}
	if res.Adaptive.ExhaustiveCaptures != exRes.Captures {
		t.Errorf("stats price the exhaustive campaign at %d captures, really %d",
			res.Adaptive.ExhaustiveCaptures, exRes.Captures)
	}
}

// TestAdaptiveDeterministic: same campaign, same seed, same answer.
func TestAdaptiveDeterministic(t *testing.T) {
	_, scene := regulatorScene()
	runner := &Runner{Scene: scene}
	a, err := runner.RunE(adaptiveCampaign(16))
	if err != nil {
		t.Fatal(err)
	}
	b, err := runner.RunE(adaptiveCampaign(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Detections) != len(b.Detections) {
		t.Fatalf("runs differ: %d vs %d detections", len(a.Detections), len(b.Detections))
	}
	for i := range a.Detections {
		if a.Detections[i].Freq != b.Detections[i].Freq || a.Detections[i].Score != b.Detections[i].Score {
			t.Errorf("detection %d differs: %+v vs %+v", i, a.Detections[i], b.Detections[i])
		}
	}
	if a.Captures != b.Captures {
		t.Errorf("capture spend differs: %d vs %d", a.Captures, b.Captures)
	}
}

// TestAdaptiveCarrierStraddlesSegmentBoundary shrinks the transform cap
// so every refinement window spans several analyzer segments (segment
// span 102.4 kHz against a 300 kHz band): the 315 kHz carrier then sits
// in a different segment than its upper side-band at 358.3 kHz. The
// contract is recall parity with the exhaustive sweep at the identical
// geometry — window padding keeps side-bands in span, and segment
// stitching inside the analyzer is the same code path both use.
func TestAdaptiveCarrierStraddlesSegmentBoundary(t *testing.T) {
	_, scene := regulatorScene()
	runner := &Runner{Scene: scene}

	ex := adaptiveCampaign(0)
	ex.Budget, ex.Adaptive = 0, nil
	ex.MaxFFT = 1024
	exRes, err := runner.RunE(ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(exRes.Detections) == 0 {
		t.Fatal("exhaustive reference found nothing at 1024-point segments")
	}

	c := adaptiveCampaign(30)
	c.MaxFFT = 1024
	res, err := runner.RunE(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Captures >= exRes.Captures {
		t.Fatalf("adaptive spent %d captures, exhaustive %d", res.Captures, exRes.Captures)
	}
	for _, want := range exRes.Detections {
		ok := false
		for _, d := range res.Detections {
			if math.Abs(d.Freq-want.Freq) <= 1e3 {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("exhaustive detection at %.1f kHz lost across segment boundaries", want.Freq/1e3)
		}
	}
	for _, want := range []float64{315e3, 475e3, 512e3} {
		ok := false
		for _, d := range res.Detections {
			if math.Abs(d.Freq-want) <= 1e3 {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("carrier at %.1f kHz lost across segment boundaries", want/1e3)
		}
	}
}

// decoyScene pairs a genuine memory-domain regulator at 300 kHz with a
// far weaker one at 600 kHz — strong enough for its modulation
// side-bands to clear the coarse recon pass (≈10 dB over the floor in
// an 800 Hz recon bin), far enough from the carrier that its candidate
// window cannot pad-merge with the genuine one, and weak enough that a
// full-resolution probe scores it orders of magnitude below the real
// emitter.
func decoyScene() *emsim.Scene {
	scene := &emsim.Scene{}
	scene.Add(&machine.SwitchingRegulator{
		Label: "mem regulator (300 kHz)", FSw: 300e3,
		BaseDuty: 0.083, DutySwing: 0.035, FundamentalDBm: -104,
		MaxHarmonics: 1, WanderSigma: 350, WanderTau: 1.2e-3,
		LoopBw: 65e3, Dom: activity.DomainDRAM,
	})
	scene.Add(&machine.SwitchingRegulator{
		Label: "decoy regulator (600 kHz)", FSw: 600e3,
		BaseDuty: 0.083, DutySwing: 0.035, FundamentalDBm: -122,
		MaxHarmonics: 1, WanderSigma: 350, WanderTau: 1.2e-3,
		LoopBw: 65e3, Dom: activity.DomainDRAM,
	})
	scene.Add(&emsim.Background{FloorDBmPerHz: -172})
	return scene
}

// decoyCampaign spans both regulators of decoyScene with enough empty
// band between them that recon produces two disjoint windows.
func decoyCampaign(budget int) Campaign {
	return Campaign{
		F1: 0.2e6, F2: 0.9e6, Fres: 100,
		FAlt1: 43.3e3, FDelta: 1e3,
		X: activity.LDM, Y: activity.LDL1, Seed: 3,
		MaxFFT: 2048, Budget: budget, Adaptive: &AdaptivePlan{},
	}
}

// TestAdaptiveNoiseCandidateAbandoned runs the planner against the
// decoy scene with the recon threshold dropped to zero (sentinel path)
// and the abandonment ratio raised so the probe stage must clean up:
// the decoy's candidate window probes orders of magnitude below the
// genuine regulator (measured ≈7 against ≈24000) and is dropped at
// probe cost, while the real carrier survives refinement — the
// decoy-resistance the two-stage design buys.
func TestAdaptiveNoiseCandidateAbandoned(t *testing.T) {
	runner := &Runner{Scene: decoyScene()}
	c := decoyCampaign(40)
	// Threshold = 100 × MinScore^(ReconAlts/NumAlts) ≈ 390: far above
	// the decoy window's probe score, far below the genuine carrier's.
	c.Adaptive = &AdaptivePlan{MinReconScore: MinScoreZero, AbandonRatio: 100}
	res, err := runner.RunE(c)
	if err != nil {
		t.Fatal(err)
	}
	stats := res.Adaptive
	if stats == nil {
		t.Fatal("no planner stats")
	}
	var refined, abandoned int
	for _, w := range stats.Windows {
		switch w.Outcome {
		case obs.WindowRefined:
			refined++
		case obs.WindowAbandoned:
			abandoned++
			if w.Detections != 0 {
				t.Errorf("abandoned window [%.0f, %.0f] credited %d detections", w.F1Hz, w.F2Hz, w.Detections)
			}
			if w.Captures <= 0 {
				t.Errorf("abandoned window [%.0f, %.0f] was not charged its probe", w.F1Hz, w.F2Hz)
			}
		}
	}
	if abandoned == 0 {
		t.Errorf("decoy window was not abandoned (windows: %+v)", stats.Windows)
	}
	if refined == 0 {
		t.Error("no window survived to refinement")
	}
	found := func(want float64) bool {
		for _, d := range res.Detections {
			if math.Abs(d.Freq-want) <= 500 {
				return true
			}
		}
		return false
	}
	if !found(300e3) {
		t.Errorf("genuine carrier at 300 kHz lost; detections: %+v", res.Detections)
	}
	if found(600e3) {
		t.Errorf("abandoned decoy at 600 kHz still detected: %+v", res.Detections)
	}
}

// TestAdaptiveBudgetExhaustionMidRound funds the recon pass and barely
// more, so the planner runs out mid-refinement. The contract: spend
// never exceeds the budget, the highest-priority window is served
// first, and the starved windows report partial or skipped outcomes
// with consistent capture accounting.
func TestAdaptiveBudgetExhaustionMidRound(t *testing.T) {
	runner := &Runner{Scene: decoyScene()}
	full, err := runner.RunE(decoyCampaign(40))
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Adaptive.Windows) < 2 {
		t.Fatalf("need at least two windows to starve, got %+v", full.Adaptive.Windows)
	}
	// Recon plus the first window's full cost, plus one capture: the
	// second window's probe reservation cannot both fit and complete.
	budget := int(full.Adaptive.ReconCaptures + full.Adaptive.Windows[0].Captures + 1)
	res, err := runner.RunE(decoyCampaign(budget))
	if err != nil {
		t.Fatal(err)
	}
	stats := res.Adaptive
	if stats.CapturesUsed > stats.Budget {
		t.Fatalf("spent %d of budget %d", stats.CapturesUsed, stats.Budget)
	}
	if stats.Windows[0].Outcome != obs.WindowRefined {
		t.Errorf("highest-priority window not refined: %+v", stats.Windows[0])
	}
	var starved int
	var total int64
	for i, w := range stats.Windows {
		total += w.Captures
		switch w.Outcome {
		case obs.WindowPartial, obs.WindowSkipped:
			starved++
			if w.Outcome == obs.WindowSkipped && w.Captures != 0 {
				t.Errorf("skipped window %d charged %d captures", i, w.Captures)
			}
		}
	}
	if starved == 0 {
		t.Errorf("starved budget %d produced no partial/skipped windows: %+v", budget, stats.Windows)
	}
	if total != stats.RefineCaptures {
		t.Errorf("window captures sum to %d, refine stage recorded %d", total, stats.RefineCaptures)
	}
}

// TestAdaptiveValidation covers the Budget/Adaptive coupling and the
// plan-level validator.
func TestAdaptiveValidation(t *testing.T) {
	base := func() Campaign {
		c := adaptiveCampaign(16)
		return c
	}
	cases := []struct {
		name   string
		mutate func(*Campaign)
	}{
		{"zero budget", func(c *Campaign) { c.Budget = 0 }},
		{"negative budget", func(c *Campaign) { c.Budget = -4 }},
		{"budget without plan", func(c *Campaign) { c.Adaptive = nil }},
		{"recon finer than campaign", func(c *Campaign) { c.Adaptive = &AdaptivePlan{ReconFres: 50} }},
		{"NaN recon fres", func(c *Campaign) { c.Adaptive = &AdaptivePlan{ReconFres: math.NaN()} }},
		{"one recon alt", func(c *Campaign) { c.Adaptive = &AdaptivePlan{ReconAlts: 1} }},
		{"recon alts over ladder", func(c *Campaign) { c.Adaptive = &AdaptivePlan{ReconAlts: 9} }},
		{"negative averages", func(c *Campaign) { c.Adaptive = &AdaptivePlan{ReconAverages: -1} }},
		{"negative recon score", func(c *Campaign) { c.Adaptive = &AdaptivePlan{MinReconScore: -3} }},
		{"negative abandon ratio", func(c *Campaign) { c.Adaptive = &AdaptivePlan{AbandonRatio: -2} }},
		{"negative max windows", func(c *Campaign) { c.Adaptive = &AdaptivePlan{MaxWindows: -2} }},
	}
	for _, tc := range cases {
		c := base()
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Errorf("baseline adaptive campaign invalid: %v", err)
	}
}

func TestSpreadAndComplementIndices(t *testing.T) {
	cases := []struct {
		k, n int
		want []int
	}{
		{2, 5, []int{0, 4}},
		{3, 5, []int{0, 2, 4}},
		{5, 5, []int{0, 1, 2, 3, 4}},
		{2, 2, []int{0, 1}},
		{1, 5, []int{0}},
	}
	for _, tc := range cases {
		got := spreadIndices(tc.k, tc.n)
		if len(got) != len(tc.want) {
			t.Fatalf("spreadIndices(%d, %d) = %v", tc.k, tc.n, got)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("spreadIndices(%d, %d) = %v, want %v", tc.k, tc.n, got, tc.want)
				break
			}
		}
		comp := complementIndices(got, tc.n)
		if len(comp)+len(got) != tc.n {
			t.Errorf("complement of %v in [0,%d) = %v", got, tc.n, comp)
		}
		seen := map[int]bool{}
		for _, i := range got {
			seen[i] = true
		}
		for _, i := range comp {
			if seen[i] {
				t.Errorf("index %d in both %v and complement %v", i, got, comp)
			}
		}
	}
}

// FuzzAdaptivePlan exercises the two load-bearing planner contracts
// with arbitrary inputs:
//
//  1. Campaign.Validate never panics on an adaptive configuration, and
//     zero or negative budgets are always rejected.
//  2. scheduleRefinement is pure admission control: with fake probe and
//     refine callbacks it terminates, never overcommits the meter,
//     reports one outcome per window, and charges each window
//     consistently with its outcome.
func FuzzAdaptivePlan(f *testing.F) {
	f.Add(int64(30), uint8(3), int64(2), int64(3), 1.95, 5.0)
	f.Add(int64(1), uint8(1), int64(0), int64(0), 0.0, 0.0)
	f.Add(int64(100), uint8(20), int64(7), int64(11), 2.0, 1.0)
	f.Add(int64(-5), uint8(2), int64(1), int64(1), 1.0, 2.0)
	f.Add(int64(0), uint8(0), int64(1), int64(1), 1.0, 2.0)
	f.Fuzz(func(t *testing.T, budget int64, nw uint8, probeCost, fullCost int64, threshold, score float64) {
		c := Campaign{
			F1: 0.25e6, F2: 0.55e6, Fres: 100,
			FAlt1: 43.3e3, FDelta: 1e3,
			Budget:   int(budget),
			Adaptive: &AdaptivePlan{MinReconScore: threshold, AbandonRatio: score},
		}
		err := c.Validate() // must not panic
		if budget <= 0 && err == nil {
			t.Fatalf("budget %d accepted for an adaptive campaign", budget)
		}

		if budget <= 0 {
			return // no meter to schedule against
		}
		meter := specan.NewMeter(budget)
		windows := make([]refineWindow, int(nw)%24)
		for i := range windows {
			// Vary costs and priorities deterministically per window; keep
			// costs non-negative (the planner prices them from SweepCaptures,
			// which cannot go negative).
			windows[i] = refineWindow{
				idx:       i,
				f1:        float64(i) * 1e3,
				f2:        float64(i)*1e3 + 500,
				priority:  float64((i * 7) % 13),
				probeCost: abs64(probeCost) + int64(i%3),
				fullCost:  abs64(fullCost) + int64(i%5),
			}
		}
		probes, refines := 0, 0
		outcomes := scheduleRefinement(windows, meter, threshold,
			func(w refineWindow) float64 { probes++; return score + float64(w.idx%2) },
			func(w refineWindow, _ float64) int { refines++; return 1 })
		if len(outcomes) != len(windows) {
			t.Fatalf("%d windows, %d outcomes", len(windows), len(outcomes))
		}
		if meter.Reserved() > meter.Cap() {
			t.Fatalf("meter overcommitted: reserved %d cap %d", meter.Reserved(), meter.Cap())
		}
		var charged int64
		lastPriority := math.Inf(1)
		for i, o := range outcomes {
			if o.window.priority > lastPriority {
				t.Fatalf("outcome %d out of priority order: %+v", i, outcomes)
			}
			lastPriority = o.window.priority
			charged += o.captures
			switch o.outcome {
			case obs.WindowSkipped:
				if o.captures != 0 {
					t.Fatalf("skipped window charged %d", o.captures)
				}
			case obs.WindowAbandoned, obs.WindowPartial:
				if o.captures != o.window.probeCost {
					t.Fatalf("%s window charged %d, probe costs %d", o.outcome, o.captures, o.window.probeCost)
				}
			case obs.WindowRefined:
				if o.captures != o.window.probeCost+o.window.fullCost {
					t.Fatalf("refined window charged %d, costs %d+%d", o.captures, o.window.probeCost, o.window.fullCost)
				}
			default:
				t.Fatalf("unknown outcome %q", o.outcome)
			}
		}
		if charged > budget {
			t.Fatalf("windows charged %d of budget %d", charged, budget)
		}
		if probes < refines {
			t.Fatalf("%d refines with only %d probes", refines, probes)
		}
	})
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
