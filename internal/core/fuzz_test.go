package core

import (
	"math"
	"testing"
)

// FuzzCampaignValidate throws arbitrary — including non-finite — numeric
// configurations at the campaign validator. The contract under test:
// Validate never panics, and any campaign it accepts survives default
// resolution with a finite, positive alternation ladder and a usable
// threshold — i.e. Validate is the single gate RunE needs before doing
// real work.
func FuzzCampaignValidate(f *testing.F) {
	nan, inf := math.NaN(), math.Inf(1)
	seeds := [][6]float64{
		{0.25e6, 0.55e6, 100, 43.3e3, 1e3, 0},    // the standard narrowband campaign
		{nan, 0.55e6, 100, 43.3e3, 1e3, 0},       // NaN start frequency
		{0.25e6, inf, 100, 43.3e3, 1e3, 0},       // infinite stop frequency
		{0.25e6, 0.55e6, nan, 43.3e3, 1e3, 0},    // NaN resolution
		{-0.25e6, 0.55e6, 100, 43.3e3, 1e3, 0},   // negative start frequency
		{0.25e6, 0.55e6, 100, -43.3e3, 1e3, 0},   // negative f_alt
		{0.25e6, 0.55e6, 100, 43.3e3, -1e3, 0},   // negative f_Δ
		{0.25e6, 0.55e6, 100, 43.3e3, 1e3, -inf}, // -Inf threshold
		{0.25e6, 0.55e6, 100, 43.3e3, 1e3, MinScoreZero},
		{0.25e6, 0.55e6, 100, 1e308, 1e308, 0}, // finite inputs, Inf ladder top
		{0.55e6, 0.25e6, 100, 43.3e3, 1e3, 0},  // inverted range
	}
	for _, s := range seeds {
		f.Add(s[0], s[1], s[2], s[3], s[4], s[5], 5, 4)
	}
	f.Fuzz(func(t *testing.T, f1, f2, fres, falt1, fdelta, minScore float64, numAlts, averages int) {
		c := Campaign{
			F1: f1, F2: f2, Fres: fres,
			FAlt1: falt1, FDelta: fdelta,
			MinScore: minScore, NumAlts: numAlts, Averages: averages,
		}
		if err := c.Validate(); err != nil {
			return // rejected is always a fine answer
		}
		d := c.withDefaults()
		if d.MinScore < 0 || math.IsNaN(d.MinScore) {
			t.Fatalf("validated campaign resolved to threshold %g", d.MinScore)
		}
		if d.SmoothBins < 1 || d.MergeBins < 1 || d.NumAlts < 2 || d.Averages < 1 {
			t.Fatalf("validated campaign resolved to unusable defaults: %+v", d)
		}
		for _, fa := range d.FAlts() {
			if fa <= 0 || math.IsNaN(fa) || math.IsInf(fa, 0) {
				t.Fatalf("validated campaign yields alternation frequency %g (ladder %v)", fa, d.FAlts())
			}
		}
	})
}
