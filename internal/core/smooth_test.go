package core

import (
	"math"
	"math/rand"
	"testing"

	"fase/internal/dsp/spectral"
)

// naiveSmooth is the O(n·w) reference the prefix-sum implementation must
// match (within FP tolerance — the sliding accumulator sums in a
// different order than a fresh per-window sum).
func naiveSmooth(src []float64, w int) []float64 {
	if w%2 == 0 {
		w++
	}
	half := w / 2
	out := make([]float64, len(src))
	for i := range src {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi > len(src)-1 {
			hi = len(src) - 1
		}
		var sum float64
		for k := lo; k <= hi; k++ {
			sum += src[k]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

func TestSmoothSpectrumMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 7, 64, 501} {
		for _, w := range []int{1, 2, 3, 5, 8, 25, 1201} {
			s := spectral.New(100e3, 50, n)
			for i := range s.PmW {
				s.PmW[i] = r.Float64() * 1e-10
			}
			want := naiveSmooth(s.PmW, w)
			got := SmoothSpectrum(s, w)
			for i := range want {
				if d := math.Abs(got.PmW[i] - want[i]); d > 1e-22 && d/want[i] > 1e-9 {
					t.Fatalf("n=%d w=%d bin %d: %g, naive %g", n, w, i, got.PmW[i], want[i])
				}
			}
		}
	}
}

func TestSmoothSpectrumInto(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	src := spectral.New(250e3, 100, 333)
	for i := range src.PmW {
		src.PmW[i] = r.Float64()
	}
	want := SmoothSpectrum(src, 9)
	// A dirty destination (as handed out by a buffer pool) must give the
	// same result bit for bit: every element is overwritten.
	dst := spectral.New(0, 1, 333)
	for i := range dst.PmW {
		dst.PmW[i] = math.NaN()
	}
	SmoothSpectrumInto(dst, src, 9)
	if dst.F0 != src.F0 || dst.Fres != src.Fres {
		t.Errorf("geometry not propagated: F0=%g Fres=%g", dst.F0, dst.Fres)
	}
	for i := range want.PmW {
		if math.Float64bits(dst.PmW[i]) != math.Float64bits(want.PmW[i]) {
			t.Fatalf("bin %d: dirty-buffer result %g != %g", i, dst.PmW[i], want.PmW[i])
		}
	}
	// Size mismatch is a programming error and must panic.
	mustPanic(t, func() { SmoothSpectrumInto(spectral.New(0, 1, 332), src, 9) })
}
