package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"fase/internal/activity"
	"fase/internal/dsp/demod"
	"fase/internal/dsp/peaks"
	"fase/internal/dsp/spectral"
	"fase/internal/dsp/window"
	"fase/internal/emsim"
	"fase/internal/microbench"
	"fase/internal/specan"
)

// FM-FASE implements the extension the paper sketches in §4.4: "signals
// that are frequency-modulated by system activity should be possible to
// identify by a FASE-like approach based on spectral properties of
// FM-modulated signals." Constant-on-time regulators modulate their
// switching *frequency* with load, so AM-FASE correctly ignores them —
// but they still leak.
//
// The approach transplants the FASE shift test into the modulation
// domain: candidate carriers are taken from an idle spectrum sweep; each
// candidate is captured at baseband under the alternation micro-benchmark
// for every f_alt_i; a spectrogram's per-frame peak *tracks the carrier's
// instantaneous frequency*; and the track's spectrum is probed at the
// alternation frequencies. A genuinely FM-modulated carrier shows track
// power at f_alt_i in measurement i but not at that frequency in the
// other measurements — the same leave-one-out sub-score as Equation 2,
// evaluated with a Goertzel bin on the frequency track.
//
// Peak tracking (rather than a phase-difference discriminator) is what
// makes the test specific to FM: amplitude modulation of a carrier, even
// amid other in-band tones, does not move the per-frame argmax, while a
// swept carrier does. The alternation frequencies are placed in the
// hundreds of Hz so several spectrogram frames fit in each half-period.

// FMCampaign configures an FM-FASE run.
type FMCampaign struct {
	// F1, F2 bound the candidate-carrier search.
	F1, F2 float64
	// FAlt1, FDelta, NumAlts are the alternation ladder (as in Campaign).
	FAlt1, FDelta float64
	NumAlts       int
	// Fs is the demodulation capture bandwidth around each candidate; it
	// must cover the carrier's full FM excursion. Zero means 250 kHz.
	Fs float64
	// CaptureN is the samples per capture. Zero means 1<<17.
	CaptureN int
	// FrameLen is the spectrogram frame length for carrier tracking;
	// fs/FrameLen is the track's frequency resolution and several frames
	// must fit in a half-period of f_alt. Zero means 64.
	FrameLen int
	// MinCarrierSNRdB selects candidate carriers from the idle sweep.
	// Zero means 10 dB above the median floor.
	MinCarrierSNRdB float64
	// MinScore is the detection threshold on the sub-score product.
	// Zero means 30.
	MinScore float64
	// X, Y is the activity pair.
	X, Y activity.Kind
	// Jitter models micro-benchmark timing variation; nil selects the
	// default model.
	Jitter *microbench.Jitter
	// Seed drives all randomness.
	Seed int64
}

// FMDetection is one frequency-modulated carrier found by FM-FASE.
type FMDetection struct {
	// Freq is the candidate carrier frequency (idle spectrum peak).
	Freq float64
	// Score is the product of leave-one-out discriminator sub-scores.
	Score float64
	// DeviationHz estimates the FM deviation at the alternation
	// fundamental (amplitude of the instantaneous-frequency square wave's
	// first harmonic).
	DeviationHz float64
}

func (c FMCampaign) withDefaults() FMCampaign {
	if c.NumAlts == 0 {
		c.NumAlts = 5
	}
	if c.Fs == 0 {
		c.Fs = 250e3
	}
	if c.CaptureN == 0 {
		c.CaptureN = 1 << 17
	}
	if c.FrameLen == 0 {
		c.FrameLen = 64
	}
	if c.MinCarrierSNRdB == 0 {
		c.MinCarrierSNRdB = 10
	}
	if c.MinScore == 0 {
		c.MinScore = 30
	}
	if c.Jitter == nil {
		j := microbench.DefaultJitter()
		c.Jitter = &j
	}
	if c.FAlt1 <= 0 || c.FDelta <= 0 {
		panic(fmt.Sprintf("core: FM campaign needs positive FAlt1/FDelta, got %g/%g", c.FAlt1, c.FDelta))
	}
	if c.NumAlts < 2 {
		panic("core: FM campaign needs at least 2 alternation frequencies")
	}
	return c
}

// falts returns the ladder.
func (c FMCampaign) falts() []float64 {
	out := make([]float64, c.NumAlts)
	for i := range out {
		out[i] = c.FAlt1 + float64(i)*c.FDelta
	}
	return out
}

// RunFM executes an FM-FASE campaign against the runner's scene.
func (r *Runner) RunFM(c FMCampaign) []FMDetection {
	c = c.withDefaults()
	if r.Scene == nil {
		panic("core: Runner needs a Scene")
	}
	// Candidate carriers: idle-spectrum peaks. The paper's FM targets
	// (constant-on-time regulators) are smeared over tens of kHz, so a
	// coarse RBW keeps each hump a single candidate.
	an := specan.New(specan.Config{Fres: 1e3})
	idle := an.Sweep(specan.Request{
		Scene: r.Scene, F1: c.F1, F2: c.F2, Seed: c.Seed,
		NearField: r.NearField, NearFieldGainDB: r.NearFieldGainDB,
	})
	// Smooth the idle spectrum so noise ripple neither splits smeared
	// humps into several candidates nor truncates linewidth measurement.
	idle = SmoothSpectrum(idle, 7)
	// Floor estimate: a low percentile rather than the median — a smeared
	// FM hump can occupy most of a narrow search band.
	floor := percentilePower(idle.PmW, 0.15)
	minPeak := floor * math.Pow(10, c.MinCarrierSNRdB/10)
	// Candidates at least half a capture bandwidth apart so their demod
	// captures do not overlap.
	minDist := int(c.Fs / 2 / idle.Fres)
	if minDist < 1 {
		minDist = 1
	}
	cands := peaks.Find(idle.PmW, peaks.Options{MinValue: minPeak, MinDistance: minDist})

	falts := c.falts()
	hop := c.FrameLen / 2
	trackRate := c.Fs / float64(hop)
	var out []FMDetection
	for _, cd := range cands {
		fc := idle.Freq(cd.Index)
		// Tracking window: the candidate's own idle -10 dB linewidth
		// (plus a few track bins). Restricting the per-frame argmax to
		// this window pins the track onto the candidate, so amplitude
		// modulation cannot hand the argmax to a neighbouring tone — an
		// FM carrier's idle wander already occupies the full window its
		// activity excursion needs.
		window10 := lineWidth(idle, cd.Index)
		trackWin := math.Max(window10/2, 3*c.Fs/float64(c.FrameLen))
		// One frequency track per alternation frequency, captured
		// concurrently (independent seeds and traces).
		tracks := make([][]float64, c.NumAlts)
		var wg sync.WaitGroup
		for i, fa := range falts {
			wg.Add(1)
			go func(i int, fa float64) {
				defer wg.Done()
				tr := microbench.Generate(microbench.Config{
					X: c.X, Y: c.Y, FAlt: fa, Jitter: *c.Jitter,
					Seed: c.Seed + int64(i)*7907,
				}, float64(c.CaptureN)/c.Fs+0.01)
				x := r.Scene.Render(emsim.Capture{
					Band:            emsim.Band{Center: fc, SampleRate: c.Fs},
					N:               c.CaptureN,
					Activity:        tr,
					Seed:            c.Seed + int64(i)*104729,
					NearField:       r.NearField,
					NearFieldGainDB: r.NearFieldGainDB,
				})
				sg := demod.STFT(x, c.Fs, fc, c.FrameLen, hop, window.Hann)
				track := windowedPeakTrack(sg, fc, trackWin)
				removeMean(track)
				tracks[i] = track
			}(i, fa)
		}
		wg.Wait()
		// Leave-one-out sub-scores at each measurement's own f_alt.
		score := 1.0
		var devSum float64
		for i := range falts {
			own := spectral.Goertzel(tracks[i], trackRate, falts[i])
			var others float64
			for j := range falts {
				if j != i {
					others += spectral.Goertzel(tracks[j], trackRate, falts[i])
				}
			}
			others /= float64(c.NumAlts - 1)
			if others < scoreFloor {
				others = scoreFloor
			}
			score *= own / others
			devSum += math.Sqrt(own)
		}
		if score >= c.MinScore {
			out = append(out, FMDetection{
				Freq:        fc,
				Score:       score,
				DeviationHz: devSum / float64(c.NumAlts),
			})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Freq < out[b].Freq })
	return out
}

// percentilePower returns the p-quantile of the bins (0 <= p <= 1).
func percentilePower(x []float64, p float64) float64 {
	cp := append([]float64(nil), x...)
	sort.Float64s(cp)
	if len(cp) == 0 {
		return 0
	}
	i := int(p * float64(len(cp)-1))
	return cp[i]
}

// lineWidth measures the -10 dB width of the spectral line at bin i by
// expanding outward until the level drops below a tenth of the peak.
func lineWidth(s *spectral.Spectrum, i int) float64 {
	thresh := s.PmW[i] / 10
	lo := i
	for lo > 0 && s.PmW[lo-1] > thresh {
		lo--
	}
	hi := i
	for hi < s.Bins()-1 && s.PmW[hi+1] > thresh {
		hi++
	}
	return float64(hi-lo+1) * s.Fres
}

// windowedPeakTrack returns the per-frame frequency of the strongest
// spectrogram bin within ±win of fc.
func windowedPeakTrack(sg *demod.Spectrogram, fc, win float64) []float64 {
	out := make([]float64, len(sg.PmW))
	for fi, frame := range sg.PmW {
		best, bp := -1, 0.0
		for k := range frame {
			f := sg.Freq(k)
			if f < fc-win || f > fc+win {
				continue
			}
			if best == -1 || frame[k] > bp {
				best, bp = k, frame[k]
			}
		}
		if best >= 0 {
			out[fi] = sg.Freq(best)
		} else {
			out[fi] = fc
		}
	}
	return out
}

func removeMean(x []float64) {
	var m float64
	for _, v := range x {
		m += v
	}
	m /= float64(len(x))
	for i := range x {
		x[i] -= m
	}
}
