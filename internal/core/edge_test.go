package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"fase/internal/dsp/spectral"
)

// edgeSpectra builds five measurement spectra with a noise floor, a static
// carrier at carrierBin (when in range), and — for each measurement index
// in planted — a single side-band at carrierBin + round(h·falt_i/fres),
// i.e. the side-band the harmonic-h probe of candidate carrierBin reads.
// Out-of-range side-band bins are silently dropped, which is exactly the
// band-edge situation under test.
func edgeSpectra(bins, carrierBin, h int, fres float64, falts []float64, planted []int) []*spectral.Spectrum {
	r := rand.New(rand.NewSource(31))
	out := make([]*spectral.Spectrum, len(falts))
	for i := range out {
		s := spectral.New(0, fres, bins)
		for k := range s.PmW {
			s.PmW[k] = 1e-15 * (0.8 + 0.4*r.Float64())
		}
		if carrierBin >= 0 && carrierBin < bins {
			s.PmW[carrierBin] += 1e-11
		}
		out[i] = s
	}
	for _, i := range planted {
		sb := carrierBin + int(math.Round(float64(h)*falts[i]/fres))
		if sb >= 0 && sb < bins {
			out[i].PmW[sb] += 1e-13
		}
	}
	return out
}

// TestScoreBandEdges drives the heuristic through the geometric edge
// cases: high harmonics whose probes fall wholly or partly outside the
// measured span, and candidate carriers sitting on the very first and last
// bins (a detection there is a zero-width segment hard against the band
// edge).
func TestScoreBandEdges(t *testing.T) {
	fres := 50.0
	cases := []struct {
		name    string
		bins    int
		carrier int
		h       int
		planted []int // measurements that get the moving side-band
		// wantNeutral: every probe out of range, score exactly 1.
		wantNeutral bool
		// wantMin: lower bound on the score at the carrier bin.
		wantMin float64
		// wantElevated: exact ScoreDetail elevated count (-1 = don't check).
		wantElevated int
	}{
		{
			// h=+5 probes of a top-edge carrier all land past the last bin
			// (shift ≈ 4330 bins): every sub-score is neutral and the
			// product must be exactly 1, not a spurious spike.
			name: "h=+5 all probes above band", bins: 5000, carrier: 4800,
			h: 5, wantNeutral: true, wantElevated: 0,
		},
		{
			// Same top-edge carrier, but h=-5 probes reach down into the
			// measured span, so planted side-bands at fc − 5·falt_i are
			// found even though fc+5·falt is unmeasurable.
			name: "h=-5 at top edge", bins: 5000, carrier: 4800,
			h: -5, planted: []int{0, 1, 2, 3, 4}, wantMin: 1e6, wantElevated: 5,
		},
		{
			// h=+5 with the probe window straddling the band edge: only
			// measurements 0 and 1 stay in range (shifts 4330/4380 of 6000
			// bins from bin 1600). Two genuine sub-scores must still raise
			// the product — the paper's robustness to out-of-range
			// side-bands.
			name: "h=+5 probes partly out of range", bins: 6000, carrier: 1600,
			h: 5, planted: []int{0, 1}, wantMin: 100, wantElevated: 2,
		},
		{
			// Candidate on the very first bin of the span.
			name: "carrier at bin 0", bins: 2000, carrier: 0,
			h: 1, planted: []int{0, 1, 2, 3, 4}, wantMin: 1e6, wantElevated: 5,
		},
		{
			// Candidate on the very last bin, probed downward.
			name: "carrier at last bin", bins: 2000, carrier: 1999,
			h: -1, planted: []int{0, 1, 2, 3, 4}, wantMin: 1e6, wantElevated: 5,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := edgeSpectra(tc.bins, tc.carrier, tc.h, fres, testFalts, tc.planted)
			prod, elev := ScoreDetail(sp, testFalts, tc.h, 2)
			got := prod[tc.carrier]
			if tc.wantNeutral {
				if got != 1 {
					t.Errorf("score %g at carrier, want exactly neutral 1", got)
				}
			} else if got < tc.wantMin {
				t.Errorf("score %g at carrier, want >= %g", got, tc.wantMin)
			}
			if tc.wantElevated >= 0 && elev[tc.carrier] != tc.wantElevated {
				t.Errorf("elevated count %d at carrier, want %d", elev[tc.carrier], tc.wantElevated)
			}
		})
	}
}

// TestScoreCoincidentSidebands: two carriers spaced 2·shift₀ bins apart
// share a side-band bin in measurement 0 — carrier A's upper side-band is
// carrier B's lower side-band. Both carriers must still spike: the shared
// bin only strengthens each sub-score, and the other four measurements
// disambiguate.
func TestScoreCoincidentSidebands(t *testing.T) {
	fres := 50.0
	bins := 6000
	shift0 := int(math.Round(testFalts[0] / fres)) // 866
	ca := 2000
	cb := ca + 2*shift0
	r := rand.New(rand.NewSource(41))
	sp := make([]*spectral.Spectrum, 5)
	for i := range sp {
		s := spectral.New(0, fres, bins)
		for k := range s.PmW {
			s.PmW[k] = 1e-15 * (0.8 + 0.4*r.Float64())
		}
		shift := int(math.Round(testFalts[i] / fres))
		for _, c := range []int{ca, cb} {
			s.PmW[c] += 1e-11
			s.PmW[c+shift] += 1e-13
			s.PmW[c-shift] += 1e-13
		}
		sp[i] = s
	}
	for _, h := range []int{1, -1} {
		sc := Score(sp, testFalts, h)
		for _, c := range []int{ca, cb} {
			if sc[c] < 1e6 {
				t.Errorf("h=%d: score %g at carrier bin %d, want spike", h, sc[c], c)
			}
		}
	}
}

// TestScoreCarrierOnFAltHarmonic covers carriers sitting exactly at a
// multiple of f_alt. A *static* line there must not light up the f=0
// candidate whose harmonic-2 probe of measurement 0 lands on it (the line
// is present in every measurement, so the leave-one-out ratio stays ≈1),
// and a *modulated* carrier there is detected exactly like any other.
func TestScoreCarrierOnFAltHarmonic(t *testing.T) {
	fres := 50.0
	bins := 4000
	carrier := int(math.Round(2 * testFalts[0] / fres)) // bin of 2·f_alt1

	// Static carrier at 2·f_alt1: the h=2 trace must stay flat everywhere,
	// including the f=0 candidate that aliases onto the carrier.
	static := edgeSpectra(bins, carrier, 2, fres, testFalts, nil)
	sc := Score(static, testFalts, 2)
	for k, v := range sc {
		if v > 20 {
			t.Errorf("static carrier on f_alt harmonic: score %g at bin %d", v, k)
		}
	}

	// Modulated carrier at the same frequency: ±f_alt side-bands move with
	// the ladder, so h=±1 spikes at the carrier bin itself.
	r := rand.New(rand.NewSource(53))
	mod := make([]*spectral.Spectrum, 5)
	for i := range mod {
		s := spectral.New(0, fres, bins)
		for k := range s.PmW {
			s.PmW[k] = 1e-15 * (0.8 + 0.4*r.Float64())
		}
		s.PmW[carrier] += 1e-11
		shift := int(math.Round(testFalts[i] / fres))
		s.PmW[carrier+shift] += 1e-13
		s.PmW[carrier-shift] += 1e-13
		mod[i] = s
	}
	for _, h := range []int{1, -1} {
		sc := Score(mod, testFalts, h)
		best, bv := 0, 0.0
		for k, v := range sc {
			if v > bv {
				best, bv = k, v
			}
		}
		if best != carrier || bv < 1e6 {
			t.Errorf("h=%d: peak %g at bin %d, want spike at carrier bin %d", h, bv, best, carrier)
		}
	}
}

// groupWithTimeout guards the degenerate-input grouping cases: before the
// singleton fallback, zero/negative/NaN frequencies made the greedy cover
// loop spin forever, so a regression should fail fast instead of hanging
// the suite.
func groupWithTimeout(t *testing.T, dets []Detection, tol float64) []HarmonicSet {
	t.Helper()
	done := make(chan []HarmonicSet, 1)
	go func() { done <- GroupHarmonics(dets, tol) }()
	select {
	case sets := <-done:
		return sets
	case <-time.After(10 * time.Second):
		t.Fatalf("GroupHarmonics did not terminate on %+v", dets)
		return nil
	}
}

// TestGroupHarmonicsEdgeCases: grouping must terminate and behave sanely
// on coincident, zero-width-separated, and degenerate frequencies.
func TestGroupHarmonicsEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		freqs []float64
		// wantSets is the expected number of sets; wantCovered the total
		// member count (every detection appears exactly once).
		wantSets, wantCovered int
	}{
		{"coincident frequencies", []float64{315e3, 315e3}, 1, 2},
		{"within tolerance", []float64{315e3, 315.5e3}, 1, 2},
		{"zero frequency alone", []float64{0}, 1, 1},
		{"negative frequency alone", []float64{-440e3}, 1, 1},
		{"nan frequency alone", []float64{math.NaN()}, 1, 1},
		{"zero among real carriers", []float64{0, 315e3, 630e3}, 2, 3},
		{"negative among real carriers", []float64{-100, 512e3, 1024e3}, 2, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dets := make([]Detection, len(tc.freqs))
			for i, f := range tc.freqs {
				dets[i] = Detection{Freq: f}
			}
			sets := groupWithTimeout(t, dets, 0.004)
			if len(sets) != tc.wantSets {
				t.Fatalf("%d sets, want %d: %+v", len(sets), tc.wantSets, sets)
			}
			covered := 0
			for _, s := range sets {
				if len(s.Members) != len(s.Orders) {
					t.Errorf("members/orders mismatch: %+v", s)
				}
				covered += len(s.Members)
			}
			if covered != tc.wantCovered {
				t.Errorf("%d detections covered, want %d", covered, tc.wantCovered)
			}
		})
	}

	// The coincident pair forms one set with both members at order 1 and
	// the shared fundamental.
	sets := groupWithTimeout(t, []Detection{{Freq: 315e3}, {Freq: 315e3}}, 0.004)
	if len(sets) != 1 || len(sets[0].Members) != 2 {
		t.Fatalf("coincident pair: %+v", sets)
	}
	if sets[0].Orders[0] != 1 || sets[0].Orders[1] != 1 {
		t.Errorf("coincident orders %v, want [1 1]", sets[0].Orders)
	}
	if math.Abs(sets[0].Fundamental-315e3) > 1 {
		t.Errorf("coincident fundamental %g", sets[0].Fundamental)
	}
}
