package core

import (
	"math"
	"slices"
	"testing"

	"fase/internal/activity"
	"fase/internal/machine"
	"fase/internal/obs"
)

// TestCampaignEquivalenceStaticCache runs the same campaign with the
// cross-sweep static render cache on (the default) and off (NoReuse) and
// requires bit-identical measurements and detections. Because every sweep
// of a campaign shares the campaign seed, the cached run builds each
// capture's static layer once and replays it NumAlts times — the counter
// check proves that actually happened, so the equivalence isn't two
// uncached runs agreeing with each other.
func TestCampaignEquivalenceStaticCache(t *testing.T) {
	sys := machine.IntelCoreI7Desktop()
	c := Campaign{
		F1: 0.25e6, F2: 0.55e6, Fres: 200,
		FAlt1: 43.3e3, FDelta: 1e3,
		X: activity.LDM, Y: activity.LDL1, Seed: 21,
	}
	hits := obs.Default.Counter(obs.MetricStaticCacheHits)
	h0 := hits.Value()
	cached, err := (&Runner{Scene: sys.Scene(21, true)}).RunE(c)
	if err != nil {
		t.Fatal(err)
	}
	if hits.Value() == h0 {
		t.Fatal("default campaign replayed no static layers — test is vacuous")
	}
	noReuse := c
	noReuse.NoReuse = true
	bare, err := (&Runner{Scene: sys.Scene(21, true)}).RunE(noReuse)
	if err != nil {
		t.Fatal(err)
	}
	if len(cached.Measurements) != len(bare.Measurements) {
		t.Fatalf("measurement count %d cached vs %d NoReuse", len(cached.Measurements), len(bare.Measurements))
	}
	for i := range bare.Measurements {
		a, b := bare.Measurements[i].Spectrum, cached.Measurements[i].Spectrum
		if a.Bins() != b.Bins() {
			t.Fatalf("measurement %d: %d bins cached vs %d NoReuse", i, b.Bins(), a.Bins())
		}
		for k := range a.PmW {
			if math.Float64bits(a.PmW[k]) != math.Float64bits(b.PmW[k]) {
				t.Fatalf("measurement %d bin %d differs between cached and NoReuse runs", i, k)
			}
		}
	}
	if len(cached.Detections) != len(bare.Detections) {
		t.Fatalf("detections: %d cached vs %d NoReuse", len(cached.Detections), len(bare.Detections))
	}
	for i := range bare.Detections {
		a, b := bare.Detections[i], cached.Detections[i]
		if a.Freq != b.Freq || a.Score != b.Score || a.BestHarmonic != b.BestHarmonic ||
			a.MagnitudeDBm != b.MagnitudeDBm || a.DepthDB != b.DepthDB ||
			!slices.Equal(a.Harmonics, b.Harmonics) {
			t.Fatalf("detection %d differs: %+v vs %+v", i, b, a)
		}
	}
}
