package core

import (
	"math"
	"sort"

	"fase/internal/activity"
)

// ModulationClass says which aspect of the system modulates a carrier,
// inferred by comparing FASE results across activity pairings (§2.2:
// "FASE results for different X/Y pairings usually provide a strong
// indication of which aspect of the system modulates a given carrier").
type ModulationClass int

const (
	// MemoryRelated carriers respond to memory-vs-on-chip alternation but
	// not to on-chip-vs-on-chip alternation: memory controller,
	// processor-memory communication, or the DRAM itself.
	MemoryRelated ModulationClass = iota
	// OnChipRelated carriers respond to on-chip alternation but not to
	// memory alternation (e.g. the core supply regulator).
	OnChipRelated
	// BothRelated carriers respond to both pairings.
	BothRelated
)

// String names the class.
func (m ModulationClass) String() string {
	switch m {
	case MemoryRelated:
		return "memory-related"
	case OnChipRelated:
		return "on-chip-related"
	case BothRelated:
		return "memory+on-chip"
	default:
		return "unknown"
	}
}

// ClassifiedCarrier is a detection annotated with its modulation class.
type ClassifiedCarrier struct {
	Detection
	Class ModulationClass
	// Pairs records which activity pairs detected it.
	Pairs []string
}

// Classify cross-references detections from a memory-alternation campaign
// (e.g. LDM/LDL1) and an on-chip-alternation campaign (e.g. LDL2/LDL1).
// Carriers within tolHz of each other across campaigns are considered the
// same carrier.
func Classify(memory, onchip *Result, tolHz float64) []ClassifiedCarrier {
	if tolHz <= 0 {
		tolHz = 1e3
	}
	memPair := pairName(memory.Campaign.X, memory.Campaign.Y)
	chipPair := pairName(onchip.Campaign.X, onchip.Campaign.Y)
	var out []ClassifiedCarrier
	usedChip := make([]bool, len(onchip.Detections))
	for _, d := range memory.Detections {
		cc := ClassifiedCarrier{Detection: d, Class: MemoryRelated, Pairs: []string{memPair}}
		for i, o := range onchip.Detections {
			if !usedChip[i] && math.Abs(o.Freq-d.Freq) <= tolHz {
				usedChip[i] = true
				cc.Class = BothRelated
				cc.Pairs = append(cc.Pairs, chipPair)
				if o.Score > cc.Score {
					cc.Detection = o
					cc.Detection.Freq = d.Freq // keep one canonical frequency
				}
				break
			}
		}
		out = append(out, cc)
	}
	for i, o := range onchip.Detections {
		if !usedChip[i] {
			out = append(out, ClassifiedCarrier{
				Detection: o, Class: OnChipRelated, Pairs: []string{chipPair},
			})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Freq < out[b].Freq })
	return out
}

func pairName(x, y activity.Kind) string { return x.String() + "/" + y.String() }
