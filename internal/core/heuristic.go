// Package core implements FASE itself: the side-band shift heuristic of
// §2.4 (Equations 1 and 2), the multi-f_alt measurement campaign of §2.3,
// carrier detection and frequency computation, harmonic-set grouping, and
// cross-activity classification.
//
// The idea: when the micro-benchmark alternates activity at f_alt, every
// carrier that is AM-modulated by that activity grows side-bands at
// fc ± h·f_alt. Stepping f_alt by f_Δ moves only those side-bands — by
// h·f_Δ — while every other feature of the spectrum stays put. The
// heuristic scores each frequency f by how much each measurement's
// spectrum, shifted by h·f_alt_i, sticks out above the other measurements
// shifted by their own h·f_alt_j: only true side-bands align, so the
// product of sub-scores spikes exactly at modulated carrier frequencies.
package core

import (
	"fmt"
	"math"

	"fase/internal/dsp/spectral"
)

// scoreFloor keeps ratios finite on empty bins.
const scoreFloor = 1e-30

// Score evaluates the heuristic F_h(f) of Equation 1 for one harmonic h
// over the common frequency grid of the measurements. spectra[i] must all
// share geometry; falts[i] is the alternation frequency of measurement i.
// The returned slice is indexed like the spectra's bins: out[k] is F_h of
// the frequency spectra[0].Freq(k), interpreted as a candidate carrier
// frequency.
//
// Sub-score i reads measurement i at its shifted frequency f + h·falt_i
// and normalizes by the average of the *other* measurements at that same
// frequency ("At the exact same frequency in at least some of the other
// spectra, however, the signal will not be as strong because these
// spectra have peaks at falt_j and so their side-band signal is at a
// different frequency", §2.4). A side-band that moves with f_alt makes
// every sub-score large at f = fc; anything that stays put cancels to ≈1.
//
// Sub-scores whose shifted bin falls outside the measured span are
// neutral (1), implementing the paper's robustness to obscured or
// out-of-range side-bands: remaining sub-scores still raise the product.
func Score(spectra []*spectral.Spectrum, falts []float64, h int) []float64 {
	prod, _ := ScoreDetail(spectra, falts, h, 2)
	return prod
}

// ScoreDetail computes the heuristic product trace (as Score) plus, per
// bin, the number of sub-scores exceeding minRatio. A genuine moving
// side-band elevates *every* measurement's sub-score at the carrier
// frequency, while artifacts (probes sampling the fluctuating flank of a
// static line) elevate only a few — so requiring a majority of elevated
// sub-scores discriminates carriers from ghosts without sacrificing the
// paper's robustness to a minority of obscured side-bands.
func ScoreDetail(spectra []*spectral.Spectrum, falts []float64, h int, minRatio float64) ([]float64, []int) {
	n := len(spectra)
	if n < 2 {
		panic(fmt.Sprintf("core: need at least 2 measurements, got %d", n))
	}
	if len(falts) != n {
		panic(fmt.Sprintf("core: %d spectra but %d alternation frequencies", n, len(falts)))
	}
	if h == 0 {
		panic("core: harmonic must be nonzero")
	}
	base := spectra[0]
	for _, s := range spectra[1:] {
		if s.F0 != base.F0 || s.Fres != base.Fres || s.Bins() != base.Bins() {
			panic("core: measurement spectra must share geometry")
		}
	}
	bins := base.Bins()
	// Bin shift of each measurement for this harmonic.
	shifts := make([]int, n)
	for i, fa := range falts {
		shifts[i] = int(math.Round(float64(h) * fa / base.Fres))
	}
	// Column sums across measurements, for O(1) leave-one-out means.
	colSum := make([]float64, bins)
	for _, s := range spectra {
		for m, v := range s.PmW {
			if v < scoreFloor {
				v = scoreFloor
			}
			colSum[m] += v
		}
	}
	prod := make([]float64, bins)
	elev := make([]int, bins)
	for k := range prod {
		score := 1.0
		count := 0
		for i, s := range spectra {
			m := k + shifts[i]
			if m < 0 || m >= bins {
				continue // out of range: neutral sub-score
			}
			v := s.PmW[m]
			if v < scoreFloor {
				v = scoreFloor
			}
			denom := (colSum[m] - v) / float64(n-1)
			if denom < scoreFloor {
				denom = scoreFloor
			}
			r := v / denom
			score *= r
			if r >= minRatio {
				count++
			}
		}
		prod[k] = score
		elev[k] = count
	}
	return prod, elev
}

// SmoothSpectrum returns a copy of s whose bins are replaced by a
// centered moving average of width w (forced odd). Scoring smoothed
// spectra matched to the side-band linewidth suppresses the chi-square
// tails of per-bin ratios that would otherwise produce false peaks, while
// preserving the ratio between a true side-band and the other
// measurements' floor.
func SmoothSpectrum(s *spectral.Spectrum, w int) *spectral.Spectrum {
	out := s.Clone()
	SmoothSpectrumInto(out, s, w)
	return out
}

// SmoothSpectrumInto is the allocation-free form of SmoothSpectrum: it
// writes the width-w moving average of src into dst, whose PmW must
// already hold src.Bins() elements (e.g. from bufpool.Float — every
// element is overwritten, so a dirty pooled buffer is fine). dst must not
// alias src. Campaigns smooth one ~78k-bin spectrum per measurement, so
// pooling these buffers keeps scoring allocation-free in steady state.
func SmoothSpectrumInto(dst, src *spectral.Spectrum, w int) {
	n := src.Bins()
	if len(dst.PmW) != n {
		panic(fmt.Sprintf("core: smoothing %d bins into a %d-bin destination", n, len(dst.PmW)))
	}
	dst.F0, dst.Fres = src.F0, src.Fres
	if w <= 1 {
		copy(dst.PmW, src.PmW)
		return
	}
	if w%2 == 0 {
		w++
	}
	half := w / 2
	var acc float64
	// Prefix-sum sliding window: O(n) for any width.
	for i := 0; i < n && i <= half; i++ {
		acc += src.PmW[i]
	}
	count := minInt(half+1, n)
	for i := 0; i < n; i++ {
		dst.PmW[i] = acc / float64(count)
		if hi := i + half + 1; hi < n {
			acc += src.PmW[hi]
			count++
		}
		if lo := i - half; lo >= 0 {
			acc -= src.PmW[lo]
			count--
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SubScores returns the raw per-measurement sub-score traces F_{i,h}(f)
// of Equation 2, out[i][k] being measurement i's sub-score at bin k.
// Useful for ablating the combination rule (product vs sum) and for
// diagnosing which measurement contributed a detection.
func SubScores(spectra []*spectral.Spectrum, falts []float64, h int) [][]float64 {
	n := len(spectra)
	if n < 2 || len(falts) != n || h == 0 {
		panic("core: SubScores needs >=2 matching spectra and a nonzero harmonic")
	}
	base := spectra[0]
	bins := base.Bins()
	shifts := make([]int, n)
	for i, fa := range falts {
		shifts[i] = int(math.Round(float64(h) * fa / base.Fres))
	}
	colSum := make([]float64, bins)
	for _, s := range spectra {
		for m, v := range s.PmW {
			if v < scoreFloor {
				v = scoreFloor
			}
			colSum[m] += v
		}
	}
	out := make([][]float64, n)
	for i := range out {
		trace := make([]float64, bins)
		s := spectra[i]
		for k := range trace {
			m := k + shifts[i]
			if m < 0 || m >= bins {
				trace[k] = 1
				continue
			}
			v := s.PmW[m]
			if v < scoreFloor {
				v = scoreFloor
			}
			denom := (colSum[m] - v) / float64(n-1)
			if denom < scoreFloor {
				denom = scoreFloor
			}
			trace[k] = v / denom
		}
		out[i] = trace
	}
	return out
}

// DefaultHarmonics is the set the paper's campaigns evaluate: positive
// and negative 1st through 5th harmonics of f_alt (§3).
func DefaultHarmonics() []int {
	return []int{1, -1, 2, -2, 3, -3, 4, -4, 5, -5}
}

// ScoreAll evaluates the heuristic for every harmonic in hs and returns a
// map harmonic → score trace.
func ScoreAll(spectra []*spectral.Spectrum, falts []float64, hs []int) map[int][]float64 {
	out := make(map[int][]float64, len(hs))
	for _, h := range hs {
		out[h] = Score(spectra, falts, h)
	}
	return out
}
