package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"fase/internal/activity"
	"fase/internal/dsp/peaks"
	"fase/internal/dsp/spectral"
	"fase/internal/emsim"
	"fase/internal/microbench"
	"fase/internal/obs"
	"fase/internal/specan"
)

// Process-wide campaign counters; per-run detail goes through Runner.Obs.
var (
	campaignsTotal  = obs.Default.Counter(obs.MetricCampaigns)
	detectionsTotal = obs.Default.Counter(obs.MetricDetections)
)

// Campaign describes one FASE measurement campaign: a frequency range, a
// resolution bandwidth, and a ladder of alternation frequencies
// f_alt1, f_alt1+f_Δ, …, as in Figure 10.
type Campaign struct {
	// F1, F2 bound the scanned frequency range, Hz.
	F1, F2 float64
	// Fres is the spectrum resolution (Figure 10's f_res).
	Fres float64
	// FAlt1 is the first alternation frequency; FDelta the step between
	// successive measurements.
	FAlt1, FDelta float64
	// NumAlts is the number of alternation frequencies (the paper uses
	// 5). Zero means 5.
	NumAlts int
	// Harmonics to score; nil means DefaultHarmonics (±1..±5).
	Harmonics []int
	// Averages per spectrum; zero means 4 (§3).
	Averages int
	// MinScore is the detection threshold on the heuristic output; zero
	// means 30. A literal zero threshold (accept every candidate peak)
	// must be requested with the MinScoreZero sentinel — the same
	// zero-value pattern window.Default uses to keep Rectangular
	// selectable.
	MinScore float64
	// SmoothBins is the moving-average width (bins) applied to spectra
	// before scoring, matched to the side-band linewidth. Zero means 9.
	SmoothBins int
	// MergeBins is the radius (bins) within which detections from
	// different harmonics merge into one carrier. Zero means 24.
	MergeBins int
	// MinElevated is the number of sub-scores that must individually
	// exceed 2× at a detection (see ScoreDetail). Zero means a majority
	// (NumAlts/2 + 1); negative disables the gate.
	MinElevated int
	// X, Y is the activity pair of the alternation micro-benchmark.
	X, Y activity.Kind
	// Jitter models the micro-benchmark's timing variation; the zero
	// value selects microbench.DefaultJitter.
	Jitter *microbench.Jitter
	// Seed drives all randomness in the campaign.
	Seed int64
	// Parallelism bounds how many captures render concurrently across the
	// campaign's NumAlts simultaneous sweeps (they share one analyzer).
	// Zero means runtime.GOMAXPROCS(0). Results are bit-identical for any
	// setting — see specan.Config.Parallelism.
	Parallelism int
	// NoPlan disables per-segment render planning in the campaign's
	// analyzer (see specan.Config.NoPlan). Planned and unplanned rendering
	// are bit-identical; this is a debugging escape hatch.
	NoPlan bool
	// NoReuse disables the static render cache (specan.Config.ReuseStatic):
	// every capture then re-renders its activity-independent components
	// instead of replaying them from the campaign-scoped cache. Cached and
	// uncached rendering are bit-identical; like NoPlan, this is a
	// debugging escape hatch, not a result-changing switch.
	NoReuse bool
	// NoSegment disables run-length segmentation in load-following
	// renderers (specan.Config.NoSegment): captures then walk the activity
	// trace sample by sample. Segmented and per-sample rendering are
	// bit-identical; like NoPlan, this is a debugging escape hatch.
	NoSegment bool
	// Faults, when non-nil, deterministically degrades the measurement
	// chain (see emsim.FaultPlan): per-capture faults are applied by the
	// campaign's analyzer, and FAltDriftPPM perturbs each sweep's
	// *generated* alternation frequency while scoring still assumes the
	// nominal ladder. Nil — the default — changes nothing; the algorithm
	// under test is never altered, only its input data.
	Faults *emsim.FaultPlan
	// MaxFFT caps the analyzer's per-segment transform size (power of
	// two ≥ 64; see specan.Config.MaxFFT). Zero keeps the analyzer
	// default (1<<17). Smaller caps split a band into more, shorter
	// captures — the knob that makes capture counts a meaningful budget
	// currency for adaptive planning, and it changes segment geometry,
	// so results are NOT bit-identical across MaxFFT values.
	MaxFFT int
	// Budget is the hard measurement budget for adaptive campaigns,
	// in captures. It must be positive when Adaptive is set and zero
	// otherwise; the planner never renders beyond it (specan.Meter).
	Budget int
	// Adaptive, when non-nil, replaces the exhaustive NumAlts-sweep
	// raster with the budgeted coarse-to-fine planner (see AdaptivePlan):
	// a coarse reconnaissance pass, a priority queue of candidate
	// windows, and score-gated refinement under Budget. Adaptive results
	// are judged by the verify corpus' recall-vs-budget gates, not by
	// bit-equality; the nil default leaves the exhaustive path — and its
	// bit-identity contract — untouched.
	Adaptive *AdaptivePlan
}

// MinScoreZero is the sentinel for Campaign.MinScore that requests a
// literal 0 detection threshold. The zero value of MinScore means "use
// the default" (30), so — as with window.Default — an explicit sentinel
// is needed to make the boundary value selectable. Any other negative
// MinScore is rejected by Validate.
const MinScoreZero = -1

// Validate reports the first configuration error in the campaign:
// inverted or empty frequency ranges, non-positive resolution, a
// malformed alternation ladder, or a negative threshold that is not the
// MinScoreZero sentinel. Runner.RunE calls it before doing any work, so
// misconfiguration surfaces as a returned error instead of a panic deep
// in the sweep or a silently empty result.
func (c Campaign) Validate() error {
	// Non-finite inputs pass every ordered comparison below (NaN compares
	// false against everything), so reject them explicitly before the
	// range checks — a NaN Fres would otherwise surface as an integer
	// conversion panic deep in the sweep planner.
	for name, v := range map[string]float64{
		"F1": c.F1, "F2": c.F2, "Fres": c.Fres,
		"FAlt1": c.FAlt1, "FDelta": c.FDelta, "MinScore": c.MinScore,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: campaign %s %g is not finite", name, v)
		}
	}
	if c.Fres <= 0 {
		return fmt.Errorf("core: campaign resolution Fres must be positive, got %g Hz", c.Fres)
	}
	if c.F2 <= c.F1 {
		return fmt.Errorf("core: campaign range [%g, %g] Hz is empty or inverted", c.F1, c.F2)
	}
	if c.F1 < 0 {
		return fmt.Errorf("core: campaign start frequency %g Hz is negative", c.F1)
	}
	if c.FAlt1 <= 0 || c.FDelta <= 0 {
		return fmt.Errorf("core: campaign needs positive FAlt1/FDelta, got %g/%g", c.FAlt1, c.FDelta)
	}
	if c.NumAlts != 0 && c.NumAlts < 2 {
		return fmt.Errorf("core: campaign needs at least 2 alternation frequencies, got %d", c.NumAlts)
	}
	// Individually finite FAlt1/FDelta can still overflow the ladder top
	// (e.g. both near MaxFloat64), which would feed Inf alternation
	// frequencies into the sweeps.
	n := c.NumAlts
	if n == 0 {
		n = 5
	}
	if top := c.FAlt1 + float64(n-1)*c.FDelta; math.IsInf(top, 0) {
		return fmt.Errorf("core: alternation ladder overflows (FAlt1 %g + %d×FDelta %g)", c.FAlt1, n-1, c.FDelta)
	}
	if c.MinScore < 0 && c.MinScore != MinScoreZero {
		return fmt.Errorf("core: campaign MinScore %g is negative (use MinScoreZero for a zero threshold)", c.MinScore)
	}
	if c.Averages < 0 {
		return fmt.Errorf("core: campaign Averages must be non-negative, got %d", c.Averages)
	}
	if c.MaxFFT != 0 && (c.MaxFFT < 64 || c.MaxFFT&(c.MaxFFT-1) != 0) {
		return fmt.Errorf("core: campaign MaxFFT must be a power of two >= 64, got %d", c.MaxFFT)
	}
	if c.Budget < 0 {
		return fmt.Errorf("core: campaign Budget must be positive, got %d captures", c.Budget)
	}
	if c.Adaptive != nil && c.Budget == 0 {
		return fmt.Errorf("core: adaptive campaign needs a positive capture Budget")
	}
	if c.Adaptive == nil && c.Budget > 0 {
		return fmt.Errorf("core: campaign Budget %d is only meaningful with an AdaptivePlan", c.Budget)
	}
	if c.Adaptive != nil {
		if err := c.Adaptive.validate(c); err != nil {
			return err
		}
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

func (c Campaign) withDefaults() Campaign {
	if c.NumAlts == 0 {
		c.NumAlts = 5
	}
	if c.Harmonics == nil {
		c.Harmonics = DefaultHarmonics()
	}
	if c.Averages == 0 {
		c.Averages = 4
	}
	if c.MinScore == MinScoreZero {
		c.MinScore = 0
	} else if c.MinScore == 0 {
		c.MinScore = 30
	}
	if c.SmoothBins == 0 {
		// Matched smoothing must stay below the f_Δ spacing in bins, or
		// one measurement's side-band bleeds into the others' bins at the
		// same frequency and suppresses the score.
		w := int(0.9 * c.FDelta / c.Fres)
		if w > 15 {
			w = 15
		}
		if w%2 == 0 {
			w--
		}
		if w < 1 {
			w = 1
		}
		c.SmoothBins = w
	}
	if c.MergeBins == 0 {
		c.MergeBins = 24
	}
	if c.MinElevated == 0 {
		c.MinElevated = c.NumAlts/2 + 1
	}
	if c.Jitter == nil {
		j := microbench.DefaultJitter()
		c.Jitter = &j
	}
	if c.Adaptive != nil {
		// Resolve into a copy so the caller's plan is never mutated.
		ap := c.Adaptive.withDefaults(c)
		c.Adaptive = &ap
	}
	return c
}

// FAlts returns the campaign's alternation-frequency ladder.
func (c Campaign) FAlts() []float64 {
	n := c.NumAlts
	if n == 0 {
		n = 5
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = c.FAlt1 + float64(i)*c.FDelta
	}
	return out
}

// PaperCampaigns returns the three measurement campaigns of Figure 10
// with the given activity pair. The 0–4 MHz campaign starts at 100 kHz
// here: the paper's antenna (AOR LA400) rolls off below the long-wave
// band, and bins below f_alt cannot host side-bands anyway.
func PaperCampaigns(x, y activity.Kind) []Campaign {
	return []Campaign{
		{F1: 0.1e6, F2: 4e6, Fres: 50, FAlt1: 43.3e3, FDelta: 0.5e3, X: x, Y: y},
		{F1: 4e6, F2: 120e6, Fres: 500, FAlt1: 43.3e3, FDelta: 5e3, X: x, Y: y},
		{F1: 120e6, F2: 1200e6, Fres: 500, FAlt1: 1.8e6, FDelta: 100e3, X: x, Y: y},
	}
}

// Measurement is one recorded spectrum of a campaign.
type Measurement struct {
	FAlt     float64
	Spectrum *spectral.Spectrum
}

// Detection is one carrier FASE identified.
type Detection struct {
	// Freq is the computed carrier frequency.
	Freq float64
	// Bin is Freq's index on the campaign's score grid (Result.Grid),
	// letting provenance consumers read the per-harmonic traces behind
	// this detection without re-deriving the bin.
	Bin int
	// Score is the strongest heuristic value across harmonics.
	Score float64
	// BestHarmonic is the harmonic achieving Score.
	BestHarmonic int
	// Harmonics lists every harmonic whose score exceeded the threshold
	// at this carrier (redundant confirmations, §2.3).
	Harmonics []int
	// MagnitudeDBm is the carrier's spectral magnitude (max across the
	// campaign's measurements at Freq).
	MagnitudeDBm float64
	// DepthDB quantifies modulation strength: first-harmonic side-band
	// power relative to the carrier, in dB (more negative = shallower).
	DepthDB float64
}

// Result is a completed campaign.
type Result struct {
	Campaign     Campaign
	Measurements []Measurement
	// Scores maps harmonic → heuristic trace over the spectrum grid.
	Scores map[int][]float64
	// Elevated maps harmonic → per-bin count of sub-scores above 2×
	// (ScoreDetail), the ghost-rejection gate.
	Elevated map[int][]int
	// Detections, sorted by frequency.
	Detections []Detection
	// SimulatedSeconds is the observation time the modeled spectrum
	// analyzer spent across all sweeps (NumAlts × Analyzer.TotalDuration)
	// — the paper's scan time, as opposed to the simulation's wall time.
	SimulatedSeconds float64
	// Captures is the number of analyzer captures the campaign rendered —
	// the measurement cost the adaptive planner budgets. The exhaustive
	// raster spends NumAlts × segments × Averages.
	Captures int64
	// Adaptive carries the planner's decision record on adaptive
	// campaigns (budget spend, per-window outcomes); nil on the
	// exhaustive path.
	Adaptive *obs.AdaptiveStats
}

// Grid returns the frequency of score bin k.
func (r *Result) Grid(k int) float64 {
	return r.Measurements[0].Spectrum.Freq(k)
}

// Runner executes campaigns against a scene.
type Runner struct {
	Scene *emsim.Scene
	// NearField/NearFieldGainDB select the localization probe model.
	NearField       bool
	NearFieldGainDB float64
	// Obs, when non-nil, instruments the campaign: stage wall/CPU
	// timings, per-capture render/FFT time, planner and cache
	// statistics, and detection provenance, all folded into a run
	// manifest by RunE (via obs.Run.Finish). Attach an obs.Tracer to
	// also record campaign → sweep → capture spans. Instrumentation
	// never changes results (enforced by the equivalence tests).
	Obs *obs.Run
}

// Run executes the campaign: one sweep per alternation frequency with the
// micro-benchmark generating that alternation, heuristic scoring for
// every harmonic, and peak detection to produce carrier detections. It
// panics on a misconfigured campaign; RunE is the error-returning form.
func (r *Runner) Run(c Campaign) *Result {
	res, err := r.RunE(c)
	if err != nil {
		panic(err)
	}
	return res
}

// RunE is Run with configuration errors returned instead of panicking:
// the campaign is checked with Validate (and the Runner for a Scene)
// before any work starts. When Runner.Obs is set, the four pipeline
// stages — sweeps, smooth, score, detect — are timed and traced, and the
// run's manifest is finalized with the resolved configuration and per-
// detection provenance before returning.
func (r *Runner) RunE(c Campaign) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if r.Scene == nil {
		return nil, fmt.Errorf("core: Runner needs a Scene")
	}
	c = c.withDefaults()
	if c.Adaptive != nil {
		return r.runAdaptive(c)
	}
	// The exhaustive path runs through the shard API (shard.go): the
	// ladder decomposes into per-sweep shards that render concurrently on
	// one shared analyzer here, and on a distributed worker fleet in
	// internal/service — the two paths execute the same code, so they are
	// bit-identical by construction.
	p := &ShardPlan{Campaign: c, FAlts: c.FAlts()}
	run := r.Obs
	var camp obs.Span
	if run != nil {
		camp = run.Tracer.Begin("campaign")
	}
	an := specan.New(p.AnalyzerConfig(run))
	p.Begin(an, run)
	// The per-f_alt measurements are independent observations of the same
	// noise realization: every sweep uses the campaign seed, so they share
	// measurement noise and differ only in their activity trace. Shared
	// noise cancels in the cross-measurement scoring (common-mode), and it
	// is what lets the static render cache serve all NumAlts sweeps from
	// one build. The sweeps run concurrently; results are written by
	// index, keeping the output identical to a sequential run.
	ms := make([]Measurement, len(p.FAlts))
	endSweeps := run.Stage("sweeps")
	sweepsSpan := camp.Child("sweeps")
	var wg sync.WaitGroup
	for i := range p.FAlts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ms[i] = r.RenderShard(nil, an, p, i, run, sweepsSpan)
		}(i)
	}
	wg.Wait()
	sweepsSpan.End()
	endSweeps()
	return r.ReduceShards(p, ms, run, camp)
}

// emitDetections journals the campaign's merged detections on the
// coordinator track: one detection event per carrier followed by its
// per-harmonic evidence — the journal-stream analogue of the manifest's
// provenance records. Detections are frequency-sorted, so the emission
// order is deterministic.
func emitDetections(run *obs.Run, res *Result, c Campaign) {
	ct := run.Track(0)
	if ct == nil {
		return
	}
	for _, d := range res.Detections {
		ct.Emit(obs.Event{Kind: obs.EventDetection,
			FreqHz: d.Freq, Score: d.Score, Harmonic: d.BestHarmonic})
		for _, h := range c.Harmonics {
			ct.Emit(obs.Event{Kind: obs.EventDetectionHarmonic,
				FreqHz: d.Freq, Harmonic: h,
				Score: res.Scores[h][d.Bin], Elevated: res.Elevated[h][d.Bin]})
		}
	}
}

// campaignConfig is the resolved campaign configuration as recorded in
// the run manifest: every defaulted field filled in, activity kinds as
// their names so the JSON is self-describing.
type campaignConfig struct {
	F1          float64 `json:"f1_hz"`
	F2          float64 `json:"f2_hz"`
	Fres        float64 `json:"fres_hz"`
	FAlt1       float64 `json:"falt1_hz"`
	FDelta      float64 `json:"fdelta_hz"`
	NumAlts     int     `json:"num_alts"`
	Harmonics   []int   `json:"harmonics"`
	Averages    int     `json:"averages"`
	MinScore    float64 `json:"min_score"`
	SmoothBins  int     `json:"smooth_bins"`
	MergeBins   int     `json:"merge_bins"`
	MinElevated int     `json:"min_elevated"`
	X           string  `json:"x"`
	Y           string  `json:"y"`
	Seed        int64   `json:"seed"`
	Parallelism int     `json:"parallelism"`
	NoPlan      bool    `json:"no_plan"`
	NoReuse     bool    `json:"no_reuse"`
	NoSegment   bool    `json:"no_segment"`
	// FaultsInjected flags runs whose measurement chain was degraded by a
	// fault plan; their timings and detections are not comparable to
	// clean runs.
	FaultsInjected bool `json:"faults_injected"`
	// MaxFFT is the analyzer's per-segment transform cap (0 = default).
	MaxFFT int `json:"max_fft,omitempty"`
	// Adaptive/Budget/ReconFres echo the adaptive planner's resolved
	// configuration; all zero on exhaustive campaigns.
	Adaptive    bool    `json:"adaptive,omitempty"`
	Budget      int     `json:"budget,omitempty"`
	ReconFresHz float64 `json:"recon_fres_hz,omitempty"`
}

// manifestConfig converts a defaults-resolved campaign into its manifest
// record.
func manifestConfig(c Campaign) campaignConfig {
	cc := campaignConfig{
		F1: c.F1, F2: c.F2, Fres: c.Fres,
		FAlt1: c.FAlt1, FDelta: c.FDelta, NumAlts: c.NumAlts,
		Harmonics: c.Harmonics, Averages: c.Averages,
		MinScore: c.MinScore, SmoothBins: c.SmoothBins,
		MergeBins: c.MergeBins, MinElevated: c.MinElevated,
		X: c.X.String(), Y: c.Y.String(),
		Seed: c.Seed, Parallelism: c.Parallelism, NoPlan: c.NoPlan, NoReuse: c.NoReuse,
		NoSegment:      c.NoSegment,
		FaultsInjected: c.Faults != nil,
		MaxFFT:         c.MaxFFT,
		Adaptive:       c.Adaptive != nil,
		Budget:         c.Budget,
	}
	if c.Adaptive != nil {
		cc.ReconFresHz = c.Adaptive.ReconFres
	}
	return cc
}

// provenance builds the manifest's detection records: for each detection,
// every harmonic's heuristic score and elevated count at the detection
// bin — the full evidence behind "why did this fire".
func provenance(res *Result, c Campaign) []obs.DetectionRecord {
	recs := make([]obs.DetectionRecord, 0, len(res.Detections))
	for _, d := range res.Detections {
		subs := make([]obs.HarmonicScore, 0, len(c.Harmonics))
		for _, h := range c.Harmonics {
			subs = append(subs, obs.HarmonicScore{
				Harmonic: h,
				Score:    res.Scores[h][d.Bin],
				Elevated: res.Elevated[h][d.Bin],
			})
		}
		recs = append(recs, obs.DetectionRecord{
			FreqHz: d.Freq, Score: d.Score,
			BestHarmonic: d.BestHarmonic, Harmonics: d.Harmonics,
			MagnitudeDBm: d.MagnitudeDBm, DepthDB: d.DepthDB,
			SubScores: subs,
		})
	}
	return recs
}

// staticStrongBins marks bins occupied by a strong line in *every*
// measurement. Genuine side-bands move with f_alt, so their
// min-across-measurements stays at the noise floor; a static carrier or
// interferer keeps all measurements high. Probes that land on such bins
// produce sub-score fluctuations from the line's realization-to-
// realization shape variance — the flank-ghost mechanism — rather than
// evidence of modulation.
func staticStrongBins(smoothed []*spectral.Spectrum, marginDB float64) []bool {
	bins := smoothed[0].Bins()
	out := make([]bool, bins)
	floor := smoothed[0].MedianPower()
	thresh := floor * math.Pow(10, marginDB/10)
	for k := 0; k < bins; k++ {
		minv := smoothed[0].PmW[k]
		for _, s := range smoothed[1:] {
			if s.PmW[k] < minv {
				minv = s.PmW[k]
			}
		}
		out[k] = minv > thresh
	}
	return out
}

// detect converts heuristic traces into merged carrier detections.
func detect(res *Result, spectra, smoothed []*spectral.Spectrum, falts []float64) []Detection {
	c := res.Campaign
	static := staticStrongBins(smoothed, 12)
	bins := len(static)
	type cand struct {
		bin      int
		score    float64
		harmonic int
	}
	var cands []cand
	for _, h := range c.Harmonics {
		trace := res.Scores[h]
		elev := res.Elevated[h]
		shifts := make([]int, len(falts))
		for i, fa := range falts {
			shifts[i] = int(math.Round(float64(h) * fa / c.Fres))
		}
		for _, p := range peaks.Find(trace, peaks.Options{
			MinValue:    c.MinScore,
			MinDistance: c.MergeBins,
		}) {
			if c.MinElevated > 0 && maxIntAround(elev, p.Index, 2) < c.MinElevated {
				continue // ghost: only a minority of sub-scores elevated
			}
			// Flank-ghost gate: if a majority of this candidate's probe
			// positions sit on static strong lines, the score came from
			// line-shape variance, not from moving side-bands.
			onStatic := 0
			for _, sh := range shifts {
				m := p.Index + sh
				hit := false
				for k := m - 2; k <= m+2; k++ {
					if k >= 0 && k < bins && static[k] {
						hit = true
						break
					}
				}
				if hit {
					onStatic++
				}
			}
			if c.MinElevated > 0 && onStatic >= c.MinElevated {
				continue
			}
			cands = append(cands, cand{bin: p.Index, score: p.Value, harmonic: h})
		}
	}
	// Merge candidates within c.MergeBins of each other; the
	// highest score wins, other harmonics become confirmations.
	sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })
	var merged []Detection
	taken := make([]int, 0, len(cands))
	for _, cd := range cands {
		idx := -1
		for mi, tb := range taken {
			if abs(cd.bin-tb) <= c.MergeBins {
				idx = mi
				break
			}
		}
		if idx >= 0 {
			if !containsInt(merged[idx].Harmonics, cd.harmonic) {
				merged[idx].Harmonics = append(merged[idx].Harmonics, cd.harmonic)
			}
			continue
		}
		d := Detection{
			Freq:         res.Grid(cd.bin),
			Bin:          cd.bin,
			Score:        cd.score,
			BestHarmonic: cd.harmonic,
			Harmonics:    []int{cd.harmonic},
		}
		d.MagnitudeDBm, d.DepthDB = measureCarrier(spectra, falts, cd.bin, c.MergeBins)
		merged = append(merged, d)
		taken = append(taken, cd.bin)
	}
	merged = filterArtifacts(merged, c, falts)
	sort.Slice(merged, func(a, b int) bool { return merged[a].Freq < merged[b].Freq })
	return merged
}

// maxDepthDB rejects detections whose "side-bands" dwarf their carrier.
// Amplitude modulation cannot put more power in a side-band than in the
// carrier (full-depth AM puts half); a large positive depth means the
// heuristic latched onto the flank of a *different* strong line at an
// falt offset. +6 dB leaves room for nearly-full-depth modulation of weak
// lines (memory refresh) measured against noisy carrier bins.
const maxDepthDB = 6

// filterArtifacts drops two classes of automation artifacts the paper's
// visual inspection would discard:
//
//  1. Detections seen only by a single higher harmonic (|h| >= 2) at
//     modest score. For |h| >= 2 the probe positions h·falt_i disperse by
//     h·f_Δ, so a static narrow line whose shape varies slightly between
//     measurements can light up one sub-score; genuine carriers are
//     corroborated by a second harmonic or by an overwhelming score.
//  2. Ghosts at m·falt offsets from a much stronger detection: around a
//     strong carrier, the shifted probes sample the carrier's own flanks,
//     whose realization-to-realization variation can score above
//     threshold. A detection ≥20× weaker than a neighbour at an m·falt
//     spacing is attributed to that neighbour.
//
// merged must be sorted by descending score (detect emits it that way).
func filterArtifacts(merged []Detection, c Campaign, falts []float64) []Detection {
	const corroboration = 10 // score multiple excusing a lone high harmonic
	const ghostRatio = 20    // score multiple for ghost attribution
	maxH := 1
	for _, h := range c.Harmonics {
		if abs(h) > maxH {
			maxH = abs(h)
		}
	}
	faltMin, faltMax := falts[0], falts[0]
	for _, f := range falts {
		faltMin = math.Min(faltMin, f)
		faltMax = math.Max(faltMax, f)
	}
	slack := float64(c.MergeBins) * c.Fres
	var out []Detection
	for _, d := range merged {
		if d.DepthDB > maxDepthDB {
			continue
		}
		if abs(d.BestHarmonic) >= 2 && d.Score < corroboration*c.MinScore {
			// Probes of higher harmonics disperse, so a lone |h| >= 2 hit
			// needs a first-harmonic confirmation unless overwhelming.
			hasFirst := false
			for _, h := range d.Harmonics {
				if h == 1 || h == -1 {
					hasFirst = true
					break
				}
			}
			if !hasFirst {
				continue
			}
		}
		ghost := false
		for _, strong := range out {
			if strong.Score < ghostRatio*d.Score {
				continue
			}
			// A weak detection harmonically related to the strong one is
			// a genuine comb member (e.g. the 132 kHz refresh fundamental
			// below its 264 kHz harmonic), even if their spacing happens
			// to coincide with a multiple of f_alt.
			if harmonicallyRelated(d.Freq, strong.Freq, 0.004) {
				continue
			}
			df := math.Abs(d.Freq - strong.Freq)
			for m := 1; m <= maxH; m++ {
				if df >= float64(m)*faltMin-slack && df <= float64(m)*faltMax+slack {
					ghost = true
					break
				}
			}
			if ghost {
				break
			}
		}
		if !ghost {
			out = append(out, d)
		}
	}
	return out
}

// measureCarrier reads the carrier magnitude and the first-harmonic
// side-band depth at the detected bin.
func measureCarrier(spectra []*spectral.Spectrum, falts []float64, bin, mergeBins int) (magDBm, depthDB float64) {
	base := spectra[0]
	// Carrier magnitude: the strongest bin within the merge radius across
	// all measurements (the carrier is present in every measurement).
	var carrier float64
	for _, s := range spectra {
		for k := bin - mergeBins; k <= bin+mergeBins; k++ {
			if k >= 0 && k < s.Bins() && s.PmW[k] > carrier {
				carrier = s.PmW[k]
			}
		}
	}
	// Side-band power: each measurement's bins at ±falt_i, averaged.
	var side float64
	var count int
	// Side-band search window: ±8 bins tolerates the jitter-spread of the
	// side-band line around its nominal ±falt offset.
	const sideWin = 8
	for i, s := range spectra {
		shift := int(math.Round(falts[i] / base.Fres))
		for _, k := range []int{bin + shift, bin - shift} {
			if k >= 0 && k < s.Bins() {
				if j := s.MaxIn(s.Freq(k)-sideWin*base.Fres, s.Freq(k)+sideWin*base.Fres); j >= 0 {
					side += s.PmW[j]
					count++
				}
			}
		}
	}
	if count > 0 {
		side /= float64(count)
	}
	magDBm = spectral.DBmFromMw(carrier)
	if carrier > 0 && side > 0 {
		depthDB = 10 * math.Log10(side/carrier)
	} else {
		depthDB = math.Inf(-1)
	}
	return magDBm, depthDB
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// harmonicallyRelated reports whether one frequency is an integer
// multiple of the other within a relative tolerance.
func harmonicallyRelated(a, b float64, tol float64) bool {
	if a > b {
		a, b = b, a
	}
	if a <= 0 {
		return false
	}
	ord := math.Round(b / a)
	return ord >= 1 && math.Abs(b-ord*a) <= tol*b
}

// maxIntAround returns the maximum of s within radius r of index i.
func maxIntAround(s []int, i, r int) int {
	best := 0
	for k := i - r; k <= i+r; k++ {
		if k >= 0 && k < len(s) && s[k] > best {
			best = s[k]
		}
	}
	return best
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
