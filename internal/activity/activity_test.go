package activity

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{Idle: "IDLE", LDM: "LDM", STM: "STM", LDL1: "LDL1",
		LDL2: "LDL2", ADD: "ADD", SUB: "SUB", MUL: "MUL", DIV: "DIV"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should stringify")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for k := Idle; k <= DIV; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	// Case-insensitive and whitespace-tolerant.
	if k, err := ParseKind(" ldm "); err != nil || k != LDM {
		t.Errorf("lenient parse failed: %v %v", k, err)
	}
	if _, err := ParseKind("LDL3"); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestParsePair(t *testing.T) {
	x, y, err := ParsePair("LDM/LDL1")
	if err != nil || x != LDM || y != LDL1 {
		t.Errorf("ParsePair: %v %v %v", x, y, err)
	}
	for _, bad := range []string{"LDM", "LDM/LDL1/ADD", "FOO/LDL1", "LDM/BAR"} {
		if _, _, err := ParsePair(bad); err == nil {
			t.Errorf("ParsePair(%q) should error", bad)
		}
	}
}

func TestLoadRelationships(t *testing.T) {
	ldm, ldl1, ldl2 := LoadOf(LDM), LoadOf(LDL1), LoadOf(LDL2)
	// The paper's key calibration: LDM vs LDL1 differ on memory domains
	// but not the core; LDL2 vs LDL1 differ on the core only.
	if ldm.Core != ldl1.Core {
		t.Error("LDM and LDL1 must load the core equally (same loop code)")
	}
	if ldm.DRAM-ldl1.DRAM < 0.5 || ldm.MemCtl-ldl1.MemCtl < 0.5 {
		t.Error("LDM must load memory domains much more than LDL1")
	}
	if ldl2.Core-ldl1.Core < 0.1 {
		t.Error("LDL2 must load the core more than LDL1")
	}
	if ldl2.DRAM != ldl1.DRAM || ldl2.MemCtl != ldl1.MemCtl {
		t.Error("LDL2 and LDL1 must load memory domains equally")
	}
}

func TestAllLoadsInRange(t *testing.T) {
	for k := Idle; k <= DIV; k++ {
		l := LoadOf(k)
		for _, v := range []float64{l.Core, l.MemCtl, l.DRAM} {
			if v < 0 || v > 1 {
				t.Errorf("%v load %+v out of range", k, l)
			}
		}
	}
}

func TestDomainOf(t *testing.T) {
	l := Load{Core: 0.1, MemCtl: 0.2, DRAM: 0.3}
	if DomainNone.Of(l) != 0 || DomainCore.Of(l) != 0.1 || DomainMemCtl.Of(l) != 0.2 || DomainDRAM.Of(l) != 0.3 {
		t.Error("Domain.Of wrong")
	}
	names := map[Domain]string{DomainNone: "none", DomainCore: "core", DomainMemCtl: "memctl", DomainDRAM: "dram"}
	for d, s := range names {
		if d.String() != s {
			t.Errorf("%v name wrong", d)
		}
	}
	mustPanic(t, func() { Domain(9).Of(l) })
	mustPanic(t, func() { LoadOf(Kind(42)) })
}

func TestTraceAt(t *testing.T) {
	tr := &Trace{Segments: []Segment{
		{Start: 0, Load: Load{Core: 0.1}},
		{Start: 1, Load: Load{Core: 0.2}},
		{Start: 2, Load: Load{Core: 0.3}},
	}}
	cases := map[float64]float64{-1: 0.1, 0: 0.1, 0.5: 0.1, 1: 0.2, 1.99: 0.2, 2: 0.3, 100: 0.3}
	for at, want := range cases {
		if got := tr.At(at).Core; got != want {
			t.Errorf("At(%g).Core = %g, want %g", at, got, want)
		}
	}
	if tr.End() != 2 {
		t.Errorf("End = %g", tr.End())
	}
	if (&Trace{}).At(5) != (Load{}) {
		t.Error("empty trace should return zero load")
	}
}

func TestCursorMatchesAt(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		tr := &Trace{}
		t0 := 0.0
		for i := 0; i < n; i++ {
			tr.Segments = append(tr.Segments, Segment{Start: t0, Load: Load{Core: r.Float64()}})
			t0 += r.Float64()
		}
		// Monotone queries through the cursor must match binary search.
		c := tr.Cursor()
		times := make([]float64, 100)
		for i := range times {
			times[i] = r.Float64() * (t0 + 1)
		}
		sort.Float64s(times)
		for _, q := range times {
			if c.At(q) != tr.At(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCursorEmptyTrace(t *testing.T) {
	c := (&Trace{}).Cursor()
	if c.At(3) != (Load{}) {
		t.Error("empty trace cursor should return zero load")
	}
}

func TestNewConstant(t *testing.T) {
	tr := NewConstant(Load{DRAM: 1})
	if tr.At(0).DRAM != 1 || tr.At(1e9).DRAM != 1 {
		t.Error("constant trace wrong")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	bad := &Trace{Segments: []Segment{{Start: 1}, {Start: 0}}}
	if bad.Validate() == nil {
		t.Error("unsorted trace should fail validation")
	}
	bad2 := &Trace{Segments: []Segment{{Start: 0, Load: Load{Core: 2}}}}
	if bad2.Validate() == nil {
		t.Error("out-of-range load should fail validation")
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
