// Package activity models program activity as a time-varying load on the
// system's power domains.
//
// The paper's micro-benchmarks (§2.2, Fig. 6) alternate between two
// activities — loads/stores hitting different cache levels, or ALU
// operations. What the EM side channel sees is each activity's demand on
// the CPU cores, the on-chip memory interface (memory controller), and the
// DRAM itself: those loads drive regulator duty cycles, refresh scheduling
// disruption, and clock-driven switching currents.
package activity

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies one micro-benchmark activity ("the X-instruction").
type Kind int

const (
	// Idle is the quiescent system (no micro-benchmark running).
	Idle Kind = iota
	// LDM is a load that misses the LLC and accesses main memory.
	LDM
	// STM is a store producing LLC write-back traffic to main memory.
	STM
	// LDL1 is a load that hits in the L1 data cache.
	LDL1
	// LDL2 is a load that hits in the L2 cache.
	LDL2
	// ADD is dependent integer addition.
	ADD
	// SUB is dependent integer subtraction.
	SUB
	// MUL is dependent integer multiplication.
	MUL
	// DIV is dependent integer division.
	DIV
)

// String returns the paper's abbreviation for the activity.
func (k Kind) String() string {
	switch k {
	case Idle:
		return "IDLE"
	case LDM:
		return "LDM"
	case STM:
		return "STM"
	case LDL1:
		return "LDL1"
	case LDL2:
		return "LDL2"
	case ADD:
		return "ADD"
	case SUB:
		return "SUB"
	case MUL:
		return "MUL"
	case DIV:
		return "DIV"
	default:
		return fmt.Sprintf("activity.Kind(%d)", int(k))
	}
}

// ParseKind converts the paper's abbreviation (case-insensitive) back to
// an activity kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "IDLE":
		return Idle, nil
	case "LDM":
		return LDM, nil
	case "STM":
		return STM, nil
	case "LDL1":
		return LDL1, nil
	case "LDL2":
		return LDL2, nil
	case "ADD":
		return ADD, nil
	case "SUB":
		return SUB, nil
	case "MUL":
		return MUL, nil
	case "DIV":
		return DIV, nil
	default:
		return 0, fmt.Errorf("activity: unknown kind %q", s)
	}
}

// ParsePair parses an "X/Y" activity pair such as "LDM/LDL1".
func ParsePair(s string) (Kind, Kind, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("activity: pair must look like LDM/LDL1, got %q", s)
	}
	x, err := ParseKind(parts[0])
	if err != nil {
		return 0, 0, err
	}
	y, err := ParseKind(parts[1])
	if err != nil {
		return 0, 0, err
	}
	return x, y, nil
}

// Load is the normalized demand an activity places on each power domain,
// each in [0, 1].
type Load struct {
	Core   float64 // CPU core logic (drives the core regulator)
	MemCtl float64 // on-chip memory interface (drives its regulator)
	DRAM   float64 // DRAM accesses (drives DIMM regulator, refresh disruption, DRAM clock activity)
}

// LoadOf returns the calibrated load vector for an activity kind.
//
// The vector relationships encode the paper's observations: LDM and LDL1
// keep the cores equally busy (the alternation loop is the same code, §3),
// so LDM/LDL1 modulates only memory-side domains; LDL2 burns more core
// power than LDL1, so LDL2/LDL1 modulates the core regulator and nothing
// memory-side.
func LoadOf(k Kind) Load {
	switch k {
	case Idle:
		return Load{Core: 0.05, MemCtl: 0.01, DRAM: 0.01}
	case LDM:
		return Load{Core: 0.50, MemCtl: 0.90, DRAM: 1.00}
	case STM:
		return Load{Core: 0.50, MemCtl: 0.85, DRAM: 0.95}
	case LDL1:
		return Load{Core: 0.50, MemCtl: 0.05, DRAM: 0.02}
	case LDL2:
		return Load{Core: 0.78, MemCtl: 0.05, DRAM: 0.02}
	case ADD:
		return Load{Core: 0.48, MemCtl: 0.02, DRAM: 0.01}
	case SUB:
		return Load{Core: 0.48, MemCtl: 0.02, DRAM: 0.01}
	case MUL:
		return Load{Core: 0.62, MemCtl: 0.02, DRAM: 0.01}
	case DIV:
		return Load{Core: 0.75, MemCtl: 0.02, DRAM: 0.01}
	default:
		panic(fmt.Sprintf("activity: unknown kind %d", int(k)))
	}
}

// Domain selects one power domain of a Load.
type Domain int

const (
	// DomainNone is a constant zero load (for emitters that no program
	// activity modulates, e.g. AM radio stations or the CPU clock as
	// observed in §1).
	DomainNone Domain = iota
	// DomainCore selects Load.Core.
	DomainCore
	// DomainMemCtl selects Load.MemCtl.
	DomainMemCtl
	// DomainDRAM selects Load.DRAM.
	DomainDRAM
)

// String names the domain.
func (d Domain) String() string {
	switch d {
	case DomainNone:
		return "none"
	case DomainCore:
		return "core"
	case DomainMemCtl:
		return "memctl"
	case DomainDRAM:
		return "dram"
	default:
		return fmt.Sprintf("activity.Domain(%d)", int(d))
	}
}

// Of extracts the domain's component from a load vector.
func (d Domain) Of(l Load) float64 {
	switch d {
	case DomainNone:
		return 0
	case DomainCore:
		return l.Core
	case DomainMemCtl:
		return l.MemCtl
	case DomainDRAM:
		return l.DRAM
	default:
		panic(fmt.Sprintf("activity: unknown domain %d", int(d)))
	}
}

// Segment is a constant-load interval of a trace.
type Segment struct {
	Start float64 // seconds
	Load  Load
}

// Trace is a piecewise-constant load envelope: Segments[i] holds from its
// Start until Segments[i+1].Start (the last holds forever). Segments must
// be sorted by Start; the first segment should start at or before 0.
type Trace struct {
	Segments []Segment
}

// NewConstant returns a trace that holds a single load forever.
func NewConstant(l Load) *Trace {
	return &Trace{Segments: []Segment{{Start: 0, Load: l}}}
}

// At returns the load at time t using binary search. For sample-by-sample
// rendering use a Cursor, which is O(1) amortized for monotone time.
func (tr *Trace) At(t float64) Load {
	if len(tr.Segments) == 0 {
		return Load{}
	}
	i := sort.Search(len(tr.Segments), func(i int) bool { return tr.Segments[i].Start > t })
	if i == 0 {
		return tr.Segments[0].Load
	}
	return tr.Segments[i-1].Load
}

// End returns the start time of the last segment (the trace holds its last
// load beyond this).
func (tr *Trace) End() float64 {
	if len(tr.Segments) == 0 {
		return 0
	}
	return tr.Segments[len(tr.Segments)-1].Start
}

// Cursor iterates a trace with monotonically non-decreasing time queries.
type Cursor struct {
	trace *Trace
	idx   int
}

// Cursor returns a new cursor positioned at the beginning of the trace.
func (tr *Trace) Cursor() *Cursor { return &Cursor{trace: tr} }

// At returns the load at time t. Queries must be non-decreasing in t;
// earlier times return the load at the cursor's current segment.
func (c *Cursor) At(t float64) Load {
	segs := c.trace.Segments
	if len(segs) == 0 {
		return Load{}
	}
	for c.idx+1 < len(segs) && segs[c.idx+1].Start <= t {
		c.idx++
	}
	return segs[c.idx].Load
}

// SampleRuns iterates the maximal constant-segment runs of the uniform
// sample grid t_i = start + i·dt, i ∈ [0, n): each Next yields a half-open
// sample range [i0, i1) whose samples all read the same trace segment.
//
// Boundary samples are assigned by the exact Cursor predicate
// (Segments[s+1].Start <= t_i), evaluated with the same float expressions
// a per-sample Cursor walk uses, so for every i the run covering i carries
// precisely the load Cursor.At(t_i) would return — renderers can iterate
// runs instead of samples with bit-identical results. dt must be positive.
type SampleRuns struct {
	segs      []Segment
	start, dt float64
	n         int
	i         int // next sample index to assign
	seg       int // segment the cursor sits on at sample i
}

// SampleRuns returns a run iterator over the first n samples of the grid
// t_i = start + i·dt.
func (tr *Trace) SampleRuns(start, dt float64, n int) SampleRuns {
	sr := SampleRuns{segs: tr.Segments, start: start, dt: dt, n: n}
	// Position the cursor at sample 0 — the same advance a Cursor performs
	// for its first At(t_0) query (t_0 = start + 0·dt = start).
	for sr.seg+1 < len(sr.segs) && sr.segs[sr.seg+1].Start <= start {
		sr.seg++
	}
	return sr
}

// Next returns the next run [i0, i1) and its load; ok is false when the
// grid is exhausted.
func (sr *SampleRuns) Next() (load Load, i0, i1 int, ok bool) {
	if sr.i >= sr.n {
		return Load{}, 0, 0, false
	}
	i0 = sr.i
	if len(sr.segs) == 0 {
		// Empty trace: Cursor.At returns the zero load everywhere.
		sr.i = sr.n
		return Load{}, i0, sr.n, true
	}
	load = sr.segs[sr.seg].Load
	if sr.seg+1 >= len(sr.segs) {
		sr.i = sr.n
		return load, i0, sr.n, true
	}
	next := sr.segs[sr.seg+1].Start
	// The run ends at the smallest i with t_i >= next (the cursor's advance
	// predicate). t_i = start + float64(i)·dt is non-decreasing in i (float
	// rounding is monotone), so an arithmetic estimate fixed up by direct
	// predicate evaluation lands on the exact boundary in O(1).
	est := i0 + 1
	if e := (next - sr.start) / sr.dt; e > float64(i0+1) {
		if e >= float64(sr.n) {
			est = sr.n
		} else {
			est = int(e)
		}
	}
	for est > i0+1 && sr.start+float64(est-1)*sr.dt >= next {
		est--
	}
	for est < sr.n && sr.start+float64(est)*sr.dt < next {
		est++
	}
	i1 = est
	sr.i = i1
	if i1 < sr.n {
		// Advance the cursor to the segment sample i1 reads — possibly
		// skipping segments shorter than a sample period, exactly as
		// Cursor.At does.
		t := sr.start + float64(i1)*sr.dt
		for sr.seg+1 < len(sr.segs) && sr.segs[sr.seg+1].Start <= t {
			sr.seg++
		}
	}
	return load, i0, i1, true
}

// DomainRuns iterates SampleRuns projected onto one power domain, merging
// adjacent runs whose projected loads are bit-equal — the form a
// load-following renderer consumes: within one merged run every sample's
// d.Of(Cursor.At(t_i)) is the same float64. For DomainNone every capture
// collapses to a single zero-load run.
type DomainRuns struct {
	sr   SampleRuns
	dom  Domain
	pend bool
	load float64
	i0   int
	i1   int
}

// DomainRuns returns a domain-projected, value-merged run iterator over
// the first n samples of the grid t_i = start + i·dt.
func (tr *Trace) DomainRuns(d Domain, start, dt float64, n int) DomainRuns {
	return DomainRuns{sr: tr.SampleRuns(start, dt, n), dom: d}
}

// Next returns the next merged run [i0, i1) and its projected load; ok is
// false when the grid is exhausted.
func (dr *DomainRuns) Next() (load float64, i0, i1 int, ok bool) {
	if !dr.pend {
		l, a, b, ok := dr.sr.Next()
		if !ok {
			return 0, 0, 0, false
		}
		dr.load, dr.i0, dr.i1 = dr.dom.Of(l), a, b
	}
	dr.pend = false
	for {
		l, a, b, ok := dr.sr.Next()
		if !ok {
			return dr.load, dr.i0, dr.i1, true
		}
		if v := dr.dom.Of(l); v == dr.load {
			dr.i1 = b
			continue
		} else {
			load, i0, i1 = dr.load, dr.i0, dr.i1
			dr.load, dr.i0, dr.i1 = v, a, b
			dr.pend = true
			return load, i0, i1, true
		}
	}
}

// DomainConstant reports whether the trace's projection onto domain d is a
// single constant over every segment readable in the time window
// [t0, t1] (inclusive of both sample endpoints), and returns that
// constant. The test is conservative: it inspects every segment whose
// start falls in the window, including segments too short for any sample
// to land on, so a true result guarantees every sample in the window
// reads the returned value, while a false result may miss a constancy
// that holds on the sample grid.
func (tr *Trace) DomainConstant(d Domain, t0, t1 float64) (float64, bool) {
	segs := tr.Segments
	if len(segs) == 0 {
		return 0, true
	}
	i := sort.Search(len(segs), func(i int) bool { return segs[i].Start > t0 })
	if i > 0 {
		i--
	}
	v := d.Of(segs[i].Load)
	for i++; i < len(segs) && segs[i].Start <= t1; i++ {
		if d.Of(segs[i].Load) != v {
			return 0, false
		}
	}
	return v, true
}

// Validate checks trace invariants: sorted starts, loads within [0, 1].
func (tr *Trace) Validate() error {
	for i, s := range tr.Segments {
		if i > 0 && s.Start < tr.Segments[i-1].Start {
			return fmt.Errorf("activity: segment %d starts at %g before previous %g", i, s.Start, tr.Segments[i-1].Start)
		}
		for _, v := range []float64{s.Load.Core, s.Load.MemCtl, s.Load.DRAM} {
			if v < 0 || v > 1 {
				return fmt.Errorf("activity: segment %d load %+v out of [0,1]", i, s.Load)
			}
		}
	}
	return nil
}
