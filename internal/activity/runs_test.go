package activity

import (
	"math"
	"math/rand"
	"testing"
)

// randTrace builds an adversarial trace: random segment starts (possibly
// negative, duplicated, or closer together than a sample period), with
// loads drawn from a small palette so adjacent segments often repeat a
// domain value — the case DomainRuns must merge.
func randTrace(r *rand.Rand) *Trace {
	nseg := r.Intn(40)
	palette := []Load{
		{Core: 0.05, MemCtl: 0.01, DRAM: 0.01},
		{Core: 0.50, MemCtl: 0.90, DRAM: 1.00},
		{Core: 0.50, MemCtl: 0.05, DRAM: 0.02},
		{Core: r.Float64(), MemCtl: r.Float64(), DRAM: r.Float64()},
	}
	tr := &Trace{}
	t := -r.Float64() * 1e-3
	for i := 0; i < nseg; i++ {
		tr.Segments = append(tr.Segments, Segment{Start: t, Load: palette[r.Intn(len(palette))]})
		if r.Intn(4) != 0 { // leave some duplicate starts in place
			t += r.Float64() * 50e-6 // 0..50 µs vs ~2.4 µs sample period
		}
	}
	return tr
}

// TestSampleRunsMatchCursor is the segmentation property test: the runs
// must partition the sample grid, and every sample inside a run must read
// exactly the load a per-sample Cursor walk returns — bit for bit, since
// the renderers' one-pole and wander state sequences are only reproduced
// when the segmented walk feeds them identical inputs at identical
// sample positions.
func TestSampleRunsMatchCursor(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		tr := randTrace(r)
		start := r.Float64() * 1e-3
		dt := 1 / (200e3 + r.Float64()*400e3)
		n := 1 + r.Intn(2048)

		cur := tr.Cursor()
		runs := tr.SampleRuns(start, dt, n)
		next := 0
		for {
			load, i0, i1, ok := runs.Next()
			if !ok {
				break
			}
			if i0 != next || i1 <= i0 || i1 > n {
				t.Fatalf("trial %d: run [%d,%d) does not continue partition at %d", trial, i0, i1, next)
			}
			next = i1
			for i := i0; i < i1; i++ {
				want := cur.At(start + float64(i)*dt)
				if load != want {
					t.Fatalf("trial %d: sample %d in run [%d,%d): run load %+v, cursor %+v",
						trial, i, i0, i1, load, want)
				}
			}
		}
		if next != n {
			t.Fatalf("trial %d: runs covered [0,%d), want [0,%d)", trial, next, n)
		}
	}
}

// TestDomainRunsMatchCursor extends the property to the domain-projected,
// value-merged iterator the renderers consume: full partition, bit-exact
// agreement with the cursor projection at every sample, and maximal
// merging (adjacent runs never carry bit-equal loads — a renderer relies
// on that to re-derive per-run constants only when the value moved).
func TestDomainRunsMatchCursor(t *testing.T) {
	r := rand.New(rand.NewSource(1851))
	for trial := 0; trial < 200; trial++ {
		tr := randTrace(r)
		start := r.Float64() * 1e-3
		dt := 1 / (200e3 + r.Float64()*400e3)
		n := 1 + r.Intn(2048)
		for _, dom := range []Domain{DomainNone, DomainCore, DomainMemCtl, DomainDRAM} {
			cur := tr.Cursor()
			runs := tr.DomainRuns(dom, start, dt, n)
			next, prev := 0, math.NaN()
			for {
				load, i0, i1, ok := runs.Next()
				if !ok {
					break
				}
				if i0 != next || i1 <= i0 || i1 > n {
					t.Fatalf("trial %d %v: run [%d,%d) does not continue partition at %d",
						trial, dom, i0, i1, next)
				}
				if load == prev {
					t.Fatalf("trial %d %v: adjacent runs both carry %v — not merged", trial, dom, load)
				}
				next, prev = i1, load
				for i := i0; i < i1; i++ {
					want := dom.Of(cur.At(start + float64(i)*dt))
					if math.Float64bits(load) != math.Float64bits(want) {
						t.Fatalf("trial %d %v: sample %d in run [%d,%d): run load %v, cursor %v",
							trial, dom, i, i0, i1, load, want)
					}
				}
			}
			if next != n {
				t.Fatalf("trial %d %v: runs covered [0,%d), want [0,%d)", trial, dom, next, n)
			}
			if dom == DomainNone && prev != 0 {
				t.Fatalf("trial %d: DomainNone run load %v, want 0", trial, prev)
			}
		}
	}
}

// TestDomainConstantSoundness checks the conditional-static classifier's
// precondition: whenever DomainConstant reports a window constant, every
// sample a capture grid can place in that window must read exactly that
// value (the converse — detecting every grid-level constancy — is not
// required and not tested).
func TestDomainConstantSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		tr := randTrace(r)
		start := r.Float64() * 1e-3
		dt := 1 / (200e3 + r.Float64()*400e3)
		n := 1 + r.Intn(2048)
		t1 := start + float64(n-1)*dt
		for _, dom := range []Domain{DomainNone, DomainCore, DomainMemCtl, DomainDRAM} {
			v, ok := tr.DomainConstant(dom, start, t1)
			if !ok {
				continue
			}
			cur := tr.Cursor()
			for i := 0; i < n; i++ {
				got := dom.Of(cur.At(start + float64(i)*dt))
				if math.Float64bits(got) != math.Float64bits(v) {
					t.Fatalf("trial %d %v: DomainConstant=%v but sample %d reads %v",
						trial, dom, v, i, got)
				}
			}
		}
	}
}
