package machine

import (
	"math/rand"
	"testing"

	"fase/internal/activity"
	"fase/internal/emsim"
	"fase/internal/microbench"
)

// noWanderScene exercises the segmented render paths randomScene cannot:
// a wander-free regulator (whose constant-load tail renders through the
// fused loop with no per-sample OU draw) and an unspread but
// load-following clock (the p3m-laptop's SDRAM clock class).
func noWanderScene(r *rand.Rand) *emsim.Scene {
	scene := &emsim.Scene{}
	scene.Add(
		&SwitchingRegulator{
			Label:          "quiet reg",
			FSw:            250e3 + r.Float64()*200e3,
			BaseDuty:       0.08 + r.Float64()*0.2,
			DutySwing:      0.03 + r.Float64()*0.05,
			AmpSwing:       r.Float64() * 0.3,
			FundamentalDBm: -110,
			MaxHarmonics:   1 + r.Intn(8),
			LoopBw:         65e3,
			Dom:            activity.DomainMemCtl,
		},
		&SSCClock{
			Label:          "unspread memory clock",
			F0:             0.5e6 + r.Float64()*2e6,
			FundamentalDBm: -112,
			IdleFrac:       0.5,
			MaxHarmonics:   1 + 2*r.Intn(2),
			Dom:            activity.DomainDRAM,
		},
		&emsim.Background{FloorDBmPerHz: -172},
	)
	return scene
}

// TestSegmentedRenderEquivalence is the run-length segmentation's core
// property test: the default render (change-point segmented regulators
// and clocks, blocked refresh impulse train) must be bit-identical to the
// per-sample escape hatch (Capture.NoSegment) — across randomized scenes,
// bands, seeds, and activity traces (idle, constant, and alternating at a
// rate that splits every capture into thousands of runs).
func TestSegmentedRenderEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(271))
	for trial := 0; trial < 12; trial++ {
		scene := randomScene(r)
		if trial%3 == 0 {
			scene = noWanderScene(r)
		}
		n := 1 << (9 + r.Intn(3)) // 512..2048
		band := emsim.Band{
			Center:     100e3 + r.Float64()*4e6,
			SampleRate: float64(n) * (50 + r.Float64()*200),
		}
		kinds := []activity.Kind{activity.LDM, activity.LDL1, activity.LDL2, activity.Idle}
		traces := []*activity.Trace{
			nil,
			microbench.Constant(kinds[r.Intn(len(kinds))]),
			microbench.Generate(microbench.Config{
				X: kinds[r.Intn(len(kinds))], Y: kinds[r.Intn(len(kinds))],
				FAlt:   30e3 + r.Float64()*20e3,
				Jitter: microbench.DefaultJitter(), Seed: r.Int63(),
			}, 0.5+float64(n)/band.SampleRate),
		}
		for ti, trace := range traces {
			capt := emsim.Capture{
				Band: band, N: n,
				Start:     r.Float64() * 0.2,
				Seed:      r.Int63(),
				Activity:  trace,
				NearField: r.Intn(4) == 0, NearFieldGainDB: 30,
			}
			want := make([]complex128, n)
			ref := capt
			ref.NoSegment = true
			scene.RenderInto(want, ref)
			got := make([]complex128, n)
			scene.RenderInto(got, capt)
			bitsEqual(t, "segmented render", trial*100+ti, got, want)
		}
	}
}
