// Package machine models the EM-emitting components of a computer system:
// switching voltage regulators, DRAM refresh, and (spread-spectrum)
// clocks — the three signal classes the paper discovers (§4) — plus the
// thousands of periodic-but-unmodulated system signals FASE must reject.
//
// Each emitter implements emsim.Emitter, contributing complex-baseband
// signal to captures and exposing ground truth (carrier frequencies, the
// power domain that modulates it) for validating FASE's output.
package machine

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"

	"fase/internal/activity"
	"fase/internal/dsp/filter"
	"fase/internal/emsim"
	"fase/internal/sig"
)

// combScratch holds the per-render working set of a harmonic-comb
// synthesis (harmonic numbers, phasors, step factors). A scene renders
// dozens of comb emitters per capture, so this state is pooled to keep
// steady-state rendering allocation-free.
type combScratch struct {
	ns                        []int
	z, stepStatic, wpow, dpow []complex128
	amp                       []float64
}

var combPool = sync.Pool{New: func() any { return new(combScratch) }}

// grow sizes the phasor slices to k harmonics, reusing capacity.
func (cs *combScratch) grow(k int) {
	if cap(cs.z) < k {
		cs.z = make([]complex128, k)
		cs.stepStatic = make([]complex128, k)
		cs.wpow = make([]complex128, k)
		cs.dpow = make([]complex128, k)
		cs.amp = make([]float64, k)
	}
	cs.z = cs.z[:k]
	cs.stepStatic = cs.stepStatic[:k]
	cs.wpow = cs.wpow[:k]
	cs.dpow = cs.dpow[:k]
	cs.amp = cs.amp[:k]
}

// combPrep is the per-segment state of a harmonic-comb emitter under a
// render plan: the in-band harmonic numbers and each harmonic's static
// per-sample rotation (the nominal comb-line offset from the band center).
// Both depend only on the capture geometry, and both are computed by the
// exact expressions Render evaluates inline, so planned and unplanned
// output agree bit for bit. Read-only once built — one prep serves
// concurrent captures.
type combPrep struct {
	ns         []int
	stepStatic []complex128
}

// prepComb builds the comb prep for harmonics n = first, first+stride, …
// up to maxN of fundamental f0 that land in the band.
func prepComb(band emsim.Band, f0 float64, maxN, first, stride int) *combPrep {
	p := &combPrep{}
	for n := first; n <= maxN; n += stride {
		if band.Contains(float64(n) * f0) {
			p.ns = append(p.ns, n)
		}
	}
	dt := 1 / band.SampleRate
	p.stepStatic = make([]complex128, len(p.ns))
	for k, n := range p.ns {
		s, c := math.Sincos(2 * math.Pi * (float64(n)*f0 - band.Center) * dt)
		p.stepStatic[k] = complex(c, s)
	}
	return p
}

// lineExtent is the extent of a comb of lines at n·f0 for
// n = first, first+stride, … maxN.
func lineExtent(f0 float64, maxN, first, stride int) emsim.Extent {
	var spans []emsim.Span
	for n := first; n <= maxN; n += stride {
		f := float64(n) * f0
		spans = append(spans, emsim.Span{Lo: f, Hi: f})
	}
	return emsim.Extent{Spans: spans}
}

// renderFixedComb accumulates a fixed-amplitude harmonic comb — the
// crystal-clock inner loop — into dst, harmonic-major: groups of up to
// four phasors advance across sample tiles with their state held in
// registers, instead of every phasor making a memory round trip per
// sample. Output is bit-identical to the sample-major loop it replaces:
// per sample, the addends still join dst[i]'s accumulation chain in
// ascending-harmonic order (group passes store partial chains that the
// next pass extends — float addition is applied in the same left-to-right
// order), and each phasor sees the same multiply sequence with
// renormalization at the same global sample positions, because the tile
// length is a multiple of the renorm period and tiles start aligned.
func renderFixedComb(dst []complex128, z, step []complex128, amp []float64) {
	const tile = 4 * sig.RotatorRenorm
	n := len(dst)
	for t0 := 0; t0 < n; t0 += tile {
		t1 := t0 + tile
		if t1 > n {
			t1 = n
		}
		seg := dst[t0:t1]
		k := 0
		for ; k+4 <= len(z); k += 4 {
			z0, z1, z2, z3 := z[k], z[k+1], z[k+2], z[k+3]
			s0, s1, s2, s3 := step[k], step[k+1], step[k+2], step[k+3]
			a0, a1, a2, a3 := amp[k], amp[k+1], amp[k+2], amp[k+3]
			rn := 0
			for i := range seg {
				acc := seg[i]
				acc += complex(a0*real(z0), a0*imag(z0))
				z0 *= s0
				acc += complex(a1*real(z1), a1*imag(z1))
				z1 *= s1
				acc += complex(a2*real(z2), a2*imag(z2))
				z2 *= s2
				acc += complex(a3*real(z3), a3*imag(z3))
				z3 *= s3
				seg[i] = acc
				if rn++; rn >= sig.RotatorRenorm {
					rn = 0
					z0 = sig.Renormalize(z0)
					z1 = sig.Renormalize(z1)
					z2 = sig.Renormalize(z2)
					z3 = sig.Renormalize(z3)
				}
			}
			z[k], z[k+1], z[k+2], z[k+3] = z0, z1, z2, z3
		}
		for ; k < len(z); k++ {
			zk, sk, ak := z[k], step[k], amp[k]
			rn := 0
			for i := range seg {
				seg[i] += complex(ak*real(zk), ak*imag(zk))
				zk *= sk
				if rn++; rn >= sig.RotatorRenorm {
					rn = 0
					zk = sig.Renormalize(zk)
				}
			}
			z[k] = zk
		}
	}
}

// impulseKernel8 is the shared band-limited interpolation kernel for
// impulse-train emitters. An ImpulseKernel is immutable after
// construction, so one instance serves all captures concurrently —
// previously each render rebuilt it.
var impulseKernel8 = sig.NewImpulseKernel(8)

// refreshScratch holds the per-render working set of RefreshEmitter: the
// rank coupling weights and, for the blocked renderer, the surviving
// pulses' positions, issue times, and real areas. Pooled so steady-state
// refresh rendering allocates nothing (the weights slice alone used to
// cost one heap allocation per capture).
type refreshScratch struct {
	weights []float64
	pos, tk []float64
	qw      []float64
}

var refreshPool = sync.Pool{New: func() any { return new(refreshScratch) }}

// growWeights sizes the weights slice to ranks, reusing capacity.
func (sc *refreshScratch) growWeights(ranks int) []float64 {
	if cap(sc.weights) < ranks {
		sc.weights = make([]float64, ranks)
	}
	sc.weights = sc.weights[:ranks]
	return sc.weights
}

// nearGain converts the context's near-field probe setting into a linear
// amplitude factor for system emitters.
func nearGain(ctx *emsim.Context) float64 {
	if !ctx.NearField {
		return 1
	}
	return math.Pow(10, ctx.NearFieldGainDB/20)
}

// wrapPhase keeps a phase accumulator in [-π, π] to preserve precision
// over long captures.
func wrapPhase(p float64) float64 {
	if p > math.Pi {
		p -= 2 * math.Pi * math.Floor((p+math.Pi)/(2*math.Pi))
	} else if p < -math.Pi {
		p += 2 * math.Pi * math.Floor((math.Pi-p)/(2*math.Pi))
	}
	return p
}

// SwitchingRegulator models a buck converter: a rectangular pulse train at
// the switching frequency FSw whose duty cycle tracks the load current of
// the domain it powers. Changing the duty cycle changes the amplitude of
// every harmonic (§4.1), so load alternation AM-modulates the whole
// harmonic comb. The switching oscillator is an RC type with OU frequency
// wander, giving the carrier its Gaussian-looking spread (Fig. 12).
type SwitchingRegulator struct {
	Label string
	// FSw is the nominal switching frequency (usually 200–500 kHz).
	FSw float64
	// BaseDuty is the idle duty cycle (≈ Vout/Vin, e.g. 1V/12V ≈ 0.083).
	BaseDuty float64
	// DutySwing is the duty increase at full load of the domain.
	DutySwing float64
	// AmpSwing is the relative increase of the switching-current
	// amplitude at full load. Buck converters switch the inductor
	// current, which tracks the load; this term dominates the AM for
	// regulators operating near 50% duty, where the harmonic amplitudes
	// are insensitive to duty (d·sinc(n·d) is flat there). Zero for
	// board regulators whose small duty makes the duty term dominate.
	AmpSwing float64
	// FundamentalDBm is the received power of the n=1 line at BaseDuty.
	FundamentalDBm float64
	// MaxHarmonics bounds the rendered comb.
	MaxHarmonics int
	// WanderSigma/WanderTau parameterize the RC oscillator's frequency
	// wander (Hz RMS / correlation time).
	WanderSigma, WanderTau float64
	// LoopBw is the voltage control loop bandwidth; duty responds to load
	// changes through a one-pole filter of this bandwidth.
	LoopBw float64
	// Dom is the power domain whose load modulates the duty cycle.
	Dom activity.Domain
}

// Name implements emsim.Component.
func (g *SwitchingRegulator) Name() string { return g.Label }

// Domain implements emsim.Emitter.
func (g *SwitchingRegulator) Domain() activity.Domain { return g.Dom }

// AMModulated implements emsim.Emitter.
func (g *SwitchingRegulator) AMModulated() bool { return true }

// Carriers implements emsim.Emitter: harmonics of FSw within [f1, f2].
func (g *SwitchingRegulator) Carriers(f1, f2 float64) []float64 {
	return harmonicsIn(g.FSw, g.MaxHarmonics, f1, f2)
}

// BandExtent implements emsim.Extenter: lines at every harmonic of FSw,
// the same frequencies Render's in-band scan tests. (The OU wander spreads
// each line by a few hundred Hz at most, far inside a capture band.)
func (g *SwitchingRegulator) BandExtent() emsim.Extent {
	return lineExtent(g.FSw, g.MaxHarmonics, 1, 1)
}

// Prepare implements emsim.Prepper: the in-band harmonic list and static
// rotation phasors, shared by all captures of a segment.
func (g *SwitchingRegulator) Prepare(band emsim.Band, _ int) any {
	return prepComb(band, g.FSw, g.MaxHarmonics, 1, 1)
}

func harmonicsIn(f0 float64, maxN int, f1, f2 float64) []float64 {
	var out []float64
	for n := 1; n <= maxN; n++ {
		f := float64(n) * f0
		if f >= f1 && f <= f2 {
			out = append(out, f)
		}
	}
	return out
}

// Render implements emsim.Component. The activity trace is piecewise
// constant, so by default the render iterates its constant-load runs
// (emsim.Context.DomainRuns) instead of walking sample by sample: within a
// run the one-pole control loop is stepped per sample only until its
// output repeats bitwise (its fixpoint for the run's load — further steps
// are idempotent, so skipping them is exact), after which the duty phasor
// and line amplitudes are frozen and the rest of the run renders through
// the phasor loop alone. Bit-identical to the per-sample walk
// (renderPerSample, kept as the ctx.NoSegment escape hatch and enforced
// by the equivalence tests): run loads are exactly the per-sample cursor
// loads, the loop filter and wander state evolve through the same
// operations, and renormalization hits the same global sample positions.
func (g *SwitchingRegulator) Render(dst []complex128, ctx *emsim.Context) {
	if ctx.NoSegment {
		g.renderPerSample(dst, ctx)
		return
	}
	if g.MaxHarmonics <= 0 || g.FSw <= 0 {
		panic(fmt.Sprintf("machine: regulator %q misconfigured", g.Label))
	}
	cs := combPool.Get().(*combScratch)
	defer combPool.Put(cs)
	pre, _ := ctx.Prep.(*combPrep)
	var ns []int
	if pre != nil {
		ns = pre.ns
	} else {
		scan := cs.ns[:0]
		for n := 1; n <= g.MaxHarmonics; n++ {
			if ctx.Band.Contains(float64(n) * g.FSw) {
				scan = append(scan, n)
			}
		}
		cs.ns = scan
		ns = scan
	}
	if len(ns) == 0 {
		return
	}
	r := ctx.Rand
	dt := ctx.Dt()
	fs := ctx.Band.SampleRate
	c1 := cmplx.Abs(sig.PulseHarmonic(g.BaseDuty, 1))
	a0 := math.Sqrt(math.Pow(10, g.FundamentalDBm/10)) / c1 * nearGain(ctx)

	wander := sig.OU{Sigma: g.WanderSigma, Tau: g.WanderTau}
	wander.Init(r)
	bw := g.LoopBw
	if bw > 0.4*fs {
		bw = 0.4 * fs
	}
	loop := filter.NewOnePole(bw, fs)

	base := 2 * math.Pi * r.Float64()
	cs.grow(len(ns))
	z, wpow, dpow, amp := cs.z, cs.wpow, cs.dpow, cs.amp
	stepStatic := cs.stepStatic
	if pre != nil {
		stepStatic = pre.stepStatic
	}
	for k, n := range ns {
		fn := float64(n)
		s, c := math.Sincos(wrapPhase(fn * base))
		z[k] = complex(c, s)
		if pre == nil {
			s, c = math.Sincos(2 * math.Pi * (fn*g.FSw - ctx.Band.Center) * dt)
			stepStatic[k] = complex(c, s)
		}
		wpow[k] = 1
	}
	z = z[:len(ns)]
	stepStatic = stepStatic[:len(z)]
	dpow = dpow[:len(z)]
	amp = amp[:len(z)]
	runs := ctx.DomainRuns(g.Dom)
	lastD, lastAmpl := math.NaN(), math.NaN()
	// prevSm tracks the loop filter's previous output across runs: a Step
	// that returns the same bits again has reached its fixpoint for the
	// current input, so the remaining Steps of the run can be skipped.
	prevSm := math.NaN()
	noWander := g.WanderSigma == 0
	renorm := 0
	for {
		load, i0, i1, ok := runs.Next()
		if !ok {
			break
		}
		i := i0
		settled := false
		// Head: per-sample until the control loop settles on this run's
		// load — the same work the per-sample walk does, minus the cursor.
		for ; i < i1 && !settled; i++ {
			sm := loop.Step(load)
			settled = sm == prevSm
			prevSm = sm
			d := g.BaseDuty + g.DutySwing*sm
			ampl := 1 + g.AmpSwing*sm
			if d != lastD || ampl != lastAmpl {
				if d != lastD {
					ds, dc := math.Sincos(-math.Pi * d)
					sig.PowChain(dpow, ns, complex(dc, ds))
				}
				for k, n := range ns {
					fn := float64(n)
					x := fn * d
					mag := d
					if x != 0 {
						mag = d * -imag(dpow[k]) / (math.Pi * x)
					}
					amp[k] = a0 * mag * ampl
				}
				lastD, lastAmpl = d, ampl
			}
			df := wander.Step(dt, r)
			if df != 0 {
				ws, wc := math.Sincos(2 * math.Pi * df * dt)
				w := complex(wc, ws)
				curw := complex(1, 0)
				m := 0
				acc := dst[i]
				for k := range z {
					dd := ns[k] - m
					if dd < 8 {
						for ; dd > 0; dd-- {
							curw *= w
						}
					} else {
						curw *= sig.Ipow(w, dd)
					}
					m = ns[k]
					v := z[k] * dpow[k]
					acc += complex(amp[k]*real(v), amp[k]*imag(v))
					z[k] *= stepStatic[k] * curw
				}
				dst[i] = acc
			} else {
				acc := dst[i]
				for k := range z {
					v := z[k] * dpow[k]
					acc += complex(amp[k]*real(v), amp[k]*imag(v))
					z[k] *= stepStatic[k] * wpow[k]
				}
				dst[i] = acc
			}
			if renorm++; renorm >= sig.RotatorRenorm {
				renorm = 0
				for k := range z {
					z[k] = sig.Renormalize(z[k])
				}
			}
		}
		// Tail: duty phasor and amplitudes are frozen for the rest of the
		// run. With no wander process the loop is pure phasor advance
		// (OU.Step with Sigma == 0 draws nothing and returns 0, so not
		// calling it is exact); otherwise the wander draw stays per sample.
		if noWander {
			for ; i < i1; i++ {
				acc := dst[i]
				for k := range z {
					v := z[k] * dpow[k]
					acc += complex(amp[k]*real(v), amp[k]*imag(v))
					z[k] *= stepStatic[k] * wpow[k]
				}
				dst[i] = acc
				if renorm++; renorm >= sig.RotatorRenorm {
					renorm = 0
					for k := range z {
						z[k] = sig.Renormalize(z[k])
					}
				}
			}
			continue
		}
		for ; i < i1; i++ {
			df := wander.Step(dt, r)
			if df != 0 {
				ws, wc := math.Sincos(2 * math.Pi * df * dt)
				w := complex(wc, ws)
				curw := complex(1, 0)
				m := 0
				acc := dst[i]
				for k := range z {
					dd := ns[k] - m
					if dd < 8 {
						for ; dd > 0; dd-- {
							curw *= w
						}
					} else {
						curw *= sig.Ipow(w, dd)
					}
					m = ns[k]
					v := z[k] * dpow[k]
					acc += complex(amp[k]*real(v), amp[k]*imag(v))
					z[k] *= stepStatic[k] * curw
				}
				dst[i] = acc
			} else {
				acc := dst[i]
				for k := range z {
					v := z[k] * dpow[k]
					acc += complex(amp[k]*real(v), amp[k]*imag(v))
					z[k] *= stepStatic[k] * wpow[k]
				}
				dst[i] = acc
			}
			if renorm++; renorm >= sig.RotatorRenorm {
				renorm = 0
				for k := range z {
					z[k] = sig.Renormalize(z[k])
				}
			}
		}
	}
}

// renderPerSample is the pre-segmentation render path, kept verbatim as
// the ctx.NoSegment escape hatch and as the reference the equivalence
// tests hold the segmented path to.
func (g *SwitchingRegulator) renderPerSample(dst []complex128, ctx *emsim.Context) {
	if g.MaxHarmonics <= 0 || g.FSw <= 0 {
		panic(fmt.Sprintf("machine: regulator %q misconfigured", g.Label))
	}
	cs := combPool.Get().(*combScratch)
	defer combPool.Put(cs)
	// In-band harmonics and static rotations come from the segment prep
	// when rendering under a plan, and are derived inline (by the same
	// expressions) otherwise.
	pre, _ := ctx.Prep.(*combPrep)
	var ns []int
	if pre != nil {
		ns = pre.ns
	} else {
		scan := cs.ns[:0]
		for n := 1; n <= g.MaxHarmonics; n++ {
			if ctx.Band.Contains(float64(n) * g.FSw) {
				scan = append(scan, n)
			}
		}
		cs.ns = scan
		ns = scan
	}
	if len(ns) == 0 {
		return
	}
	r := ctx.Rand
	dt := ctx.Dt()
	fs := ctx.Band.SampleRate
	// Amplitude scale: |A0·c1(BaseDuty)|² = fundamental power.
	c1 := cmplx.Abs(sig.PulseHarmonic(g.BaseDuty, 1))
	a0 := math.Sqrt(math.Pow(10, g.FundamentalDBm/10)) / c1 * nearGain(ctx)

	wander := sig.OU{Sigma: g.WanderSigma, Tau: g.WanderTau}
	wander.Init(r)
	// Clamp the control-loop bandwidth below Nyquist for narrow captures;
	// the capture cannot resolve faster loop dynamics anyway.
	bw := g.LoopBw
	if bw > 0.4*fs {
		bw = 0.4 * fs
	}
	loop := filter.NewOnePole(bw, fs)
	cur := ctx.Loads()

	// Phasor-rotation synthesis: each harmonic carries a unit phasor
	// z[k] = e^{i·phase_k}, advanced per sample by a precomputed static
	// step (the nominal comb-line offset from the band center) times the
	// shared wander rotation raised to the n-th power. Two trig calls per
	// sample — the wander rotation and the duty phasor e^{-iπd} — replace
	// a Sincos plus a Sin per harmonic per sample; the duty phasor's
	// powers also provide sin(πnd) for the d·sinc(n·d) line magnitudes.
	base := 2 * math.Pi * r.Float64()
	cs.grow(len(ns))
	z, wpow, dpow, amp := cs.z, cs.wpow, cs.dpow, cs.amp
	stepStatic := cs.stepStatic
	if pre != nil {
		stepStatic = pre.stepStatic
	}
	for k, n := range ns {
		fn := float64(n)
		s, c := math.Sincos(wrapPhase(fn * base))
		z[k] = complex(c, s)
		if pre == nil {
			s, c = math.Sincos(2 * math.Pi * (fn*g.FSw - ctx.Band.Center) * dt)
			stepStatic[k] = complex(c, s)
		}
		wpow[k] = 1
	}
	// Re-slice the working arrays to a common length so the hot loops
	// index them without bounds checks.
	z = z[:len(ns)]
	stepStatic = stepStatic[:len(z)]
	dpow = dpow[:len(z)]
	amp = amp[:len(z)]
	// The duty phasor and line amplitudes depend only on (d, ampl), which
	// the one-pole loop holds constant once the load settles — so they are
	// refreshed only when the smoothed load moves, not every sample.
	lastD, lastAmpl := math.NaN(), math.NaN()
	renorm := 0
	for i := range dst {
		t := ctx.Start + float64(i)*dt
		load := g.Dom.Of(cur.At(t))
		smoothedLoad := loop.Step(load)
		d := g.BaseDuty + g.DutySwing*smoothedLoad
		ampl := 1 + g.AmpSwing*smoothedLoad
		df := wander.Step(dt, r)
		if d != lastD || ampl != lastAmpl {
			if d != lastD {
				ds, dc := math.Sincos(-math.Pi * d)
				sig.PowChain(dpow, ns, complex(dc, ds))
			}
			for k, n := range ns {
				fn := float64(n)
				// Fourier magnitude of harmonic n at duty d: d·sinc(n·d),
				// with sin(πnd) = −imag(e^{-iπnd}) read off the duty phasor.
				x := fn * d
				mag := d
				if x != 0 {
					mag = d * -imag(dpow[k]) / (math.Pi * x)
				}
				amp[k] = a0 * mag * ampl
			}
			lastD, lastAmpl = d, ampl
		}
		if df != 0 {
			// Fused wander power chain (see UnmodulatedClock.Render): cur
			// runs through PowChain's exact multiply sequence, so z evolves
			// bit-identically without the wpow array round trip.
			ws, wc := math.Sincos(2 * math.Pi * df * dt)
			w := complex(wc, ws)
			curw := complex(1, 0)
			m := 0
			acc := dst[i]
			for k := range z {
				dd := ns[k] - m
				if dd < 8 {
					for ; dd > 0; dd-- {
						curw *= w
					}
				} else {
					curw *= sig.Ipow(w, dd)
				}
				m = ns[k]
				// Pulse-train harmonic phase is -π·n·d (pulse centering).
				v := z[k] * dpow[k]
				acc += complex(amp[k]*real(v), amp[k]*imag(v))
				z[k] *= stepStatic[k] * curw
			}
			dst[i] = acc
		} else {
			acc := dst[i]
			for k := range z {
				v := z[k] * dpow[k]
				acc += complex(amp[k]*real(v), amp[k]*imag(v))
				z[k] *= stepStatic[k] * wpow[k]
			}
			dst[i] = acc
		}
		if renorm++; renorm >= sig.RotatorRenorm {
			renorm = 0
			for k := range z {
				z[k] = sig.Renormalize(z[k])
			}
		}
	}
}

// CondStaticTerms implements emsim.CondStaticRenderer: the regulator's
// render depends on the activity trace only through its domain load, so a
// capture whose window load is constant is a pure function of (identity,
// load) — one addend per in-band harmonic.
func (g *SwitchingRegulator) CondStaticTerms(band emsim.Band, _ int) (int, bool) {
	terms := 0
	for n := 1; n <= g.MaxHarmonics; n++ {
		if band.Contains(float64(n) * g.FSw) {
			terms++
		}
	}
	return terms, true
}

// RenderCondStaticTerms implements emsim.CondStaticRenderer. Under a
// window-constant load the one-pole loop is at its fixpoint from the first
// sample (Step primes to exactly its input, and further steps with the
// same input return the same bits), so the duty phasor and line amplitudes
// are constants of the capture; what remains per sample is the wander
// process and the phasor advance, mirrored from Render draw for draw.
func (g *SwitchingRegulator) RenderCondStaticTerms(terms [][]complex128, load float64, ctx *emsim.Context) {
	if g.MaxHarmonics <= 0 || g.FSw <= 0 {
		panic(fmt.Sprintf("machine: regulator %q misconfigured", g.Label))
	}
	cs := combPool.Get().(*combScratch)
	defer combPool.Put(cs)
	pre, _ := ctx.Prep.(*combPrep)
	var ns []int
	if pre != nil {
		ns = pre.ns
	} else {
		scan := cs.ns[:0]
		for n := 1; n <= g.MaxHarmonics; n++ {
			if ctx.Band.Contains(float64(n) * g.FSw) {
				scan = append(scan, n)
			}
		}
		cs.ns = scan
		ns = scan
	}
	if len(terms) != len(ns) {
		panic(fmt.Sprintf("machine: regulator %q has %d in-band harmonics, %d term streams", g.Label, len(ns), len(terms)))
	}
	if len(ns) == 0 {
		return
	}
	r := ctx.Rand
	dt := ctx.Dt()
	c1 := cmplx.Abs(sig.PulseHarmonic(g.BaseDuty, 1))
	a0 := math.Sqrt(math.Pow(10, g.FundamentalDBm/10)) / c1 * nearGain(ctx)
	wander := sig.OU{Sigma: g.WanderSigma, Tau: g.WanderTau}
	wander.Init(r)
	base := 2 * math.Pi * r.Float64()
	cs.grow(len(ns))
	z, wpow, dpow, amp := cs.z, cs.wpow, cs.dpow, cs.amp
	stepStatic := cs.stepStatic
	if pre != nil {
		stepStatic = pre.stepStatic
	}
	for k, n := range ns {
		fn := float64(n)
		s, c := math.Sincos(wrapPhase(fn * base))
		z[k] = complex(c, s)
		if pre == nil {
			s, c = math.Sincos(2 * math.Pi * (fn*g.FSw - ctx.Band.Center) * dt)
			stepStatic[k] = complex(c, s)
		}
		wpow[k] = 1
	}
	z = z[:len(ns)]
	stepStatic = stepStatic[:len(z)]
	dpow = dpow[:len(z)]
	amp = amp[:len(z)]
	// The smoothed load is exactly `load` at every sample (see the method
	// comment), so d and ampl are the constants Render's guard computes on
	// the first sample — by the same expressions.
	sm := load
	d := g.BaseDuty + g.DutySwing*sm
	ampl := 1 + g.AmpSwing*sm
	ds, dc := math.Sincos(-math.Pi * d)
	sig.PowChain(dpow, ns, complex(dc, ds))
	for k, n := range ns {
		fn := float64(n)
		x := fn * d
		mag := d
		if x != 0 {
			mag = d * -imag(dpow[k]) / (math.Pi * x)
		}
		amp[k] = a0 * mag * ampl
	}
	renorm := 0
	for i := 0; i < ctx.N; i++ {
		df := wander.Step(dt, r)
		if df != 0 {
			ws, wc := math.Sincos(2 * math.Pi * df * dt)
			w := complex(wc, ws)
			curw := complex(1, 0)
			m := 0
			for k := range z {
				dd := ns[k] - m
				if dd < 8 {
					for ; dd > 0; dd-- {
						curw *= w
					}
				} else {
					curw *= sig.Ipow(w, dd)
				}
				m = ns[k]
				v := z[k] * dpow[k]
				terms[k][i] = complex(amp[k]*real(v), amp[k]*imag(v))
				z[k] *= stepStatic[k] * curw
			}
		} else {
			for k := range z {
				v := z[k] * dpow[k]
				terms[k][i] = complex(amp[k]*real(v), amp[k]*imag(v))
				z[k] *= stepStatic[k] * wpow[k]
			}
		}
		if renorm++; renorm >= sig.RotatorRenorm {
			renorm = 0
			for k := range z {
				z[k] = sig.Renormalize(z[k])
			}
		}
	}
}

// ConstantOnTimeRegulator models the AMD laptop's core regulator (§4.4):
// it keeps the switch on for a fixed time each cycle and varies the
// switching *frequency* with load — frequency modulation, not amplitude
// modulation. FASE must correctly not report it. Its oscillator also
// wanders strongly, smearing its spectrum.
type ConstantOnTimeRegulator struct {
	Label string
	// F0 is the idle switching frequency.
	F0 float64
	// FreqSwing is the relative frequency increase at full load (e.g.
	// 0.15 = +15%).
	FreqSwing float64
	// TOn is the fixed on-time per cycle (pulse width).
	TOn float64
	// FundamentalDBm is the received power of the n=1 line at idle.
	FundamentalDBm float64
	// WanderSigma/WanderTau give the (large) frequency wander.
	WanderSigma, WanderTau float64
	// Dom is the modulating domain (the FM source).
	Dom activity.Domain
}

// Name implements emsim.Component.
func (g *ConstantOnTimeRegulator) Name() string { return g.Label }

// Domain implements emsim.Emitter.
func (g *ConstantOnTimeRegulator) Domain() activity.Domain { return g.Dom }

// AMModulated implements emsim.Emitter: false — this emitter is only
// frequency-modulated, the §4.4 negative control.
func (g *ConstantOnTimeRegulator) AMModulated() bool { return false }

// Carriers implements emsim.Emitter. The smeared comb still has nominal
// line positions at multiples of F0.
func (g *ConstantOnTimeRegulator) Carriers(f1, f2 float64) []float64 {
	return harmonicsIn(g.F0, 8, f1, f2)
}

// BandExtent implements emsim.Extenter: the event-driven impulse train is
// wideband (each pulse deposits energy across the whole capture band), so
// the planner never skips it.
func (g *ConstantOnTimeRegulator) BandExtent() emsim.Extent { return emsim.Everywhere() }

// Render implements emsim.Component: an event-driven pulse train. Each
// switching cycle deposits one band-limited impulse whose area equals
// amplitude·TOn; the cycle period follows the load-dependent frequency.
func (g *ConstantOnTimeRegulator) Render(dst []complex128, ctx *emsim.Context) {
	r := ctx.Rand
	fs := ctx.Band.SampleRate
	// Line amplitude of an f-rate impulse train is q·f; calibrate the
	// impulse area q so the idle fundamental has the configured power.
	q := math.Sqrt(math.Pow(10, g.FundamentalDBm/10)) / g.F0 * nearGain(ctx)
	wander := sig.OU{Sigma: g.WanderSigma, Tau: g.WanderTau}
	wander.Init(r)
	cur := ctx.Loads()
	duration := float64(ctx.N) / fs
	// Random phase within the first cycle.
	t := ctx.Start - r.Float64()/g.F0
	end := ctx.Start + duration
	for t < end {
		load := g.Dom.Of(cur.At(t))
		f := g.F0*(1+g.FreqSwing*load) + wander.Step(1/g.F0, r)
		if f < g.F0/4 {
			f = g.F0 / 4
		}
		t += 1 / f
		pos := (t - ctx.Start) * fs
		if pos >= 0 {
			// Complex area includes the baseband downconversion phase.
			ph := -2 * math.Pi * ctx.Band.Center * t
			s, c := math.Sincos(ph)
			impulseKernel8.Add(dst, pos, complex(q*c, q*s), fs)
		}
	}
}

// RefreshEmitter models DRAM refresh (§4.2): every tREFI (7.8 µs for
// DDR3) the controller issues a refresh command lasting ~200 ns — a
// pulse train with a tiny duty cycle whose harmonics are all of similar
// strength. Ranks are refreshed staggered in time, so the far-field sum
// forms a comb at Ranks/tREFI (512 kHz for 4 ranks) while a near-field
// probe coupled to one rank reveals the underlying 1/tREFI (128 kHz)
// grid — reproducing the paper's localization discovery.
//
// Memory activity *disrupts* refresh timing (the controller postpones
// refreshes to serve demand traffic and catches up later), spreading the
// comb's energy and weakening the lines — which is why this signal gets
// weaker with more memory activity, the paper's most counterintuitive
// finding.
type RefreshEmitter struct {
	Label string
	// TRefi is the average refresh command interval.
	TRefi float64
	// PulseWidth is the refresh command duration (area = amplitude·width).
	PulseWidth float64
	// LineDBm is the far-field power of one comb line (at multiples of
	// Ranks/TRefi) when memory is idle.
	LineDBm float64
	// Ranks is the number of staggered ranks.
	Ranks int
	// NearRankWeights are the per-rank coupling weights in near-field
	// mode (one rank dominating reveals the 1/TRefi comb). In far field
	// all ranks couple equally.
	NearRankWeights []float64
	// DisruptGain is the timing displacement at full DRAM load as a
	// fraction of TRefi.
	DisruptGain float64
	// JitterIdle is the idle timing jitter fraction (crystal-derived
	// timing: tiny).
	JitterIdle float64
	// MaxHarmonics bounds the ground-truth carrier list.
	MaxHarmonics int
	// Dom is the modulating domain (DRAM).
	Dom activity.Domain
	// IntervalDither is the paper's proposed mitigation (§4.2/§6):
	// the controller intentionally randomizes each refresh command's
	// issue time by up to this fraction of tREFI, always — destroying
	// the comb's periodicity (and with it the modulation) while keeping
	// the average interval within the DRAM standard. Zero disables.
	IntervalDither float64
}

// Name implements emsim.Component.
func (g *RefreshEmitter) Name() string { return g.Label }

// Domain implements emsim.Emitter.
func (g *RefreshEmitter) Domain() activity.Domain { return g.Dom }

// AMModulated implements emsim.Emitter.
func (g *RefreshEmitter) AMModulated() bool { return true }

// Carriers implements emsim.Emitter: the far-field comb at multiples of
// Ranks/TRefi.
func (g *RefreshEmitter) Carriers(f1, f2 float64) []float64 {
	return harmonicsIn(float64(g.Ranks)/g.TRefi, g.MaxHarmonics, f1, f2)
}

// BandExtent implements emsim.Extenter: refresh renders band-limited
// impulses, whose energy spans every capture band (that wideband grid is
// the signal of §4.2), so the planner never skips it.
func (g *RefreshEmitter) BandExtent() emsim.Extent { return emsim.Everywhere() }

// Render implements emsim.Component. The default path renders the
// impulse train in two blocked phases: (1) walk the refresh grid drawing
// every displacement — structurally identical to the per-pulse walk, so
// the PRNG stream is unchanged — and collect the pulses that survive the
// window clip; (2) evaluate each surviving pulse's downconversion phasor
// and deposit its kernel taps in one fused pass through
// sig.ImpulseKernel.AddTrain, whose interior fast path runs
// bounds-check-free (fusing keeps the phasors out of a scratch array the
// deposit loop would immediately re-read). Pulses deposit in grid order
// with phase and tap arithmetic identical to per-pulse Sincos + Add, so
// output is bit-identical to the ctx.NoSegment escape hatch below
// (enforced by the equivalence tests).
func (g *RefreshEmitter) Render(dst []complex128, ctx *emsim.Context) {
	if g.Ranks <= 0 {
		panic(fmt.Sprintf("machine: refresh emitter %q needs at least one rank", g.Label))
	}
	r := ctx.Rand
	fs := ctx.Band.SampleRate
	gain := nearGain(ctx)
	sc := refreshPool.Get().(*refreshScratch)
	defer refreshPool.Put(sc)
	weights := sc.growWeights(g.Ranks)
	for i := range weights {
		weights[i] = 1
	}
	if ctx.NearField && len(g.NearRankWeights) == g.Ranks {
		copy(weights, g.NearRankWeights)
	}
	// Far-field line amplitude at multiples of Ranks/TRefi is
	// q·Σw/TRefi; calibrate the per-pulse area q accordingly (weights are
	// all 1 in far field, so Σw = Ranks there).
	q := math.Sqrt(math.Pow(10, g.LineDBm/10)) * g.TRefi / float64(g.Ranks) * gain

	cur := ctx.Loads()
	duration := float64(ctx.N) / fs
	// Iterate the ideal refresh grid, displacing each command by
	// activity-dependent jitter. Start early enough that kernels
	// overlapping sample 0 are included.
	startK := int(math.Floor((ctx.Start - 2*g.TRefi) / g.TRefi))
	endT := ctx.Start + duration + 2*g.TRefi
	if ctx.NoSegment {
		// Per-pulse escape hatch: the pre-blocking path, one kernel
		// deposit per surviving pulse.
		for k := startK; ; k++ {
			base := float64(k) * g.TRefi
			if base > endT {
				break
			}
			load := g.Dom.Of(cur.At(math.Max(base, ctx.Start)))
			for rank := 0; rank < g.Ranks; rank++ {
				tNom := base + float64(rank)*g.TRefi/float64(g.Ranks)
				disp := g.TRefi * (g.JitterIdle*r.NormFloat64() + g.DisruptGain*load*(2*r.Float64()-1))
				if g.IntervalDither > 0 {
					disp += g.TRefi * g.IntervalDither * (2*r.Float64() - 1)
				}
				tk := tNom + disp
				pos := (tk - ctx.Start) * fs
				if pos < -16 || pos > float64(ctx.N)+16 {
					continue
				}
				ph := -2 * math.Pi * ctx.Band.Center * tk
				s, c := math.Sincos(ph)
				qw := q * weights[rank]
				impulseKernel8.Add(dst, pos, complex(qw*c, qw*s), fs)
			}
		}
		return
	}
	// Phase 1: the same grid walk and draw sequence as the per-pulse path
	// (every displacement is drawn before the window clip, exactly as
	// before), collecting the surviving pulses.
	poss, tks, qws := sc.pos[:0], sc.tk[:0], sc.qw[:0]
	for k := startK; ; k++ {
		base := float64(k) * g.TRefi
		if base > endT {
			break
		}
		load := g.Dom.Of(cur.At(math.Max(base, ctx.Start)))
		for rank := 0; rank < g.Ranks; rank++ {
			tNom := base + float64(rank)*g.TRefi/float64(g.Ranks)
			disp := g.TRefi * (g.JitterIdle*r.NormFloat64() + g.DisruptGain*load*(2*r.Float64()-1))
			if g.IntervalDither > 0 {
				disp += g.TRefi * g.IntervalDither * (2*r.Float64() - 1)
			}
			tk := tNom + disp
			pos := (tk - ctx.Start) * fs
			if pos < -16 || pos > float64(ctx.N)+16 {
				continue
			}
			poss = append(poss, pos)
			tks = append(tks, tk)
			qws = append(qws, q*weights[rank])
		}
	}
	sc.pos, sc.tk, sc.qw = poss, tks, qws
	// Phase 2: fused downconversion and tap deposition, in the same pulse
	// order. pc·tk associates exactly as the inline -2·π·Center·tk did
	// (left to right), so the phases are bit-identical.
	pc := -2 * math.Pi * ctx.Band.Center
	impulseKernel8.AddTrain(dst, poss, tks, qws, pc, fs)
}

// SSCClock models a (possibly spread-spectrum) digital clock: a square
// wave, so odd harmonics only, whose emission amplitude scales with the
// switching activity the clock drives (§2.2: the DRAM clock emanates more
// strongly during DRAM activity). Spread-spectrum clocking sweeps the
// frequency over SpreadHz (down-spread) at RateHz (§4.3).
type SSCClock struct {
	Label string
	// F0 is the nominal clock frequency; with SSC the instantaneous
	// frequency stays within [F0-SpreadHz, F0].
	F0       float64
	SpreadHz float64
	RateHz   float64
	Profile  sig.SweepProfile
	// FundamentalDBm is the received fundamental power at full activity.
	FundamentalDBm float64
	// IdleFrac is the amplitude fraction remaining at zero load (clock
	// trees toggle regardless of data activity).
	IdleFrac float64
	// MaxHarmonics bounds rendered odd harmonics.
	MaxHarmonics int
	// Dom is the activity domain; DomainNone for clocks whose emissions
	// do not respond to program activity (the CPU clock observation, §1).
	Dom activity.Domain
}

// Name implements emsim.Component.
func (g *SSCClock) Name() string { return g.Label }

// Domain implements emsim.Emitter.
func (g *SSCClock) Domain() activity.Domain { return g.Dom }

// AMModulated implements emsim.Emitter.
func (g *SSCClock) AMModulated() bool { return g.Dom != activity.DomainNone }

// Carriers implements emsim.Emitter. A spread carrier is reported at its
// spread edges — which is also how FASE reports it (Fig. 16: "two separate
// carriers at the edges of the spread out clock signal"). An unspread
// clock reports its harmonics directly.
func (g *SSCClock) Carriers(f1, f2 float64) []float64 {
	var out []float64
	for n := 1; n <= g.MaxHarmonics; n += 2 {
		fn := float64(n)
		if g.SpreadHz == 0 {
			if fn*g.F0 >= f1 && fn*g.F0 <= f2 {
				out = append(out, fn*g.F0)
			}
			continue
		}
		for _, edge := range []float64{fn * (g.F0 - g.SpreadHz), fn * g.F0} {
			if edge >= f1 && edge <= f2 {
				out = append(out, edge)
			}
		}
	}
	return out
}

// sscInBand reports whether harmonic n's swept range [n·(F0−Spread), n·F0]
// intersects the band — the shared gate of Render, Prepare, and BandExtent
// (via Band.Overlaps, which is equivalent for lo <= hi).
func (g *SSCClock) sscInBand(band emsim.Band, n int) bool {
	fn := float64(n)
	lo, hi := fn*(g.F0-g.SpreadHz), fn*g.F0
	return band.Contains(lo) || band.Contains(hi) ||
		(lo < band.Center && hi > band.Center)
}

// BandExtent implements emsim.Extenter: one span per odd harmonic covering
// its spread-spectrum excursion [n·(F0−SpreadHz), n·F0] (down-spread; the
// span degenerates to a line for an unspread clock).
func (g *SSCClock) BandExtent() emsim.Extent {
	var spans []emsim.Span
	for n := 1; n <= g.MaxHarmonics; n += 2 {
		fn := float64(n)
		spans = append(spans, emsim.Span{Lo: fn * (g.F0 - g.SpreadHz), Hi: fn * g.F0})
	}
	return emsim.Extent{Spans: spans}
}

// Prepare implements emsim.Prepper: the in-band harmonic list (by the
// swept-range test) and static rotation phasors for the segment.
func (g *SSCClock) Prepare(band emsim.Band, _ int) any {
	p := &combPrep{}
	for n := 1; n <= g.MaxHarmonics; n += 2 {
		if g.sscInBand(band, n) {
			p.ns = append(p.ns, n)
		}
	}
	dt := 1 / band.SampleRate
	p.stepStatic = make([]complex128, len(p.ns))
	for k, n := range p.ns {
		s, c := math.Sincos(2 * math.Pi * (float64(n)*g.F0 - band.Center) * dt)
		p.stepStatic[k] = complex(c, s)
	}
	return p
}

// StaticTerms implements emsim.StaticRenderer: the clock's emission is
// activity-independent exactly when the activity envelope cannot move —
// either no modulating domain (Dom == DomainNone makes the load term read
// zero for every trace) or a unit idle fraction (the load term has a zero
// coefficient). In both cases Render's per-sample envelope expression
// reduces to the constant IdleFrac, so the swept comb is a pure function
// of the capture identity.
func (g *SSCClock) StaticTerms(band emsim.Band, _ int) (int, bool) {
	if g.Dom != activity.DomainNone && g.IdleFrac != 1 {
		return 0, false
	}
	terms := 0
	for n := 1; n <= g.MaxHarmonics; n += 2 {
		if g.sscInBand(band, n) {
			terms++
		}
	}
	return terms, true
}

// RenderStaticTerms implements emsim.StaticTermRenderer. It mirrors Render
// — same ssc.Start draws, same sweep chain, same renorm schedule — with
// the envelope fixed at the constant value Render's expression evaluates
// to in the static cases (IdleFrac + (1−IdleFrac)·0 ≡ IdleFrac, and
// 1 + 0·load ≡ 1 ≡ IdleFrac when IdleFrac == 1), writing each harmonic's
// addend stream instead of accumulating into dst.
func (g *SSCClock) RenderStaticTerms(terms [][]complex128, ctx *emsim.Context) {
	g.renderTermsEnv(terms, g.IdleFrac, ctx)
}

// CondStaticTerms implements emsim.CondStaticRenderer: the clock reads
// the activity trace only through its domain load's envelope, so a
// window-constant load freezes the envelope and the swept comb becomes a
// pure function of (identity, load) — one addend per in-band harmonic.
// (Clocks that are unconditionally static — DomainNone or IdleFrac 1 —
// classify through StaticTerms instead, which takes precedence.)
func (g *SSCClock) CondStaticTerms(band emsim.Band, _ int) (int, bool) {
	terms := 0
	for n := 1; n <= g.MaxHarmonics; n += 2 {
		if g.sscInBand(band, n) {
			terms++
		}
	}
	return terms, true
}

// RenderCondStaticTerms implements emsim.CondStaticRenderer: the shared
// term renderer with the envelope frozen at the value Render's per-sample
// expression yields for the window-constant load.
func (g *SSCClock) RenderCondStaticTerms(terms [][]complex128, load float64, ctx *emsim.Context) {
	g.renderTermsEnv(terms, g.IdleFrac+(1-g.IdleFrac)*load, ctx)
}

// renderTermsEnv writes the clock's addend streams under a constant
// envelope env, drawing from ctx.Rand exactly as Render does.
func (g *SSCClock) renderTermsEnv(terms [][]complex128, env float64, ctx *emsim.Context) {
	cs := combPool.Get().(*combScratch)
	defer combPool.Put(cs)
	pre, _ := ctx.Prep.(*combPrep)
	var ns []int
	if pre != nil {
		ns = pre.ns
	} else {
		scan := cs.ns[:0]
		for n := 1; n <= g.MaxHarmonics; n += 2 {
			if g.sscInBand(ctx.Band, n) {
				scan = append(scan, n)
			}
		}
		cs.ns = scan
		ns = scan
	}
	if len(terms) != len(ns) {
		panic(fmt.Sprintf("machine: clock %q has %d in-band harmonics, %d term streams", g.Label, len(ns), len(terms)))
	}
	if len(ns) == 0 {
		return
	}
	r := ctx.Rand
	dt := ctx.Dt()
	a0 := math.Sqrt(math.Pow(10, g.FundamentalDBm/10)) * nearGain(ctx)
	ssc := sig.SSC{F0: g.F0, SpreadHz: g.SpreadHz, RateHz: g.RateHz, Profile: g.Profile}
	ssc.Start(r)
	cs.grow(len(ns))
	z, fpow, amp := cs.z, cs.wpow, cs.amp
	stepStatic := cs.stepStatic
	if pre != nil {
		stepStatic = pre.stepStatic
	}
	for k, n := range ns {
		fn := float64(n)
		s, c := math.Sincos(wrapPhase(fn * ssc.Phase()))
		z[k] = complex(c, s)
		if pre == nil {
			s, c = math.Sincos(2 * math.Pi * (fn*g.F0 - ctx.Band.Center) * dt)
			stepStatic[k] = complex(c, s)
		}
		fpow[k] = 1
		amp[k] = a0 * env / float64(n)
	}
	spread := g.SpreadHz != 0
	renorm := 0
	for i := 0; i < ctx.N; i++ {
		if spread {
			fs2, fc2 := math.Sincos(2 * math.Pi * (ssc.Freq() - g.F0) * dt)
			sig.PowChain(fpow, ns, complex(fc2, fs2))
		}
		for k := range ns {
			terms[k][i] = complex(amp[k]*real(z[k]), amp[k]*imag(z[k]))
			z[k] *= stepStatic[k] * fpow[k]
		}
		ssc.Step(dt, 0)
		if renorm++; renorm >= sig.RotatorRenorm {
			renorm = 0
			for k := range z {
				z[k] = sig.Renormalize(z[k])
			}
		}
	}
}

// Render implements emsim.Component. The default path iterates the
// activity trace's constant-load runs (emsim.Context.DomainRuns): the
// envelope and harmonic amplitudes are refreshed once per run instead of
// being re-derived (and guard-compared) every sample, while the sweep
// chain, phasor updates, and renorm schedule advance per sample exactly
// as in the per-sample walk (renderPerSample, kept as the ctx.NoSegment
// escape hatch) — run loads are the per-sample cursor loads by
// construction, so both paths are bit-identical.
func (g *SSCClock) Render(dst []complex128, ctx *emsim.Context) {
	if ctx.NoSegment {
		g.renderPerSample(dst, ctx)
		return
	}
	// Collect odd harmonics whose swept range intersects the band.
	cs := combPool.Get().(*combScratch)
	defer combPool.Put(cs)
	pre, _ := ctx.Prep.(*combPrep)
	var ns []int
	if pre != nil {
		ns = pre.ns
	} else {
		scan := cs.ns[:0]
		for n := 1; n <= g.MaxHarmonics; n += 2 {
			if g.sscInBand(ctx.Band, n) {
				scan = append(scan, n)
			}
		}
		cs.ns = scan
		ns = scan
	}
	if len(ns) == 0 {
		return
	}
	r := ctx.Rand
	dt := ctx.Dt()
	a0 := math.Sqrt(math.Pow(10, g.FundamentalDBm/10)) * nearGain(ctx)
	ssc := sig.SSC{F0: g.F0, SpreadHz: g.SpreadHz, RateHz: g.RateHz, Profile: g.Profile}
	ssc.Start(r)
	cs.grow(len(ns))
	z, fpow, amp := cs.z, cs.wpow, cs.amp
	stepStatic := cs.stepStatic
	if pre != nil {
		stepStatic = pre.stepStatic
	}
	for k, n := range ns {
		fn := float64(n)
		s, c := math.Sincos(wrapPhase(fn * ssc.Phase()))
		z[k] = complex(c, s)
		if pre == nil {
			s, c = math.Sincos(2 * math.Pi * (fn*g.F0 - ctx.Band.Center) * dt)
			stepStatic[k] = complex(c, s)
		}
		fpow[k] = 1
	}
	spread := g.SpreadHz != 0
	lastEnv := math.NaN()
	runs := ctx.DomainRuns(g.Dom)
	renorm := 0
	for {
		load, i0, i1, ok := runs.Next()
		if !ok {
			break
		}
		// Envelope and amplitudes are constants of the run — the same
		// expressions the per-sample guard evaluates, hoisted.
		env := g.IdleFrac + (1-g.IdleFrac)*load
		if env != lastEnv {
			for k, n := range ns {
				amp[k] = a0 * env / float64(n) // square-wave harmonic rolloff
			}
			lastEnv = env
		}
		for i := i0; i < i1; i++ {
			if spread {
				fs2, fc2 := math.Sincos(2 * math.Pi * (ssc.Freq() - g.F0) * dt)
				sig.PowChain(fpow, ns, complex(fc2, fs2))
			}
			acc := dst[i]
			for k := range ns {
				acc += complex(amp[k]*real(z[k]), amp[k]*imag(z[k]))
				z[k] *= stepStatic[k] * fpow[k]
			}
			dst[i] = acc
			// ssc's own phase accumulator is unused — the per-harmonic
			// phasors above integrate n·Freq() directly — but Step also
			// advances the sweep position, which Freq() reads.
			ssc.Step(dt, 0)
			if renorm++; renorm >= sig.RotatorRenorm {
				renorm = 0
				for k := range z {
					z[k] = sig.Renormalize(z[k])
				}
			}
		}
	}
}

// renderPerSample is the pre-segmentation render path, kept verbatim as
// the ctx.NoSegment escape hatch and as the reference the equivalence
// tests hold the segmented path to.
func (g *SSCClock) renderPerSample(dst []complex128, ctx *emsim.Context) {
	cs := combPool.Get().(*combScratch)
	defer combPool.Put(cs)
	pre, _ := ctx.Prep.(*combPrep)
	var ns []int
	if pre != nil {
		ns = pre.ns
	} else {
		scan := cs.ns[:0]
		for n := 1; n <= g.MaxHarmonics; n += 2 {
			if g.sscInBand(ctx.Band, n) {
				scan = append(scan, n)
			}
		}
		cs.ns = scan
		ns = scan
	}
	if len(ns) == 0 {
		return
	}
	r := ctx.Rand
	dt := ctx.Dt()
	a0 := math.Sqrt(math.Pow(10, g.FundamentalDBm/10)) * nearGain(ctx)
	ssc := sig.SSC{F0: g.F0, SpreadHz: g.SpreadHz, RateHz: g.RateHz, Profile: g.Profile}
	ssc.Start(r)
	cur := ctx.Loads()
	// Phasor rotation: each harmonic advances by a static step (nominal
	// comb line at n·F0 offset from the band center) times the n-th power
	// of the shared sweep rotation e^{i2π(f−F0)dt} — one trig call per
	// sample instead of one per harmonic per sample.
	cs.grow(len(ns))
	z, fpow, amp := cs.z, cs.wpow, cs.amp
	stepStatic := cs.stepStatic
	if pre != nil {
		stepStatic = pre.stepStatic
	}
	for k, n := range ns {
		fn := float64(n)
		s, c := math.Sincos(wrapPhase(fn * ssc.Phase()))
		z[k] = complex(c, s)
		if pre == nil {
			s, c = math.Sincos(2 * math.Pi * (fn*g.F0 - ctx.Band.Center) * dt)
			stepStatic[k] = complex(c, s)
		}
		fpow[k] = 1
	}
	spread := g.SpreadHz != 0
	// Harmonic amplitudes depend only on the activity envelope, which is
	// piecewise constant — refresh them when it moves, not every sample.
	lastEnv := math.NaN()
	renorm := 0
	for i := range dst {
		t := ctx.Start + float64(i)*dt
		load := g.Dom.Of(cur.At(t))
		env := g.IdleFrac + (1-g.IdleFrac)*load
		if spread {
			fs2, fc2 := math.Sincos(2 * math.Pi * (ssc.Freq() - g.F0) * dt)
			sig.PowChain(fpow, ns, complex(fc2, fs2))
		}
		if env != lastEnv {
			for k, n := range ns {
				amp[k] = a0 * env / float64(n) // square-wave harmonic rolloff
			}
			lastEnv = env
		}
		acc := dst[i]
		for k := range ns {
			acc += complex(amp[k]*real(z[k]), amp[k]*imag(z[k]))
			z[k] *= stepStatic[k] * fpow[k]
		}
		dst[i] = acc
		// ssc's own phase accumulator is unused — the per-harmonic phasors
		// above integrate n·Freq() directly — but Step also advances the
		// sweep position, which Freq() reads.
		ssc.Step(dt, 0)
		if renorm++; renorm >= sig.RotatorRenorm {
			renorm = 0
			for k := range z {
				z[k] = sig.Renormalize(z[k])
			}
		}
	}
}

// UnmodulatedClock is a fixed-frequency system clock (RTC, UART, panel
// backlight PWM, a neighbouring monitor's SMPS…) whose emissions do not
// respond to program activity — part of the "thousands of periodic
// signals that are not modulated by system activity" FASE must reject.
type UnmodulatedClock struct {
	Label string
	F0    float64
	// FundamentalDBm is the received fundamental power.
	FundamentalDBm float64
	// MaxHarmonics bounds the rendered comb (odd harmonics: square wave).
	MaxHarmonics int
	// WanderSigma/WanderTau give optional oscillator wander.
	WanderSigma, WanderTau float64
}

// Name implements emsim.Component.
func (g *UnmodulatedClock) Name() string { return g.Label }

// Domain implements emsim.Emitter.
func (g *UnmodulatedClock) Domain() activity.Domain { return activity.DomainNone }

// AMModulated implements emsim.Emitter.
func (g *UnmodulatedClock) AMModulated() bool { return false }

// Carriers implements emsim.Emitter.
func (g *UnmodulatedClock) Carriers(f1, f2 float64) []float64 {
	var out []float64
	for n := 1; n <= g.MaxHarmonics; n += 2 {
		f := float64(n) * g.F0
		if f >= f1 && f <= f2 {
			out = append(out, f)
		}
	}
	return out
}

// BandExtent implements emsim.Extenter: lines at the odd harmonics of F0
// — the same frequencies Render's in-band scan tests.
func (g *UnmodulatedClock) BandExtent() emsim.Extent {
	return lineExtent(g.F0, g.MaxHarmonics, 1, 2)
}

// Prepare implements emsim.Prepper: the in-band harmonic list and static
// rotation phasors for the segment.
func (g *UnmodulatedClock) Prepare(band emsim.Band, _ int) any {
	return prepComb(band, g.F0, g.MaxHarmonics, 1, 2)
}

// StaticTerms implements emsim.StaticRenderer: the clock never reads the
// activity trace — wander draws only from the capture PRNG — so its whole
// comb is activity-independent, one addend per in-band odd harmonic.
func (g *UnmodulatedClock) StaticTerms(band emsim.Band, _ int) (int, bool) {
	terms := 0
	for n := 1; n <= g.MaxHarmonics; n += 2 {
		if band.Contains(float64(n) * g.F0) {
			terms++
		}
	}
	return terms, true
}

// RenderStaticTerms implements emsim.StaticTermRenderer. It mirrors Render
// step for step — same PRNG draws, same phasor updates, same renorm
// schedule — but writes each harmonic's addend stream instead of summing
// into dst, so replaying the streams in order rebuilds Render's exact
// accumulation chain.
func (g *UnmodulatedClock) RenderStaticTerms(terms [][]complex128, ctx *emsim.Context) {
	cs := combPool.Get().(*combScratch)
	defer combPool.Put(cs)
	pre, _ := ctx.Prep.(*combPrep)
	var ns []int
	if pre != nil {
		ns = pre.ns
	} else {
		scan := cs.ns[:0]
		for n := 1; n <= g.MaxHarmonics; n += 2 {
			if ctx.Band.Contains(float64(n) * g.F0) {
				scan = append(scan, n)
			}
		}
		cs.ns = scan
		ns = scan
	}
	if len(terms) != len(ns) {
		panic(fmt.Sprintf("machine: clock %q has %d in-band harmonics, %d term streams", g.Label, len(ns), len(terms)))
	}
	if len(ns) == 0 {
		return
	}
	r := ctx.Rand
	dt := ctx.Dt()
	a0 := math.Sqrt(math.Pow(10, g.FundamentalDBm/10))
	wander := sig.OU{Sigma: g.WanderSigma, Tau: g.WanderTau}
	wander.Init(r)
	base := 2 * math.Pi * r.Float64()
	cs.grow(len(ns))
	z, wpow, amp := cs.z, cs.wpow, cs.amp
	stepStatic := cs.stepStatic
	if pre != nil {
		stepStatic = pre.stepStatic
	}
	for k, n := range ns {
		fn := float64(n)
		s, c := math.Sincos(wrapPhase(fn * base))
		z[k] = complex(c, s)
		if pre == nil {
			s, c = math.Sincos(2 * math.Pi * (fn*g.F0 - ctx.Band.Center) * dt)
			stepStatic[k] = complex(c, s)
		}
		wpow[k] = 1
		amp[k] = a0 / float64(n)
	}
	if g.WanderSigma == 0 {
		// Crystal clock: the harmonics never interact, so each addend
		// stream renders start to finish with its phasor in registers. The
		// per-harmonic multiply/renorm sequence is exactly Render's.
		for k := range z {
			tv := terms[k]
			zk, sk, ak := z[k], stepStatic[k], amp[k]
			rn := 0
			for i := range tv {
				tv[i] = complex(ak*real(zk), ak*imag(zk))
				zk *= sk
				if rn++; rn >= sig.RotatorRenorm {
					rn = 0
					zk = sig.Renormalize(zk)
				}
			}
		}
		return
	}
	renorm := 0
	for i := 0; i < ctx.N; i++ {
		df := wander.Step(dt, r)
		if df != 0 {
			ws, wc := math.Sincos(2 * math.Pi * df * dt)
			w := complex(wc, ws)
			cur := complex(1, 0)
			m := 0
			for k := range z {
				d := ns[k] - m
				if d < 8 {
					for ; d > 0; d-- {
						cur *= w
					}
				} else {
					cur *= sig.Ipow(w, d)
				}
				m = ns[k]
				zk := z[k]
				terms[k][i] = complex(amp[k]*real(zk), amp[k]*imag(zk))
				z[k] = zk * (stepStatic[k] * cur)
			}
		} else {
			for k := range z {
				terms[k][i] = complex(amp[k]*real(z[k]), amp[k]*imag(z[k]))
				z[k] *= stepStatic[k] * wpow[k]
			}
		}
		if renorm++; renorm >= sig.RotatorRenorm {
			renorm = 0
			for k := range z {
				z[k] = sig.Renormalize(z[k])
			}
		}
	}
}

// Render implements emsim.Component.
func (g *UnmodulatedClock) Render(dst []complex128, ctx *emsim.Context) {
	cs := combPool.Get().(*combScratch)
	defer combPool.Put(cs)
	pre, _ := ctx.Prep.(*combPrep)
	var ns []int
	if pre != nil {
		ns = pre.ns
	} else {
		scan := cs.ns[:0]
		for n := 1; n <= g.MaxHarmonics; n += 2 {
			if ctx.Band.Contains(float64(n) * g.F0) {
				scan = append(scan, n)
			}
		}
		cs.ns = scan
		ns = scan
	}
	if len(ns) == 0 {
		return
	}
	r := ctx.Rand
	dt := ctx.Dt()
	a0 := math.Sqrt(math.Pow(10, g.FundamentalDBm/10))
	wander := sig.OU{Sigma: g.WanderSigma, Tau: g.WanderTau}
	wander.Init(r)
	// Phasor rotation: static per-harmonic step plus the n-th power of the
	// shared wander rotation (skipped entirely for crystal clocks with
	// zero wander — then the loop is trig-free).
	base := 2 * math.Pi * r.Float64()
	cs.grow(len(ns))
	z, wpow, amp := cs.z, cs.wpow, cs.amp
	stepStatic := cs.stepStatic
	if pre != nil {
		stepStatic = pre.stepStatic
	}
	for k, n := range ns {
		fn := float64(n)
		s, c := math.Sincos(wrapPhase(fn * base))
		z[k] = complex(c, s)
		if pre == nil {
			s, c = math.Sincos(2 * math.Pi * (fn*g.F0 - ctx.Band.Center) * dt)
			stepStatic[k] = complex(c, s)
		}
		wpow[k] = 1
		amp[k] = a0 / float64(n)
	}
	// Re-slice the working arrays to a common length so the hot loops
	// index them without bounds checks.
	z = z[:len(ns)]
	stepStatic = stepStatic[:len(z)]
	amp = amp[:len(z)]
	renorm := 0
	if g.WanderSigma == 0 {
		// Crystal clock: no wander process to step (Step draws nothing and
		// returns 0 for Sigma == 0) and wpow stays the identity, so the
		// comb is a fixed-amplitude rotate-and-accumulate — the blocked
		// kernel's case.
		renderFixedComb(dst, z, stepStatic, amp)
		return
	}
	for i := range dst {
		df := wander.Step(dt, r)
		if df != 0 {
			// The wander power chain is fused into the accumulation loop:
			// cur advances through the same sequence of multiplies PowChain
			// would store into wpow, so z evolves bit-identically while the
			// wpow array round trip disappears.
			ws, wc := math.Sincos(2 * math.Pi * df * dt)
			w := complex(wc, ws)
			cur := complex(1, 0)
			m := 0
			acc := dst[i]
			for k := range z {
				d := ns[k] - m
				if d < 8 {
					for ; d > 0; d-- {
						cur *= w
					}
				} else {
					cur *= sig.Ipow(w, d)
				}
				m = ns[k]
				zk := z[k]
				acc += complex(amp[k]*real(zk), amp[k]*imag(zk))
				z[k] = zk * (stepStatic[k] * cur)
			}
			dst[i] = acc
		} else {
			acc := dst[i]
			for k := range z {
				acc += complex(amp[k]*real(z[k]), amp[k]*imag(z[k]))
				z[k] *= stepStatic[k] * wpow[k]
			}
			dst[i] = acc
		}
		if renorm++; renorm >= sig.RotatorRenorm {
			renorm = 0
			for k := range z {
				z[k] = sig.Renormalize(z[k])
			}
		}
	}
}
