package machine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fase/internal/activity"
	"fase/internal/emsim"
	"fase/internal/microbench"
	"fase/internal/sig"
)

// randomScene builds a scene mixing every machine emitter type with
// environment sources, all with randomized parameters.
func randomScene(r *rand.Rand) *emsim.Scene {
	scene := &emsim.Scene{}
	scene.Add(
		&SwitchingRegulator{
			Label:          "reg A",
			FSw:            200e3 + r.Float64()*300e3,
			BaseDuty:       0.08 + r.Float64()*0.3,
			DutySwing:      r.Float64() * 0.05,
			AmpSwing:       r.Float64() * 0.3,
			FundamentalDBm: -115 + r.Float64()*10,
			MaxHarmonics:   1 + r.Intn(12),
			WanderSigma:    r.Float64() * 400,
			WanderTau:      1e-3,
			LoopBw:         65e3,
			Dom:            activity.DomainDRAM,
		},
		&UnmodulatedClock{
			Label:          "crystal",
			F0:             100e3 + r.Float64()*2e6,
			FundamentalDBm: -118,
			MaxHarmonics:   1 + 2*r.Intn(5),
		},
		&UnmodulatedClock{
			Label:          "wandering clock",
			F0:             100e3 + r.Float64()*2e6,
			FundamentalDBm: -120,
			MaxHarmonics:   1 + 2*r.Intn(4),
			WanderSigma:    5 + r.Float64()*40,
			WanderTau:      1e-3,
		},
		&SSCClock{
			Label:          "spread clock",
			F0:             0.8e6 + r.Float64()*3e6,
			SpreadHz:       r.Float64() * 20e3,
			RateHz:         10e3,
			Profile:        sig.SineSweep{},
			FundamentalDBm: -112,
			IdleFrac:       0.4,
			MaxHarmonics:   1 + 2*r.Intn(2),
			Dom:            activity.DomainDRAM,
		},
		&SSCClock{
			Label:          "unspread clock",
			F0:             0.5e6 + r.Float64()*3e6,
			Profile:        sig.TriangleSweep{},
			FundamentalDBm: -120,
			IdleFrac:       1,
			MaxHarmonics:   1,
			Dom:            activity.DomainNone,
		},
		&RefreshEmitter{
			Label:           "refresh",
			TRefi:           7.8125e-6,
			PulseWidth:      200e-9,
			LineDBm:         -126,
			Ranks:           1 + r.Intn(4),
			NearRankWeights: []float64{1, 0.05, 0.05, 0.05},
			DisruptGain:     0.35,
			JitterIdle:      0.002,
			MaxHarmonics:    7,
			Dom:             activity.DomainDRAM,
		},
		&ConstantOnTimeRegulator{
			Label:          "COT reg",
			F0:             300e3 + r.Float64()*200e3,
			FreqSwing:      0.15,
			TOn:            300e-9,
			FundamentalDBm: -118,
			WanderSigma:    2e3,
			WanderTau:      5e-3,
			Dom:            activity.DomainCore,
		},
		&emsim.AMStation{Call: "AM", Freq: 0.5e6 + r.Float64()*1.5e6,
			PowerMw: 1e-10, AudioSeed: r.Int63()},
		&emsim.FMStation{Call: "FM", Freq: 88e6 + r.Float64()*20e6,
			PowerMw: 1e-10, AudioSeed: r.Int63()},
		&emsim.Background{FloorDBmPerHz: -172},
	)
	return scene
}

// TestPlannedRenderEquivalence is the planner's core property test:
// rendering any capture through Scene.Plan must be bit-identical to
// rendering it unplanned, across randomized scenes, bands, activity
// traces, and seeds — while actually culling components (otherwise the
// test exercises nothing).
func TestPlannedRenderEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	culled := 0
	for trial := 0; trial < 12; trial++ {
		scene := randomScene(r)
		n := 1 << (9 + r.Intn(3)) // 512..2048
		band := emsim.Band{
			Center:     100e3 + r.Float64()*4e6,
			SampleRate: float64(n) * (50 + r.Float64()*200),
		}
		var trace *activity.Trace
		if r.Intn(2) == 0 {
			kinds := []activity.Kind{activity.LDM, activity.LDL1, activity.LDL2}
			trace = microbench.Generate(microbench.Config{
				X: kinds[r.Intn(len(kinds))], Y: kinds[r.Intn(len(kinds))],
				FAlt:   30e3 + r.Float64()*20e3,
				Jitter: microbench.DefaultJitter(), Seed: r.Int63(),
			}, 0.5+float64(n)/band.SampleRate)
		}
		plan := scene.Plan(band, n)
		culled += len(scene.Components) - plan.ActiveCount()
		capt := emsim.Capture{
			Band: band, N: n,
			Start:     r.Float64() * 0.2,
			Activity:  trace,
			Seed:      r.Int63(),
			NearField: r.Intn(4) == 0, NearFieldGainDB: 30,
		}
		unplanned := make([]complex128, n)
		scene.RenderInto(unplanned, capt)
		planned := make([]complex128, n)
		capt.Plan = plan
		scene.RenderInto(planned, capt)
		for i := range planned {
			if math.Float64bits(real(planned[i])) != math.Float64bits(real(unplanned[i])) ||
				math.Float64bits(imag(planned[i])) != math.Float64bits(imag(unplanned[i])) {
				t.Fatalf("trial %d: sample %d differs: planned %v, unplanned %v",
					trial, i, planned[i], unplanned[i])
			}
		}
	}
	if culled == 0 {
		t.Fatal("no component was ever culled; the equivalence test is vacuous")
	}
}

// TestMachineBandExtents pins each machine emitter's BandExtent.
func TestMachineBandExtents(t *testing.T) {
	reg := &SwitchingRegulator{FSw: 315e3, MaxHarmonics: 3}
	if e := reg.BandExtent(); e.All || len(e.Spans) != 3 ||
		e.Spans[0] != (emsim.Span{Lo: 315e3, Hi: 315e3}) ||
		e.Spans[1] != (emsim.Span{Lo: 630e3, Hi: 630e3}) ||
		e.Spans[2] != (emsim.Span{Lo: 945e3, Hi: 945e3}) {
		t.Errorf("SwitchingRegulator extent = %+v, want lines at 315/630/945 kHz", e)
	}
	clk := &UnmodulatedClock{F0: 100e3, MaxHarmonics: 5}
	if e := clk.BandExtent(); e.All || len(e.Spans) != 3 ||
		e.Spans[0] != (emsim.Span{Lo: 100e3, Hi: 100e3}) ||
		e.Spans[1] != (emsim.Span{Lo: 300e3, Hi: 300e3}) ||
		e.Spans[2] != (emsim.Span{Lo: 500e3, Hi: 500e3}) {
		t.Errorf("UnmodulatedClock extent = %+v, want odd harmonics 100/300/500 kHz", e)
	}
	ssc := &SSCClock{F0: 333e6, SpreadHz: 1e6, MaxHarmonics: 3}
	if e := ssc.BandExtent(); e.All || len(e.Spans) != 2 ||
		e.Spans[0] != (emsim.Span{Lo: 332e6, Hi: 333e6}) ||
		e.Spans[1] != (emsim.Span{Lo: 996e6, Hi: 999e6}) {
		t.Errorf("SSCClock extent = %+v, want spread spans per odd harmonic", e)
	}
	unspread := &SSCClock{F0: 133e6, MaxHarmonics: 1}
	if e := unspread.BandExtent(); len(e.Spans) != 1 ||
		e.Spans[0] != (emsim.Span{Lo: 133e6, Hi: 133e6}) {
		t.Errorf("unspread SSCClock extent = %+v, want degenerate line", e)
	}
	if e := (&RefreshEmitter{}).BandExtent(); !e.All {
		t.Errorf("RefreshEmitter extent = %+v, want everywhere (wideband impulses)", e)
	}
	if e := (&ConstantOnTimeRegulator{}).BandExtent(); !e.All {
		t.Errorf("ConstantOnTimeRegulator extent = %+v, want everywhere (wideband impulses)", e)
	}
}

// TestMachineExtentExactness checks the empty side of the Extenter
// contract for the line/span emitters: when a band does not overlap the
// extent, Render must leave the buffer untouched.
func TestMachineExtentExactness(t *testing.T) {
	comps := []emsim.Component{
		&SwitchingRegulator{Label: "reg", FSw: 315e3, BaseDuty: 0.083,
			FundamentalDBm: -104, MaxHarmonics: 4, WanderSigma: 350,
			WanderTau: 1.2e-3, LoopBw: 65e3, Dom: activity.DomainDRAM},
		&UnmodulatedClock{Label: "clk", F0: 400e3, FundamentalDBm: -110,
			MaxHarmonics: 5, WanderSigma: 10, WanderTau: 1e-3},
		&SSCClock{Label: "ssc", F0: 333e6, SpreadHz: 1e6, RateHz: 10e3,
			Profile: sig.SineSweep{}, FundamentalDBm: -98, IdleFrac: 0.4,
			MaxHarmonics: 1, Dom: activity.DomainDRAM},
	}
	band := emsim.Band{Center: 10e6, SampleRate: 1e5} // far from every line above
	for _, c := range comps {
		if c.(emsim.Extenter).BandExtent().Overlaps(band) {
			t.Fatalf("%s: extent unexpectedly overlaps %+v", c.Name(), band)
		}
		scene := &emsim.Scene{}
		scene.Add(c)
		dst := scene.Render(emsim.Capture{Band: band, N: 512, Seed: 13})
		for i, v := range dst {
			if v != 0 {
				t.Fatalf("%s: rendered %v at sample %d outside its extent", c.Name(), v, i)
			}
		}
	}
}

// benchRender measures one component rendering a capture band.
func benchRender(b *testing.B, c emsim.Component, band emsim.Band) {
	b.Helper()
	scene := &emsim.Scene{}
	scene.Add(c)
	const n = 1 << 14
	band.SampleRate = n * 100
	dst := make([]complex128, n)
	capt := emsim.Capture{Band: band, N: n, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dst {
			dst[j] = 0
		}
		scene.RenderInto(dst, capt)
	}
}

// BenchmarkEmitterRender measures each emitter type with the capture band
// on top of its lines (in) and far away (out). The out cases bound the
// cost a sweep pays for components the planner cannot cull.
func BenchmarkEmitterRender(b *testing.B) {
	mk := map[string]func() emsim.Component{
		"SwitchingRegulator": func() emsim.Component {
			return &SwitchingRegulator{Label: "reg", FSw: 315e3, BaseDuty: 0.083,
				DutySwing: 0.035, FundamentalDBm: -104, MaxHarmonics: 12,
				WanderSigma: 350, WanderTau: 1.2e-3, LoopBw: 65e3, Dom: activity.DomainDRAM}
		},
		"UnmodulatedClock": func() emsim.Component {
			return &UnmodulatedClock{Label: "clk", F0: 266e3, FundamentalDBm: -110, MaxHarmonics: 9}
		},
		"WanderingClock": func() emsim.Component {
			return &UnmodulatedClock{Label: "clk", F0: 266e3, FundamentalDBm: -110,
				MaxHarmonics: 9, WanderSigma: 20, WanderTau: 1e-3}
		},
		"SSCClock": func() emsim.Component {
			return &SSCClock{Label: "ssc", F0: 333e6, SpreadHz: 1e6, RateHz: 10e3,
				Profile: sig.SineSweep{}, FundamentalDBm: -98, IdleFrac: 0.4,
				MaxHarmonics: 3, Dom: activity.DomainDRAM}
		},
		"RefreshEmitter": func() emsim.Component {
			return &RefreshEmitter{Label: "refresh", TRefi: 7.8125e-6, PulseWidth: 200e-9,
				LineDBm: -124, Ranks: 4, NearRankWeights: []float64{1, 0.05, 0.05, 0.05},
				DisruptGain: 0.35, JitterIdle: 0.002, MaxHarmonics: 7, Dom: activity.DomainDRAM}
		},
		"ConstantOnTimeRegulator": func() emsim.Component {
			return &ConstantOnTimeRegulator{Label: "cot", F0: 390e3, FreqSwing: 0.15,
				TOn: 300e-9, FundamentalDBm: -109, WanderSigma: 9e3, WanderTau: 4e-3,
				Dom: activity.DomainCore}
		},
		"AMStation": func() emsim.Component {
			return &emsim.AMStation{Call: "AM", Freq: 750e3, PowerMw: 1e-10, AudioSeed: 3}
		},
		"Background": func() emsim.Component {
			return &emsim.Background{FloorDBmPerHz: -172}
		},
	}
	// Band centers that land on (in) and away from (out) each emitter's
	// lines; Everywhere-extent components cost the same either way.
	centers := map[string][2]float64{
		"SwitchingRegulator":      {315e3, 5e6},
		"UnmodulatedClock":        {266e3, 5e6},
		"WanderingClock":          {266e3, 5e6},
		"SSCClock":                {332.5e6, 5e6},
		"RefreshEmitter":          {512e3, 5e6},
		"ConstantOnTimeRegulator": {390e3, 5e6},
		"AMStation":               {750e3, 5e6},
		"Background":              {750e3, 5e6},
	}
	for _, name := range []string{"SwitchingRegulator", "UnmodulatedClock",
		"WanderingClock", "SSCClock", "RefreshEmitter",
		"ConstantOnTimeRegulator", "AMStation", "Background"} {
		for i, which := range []string{"in", "out"} {
			b.Run(fmt.Sprintf("%s/%s", name, which), func(b *testing.B) {
				benchRender(b, mk[name](), emsim.Band{Center: centers[name][i]})
			})
		}
	}
}
