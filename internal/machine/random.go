package machine

import (
	"fmt"
	"math"
	"math/rand"

	"fase/internal/activity"
	"fase/internal/emsim"
	"fase/internal/sig"
)

// RandomSpec bounds the randomized system generator behind the accuracy
// harness (internal/verify): how many of each emitter class a generated
// system may carry, and where in the scanned band their fundamentals land.
// The zero value of every field selects the default noted on it.
type RandomSpec struct {
	// F1, F2 bound the band the corpus campaign will scan; generated
	// fundamentals land inside it with a 5% margin on both edges.
	F1, F2 float64
	// MinSepHz is the minimum spacing between any two generated
	// fundamentals, keeping planted carriers and decoys resolvable as
	// distinct detections. Zero means 15 kHz.
	MinSepHz float64
	// MaxPlanted caps the activity-modulated emitters (the carriers FASE
	// must find): switching regulators on the DRAM/memory-interface rails
	// and unspread memory clocks. At least one is always planted. Zero
	// means 3.
	MaxPlanted int
	// MaxDecoys caps the unmodulated clocks (the carriers FASE must
	// reject). Zero means 3.
	MaxDecoys int
	// MaxStations caps the AM broadcast interferers parked inside the
	// scanned band. Zero means 2.
	MaxStations int
	// SSCDecoyProb is the probability of one spread-spectrum clock decoy.
	// Zero means 0.5; negative disables.
	SSCDecoyProb float64
	// CoreRegProb is the probability of a core-rail switching regulator.
	// Against a memory-only activity pair (e.g. LDM/LDL1) it is a decoy
	// with the full spectral signature of a planted carrier — the
	// sharpest rejection test in the corpus. Zero means 0.5; negative
	// disables.
	CoreRegProb float64
	// FMRegProb is the probability of a constant-on-time (frequency-
	// modulated) regulator, which FASE must not report even though its
	// load tracks activity. Zero means 0.25; negative disables.
	FMRegProb float64
	// RefreshProb is the probability of a memory-refresh emitter (a
	// planted comb line; activity *weakens* it, §4.2). Zero means 0.2;
	// negative disables.
	RefreshProb float64
	// AvoidSpacings are |Δf| intervals no two generated carrier lines may
	// have between them. The accuracy harness fills this with the
	// campaign's m·f_alt ghost windows: the detector (correctly,
	// following the paper) attributes a weak carrier at an m·f_alt
	// spacing from a much stronger one to the strong carrier's flanks,
	// so such a placement is undetectable by design — the paper's remedy
	// is rescanning at a different f_alt, which the corpus forgoes by
	// never creating the collision.
	AvoidSpacings [][2]float64
}

func (s RandomSpec) withDefaults() RandomSpec {
	if s.MinSepHz == 0 {
		s.MinSepHz = 15e3
	}
	if s.MaxPlanted == 0 {
		s.MaxPlanted = 3
	}
	if s.MaxDecoys == 0 {
		s.MaxDecoys = 3
	}
	if s.MaxStations == 0 {
		s.MaxStations = 2
	}
	if s.SSCDecoyProb == 0 {
		s.SSCDecoyProb = 0.5
	}
	if s.CoreRegProb == 0 {
		s.CoreRegProb = 0.5
	}
	if s.FMRegProb == 0 {
		s.FMRegProb = 0.25
	}
	if s.RefreshProb == 0 {
		s.RefreshProb = 0.2
	}
	return s
}

// freqPlacer hands out fundamentals inside the band margin by rejection
// sampling: every line a candidate emitter would put in band (fundamental
// and harmonics) must keep MinSepHz from every line already placed AND
// must not sit at a forbidden |Δf| spacing (AvoidSpacings, the detector's
// m·f_alt ghost windows) from any of them.
type freqPlacer struct {
	r       *rand.Rand
	lo, hi  float64
	bandTop float64 // lines above this are out of scan and unconstrained
	minSep  float64
	avoid   [][2]float64
	lines   []float64 // every in-band line placed so far
}

func newFreqPlacer(r *rand.Rand, spec RandomSpec) *freqPlacer {
	margin := 0.05 * (spec.F2 - spec.F1)
	return &freqPlacer{
		r: r, lo: spec.F1 + margin, hi: spec.F2 - margin,
		bandTop: spec.F2, minSep: spec.MinSepHz, avoid: spec.AvoidSpacings,
	}
}

// lineOK checks one candidate line against everything placed so far.
func (p *freqPlacer) lineOK(f float64) bool {
	for _, g := range p.lines {
		df := math.Abs(f - g)
		if df < p.minSep {
			return false
		}
		for _, iv := range p.avoid {
			if df >= iv[0] && df <= iv[1] {
				return false
			}
		}
	}
	return true
}

// place returns a fresh fundamental whose lines at n·f (n = 1..maxLines,
// clipped to the scanned band) all clear the placed set, and registers
// them. Returns 0 when the band is too crowded (the caller then stops
// adding emitters).
func (p *freqPlacer) place(maxLines int) float64 {
	for try := 0; try < 500; try++ {
		f := p.lo + p.r.Float64()*(p.hi-p.lo)
		ok := true
		var cand []float64
		for n := 1; n <= maxLines && float64(n)*f <= p.bandTop; n++ {
			cand = append(cand, float64(n)*f)
		}
		for _, cf := range cand {
			if !p.lineOK(cf) {
				ok = false
				break
			}
		}
		if ok {
			p.lines = append(p.lines, cand...)
			return f
		}
	}
	return 0
}

// RandomSystem generates a seeded-random machine model for the accuracy
// corpus: 1..MaxPlanted activity-modulated emitters drawn from the same
// classes as the hand-built registry systems (DRAM/memory-interface
// switching regulators, unspread memory clocks, optionally a refresh
// comb), surrounded by decoys FASE must reject (unmodulated clocks, a
// core-rail regulator idle under memory-only pairs, an FM-only regulator,
// a spread-spectrum clock) and in-band AM broadcast interferers. All
// parameters are drawn from r, so a given (seed, spec) pair always builds
// the same system; ground truth comes from the scene's GroundTruth, which
// classifies every carrier by domain and modulation capability.
//
// Every emitter parameter range is bracketed by the registry systems
// (systems.go), so the corpus stays inside the physics the simulator was
// calibrated for.
func RandomSystem(r *rand.Rand, spec RandomSpec) *System {
	spec = spec.withDefaults()
	if spec.F2 <= spec.F1 {
		panic(fmt.Sprintf("machine: random system band [%g, %g] is empty", spec.F1, spec.F2))
	}
	place := newFreqPlacer(r, spec)
	sys := &System{Name: "randomized corpus system"}

	memDomains := []activity.Domain{activity.DomainDRAM, activity.DomainMemCtl}
	nPlanted := 1 + r.Intn(spec.MaxPlanted)
	for i := 0; i < nPlanted; i++ {
		maxH := 1 + r.Intn(3)
		isReg := r.Float64() < 0.7
		if !isReg {
			maxH = 1
		}
		f := place.place(maxH)
		if f == 0 {
			break
		}
		if isReg {
			reg := &SwitchingRegulator{
				Label:          fmt.Sprintf("planted regulator %d (%.0f kHz)", i, f/1e3),
				FSw:            f,
				BaseDuty:       0.06 + 0.07*r.Float64(),
				DutySwing:      0.03 + 0.05*r.Float64(),
				FundamentalDBm: -112 + 8*r.Float64(),
				MaxHarmonics:   maxH,
				WanderSigma:    300 + 200*r.Float64(),
				WanderTau:      (0.8 + 0.7*r.Float64()) * 1e-3,
				LoopBw:         40e3 + 50e3*r.Float64(),
				Dom:            memDomains[r.Intn(len(memDomains))],
			}
			sys.Emitters = append(sys.Emitters, reg)
			if sys.MemRegulator == nil {
				sys.MemRegulator = reg
			}
		} else {
			// An unspread memory clock whose switching current tracks DRAM
			// activity — the p3m-laptop's SDRAM clock class.
			clk := &SSCClock{
				Label:          fmt.Sprintf("planted memory clock %d (%.0f kHz)", i, f/1e3),
				F0:             f,
				FundamentalDBm: -110 + 8*r.Float64(),
				IdleFrac:       0.4 + 0.15*r.Float64(),
				MaxHarmonics:   1,
				Dom:            activity.DomainDRAM,
			}
			sys.Emitters = append(sys.Emitters, clk)
			if sys.DRAMClock == nil {
				sys.DRAMClock = clk
			}
		}
	}

	if spec.RefreshProb > 0 && r.Float64() < spec.RefreshProb {
		// The refresh pulse train is a comb at every multiple of 1/TRefi,
		// so the whole in-band family is placed and listed as ground truth
		// (MaxHarmonics must cover it: the render does not truncate).
		if f := place.place(1 << 10); f != 0 {
			sys.Refresh = &RefreshEmitter{
				Label:           fmt.Sprintf("planted refresh comb (%.0f kHz)", f/1e3),
				TRefi:           1 / f,
				PulseWidth:      200e-9,
				LineDBm:         -118 + 4*r.Float64(),
				Ranks:           1,
				NearRankWeights: []float64{1},
				DisruptGain:     0.3 + 0.1*r.Float64(),
				JitterIdle:      0.002,
				MaxHarmonics:    int(spec.F2 / f),
				Dom:             activity.DomainDRAM,
			}
			sys.Emitters = append(sys.Emitters, sys.Refresh)
		}
	}

	if spec.CoreRegProb > 0 && r.Float64() < spec.CoreRegProb {
		maxH := 1 + r.Intn(3)
		if f := place.place(maxH); f != 0 {
			sys.CoreRegulator = &SwitchingRegulator{
				Label:          fmt.Sprintf("core regulator decoy (%.0f kHz)", f/1e3),
				FSw:            f,
				BaseDuty:       0.06 + 0.07*r.Float64(),
				DutySwing:      0.05 + 0.05*r.Float64(),
				FundamentalDBm: -110 + 6*r.Float64(),
				MaxHarmonics:   maxH,
				WanderSigma:    300 + 200*r.Float64(),
				WanderTau:      (0.8 + 0.7*r.Float64()) * 1e-3,
				LoopBw:         40e3 + 50e3*r.Float64(),
				Dom:            activity.DomainCore,
			}
			sys.Emitters = append(sys.Emitters, sys.CoreRegulator)
		}
	}

	if spec.FMRegProb > 0 && r.Float64() < spec.FMRegProb {
		if f := place.place(1); f != 0 {
			sys.FMCoreRegulator = &ConstantOnTimeRegulator{
				Label:          fmt.Sprintf("FM regulator decoy (%.0f kHz)", f/1e3),
				F0:             f,
				FreqSwing:      0.1 + 0.05*r.Float64(),
				TOn:            260e-9,
				FundamentalDBm: -111 + 4*r.Float64(),
				WanderSigma:    35e3,
				WanderTau:      60e-6,
				Dom:            activity.DomainDRAM,
			}
			sys.Emitters = append(sys.Emitters, sys.FMCoreRegulator)
		}
	}

	if spec.SSCDecoyProb > 0 && r.Float64() < spec.SSCDecoyProb {
		if f := place.place(1); f != 0 {
			profiles := []sig.SweepProfile{sig.TriangleSweep{}, sig.SineSweep{}}
			sys.Emitters = append(sys.Emitters, &SSCClock{
				Label:          fmt.Sprintf("SSC clock decoy (%.0f kHz)", f/1e3),
				F0:             f,
				SpreadHz:       3e3 + 4e3*r.Float64(),
				RateHz:         10e3 + 20e3*r.Float64(),
				Profile:        profiles[r.Intn(len(profiles))],
				FundamentalDBm: -110 + 6*r.Float64(),
				IdleFrac:       1,
				MaxHarmonics:   1,
				Dom:            activity.DomainNone,
			})
		}
	}

	nDecoys := r.Intn(spec.MaxDecoys + 1)
	for i := 0; i < nDecoys; i++ {
		f := place.place(1)
		if f == 0 {
			break
		}
		clk := &UnmodulatedClock{
			Label:          fmt.Sprintf("unmodulated clock decoy %d (%.0f kHz)", i, f/1e3),
			F0:             f,
			FundamentalDBm: -120 + 10*r.Float64(),
			MaxHarmonics:   1,
		}
		if r.Float64() < 0.5 {
			clk.WanderSigma = 50 + 100*r.Float64()
			clk.WanderTau = (1 + r.Float64()) * 1e-3
		}
		sys.Emitters = append(sys.Emitters, clk)
	}

	nStations := r.Intn(spec.MaxStations + 1)
	for i := 0; i < nStations; i++ {
		f := place.place(1)
		if f == 0 {
			break
		}
		sys.Emitters = append(sys.Emitters, &emsim.AMStation{
			Call:      fmt.Sprintf("CORP%d", i),
			Freq:      f,
			PowerMw:   dbmToMw(-100 + 10*r.Float64()),
			Depth:     0.3 + 0.5*r.Float64(),
			AudioSeed: r.Int63(),
		})
	}
	return sys
}

func dbmToMw(dbm float64) float64 { return math.Pow(10, dbm/10) }
