package machine

import (
	"math"
	"testing"

	"fase/internal/activity"
	"fase/internal/dsp/spectral"
	"fase/internal/emsim"
	"fase/internal/microbench"
	"fase/internal/specan"
)

// sweep measures a single-emitter scene over [f1, f2].
func sweep(t *testing.T, c emsim.Component, f1, f2, fres float64, tr interface {
	At(float64) activity.Load
}, seed int64, near bool) *spectral.Spectrum {
	t.Helper()
	scene := &emsim.Scene{}
	scene.Add(c, &emsim.Background{FloorDBmPerHz: -172})
	an := specan.New(specan.Config{Fres: fres})
	var act *activity.Trace
	if tr != nil {
		act = tr.(*activity.Trace)
	}
	return an.Sweep(specan.Request{Scene: scene, F1: f1, F2: f2, Activity: act,
		Seed: seed, NearField: near, NearFieldGainDB: 30})
}

func dbmAt(s *spectral.Spectrum, f, half float64) float64 {
	i := s.MaxIn(f-half, f+half)
	if i < 0 {
		return -300
	}
	return spectral.DBmFromMw(s.PmW[i])
}

func integratedDbm(s *spectral.Spectrum, f1, f2 float64) float64 {
	var tot float64
	for _, p := range s.Slice(f1, f2).PmW {
		tot += p
	}
	return spectral.DBmFromMw(tot)
}

func TestRegulatorCarrierPowerAndHarmonics(t *testing.T) {
	reg := IntelCoreI7Desktop().MemRegulator
	s := sweep(t, reg, 250e3, 1000e3, 100, nil, 1, false)
	// Integrated fundamental power ~ -104 dBm (+~3 dB window NENBW).
	got := integratedDbm(s, 313e3, 317e3)
	if math.Abs(got-(-101)) > 2.5 {
		t.Errorf("fundamental integrated power %.1f dBm, want ~-101", got)
	}
	// Harmonics at 630 and 945 kHz present well above the floor.
	if dbmAt(s, 630e3, 2e3) < -130 || dbmAt(s, 945e3, 2e3) < -135 {
		t.Errorf("harmonics missing: 2nd %.1f, 3rd %.1f dBm",
			dbmAt(s, 630e3, 2e3), dbmAt(s, 945e3, 2e3))
	}
	// Small duty cycle: even harmonic is NOT suppressed (§4.1 clue).
	if dbmAt(s, 630e3, 2e3) < dbmAt(s, 945e3, 2e3)-10 {
		t.Error("even harmonic should be strong for a small duty cycle")
	}
}

func TestRegulatorSidebandsAppearOnlyUnderAlternation(t *testing.T) {
	reg := IntelCoreI7Desktop().MemRegulator
	falt := 40e3
	tr := microbench.Generate(microbench.Config{
		X: activity.LDM, Y: activity.LDL1, FAlt: falt,
		Jitter: microbench.DefaultJitter(), Seed: 2}, 1.0)
	mod := sweep(t, reg, 250e3, 400e3, 100, tr, 1, false)
	idle := sweep(t, reg, 250e3, 400e3, 100, nil, 1, false)
	for _, f := range []float64{315e3 - falt, 315e3 + falt} {
		up := dbmAt(mod, f, 3e3) - dbmAt(idle, f, 3e3)
		if up < 10 {
			t.Errorf("sideband at %.0f kHz only %.1f dB above idle", f/1e3, up)
		}
	}
	// A control alternating identical activities must produce no
	// sidebands (LDL1/LDL1 of Figures 7 and 12).
	ctl := microbench.Generate(microbench.Config{
		X: activity.LDL1, Y: activity.LDL1, FAlt: falt,
		Jitter: microbench.DefaultJitter(), Seed: 3}, 1.0)
	ctlS := sweep(t, reg, 250e3, 400e3, 100, ctl, 1, false)
	for _, f := range []float64{315e3 - falt, 315e3 + falt} {
		up := dbmAt(ctlS, f, 3e3) - dbmAt(idle, f, 3e3)
		if up > 6 {
			t.Errorf("control sideband at %.0f kHz is %.1f dB above idle", f/1e3, up)
		}
	}
}

func TestRegulatorDomainSelectivity(t *testing.T) {
	// The core regulator must not grow sidebands under LDM/LDL1 (equal
	// core load), but must under LDL2/LDL1 — the paper's Figure 11 vs 13.
	reg := IntelCoreI7Desktop().CoreRegulator
	falt := 40e3
	fc := reg.FSw
	idle := sweep(t, reg, 250e3, 420e3, 100, nil, 4, false)
	mem := microbench.Generate(microbench.Config{X: activity.LDM, Y: activity.LDL1,
		FAlt: falt, Jitter: microbench.DefaultJitter(), Seed: 5}, 1.0)
	memS := sweep(t, reg, 250e3, 420e3, 100, mem, 4, false)
	chip := microbench.Generate(microbench.Config{X: activity.LDL2, Y: activity.LDL1,
		FAlt: falt, Jitter: microbench.DefaultJitter(), Seed: 6}, 1.0)
	chipS := sweep(t, reg, 250e3, 420e3, 100, chip, 4, false)
	memUp := dbmAt(memS, fc+falt, 3e3) - dbmAt(idle, fc+falt, 3e3)
	chipUp := dbmAt(chipS, fc+falt, 3e3) - dbmAt(idle, fc+falt, 3e3)
	if memUp > 6 {
		t.Errorf("core regulator shows %.1f dB sideband under LDM/LDL1", memUp)
	}
	if chipUp < 10 {
		t.Errorf("core regulator sideband only %.1f dB under LDL2/LDL1", chipUp)
	}
}

func TestRefreshCombAndInverseActivity(t *testing.T) {
	ref := IntelCoreI7Desktop().Refresh
	idle := sweep(t, ref, 100e3, 1100e3, 100, nil, 7, false)
	// Far field: strong lines at 512k and 1024k, weak at 128k/256k.
	if dbmAt(idle, 512e3, 1e3) < -130 || dbmAt(idle, 1024e3, 1e3) < -130 {
		t.Errorf("far-field 512k comb missing: %.1f / %.1f dBm",
			dbmAt(idle, 512e3, 1e3), dbmAt(idle, 1024e3, 1e3))
	}
	if dbmAt(idle, 128e3, 1e3) > -138 {
		t.Errorf("far-field 128k line too strong: %.1f dBm", dbmAt(idle, 128e3, 1e3))
	}
	// The paper's counterintuitive finding: continuous memory activity
	// WEAKENS the refresh lines (§4.2).
	busy := sweep(t, ref, 100e3, 1100e3, 100, microbench.Constant(activity.LDM), 7, false)
	drop := dbmAt(idle, 512e3, 1e3) - dbmAt(busy, 512e3, 1e3)
	if drop < 8 {
		t.Errorf("refresh line should weaken under load: dropped only %.1f dB", drop)
	}
}

func TestRefreshNearFieldRevealsGCD(t *testing.T) {
	// Near-field probing reveals the 128 kHz greatest common divisor
	// (§4.2: "further measurements with small probes close to the memory
	// revealed many additional harmonics with a GCD of 128 kHz").
	ref := IntelCoreI7Desktop().Refresh
	near := sweep(t, ref, 100e3, 600e3, 100, nil, 8, true)
	for _, f := range []float64{128e3, 256e3, 384e3, 512e3} {
		if dbmAt(near, f, 1e3) < -120 {
			t.Errorf("near-field line at %.0f kHz missing: %.1f dBm", f/1e3, dbmAt(near, f, 1e3))
		}
	}
}

func TestSSCClockSpreadAndActivity(t *testing.T) {
	clk := IntelCoreI7Desktop().DRAMClock
	an := specan.New(specan.Config{Fres: 500})
	scene := &emsim.Scene{}
	scene.Add(clk, &emsim.Background{FloorDBmPerHz: -172})
	idle := an.Sweep(specan.Request{Scene: scene, F1: 330e6, F2: 335e6, Seed: 9})
	busy := an.Sweep(specan.Request{Scene: scene, F1: 330e6, F2: 335e6,
		Activity: microbench.Constant(activity.LDM), Seed: 9})
	// Energy confined to the spread range [332, 333] MHz.
	inHi := dbmAt(busy, 332.5e6, 400e3)
	outLo := dbmAt(busy, 331.5e6, 300e3)
	outHi := dbmAt(busy, 334e6, 300e3)
	if inHi-outLo < 10 || inHi-outHi < 10 {
		t.Errorf("SSC energy not confined: in %.1f, out %.1f/%.1f", inHi, outLo, outHi)
	}
	// DRAM activity strengthens the emission (§2.2).
	gain := dbmAt(busy, 332.5e6, 500e3) - dbmAt(idle, 332.5e6, 500e3)
	if gain < 3 {
		t.Errorf("DRAM clock should emit more under activity: +%.1f dB", gain)
	}
	// Sine sweep dwells at the edges: horns above mid-spread level.
	horn := dbmAt(busy, 332.97e6, 40e3)
	if horn < dbmAt(busy, 332.5e6, 20e3)-2 {
		t.Errorf("upper horn %.1f dBm not pronounced vs mid %.1f", horn, dbmAt(busy, 332.5e6, 20e3))
	}
}

func TestUnmodulatedClockIgnoresActivity(t *testing.T) {
	clk := &UnmodulatedClock{Label: "test clock", F0: 500e3, FundamentalDBm: -110, MaxHarmonics: 3, WanderSigma: 10, WanderTau: 1e-3}
	falt := 40e3
	tr := microbench.Generate(microbench.Config{X: activity.LDM, Y: activity.LDL1,
		FAlt: falt, Jitter: microbench.DefaultJitter(), Seed: 10}, 1.0)
	mod := sweep(t, clk, 400e3, 600e3, 100, tr, 11, false)
	idle := sweep(t, clk, 400e3, 600e3, 100, nil, 11, false)
	if dbmAt(idle, 500e3, 1e3) < -115 {
		t.Fatalf("clock carrier missing: %.1f dBm", dbmAt(idle, 500e3, 1e3))
	}
	for _, f := range []float64{500e3 - falt, 500e3 + falt} {
		up := dbmAt(mod, f, 3e3) - dbmAt(idle, f, 3e3)
		if up > 6 {
			t.Errorf("unmodulated clock grew a sideband at %.0f kHz: +%.1f dB", f/1e3, up)
		}
	}
}

func TestFMRegulatorSpectrumSmears(t *testing.T) {
	// The constant-on-time regulator's comb must be smeared over tens of
	// kHz (large wander), unlike the sharp AM regulator lines.
	fm := AMDTurionX2Laptop2007().FMCoreRegulator
	s := sweep(t, fm, 300e3, 500e3, 100, nil, 12, false)
	peak := dbmAt(s, 390e3, 50e3)
	// Energy within ±5 kHz of nominal vs ±50 kHz: a sharp line would
	// concentrate; FM smear spreads it.
	narrow := integratedDbm(s, 385e3, 395e3)
	wide := integratedDbm(s, 340e3, 440e3)
	if wide-narrow < 3 {
		t.Errorf("FM regulator not smeared: narrow %.1f wide %.1f dBm", narrow, wide)
	}
	if peak < -135 {
		t.Errorf("FM regulator invisible: %.1f dBm", peak)
	}
}

func TestGroundTruthTable(t *testing.T) {
	sys := IntelCoreI7Desktop()
	scene := sys.Scene(1, false)
	gt := scene.GroundTruth(100e3, 4e6, activity.LDM, activity.LDL1, 0.25)
	modCount, unmodCount := 0, 0
	sawRefresh, sawMemReg, sawCore := false, false, false
	for _, g := range gt {
		if g.Modulated {
			modCount++
		} else {
			unmodCount++
		}
		switch {
		case g.Source == sys.Refresh.Label && g.Modulated:
			sawRefresh = true
		case g.Source == sys.MemRegulator.Label && g.Modulated:
			sawMemReg = true
		case g.Source == sys.CoreRegulator.Label && g.Modulated:
			sawCore = true
		}
	}
	if !sawRefresh || !sawMemReg {
		t.Error("refresh and memory regulator must be modulated by LDM/LDL1")
	}
	if sawCore {
		t.Error("core regulator must NOT be modulated by LDM/LDL1 (equal core load)")
	}
	if unmodCount == 0 {
		t.Error("ground truth must include unmodulated carriers to reject")
	}
	// LDL2/LDL1: only the core regulator is modulated.
	gt2 := scene.GroundTruth(100e3, 4e6, activity.LDL2, activity.LDL1, 0.25)
	for _, g := range gt2 {
		if g.Modulated && g.Source != sys.CoreRegulator.Label {
			t.Errorf("LDL2/LDL1 should only modulate the core regulator, got %q", g.Source)
		}
	}
}

func TestRegistryAndLookup(t *testing.T) {
	reg := Registry()
	if len(reg) != 5 {
		t.Fatalf("registry has %d systems, want 5", len(reg))
	}
	for name, mk := range reg {
		sys := mk()
		if sys.Name == "" || len(sys.Emitters) == 0 {
			t.Errorf("system %q incomplete", name)
		}
		if sys.Refresh == nil || sys.DRAMClock == nil || sys.MemRegulator == nil {
			t.Errorf("system %q missing role handles", name)
		}
	}
	if _, err := Lookup("i7-desktop"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nonexistent"); err == nil {
		t.Error("Lookup of unknown system should fail")
	}
}

func TestTurionRefreshAt132kHz(t *testing.T) {
	sys := AMDTurionX2Laptop2007()
	got := 1 / sys.Refresh.TRefi
	if math.Abs(got-132e3) > 1 {
		t.Errorf("Turion refresh at %.0f Hz, want 132 kHz (§4.4)", got)
	}
	// Other systems use the DDR3 128 kHz interval.
	for _, mk := range []func() *System{IntelCoreI7Desktop, IntelCoreI3Laptop2010, IntelPentium3M2002} {
		s := mk()
		if math.Abs(1/s.Refresh.TRefi-128e3) > 1 {
			t.Errorf("%s refresh at %.0f Hz, want 128 kHz", s.Name, 1/s.Refresh.TRefi)
		}
	}
}

func TestCarrierLists(t *testing.T) {
	sys := IntelCoreI7Desktop()
	cs := sys.MemRegulator.Carriers(0, 1e6)
	want := []float64{315e3, 630e3, 945e3}
	if len(cs) != 3 {
		t.Fatalf("regulator carriers = %v", cs)
	}
	for i, f := range want {
		if cs[i] != f {
			t.Errorf("carrier %d = %g, want %g", i, cs[i], f)
		}
	}
	rs := sys.Refresh.Carriers(0, 1.2e6)
	if len(rs) != 2 || rs[0] != 512e3 || rs[1] != 1024e3 {
		t.Errorf("refresh far-field carriers = %v", rs)
	}
	// SSC clock reports its spread edges.
	es := sys.DRAMClock.Carriers(330e6, 336e6)
	if len(es) != 2 || es[0] != 332e6 || es[1] != 333e6 {
		t.Errorf("SSC carriers = %v", es)
	}
	// Unspread clock reports harmonics directly.
	p3m := IntelPentium3M2002()
	us := p3m.DRAMClock.Carriers(0, 200e6)
	if len(us) != 1 || us[0] != 133e6 {
		t.Errorf("unspread clock carriers = %v", us)
	}
}

func TestRefreshIntervalDitherMitigation(t *testing.T) {
	// The paper's §4.2 mitigation: dithering refresh issue times spreads
	// the comb's energy, collapsing the 512 kHz line.
	plain := IntelCoreI7Desktop().Refresh
	dithered := IntelCoreI7Desktop().Refresh
	dithered.IntervalDither = 0.3
	before := sweep(t, plain, 500e3, 524e3, 100, nil, 55, false)
	after := sweep(t, dithered, 500e3, 524e3, 100, nil, 55, false)
	drop := dbmAt(before, 512e3, 1e3) - dbmAt(after, 512e3, 1e3)
	if drop < 8 {
		t.Errorf("dither reduced the 512 kHz line by only %.1f dB", drop)
	}
}

func TestSystemSceneWithEnvironment(t *testing.T) {
	sys := IntelCoreI7Desktop()
	bare := sys.Scene(1, false)
	full := sys.Scene(1, true)
	if len(full.Components) <= len(bare.Components) {
		t.Error("environment scene should have more components")
	}
}
