package machine

import (
	"fmt"
	"math/rand"

	"fase/internal/activity"
	"fase/internal/emsim"
	"fase/internal/sig"
)

// System is a complete modeled computer: its EM emitters plus handles to
// the components experiments reference by role.
type System struct {
	Name string
	// Emitters in rendering order.
	Emitters []emsim.Component

	// Role handles (may be nil when a system lacks the component).
	MemRegulator    *SwitchingRegulator
	MemCtlRegulator *SwitchingRegulator
	CoreRegulator   *SwitchingRegulator
	FMCoreRegulator *ConstantOnTimeRegulator
	Refresh         *RefreshEmitter
	DRAMClock       *SSCClock
	CPUClock        *SSCClock
}

// Scene assembles a measurement scene: the system's emitters plus,
// optionally, the standard metropolitan RF environment. envSeed controls
// the randomized environment parameters (station modulation depths).
// Without the environment the scene still carries the receive chain's
// thermal noise floor — a noiseless measurement does not exist.
func (s *System) Scene(envSeed int64, withEnvironment bool) *emsim.Scene {
	sc := &emsim.Scene{}
	sc.Add(s.Emitters...)
	if withEnvironment {
		sc.Add(emsim.StandardEnvironment(rand.New(rand.NewSource(envSeed)))...)
	} else {
		sc.Add(&emsim.Background{FloorDBmPerHz: -172})
	}
	return sc
}

// Registry lists the built-in systems by name.
func Registry() map[string]func() *System {
	return map[string]func() *System{
		"i7-desktop":    IntelCoreI7Desktop,
		"i3-laptop":     IntelCoreI3Laptop2010,
		"turion-laptop": AMDTurionX2Laptop2007,
		"p3m-laptop":    IntelPentium3M2002,
		"fivr-desktop":  IntelFIVRDesktop,
	}
}

// Lookup returns the named system or an error listing valid names.
func Lookup(name string) (*System, error) {
	reg := Registry()
	mk, ok := reg[name]
	if !ok {
		names := make([]string, 0, len(reg))
		for k := range reg {
			names = append(names, k)
		}
		return nil, fmt.Errorf("machine: unknown system %q (have %v)", name, names)
	}
	return mk(), nil
}

// IntelCoreI7Desktop models the paper's primary test platform (§4,
// Figures 7–16): a recent desktop with separate switching regulators for
// the DRAM DIMMs (315 kHz), the on-chip memory interface (475 kHz), and
// the CPU cores (332.5 kHz); DDR3 refresh every 7.8125 µs across 4
// staggered ranks (far-field comb at 512 kHz); and a 333 MHz DDR3 clock
// with 1 MHz down-spread SSC.
func IntelCoreI7Desktop() *System {
	memReg := &SwitchingRegulator{
		Label:          "DIMM supply regulator (315 kHz)",
		FSw:            315e3,
		BaseDuty:       0.083, // 1 V from 12 V
		DutySwing:      0.035,
		FundamentalDBm: -104,
		MaxHarmonics:   12,
		WanderSigma:    350,
		WanderTau:      1.2e-3,
		LoopBw:         65e3,
		Dom:            activity.DomainDRAM,
	}
	memCtlReg := &SwitchingRegulator{
		Label:          "memory interface regulator (475 kHz)",
		FSw:            475e3,
		BaseDuty:       0.095,
		DutySwing:      0.030,
		FundamentalDBm: -111,
		MaxHarmonics:   8,
		WanderSigma:    450,
		WanderTau:      1.0e-3,
		LoopBw:         80e3,
		Dom:            activity.DomainMemCtl,
	}
	coreReg := &SwitchingRegulator{
		Label:          "core supply regulator (332.5 kHz)",
		FSw:            332.5e3,
		BaseDuty:       0.083,
		DutySwing:      0.090, // deep duty response: core current swings hardest
		FundamentalDBm: -105,
		MaxHarmonics:   10,
		WanderSigma:    300,
		WanderTau:      0.9e-3,
		LoopBw:         70e3,
		Dom:            activity.DomainCore,
	}
	refresh := &RefreshEmitter{
		Label:           "DDR3 memory refresh (tREFI 7.8125 µs)",
		TRefi:           7.8125e-6, // 128 kHz per rank
		PulseWidth:      200e-9,
		LineDBm:         -124,
		Ranks:           4, // far-field comb at 512 kHz
		NearRankWeights: []float64{1, 0.05, 0.05, 0.05},
		DisruptGain:     0.35,
		JitterIdle:      0.002,
		MaxHarmonics:    7,
		Dom:             activity.DomainDRAM,
	}
	dramClk := &SSCClock{
		Label:          "DDR3 clock (333 MHz, SSC)",
		F0:             333e6,
		SpreadHz:       1e6,
		RateHz:         10e3, // 100 µs sweep period (§4.3)
		Profile:        sig.SineSweep{},
		FundamentalDBm: -98, // strong before SSC spreads it over 1 MHz
		IdleFrac:       0.40,
		MaxHarmonics:   3,
		Dom:            activity.DomainDRAM,
	}
	cpuClk := &SSCClock{
		Label:          "CPU clock (3.4 GHz, SSC)",
		F0:             3.4e9,
		SpreadHz:       17e6,
		RateHz:         33e3,
		Profile:        sig.TriangleSweep{},
		FundamentalDBm: -138,
		IdleFrac:       1, // emissions do not respond to activity (§1)
		MaxHarmonics:   1,
		Dom:            activity.DomainNone,
	}
	sys := &System{
		Name:            "Intel Core i7 desktop",
		MemRegulator:    memReg,
		MemCtlRegulator: memCtlReg,
		CoreRegulator:   coreReg,
		Refresh:         refresh,
		DRAMClock:       dramClk,
		CPUClock:        cpuClk,
	}
	// The PCIe reference clock (campaign 2 territory, 4–120 MHz): spread-
	// spectrum for EMC but not modulated by program activity — FASE's
	// negative control in the VHF range.
	pcieClk := &SSCClock{
		Label:          "PCIe reference clock (100 MHz, SSC)",
		F0:             100e6,
		SpreadHz:       0.5e6,
		RateHz:         32e3,
		Profile:        sig.TriangleSweep{},
		FundamentalDBm: -112,
		IdleFrac:       1,
		MaxHarmonics:   1,
		Dom:            activity.DomainNone,
	}
	sys.Emitters = []emsim.Component{
		memReg, memCtlReg, coreReg, refresh, dramClk, cpuClk, pcieClk,
		// Unmodulated periodic system signals FASE must reject.
		&UnmodulatedClock{Label: "RTC crystal (32.768 kHz)", F0: 32.768e3, FundamentalDBm: -119, MaxHarmonics: 61},
		&UnmodulatedClock{Label: "super-I/O UART clock (1.8432 MHz)", F0: 1.8432e6, FundamentalDBm: -115, MaxHarmonics: 3, WanderSigma: 5, WanderTau: 1e-3},
		&UnmodulatedClock{Label: "neighbouring monitor SMPS (65 kHz)", F0: 65e3, FundamentalDBm: -112, MaxHarmonics: 31, WanderSigma: 120, WanderTau: 2e-3},
		&UnmodulatedClock{Label: "USB SOF keep-alive (12 kHz)", F0: 12e3, FundamentalDBm: -126, MaxHarmonics: 41},
		// Campaign-2 (4-120 MHz) clutter: fixed VHF clocks.
		&UnmodulatedClock{Label: "audio codec master clock (24.576 MHz)", F0: 24.576e6, FundamentalDBm: -116, MaxHarmonics: 5, WanderSigma: 20, WanderTau: 1e-3},
		&UnmodulatedClock{Label: "USB PHY clock (48 MHz)", F0: 48e6, FundamentalDBm: -118, MaxHarmonics: 3, WanderSigma: 50, WanderTau: 1e-3},
	}
	return sys
}

// IntelCoreI3Laptop2010 models the 2010 Intel Core i3 laptop (§4.4):
// the same signal classes at laptop power levels.
func IntelCoreI3Laptop2010() *System {
	memReg := &SwitchingRegulator{
		Label:          "memory regulator (300 kHz)",
		FSw:            300e3,
		BaseDuty:       0.079, // 1.5 V from 19 V
		DutySwing:      0.030,
		FundamentalDBm: -112,
		MaxHarmonics:   10,
		WanderSigma:    400,
		WanderTau:      1.1e-3,
		LoopBw:         60e3,
		Dom:            activity.DomainDRAM,
	}
	coreReg := &SwitchingRegulator{
		Label:          "core regulator (450 kHz)",
		FSw:            450e3,
		BaseDuty:       0.058,
		DutySwing:      0.060,
		FundamentalDBm: -110,
		MaxHarmonics:   8,
		WanderSigma:    500,
		WanderTau:      1.0e-3,
		LoopBw:         85e3,
		Dom:            activity.DomainCore,
	}
	refresh := &RefreshEmitter{
		Label:           "DDR3 memory refresh (tREFI 7.8125 µs)",
		TRefi:           7.8125e-6,
		PulseWidth:      200e-9,
		LineDBm:         -126,
		Ranks:           2,
		NearRankWeights: []float64{1, 0.05},
		DisruptGain:     0.35,
		JitterIdle:      0.002,
		MaxHarmonics:    9,
		Dom:             activity.DomainDRAM,
	}
	dramClk := &SSCClock{
		Label:          "DDR3 clock (533 MHz, SSC)",
		F0:             533e6,
		SpreadHz:       2.6e6,
		RateHz:         31e3,
		Profile:        sig.TriangleSweep{},
		FundamentalDBm: -107,
		IdleFrac:       0.45,
		MaxHarmonics:   1,
		Dom:            activity.DomainDRAM,
	}
	sys := &System{
		Name:          "Intel Core i3 laptop (2010)",
		MemRegulator:  memReg,
		CoreRegulator: coreReg,
		Refresh:       refresh,
		DRAMClock:     dramClk,
	}
	sys.Emitters = []emsim.Component{
		memReg, coreReg, refresh, dramClk,
		&UnmodulatedClock{Label: "RTC crystal (32.768 kHz)", F0: 32.768e3, FundamentalDBm: -124, MaxHarmonics: 41},
		&UnmodulatedClock{Label: "panel backlight PWM (43 kHz)", F0: 43e3, FundamentalDBm: -118, MaxHarmonics: 21, WanderSigma: 80, WanderTau: 2e-3},
	}
	return sys
}

// AMDTurionX2Laptop2007 models the 2007 AMD Turion X2 laptop (§4.4,
// Fig. 17). Distinctive features the paper reports: the memory refresh
// carrier sits at 132 kHz instead of 128 kHz, and the core regulator is a
// constant-on-time (frequency-modulated) design that FASE correctly does
// not report.
func AMDTurionX2Laptop2007() *System {
	memReg := &SwitchingRegulator{
		Label:          "memory regulator (250 kHz)",
		FSw:            250e3,
		BaseDuty:       0.095, // 1.8 V from 19 V
		DutySwing:      0.035,
		FundamentalDBm: -110,
		MaxHarmonics:   10,
		WanderSigma:    380,
		WanderTau:      1.3e-3,
		LoopBw:         55e3,
		Dom:            activity.DomainDRAM,
	}
	// Two more regulators whose loads track memory activity; the paper
	// could not localize them without damaging the compact laptop
	// ("unidentified carriers", Fig. 17).
	unident1 := &SwitchingRegulator{
		Label:          "unidentified regulator A (540 kHz)",
		FSw:            540e3,
		BaseDuty:       0.088,
		DutySwing:      0.035,
		FundamentalDBm: -111,
		MaxHarmonics:   4,
		WanderSigma:    420,
		WanderTau:      1.0e-3,
		LoopBw:         70e3,
		Dom:            activity.DomainMemCtl,
	}
	unident2 := &SwitchingRegulator{
		Label:          "unidentified regulator B (820 kHz)",
		FSw:            820e3,
		BaseDuty:       0.075,
		DutySwing:      0.040,
		FundamentalDBm: -110,
		MaxHarmonics:   2,
		WanderSigma:    350,
		WanderTau:      0.8e-3,
		LoopBw:         90e3,
		Dom:            activity.DomainDRAM,
	}
	fmCore := &ConstantOnTimeRegulator{
		Label:          "core regulator (constant on-time, FM)",
		F0:             390e3,
		FreqSwing:      0.14,
		TOn:            260e-9,
		FundamentalDBm: -109,
		WanderSigma:    35e3, // large wander smears the comb
		WanderTau:      60e-6,
		Dom:            activity.DomainCore,
	}
	refresh := &RefreshEmitter{
		Label:           "DDR2 memory refresh (tREFI 7.576 µs)",
		TRefi:           1 / 132e3, // 132 kHz (§4.4: "at 132 kHz instead of 128 kHz")
		PulseWidth:      200e-9,
		LineDBm:         -122,
		Ranks:           1, // single rank: the comb sits directly at 132 kHz
		NearRankWeights: []float64{1},
		DisruptGain:     0.35,
		JitterIdle:      0.002,
		MaxHarmonics:    8,
		Dom:             activity.DomainDRAM,
	}
	dramClk := &SSCClock{
		Label:          "DDR2 clock (333 MHz, SSC)",
		F0:             333e6,
		SpreadHz:       1.7e6,
		RateHz:         30e3,
		Profile:        sig.TriangleSweep{},
		FundamentalDBm: -106,
		IdleFrac:       0.45,
		MaxHarmonics:   1,
		Dom:            activity.DomainDRAM,
	}
	sys := &System{
		Name:            "AMD Turion X2 laptop (2007)",
		MemRegulator:    memReg,
		FMCoreRegulator: fmCore,
		Refresh:         refresh,
		DRAMClock:       dramClk,
	}
	sys.Emitters = []emsim.Component{
		memReg, unident1, unident2, fmCore, refresh, dramClk,
		&UnmodulatedClock{Label: "RTC crystal (32.768 kHz)", F0: 32.768e3, FundamentalDBm: -125, MaxHarmonics: 31},
		&UnmodulatedClock{Label: "LCD inverter (55 kHz)", F0: 55e3, FundamentalDBm: -116, MaxHarmonics: 19, WanderSigma: 150, WanderTau: 2e-3},
	}
	return sys
}

// IntelFIVRDesktop models the §4.1 forward-looking case the paper
// discusses: a 4th-generation Core with a fully integrated voltage
// regulator (FIVR, Burton et al. [10]) switching at 140 MHz. Integration
// shortens the switching current paths (weaker emanations per ampere),
// but the high switching frequency and fast control loop give attackers
// "a higher bandwidth readout of power consumption" — the core's
// activity can be demodulated at MHz rates instead of tens of kHz.
func IntelFIVRDesktop() *System {
	fivr := &SwitchingRegulator{
		Label:          "integrated core regulator (FIVR, 140 MHz)",
		FSw:            140e6,
		BaseDuty:       0.45, // 1.05 V from 1.8 V input rail
		DutySwing:      0.04, // flat d·sinc(d) region: duty AM is weak here
		AmpSwing:       0.50, // inductor current tracks load: the dominant AM
		FundamentalDBm: -90,  // 140 MHz: short loops but efficient radiators (§4.1: "stronger emanations")
		MaxHarmonics:   2,
		WanderSigma:    25e3, // fast RC oscillator, proportionally larger wander
		WanderTau:      50e-6,
		LoopBw:         3e6, // the high-bandwidth readout (§4.1)
		Dom:            activity.DomainCore,
	}
	memReg := &SwitchingRegulator{
		Label:          "DIMM supply regulator (315 kHz)",
		FSw:            315e3,
		BaseDuty:       0.083,
		DutySwing:      0.035,
		FundamentalDBm: -104,
		MaxHarmonics:   12,
		WanderSigma:    350,
		WanderTau:      1.2e-3,
		LoopBw:         65e3,
		Dom:            activity.DomainDRAM,
	}
	refresh := &RefreshEmitter{
		Label:           "DDR4 memory refresh (tREFI 7.8125 µs)",
		TRefi:           7.8125e-6,
		PulseWidth:      150e-9,
		LineDBm:         -124,
		Ranks:           4,
		NearRankWeights: []float64{1, 0.05, 0.05, 0.05},
		DisruptGain:     0.35,
		JitterIdle:      0.002,
		MaxHarmonics:    7,
		Dom:             activity.DomainDRAM,
	}
	dramClk := &SSCClock{
		Label:          "DDR4 clock (1066 MHz, SSC)",
		F0:             1066e6,
		SpreadHz:       5.3e6,
		RateHz:         31e3,
		Profile:        sig.TriangleSweep{},
		FundamentalDBm: -102,
		IdleFrac:       0.45,
		MaxHarmonics:   1,
		Dom:            activity.DomainDRAM,
	}
	sys := &System{
		Name:          "Intel Core desktop with FIVR (2014)",
		MemRegulator:  memReg,
		CoreRegulator: fivr,
		Refresh:       refresh,
		DRAMClock:     dramClk,
	}
	sys.Emitters = []emsim.Component{
		fivr, memReg, refresh, dramClk,
		&UnmodulatedClock{Label: "RTC crystal (32.768 kHz)", F0: 32.768e3, FundamentalDBm: -119, MaxHarmonics: 61},
		&UnmodulatedClock{Label: "Ethernet PHY clock (125 MHz)", F0: 125e6, FundamentalDBm: -118, MaxHarmonics: 1, WanderSigma: 40, WanderTau: 1e-3},
	}
	return sys
}

// IntelPentium3M2002 models the oldest test system (2002 Pentium 3M
// laptop): a single low-frequency regulator, SDRAM-era refresh, and a
// 133 MHz memory clock without spread-spectrum.
func IntelPentium3M2002() *System {
	memReg := &SwitchingRegulator{
		Label:          "system regulator (200 kHz)",
		FSw:            200e3,
		BaseDuty:       0.13, // 2.5 V from 19 V
		DutySwing:      0.040,
		FundamentalDBm: -108,
		MaxHarmonics:   14,
		WanderSigma:    300,
		WanderTau:      1.5e-3,
		LoopBw:         40e3,
		Dom:            activity.DomainDRAM,
	}
	coreReg := &SwitchingRegulator{
		Label:          "core regulator (280 kHz)",
		FSw:            280e3,
		BaseDuty:       0.10,
		DutySwing:      0.100,
		FundamentalDBm: -106,
		MaxHarmonics:   10,
		WanderSigma:    350,
		WanderTau:      1.2e-3,
		LoopBw:         45e3,
		Dom:            activity.DomainCore,
	}
	refresh := &RefreshEmitter{
		Label:           "SDRAM refresh (tREFI 7.8125 µs)",
		TRefi:           7.8125e-6,
		PulseWidth:      250e-9,
		LineDBm:         -125,
		Ranks:           1, // single rank: far-field comb directly at 128 kHz
		NearRankWeights: []float64{1},
		DisruptGain:     0.30,
		JitterIdle:      0.002,
		MaxHarmonics:    15,
		Dom:             activity.DomainDRAM,
	}
	dramClk := &SSCClock{
		Label:          "SDRAM clock (133 MHz, no SSC)",
		F0:             133e6,
		SpreadHz:       0,
		RateHz:         0,
		Profile:        nil,
		FundamentalDBm: -104,
		IdleFrac:       0.5,
		MaxHarmonics:   1,
		Dom:            activity.DomainDRAM,
	}
	sys := &System{
		Name:          "Intel Pentium 3M laptop (2002)",
		MemRegulator:  memReg,
		CoreRegulator: coreReg,
		Refresh:       refresh,
		DRAMClock:     dramClk,
	}
	sys.Emitters = []emsim.Component{
		memReg, coreReg, refresh, dramClk,
		&UnmodulatedClock{Label: "RTC crystal (32.768 kHz)", F0: 32.768e3, FundamentalDBm: -122, MaxHarmonics: 31},
	}
	return sys
}
