package machine

import (
	"math"
	"math/rand"
	"testing"

	"fase/internal/activity"
	"fase/internal/emsim"
	"fase/internal/microbench"
)

// bitsEqual compares two renders sample for sample at the bit level.
func bitsEqual(t *testing.T, tag string, trial int, got, want []complex128) {
	t.Helper()
	for i := range got {
		if math.Float64bits(real(got[i])) != math.Float64bits(real(want[i])) ||
			math.Float64bits(imag(got[i])) != math.Float64bits(imag(want[i])) {
			t.Fatalf("%s trial %d: sample %d differs: got %v, want %v",
				tag, trial, i, got[i], want[i])
		}
	}
}

// TestStaticLayerRenderEquivalence is the static cache's core property
// test: replaying a capture's cached activity-independent layer must be
// bit-identical to rendering every component live — across randomized
// scenes, with and without a render plan, and (the point of the cache)
// across different activity traces sharing one static set.
func TestStaticLayerRenderEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(1851))
	cached := 0
	for trial := 0; trial < 10; trial++ {
		scene := randomScene(r)
		n := 1 << (9 + r.Intn(3)) // 512..2048
		band := emsim.Band{
			Center:     100e3 + r.Float64()*4e6,
			SampleRate: float64(n) * (50 + r.Float64()*200),
		}
		capt := emsim.Capture{
			Band: band, N: n,
			Start:     r.Float64() * 0.2,
			Seed:      r.Int63(),
			NearField: r.Intn(4) == 0, NearFieldGainDB: 30,
		}
		kinds := []activity.Kind{activity.LDM, activity.LDL1, activity.LDL2}
		traces := []*activity.Trace{nil, microbench.Generate(microbench.Config{
			X: kinds[r.Intn(len(kinds))], Y: kinds[r.Intn(len(kinds))],
			FAlt:   30e3 + r.Float64()*20e3,
			Jitter: microbench.DefaultJitter(), Seed: r.Int63(),
		}, 0.5+float64(n)/band.SampleRate)}

		plan := scene.Plan(band, n)
		for _, withPlan := range []bool{false, true} {
			base := capt
			if withPlan {
				base.Plan = plan
			}
			// One static set serves every capture whose conditional-static
			// key matches — the unconditional layer always does, and the
			// conditional layer only when the window-constant loads agree.
			// Captures keying differently rebuild, mirroring the analyzer's
			// two-level cache.
			sets := map[string]*emsim.StaticSet{}
			for ti, trace := range traces {
				build := base
				build.Activity = trace
				key := string(scene.AppendCondStaticKey(nil, build))
				static, ok := sets[key]
				if !ok {
					static = scene.BuildStaticSet(build)
					sets[key] = static
					if static != nil {
						cached += static.Components()
					}
				}
				if static == nil {
					continue
				}
				live, replayed := build, build
				replayed.Static = static
				want := make([]complex128, n)
				scene.RenderInto(want, live)
				got := make([]complex128, n)
				scene.RenderInto(got, replayed)
				bitsEqual(t, "static replay", trial*100+ti, got, want)
			}
		}
	}
	if cached == 0 {
		t.Fatal("no component was ever cached; the equivalence test is vacuous")
	}
}

// TestStaticClassification pins which emitters may enter the static layer:
// activity-modulated sources must never classify static, while clocks
// whose envelope cannot move always do.
func TestStaticClassification(t *testing.T) {
	band := emsim.Band{Center: 300e3, SampleRate: 600e3}
	if _, ok := emsim.Component(&SwitchingRegulator{FSw: 315e3, MaxHarmonics: 4}).(emsim.StaticRenderer); ok {
		t.Error("SwitchingRegulator must not classify static (activity-modulated)")
	}
	if _, ok := emsim.Component(&RefreshEmitter{}).(emsim.StaticRenderer); ok {
		t.Error("RefreshEmitter must not classify static (activity-disrupted timing)")
	}
	clk := &UnmodulatedClock{F0: 100e3, MaxHarmonics: 5}
	if terms, ok := clk.StaticTerms(band, 512); !ok || terms != 3 {
		t.Errorf("UnmodulatedClock static = (%d, %v), want 3 in-band harmonics, static", terms, ok)
	}
	modulated := &SSCClock{F0: 300e3, MaxHarmonics: 1, IdleFrac: 0.4, Dom: activity.DomainDRAM}
	if _, ok := modulated.StaticTerms(band, 512); ok {
		t.Error("activity-modulated SSCClock must not classify static")
	}
	decoy := &SSCClock{F0: 300e3, MaxHarmonics: 1, IdleFrac: 0.4, Dom: activity.DomainNone}
	if terms, ok := decoy.StaticTerms(band, 512); !ok || terms != 1 {
		t.Errorf("DomainNone SSCClock static = (%d, %v), want (1, true)", terms, ok)
	}
	idle := &SSCClock{F0: 300e3, MaxHarmonics: 1, IdleFrac: 1, Dom: activity.DomainDRAM}
	if terms, ok := idle.StaticTerms(band, 512); !ok || terms != 1 {
		t.Errorf("IdleFrac=1 SSCClock static = (%d, %v), want (1, true)", terms, ok)
	}
}
