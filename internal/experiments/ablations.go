package experiments

import (
	"fmt"
	"math"

	"fase/internal/activity"
	"fase/internal/core"
	"fase/internal/dsp/spectral"
	"fase/internal/emsim"
	"fase/internal/machine"
	"fase/internal/report"
)

func init() {
	register("ablation-nalts", ablationNAlts)
	register("ablation-combine", ablationCombine)
	register("ablation-harmonics", ablationHarmonics)
	register("ablation-fdelta", ablationFDelta)
	register("ablation-averages", ablationAverages)
}

// ablationAverages sweeps the per-spectrum trace averaging (the paper
// averages 4 captures, §3; §6 contrasts FASE's "few spectrum
// measurements" with DPA's thousands): how little observation time does
// a reliable scan need?
func ablationAverages(cfg Config) *report.Output {
	_, r := ablScene(cfg.Seed)
	tbl := report.Table{
		Title:  "Detection quality vs per-spectrum averaging",
		Header: []string{"averages", "observation time", "true detections", "false detections", "weakest true score"},
	}
	for _, av := range []int{1, 2, 4, 8} {
		res := r.Run(core.Campaign{
			F1: ablF1, F2: ablF2, Fres: ablFres,
			FAlt1: 43.3e3, FDelta: 1e3, Averages: av,
			X: activity.LDM, Y: activity.LDL1, Seed: cfg.Seed + 270,
		})
		tp, fp, weakest := detectionStats(r, res, activity.LDM, activity.LDL1)
		obs := float64(av) * 5 / ablFres // averages × 5 f_alt × capture time
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", av),
			fmt.Sprintf("%.0f ms", obs*1e3),
			fmt.Sprintf("%d", tp), fmt.Sprintf("%d", fp), sc1(weakest),
		})
	}
	return &report.Output{
		ID:     "ablation-averages",
		Title:  "Ablation: trace averaging (paper: 4 averages; 'only a few spectrum measurements', §6)",
		Tables: []report.Table{tbl},
		Notes:  []string{"a complete regulator-band scan needs well under a second of observation — versus thousands of captures for DPA (§6)"},
	}
}

// ablationBand is the regulator band used by all ablations.
const (
	ablF1   = 0.25e6
	ablF2   = 0.55e6
	ablFres = 100.0
)

// ablScene is the i7's memory-side emitters plus environment clutter.
func ablScene(seed int64) (*machine.System, *core.Runner) {
	sys := machine.IntelCoreI7Desktop()
	return sys, &core.Runner{Scene: sys.Scene(seed, true)}
}

// detectionStats summarizes a campaign against the modulated ground truth.
func detectionStats(r *core.Runner, res *core.Result, x, y activity.Kind) (tp, fp int, weakest float64) {
	lines := explainableLines(r.Scene, res.Campaign.F1, res.Campaign.F2, x, y)
	weakest = math.Inf(1)
	for _, d := range res.Detections {
		if matchesAny(d.Freq, lines, 2e3) {
			tp++
			if d.Score < weakest {
				weakest = d.Score
			}
		} else {
			fp++
		}
	}
	if math.IsInf(weakest, 1) {
		weakest = 0
	}
	return
}

// ablationNAlts sweeps the number of alternation frequencies (the paper
// uses 5): fewer measurements weaken the product and its artifact
// rejection.
func ablationNAlts(cfg Config) *report.Output {
	_, r := ablScene(cfg.Seed)
	tbl := report.Table{
		Title:  "Detection quality vs number of alternation frequencies N",
		Header: []string{"N", "true detections", "false detections", "weakest true score"},
	}
	for _, n := range []int{2, 3, 5, 7} {
		res := r.Run(core.Campaign{
			F1: ablF1, F2: ablF2, Fres: ablFres,
			FAlt1: 43.3e3, FDelta: 1e3, NumAlts: n,
			X: activity.LDM, Y: activity.LDL1, Seed: cfg.Seed + 230,
		})
		tp, fp, weakest := detectionStats(r, res, activity.LDM, activity.LDL1)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", tp), fmt.Sprintf("%d", fp), sc1(weakest),
		})
	}
	return &report.Output{
		ID:     "ablation-nalts",
		Title:  "Ablation: number of alternation frequencies (paper: 'we use five')",
		Tables: []report.Table{tbl},
		Notes:  []string{"scores grow multiplicatively with N; N=2 offers little margin over artifacts"},
	}
}

// ablationCombine compares the paper's product combination (Eq. 1)
// against summing sub-scores.
func ablationCombine(cfg Config) *report.Output {
	_, r := ablScene(cfg.Seed)
	res := r.Run(core.Campaign{
		F1: ablF1, F2: ablF2, Fres: ablFres,
		FAlt1: 43.3e3, FDelta: 1e3,
		X: activity.LDM, Y: activity.LDL1, Seed: cfg.Seed + 240,
	})
	falts := res.Campaign.FAlts()
	spectra := make([]*spectral.Spectrum, len(res.Measurements))
	for i, m := range res.Measurements {
		spectra[i] = core.SmoothSpectrum(m.Spectrum, res.Campaign.SmoothBins)
	}
	subs := core.SubScores(spectra, falts, 1)
	bins := spectra[0].Bins()
	carrierBin := spectra[0].Index(315e3)
	contrast := func(trace []float64) float64 {
		// Peak-to-background contrast: value at the carrier over the 99th
		// percentile away from known carriers.
		peak := trace[carrierBin]
		var bg []float64
		for k := 0; k < bins; k++ {
			f := spectra[0].Freq(k)
			if math.Abs(f-315e3) > 5e3 && math.Abs(f-332.5e3) > 5e3 &&
				math.Abs(f-475e3) > 5e3 && math.Abs(f-512e3) > 5e3 {
				bg = append(bg, trace[k])
			}
		}
		hi := percentile(bg, 0.999)
		if hi <= 0 {
			return 0
		}
		return peak / hi
	}
	prod := make([]float64, bins)
	sum := make([]float64, bins)
	for k := 0; k < bins; k++ {
		p := 1.0
		s := 0.0
		for i := range subs {
			p *= subs[i][k]
			s += subs[i][k]
		}
		prod[k] = p
		sum[k] = s
	}
	tbl := report.Table{
		Title:  "Combination rule: carrier-to-background contrast at the 315 kHz carrier",
		Header: []string{"rule", "contrast (peak / p99.9 background)"},
		Rows: [][]string{
			{"product (Eq. 1)", fmt.Sprintf("%.1f", contrast(prod))},
			{"sum", fmt.Sprintf("%.1f", contrast(sum))},
		},
	}
	return &report.Output{
		ID:     "ablation-combine",
		Title:  "Ablation: product vs sum combination of sub-scores",
		Tables: []report.Table{tbl},
		Notes:  []string{"the product amplifies agreement across measurements; a sum lets one lucky sub-score dominate"},
	}
}

func percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return 0
	}
	cp := append([]float64(nil), x...)
	// Partial selection is overkill here; simple sort.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	i := int(p * float64(len(cp)-1))
	return cp[i]
}

// ablationHarmonics demonstrates §2.3's redundancy argument: when strong
// interferers bury both first-harmonic side-bands, the higher harmonics
// still detect the carrier.
func ablationHarmonics(cfg Config) *report.Output {
	sys := machine.IntelCoreI7Desktop()
	scene := &emsim.Scene{}
	scene.Add(sys.MemRegulator)
	// Interferers parked exactly on the ±1st-harmonic side-band regions
	// of the 315 kHz carrier (f_alt ≈ 43–47 kHz).
	scene.Add(
		&machine.UnmodulatedClock{Label: "interferer L", F0: 270.2e3, FundamentalDBm: -100, MaxHarmonics: 1},
		&machine.UnmodulatedClock{Label: "interferer R", F0: 360.1e3, FundamentalDBm: -100, MaxHarmonics: 1},
	)
	scene.Add(&emsim.Background{FloorDBmPerHz: -172})
	r := &core.Runner{Scene: scene}
	tbl := report.Table{
		Title:  "Detection of the 315 kHz carrier with buried ±1st side-bands",
		Header: []string{"harmonics used", "carrier detected", "score"},
	}
	for _, hs := range [][]int{{1, -1}, {2, -2, 3, -3}, core.DefaultHarmonics()} {
		res := r.Run(core.Campaign{
			F1: ablF1, F2: ablF2, Fres: ablFres,
			FAlt1: 43.3e3, FDelta: 1e3, Harmonics: hs,
			X: activity.LDM, Y: activity.LDL1, Seed: cfg.Seed + 250,
		})
		found := false
		score := 0.0
		for _, d := range res.Detections {
			if math.Abs(d.Freq-315e3) < 2e3 {
				found = true
				score = d.Score
			}
		}
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprintf("%v", hs), fmt.Sprintf("%v", found), sc1(score)})
	}
	return &report.Output{
		ID:     "ablation-harmonics",
		Title:  "Ablation: harmonic redundancy under side-band obscuration (§2.3)",
		Tables: []report.Table{tbl},
		Notes:  []string{"paper: 'detection of a single harmonic of falt in a single side-band is sufficient to detect a carrier'"},
	}
}

// ablationFDelta sweeps the f_Δ step: too small and side-bands do not
// separate between measurements (the smoothing window and line widths
// overlap); larger steps restore contrast.
func ablationFDelta(cfg Config) *report.Output {
	_, r := ablScene(cfg.Seed)
	tbl := report.Table{
		Title:  "Detection quality vs f_Δ",
		Header: []string{"fΔ (Hz)", "fΔ/fres (bins)", "true detections", "false detections", "weakest true score"},
	}
	for _, fd := range []float64{100, 200, 500, 1000, 2000} {
		res := r.Run(core.Campaign{
			F1: ablF1, F2: ablF2, Fres: ablFres,
			FAlt1: 43.3e3, FDelta: fd,
			X: activity.LDM, Y: activity.LDL1, Seed: cfg.Seed + 260,
		})
		tp, fp, weakest := detectionStats(r, res, activity.LDM, activity.LDL1)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.0f", fd), fmt.Sprintf("%.0f", fd/ablFres),
			fmt.Sprintf("%d", tp), fmt.Sprintf("%d", fp), sc1(weakest),
		})
	}
	return &report.Output{
		ID:     "ablation-fdelta",
		Title:  "Ablation: side-band separation step f_Δ",
		Tables: []report.Table{tbl},
		Notes:  []string{"fΔ must exceed the side-band linewidth (a few bins) for the shift to be resolvable; beyond that the choice is arbitrary (§3)"},
	}
}
