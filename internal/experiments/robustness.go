package experiments

import (
	"fmt"
	"math"

	"fase/internal/activity"
	"fase/internal/attack"
	"fase/internal/core"
	"fase/internal/machine"
	"fase/internal/report"
)

func init() {
	register("pair-robustness", pairRobustness)
	register("carrier-tracking", carrierTracking)
	register("campaign2-sweep", campaign2Sweep)
}

// campaign2Sweep runs a representative slice of Figure 10's second
// campaign (4-120 MHz). The paper reports no activity-modulated carriers
// in this range on the test systems -- the strong signals there (the PCIe
// reference clock, broadcast FM) are not modulated by program activity --
// so the correct result is an empty detection list despite the in-band
// unmodulated SSC clock.
func campaign2Sweep(cfg Config) *report.Output {
	sys := machine.IntelCoreI7Desktop()
	r := &core.Runner{Scene: sys.Scene(cfg.Seed, true)}
	res := r.Run(core.Campaign{
		F1: 90e6, F2: 110e6, Fres: 500,
		FAlt1: 43.3e3, FDelta: 5e3, // Figure 10 row 2 parameters
		X: activity.LDM, Y: activity.LDL1, Seed: cfg.Seed + 370,
	})
	// Confirm the strong unmodulated signals are actually visible in the
	// raw spectrum: the PCIe SSC clock and the FM broadcast band.
	sp := res.Measurements[0].Spectrum
	_, pcie := peakNear(sp, 100e6, 600e3)
	_, fm1 := peakNear(sp, 90.1e6, 200e3)
	_, fm2 := peakNear(sp, 98.5e6, 200e3)
	_, fm3 := peakNear(sp, 103.3e6, 200e3)
	floor := dbmOf(sp.MedianPower())
	tbl := report.Table{
		Title:  "Campaign 2 slice (90-110 MHz, LDM/LDL1)",
		Header: []string{"quantity", "value"},
		Rows: [][]string{
			{"PCIe clock peak (raw spectrum)", fmt.Sprintf("%.1f dBm", pcie)},
			{"FM stations 90.1 / 98.5 / 103.3 MHz", fmt.Sprintf("%.1f / %.1f / %.1f dBm", fm1, fm2, fm3)},
			{"median floor", fmt.Sprintf("%.1f dBm", floor)},
			{"FASE detections", fmt.Sprintf("%d", len(res.Detections))},
		},
	}
	return &report.Output{
		ID:     "campaign2-sweep",
		Title:  "Figure 10 campaign 2 (4-120 MHz): strong but unmodulated VHF signals are rejected",
		Tables: []report.Table{tbl},
		Notes: []string{fmt.Sprintf("the PCIe SSC clock (%.0f dB above the floor) and three broadcast FM stations are all rejected: %v detections (paper reports no carriers in this range)",
			pcie-floor, len(res.Detections))},
	}
}

// pairRobustness reproduces the §3 observation that different X/Y
// pairings involving main-memory accesses "expose the same carriers as
// LDM/LDL1, although they vary in the exact shape and strength of the
// side-band signals".
func pairRobustness(cfg Config) *report.Output {
	sys := machine.IntelCoreI7Desktop()
	r := &core.Runner{Scene: sys.Scene(cfg.Seed, true)}
	pairs := []struct{ x, y activity.Kind }{
		{activity.LDM, activity.LDL1},
		{activity.STM, activity.LDL1},
		{activity.LDM, activity.ADD},
	}
	// The memory-side carriers every pairing must expose.
	targets := []struct {
		name string
		freq float64
	}{
		{"memory regulator", sys.MemRegulator.FSw},
		{"memory interface regulator", sys.MemCtlRegulator.FSw},
		{"refresh comb", 512e3},
	}
	tbl := report.Table{
		Title:  "Memory-side carriers exposed by different X/Y pairings (§3)",
		Header: []string{"pair", "memory regulator", "memory interface regulator", "refresh comb", "total detections"},
	}
	consistent := true
	for i, p := range pairs {
		res := r.Run(core.Campaign{
			F1: 0.25e6, F2: 0.55e6, Fres: 50, FAlt1: 43.3e3, FDelta: 0.5e3,
			X: p.x, Y: p.y, Seed: cfg.Seed + 350 + int64(i),
		})
		row := []string{pairName(p.x, p.y)}
		for _, tgt := range targets {
			found := false
			for _, d := range res.Detections {
				if math.Abs(d.Freq-tgt.freq) < 1.5e3 {
					found = true
				}
			}
			if !found {
				consistent = false
			}
			row = append(row, fmt.Sprintf("%v", found))
		}
		row = append(row, fmt.Sprintf("%d", len(res.Detections)))
		tbl.Rows = append(tbl.Rows, row)
	}
	return &report.Output{
		ID:     "pair-robustness",
		Title:  "§3: alternative activity pairings expose the same carriers",
		Tables: []report.Table{tbl},
		Notes: []string{fmt.Sprintf("all pairings expose all memory-side carriers: %v (paper: 'applying FASE to them exposes the same carriers as LDM/LDL1')",
			consistent)},
	}
}

// carrierTracking quantifies §4.3's warning that spread-spectrum clocking
// only helps "in an averaged sense": a receiver that tracks the swept
// carrier recovers the activity signal a fixed-tune narrowband receiver
// loses.
func carrierTracking(cfg Config) *report.Output {
	sys := machine.IntelCoreI7Desktop()
	scene := sys.Scene(cfg.Seed, false)
	clk := sys.DRAMClock
	bits := make([]byte, 64)
	for i := range bits {
		bits[i] = byte((i * 7) % 2)
	}
	// Bit period shorter than the 100 µs sweep period: a receiver that
	// does not hold the whole sweep sees the carrier only in bursts.
	const tBit = 20e-6
	// Fixed narrowband receiver parked mid-spread: the sweep carries the
	// carrier out of its passband most of the time.
	narrow := &attack.Receiver{Carrier: clk.F0 - clk.SpreadHz/2, Bandwidth: 100e3}
	lkNarrow := attack.Quantify(narrow, scene, bits, activity.LDM, activity.LDL1, tBit, cfg.Seed+360)
	// Tracking receiver: wide enough to always contain the swept carrier
	// (envelope detection over the whole spread recovers the AM).
	wide := &attack.Receiver{Carrier: clk.F0 - clk.SpreadHz/2, Bandwidth: 2.5 * clk.SpreadHz}
	lkWide := attack.Quantify(wide, scene, bits, activity.LDM, activity.LDL1, tBit, cfg.Seed+361)
	tbl := report.Table{
		Title:  "Recovering DRAM activity through the spread-spectrum clock",
		Header: []string{"receiver", "bandwidth", "BER", "bits/symbol"},
		Rows: [][]string{
			{"fixed narrowband (mid-spread)", "100 kHz", fmt.Sprintf("%.3f", lkNarrow.BER), fmt.Sprintf("%.2f", lkNarrow.BitsPerSymbol)},
			{"full-spread (tracking-equivalent)", fmt.Sprintf("%.1f MHz", 2.5*clk.SpreadHz/1e6), fmt.Sprintf("%.3f", lkWide.BER), fmt.Sprintf("%.2f", lkWide.BitsPerSymbol)},
		},
	}
	return &report.Output{
		ID:     "carrier-tracking",
		Title:  "§4.3: spread-spectrum clocking does not mitigate leakage against a tracking receiver",
		Tables: []report.Table{tbl},
		Notes: []string{
			fmt.Sprintf("the sweep starves the fixed narrowband receiver (BER %.2f); covering the full spread recovers the signal (BER %.2f)", lkNarrow.BER, lkWide.BER),
			"paper: 'attackers can still track the carrier and use the full power of the signal after demodulation'",
		},
	}
}
