package experiments

import (
	"fmt"
	"math"

	"fase/internal/activity"
	"fase/internal/baseline"
	"fase/internal/core"
	"fase/internal/dsp/demod"
	"fase/internal/emsim"
	"fase/internal/machine"
	"fase/internal/microbench"
	"fase/internal/report"
	"fase/internal/specan"
)

func init() {
	register("fig17", fig17)
	register("refresh-inverse", refreshInverse)
	register("fm-rejection", fmRejection)
	register("nearfield-gcd", nearfieldGCD)
	register("validation", validation)
	register("baseline-comparison", baselineComparison)
}

// fig17: FASE on the AMD Turion X2 laptop with LDM/LDL1 activity —
// memory regulator, 132 kHz refresh, two unidentified regulators; the
// FM-modulated core regulator must not appear.
func fig17(cfg Config) *report.Output {
	sys := machine.AMDTurionX2Laptop2007()
	r := &core.Runner{Scene: sys.Scene(cfg.Seed, true)}
	res := r.Run(core.Campaign{
		F1: 0.1e6, F2: 1.1e6, Fres: 50, FAlt1: 43.3e3, FDelta: 0.5e3,
		X: activity.LDM, Y: activity.LDL1, Seed: cfg.Seed + 170,
	})
	out := &report.Output{
		ID:     "fig17",
		Title:  "FASE results for the AMD Turion X2 laptop, LDM/LDL1 modulating activity",
		Tables: []report.Table{campaignTable(sys, r, res), groupTable(res)},
	}
	found := func(f float64) bool {
		for _, d := range res.Detections {
			if math.Abs(d.Freq-f) < 1.5e3 {
				return true
			}
		}
		return false
	}
	out.Notes = append(out.Notes,
		fmt.Sprintf("refresh carrier at 132 kHz (not 128 kHz as on the other systems): %v", found(132e3)),
		fmt.Sprintf("memory regulator (250 kHz): %v; unidentified A (540 kHz): %v; unidentified B (820 kHz): %v",
			found(250e3), found(540e3), found(820e3)),
		fmt.Sprintf("FM core regulator (390 kHz) reported: %v (paper: FASE correctly does not report it)", found(sys.FMCoreRegulator.F0)))
	return out
}

// refreshInverse reproduces §4.2's counterintuitive observation: the
// refresh carrier is strongest when memory is idle and weakens as memory
// activity increases.
func refreshInverse(cfg Config) *report.Output {
	sys := machine.IntelCoreI7Desktop()
	r := &core.Runner{Scene: sys.Scene(cfg.Seed, false)}
	fLine := float64(sys.Refresh.Ranks) / sys.Refresh.TRefi // 512 kHz
	levels := []float64{0, 0.25, 0.5, 0.75, 1.0}
	series := report.Series{Name: "512 kHz refresh line vs DRAM activity"}
	tbl := report.Table{
		Title:  "Refresh line power vs continuous memory activity",
		Header: []string{"DRAM load", "512 kHz line dBm"},
	}
	var floor float64
	for i, lv := range levels {
		tr := activity.NewConstant(activity.Load{Core: 0.5, MemCtl: 0.9 * lv, DRAM: lv})
		s := sweep(r.Scene, fLine-30e3, fLine+30e3, 100, tr, cfg.Seed+180+int64(i))
		_, p := peakNear(s, fLine, 2e3)
		floor = dbmOf(s.MedianPower())
		series.X = append(series.X, lv)
		series.Y = append(series.Y, p)
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprintf("%.2f", lv), db1(p)})
	}
	drop := series.Y[0] - series.Y[len(series.Y)-1]
	// Monotone up to noise: once the line sinks into the floor, readings
	// are floor noise and only need to stay there (±3 dB).
	monotone := true
	for i := 1; i < len(series.Y); i++ {
		prev := math.Max(series.Y[i-1], floor+3)
		if series.Y[i] > prev+3 {
			monotone = false
		}
	}
	return &report.Output{
		ID:     "refresh-inverse",
		Title:  "§4.2: refresh carrier weakens as memory activity increases",
		Series: []report.Series{series},
		Tables: []report.Table{tbl},
		Notes: []string{fmt.Sprintf("idle→full-load drop %.1f dB, monotone: %v (paper: 'strongest when there is no memory activity and weakest when we generate continuous memory activity')",
			drop, monotone)},
	}
}

// fmRejection reproduces §4.4: the constant-on-time (frequency-modulated)
// core regulator is not reported by FASE, and a spectrogram confirms the
// modulation is FM.
func fmRejection(cfg Config) *report.Output {
	sys := machine.AMDTurionX2Laptop2007()
	r := &core.Runner{Scene: sys.Scene(cfg.Seed, false)}
	f0 := sys.FMCoreRegulator.F0
	// FASE campaign with on-chip alternation (the FM source is the core
	// domain) across the regulator's band.
	res := r.Run(core.Campaign{
		F1: f0 - 90e3, F2: f0 + 90e3, Fres: 50, FAlt1: 43.3e3, FDelta: 0.5e3,
		X: activity.LDL2, Y: activity.LDL1, Seed: cfg.Seed + 190,
	})
	reported := false
	for _, d := range res.Detections {
		if math.Abs(d.Freq-f0) < 50e3 {
			reported = true
		}
	}
	// Spectrogram/discriminator confirmation of FM ("we confirmed this
	// with a spectrogram of the modulation"): capture the regulator at
	// baseband under a slow core-load alternation and compare the mean
	// instantaneous frequency of the X and Y halves.
	stats := confirmFM(r.Scene, f0, cfg.Seed+191)
	return &report.Output{
		ID:    "fm-rejection",
		Title: "§4.4: frequency-modulated regulator is correctly not reported; spectrogram confirms FM",
		Notes: []string{
			fmt.Sprintf("FASE detections near %.0f kHz: %v (want none — the signal is FM, not AM)", f0/1e3, reported),
			stats,
		},
	}
}

// confirmFM measures the frequency shift of the strongest in-band signal
// between the two halves of a slow alternation — positive for an
// FM-modulated regulator, ~zero for AM.
func confirmFM(scene *emsim.Scene, f0 float64, seed int64) string {
	const (
		// Narrow capture: keep other emitters (stronger regulators,
		// refresh lines) out of band so the discriminator sees only the
		// FM regulator.
		fs   = 160e3
		falt = 500.0 // slow alternation so each half is long
		n    = 1 << 16
	)
	tr := microbench.Generate(microbench.Config{
		X: activity.LDL2, Y: activity.LDL1, FAlt: falt,
		Jitter: microbench.NoJitter(), Seed: seed,
	}, float64(n)/fs+0.01)
	x := scene.Render(emsim.Capture{
		Band: emsim.Band{Center: f0, SampleRate: fs}, N: n,
		Activity: tr, Seed: seed,
	})
	freq := demod.InstFreq(x, fs)
	// Average the discriminator output per alternation half.
	var sumX, sumY float64
	var nX, nY int
	cur := tr.Cursor()
	for i, f := range freq {
		t := float64(i) / fs
		if cur.At(t).Core > 0.6 { // LDL2 half
			sumX += f
			nX++
		} else {
			sumY += f
			nY++
		}
	}
	shift := sumX/float64(nX) - sumY/float64(nY)
	return fmt.Sprintf("mean instantaneous frequency shift between LDL2 and LDL1 halves: %.1f kHz (FM confirmed if ≫ 0)", shift/1e3)
}

// nearfieldGCD reproduces the §4.2 localization discovery: far-field
// measurements show a 512 kHz comb, but near-field probes at the DIMMs
// reveal harmonics with a greatest common divisor of 128 kHz.
func nearfieldGCD(cfg Config) *report.Output {
	sys := machine.IntelCoreI7Desktop()
	scene := sys.Scene(cfg.Seed, false)
	far := sweep(scene, 0.1e6, 1.1e6, 100, nil, cfg.Seed+200)
	nearAn := specan.New(specan.Config{Fres: 100})
	near := nearAn.Sweep(specan.Request{
		Scene: scene, F1: 0.1e6, F2: 1.1e6, Seed: cfg.Seed + 201,
		NearField: true, NearFieldGainDB: 30,
	})
	fine := 1 / sys.Refresh.TRefi
	tbl := report.Table{
		Title:  "Refresh comb lines, far field vs near field",
		Header: []string{"line kHz", "far-field dBm", "near-field dBm"},
	}
	var farLines, nearLines []float64
	floorFar := dbmOf(far.MedianPower())
	floorNear := dbmOf(near.MedianPower())
	for n := 1; float64(n)*fine <= 1.05e6; n++ {
		f := float64(n) * fine
		_, pf := peakNear(far, f, 1e3)
		_, pn := peakNear(near, f, 1e3)
		tbl.Rows = append(tbl.Rows, []string{khz(f), db1(pf), db1(pn)})
		if pf > floorFar+10 {
			farLines = append(farLines, f)
		}
		if pn > floorNear+10 {
			nearLines = append(nearLines, f)
		}
	}
	return &report.Output{
		ID:     "nearfield-gcd",
		Title:  "§4.2: near-field probing reveals the 128 kHz refresh grid behind the 512 kHz far-field comb",
		Tables: []report.Table{tbl},
		Notes: []string{
			fmt.Sprintf("far-field visible lines GCD %.0f kHz; near-field visible lines GCD %.0f kHz (paper: 512 kHz vs 128 kHz)",
				gcdOf(farLines)/1e3, gcdOf(nearLines)/1e3),
		},
	}
}

func dbmOf(mw float64) float64 {
	if mw <= 0 {
		return -300
	}
	return 10 * math.Log10(mw)
}

// gcdOf estimates the greatest common divisor of a set of frequencies.
func gcdOf(fs []float64) float64 {
	if len(fs) == 0 {
		return 0
	}
	g := fs[0]
	for _, f := range fs[1:] {
		g = floatGCD(g, f)
	}
	return g
}

func floatGCD(a, b float64) float64 {
	for b > 1e3 {
		a, b = b, math.Mod(a, b)
	}
	return a
}

// validation reproduces the §1/§3 headline claim across all four systems:
// FASE finds every modulated emitter and rejects every unmodulated or
// merely-FM signal, AM stations included.
func validation(cfg Config) *report.Output {
	tbl := report.Table{
		Title:  "Ground-truth validation: FASE across systems and activity pairs",
		Header: []string{"system", "pair", "detections", "explained", "unexplained (FP)", "modulated emitters", "found (recall)"},
	}
	out := &report.Output{
		ID:    "validation",
		Title: "FASE validation against simulator ground truth",
	}
	type pairT struct{ x, y activity.Kind }
	pairs := []pairT{{activity.LDM, activity.LDL1}, {activity.LDL2, activity.LDL1}}
	allClean := true
	for _, name := range []string{"i7-desktop", "i3-laptop", "turion-laptop", "p3m-laptop", "fivr-desktop"} {
		sys, err := machine.Lookup(name)
		if err != nil {
			panic(err)
		}
		scene := sys.Scene(cfg.Seed, true)
		r := &core.Runner{Scene: scene}
		for _, p := range pairs {
			f1, f2 := 0.1e6, 2e6
			res := r.Run(core.Campaign{
				F1: f1, F2: f2, Fres: 50, FAlt1: 43.3e3, FDelta: 0.5e3,
				X: p.x, Y: p.y, Seed: cfg.Seed + 210,
			})
			lines := explainableLines(scene, f1, f2, p.x, p.y)
			explained, fp := 0, 0
			for _, d := range res.Detections {
				if matchesAny(d.Freq, lines, 2e3) {
					explained++
				} else {
					fp++
				}
			}
			heads := headlineCarriers(scene, f1, f2, p.x, p.y)
			foundCount := 0
			for _, lines := range heads {
				found := false
				for _, f := range lines {
					for _, d := range res.Detections {
						if math.Abs(d.Freq-f) < 2e3 {
							found = true
							break
						}
					}
					if found {
						break
					}
				}
				if found {
					foundCount++
				}
			}
			if fp > 0 || foundCount < len(heads) {
				allClean = false
			}
			tbl.Rows = append(tbl.Rows, []string{
				name, pairName(p.x, p.y),
				fmt.Sprintf("%d", len(res.Detections)),
				fmt.Sprintf("%d", explained),
				fmt.Sprintf("%d", fp),
				fmt.Sprintf("%d", len(heads)),
				fmt.Sprintf("%d", foundCount),
			})
		}
	}
	out.Tables = append(out.Tables, tbl)
	out.Notes = append(out.Notes,
		fmt.Sprintf("all systems clean (zero unexplained detections, full headline recall): %v", allClean),
		"paper: 'FASE successfully rejected all such signals, while reporting the small number of remaining signals that were indeed modulated'")
	return out
}

func pairName(x, y activity.Kind) string { return x.String() + "/" + y.String() }

// baselineComparison quantifies §2.3's argument: the single-spectrum
// symmetric-side-band heuristic and a generic AM classifier against FASE
// on the same i7 measurement.
func baselineComparison(cfg Config) *report.Output {
	_, r := i7Scene(cfg.Seed)
	f1, f2 := 0.1e6, 2e6
	x, y := activity.LDM, activity.LDL1
	res := r.Run(core.Campaign{
		F1: f1, F2: f2, Fres: 50, FAlt1: 43.3e3, FDelta: 0.5e3,
		X: x, Y: y, Seed: cfg.Seed + 220,
	})
	lines := explainableLines(r.Scene, f1, f2, x, y)
	evaluate := func(freqs []float64) (tp, fp int) {
		for _, f := range freqs {
			if matchesAny(f, lines, 2.5e3) {
				tp++
			} else {
				fp++
			}
		}
		return
	}
	// FASE.
	var faseFreqs []float64
	for _, d := range res.Detections {
		faseFreqs = append(faseFreqs, d.Freq)
	}
	faseTP, faseFP := evaluate(faseFreqs)
	// Symmetric side-band baseline on the first measurement.
	sp := res.Measurements[0].Spectrum
	var symFreqs []float64
	for _, c := range baseline.SymmetricSideband(sp, baseline.SymmetricConfig{FAlt: res.Measurements[0].FAlt}) {
		symFreqs = append(symFreqs, c.Freq)
	}
	symTP, symFP := evaluate(symFreqs)
	// Generic AM classifier on the same spectrum.
	var amcFreqs []float64
	for _, c := range baseline.AMClassifier(sp, baseline.AMCConfig{}) {
		amcFreqs = append(amcFreqs, c.Freq)
	}
	amcTP, amcFP := evaluate(amcFreqs)
	// How many AM stations did the AMC flag? (All of them are FPs for the
	// side-channel task.)
	stationFPs := 0
	for _, f := range amcFreqs {
		if f >= 540e3 && f <= 1600e3 && !matchesAny(f, lines, 2.5e3) {
			stationFPs++
		}
	}
	tbl := report.Table{
		Title:  "Detector comparison on the i7 LDM/LDL1 measurement (0.1–2 MHz)",
		Header: []string{"detector", "reports", "true (modulated emitter)", "false"},
	}
	tbl.Rows = append(tbl.Rows,
		[]string{"FASE (5 f_alt)", fmt.Sprintf("%d", len(faseFreqs)), fmt.Sprintf("%d", faseTP), fmt.Sprintf("%d", faseFP)},
		[]string{"symmetric side-band (1 spectrum)", fmt.Sprintf("%d", len(symFreqs)), fmt.Sprintf("%d", symTP), fmt.Sprintf("%d", symFP)},
		[]string{"generic AM classifier", fmt.Sprintf("%d", len(amcFreqs)), fmt.Sprintf("%d", amcTP), fmt.Sprintf("%d", amcFP)},
	)
	return &report.Output{
		ID:     "baseline-comparison",
		Title:  "FASE vs the §2.3 naive detector and a generic AM classifier",
		Tables: []report.Table{tbl},
		Notes: []string{
			fmt.Sprintf("AM classifier flagged %d broadcast stations — §2.3/§5: such detectors 'would also report radio stations and other modulated signals'", stationFPs),
			fmt.Sprintf("FASE: %d/%d true; baselines admit false positives and/or miss carriers", faseTP, len(faseFreqs)),
		},
	}
}
