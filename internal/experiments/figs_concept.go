package experiments

import (
	"fmt"
	"math"
	"sort"

	"fase/internal/activity"
	"fase/internal/dsp/spectral"
	"fase/internal/emsim"
	"fase/internal/microbench"
	"fase/internal/report"
	"fase/internal/sig"
)

// amCarrier is the didactic emitter used by Figures 1–5: a carrier with a
// configurable envelope (the modulating signal) and optional RC-oscillator
// frequency wander (the "non-ideal carrier").
type amCarrier struct {
	freq        float64
	powerDBm    float64
	depth       float64
	wanderSigma float64
	wanderTau   float64
	// modulate returns the modulating signal in [-1, 1]; nil means an
	// unmodulated carrier. The activity cursor gives access to program
	// activity for "arbitrary signal" modulation.
	modulate func(t float64, cur *activity.Cursor) float64
}

func (c *amCarrier) Name() string { return "conceptual carrier" }

// BandExtent implements emsim.Extenter: a line at the carrier, matching
// Render's gate, so planned sweeps skip the component for bands that
// cannot see it.
func (c *amCarrier) BandExtent() emsim.Extent { return emsim.Lines(c.freq) }

func (c *amCarrier) Render(dst []complex128, ctx *emsim.Context) {
	if !ctx.Band.Contains(c.freq) {
		return
	}
	r := ctx.Rand
	dt := ctx.Dt()
	a0 := math.Sqrt(spectral.MwFromDBm(c.powerDBm))
	osc := sig.Oscillator{F0: c.freq, Wander: sig.OU{Sigma: c.wanderSigma, Tau: c.wanderTau}}
	osc.Start(r)
	cur := ctx.Loads()
	for i := range dst {
		t := ctx.Start + float64(i)*dt
		env := a0
		if c.modulate != nil {
			env *= 1 + c.depth*c.modulate(t, cur)
		}
		s, cs := math.Sincos(osc.Phase())
		dst[i] += complex(env*cs, env*s)
		osc.Step(dt, ctx.Band.Center, r)
	}
}

const (
	conceptFc   = 1e6    // carrier at 1 MHz
	conceptFalt = 43.3e3 // alternation frequency
	conceptF1   = 0.85e6 // plot range
	conceptF2   = 1.15e6
	conceptFres = 100.0
)

// conceptActivity builds the "arbitrary signal" modulation: the Figure 6
// alternation loop with realistic timing jitter, viewed as a ±1 square
// wave derived from the DRAM load.
func conceptActivity(seed int64) *activity.Trace {
	return microbench.Generate(microbench.Config{
		X: activity.LDM, Y: activity.LDL1, FAlt: conceptFalt,
		Jitter: microbench.DefaultJitter(), Seed: seed,
	}, 1.0)
}

func loadAsSignal(t float64, cur *activity.Cursor) float64 {
	// Map DRAM load (≈1 during X, ≈0 during Y) to a ±1 modulating signal.
	return 2*cur.At(t).DRAM - 1
}

func init() {
	register("fig01", fig01)
	register("fig02", fig02)
	register("fig03", fig03)
	register("fig04", fig04)
	register("fig05", fig05)
	register("fig06", fig06)
}

// fig01: sinusoidal carrier modulated by a sinusoidal signal — carrier
// plus two clean side-bands at fc ± falt.
func fig01(cfg Config) *report.Output {
	scene := &emsim.Scene{}
	scene.Add(&amCarrier{
		freq: conceptFc, powerDBm: -90, depth: 0.5,
		modulate: func(t float64, _ *activity.Cursor) float64 {
			return math.Sin(2 * math.Pi * conceptFalt * t)
		},
	})
	scene.Add(&emsim.Background{FloorDBmPerHz: -175})
	s := sweep(scene, conceptF1, conceptF2, conceptFres, nil, cfg.Seed+1)
	out := &report.Output{
		ID:     "fig01",
		Title:  "Sinusoidal carrier modulated by a sinusoidal signal",
		Series: []report.Series{dbmSeries("spectrum", s)},
	}
	_, c := peakNear(s, conceptFc, 500)
	lf, l := peakNear(s, conceptFc-conceptFalt, 500)
	rf, rr := peakNear(s, conceptFc+conceptFalt, 500)
	out.Notes = append(out.Notes,
		fmt.Sprintf("carrier %.1f dBm; side-bands at %.1f kHz (%.1f dBm) and %.1f kHz (%.1f dBm), offsets ±falt",
			c, lf/1e3, l, rf/1e3, rr))
	return out
}

// fig02: sinusoidal carrier modulated by an arbitrary signal — side-bands
// mirror the modulating activity's multi-modal spectrum ("bumps").
func fig02(cfg Config) *report.Output {
	scene := &emsim.Scene{}
	scene.Add(&amCarrier{freq: conceptFc, powerDBm: -90, depth: 0.5, modulate: loadAsSignal})
	scene.Add(&emsim.Background{FloorDBmPerHz: -175})
	s := sweep(scene, conceptF1, conceptF2, conceptFres, conceptActivity(cfg.Seed+2), cfg.Seed+2)
	out := &report.Output{
		ID:     "fig02",
		Title:  "Sinusoidal carrier modulated by an arbitrary (program-activity) signal",
		Series: []report.Series{dbmSeries("spectrum", s)},
	}
	// The side-band contains the alternation fundamental plus odd
	// harmonics and jitter bumps.
	_, sb1 := peakNear(s, conceptFc+conceptFalt, 2e3)
	_, sb3 := peakNear(s, conceptFc+3*conceptFalt, 2e3)
	out.Notes = append(out.Notes,
		fmt.Sprintf("right side-band: fundamental %.1f dBm, 3rd alternation harmonic %.1f dBm (square-wave activity)", sb1, sb3))
	return out
}

// fig03: non-ideal carrier modulated by a sinusoid — spreading of the
// carrier is inherited by both side-bands.
func fig03(cfg Config) *report.Output {
	scene := &emsim.Scene{}
	scene.Add(&amCarrier{
		freq: conceptFc, powerDBm: -90, depth: 0.5,
		wanderSigma: 400, wanderTau: 1e-3,
		modulate: func(t float64, _ *activity.Cursor) float64 {
			return math.Sin(2 * math.Pi * conceptFalt * t)
		},
	})
	scene.Add(&emsim.Background{FloorDBmPerHz: -175})
	s := sweep(scene, conceptF1, conceptF2, conceptFres, nil, cfg.Seed+3)
	out := &report.Output{
		ID:     "fig03",
		Title:  "Non-ideal (RC-oscillator) carrier modulated by a sinusoidal signal",
		Series: []report.Series{dbmSeries("spectrum", s)},
	}
	// Spreading: compare peak bin to power integrated over ±2 kHz.
	_, pk := peakNear(s, conceptFc, 2e3)
	var tot float64
	for _, p := range s.Slice(conceptFc-2e3, conceptFc+2e3).PmW {
		tot += p
	}
	out.Notes = append(out.Notes,
		fmt.Sprintf("carrier spread: peak bin %.1f dBm vs ±2 kHz integral %.1f dBm (energy spread by jitter)",
			pk, spectral.DBmFromMw(tot)))
	return out
}

// fig04: non-ideal carrier, arbitrary modulating signal.
func fig04(cfg Config) *report.Output {
	scene := &emsim.Scene{}
	scene.Add(&amCarrier{
		freq: conceptFc, powerDBm: -90, depth: 0.5,
		wanderSigma: 400, wanderTau: 1e-3,
		modulate: loadAsSignal,
	})
	scene.Add(&emsim.Background{FloorDBmPerHz: -175})
	s := sweep(scene, conceptF1, conceptF2, conceptFres, conceptActivity(cfg.Seed+4), cfg.Seed+4)
	return &report.Output{
		ID:     "fig04",
		Title:  "Non-ideal carrier modulated by an arbitrary signal",
		Series: []report.Series{dbmSeries("spectrum", s)},
		Notes:  []string{"side-bands inherit both the carrier spread and the activity spectrum (convolution)"},
	}
}

// fig05: Figure 4 plus noise and unrelated signals — why "eyeballing" the
// spectrum fails and FASE is needed.
func fig05(cfg Config) *report.Output {
	scene := &emsim.Scene{}
	scene.Add(&amCarrier{
		freq: conceptFc, powerDBm: -112, depth: 0.5,
		wanderSigma: 400, wanderTau: 1e-3,
		modulate: loadAsSignal,
	})
	// Unrelated periodic signals and the metropolitan AM band.
	scene.Add(&emsim.AMStation{Call: "WDUN", Freq: 1010e3, PowerMw: spectral.MwFromDBm(-99), Depth: 0.6, AudioSeed: cfg.Seed + 50})
	scene.Add(&emsim.AMStation{Call: "WQXI", Freq: 0.92e6, PowerMw: spectral.MwFromDBm(-95), Depth: 0.5, AudioSeed: cfg.Seed + 51})
	scene.Add(&emsim.Background{
		FloorDBmPerHz: -172,
		Hills:         []emsim.Hill{{Center: 0.95e6, Width: 200e3, GainDB: 7}},
	})
	s := sweep(scene, conceptF1, conceptF2, conceptFres, conceptActivity(cfg.Seed+5), cfg.Seed+5)
	out := &report.Output{
		ID:     "fig05",
		Title:  "Non-ideal modulated carrier with noise and unrelated signals present",
		Series: []report.Series{dbmSeries("spectrum", s)},
	}
	_, station := peakNear(s, 1010e3, 1e3)
	_, carrier := peakNear(s, conceptFc, 2e3)
	out.Notes = append(out.Notes,
		fmt.Sprintf("unrelated AM station reads %.1f dBm vs the modulated carrier's %.1f dBm: visual identification is impractical", station, carrier))
	return out
}

// fig06: the alternation micro-benchmark itself (the paper's pseudo-code)
// demonstrated as an executable model: achieved alternation frequency,
// duty cycle, and the multi-modal distribution of half-period durations.
func fig06(cfg Config) *report.Output {
	target := conceptFalt
	tr := microbench.Generate(microbench.Config{
		X: activity.LDM, Y: activity.LDL1, FAlt: target,
		Jitter: microbench.DefaultJitter(), Seed: cfg.Seed + 6,
	}, 1.0)
	// Half-period duration histogram (multi-modal per §2.1).
	durs := map[string]int{}
	var total float64
	n := 0
	for i := 1; i < len(tr.Segments); i++ {
		d := tr.Segments[i].Start - tr.Segments[i-1].Start
		total += d
		n++
		key := fmt.Sprintf("%.1f µs", math.Round(d*1e7)/10)
		durs[key]++
	}
	achieved := float64(n) / 2 / total
	tbl := report.Table{
		Title:  "Half-period duration distribution (Figure 6 loop with contention jitter)",
		Header: []string{"duration", "count"},
	}
	keys := make([]string, 0, len(durs))
	for k := range durs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		tbl.Rows = append(tbl.Rows, []string{k, fmt.Sprintf("%d", durs[k])})
	}
	return &report.Output{
		ID:     "fig06",
		Title:  "X/Y alternation micro-benchmark (executable model of the paper's pseudo-code)",
		Tables: []report.Table{tbl},
		Notes: []string{fmt.Sprintf("target f_alt %.1f kHz, achieved %.2f kHz over %d half-periods, %d distinct duration modes",
			target/1e3, achieved/1e3, n, len(durs))},
	}
}
