// Package experiments regenerates every figure and table of the paper's
// evaluation, plus the validation and ablation studies DESIGN.md calls
// out. Each experiment is a pure function of a seed, returning a
// report.Output with data series (figure reproductions), tables, and
// paper-vs-measured notes. The benchmark harness (bench_test.go) and
// cmd/experiments both drive this registry.
package experiments

import (
	"fmt"
	"math"
	"sort"

	"fase/internal/activity"
	"fase/internal/dsp/spectral"
	"fase/internal/emsim"
	"fase/internal/machine"
	"fase/internal/report"
	"fase/internal/specan"
)

// Config parameterizes an experiment run.
type Config struct {
	// Seed drives all randomness; equal seeds reproduce results exactly.
	Seed int64
}

// Func is one experiment.
type Func func(cfg Config) *report.Output

// entry pairs an experiment with its registry order.
type entry struct {
	id string
	fn Func
}

var registry []entry

func register(id string, fn Func) {
	for _, e := range registry {
		if e.id == id {
			panic("experiments: duplicate id " + id)
		}
	}
	registry = append(registry, entry{id: id, fn: fn})
}

// IDs lists experiment identifiers in registry (paper) order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Run executes one experiment by id.
func Run(id string, cfg Config) (*report.Output, error) {
	for _, e := range registry {
		if e.id == id {
			return e.fn(cfg), nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
}

// MustRun executes one experiment, panicking on unknown ids.
func MustRun(id string, cfg Config) *report.Output {
	out, err := Run(id, cfg)
	if err != nil {
		panic(err)
	}
	return out
}

// ---- shared helpers ----

// dbmSeries converts a spectrum into a plot series in dBm.
func dbmSeries(name string, s *spectral.Spectrum) report.Series {
	out := report.Series{Name: name, X: make([]float64, s.Bins()), Y: make([]float64, s.Bins())}
	for i := range out.X {
		out.X[i] = s.Freq(i)
		out.Y[i] = s.DBm(i)
	}
	return out
}

// sweep is a one-line spectrum measurement.
func sweep(scene *emsim.Scene, f1, f2, fres float64, act *activity.Trace, seed int64) *spectral.Spectrum {
	an := specan.New(specan.Config{Fres: fres})
	return an.Sweep(specan.Request{Scene: scene, F1: f1, F2: f2, Activity: act, Seed: seed})
}

// peakNear returns the max dBm within ±half of f.
func peakNear(s *spectral.Spectrum, f, half float64) (float64, float64) {
	i := s.MaxIn(f-half, f+half)
	if i < 0 {
		return f, -300
	}
	return s.Freq(i), s.DBm(i)
}

// explainableLines returns every line frequency in [f1, f2] belonging to
// emitters that the X/Y pair AM-modulates — the set a correct detection
// must fall into. Refresh emitters contribute their fine per-rank grid
// (multiples of 1/tREFI), since disruption modulation genuinely raises
// side-bands on residual fine-grid lines too.
func explainableLines(scene *emsim.Scene, f1, f2 float64, x, y activity.Kind) []float64 {
	lx, ly := activity.LoadOf(x), activity.LoadOf(y)
	var out []float64
	for _, e := range scene.Emitters() {
		d := e.Domain()
		delta := math.Abs(d.Of(lx) - d.Of(ly))
		if !e.AMModulated() || delta < 0.2 {
			continue
		}
		out = append(out, e.Carriers(f1, f2)...)
		if r, ok := e.(*machine.RefreshEmitter); ok {
			fine := 1 / r.TRefi
			for n := 1; float64(n)*fine <= f2; n++ {
				f := float64(n) * fine
				if f >= f1 {
					out = append(out, f)
				}
			}
		}
	}
	sort.Float64s(out)
	return out
}

// matchesAny reports whether f is within tol of any element.
func matchesAny(f float64, set []float64, tol float64) bool {
	for _, g := range set {
		if math.Abs(f-g) <= tol {
			return true
		}
	}
	return false
}

// headlineCarriers returns, per modulated emitter, its carrier lines in
// range. An emitter counts as recalled when FASE detects *any* of its
// lines — the paper's semantics: carriers are found, then grouped into
// per-source harmonic sets.
func headlineCarriers(scene *emsim.Scene, f1, f2 float64, x, y activity.Kind) map[string][]float64 {
	lx, ly := activity.LoadOf(x), activity.LoadOf(y)
	out := map[string][]float64{}
	for _, e := range scene.Emitters() {
		d := e.Domain()
		delta := math.Abs(d.Of(lx) - d.Of(ly))
		if !e.AMModulated() || delta < 0.2 {
			continue
		}
		if cs := e.Carriers(f1, f2); len(cs) > 0 {
			out[e.Name()] = cs
		}
	}
	return out
}

func khz(f float64) string { return fmt.Sprintf("%.2f", f/1e3) }
func mhz(f float64) string { return fmt.Sprintf("%.4f", f/1e6) }
func db1(v float64) string { return fmt.Sprintf("%.1f", v) }
func sc1(v float64) string { return fmt.Sprintf("%.1f", v) }
func hstr(hs []int) string { return fmt.Sprintf("%v", hs) }
