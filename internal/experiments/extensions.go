package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"fase/internal/activity"
	"fase/internal/attack"
	"fase/internal/core"
	"fase/internal/machine"
	"fase/internal/report"
)

func init() {
	register("attack-leakage", attackLeakage)
	register("mitigation-refresh", mitigationRefresh)
	register("fm-fase", fmFase)
	register("fivr-bandwidth", fivrBandwidth)
}

// fivrBandwidth examines the §4.1 forward-looking claim: integrated
// regulators (FIVR, 140 MHz switching) give attackers "a higher bandwidth
// readout of power consumption". FASE finds the FIVR carrier with the
// campaign-3 parameters, and the demodulation attack sustains MHz-rate
// bit recovery that the 65 kHz-loop board regulator cannot follow — the
// board regulator is also hemmed in by neighbouring carriers, while
// 140 MHz sits in a clean part of the spectrum.
func fivrBandwidth(cfg Config) *report.Output {
	sys, err := machine.Lookup("fivr-desktop")
	if err != nil {
		panic(err)
	}
	scene := sys.Scene(cfg.Seed, true)
	// FASE detection of the FIVR carrier (campaign-3 parameters: large
	// f_alt keeps side-bands clear of the carrier's wander).
	runner := &core.Runner{Scene: scene}
	res := runner.Run(core.Campaign{
		F1: 136e6, F2: 144e6, Fres: 500,
		FAlt1: 1.8e6, FDelta: 100e3,
		MergeBins: 120, // the 25 kHz oscillator wander spreads the line
		X:         activity.LDL2, Y: activity.LDL1, Seed: cfg.Seed + 330,
	})
	fivrFound := false
	for _, d := range res.Detections {
		if math.Abs(d.Freq-sys.CoreRegulator.FSw) < 200e3 {
			fivrFound = true
		}
	}
	// Bit-rate sweep through both core-activity channels.
	r := rand.New(rand.NewSource(cfg.Seed + 331))
	bits := make([]byte, 128)
	for i := range bits {
		bits[i] = byte(r.Intn(2))
	}
	i7 := machine.IntelCoreI7Desktop()
	i7Scene := i7.Scene(cfg.Seed, true)
	boardRx := &attack.Receiver{Carrier: i7.CoreRegulator.FSw, Bandwidth: 15e3}
	fivrRx := &attack.Receiver{Carrier: sys.CoreRegulator.FSw, Bandwidth: 2e6}
	tbl := report.Table{
		Title:  "Core-activity leak rate: board regulator (332.5 kHz) vs FIVR (140 MHz)",
		Header: []string{"bit period", "board reg BER", "board bit/s", "FIVR BER", "FIVR bit/s"},
	}
	for i, tBit := range []float64{250e-6, 25e-6, 5e-6, 2e-6} {
		lkBoard := attack.Quantify(boardRx, i7Scene, bits, activity.LDL2, activity.LDL1, tBit, cfg.Seed+332+int64(i))
		lkFIVR := attack.Quantify(fivrRx, scene, bits, activity.LDL2, activity.LDL1, tBit, cfg.Seed+340+int64(i))
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.0f µs", tBit*1e6),
			fmt.Sprintf("%.3f", lkBoard.BER),
			fmt.Sprintf("%.0f", lkBoard.BitsPerSymbol/tBit),
			fmt.Sprintf("%.3f", lkFIVR.BER),
			fmt.Sprintf("%.0f", lkFIVR.BitsPerSymbol/tBit),
		})
	}
	return &report.Output{
		ID:     "fivr-bandwidth",
		Title:  "§4.1: integrated regulators give a higher-bandwidth power readout",
		Tables: []report.Table{tbl},
		Notes: []string{
			fmt.Sprintf("FASE finds the 140 MHz FIVR carrier: %v (%d detections in 136–144 MHz)", fivrFound, len(res.Detections)),
			"the FIVR channel sustains bit periods the 65 kHz-loop board regulator cannot follow",
		},
	}
}

// attackLeakage quantifies what each FASE-found carrier is worth to an
// attacker: bits of victim activity recovered per second by AM
// demodulation, with error rate and class-separation SNR — the paper's
// §1/§4.1 threat ("power side-channel attacks from a distance") made
// concrete, and the §6 leakage-quantification use case.
func attackLeakage(cfg Config) *report.Output {
	sys := machine.IntelCoreI7Desktop()
	scene := sys.Scene(cfg.Seed, true)
	r := rand.New(rand.NewSource(cfg.Seed + 300))
	bits := make([]byte, 192)
	for i := range bits {
		bits[i] = byte(r.Intn(2))
	}
	tbl := report.Table{
		Title:  "Leakage through FASE-found carriers (192 secret bits, DRAM-load encoding)",
		Header: []string{"carrier", "bit period", "BER", "SNR dB", "bits/symbol", "leak rate"},
	}
	cases := []struct {
		name    string
		carrier float64
		tBit    float64
	}{
		{"DIMM regulator 315 kHz", sys.MemRegulator.FSw, 250e-6},
		{"DIMM regulator 315 kHz", sys.MemRegulator.FSw, 1e-3},
		{"memory interface reg 475 kHz", sys.MemCtlRegulator.FSw, 250e-6},
		{"refresh comb 512 kHz", 512e3, 1e-3},
		{"UART clock 1.8432 MHz (control)", 1.8432e6, 1e-3},
	}
	for i, cs := range cases {
		rx := &attack.Receiver{Carrier: cs.carrier, Bandwidth: 15e3}
		lk := attack.Quantify(rx, scene, bits, activity.LDM, activity.LDL1, cs.tBit, cfg.Seed+301+int64(i))
		tbl.Rows = append(tbl.Rows, []string{
			cs.name,
			fmt.Sprintf("%.0f µs", cs.tBit*1e6),
			fmt.Sprintf("%.3f", lk.BER),
			fmt.Sprintf("%.1f", lk.SNRdB),
			fmt.Sprintf("%.2f", lk.BitsPerSymbol),
			fmt.Sprintf("%.0f bit/s", lk.BitsPerSymbol/cs.tBit),
		})
	}
	return &report.Output{
		ID:     "attack-leakage",
		Title:  "AM-demodulation attack through FASE-found carriers (§1, §4.1, refs [28,31])",
		Tables: []report.Table{tbl},
		Notes: []string{
			"the strongest regulator carrier leaks kbit/s of activity error-free; weaker carriers still leak hundreds of bit/s; unmodulated carriers leak nothing",
		},
	}
}

// mitigationRefresh evaluates the paper's proposed fix (§4.2/§6):
// "randomizing the issue of memory refresh commands would be compatible
// with existing DRAM standards and would greatly reduce the modulation of
// refresh activity." The experiment compares the refresh comb, FASE
// detectability, and demodulation leakage before and after dithering.
func mitigationRefresh(cfg Config) *report.Output {
	tbl := report.Table{
		Title:  "Refresh-interval randomization (tREFI dither) as mitigation",
		Header: []string{"dither (±% tREFI)", "512 kHz line dBm (idle)", "FASE detections on refresh grid", "attack BER via 512 kHz"},
	}
	r := rand.New(rand.NewSource(cfg.Seed + 310))
	bits := make([]byte, 128)
	for i := range bits {
		bits[i] = byte(r.Intn(2))
	}
	var lineBefore, lineAfter float64
	var detBefore, detAfter int
	for _, dither := range []float64{0, 0.1, 0.3, 0.5} {
		sys := machine.IntelCoreI7Desktop()
		sys.Refresh.IntervalDither = dither
		scene := sys.Scene(cfg.Seed, true)
		// Comb line strength at idle.
		s := sweep(scene, 500e3, 524e3, 100, nil, cfg.Seed+311)
		_, line := peakNear(s, 512e3, 2e3)
		// FASE detections attributable to the refresh grid.
		runner := &core.Runner{Scene: scene}
		res := runner.Run(core.Campaign{
			F1: 0.45e6, F2: 1.1e6, Fres: 50, FAlt1: 43.3e3, FDelta: 0.5e3,
			X: activity.LDM, Y: activity.LDL1, Seed: cfg.Seed + 312,
		})
		refreshDets := 0
		for _, d := range res.Detections {
			n := math.Round(d.Freq / 128e3)
			if n >= 1 && math.Abs(d.Freq-n*128e3) < 2e3 {
				refreshDets++
			}
		}
		// Attack through the (former) 512 kHz line.
		rx := &attack.Receiver{Carrier: 512e3, Bandwidth: 15e3}
		lk := attack.Quantify(rx, scene, bits, activity.LDM, activity.LDL1, 1e-3, cfg.Seed+313)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.0f", dither*100),
			db1(line),
			fmt.Sprintf("%d", refreshDets),
			fmt.Sprintf("%.3f", lk.BER),
		})
		switch dither {
		case 0:
			lineBefore, detBefore = line, refreshDets
		case 0.5:
			lineAfter, detAfter = line, refreshDets
		}
	}
	return &report.Output{
		ID:     "mitigation-refresh",
		Title:  "§4.2/§6 mitigation: randomized refresh issue times",
		Tables: []report.Table{tbl},
		Notes: []string{
			fmt.Sprintf("512 kHz line: %.1f dBm → %.1f dBm with ±50%% dither (%.1f dB reduction)", lineBefore, lineAfter, lineBefore-lineAfter),
			fmt.Sprintf("FASE refresh-grid detections: %d → %d", detBefore, detAfter),
			"the paper: randomization 'would greatly reduce the modulation of refresh activity' — confirmed",
		},
	}
}

// fmFase exercises the §4.4 future-work extension: a FASE-like detector
// for frequency-modulated carriers finds the AMD Turion's constant-on-
// time core regulator that AM-FASE correctly does not report.
func fmFase(cfg Config) *report.Output {
	sys := machine.AMDTurionX2Laptop2007()
	runner := &core.Runner{Scene: sys.Scene(cfg.Seed, false)}
	// AM-FASE over the regulator's band (correctly empty near 390 kHz).
	am := runner.Run(core.Campaign{
		F1: 0.3e6, F2: 0.5e6, Fres: 50, FAlt1: 43.3e3, FDelta: 0.5e3,
		X: activity.LDL2, Y: activity.LDL1, Seed: cfg.Seed + 320,
	})
	amNear := 0
	for _, d := range am.Detections {
		if math.Abs(d.Freq-sys.FMCoreRegulator.F0) < 60e3 {
			amNear++
		}
	}
	// FM-FASE over the same band.
	fm := runner.RunFM(core.FMCampaign{
		F1: 0.3e6, F2: 0.5e6, FAlt1: 400, FDelta: 60,
		X: activity.LDL2, Y: activity.LDL1, Seed: cfg.Seed + 321,
	})
	tbl := report.Table{
		Title:  "FM-FASE detections (Turion, LDL2/LDL1, 0.3–0.5 MHz)",
		Header: []string{"carrier kHz", "score", "deviation Hz"},
	}
	fmFound := false
	for _, d := range fm {
		tbl.Rows = append(tbl.Rows, []string{khz(d.Freq), sc1(d.Score), fmt.Sprintf("%.0f", d.DeviationHz)})
		if math.Abs(d.Freq-sys.FMCoreRegulator.F0) < 60e3 {
			fmFound = true
		}
	}
	// And FM-FASE on the i7's AM regulators: must stay silent.
	i7 := machine.IntelCoreI7Desktop()
	r2 := &core.Runner{Scene: i7.Scene(cfg.Seed, false)}
	fmI7 := r2.RunFM(core.FMCampaign{
		F1: 0.28e6, F2: 0.36e6, FAlt1: 400, FDelta: 60,
		X: activity.LDM, Y: activity.LDL1, Seed: cfg.Seed + 322,
	})
	amFalse := 0
	for _, d := range fmI7 {
		if math.Abs(d.Freq-i7.MemRegulator.FSw) < 10e3 {
			amFalse++
		}
	}
	return &report.Output{
		ID:     "fm-fase",
		Title:  "§4.4 extension: FASE-like detection of frequency-modulated carriers",
		Tables: []report.Table{tbl},
		Notes: []string{
			fmt.Sprintf("AM-FASE detections near the FM regulator: %d (correct: it is not AM)", amNear),
			fmt.Sprintf("FM-FASE finds the constant-on-time regulator: %v", fmFound),
			fmt.Sprintf("FM-FASE false reports on the i7's AM regulator: %d", amFalse),
		},
	}
}
