package experiments

import (
	"fmt"
	"math"

	"fase/internal/activity"
	"fase/internal/core"
	"fase/internal/dsp/spectral"
	"fase/internal/microbench"
	"fase/internal/report"
)

func init() {
	register("fig14", fig14)
	register("fig15", fig15)
	register("fig16", fig16)
}

var fig15Falts = []float64{180e3, 190e3, 200e3, 210e3, 220e3}

// fig14: the spread-spectrum DRAM clock at 0% (LDL1/LDL1) vs 100%
// (LDM/LDM) memory activity.
func fig14(cfg Config) *report.Output {
	sys, r := i7Scene(cfg.Seed)
	f0 := sys.DRAMClock.F0
	f1, f2 := f0-4e6, f0+3e6
	idle := sweep(r.Scene, f1, f2, 500, microbench.Constant(activity.LDL1), cfg.Seed+140)
	busy := sweep(r.Scene, f1, f2, 500, microbench.Constant(activity.LDM), cfg.Seed+141)
	out := &report.Output{
		ID:    "fig14",
		Title: "DRAM clock spectrum with 0% (LDL1/LDL1) and 100% (LDM/LDM) memory activity",
		Series: []report.Series{
			dbmSeries("LDL1/LDL1 (0% memory)", idle),
			dbmSeries("LDM/LDM (100% memory)", busy),
		},
	}
	// The swept band [F0-Spread, F0] carries the energy; activity raises it.
	mid := f0 - sys.DRAMClock.SpreadHz/2
	_, pi := peakNear(idle, mid, sys.DRAMClock.SpreadHz/2)
	_, pb := peakNear(busy, mid, sys.DRAMClock.SpreadHz/2)
	_, outOfSpread := peakNear(busy, f0-3e6, 500e3)
	out.Notes = append(out.Notes,
		fmt.Sprintf("in-spread peak: idle %.1f dBm, busy %.1f dBm (+%.1f dB with activity, §2.2)", pi, pb, pb-pi),
		fmt.Sprintf("out-of-spread level %.1f dBm: energy confined to [%.0f, %.0f] MHz", outOfSpread, (f0-sys.DRAMClock.SpreadHz)/1e6, f0/1e6))
	return out
}

// fig15: the DRAM clock with 50% memory activity (LDM/LDL1) at the five
// large alternation frequencies that move the side-bands outside the
// spread carrier.
func fig15(cfg Config) *report.Output {
	sys, r := i7Scene(cfg.Seed)
	f0 := sys.DRAMClock.F0
	f1, f2 := f0-4e6, f0+3e6
	out := &report.Output{
		ID:    "fig15",
		Title: "DRAM clock spectrum with 50% (LDM/LDL1) memory activity at f_alt 180–220 kHz",
	}
	var first *spectral.Spectrum
	for i, fa := range fig15Falts {
		tr := microbench.Generate(microbench.Config{
			X: activity.LDM, Y: activity.LDL1, FAlt: fa,
			Jitter: microbench.DefaultJitter(), Seed: cfg.Seed + 150 + int64(i),
		}, 0.1)
		s := sweep(r.Scene, f1, f2, 500, tr, cfg.Seed+150+int64(i)*31)
		if first == nil {
			first = s
		}
		out.Series = append(out.Series, dbmSeries(fmt.Sprintf("LDM/LDL1 falt=%.0fkHz", fa/1e3), s))
	}
	ctl := sweep(r.Scene, f1, f2, 500, microbench.Constant(activity.LDL1), cfg.Seed+159)
	out.Series = append(out.Series, dbmSeries("LDL1/LDL1 control", ctl))
	// Side-band energy outside the spread range appears only under
	// alternation: compare at (F0-Spread) - falt.
	spreadLo := f0 - sys.DRAMClock.SpreadHz
	_, sb := peakNear(first, spreadLo-fig15Falts[0], 60e3)
	_, cb := peakNear(ctl, spreadLo-fig15Falts[0], 60e3)
	out.Notes = append(out.Notes,
		fmt.Sprintf("left side-band region (spread edge - f_alt): %.1f dBm under alternation vs %.1f dBm control", sb, cb))
	return out
}

// fig16: the heuristic detects the modulated spread-spectrum clock,
// reporting it as two carriers at the edges of the spread.
func fig16(cfg Config) *report.Output {
	sys, r := i7Scene(cfg.Seed)
	f0 := sys.DRAMClock.F0
	// Figure 10's campaign-3 parameters: f_alt must be "large enough to
	// move the side-band signals outside of the carrier's own spectrum"
	// (§4.3), and f_Δ must exceed the horn width so the shifted humps
	// decorrelate between measurements.
	res := r.Run(core.Campaign{
		F1: f0 - 4e6, F2: f0 + 3e6, Fres: 500,
		FAlt1: 1.8e6, FDelta: 100e3,
		MergeBins: 200, // merge each horn's sub-peaks (±100 kHz)
		X:         activity.LDM, Y: activity.LDL1, Seed: cfg.Seed + 160,
	})
	out := &report.Output{
		ID:    "fig16",
		Title: "Heuristic carrier detection output for the spread-spectrum DRAM clock",
	}
	sp := res.Measurements[0].Spectrum
	for _, h := range []int{1, -1} {
		trace := res.Scores[h]
		var xs, ys []float64
		for k := range trace {
			xs = append(xs, sp.Freq(k))
			ys = append(ys, math.Log10(trace[k]))
		}
		out.Series = append(out.Series, report.Series{Name: fmt.Sprintf("h=%+d (log10 score)", h), X: xs, Y: ys})
	}
	tbl := report.Table{
		Title:  "Detections (expect the two spread edges)",
		Header: []string{"carrier MHz", "score", "harmonics"},
	}
	lo, hi := f0-sys.DRAMClock.SpreadHz, f0
	var nearLo, nearHi bool
	for _, d := range res.Detections {
		tbl.Rows = append(tbl.Rows, []string{mhz(d.Freq), sc1(d.Score), hstr(d.Harmonics)})
		if math.Abs(d.Freq-lo) < 300e3 {
			nearLo = true
		}
		if math.Abs(d.Freq-hi) < 300e3 {
			nearHi = true
		}
	}
	out.Tables = append(out.Tables, tbl)
	out.Notes = append(out.Notes,
		fmt.Sprintf("%d detections; edge at %.0f MHz found: %v, edge at %.0f MHz found: %v (paper: 'reports the clock as two separate carriers at the edges of the spread out clock signal')",
			len(res.Detections), lo/1e6, nearLo, hi/1e6, nearHi))
	return out
}
