package experiments

import (
	"strings"
	"testing"

	"fase/internal/activity"
	"fase/internal/machine"
)

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	// Every paper figure plus the §4 claims and the ablations.
	want := []string{
		"fig01", "fig02", "fig03", "fig04", "fig05", "fig06",
		"fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17",
		"refresh-inverse", "fm-rejection", "nearfield-gcd",
		"validation", "baseline-comparison",
		"ablation-nalts", "ablation-combine", "ablation-harmonics", "ablation-fdelta",
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(ids) < len(want) {
		t.Errorf("registry has %d experiments, want at least %d", len(ids), len(want))
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", Config{}); err == nil {
		t.Error("unknown id should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRun should panic on unknown id")
		}
	}()
	MustRun("nope", Config{})
}

func TestConceptFiguresRun(t *testing.T) {
	// The cheap experiments run end-to-end and carry the right structure.
	for _, id := range []string{"fig01", "fig02", "fig03", "fig04", "fig05",
		"fig06", "fig10", "carrier-tracking", "attack-leakage",
		"ablation-combine", "campaign2-sweep"} {
		out := MustRun(id, Config{Seed: 2})
		if out.ID != id {
			t.Errorf("%s: wrong ID %q", id, out.ID)
		}
		if out.Title == "" || (len(out.Series) == 0 && len(out.Tables) == 0) {
			t.Errorf("%s: empty output", id)
		}
	}
}

func TestFig01SidebandOffsets(t *testing.T) {
	out := MustRun("fig01", Config{Seed: 3})
	if len(out.Notes) == 0 || !strings.Contains(out.Notes[0], "side-bands") {
		t.Fatalf("fig01 notes: %v", out.Notes)
	}
	// The spectrum series peaks at the carrier.
	x, _ := out.Series[0].Peak()
	if x != 1e6 {
		t.Errorf("fig01 peak at %g, want the 1 MHz carrier", x)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := MustRun("fig01", Config{Seed: 9})
	b := MustRun("fig01", Config{Seed: 9})
	if len(a.Series[0].Y) != len(b.Series[0].Y) {
		t.Fatal("series length differs")
	}
	for i := range a.Series[0].Y {
		if a.Series[0].Y[i] != b.Series[0].Y[i] {
			t.Fatal("same seed must reproduce identical spectra")
		}
	}
}

func TestExplainableLines(t *testing.T) {
	sys := machine.IntelCoreI7Desktop()
	scene := sys.Scene(1, false)
	lines := explainableLines(scene, 100e3, 1e6, activity.LDM, activity.LDL1)
	has := func(f float64) bool { return matchesAny(f, lines, 1) }
	if !has(315e3) || !has(630e3) || !has(512e3) {
		t.Errorf("modulated lines missing: %v", lines)
	}
	// Refresh fine grid included.
	if !has(128e3) || !has(640e3) {
		t.Error("refresh fine grid missing")
	}
	// Core regulator is NOT modulated by LDM/LDL1.
	if has(332.5e3) {
		t.Error("core regulator should not be explainable under LDM/LDL1")
	}
	// Under LDL2/LDL1 only the core regulator remains.
	lines2 := explainableLines(scene, 100e3, 1e6, activity.LDL2, activity.LDL1)
	if !matchesAny(332.5e3, lines2, 1) || matchesAny(315e3, lines2, 1) {
		t.Errorf("LDL2/LDL1 explainable lines wrong: %v", lines2)
	}
}

func TestHeadlineCarriers(t *testing.T) {
	sys := machine.IntelCoreI7Desktop()
	scene := sys.Scene(1, false)
	heads := headlineCarriers(scene, 100e3, 1e6, activity.LDM, activity.LDL1)
	if len(heads) != 3 {
		t.Errorf("headline emitters: %v", heads)
	}
	if _, ok := heads[sys.CoreRegulator.Label]; ok {
		t.Error("core regulator must not be a headline emitter for LDM/LDL1")
	}
}

func TestGCDHelper(t *testing.T) {
	if g := gcdOf([]float64{512e3, 1024e3}); g < 511e3 || g > 513e3 {
		t.Errorf("gcd = %g", g)
	}
	if g := gcdOf([]float64{128e3, 512e3, 384e3}); g < 127e3 || g > 129e3 {
		t.Errorf("gcd = %g", g)
	}
	if gcdOf(nil) != 0 {
		t.Error("empty gcd should be 0")
	}
}

func TestPercentile(t *testing.T) {
	x := []float64{5, 1, 4, 2, 3}
	if p := percentile(x, 0.5); p != 3 {
		t.Errorf("median = %g", p)
	}
	if p := percentile(x, 1); p != 5 {
		t.Errorf("max = %g", p)
	}
	if percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}
