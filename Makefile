GO ?= go

.PHONY: ci fmt-check vet build test race bench-smoke

# ci is the full gate: formatting, vet, build, tests (with the race
# detector), and a short benchmark smoke run.
ci: fmt-check vet build race bench-smoke

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs the pipeline micro-benchmarks once each — enough to
# catch a benchmark that no longer compiles or panics, without the cost of
# a full timing run.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkSceneRender|BenchmarkPeriodogram|BenchmarkSweep$$|BenchmarkCampaignNarrowband' -benchtime 1x .
